package splitft

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each runs the corresponding internal/bench experiment at QuickScale and
// reports the headline metric; cmd/splitft-bench runs the full-scale
// versions and prints complete paper-style tables.

import (
	"testing"
	"time"

	"splitft/internal/bench"
	"splitft/internal/modelcheck"
)

func quick() bench.Scale { return bench.QuickScale() }

// BenchmarkTable1 — cost of strong guarantees (weak vs strong DFT).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Table1(quick(), 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].KOps, "weak-kops/s")
		b.ReportMetric(res.Rows[1].KOps, "strong-kops/s")
		b.ReportMetric(float64(res.Rows[1].AvgLat.Microseconds()), "strong-lat-us")
	}
}

// BenchmarkTable2 — the write-classification table (rendering only).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if bench.Table2() == "" {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFig1 — IO-size CDFs of log vs background writes (kvstore).
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig1("kvstore", quick(), 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.LogCDF.Quantile(0.5)), "log-p50-bytes")
		b.ReportMetric(float64(res.BgCDF.Quantile(0.5)), "bg-p50-bytes")
	}
}

// BenchmarkFig1d — dfs sequential sync-write throughput vs IO size.
func BenchmarkFig1d(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig1d(quick(), 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Points[0].MBps, "512B-MBps")
		b.ReportMetric(res.Points[len(res.Points)-1].MBps, "64MB-MBps")
	}
}

// BenchmarkFig8 — write latency microbenchmark (NCL vs weak vs strong).
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig8(quick(), 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range res.Points {
			if pt.Size == 128 && pt.Variant == "NCL" {
				b.ReportMetric(float64(pt.AvgLat.Nanoseconds())/1000, "ncl-128B-us")
			}
		}
	}
}

// BenchmarkFig9 — latency vs throughput, write-only (litedb: one point per
// config; cmd/splitft-bench sweeps all apps and client counts).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig9("litedb", quick(), 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Series[bench.CfgSplitFT][0].KOps, "splitft-kops/s")
		b.ReportMetric(res.Series[bench.CfgStrong][0].KOps, "strong-kops/s")
	}
}

// BenchmarkFig10 — YCSB throughput (kvstore).
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig10("kvstore", quick(), 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.KOps[bench.CfgSplitFT]["a"], "splitft-a-kops/s")
		b.ReportMetric(res.KOps[bench.CfgWeak]["a"], "weak-a-kops/s")
		b.ReportMetric(res.KOps[bench.CfgStrong]["a"], "strong-a-kops/s")
	}
}

// BenchmarkFig11a — recovery read latency (NCL prefetch vs dfs).
func BenchmarkFig11a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig11a(quick(), 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range res.Points {
			if pt.Size == 128 {
				switch pt.Variant {
				case "NCL":
					b.ReportMetric(float64(pt.AvgLat.Nanoseconds())/1000, "ncl-128B-us")
				case "DFS":
					b.ReportMetric(float64(pt.AvgLat.Nanoseconds())/1000, "dfs-128B-us")
				}
			}
		}
	}
}

// BenchmarkFig11b — application recovery time.
func BenchmarkFig11b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig11b(quick(), 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.App == "kvstore" && row.Variant == "SplitFT" {
				b.ReportMetric(row.Total.Seconds()*1000, "kv-splitft-ms")
			}
			if row.App == "kvstore" && row.Variant == "DFT" {
				b.ReportMetric(row.Total.Seconds()*1000, "kv-dft-ms")
			}
		}
	}
}

// BenchmarkTable3 — peer replacement latency breakdown.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Table3(quick(), 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Total().Seconds()*1000, "total-ms")
		b.ReportMetric(res.Connect.Seconds()*1000, "connect-ms")
	}
}

// BenchmarkFig12 — throughput under peer failures.
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := quick()
		sc.RunDur = 500 * time.Millisecond
		res, err := bench.Fig12(sc, 1)
		if err != nil {
			b.Fatal(err)
		}
		total := sc.Warmup + 3*sc.RunDur
		b.ReportMetric(res.MeanDuring(sc.Warmup, total*4/10)/1000, "healthy-kops/s")
		b.ReportMetric(res.MinDuring(total*4/10, total*4/10+200*time.Millisecond)/1000, "crash-min-kops/s")
	}
}

// BenchmarkAblateReplication — NCL vs consensus replication (§6).
func BenchmarkAblateReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.AblateReplication(quick(), 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.NCLLatency.Nanoseconds())/1000, "ncl-us")
		b.ReportMetric(float64(res.RaftLatency.Nanoseconds())/1000, "consensus-us")
	}
}

// BenchmarkAblateSplit — fine-granular write splitting (§6).
func BenchmarkAblateSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.AblateSplit(quick(), 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.SmallLat["split (threshold)"].Nanoseconds())/1000, "split-small-us")
		b.ReportMetric(float64(res.SmallLat["dfs (sync)"].Nanoseconds())/1000, "dfs-small-us")
	}
}

// BenchmarkModelCheck — state-exploration rate of the protocol checker.
func BenchmarkModelCheck(b *testing.B) {
	total := 0
	for i := 0; i < b.N; i++ {
		res := modelcheck.Check(modelcheck.DefaultConfig())
		if res.Violation != nil {
			b.Fatal("correct protocol flagged")
		}
		total = res.States
	}
	b.ReportMetric(float64(total), "states")
}
