package peer

import (
	"errors"
	"testing"
	"time"

	"splitft/internal/controller"
	"splitft/internal/rdma"
	"splitft/internal/simnet"
	"splitft/internal/wire"
)

type fixture struct {
	sim    *simnet.Sim
	svc    *controller.Service
	fabric *rdma.Fabric
	pNode  *simnet.Node
	app    *simnet.Node
	appNIC *rdma.NIC
	pr     *Peer
	cfg    Config
}

func newFixture(seed int64, cfg Config) *fixture {
	s := simnet.New(seed)
	s.Net().SetDefaultLatency(5 * time.Microsecond)
	ctrlNodes := []*simnet.Node{s.NewNode("ctrl0"), s.NewNode("ctrl1"), s.NewNode("ctrl2")}
	fx := &fixture{
		sim:    s,
		svc:    controller.Start(s, ctrlNodes, controller.DefaultConfig()),
		fabric: rdma.NewFabric(s, rdma.DefaultParams()),
		pNode:  s.NewNode("peerA"),
		app:    s.NewNode("app"),
	}
	fx.appNIC = fx.fabric.AttachNIC(fx.app)
	fx.cfg = cfg
	return fx
}

func (fx *fixture) run(t *testing.T, fn func(p *simnet.Proc)) {
	t.Helper()
	fx.sim.Go("test", func(p *simnet.Proc) {
		defer fx.sim.Stop()
		p.Sleep(time.Second)
		pr, err := Start(p, fx.svc, fx.fabric, fx.pNode, fx.cfg)
		if err != nil {
			t.Errorf("start peer: %v", err)
			return
		}
		fx.pr = pr
		fn(p)
	})
	if err := fx.sim.RunUntil(time.Hour); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

// call is the typed RPC helper: the response type is named at the call
// site, everything else is inferred.
func call[Resp any, PResp wire.Unmarshaler[Resp], Req wire.Marshaler](
	fx *fixture, p *simnet.Proc, req Req,
) (Resp, error) {
	return wire.Call[Resp, PResp](p, fx.sim.Net(), fx.app, Addr("peerA"), req)
}

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.LendableMem = 8 << 20
	return cfg
}

func TestSetupLookupRelease(t *testing.T) {
	fx := newFixture(1, testCfg())
	fx.run(t, func(p *simnet.Proc) {
		resp, err := call[SetupResp](fx, p, SetupReq{App: "a1", File: "wal", Size: 1 << 20, Epoch: 1})
		if err != nil {
			t.Fatalf("setup: %v", err)
		}
		rkey := resp.RKey
		if rkey == 0 {
			t.Fatal("zero rkey")
		}
		if fx.pr.Avail() != 7<<20 {
			t.Errorf("avail = %d after setup", fx.pr.Avail())
		}
		// Lookup returns the same region.
		lresp, err := call[LookupResp](fx, p, LookupReq{App: "a1", File: "wal"})
		if err != nil {
			t.Fatalf("lookup: %v", err)
		}
		look := lresp
		if look.RKey != rkey || look.Size != 1<<20 || look.Epoch != 1 {
			t.Errorf("lookup = %+v", look)
		}
		// The region is remotely writable via the returned key.
		cq := rdma.NewCQ(fx.sim)
		qp, err := fx.appNIC.Connect(p, "peerA", cq)
		if err != nil {
			t.Fatalf("connect: %v", err)
		}
		qp.PostWrite(p, rkey, 0, []byte("hello"), 0)
		if c, _ := cq.Poll(p); c.Err != nil {
			t.Fatalf("remote write: %v", c.Err)
		}
		if region, ok := fx.pr.RegionBytes("a1", "wal"); !ok || string(region[:5]) != "hello" {
			t.Errorf("region content wrong")
		}
		// Release frees it; lookups now fail; memory back in the pool.
		if _, err := call[wire.Ack](fx, p, ReleaseReq{App: "a1", File: "wal"}); err != nil {
			t.Fatalf("release: %v", err)
		}
		if _, err := call[LookupResp](fx, p, LookupReq{App: "a1", File: "wal"}); !errors.Is(err, ErrNotFound) {
			t.Errorf("lookup after release: %v", err)
		}
		if fx.pr.Avail() != 8<<20 {
			t.Errorf("avail = %d after release", fx.pr.Avail())
		}
		// And the old key no longer grants access.
		qp.PostWrite(p, rkey, 0, []byte("x"), 0)
		if c, _ := cq.Poll(p); !errors.Is(c.Err, rdma.ErrRemoteAccess) {
			t.Errorf("write with released key: %v", c.Err)
		}
	})
}

func TestSetupRejectsWhenOutOfMemory(t *testing.T) {
	fx := newFixture(2, testCfg())
	fx.run(t, func(p *simnet.Proc) {
		if _, err := call[SetupResp](fx, p, SetupReq{App: "a1", File: "f1", Size: 6 << 20, Epoch: 1}); err != nil {
			t.Fatalf("first setup: %v", err)
		}
		_, err := call[SetupResp](fx, p, SetupReq{App: "a1", File: "f2", Size: 4 << 20, Epoch: 1})
		if !errors.Is(err, ErrNoMem) {
			t.Fatalf("over-commit allowed: %v", err)
		}
	})
}

func TestSetupRejectsStaleEpoch(t *testing.T) {
	fx := newFixture(3, testCfg())
	fx.run(t, func(p *simnet.Proc) {
		if _, err := call[SetupResp](fx, p, SetupReq{App: "a1", File: "wal", Size: 1 << 20, Epoch: 5}); err != nil {
			t.Fatalf("setup: %v", err)
		}
		_, err := call[SetupResp](fx, p, SetupReq{App: "a1", File: "wal", Size: 1 << 20, Epoch: 3})
		if !errors.Is(err, ErrStaleEpoch) {
			t.Fatalf("stale epoch accepted: %v", err)
		}
		// Same or newer epoch replaces the region (ambiguous-retry path).
		if _, err := call[SetupResp](fx, p, SetupReq{App: "a1", File: "wal", Size: 1 << 20, Epoch: 6}); err != nil {
			t.Fatalf("newer epoch rejected: %v", err)
		}
		if fx.pr.Regions() != 1 {
			t.Errorf("regions = %d", fx.pr.Regions())
		}
	})
}

func TestStagingAndAtomicSwitch(t *testing.T) {
	fx := newFixture(4, testCfg())
	fx.run(t, func(p *simnet.Proc) {
		resp, _ := call[SetupResp](fx, p, SetupReq{App: "a1", File: "wal", Size: 1 << 20, Epoch: 1})
		oldKey := resp.RKey
		sresp, err := call[AllocStagingResp](fx, p, AllocStagingReq{App: "a1", File: "wal", Size: 1 << 20, Epoch: 1})
		if err != nil {
			t.Fatalf("staging: %v", err)
		}
		stg := sresp
		// Write recovered content into staging.
		cq := rdma.NewCQ(fx.sim)
		qp, _ := fx.appNIC.Connect(p, "peerA", cq)
		qp.PostWrite(p, stg.RKey, 0, []byte("recovered!"), 0)
		if c, _ := cq.Poll(p); c.Err != nil {
			t.Fatalf("staging write: %v", c.Err)
		}
		// Commit the switch: mr-map now points at the staged region.
		if _, err := call[wire.Ack](fx, p, CommitSwitchReq{App: "a1", File: "wal", StagingID: stg.StagingID, Epoch: 2}); err != nil {
			t.Fatalf("switch: %v", err)
		}
		lresp, _ := call[LookupResp](fx, p, LookupReq{App: "a1", File: "wal"})
		look := lresp
		if look.RKey != stg.RKey || look.Epoch != 2 {
			t.Errorf("lookup after switch = %+v", look)
		}
		region, _ := fx.pr.RegionBytes("a1", "wal")
		if string(region[:10]) != "recovered!" {
			t.Errorf("switched content = %q", region[:10])
		}
		// The old region's key is dead.
		qp.PostWrite(p, oldKey, 0, []byte("x"), 0)
		if c, _ := cq.Poll(p); !errors.Is(c.Err, rdma.ErrRemoteAccess) {
			t.Errorf("old key still valid: %v", c.Err)
		}
		// Memory accounting: old region freed, staging promoted.
		if fx.pr.Avail() != 7<<20 {
			t.Errorf("avail = %d", fx.pr.Avail())
		}
	})
}

func TestCommitSwitchUnknownStaging(t *testing.T) {
	fx := newFixture(5, testCfg())
	fx.run(t, func(p *simnet.Proc) {
		_, err := call[wire.Ack](fx, p, CommitSwitchReq{App: "a1", File: "wal", StagingID: 99, Epoch: 1})
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("bogus staging id accepted: %v", err)
		}
	})
}

func TestRegionRecycling(t *testing.T) {
	fx := newFixture(6, testCfg())
	fx.run(t, func(p *simnet.Proc) {
		// Allocate, release, allocate the same size: the second allocation
		// reuses the pinned region (fast path) under a fresh rkey.
		r1, _ := call[SetupResp](fx, p, SetupReq{App: "a1", File: "f1", Size: 1 << 20, Epoch: 1})
		call[wire.Ack](fx, p, ReleaseReq{App: "a1", File: "f1"}) //nolint:errcheck
		start := p.Now()
		r2, err := call[SetupResp](fx, p, SetupReq{App: "a1", File: "f2", Size: 1 << 20, Epoch: 1})
		if err != nil {
			t.Fatalf("recycled setup: %v", err)
		}
		fastSetup := p.Now() - start
		if fx.pr.Recycles != 1 {
			t.Errorf("recycles = %d", fx.pr.Recycles)
		}
		if r1.RKey == r2.RKey {
			t.Error("recycled region kept its old rkey")
		}
		// Recycled setup skips the multi-ms registration.
		if fastSetup > 2*time.Millisecond {
			t.Errorf("recycled setup took %v", fastSetup)
		}
		// Recycled regions come back zeroed (no cross-tenant leakage).
		region, _ := fx.pr.RegionBytes("a1", "f2")
		for i, b := range region[:64] {
			if b != 0 {
				t.Fatalf("recycled region leaked data at %d", i)
			}
		}
	})
}

func TestGCFreesOrphansKeepsCurrent(t *testing.T) {
	cfg := testCfg()
	cfg.GCInterval = 300 * time.Millisecond
	cfg.GCGrace = 600 * time.Millisecond
	fx := newFixture(7, cfg)
	fx.run(t, func(p *simnet.Proc) {
		ctrl := controller.NewClient(fx.svc, fx.app, "a1", 0)
		// Region with a matching ap-map entry: kept.
		call[SetupResp](fx, p, SetupReq{App: "a1", File: "live", Size: 1 << 20, Epoch: 2}) //nolint:errcheck
		ctrl.SetAppFile(p, "a1", "live", controller.FileEntry{                             //nolint:errcheck
			Peers: []string{"peerA"}, Epoch: 2, RegionSize: 1 << 20,
		}, -1)
		// Region whose epoch the app moved past: freed.
		call[SetupResp](fx, p, SetupReq{App: "a1", File: "stale", Size: 1 << 20, Epoch: 1}) //nolint:errcheck
		ctrl.SetAppFile(p, "a1", "stale", controller.FileEntry{                             //nolint:errcheck
			Peers: []string{"peerB"}, Epoch: 3, RegionSize: 1 << 20,
		}, -1)
		// Region never recorded in the ap-map: freed after the grace period.
		call[SetupResp](fx, p, SetupReq{App: "ghost", File: "leak", Size: 1 << 20, Epoch: 1}) //nolint:errcheck
		// Region with an epoch NEWER than the ap-map (allocation in
		// progress): kept.
		call[SetupResp](fx, p, SetupReq{App: "a1", File: "pending", Size: 1 << 20, Epoch: 9}) //nolint:errcheck
		ctrl.SetAppFile(p, "a1", "pending", controller.FileEntry{                             //nolint:errcheck
			Peers: []string{"peerA"}, Epoch: 8, RegionSize: 1 << 20,
		}, -1)

		p.Sleep(2 * time.Second)
		check := func(app, file string, want bool) {
			_, ok := fx.pr.RegionBytes(app, file)
			if ok != want {
				t.Errorf("region %s/%s present=%v, want %v", app, file, ok, want)
			}
		}
		check("a1", "live", true)     // epoch matches + member
		check("a1", "stale", false)   // app moved to a newer epoch
		check("ghost", "leak", false) // never in the ap-map
		check("a1", "pending", true)  // allocation newer than ap-map
	})
}

func TestCrashLosesMrMap(t *testing.T) {
	fx := newFixture(8, testCfg())
	fx.run(t, func(p *simnet.Proc) {
		call[SetupResp](fx, p, SetupReq{App: "a1", File: "wal", Size: 1 << 20, Epoch: 1}) //nolint:errcheck
		fx.pNode.Crash()
		p.Sleep(10 * time.Millisecond)
		fx.pNode.Restart()
		pr2, err := Start(p, fx.svc, fx.fabric, fx.pNode, fx.cfg)
		if err != nil {
			t.Fatalf("restart: %v", err)
		}
		if pr2.Regions() != 0 {
			t.Errorf("restarted peer kept %d regions", pr2.Regions())
		}
		if _, err := call[LookupResp](fx, p, LookupReq{App: "a1", File: "wal"}); !errors.Is(err, ErrNotFound) {
			t.Errorf("restarted peer served a stale lookup: %v", err)
		}
	})
}
