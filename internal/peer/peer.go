// Package peer implements NCL log peers (§4.3, §4.5): compute nodes that
// lend spare memory to hold replicated log regions. A peer's CPU is involved
// only in the control plane — registration, region setup, release, recovery
// lookup, and the atomic region switch used by catch-up. All data-plane
// traffic reaches its memory through 1-sided RDMA without peer involvement.
//
// The peer enforces the paper's safety hooks:
//
//   - mr-map: (application, ncl file) -> memory region, consulted on
//     recovery lookups; a peer that crashed and restarted has lost its
//     mr-map and correctly rejects recovery requests.
//   - Epoch validation: each region stores the epoch of the allocation; a
//     setup request with a stale epoch is rejected.
//   - Space-leak GC: regions whose application epoch moved on (or whose
//     ap-map entry never appeared) are freed per the §4.5.1 rules.
//   - Memory revocation: the peer can reclaim a region locally and
//     instantly; subsequent RDMA writes fail and the application treats it
//     as a peer failure.
package peer

import (
	"errors"
	"fmt"
	"time"

	"splitft/internal/controller"
	"splitft/internal/model"
	"splitft/internal/rdma"
	"splitft/internal/simnet"
	"splitft/internal/trace"
	"splitft/internal/wire"
)

// Config tunes a peer daemon. The constants live in internal/model (the
// unified hardware cost-model layer); this alias keeps the peer API
// self-contained.
type Config = model.PeerConfig

// DefaultConfig returns the baseline profile's peer parameters (1 GiB
// lendable).
func DefaultConfig() Config {
	return model.Baseline().Peer
}

// Errors returned to ncl-lib.
var (
	ErrNoMem      = errors.New("peer: insufficient lendable memory")
	ErrNotFound   = errors.New("peer: no such region (mr-map miss)")
	ErrStaleEpoch = errors.New("peer: allocation epoch is stale")
	ErrDead       = errors.New("peer: daemon is down")
)

// Wire codes for the peer RPCs (range 0x10–0x1f; see internal/wire).
const (
	CodeSetup            wire.Code = 0x10
	CodeSetupResp        wire.Code = 0x11
	CodeLookup           wire.Code = 0x12
	CodeLookupResp       wire.Code = 0x13
	CodeRelease          wire.Code = 0x14
	CodeAllocStaging     wire.Code = 0x15
	CodeAllocStagingResp wire.Code = 0x16
	CodeCommitSwitch     wire.Code = 0x17
)

// RPC messages. Each implements wire.Marshaler (requests and responses)
// and wire.Unmarshaler (responses, plus requests for the handler side), so
// call sites go through wire.Call with no boxing.
type SetupReq struct {
	App   string
	File  string
	Size  int64
	Epoch int64
}

func (r SetupReq) MarshalWire() wire.Msg {
	return wire.Msg{Code: CodeSetup, S: [3]string{r.App, r.File},
		U: [4]uint64{uint64(r.Size), uint64(r.Epoch)}}
}

func (r *SetupReq) UnmarshalWire(m wire.Msg) error {
	*r = SetupReq{App: m.S[0], File: m.S[1], Size: m.Int(0), Epoch: m.Int(1)}
	return nil
}

type SetupResp struct {
	RKey uint64
}

func (r SetupResp) MarshalWire() wire.Msg {
	return wire.Msg{Code: CodeSetupResp, U: [4]uint64{r.RKey}}
}

func (r *SetupResp) UnmarshalWire(m wire.Msg) error {
	r.RKey = m.U[0]
	return nil
}

type LookupReq struct {
	App  string
	File string
}

func (r LookupReq) MarshalWire() wire.Msg {
	return wire.Msg{Code: CodeLookup, S: [3]string{r.App, r.File}}
}

func (r *LookupReq) UnmarshalWire(m wire.Msg) error {
	*r = LookupReq{App: m.S[0], File: m.S[1]}
	return nil
}

type LookupResp struct {
	RKey  uint64
	Size  int64
	Epoch int64
}

func (r LookupResp) MarshalWire() wire.Msg {
	return wire.Msg{Code: CodeLookupResp, U: [4]uint64{r.RKey, uint64(r.Size), uint64(r.Epoch)}}
}

func (r *LookupResp) UnmarshalWire(m wire.Msg) error {
	*r = LookupResp{RKey: m.U[0], Size: m.Int(1), Epoch: m.Int(2)}
	return nil
}

type ReleaseReq struct {
	App  string
	File string
}

func (r ReleaseReq) MarshalWire() wire.Msg {
	return wire.Msg{Code: CodeRelease, S: [3]string{r.App, r.File}}
}

func (r *ReleaseReq) UnmarshalWire(m wire.Msg) error {
	*r = ReleaseReq{App: m.S[0], File: m.S[1]}
	return nil
}

type AllocStagingReq struct {
	App   string
	File  string
	Size  int64
	Epoch int64
}

func (r AllocStagingReq) MarshalWire() wire.Msg {
	return wire.Msg{Code: CodeAllocStaging, S: [3]string{r.App, r.File},
		U: [4]uint64{uint64(r.Size), uint64(r.Epoch)}}
}

func (r *AllocStagingReq) UnmarshalWire(m wire.Msg) error {
	*r = AllocStagingReq{App: m.S[0], File: m.S[1], Size: m.Int(0), Epoch: m.Int(1)}
	return nil
}

type AllocStagingResp struct {
	StagingID int64
	RKey      uint64
}

func (r AllocStagingResp) MarshalWire() wire.Msg {
	return wire.Msg{Code: CodeAllocStagingResp, U: [4]uint64{uint64(r.StagingID), r.RKey}}
}

func (r *AllocStagingResp) UnmarshalWire(m wire.Msg) error {
	*r = AllocStagingResp{StagingID: m.Int(0), RKey: m.U[1]}
	return nil
}

type CommitSwitchReq struct {
	App       string
	File      string
	StagingID int64
	Epoch     int64
}

func (r CommitSwitchReq) MarshalWire() wire.Msg {
	return wire.Msg{Code: CodeCommitSwitch, S: [3]string{r.App, r.File},
		U: [4]uint64{uint64(r.StagingID), uint64(r.Epoch)}}
}

func (r *CommitSwitchReq) UnmarshalWire(m wire.Msg) error {
	*r = CommitSwitchReq{App: m.S[0], File: m.S[1], StagingID: m.Int(0), Epoch: m.Int(1)}
	return nil
}

type regionKey struct{ app, file string }

type region struct {
	mr        *rdma.MR
	size      int64
	epoch     int64
	createdAt time.Duration
}

// Peer is a running log-peer daemon.
type Peer struct {
	sim  *simnet.Sim
	node *simnet.Node
	name string
	nic  *rdma.NIC
	ctrl *controller.Client
	cfg  Config

	avail      int64
	availDirty bool                  // a republish is pending (coalesced mode)
	regions    map[regionKey]*region // the mr-map
	staging    map[int64]*region
	nextStage  int64
	dead       bool

	// recycled holds freed-but-still-registered regions by size (§4.3:
	// released regions are recycled so the next allocation of the same
	// size skips memory pinning).
	recycled map[int64][]*rdma.MR

	// Stats.
	Recycles int64
}

// Addr returns the RPC address of the peer daemon named name.
func Addr(name string) string { return name + "/peer" }

// Start boots a peer daemon on node: it registers with the controller,
// serves setup/lookup/release/switch RPCs, and runs the space-leak GC.
// Call Start again (with a fresh NIC) after a node restart.
func Start(p *simnet.Proc, svc *controller.Service, fabric *rdma.Fabric, node *simnet.Node, cfg Config) (*Peer, error) {
	pr := &Peer{
		sim:      node.Sim(),
		node:     node,
		name:     node.Name(),
		nic:      fabric.AttachNIC(node),
		cfg:      cfg,
		avail:    cfg.LendableMem,
		regions:  make(map[regionKey]*region),
		staging:  make(map[int64]*region),
		recycled: make(map[int64][]*rdma.MR),
	}
	pr.ctrl = controller.NewClient(svc, node, pr.name, int64(node.Incarnation()))
	node.OnCrash(func() { pr.dead = true })
	if err := pr.ctrl.StartSession(p); err != nil {
		return nil, fmt.Errorf("peer %s: session: %w", pr.name, err)
	}
	if err := pr.ctrl.RegisterPeer(p, controller.PeerInfo{
		Name: pr.name, Addr: Addr(pr.name), Domain: cfg.Domain, AvailMem: pr.avail,
	}); err != nil {
		return nil, fmt.Errorf("peer %s: register: %w", pr.name, err)
	}
	pr.sim.Net().Register(Addr(pr.name), node, pr.handleRPC)
	node.Go("peer-gc:"+pr.name, pr.gcLoop)
	if cfg.PublishInterval > 0 {
		// Coalesced publication: batch available-memory updates so a churny
		// region workload costs at most one Raft proposal per interval.
		node.Go("peer-pub:"+pr.name, func(pp *simnet.Proc) {
			for {
				pp.Sleep(cfg.PublishInterval)
				if !pr.availDirty {
					continue
				}
				pr.availDirty = false
				pr.ctrl.PublishPeer(pp, controller.PeerInfo{ //nolint:errcheck
					Name: pr.name, Addr: Addr(pr.name), Domain: pr.cfg.Domain, AvailMem: pr.avail,
				})
			}
		})
	}
	return pr, nil
}

// Name returns the peer's identity.
func (pr *Peer) Name() string { return pr.name }

// Avail returns the currently unallocated lendable memory.
func (pr *Peer) Avail() int64 { return pr.avail }

// Regions returns the number of live regions in the mr-map (tests).
func (pr *Peer) Regions() int { return len(pr.regions) }

// RegionBytes exposes a region's memory for white-box tests.
func (pr *Peer) RegionBytes(app, file string) ([]byte, bool) {
	r, ok := pr.regions[regionKey{app, file}]
	if !ok {
		return nil, false
	}
	return r.mr.Bytes(), true
}

// rpcOp names the span for each request code (tracing only).
func rpcOp(c wire.Code) string {
	switch c {
	case CodeSetup:
		return "setup"
	case CodeLookup:
		return "lookup"
	case CodeRelease:
		return "release"
	case CodeAllocStaging:
		return "staging"
	case CodeCommitSwitch:
		return "switch"
	default:
		return "unknown"
	}
}

func (pr *Peer) handleRPC(p *simnet.Proc, m simnet.Msg) (simnet.Msg, error) {
	if pr.dead {
		return simnet.Msg{}, ErrDead
	}
	if p.Tracing() {
		sp := p.StartSpan("peer", rpcOp(m.Code), trace.Str("file", m.S[0]+"/"+m.S[1]))
		defer p.EndSpan(sp)
	}
	switch m.Code {
	case CodeSetup:
		var r SetupReq
		r.UnmarshalWire(m) //nolint:errcheck
		resp, err := pr.onSetup(p, r)
		if err != nil {
			return simnet.Msg{}, err
		}
		return resp.MarshalWire(), nil
	case CodeLookup:
		var r LookupReq
		r.UnmarshalWire(m) //nolint:errcheck
		resp, err := pr.onLookup(p, r)
		if err != nil {
			return simnet.Msg{}, err
		}
		return resp.MarshalWire(), nil
	case CodeRelease:
		var r ReleaseReq
		r.UnmarshalWire(m) //nolint:errcheck
		return wire.Ack{}.MarshalWire(), pr.onRelease(p, r)
	case CodeAllocStaging:
		var r AllocStagingReq
		r.UnmarshalWire(m) //nolint:errcheck
		resp, err := pr.onAllocStaging(p, r)
		if err != nil {
			return simnet.Msg{}, err
		}
		return resp.MarshalWire(), nil
	case CodeCommitSwitch:
		var r CommitSwitchReq
		r.UnmarshalWire(m) //nolint:errcheck
		return wire.Ack{}.MarshalWire(), pr.onCommitSwitch(p, r)
	default:
		return simnet.Msg{}, fmt.Errorf("peer: unknown rpc code %#x", m.Code)
	}
}

// onSetup allocates and registers a region for an ncl file (paper step 3).
// This is the only heavyweight peer-CPU involvement, and it happens once
// per file (or per replacement).
func (pr *Peer) onSetup(p *simnet.Proc, r SetupReq) (SetupResp, error) {
	key := regionKey{r.App, r.File}
	if old, ok := pr.regions[key]; ok {
		if r.Epoch < old.epoch {
			return SetupResp{}, ErrStaleEpoch
		}
		if r.Epoch == old.epoch && old.size == r.Size {
			// Duplicate setup at the same epoch: the retried (or stale,
			// still-queued) request of an ambiguous earlier attempt. Return
			// the existing region rather than replacing it — freeing here
			// would invalidate an MR the application may already be writing
			// through, turning one late RPC into a poisoned peer. The retry
			// also re-arms the GC grace clock: the application is clearly
			// still working on getting this file's ap-map entry committed.
			old.createdAt = p.Now()
			return SetupResp{RKey: old.mr.RKey()}, nil
		}
		// Strictly newer epoch (or a resize): replace the old region.
		pr.freeRegion(p, key, old)
	}
	if pr.avail < r.Size {
		return SetupResp{}, ErrNoMem
	}
	pr.avail -= r.Size // reserve before the blocking registration
	p.Sleep(pr.cfg.SetupCPU)
	mr, err := pr.allocRegion(p, r.Size)
	if err != nil {
		pr.avail += r.Size
		return SetupResp{}, err
	}
	pr.regions[key] = &region{mr: mr, size: r.Size, epoch: r.Epoch, createdAt: p.Now()}
	pr.publishAvail(p)
	return SetupResp{RKey: mr.RKey()}, nil
}

// allocRegion prefers a recycled, still-pinned region of the right size
// (fresh rkey, no re-pinning); otherwise it registers new memory.
func (pr *Peer) allocRegion(p *simnet.Proc, size int64) (*rdma.MR, error) {
	if pool := pr.recycled[size]; len(pool) > 0 {
		mr := pool[len(pool)-1]
		pr.recycled[size] = pool[:len(pool)-1]
		if err := pr.nic.RefreshMR(p, mr); err == nil {
			clear := mr.Bytes()
			for i := range clear {
				clear[i] = 0
			}
			pr.Recycles++
			return mr, nil
		}
		// NIC bounced since the region was pooled: fall through.
	}
	return pr.nic.RegisterMR(p, make([]byte, size))
}

// onLookup serves application recovery (§4.5.1): return the region key if
// the mr-map has it, reject otherwise (e.g. this peer crashed and restarted
// since the allocation).
func (pr *Peer) onLookup(_ *simnet.Proc, r LookupReq) (LookupResp, error) {
	reg, ok := pr.regions[regionKey{r.App, r.File}]
	if !ok {
		return LookupResp{}, ErrNotFound
	}
	return LookupResp{RKey: reg.mr.RKey(), Size: reg.size, Epoch: reg.epoch}, nil
}

// onRelease frees the region when the application deletes the ncl file.
func (pr *Peer) onRelease(p *simnet.Proc, r ReleaseReq) error {
	key := regionKey{r.App, r.File}
	reg, ok := pr.regions[key]
	if !ok {
		return nil // idempotent
	}
	pr.freeRegion(p, key, reg)
	pr.publishAvail(p)
	return nil
}

// onAllocStaging allocates a staging region for the atomic catch-up switch
// (§4.5.1): the recovering application RDMA-writes the recovered content
// into staging, then commits the switch.
func (pr *Peer) onAllocStaging(p *simnet.Proc, r AllocStagingReq) (AllocStagingResp, error) {
	if pr.avail < r.Size {
		return AllocStagingResp{}, ErrNoMem
	}
	pr.avail -= r.Size
	p.Sleep(pr.cfg.SetupCPU)
	mr, err := pr.allocRegion(p, r.Size)
	if err != nil {
		pr.avail += r.Size
		return AllocStagingResp{}, err
	}
	pr.nextStage++
	id := pr.nextStage
	pr.staging[id] = &region{mr: mr, size: r.Size, epoch: r.Epoch, createdAt: p.Now()}
	return AllocStagingResp{StagingID: id, RKey: mr.RKey()}, nil
}

// onCommitSwitch atomically repoints the mr-map entry to the staged region
// and invalidates the old one. "Atomic" is trivial here — the handler body
// runs without yielding between the two assignments.
func (pr *Peer) onCommitSwitch(p *simnet.Proc, r CommitSwitchReq) error {
	stage, ok := pr.staging[r.StagingID]
	if !ok {
		return ErrNotFound
	}
	delete(pr.staging, r.StagingID)
	key := regionKey{r.App, r.File}
	if old, ok := pr.regions[key]; ok {
		pr.freeRegion(p, key, old)
	}
	stage.epoch = r.Epoch
	pr.regions[key] = stage
	pr.publishAvail(p)
	return nil
}

func (pr *Peer) freeRegion(_ *simnet.Proc, key regionKey, reg *region) {
	reg.mr.Invalidate()
	// Keep the memory pinned for reuse by a future same-size allocation.
	pr.recycled[reg.size] = append(pr.recycled[reg.size], reg.mr)
	pr.avail += reg.size
	delete(pr.regions, key)
}

// publishAvail updates the controller's (hint) view of available memory in
// the background so data-path RPCs don't wait on a Raft commit. With
// PublishInterval set the update is only marked dirty and the publisher
// proc batches it; otherwise it goes out immediately (as one unconditional
// set — the value is a hint, so no read-modify-write is needed).
func (pr *Peer) publishAvail(p *simnet.Proc) {
	if pr.cfg.PublishInterval > 0 {
		pr.availDirty = true
		return
	}
	info := controller.PeerInfo{Name: pr.name, Addr: Addr(pr.name), Domain: pr.cfg.Domain, AvailMem: pr.avail}
	p.GoOn(pr.node, "peer-avail:"+pr.name, func(up *simnet.Proc) {
		pr.ctrl.PublishPeer(up, info) //nolint:errcheck
	})
}

// Revoke reclaims the memory of one region at the peer's will (memory
// pressure, §4.5.2). Reclamation is local and instantaneous: the MR is
// invalidated so subsequent RDMA writes fail and the application treats
// this peer as failed. Background bookkeeping follows.
func (pr *Peer) Revoke(p *simnet.Proc, app, file string) bool {
	key := regionKey{app, file}
	reg, ok := pr.regions[key]
	if !ok {
		return false
	}
	pr.freeRegion(p, key, reg)
	pr.publishAvail(p)
	return true
}

// gcLoop implements the §4.5.1 space-leak rules: for each region with epoch
// e_r, fetch the application's current ap-map entry epoch e. If e > e_r the
// application moved on — free. If e < e_r the allocation may still be in
// progress — keep. If e == e_r, free only if this peer is not a member. A
// region with no ap-map entry at all is freed once older than the grace
// period (the application died between allocation and ap-map update).
func (pr *Peer) gcLoop(p *simnet.Proc) {
	for {
		p.Sleep(pr.cfg.GCInterval)
		// Snapshot keys in deterministic order.
		keys := make([]regionKey, 0, len(pr.regions))
		for k := range pr.regions {
			keys = append(keys, k)
		}
		sortRegionKeys(keys)
		freed := false
		for _, k := range keys {
			reg, ok := pr.regions[k]
			if !ok {
				continue // released while we slept
			}
			entry, _, found, err := pr.ctrl.GetAppFile(p, k.app, k.file)
			if err != nil {
				continue // controller unavailable; retry next round
			}
			if cur, ok := pr.regions[k]; !ok || cur != reg {
				// Released or replaced while the controller query was in
				// flight. Freeing the stale pointer would pool its MR a second
				// time, silently aliasing two future regions onto one MR.
				continue
			}
			if !found {
				if p.Now()-reg.createdAt > pr.cfg.GCGrace {
					pr.freeRegion(p, k, reg)
					freed = true
				}
				continue
			}
			if reg.epoch > entry.Epoch {
				// Allocation newer than the ap-map: a replacement that has
				// not CASed its membership yet. Keep it.
				continue
			}
			member := false
			for _, name := range entry.Peers {
				if name == pr.name {
					member = true
					break
				}
			}
			// A region the current membership names is live no matter how
			// old its epoch: survivors of a replacement keep their original
			// allocation while the entry's epoch advances past it. Only
			// regions the entry does not name — abandoned allocations,
			// replaced-out members — are garbage, and only after the grace
			// period so an in-flight setup is not swept mid-handshake.
			if !member && p.Now()-reg.createdAt > pr.cfg.GCGrace {
				pr.freeRegion(p, k, reg)
				freed = true
			}
		}
		if freed {
			pr.publishAvail(p)
		}
	}
}

func sortRegionKeys(keys []regionKey) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && less(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

func less(a, b regionKey) bool {
	if a.app != b.app {
		return a.app < b.app
	}
	return a.file < b.file
}
