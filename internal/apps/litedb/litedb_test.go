package litedb

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"splitft/internal/harness"
	"splitft/internal/simnet"
)

func testConfig(d Durability) Config {
	cfg := DefaultConfig()
	cfg.Durability = d
	cfg.NPages = 128
	cfg.WALBytes = 128 << 10 // ~31 frames before wrap
	return cfg
}

func TestSetGetAllDurabilities(t *testing.T) {
	for _, d := range []Durability{Weak, Strong, SplitFT} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			c := harness.New(harness.Options{Seed: 1, NumPeers: 4})
			err := c.Run(func(p *simnet.Proc) error {
				fs, err := c.NewFS(p, "lite", 0)
				if err != nil {
					return err
				}
				db, err := Open(p, fs, testConfig(d))
				if err != nil {
					return err
				}
				for i := 0; i < 60; i++ {
					if err := db.Set(p, fmt.Sprintf("row%04d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
						return err
					}
				}
				for i := 0; i < 60; i++ {
					v, ok, err := db.Get(p, fmt.Sprintf("row%04d", i))
					if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
						return fmt.Errorf("get row%04d = %q %v %v", i, v, ok, err)
					}
				}
				if err := db.Delete(p, "row0005"); err != nil {
					return err
				}
				if _, ok, _ := db.Get(p, "row0005"); ok {
					return errors.New("deleted row still present")
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCircularWALWrapsAndCheckpoints(t *testing.T) {
	c := harness.New(harness.Options{Seed: 2, NumPeers: 4})
	err := c.Run(func(p *simnet.Proc) error {
		fs, _ := c.NewFS(p, "lite", 0)
		db, err := Open(p, fs, testConfig(SplitFT))
		if err != nil {
			return err
		}
		val := bytes.Repeat([]byte("z"), 100)
		for i := 0; i < 200; i++ { // >> 31 frames: multiple wraps
			if err := db.Set(p, fmt.Sprintf("row%04d", i%50), val); err != nil {
				return err
			}
		}
		if db.Checkpoints == 0 {
			return errors.New("WAL never wrapped/checkpointed")
		}
		if db.walOff >= db.cfg.WALBytes {
			return fmt.Errorf("walOff %d beyond capacity", db.walOff)
		}
		// Data durable across the wraps.
		for i := 0; i < 50; i++ {
			if _, ok, _ := db.Get(p, fmt.Sprintf("row%04d", i)); !ok {
				return fmt.Errorf("row%04d lost after wraps", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func crashRecover(t *testing.T, seed int64, d Durability, writes int) (acked, survived int) {
	t.Helper()
	c := harness.New(harness.Options{Seed: seed, NumPeers: 4})
	err := c.Run(func(p *simnet.Proc) error {
		c.AppNode.Go("app-v1", func(ap *simnet.Proc) {
			fs, err := c.NewFS(ap, "lite", 0)
			if err != nil {
				return
			}
			db, err := Open(ap, fs, testConfig(d))
			if err != nil {
				return
			}
			for i := 0; i < writes; i++ {
				if err := db.Set(ap, fmt.Sprintf("row%04d", i), []byte(fmt.Sprintf("val%d", i))); err != nil {
					return
				}
				acked = i + 1
			}
			ap.Sleep(time.Hour)
		})
		p.Sleep(400 * time.Millisecond)
		c.CrashApp()
		p.Sleep(10 * time.Millisecond)
		c.RestartApp()
		fs2, err := c.NewFS(p, "lite", 1)
		if err != nil {
			return err
		}
		db2, err := Recover(p, fs2, testConfig(d))
		if err != nil {
			return err
		}
		for i := 0; i < acked; i++ {
			v, ok, err := db2.Get(p, fmt.Sprintf("row%04d", i))
			if err != nil {
				return err
			}
			if ok && string(v) == fmt.Sprintf("val%d", i) {
				survived++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return acked, survived
}

func TestCrashRecoverySplitFTNoLoss(t *testing.T) {
	acked, survived := crashRecover(t, 3, SplitFT, 120)
	if acked == 0 || survived != acked {
		t.Fatalf("acked=%d survived=%d", acked, survived)
	}
}

func TestCrashRecoveryStrongNoLoss(t *testing.T) {
	acked, survived := crashRecover(t, 4, Strong, 50)
	if acked == 0 || survived != acked {
		t.Fatalf("acked=%d survived=%d", acked, survived)
	}
}

func TestCrashRecoveryWeakLoses(t *testing.T) {
	acked, survived := crashRecover(t, 5, Weak, 400)
	if acked == 0 {
		t.Fatal("nothing acked")
	}
	if survived >= acked {
		t.Fatalf("weak lost nothing (%d/%d)", survived, acked)
	}
}

func TestRecoveryAcrossWALWrap(t *testing.T) {
	// Crash after the WAL wrapped: recovery must merge the checkpointed db
	// file with the newest WAL generation (the circular case of Fig 7ii).
	c := harness.New(harness.Options{Seed: 6, NumPeers: 4})
	err := c.Run(func(p *simnet.Proc) error {
		total := 0
		c.AppNode.Go("app-v1", func(ap *simnet.Proc) {
			fs, _ := c.NewFS(ap, "lite", 0)
			db, err := Open(ap, fs, testConfig(SplitFT))
			if err != nil {
				return
			}
			for i := 0; i < 150; i++ { // wraps at least twice
				if err := db.Set(ap, fmt.Sprintf("row%04d", i), []byte(fmt.Sprintf("val%d", i))); err != nil {
					return
				}
				total = i + 1
			}
			ap.Sleep(time.Hour)
		})
		p.Sleep(600 * time.Millisecond)
		c.CrashApp()
		p.Sleep(10 * time.Millisecond)
		c.RestartApp()
		fs2, _ := c.NewFS(p, "lite", 1)
		db2, err := Recover(p, fs2, testConfig(SplitFT))
		if err != nil {
			return err
		}
		for i := 0; i < total; i++ {
			v, ok, _ := db2.Get(p, fmt.Sprintf("row%04d", i))
			if !ok || string(v) != fmt.Sprintf("val%d", i) {
				return fmt.Errorf("row%04d lost across wrap (got %q ok=%v)", i, v, ok)
			}
		}
		// And the recovered db keeps working.
		if err := db2.Set(p, "after", []byte("recovery")); err != nil {
			return err
		}
		v, ok, _ := db2.Get(p, "after")
		if !ok || string(v) != "recovery" {
			return errors.New("write after recovery failed")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPageOverflowError(t *testing.T) {
	c := harness.New(harness.Options{Seed: 7, NumPeers: 3})
	err := c.Run(func(p *simnet.Proc) error {
		fs, _ := c.NewFS(p, "lite", 0)
		cfg := testConfig(SplitFT)
		cfg.NPages = 1 // everything on one page
		db, err := Open(p, fs, cfg)
		if err != nil {
			return err
		}
		big := bytes.Repeat([]byte("B"), 1000)
		var lastErr error
		for i := 0; i < 10; i++ {
			lastErr = db.Set(p, fmt.Sprintf("big%d", i), big)
			if lastErr != nil {
				break
			}
		}
		if !errors.Is(lastErr, ErrPageFull) {
			return fmt.Errorf("expected page overflow, got %v", lastErr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Page codec property: set/get roundtrips for arbitrary key sets.
func TestQuickPageCodec(t *testing.T) {
	f := func(pairs map[string]string) bool {
		img := make([]byte, 8192)
		shadow := map[string]string{}
		for k, v := range pairs {
			if len(k) > 200 || len(v) > 200 {
				continue
			}
			next, err := pageSet(img, k, []byte(v))
			if err != nil {
				continue // overflow: acceptable
			}
			img = next
			shadow[k] = v
		}
		for k, v := range shadow {
			got, ok := pageGet(img, k)
			if !ok || string(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
