// Package litedb is the SQLite-style embedded transactional store ported to
// SplitFT (§4.7). It is page-based: keys hash to fixed-size pages of a
// database file on the dfs. Every update transaction appends a full page
// image as a frame to a write-ahead log that is used as a circular buffer:
// when the WAL fills, a checkpoint writes all dirty pages back to the
// database file and the WAL restarts from offset zero with a new salt —
// the overwrite-based log reclamation of Table 2, and the reason NCL's
// recovery must copy whole regions rather than log tails (Fig 7ii).
//
// Frames carry a salt and a CRC, so recovery applies exactly the frames of
// the newest WAL generation and stops at the first torn frame. Frames are
// page images, so replay is idempotent (replaying an already-checkpointed
// generation is harmless).
//
// The store runs in exclusive locking mode (§5 setup): one transaction at a
// time, no cross-connection locking overhead. The SplitFT port is the
// O_NCL flag on the WAL open call.
package litedb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"splitft/internal/core"
	"splitft/internal/model"
	"splitft/internal/simnet"
)

// Durability mirrors the other stores' configurations.
type Durability int

const (
	// Weak leaves WAL frames in the dfs client cache (synchronous=off).
	Weak Durability = iota
	// Strong fsyncs the WAL after every transaction (synchronous=full).
	Strong
	// SplitFT keeps the WAL in near-compute logs.
	SplitFT
)

func (d Durability) String() string {
	switch d {
	case Weak:
		return "weak"
	case Strong:
		return "strong"
	default:
		return "splitft"
	}
}

// Config tunes the store. NPages and PageSize fix the database geometry and
// must match between Open and Recover (they are schema, not state).
type Config struct {
	Path       string
	Durability Durability
	PageSize   int
	NPages     int
	// WALBytes is the circular WAL capacity (and ncl region size).
	WALBytes int64
	// LiteDBCosts is the per-transaction CPU cost model; the constants live
	// in internal/model and the fields promote (cfg.TxnCPU etc.).
	model.LiteDBCosts
}

// DefaultConfig returns simulation-scaled settings; CPU costs come from the
// baseline profile.
func DefaultConfig() Config {
	return Config{
		Path:        "/lite/data.db",
		Durability:  SplitFT,
		PageSize:    4096,
		NPages:      2048,
		WALBytes:    4 << 20,
		LiteDBCosts: model.Baseline().Apps.LiteDB,
	}
}

const frameHdrLen = 24 // [8B pageID][8B salt][4B crc][4B reserved]

// ErrPageFull is returned when a page cannot hold its hashed keys; size the
// database with more pages.
var ErrPageFull = errors.New("litedb: page overflow")

// DB is an open database.
type DB struct {
	fs   *core.FS
	node *simnet.Node
	cfg  Config

	mu simnet.Mutex // exclusive locking mode: one txn at a time

	dbFile  core.File
	wal     core.File
	dirty   map[int][]byte // pageID -> current page image (not yet checkpointed)
	salt    uint64
	walOff  int64
	frameSz int64

	// Stats.
	Txns        int64
	Reads       int64
	Checkpoints int64
}

func (db *DB) walPath() string { return db.cfg.Path + "-wal" }

func (db *DB) walFlags() core.OpenFlag {
	if db.cfg.Durability == SplitFT {
		return core.O_NCL | core.O_CREATE
	}
	return core.O_CREATE
}

// Open creates a fresh database.
func Open(p *simnet.Proc, fs *core.FS, cfg Config) (*DB, error) {
	db := &DB{fs: fs, node: fs.Node(), cfg: cfg, dirty: make(map[int][]byte), salt: 1}
	db.frameSz = int64(frameHdrLen + cfg.PageSize)
	f, err := fs.OpenFile(p, cfg.Path, core.O_CREATE|core.O_EXTENT, 0)
	if err != nil {
		return nil, err
	}
	db.dbFile = f
	w, err := fs.OpenFile(p, db.walPath(), db.walFlags(), cfg.WALBytes)
	if err != nil {
		return nil, err
	}
	db.wal = w
	return db, nil
}

func (db *DB) pageOf(key string) int {
	return int(crc32.ChecksumIEEE([]byte(key))) % db.cfg.NPages
}

// readPage returns the current image of a page: the dirty copy if present,
// else the database file content (zero page if never written).
func (db *DB) readPage(p *simnet.Proc, id int) ([]byte, error) {
	if img, ok := db.dirty[id]; ok {
		return img, nil
	}
	img := make([]byte, db.cfg.PageSize)
	if _, err := db.dbFile.Pread(p, img, int64(id)*int64(db.cfg.PageSize)); err != nil {
		return nil, err
	}
	return img, nil
}

// Page content: [2B count] then entries [2B klen][2B vlen][key][value],
// unordered (linear scan within a page, as leaf cells would be).
func pageGet(img []byte, key string) ([]byte, bool) {
	count := int(binary.LittleEndian.Uint16(img[0:2]))
	pos := 2
	for i := 0; i < count; i++ {
		klen := int(binary.LittleEndian.Uint16(img[pos : pos+2]))
		vlen := int(binary.LittleEndian.Uint16(img[pos+2 : pos+4]))
		pos += 4
		k := string(img[pos : pos+klen])
		pos += klen
		if k == key {
			out := make([]byte, vlen)
			copy(out, img[pos:pos+vlen])
			return out, true
		}
		pos += vlen
	}
	return nil, false
}

func pageSet(img []byte, key string, value []byte) ([]byte, error) {
	type cell struct {
		k string
		v []byte
	}
	count := int(binary.LittleEndian.Uint16(img[0:2]))
	cells := make([]cell, 0, count+1)
	pos := 2
	for i := 0; i < count; i++ {
		klen := int(binary.LittleEndian.Uint16(img[pos : pos+2]))
		vlen := int(binary.LittleEndian.Uint16(img[pos+2 : pos+4]))
		pos += 4
		k := string(img[pos : pos+klen])
		pos += klen
		v := img[pos : pos+vlen]
		pos += vlen
		if k != key {
			cells = append(cells, cell{k: k, v: v})
		}
	}
	if value != nil {
		cells = append(cells, cell{k: key, v: value})
	}
	out := make([]byte, len(img))
	need := 2
	for _, c := range cells {
		need += 4 + len(c.k) + len(c.v)
	}
	if need > len(out) {
		return nil, fmt.Errorf("%w: %d bytes needed in a %d-byte page", ErrPageFull, need, len(out))
	}
	binary.LittleEndian.PutUint16(out[0:2], uint16(len(cells)))
	pos = 2
	for _, c := range cells {
		binary.LittleEndian.PutUint16(out[pos:pos+2], uint16(len(c.k)))
		binary.LittleEndian.PutUint16(out[pos+2:pos+4], uint16(len(c.v)))
		pos += 4
		copy(out[pos:], c.k)
		pos += len(c.k)
		copy(out[pos:], c.v)
		pos += len(c.v)
	}
	return out, nil
}

// Get runs a read transaction.
func (db *DB) Get(p *simnet.Proc, key string) ([]byte, bool, error) {
	db.mu.Lock(p)
	defer db.mu.Unlock(p)
	db.node.CPU().Use(p, db.cfg.ReadCPU)
	img, err := db.readPage(p, db.pageOf(key))
	if err != nil {
		return nil, false, err
	}
	db.Reads++
	v, ok := pageGet(img, key)
	return v, ok, nil
}

// Set runs an update transaction: modify the page, append a WAL frame
// (durable per configuration), and keep the page dirty until checkpoint.
func (db *DB) Set(p *simnet.Proc, key string, value []byte) error {
	return db.update(p, key, value)
}

// Delete removes a key.
func (db *DB) Delete(p *simnet.Proc, key string) error {
	return db.update(p, key, nil)
}

func (db *DB) update(p *simnet.Proc, key string, value []byte) error {
	db.mu.Lock(p)
	defer db.mu.Unlock(p)
	p.Sleep(db.cfg.TxnCPU)
	id := db.pageOf(key)
	img, err := db.readPage(p, id)
	if err != nil {
		return err
	}
	newImg, err := pageSet(img, key, value)
	if err != nil {
		return err
	}
	if err := db.appendFrame(p, id, newImg); err != nil {
		return err
	}
	db.dirty[id] = newImg
	db.Txns++
	return nil
}

// appendFrame writes one page image to the circular WAL, checkpointing
// first if the frame would not fit.
func (db *DB) appendFrame(p *simnet.Proc, id int, img []byte) error {
	if db.walOff+db.frameSz > db.cfg.WALBytes {
		if err := db.checkpointLocked(p); err != nil {
			return err
		}
	}
	frame := make([]byte, db.frameSz)
	binary.LittleEndian.PutUint64(frame[0:8], uint64(id))
	binary.LittleEndian.PutUint64(frame[8:16], db.salt)
	binary.LittleEndian.PutUint32(frame[16:20], crc32.ChecksumIEEE(img))
	copy(frame[frameHdrLen:], img)
	if _, err := db.wal.Pwrite(p, frame, db.walOff); err != nil {
		return err
	}
	if db.cfg.Durability == Strong {
		if err := db.wal.Sync(p); err != nil {
			return err
		}
	}
	db.walOff += db.frameSz
	return nil
}

// checkpointLocked writes every dirty page into the database file, syncs
// it, and restarts the WAL at offset zero under a new salt — the overwrite
// reclaim. Caller holds db.mu.
func (db *DB) checkpointLocked(p *simnet.Proc) error {
	ids := make([]int, 0, len(db.dirty))
	for id := range db.dirty {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if _, err := db.dbFile.Pwrite(p, db.dirty[id], int64(id)*int64(db.cfg.PageSize)); err != nil {
			return err
		}
	}
	if err := db.dbFile.Sync(p); err != nil {
		return err
	}
	db.dirty = make(map[int][]byte)
	db.salt++
	db.walOff = 0
	db.Checkpoints++
	return nil
}

// Checkpoint forces a checkpoint (tests and benches).
func (db *DB) Checkpoint(p *simnet.Proc) error {
	db.mu.Lock(p)
	defer db.mu.Unlock(p)
	return db.checkpointLocked(p)
}

// Close releases file handles.
func (db *DB) Close(p *simnet.Proc) {
	db.dbFile.Close(p)
	db.wal.Close(p)
}

// ---- Recovery ----

// Recover rebuilds the database after a crash: open the database file,
// recover the WAL (from NCL peers in SplitFT mode), replay the newest
// generation of frames, then checkpoint and restart the WAL cleanly.
func Recover(p *simnet.Proc, fs *core.FS, cfg Config) (*DB, error) {
	db := &DB{fs: fs, node: fs.Node(), cfg: cfg, dirty: make(map[int][]byte), salt: 1}
	db.frameSz = int64(frameHdrLen + cfg.PageSize)
	f, err := fs.OpenFile(p, cfg.Path, core.O_CREATE|core.O_EXTENT, 0)
	if err != nil {
		return nil, err
	}
	db.dbFile = f

	if fs.Exists(p, db.walPath()) {
		// Reopen (NCL recovery in SplitFT mode), replay the newest
		// generation, and keep writing into the same WAL from offset zero
		// under a fresh salt — old frames are simply overwritten, exactly
		// the circular reuse the file saw in normal operation.
		flags := db.walFlags() &^ core.O_CREATE
		w, err := fs.OpenFile(p, db.walPath(), flags, cfg.WALBytes)
		if err != nil {
			return nil, err
		}
		db.salt = db.replayWAL(p, w) + 1
		db.wal = w
	} else {
		w, err := fs.OpenFile(p, db.walPath(), db.walFlags(), cfg.WALBytes)
		if err != nil {
			return nil, err
		}
		db.wal = w
	}
	// Make the replayed state durable so the old generation is disposable.
	if len(db.dirty) > 0 {
		if err := db.checkpointLocked(p); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// replayWAL applies the frames of the newest WAL generation (the salt of
// frame zero) in order, stopping at a salt change or CRC failure. Frames
// are page images, so replay is idempotent. It returns the largest salt
// seen so the new generation is strictly newer.
func (db *DB) replayWAL(p *simnet.Proc, w core.File) uint64 {
	size := w.Size()
	data := make([]byte, size)
	if _, err := w.Pread(p, data, 0); err != nil {
		return db.salt
	}
	p.Sleep(time.Duration(float64(len(data)) / 150e6 * float64(time.Second))) // parse
	if int64(len(data)) < db.frameSz {
		return db.salt
	}
	gen := binary.LittleEndian.Uint64(data[8:16])
	maxSalt := gen
	for off := int64(0); off+db.frameSz <= int64(len(data)); off += db.frameSz {
		fr := data[off : off+db.frameSz]
		id := int(binary.LittleEndian.Uint64(fr[0:8]))
		salt := binary.LittleEndian.Uint64(fr[8:16])
		crc := binary.LittleEndian.Uint32(fr[16:20])
		if salt > maxSalt {
			maxSalt = salt
		}
		img := fr[frameHdrLen:]
		if salt != gen || crc32.ChecksumIEEE(img) != crc || id < 0 || id >= db.cfg.NPages {
			break
		}
		pg := make([]byte, db.cfg.PageSize)
		copy(pg, img)
		db.dirty[id] = pg
	}
	return maxSalt
}

// DirtyPages returns the number of uncheckpointed pages (tests).
func (db *DB) DirtyPages() int { return len(db.dirty) }
