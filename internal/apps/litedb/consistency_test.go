package litedb

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"splitft/internal/harness"
	"splitft/internal/simnet"
)

// Consistency property for the circular-WAL store: for any random sequence
// of transactions and any crash point — including crashes spanning WAL
// wrap-arounds and checkpoints — a recovered SplitFT database returns the
// last acknowledged value of every row.
func TestQuickSplitFTConsistencyAcrossCrash(t *testing.T) {
	f := func(seed int64, nTxns uint16, crashMS uint8) bool {
		txns := int(nTxns)%250 + 30
		c := harness.New(harness.Options{Seed: seed, NumPeers: 4})
		shadow := map[string]string{}
		ok := true
		err := c.Run(func(p *simnet.Proc) error {
			c.AppNode.Go("app-v1", func(ap *simnet.Proc) {
				fs, err := c.NewFS(ap, "liteq", 0)
				if err != nil {
					return
				}
				cfg := testConfig(SplitFT)
				cfg.WALBytes = 64 << 10 // ~15 frames: wraps often
				db, err := Open(ap, fs, cfg)
				if err != nil {
					return
				}
				rng := seed
				for i := 0; i < txns; i++ {
					rng = rng*6364136223846793005 + 1442695040888963407
					key := fmt.Sprintf("row%03d", uint64(rng)%97)
					if uint64(rng)>>32%11 == 0 {
						if db.Delete(ap, key) != nil {
							return
						}
						delete(shadow, key)
					} else {
						val := fmt.Sprintf("v%d-%d", seed, i)
						if db.Set(ap, key, []byte(val)) != nil {
							return
						}
						shadow[key] = val
					}
				}
				ap.Sleep(time.Hour)
			})
			p.Sleep(150*time.Millisecond + time.Duration(crashMS)*time.Millisecond)
			c.CrashApp()
			p.Sleep(10 * time.Millisecond)
			c.RestartApp()
			fs2, err := c.NewFS(p, "liteq", 1)
			if err != nil {
				return err
			}
			cfg := testConfig(SplitFT)
			cfg.WALBytes = 64 << 10
			db2, err := Recover(p, fs2, cfg)
			if err != nil {
				return err
			}
			for key, want := range shadow {
				v, found, err := db2.Get(p, key)
				if err != nil || !found || string(v) != want {
					ok = false
					return nil
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
