package kvell

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"splitft/internal/harness"
	"splitft/internal/simnet"
)

func testConfig(m Mode) Config {
	cfg := DefaultConfig()
	cfg.Mode = m
	cfg.JournalBytes = 64 << 10
	cfg.JournalRegion = 256 << 10
	return cfg
}

func withStore(t *testing.T, seed int64, m Mode, fn func(p *simnet.Proc, c *harness.Cluster, s *Store)) {
	t.Helper()
	c := harness.New(harness.Options{Seed: seed, NumPeers: 4})
	err := c.Run(func(p *simnet.Proc) error {
		fs, err := c.NewFS(p, "kvell", 0)
		if err != nil {
			return err
		}
		s, err := Open(p, fs, testConfig(m))
		if err != nil {
			return err
		}
		fn(p, c, s)
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestPutGetAllModes(t *testing.T) {
	for _, m := range []Mode{DFTSync, DFTAsync, NCLTier} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			withStore(t, 1, m, func(p *simnet.Proc, c *harness.Cluster, s *Store) {
				for i := 0; i < 200; i++ {
					if err := s.Put(p, fmt.Sprintf("k%04d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
						t.Fatalf("put: %v", err)
					}
				}
				for i := 0; i < 200; i++ {
					v, ok, err := s.Get(p, fmt.Sprintf("k%04d", i))
					if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
						t.Fatalf("get k%04d = %q %v %v", i, v, ok, err)
					}
				}
				if _, ok, _ := s.Get(p, "nope"); ok {
					t.Fatal("phantom key")
				}
			})
		})
	}
}

func TestFlushConvertsJournalToChunks(t *testing.T) {
	withStore(t, 2, NCLTier, func(p *simnet.Proc, c *harness.Cluster, s *Store) {
		val := bytes.Repeat([]byte("x"), 200)
		for i := 0; i < 1000; i++ { // ~230KB >> 64KB threshold
			if err := s.Put(p, fmt.Sprintf("k%05d", i%400), val); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		p.Sleep(2 * time.Second)
		st := s.Stats()
		if st.Flushes == 0 || st.Chunks == 0 {
			t.Fatalf("no chunk flush: %+v", st)
		}
		// Chunks are on the dfs; only the active journal remains in NCL.
		if n := len(s.fs.ListDFS("/kvell/chunk-")); n != st.Chunks {
			t.Errorf("dfs chunks = %d, stats %d", n, st.Chunks)
		}
		names, _ := s.fs.ListNCL(p)
		if len(names) != 1 {
			t.Errorf("ncl journals = %v, want only the active one", names)
		}
		// All values still readable (journal + chunk paths).
		for i := 0; i < 400; i++ {
			v, ok, err := s.Get(p, fmt.Sprintf("k%05d", i))
			if err != nil || !ok || !bytes.Equal(v, val) {
				t.Fatalf("get after flush: %v %v", ok, err)
			}
		}
	})
}

func TestRandomWriteLatencyNCLTierVsDFTSync(t *testing.T) {
	lat := func(m Mode) time.Duration {
		var avg time.Duration
		withStore(t, 3, m, func(p *simnet.Proc, c *harness.Cluster, s *Store) {
			val := bytes.Repeat([]byte("r"), 120)
			start := p.Now()
			const n = 300
			for i := 0; i < n; i++ {
				s.Put(p, fmt.Sprintf("rnd%07d", (i*7919)%100000), val)
			}
			avg = (p.Now() - start) / n
		})
		return avg
	}
	sync := lat(DFTSync)
	tier := lat(NCLTier)
	if tier*50 > sync {
		t.Fatalf("NCL tier (%v) should be orders faster than dft-sync (%v) for random writes", tier, sync)
	}
}

func crashRecover(t *testing.T, seed int64, m Mode, writes int) (acked, survived int) {
	t.Helper()
	c := harness.New(harness.Options{Seed: seed, NumPeers: 4})
	err := c.Run(func(p *simnet.Proc) error {
		c.AppNode.Go("app-v1", func(ap *simnet.Proc) {
			fs, err := c.NewFS(ap, "kvell", 0)
			if err != nil {
				return
			}
			s, err := Open(ap, fs, testConfig(m))
			if err != nil {
				return
			}
			for i := 0; i < writes; i++ {
				if err := s.Put(ap, fmt.Sprintf("k%05d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
					return
				}
				acked = i + 1
			}
			ap.Sleep(time.Hour)
		})
		p.Sleep(400 * time.Millisecond)
		c.CrashApp()
		p.Sleep(10 * time.Millisecond)
		c.RestartApp()
		fs2, err := c.NewFS(p, "kvell", 1)
		if err != nil {
			return err
		}
		s2, err := Recover(p, fs2, testConfig(m))
		if err != nil {
			return err
		}
		for i := 0; i < acked; i++ {
			v, ok, err := s2.Get(p, fmt.Sprintf("k%05d", i))
			if err != nil {
				return err
			}
			if ok && string(v) == fmt.Sprintf("v%d", i) {
				survived++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return acked, survived
}

func TestCrashRecoveryNCLTierNoLoss(t *testing.T) {
	acked, survived := crashRecover(t, 4, NCLTier, 2500) // spans several flushes
	if acked == 0 || survived != acked {
		t.Fatalf("acked=%d survived=%d", acked, survived)
	}
}

func TestCrashRecoveryDFTSyncNoLoss(t *testing.T) {
	acked, survived := crashRecover(t, 5, DFTSync, 60)
	if acked == 0 || survived != acked {
		t.Fatalf("acked=%d survived=%d", acked, survived)
	}
}

func TestCrashRecoveryDFTAsyncLoses(t *testing.T) {
	acked, survived := crashRecover(t, 6, DFTAsync, 2500)
	if acked == 0 {
		t.Fatal("nothing acked")
	}
	if survived >= acked {
		t.Fatalf("async mode lost nothing (%d/%d)", survived, acked)
	}
}

func TestRecoveryAfterCrashMidFlush(t *testing.T) {
	// Crash while a chunk flush is in flight: the chunk may be incomplete
	// (no magic), but the journal still holds the data.
	c := harness.New(harness.Options{Seed: 7, NumPeers: 4})
	err := c.Run(func(p *simnet.Proc) error {
		total := 0
		c.AppNode.Go("app-v1", func(ap *simnet.Proc) {
			fs, _ := c.NewFS(ap, "kvell", 0)
			cfg := testConfig(NCLTier)
			s, err := Open(ap, fs, cfg)
			if err != nil {
				return
			}
			val := bytes.Repeat([]byte("m"), 200)
			for i := 0; ; i++ {
				if err := s.Put(ap, fmt.Sprintf("k%05d", i), val); err != nil {
					return
				}
				total = i + 1
				if s.flushing { // crash window: flush in flight
					break
				}
			}
			ap.Sleep(time.Hour)
		})
		p.Sleep(300 * time.Millisecond)
		c.CrashApp()
		p.Sleep(10 * time.Millisecond)
		c.RestartApp()
		fs2, _ := c.NewFS(p, "kvell", 1)
		s2, err := Recover(p, fs2, testConfig(NCLTier))
		if err != nil {
			return err
		}
		for i := 0; i < total; i++ {
			if _, ok, _ := s2.Get(p, fmt.Sprintf("k%05d", i)); !ok {
				return fmt.Errorf("k%05d lost across mid-flush crash", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChunkCodecRoundtrip(t *testing.T) {
	c := harness.New(harness.Options{Seed: 8, NumPeers: 3})
	err := c.Run(func(p *simnet.Proc) error {
		fs, _ := c.NewFS(p, "kvell", 0)
		records := map[string][]byte{}
		for i := 0; i < 300; i++ {
			records[fmt.Sprintf("key%04d", i)] = []byte(fmt.Sprintf("value-%d", i))
		}
		f, idx, err := writeChunk(p, fs, "/c/x.kv", records)
		if err != nil {
			return err
		}
		f.Close(p)
		f2, idx2, err := readChunkIndex(p, fs, "/c/x.kv")
		if err != nil {
			return err
		}
		if len(idx2) != len(idx) {
			return fmt.Errorf("index sizes differ: %d vs %d", len(idx2), len(idx))
		}
		for k, want := range records {
			ent := idx2[k]
			buf := make([]byte, ent.vlen)
			if _, err := f2.Pread(p, buf, ent.off); err != nil {
				return err
			}
			if !bytes.Equal(buf, want) {
				return fmt.Errorf("key %s = %q, want %q", k, buf, want)
			}
		}
		// A torn chunk is rejected.
		g, _ := fs.OpenFile(p, "/c/torn.kv", 1, 0) // O_CREATE
		g.Write(p, []byte("garbage without a trailer"))
		g.Sync(p)
		if _, _, err := readChunkIndex(p, fs, "/c/torn.kv"); err == nil {
			return fmt.Errorf("torn chunk accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
