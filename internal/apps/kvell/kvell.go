// Package kvell is a KVell-style key-value store: unlike the LSM stores it
// keeps NO write-ahead log — values live in immutable chunk files and an
// in-memory index maps keys to their locations. The paper's §6 observes
// that such no-log designs issue many small random writes, which perform
// poorly in the DFT setting, and suggests NCL "can act as a faster tier to
// absorb the random writes and then write large chunks to dfs".
//
// This package implements exactly that extension. Three persistence modes:
//
//   - DFTSync: every put appends to the open chunk and fsyncs it — durable
//     but slow (a dfs round trip per put).
//   - DFTAsync: appends are buffered; acknowledged puts can be lost.
//   - NCLTier: puts are absorbed into an NCL journal (microsecond
//     durability); when the journal fills, its live records are written to
//     the dfs as one large chunk and the journal is released — small random
//     writes become large sequential ones, with no durability gap.
//
// Chunk layout: repeated [4B klen][4B vlen][key][value], then a footer
// index ([4B count] repeated [4B klen][key][8B off][4B vlen]) and a trailer
// [8B indexOff][8B magic]. Incomplete chunks (crash mid-write) fail the
// magic check and are ignored at recovery; their content is still safe —
// in NCLTier mode it remains in the journal until the chunk is durable.
package kvell

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"splitft/internal/core"
	"splitft/internal/model"
	"splitft/internal/simnet"
)

// Mode selects the persistence strategy.
type Mode int

const (
	// DFTSync fsyncs every put to the dfs.
	DFTSync Mode = iota
	// DFTAsync buffers puts (weak: acknowledged data can be lost).
	DFTAsync
	// NCLTier absorbs puts into a near-compute log and flushes large
	// chunks to the dfs in the background.
	NCLTier
)

func (m Mode) String() string {
	switch m {
	case DFTSync:
		return "dft-sync"
	case DFTAsync:
		return "dft-async"
	default:
		return "ncl-tier"
	}
}

// Config tunes the store.
type Config struct {
	Dir  string
	Mode Mode
	// JournalBytes triggers a chunk flush (NCLTier) or chunk rotation
	// (DFT modes).
	JournalBytes int64
	// JournalRegion is the NCL region capacity.
	JournalRegion int64
	// KVellCosts is the per-op CPU cost model; the constants live in
	// internal/model and the fields promote (cfg.PutCPU etc.).
	model.KVellCosts
}

// DefaultConfig returns simulation-scaled settings; CPU costs come from the
// baseline profile.
func DefaultConfig() Config {
	return Config{
		Dir:           "/kvell",
		Mode:          NCLTier,
		JournalBytes:  4 << 20,
		JournalRegion: 10 << 20,
		KVellCosts:    model.Baseline().Apps.KVell,
	}
}

const (
	chunkMagic   = 0x4b56454c4c4f47 // "KVELLOG"
	chunkTrailer = 16
)

var errBadChunk = errors.New("kvell: invalid or incomplete chunk")

// location says where a key's current value lives.
type location struct {
	journal bool
	chunk   int // chunk id when !journal
	off     int64
	vlen    int
}

// Store is a running instance.
type Store struct {
	fs   *core.FS
	node *simnet.Node
	cfg  Config

	mu simnet.Mutex

	index map[string]location

	// Journal tier (NCLTier) or open chunk buffer (DFT modes).
	journal    core.File
	journalNum int
	jPending   map[string][]byte // live records not yet in a durable chunk

	chunks   map[int]core.File
	chunkSeq int

	flushing bool

	// Stats.
	Puts, Gets, Flushes int64
}

func (s *Store) journalPath(n int) string { return fmt.Sprintf("%s/journal-%04d", s.cfg.Dir, n) }
func (s *Store) chunkPath(n int) string   { return fmt.Sprintf("%s/chunk-%06d.kv", s.cfg.Dir, n) }

// Open creates a fresh store.
func Open(p *simnet.Proc, fs *core.FS, cfg Config) (*Store, error) {
	s := &Store{
		fs:       fs,
		node:     fs.Node(),
		cfg:      cfg,
		index:    make(map[string]location),
		jPending: make(map[string][]byte),
		chunks:   make(map[int]core.File),
	}
	if err := s.openJournal(p); err != nil {
		return nil, err
	}
	return s, nil
}

// openJournal opens the write-absorbing tier: an ncl file in NCLTier mode,
// a plain dfs file otherwise.
func (s *Store) openJournal(p *simnet.Proc) error {
	s.journalNum++
	flags := core.OpenFlag(core.O_CREATE)
	if s.cfg.Mode == NCLTier {
		flags |= core.O_NCL | core.O_APPEND
	}
	j, err := s.fs.OpenFile(p, s.journalPath(s.journalNum), flags, s.cfg.JournalRegion)
	if err != nil {
		return err
	}
	s.journal = j
	return nil
}

func encodeRecord(key string, value []byte) []byte {
	buf := make([]byte, 8+len(key)+len(value))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(value)))
	copy(buf[8:], key)
	copy(buf[8+len(key):], value)
	return buf
}

// Put stores key=value. In NCLTier and DFTSync modes the put is durable
// when Put returns; in DFTAsync it is merely buffered.
func (s *Store) Put(p *simnet.Proc, key string, value []byte) error {
	s.mu.Lock(p)
	defer s.mu.Unlock(p)
	p.Sleep(s.cfg.PutCPU)
	rec := encodeRecord(key, value)
	off := s.journal.Size()
	if _, err := s.journal.Write(p, rec); err != nil {
		return err
	}
	if s.cfg.Mode == DFTSync {
		if err := s.journal.Sync(p); err != nil {
			return err
		}
	}
	v := make([]byte, len(value))
	copy(v, value)
	s.jPending[key] = v
	s.index[key] = location{journal: true, off: off + 8 + int64(len(key)), vlen: len(value)}
	s.Puts++
	if s.journal.Size() >= s.cfg.JournalBytes && !s.flushing {
		s.startFlush(p)
	}
	return nil
}

// Get returns the value for key.
func (s *Store) Get(p *simnet.Proc, key string) ([]byte, bool, error) {
	s.mu.Lock(p)
	loc, ok := s.index[key]
	if !ok {
		s.mu.Unlock(p)
		return nil, false, nil
	}
	s.Gets++
	if loc.journal {
		v := s.jPending[key]
		s.mu.Unlock(p)
		s.node.CPU().Use(p, s.cfg.GetCPU)
		return v, true, nil
	}
	chunk := s.chunks[loc.chunk]
	s.mu.Unlock(p)
	s.node.CPU().Use(p, s.cfg.GetCPU)
	buf := make([]byte, loc.vlen)
	if _, err := chunk.Pread(p, buf, loc.off); err != nil {
		return nil, false, err
	}
	return buf, true, nil
}

// startFlush converts the journal's live records into one large sequential
// chunk write. The journal stays intact (and recoverable) until the chunk
// is durable; only then is it released. Caller holds s.mu.
func (s *Store) startFlush(p *simnet.Proc) {
	s.flushing = true
	snap := s.jPending
	s.jPending = make(map[string][]byte)
	oldJournal := s.journal
	oldPath := s.journalPath(s.journalNum)
	if err := s.openJournal(p); err != nil {
		// Keep absorbing into the old journal; retry on the next put.
		s.jPending = snap
		s.journal = oldJournal
		s.journalNum--
		s.flushing = false
		return
	}
	s.chunkSeq++
	chunkID := s.chunkSeq
	p.GoOn(s.node, "kvell-flush", func(fp *simnet.Proc) {
		defer func() { s.flushing = false }()
		f, idx, err := writeChunk(fp, s.fs, s.chunkPath(chunkID), snap)
		if err != nil {
			return
		}
		s.mu.Lock(fp)
		s.chunks[chunkID] = f
		// Repoint index entries that still refer to the flushed values
		// (a newer put may have superseded them in the new journal).
		for key, ent := range idx {
			if cur, ok := s.index[key]; ok && cur.journal {
				if _, superseded := s.jPending[key]; superseded {
					continue
				}
				cur.journal = false
				cur.chunk = chunkID
				cur.off = ent.off
				cur.vlen = ent.vlen
				s.index[key] = cur
			}
		}
		s.Flushes++
		s.mu.Unlock(fp)
		// Chunk durable: the old journal is disposable.
		oldJournal.Close(fp)
		s.fs.Unlink(fp, oldPath) //nolint:errcheck
	})
}

type chunkEntry struct {
	off  int64
	vlen int
}

// writeChunk serializes records (sorted by key) with a footer index and
// syncs the file.
func writeChunk(p *simnet.Proc, fs *core.FS, path string, records map[string][]byte) (core.File, map[string]chunkEntry, error) {
	keys := make([]string, 0, len(records))
	for k := range records {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	size := 0
	for _, k := range keys {
		size += 8 + len(k) + len(records[k])
	}
	data := make([]byte, 0, size)
	idx := make(map[string]chunkEntry, len(keys))
	for _, k := range keys {
		v := records[k]
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(k)))
		binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(v)))
		idx[k] = chunkEntry{off: int64(len(data)) + 8 + int64(len(k)), vlen: len(v)}
		data = append(data, hdr[:]...)
		data = append(data, k...)
		data = append(data, v...)
	}
	indexOff := int64(len(data))
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(keys)))
	data = append(data, cnt[:]...)
	for _, k := range keys {
		var klen [4]byte
		binary.LittleEndian.PutUint32(klen[:], uint32(len(k)))
		data = append(data, klen[:]...)
		data = append(data, k...)
		var ent [12]byte
		binary.LittleEndian.PutUint64(ent[0:8], uint64(idx[k].off))
		binary.LittleEndian.PutUint32(ent[8:12], uint32(idx[k].vlen))
		data = append(data, ent[:]...)
	}
	var trailer [chunkTrailer]byte
	binary.LittleEndian.PutUint64(trailer[0:8], uint64(indexOff))
	binary.LittleEndian.PutUint64(trailer[8:16], chunkMagic)
	data = append(data, trailer[:]...)

	f, err := fs.OpenFile(p, path, core.O_CREATE|core.O_EXTENT, 0)
	if err != nil {
		return nil, nil, err
	}
	if _, err := f.Write(p, data); err != nil {
		return nil, nil, err
	}
	if err := f.Sync(p); err != nil {
		return nil, nil, err
	}
	return f, idx, nil
}

// readChunkIndex opens a chunk and parses its footer.
func readChunkIndex(p *simnet.Proc, fs *core.FS, path string) (core.File, map[string]chunkEntry, error) {
	f, err := fs.OpenFile(p, path, 0, 0)
	if err != nil {
		return nil, nil, err
	}
	size := f.Size()
	if size < chunkTrailer {
		return nil, nil, errBadChunk
	}
	var trailer [chunkTrailer]byte
	if _, err := f.Pread(p, trailer[:], size-chunkTrailer); err != nil {
		return nil, nil, err
	}
	if binary.LittleEndian.Uint64(trailer[8:16]) != chunkMagic {
		return nil, nil, errBadChunk
	}
	indexOff := int64(binary.LittleEndian.Uint64(trailer[0:8]))
	if indexOff < 0 || indexOff > size-chunkTrailer {
		return nil, nil, errBadChunk
	}
	meta := make([]byte, size-chunkTrailer-indexOff)
	if _, err := f.Pread(p, meta, indexOff); err != nil {
		return nil, nil, err
	}
	count := int(binary.LittleEndian.Uint32(meta[0:4]))
	pos := 4
	idx := make(map[string]chunkEntry, count)
	for i := 0; i < count; i++ {
		klen := int(binary.LittleEndian.Uint32(meta[pos : pos+4]))
		pos += 4
		key := string(meta[pos : pos+klen])
		pos += klen
		off := int64(binary.LittleEndian.Uint64(meta[pos : pos+8]))
		vlen := int(binary.LittleEndian.Uint32(meta[pos+8 : pos+12]))
		pos += 12
		idx[key] = chunkEntry{off: off, vlen: vlen}
	}
	return f, idx, nil
}

// Recover rebuilds the store: chunk footers rebuild the bulk of the index,
// then surviving journals are replayed over it (newest last). In NCLTier
// mode the journals come back from the log peers, so no acknowledged put is
// lost; in DFTAsync mode whatever the page cache had not written back is
// gone.
func Recover(p *simnet.Proc, fs *core.FS, cfg Config) (*Store, error) {
	s := &Store{
		fs:       fs,
		node:     fs.Node(),
		cfg:      cfg,
		index:    make(map[string]location),
		jPending: make(map[string][]byte),
		chunks:   make(map[int]core.File),
	}
	// Chunks, oldest first so newer values win.
	for _, path := range fs.ListDFS(cfg.Dir + "/chunk-") {
		var id int
		if _, err := fmt.Sscanf(path[len(cfg.Dir)+1:], "chunk-%06d.kv", &id); err != nil {
			continue
		}
		f, idx, err := readChunkIndex(p, fs, path)
		if err != nil {
			continue // incomplete chunk: its data is still in a journal
		}
		for key, ent := range idx {
			s.index[key] = location{chunk: id, off: ent.off, vlen: ent.vlen}
		}
		s.chunks[id] = f
		if id > s.chunkSeq {
			s.chunkSeq = id
		}
	}
	// Journals, oldest first.
	var journals []string
	if cfg.Mode == NCLTier {
		names, err := fs.ListNCL(p)
		if err != nil {
			return nil, err
		}
		journals = names
	} else {
		journals = fs.ListDFS(cfg.Dir + "/journal-")
	}
	sort.Strings(journals)
	for _, path := range journals {
		var n int
		if _, err := fmt.Sscanf(path[len(cfg.Dir)+1:], "journal-%04d", &n); err == nil && n > s.journalNum {
			s.journalNum = n
		}
		flags := core.OpenFlag(0)
		if cfg.Mode == NCLTier {
			flags = core.O_NCL
		}
		f, err := fs.OpenFile(p, path, flags, cfg.JournalRegion)
		if err != nil {
			return nil, err
		}
		s.replayJournal(p, f)
		f.Close(p)
		fs.Unlink(p, path) //nolint:errcheck
	}
	if err := s.openJournal(p); err != nil {
		return nil, err
	}
	// Re-absorb replayed pending values into the fresh journal so they are
	// durable under the new instance before anything is acknowledged.
	for key, v := range s.jPending {
		rec := encodeRecord(key, v)
		off := s.journal.Size()
		if _, err := s.journal.Write(p, rec); err != nil {
			return nil, err
		}
		if cfg.Mode == DFTSync {
			if err := s.journal.Sync(p); err != nil {
				return nil, err
			}
		}
		s.index[key] = location{journal: true, off: off + 8 + int64(len(key)), vlen: len(v)}
	}
	return s, nil
}

// replayJournal applies intact records; a torn trailing record (crash
// mid-write, never acknowledged) stops the replay.
func (s *Store) replayJournal(p *simnet.Proc, f core.File) {
	data := make([]byte, f.Size())
	if _, err := f.Pread(p, data, 0); err != nil {
		return
	}
	p.Sleep(time.Duration(float64(len(data)) / 150e6 * float64(time.Second))) // parse
	pos := 0
	for pos+8 <= len(data) {
		klen := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
		vlen := int(binary.LittleEndian.Uint32(data[pos+4 : pos+8]))
		if klen == 0 || pos+8+klen+vlen > len(data) {
			return
		}
		key := string(data[pos+8 : pos+8+klen])
		v := make([]byte, vlen)
		copy(v, data[pos+8+klen:pos+8+klen+vlen])
		s.jPending[key] = v
		s.index[key] = location{journal: true, vlen: vlen}
		pos += 8 + klen + vlen
	}
}

// Len returns the number of live keys.
func (s *Store) Len() int { return len(s.index) }

// Stats snapshot.
type Stats struct {
	Puts, Gets, Flushes int64
	Chunks              int
	JournalBytes        int64
}

// Stats returns internal counters.
func (s *Store) Stats() Stats {
	return Stats{Puts: s.Puts, Gets: s.Gets, Flushes: s.Flushes,
		Chunks: len(s.chunks), JournalBytes: s.journal.Size()}
}
