package kvstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"splitft/internal/core"
	"splitft/internal/simnet"
)

// SSTable layout (all integers little endian):
//
//	data:    repeated [4B klen][4B vlen][key][value]   (vlen==MaxUint32: tombstone)
//	bloom:   [4B bits][bitset]
//	index:   [4B count] repeated ([4B klen][key][8B offset])
//	trailer: [8B bloomOff][8B indexOff][8B numEntries][8B magic]
//
// Entries are sorted by key. The sparse index holds every indexIntervalth
// key; a Get reads only the spanned data slice. The trailer's magic makes
// partially written tables (crash during flush/compaction, before fsync)
// detectable and ignorable at recovery.
const (
	ssMagic       = 0x53504c49544654 // "SPLITFT"
	indexInterval = 16
	tombstoneLen  = ^uint32(0)
	trailerLen    = 32
)

var errBadTable = errors.New("kvstore: invalid or incomplete sstable")

type entry struct {
	key   string
	value []byte // nil + tombstone flag encoded via sentinel
	del   bool
}

// bloom is a split-free Bloom filter with double hashing.
type bloom struct {
	bits []byte
	m    uint64
}

func newBloom(n int) *bloom {
	m := uint64(n*10 + 64)
	return &bloom{bits: make([]byte, (m+7)/8), m: m}
}

func bloomHash(key string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 := h.Sum64()
	h2 := h1>>33 | h1<<31
	return h1, h2 | 1
}

func (b *bloom) add(key string) {
	h1, h2 := bloomHash(key)
	for i := uint64(0); i < 4; i++ {
		bit := (h1 + i*h2) % b.m
		b.bits[bit/8] |= 1 << (bit % 8)
	}
}

func (b *bloom) mayContain(key string) bool {
	h1, h2 := bloomHash(key)
	for i := uint64(0); i < 4; i++ {
		bit := (h1 + i*h2) % b.m
		if b.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

type indexEntry struct {
	key string
	off int64
}

// ssTable is an open, immutable sorted table backed by a dfs file.
type ssTable struct {
	path    string
	file    core.File
	index   []indexEntry
	filter  *bloom
	entries int64
	dataEnd int64
	minKey  string
	maxKey  string
}

// writeSSTable serializes sorted entries to path on the dfs and syncs it.
// The write is one large sequential IO — exactly the background write class
// SplitFT pushes straight to the dfs (Fig 1) — so it goes to the extent
// plane, where the flush pipelines down append chains.
func writeSSTable(p *simnet.Proc, fs *core.FS, path string, entries []entry) (*ssTable, error) {
	f, err := fs.OpenFile(p, path, core.O_CREATE|core.O_EXTENT, 0)
	if err != nil {
		return nil, err
	}
	var data bytes.Buffer
	filter := newBloom(len(entries))
	var index []indexEntry
	for i, e := range entries {
		if i%indexInterval == 0 {
			index = append(index, indexEntry{key: e.key, off: int64(data.Len())})
		}
		filter.add(e.key)
		var lenBuf [8]byte
		binary.LittleEndian.PutUint32(lenBuf[0:4], uint32(len(e.key)))
		vlen := uint32(len(e.value))
		if e.del {
			vlen = tombstoneLen
		}
		binary.LittleEndian.PutUint32(lenBuf[4:8], vlen)
		data.Write(lenBuf[:])
		data.WriteString(e.key)
		if !e.del {
			data.Write(e.value)
		}
	}
	dataEnd := int64(data.Len())

	bloomOff := dataEnd
	var bm [4]byte
	binary.LittleEndian.PutUint32(bm[:], uint32(filter.m))
	data.Write(bm[:])
	data.Write(filter.bits)

	indexOff := int64(data.Len())
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(index)))
	data.Write(cnt[:])
	for _, ie := range index {
		var klen [4]byte
		binary.LittleEndian.PutUint32(klen[:], uint32(len(ie.key)))
		data.Write(klen[:])
		data.WriteString(ie.key)
		var off [8]byte
		binary.LittleEndian.PutUint64(off[:], uint64(ie.off))
		data.Write(off[:])
	}
	var trailer [trailerLen]byte
	binary.LittleEndian.PutUint64(trailer[0:8], uint64(bloomOff))
	binary.LittleEndian.PutUint64(trailer[8:16], uint64(indexOff))
	binary.LittleEndian.PutUint64(trailer[16:24], uint64(len(entries)))
	binary.LittleEndian.PutUint64(trailer[24:32], ssMagic)
	data.Write(trailer[:])

	if _, err := f.Write(p, data.Bytes()); err != nil {
		return nil, err
	}
	if err := f.Sync(p); err != nil {
		return nil, err
	}
	t := &ssTable{
		path: path, file: f, index: index, filter: filter,
		entries: int64(len(entries)), dataEnd: dataEnd,
	}
	if len(entries) > 0 {
		t.minKey = entries[0].key
		t.maxKey = entries[len(entries)-1].key
	}
	return t, nil
}

// openSSTable opens an existing table, reading its trailer, bloom filter
// and sparse index. Incomplete tables (no valid magic) yield errBadTable.
func openSSTable(p *simnet.Proc, fs *core.FS, path string) (*ssTable, error) {
	f, err := fs.OpenFile(p, path, 0, 0)
	if err != nil {
		return nil, err
	}
	size := f.Size()
	if size < trailerLen {
		return nil, errBadTable
	}
	var trailer [trailerLen]byte
	if _, err := f.Pread(p, trailer[:], size-trailerLen); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(trailer[24:32]) != ssMagic {
		return nil, errBadTable
	}
	bloomOff := int64(binary.LittleEndian.Uint64(trailer[0:8]))
	indexOff := int64(binary.LittleEndian.Uint64(trailer[8:16]))
	numEntries := int64(binary.LittleEndian.Uint64(trailer[16:24]))
	if bloomOff < 0 || indexOff < bloomOff || indexOff > size-trailerLen {
		return nil, errBadTable
	}
	meta := make([]byte, size-trailerLen-bloomOff)
	if _, err := f.Pread(p, meta, bloomOff); err != nil {
		return nil, err
	}
	// Bloom.
	m := binary.LittleEndian.Uint32(meta[0:4])
	filter := &bloom{m: uint64(m), bits: meta[4 : 4+(m+7)/8]}
	// Index.
	idx := meta[indexOff-bloomOff:]
	count := binary.LittleEndian.Uint32(idx[0:4])
	pos := 4
	index := make([]indexEntry, 0, count)
	for i := uint32(0); i < count; i++ {
		klen := int(binary.LittleEndian.Uint32(idx[pos : pos+4]))
		pos += 4
		key := string(idx[pos : pos+klen])
		pos += klen
		off := int64(binary.LittleEndian.Uint64(idx[pos : pos+8]))
		pos += 8
		index = append(index, indexEntry{key: key, off: off})
	}
	t := &ssTable{
		path: path, file: f, index: index, filter: filter,
		entries: numEntries, dataEnd: bloomOff,
	}
	if len(index) > 0 {
		t.minKey = index[0].key
	}
	return t, nil
}

// get looks key up in the table, reading only the indexed data slice.
func (t *ssTable) get(p *simnet.Proc, key string) (value []byte, found, deleted bool, err error) {
	if !t.filter.mayContain(key) {
		return nil, false, false, nil
	}
	if len(t.index) == 0 {
		return nil, false, false, nil
	}
	// Binary search: greatest index key <= key.
	lo, hi := 0, len(t.index)-1
	if key < t.index[0].key {
		return nil, false, false, nil
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if t.index[mid].key <= key {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	start := t.index[lo].off
	end := t.dataEnd
	if lo+1 < len(t.index) {
		end = t.index[lo+1].off
	}
	block := make([]byte, end-start)
	if _, err := t.file.Pread(p, block, start); err != nil {
		return nil, false, false, err
	}
	pos := 0
	for pos+8 <= len(block) {
		klen := int(binary.LittleEndian.Uint32(block[pos : pos+4]))
		vlen := binary.LittleEndian.Uint32(block[pos+4 : pos+8])
		pos += 8
		k := string(block[pos : pos+klen])
		pos += klen
		if vlen == tombstoneLen {
			if k == key {
				return nil, true, true, nil
			}
			continue
		}
		v := block[pos : pos+int(vlen)]
		pos += int(vlen)
		if k == key {
			out := make([]byte, len(v))
			copy(out, v)
			return out, true, false, nil
		}
		if k > key {
			return nil, false, false, nil
		}
	}
	return nil, false, false, nil
}

// scanAll reads the full table sequentially (compaction input). Returned
// values alias one backing buffer (they are never mutated downstream), so a
// scan costs one read buffer plus a key string per entry, not a value copy —
// compaction runs often enough that the copies showed in the alloc gate.
func (t *ssTable) scanAll(p *simnet.Proc) ([]entry, error) {
	data := make([]byte, t.dataEnd)
	if _, err := t.file.Pread(p, data, 0); err != nil {
		return nil, err
	}
	out := make([]entry, 0, t.entries)
	pos := 0
	for pos+8 <= len(data) {
		klen := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
		vlen := binary.LittleEndian.Uint32(data[pos+4 : pos+8])
		pos += 8
		key := string(data[pos : pos+klen])
		pos += klen
		if vlen == tombstoneLen {
			out = append(out, entry{key: key, del: true})
			continue
		}
		v := data[pos : pos+int(vlen) : pos+int(vlen)]
		pos += int(vlen)
		out = append(out, entry{key: key, value: v})
	}
	return out, nil
}

func (t *ssTable) String() string {
	return fmt.Sprintf("sstable(%s, %d entries)", t.path, t.entries)
}
