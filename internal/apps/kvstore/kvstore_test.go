package kvstore

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"splitft/internal/core"
	"splitft/internal/harness"
	"splitft/internal/simnet"
)

func testConfig(d Durability) Config {
	cfg := DefaultConfig()
	cfg.Durability = d
	cfg.MemtableBytes = 64 << 10 // small so rotation/flush paths exercise
	cfg.WALRegion = 256 << 10
	return cfg
}

func withDB(t *testing.T, seed int64, d Durability, fn func(p *simnet.Proc, c *harness.Cluster, db *DB)) {
	t.Helper()
	c := harness.New(harness.Options{Seed: seed, NumPeers: 4})
	err := c.Run(func(p *simnet.Proc) error {
		fs, err := c.NewFS(p, "kvapp", 0)
		if err != nil {
			return err
		}
		db, err := Open(p, fs, testConfig(d))
		if err != nil {
			return err
		}
		fn(p, c, db)
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestPutGetAllDurabilities(t *testing.T) {
	for _, d := range []Durability{Weak, Strong, SplitFT} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			withDB(t, 1, d, func(p *simnet.Proc, c *harness.Cluster, db *DB) {
				for i := 0; i < 100; i++ {
					key := fmt.Sprintf("user%06d", i)
					if err := db.Put(p, key, []byte(fmt.Sprintf("value-%d", i))); err != nil {
						t.Fatalf("put: %v", err)
					}
				}
				for i := 0; i < 100; i++ {
					key := fmt.Sprintf("user%06d", i)
					v, ok, err := db.Get(p, key)
					if err != nil || !ok || string(v) != fmt.Sprintf("value-%d", i) {
						t.Fatalf("get %s = %q %v %v", key, v, ok, err)
					}
				}
				if _, ok, _ := db.Get(p, "missing"); ok {
					t.Fatal("phantom key")
				}
			})
		})
	}
}

func TestGroupCommitBatches(t *testing.T) {
	withDB(t, 2, SplitFT, func(p *simnet.Proc, c *harness.Cluster, db *DB) {
		var wg simnet.WaitGroup
		const writers, each = 16, 30
		wg.Add(writers)
		for w := 0; w < writers; w++ {
			w := w
			p.GoOn(c.AppNode, fmt.Sprintf("writer%d", w), func(wp *simnet.Proc) {
				for i := 0; i < each; i++ {
					db.Put(wp, fmt.Sprintf("k%02d-%03d", w, i), []byte("v"))
				}
				wg.Done(wp)
			})
		}
		wg.Wait(p)
		if db.Ops != writers*each {
			t.Fatalf("ops = %d, want %d", db.Ops, writers*each)
		}
		if db.Batches >= db.Ops {
			t.Fatalf("no batching: %d batches for %d ops", db.Batches, db.Ops)
		}
		t.Logf("batches=%d ops=%d (%.1f ops/batch)", db.Batches, db.Ops, float64(db.Ops)/float64(db.Batches))
	})
}

func TestRotationFlushAndLogReclaim(t *testing.T) {
	withDB(t, 3, SplitFT, func(p *simnet.Proc, c *harness.Cluster, db *DB) {
		val := bytes.Repeat([]byte("v"), 100)
		for i := 0; i < 3000; i++ { // ~370KB >> 64KB memtable
			if err := db.Put(p, fmt.Sprintf("user%06d", i), val); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		p.Sleep(2 * time.Second) // flushes complete
		st := db.Stats()
		if st.Flushes == 0 {
			t.Fatal("no memtable flush happened")
		}
		// Old WALs were reclaimed: only the active WAL (plus possibly one
		// pre-allocated next WAL) remains in NCL.
		names, err := db.fs.ListNCL(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(names) < 1 || len(names) > 2 {
			t.Fatalf("ncl files = %v, want the active WAL (+ optional preallocated one)", names)
		}
		// SSTables exist on the dfs.
		if n := len(db.fs.ListDFS("/kv/")); n < 1 {
			t.Fatalf("dfs files = %d", n)
		}
		// Everything still readable (memtable + L0 + L1 paths).
		for _, i := range []int{0, 1234, 2999} {
			v, ok, err := db.Get(p, fmt.Sprintf("user%06d", i))
			if err != nil || !ok || !bytes.Equal(v, val) {
				t.Fatalf("get after flush: %v %v", ok, err)
			}
		}
	})
}

func TestCompactionPreservesData(t *testing.T) {
	withDB(t, 4, SplitFT, func(p *simnet.Proc, c *harness.Cluster, db *DB) {
		val := bytes.Repeat([]byte("x"), 100)
		for i := 0; i < 6000; i++ {
			db.Put(p, fmt.Sprintf("user%06d", i%2000), val) // overwrites
		}
		p.Sleep(3 * time.Second)
		st := db.Stats()
		if st.Compactions == 0 {
			t.Fatal("no compaction happened")
		}
		for _, i := range []int{0, 999, 1999} {
			v, ok, err := db.Get(p, fmt.Sprintf("user%06d", i))
			if err != nil || !ok || !bytes.Equal(v, val) {
				t.Fatalf("get after compaction: %v %v", ok, err)
			}
		}
	})
}

func TestDeleteTombstones(t *testing.T) {
	withDB(t, 5, SplitFT, func(p *simnet.Proc, c *harness.Cluster, db *DB) {
		db.Put(p, "doomed", []byte("v"))
		val := bytes.Repeat([]byte("f"), 120)
		for i := 0; i < 1000; i++ { // push "doomed" into an sstable
			db.Put(p, fmt.Sprintf("filler%06d", i), val)
		}
		db.Delete(p, "doomed")
		if _, ok, _ := db.Get(p, "doomed"); ok {
			t.Fatal("deleted key still visible")
		}
		for i := 0; i < 3000; i++ { // force flush + compaction of the tombstone
			db.Put(p, fmt.Sprintf("filler%06d", i), val)
		}
		p.Sleep(3 * time.Second)
		if _, ok, _ := db.Get(p, "doomed"); ok {
			t.Fatal("deleted key resurrected by compaction")
		}
	})
}

func crashRecover(t *testing.T, seed int64, d Durability, writes int) (acked int, survived int) {
	t.Helper()
	c := harness.New(harness.Options{Seed: seed, NumPeers: 4})
	err := c.Run(func(p *simnet.Proc) error {
		c.AppNode.Go("app-v1", func(ap *simnet.Proc) {
			fs, err := c.NewFS(ap, "kvapp", 0)
			if err != nil {
				return
			}
			db, err := Open(ap, fs, testConfig(d))
			if err != nil {
				return
			}
			for i := 0; i < writes; i++ {
				if err := db.Put(ap, fmt.Sprintf("user%06d", i), []byte(fmt.Sprintf("val-%d", i))); err != nil {
					return
				}
				acked = i + 1
			}
			ap.Sleep(time.Hour)
		})
		p.Sleep(400 * time.Millisecond)
		c.CrashApp()
		p.Sleep(10 * time.Millisecond)
		c.RestartApp()
		fs2, err := c.NewFS(p, "kvapp", 1)
		if err != nil {
			return err
		}
		db2, err := Recover(p, fs2, testConfig(d))
		if err != nil {
			return err
		}
		for i := 0; i < acked; i++ {
			v, ok, err := db2.Get(p, fmt.Sprintf("user%06d", i))
			if err != nil {
				return err
			}
			if ok && string(v) == fmt.Sprintf("val-%d", i) {
				survived++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return acked, survived
}

func TestCrashRecoverySplitFTNoLoss(t *testing.T) {
	acked, survived := crashRecover(t, 6, SplitFT, 2000)
	if acked == 0 {
		t.Fatal("nothing acked before crash")
	}
	if survived != acked {
		t.Fatalf("lost data: %d acked, %d survived", acked, survived)
	}
}

func TestCrashRecoveryStrongNoLoss(t *testing.T) {
	acked, survived := crashRecover(t, 7, Strong, 60) // strong is slow; fewer writes
	if acked == 0 {
		t.Fatal("nothing acked before crash")
	}
	if survived != acked {
		t.Fatalf("lost data: %d acked, %d survived", acked, survived)
	}
}

func TestCrashRecoveryWeakLosesRecentWrites(t *testing.T) {
	acked, survived := crashRecover(t, 8, Weak, 2000)
	if acked == 0 {
		t.Fatal("nothing acked before crash")
	}
	if survived >= acked {
		t.Fatalf("weak mode lost nothing (%d/%d): the data-loss window is the point", survived, acked)
	}
}

func TestRecoveryAfterFlushUsesTables(t *testing.T) {
	// Data that was flushed to sstables must come back from the dfs even
	// though the WALs were deleted.
	c := harness.New(harness.Options{Seed: 9, NumPeers: 4})
	err := c.Run(func(p *simnet.Proc) error {
		val := bytes.Repeat([]byte("z"), 100)
		c.AppNode.Go("app-v1", func(ap *simnet.Proc) {
			fs, _ := c.NewFS(ap, "kvapp", 0)
			db, err := Open(ap, fs, testConfig(SplitFT))
			if err != nil {
				return
			}
			for i := 0; i < 4000; i++ {
				db.Put(ap, fmt.Sprintf("user%06d", i), val)
			}
			ap.Sleep(time.Hour)
		})
		p.Sleep(2 * time.Second) // writes + flushes done
		c.CrashApp()
		p.Sleep(10 * time.Millisecond)
		c.RestartApp()
		fs2, _ := c.NewFS(p, "kvapp", 1)
		db2, err := Recover(p, fs2, testConfig(SplitFT))
		if err != nil {
			return err
		}
		for _, i := range []int{0, 2000, 3999} {
			v, ok, err := db2.Get(p, fmt.Sprintf("user%06d", i))
			if err != nil || !ok || !bytes.Equal(v, val) {
				return fmt.Errorf("get user%06d after recovery: ok=%v err=%v", i, ok, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// ---- sstable unit tests ----

func sstFixture(t *testing.T, fn func(p *simnet.Proc, fs *core.FS)) {
	t.Helper()
	c := harness.New(harness.Options{Seed: 11, NumPeers: 3})
	if err := c.Run(func(p *simnet.Proc) error {
		fs, err := c.NewFS(p, "sst-test", 0)
		if err != nil {
			return err
		}
		fn(p, fs)
		return nil
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestSSTableRoundtrip(t *testing.T) {
	sstFixture(t, func(p *simnet.Proc, fs *core.FS) {
		var ents []entry
		for i := 0; i < 500; i++ {
			ents = append(ents, entry{key: fmt.Sprintf("key%06d", i), value: []byte(fmt.Sprintf("val%d", i))})
		}
		ents = append(ents, entry{key: "zzz-deleted", del: true})
		tb, err := writeSSTable(p, fs, "/t/a.sst", ents)
		if err != nil {
			t.Fatalf("write: %v", err)
		}
		// Reopen from the durable representation.
		tb2, err := openSSTable(p, fs, "/t/a.sst")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		for _, tab := range []*ssTable{tb, tb2} {
			v, found, del, err := tab.get(p, "key000123")
			if err != nil || !found || del || string(v) != "val123" {
				t.Fatalf("get = %q %v %v %v", v, found, del, err)
			}
			_, found, del, _ = tab.get(p, "zzz-deleted")
			if !found || !del {
				t.Fatalf("tombstone not found: %v %v", found, del)
			}
			if _, found, _, _ := tab.get(p, "nope"); found {
				t.Fatal("phantom key in sstable")
			}
		}
		all, err := tb2.scanAll(p)
		if err != nil || len(all) != 501 {
			t.Fatalf("scanAll = %d, %v", len(all), err)
		}
	})
}

func TestSSTableIncompleteIsRejected(t *testing.T) {
	sstFixture(t, func(p *simnet.Proc, fs *core.FS) {
		f, _ := fs.OpenFile(p, "/t/torn.sst", core.O_CREATE, 0)
		f.Write(p, []byte("partial garbage no trailer"))
		f.Sync(p)
		if _, err := openSSTable(p, fs, "/t/torn.sst"); err == nil {
			t.Fatal("incomplete table accepted")
		}
	})
}

func TestBloomNoFalseNegatives(t *testing.T) {
	f := func(keys []string) bool {
		if len(keys) == 0 {
			return true
		}
		b := newBloom(len(keys))
		for _, k := range keys {
			b.add(k)
		}
		for _, k := range keys {
			if !b.mayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	b := newBloom(10000)
	for i := 0; i < 10000; i++ {
		b.add(fmt.Sprintf("present%06d", i))
	}
	fp := 0
	for i := 0; i < 10000; i++ {
		if b.mayContain(fmt.Sprintf("absent%06d", i)) {
			fp++
		}
	}
	if rate := float64(fp) / 10000; rate > 0.05 {
		t.Fatalf("false positive rate = %.3f, want < 5%%", rate)
	}
}

// Property: a write/open/get roundtrip returns exactly the written values
// for arbitrary key-value sets.
func TestQuickSSTableFidelity(t *testing.T) {
	f := func(pairs map[string]string) bool {
		if len(pairs) == 0 || len(pairs) > 200 {
			return true
		}
		ok := true
		sstFixture(t, func(p *simnet.Proc, fs *core.FS) {
			var ents []entry
			for k, v := range pairs {
				ents = append(ents, entry{key: k, value: []byte(v)})
			}
			sortEntries(ents)
			tb, err := writeSSTable(p, fs, "/t/q.sst", ents)
			if err != nil {
				ok = false
				return
			}
			for k, v := range pairs {
				got, found, del, err := tb.get(p, k)
				if err != nil || !found || del || string(got) != v {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func sortEntries(ents []entry) {
	for i := 1; i < len(ents); i++ {
		for j := i; j > 0 && ents[j].key < ents[j-1].key; j-- {
			ents[j], ents[j-1] = ents[j-1], ents[j]
		}
	}
}
