package kvstore

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"splitft/internal/harness"
	"splitft/internal/simnet"
	"splitft/internal/ycsb"
)

// Consistency property: under SplitFT, for any random op sequence and crash
// point, a recovered store returns exactly the last acknowledged value for
// every key (no loss, no staleness, no resurrection of deleted keys).

func TestQuickSplitFTConsistencyAcrossCrash(t *testing.T) {
	f := func(seed int64, nOps uint16, crashMS uint8) bool {
		ops := int(nOps)%400 + 50
		c := harness.New(harness.Options{Seed: seed, NumPeers: 4})
		shadow := map[string]string{} // acked state only
		ok := true
		err := c.Run(func(p *simnet.Proc) error {
			c.AppNode.Go("app-v1", func(ap *simnet.Proc) {
				fs, err := c.NewFS(ap, "kvq", 0)
				if err != nil {
					return
				}
				cfg := testConfig(SplitFT)
				db, err := Open(ap, fs, cfg)
				if err != nil {
					return
				}
				g := ycsb.NewGenerator(ycsb.WorkloadA, 200, seed+1)
				for i := 0; i < ops; i++ {
					op := g.Next()
					switch {
					case i%37 == 36:
						if db.Delete(ap, op.Key) != nil {
							return
						}
						delete(shadow, op.Key)
					case op.Type == ycsb.Read:
						db.Get(ap, op.Key) //nolint:errcheck
					default:
						val := fmt.Sprintf("v%d-%d", seed, i)
						if db.Put(ap, op.Key, []byte(val)) != nil {
							return
						}
						shadow[op.Key] = val
					}
				}
				ap.Sleep(time.Hour)
			})
			p.Sleep(150*time.Millisecond + time.Duration(crashMS)*time.Millisecond)
			c.CrashApp()
			p.Sleep(10 * time.Millisecond)
			c.RestartApp()
			fs2, err := c.NewFS(p, "kvq", 1)
			if err != nil {
				return err
			}
			db2, err := Recover(p, fs2, testConfig(SplitFT))
			if err != nil {
				return err
			}
			for key, want := range shadow {
				v, found, err := db2.Get(p, key)
				if err != nil || !found || string(v) != want {
					ok = false
					return nil
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// The same property with peer failures injected mid-run: losing one log
// peer (within the budget) must never lose acknowledged data.
func TestSplitFTConsistencyWithPeerCrash(t *testing.T) {
	c := harness.New(harness.Options{Seed: 99, NumPeers: 5})
	shadow := map[string]string{}
	err := c.Run(func(p *simnet.Proc) error {
		var db *DB
		c.AppNode.Go("app-v1", func(ap *simnet.Proc) {
			fs, err := c.NewFS(ap, "kvq", 0)
			if err != nil {
				return
			}
			db, err = Open(ap, fs, testConfig(SplitFT))
			if err != nil {
				return
			}
			for i := 0; i < 2000; i++ {
				key := ycsb.Key(int64(i % 300))
				val := fmt.Sprintf("val-%d", i)
				if db.Put(ap, key, []byte(val)) != nil {
					return
				}
				shadow[key] = val
			}
			ap.Sleep(time.Hour)
		})
		// Crash a peer mid-run, then the app shortly after — the app may die
		// before the background replacement finished.
		p.Sleep(120 * time.Millisecond)
		_ = db
		c.PeerNodes[0].Crash() // deterministically a WAL member (most-free-first)
		p.Sleep(30 * time.Millisecond)
		c.CrashApp()
		p.Sleep(10 * time.Millisecond)
		c.RestartApp()
		fs2, err := c.NewFS(p, "kvq", 1)
		if err != nil {
			return err
		}
		db2, err := Recover(p, fs2, testConfig(SplitFT))
		if err != nil {
			return err
		}
		for key, want := range shadow {
			v, found, err := db2.Get(p, key)
			if err != nil || !found || string(v) != want {
				return fmt.Errorf("key %s = %q (found=%v, err=%v), want %q", key, v, found, err, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
