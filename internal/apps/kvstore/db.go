// Package kvstore is the RocksDB-style LSM key-value store ported to
// SplitFT (§4.7). Its write path mirrors RocksDB's: concurrent updates are
// group-committed by a leader into one write-ahead-log append, applied to an
// in-memory memtable, and acknowledged; memtables are flushed to sorted
// tables on the dfs in the background and the corresponding WAL is deleted
// (delete-based log reclamation, Table 2). L0 tables are compacted into L1.
//
// The port required what the paper reports for RocksDB: passing O_NCL when
// opening WAL files. Every other code path is identical across the three
// evaluated configurations:
//
//	Weak    — WAL on the dfs, never fsynced (buffered; lost on crash)
//	Strong  — WAL on the dfs, fsynced once per group-commit batch
//	SplitFT — WAL in near-compute logs (replicated synchronously)
package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"time"

	"splitft/internal/core"
	"splitft/internal/model"
	"splitft/internal/simnet"
)

// Durability selects the evaluation configuration.
type Durability int

const (
	// Weak buffers log writes in the dfs client cache (weak-app DFT).
	Weak Durability = iota
	// Strong fsyncs every group-commit batch to the dfs (strong-app DFT).
	Strong
	// SplitFT routes log files to near-compute logs via O_NCL.
	SplitFT
)

func (d Durability) String() string {
	switch d {
	case Weak:
		return "weak"
	case Strong:
		return "strong"
	default:
		return "splitft"
	}
}

// Config tunes the store.
type Config struct {
	Dir        string
	Durability Durability
	// MemtableBytes triggers memtable rotation + WAL switch.
	MemtableBytes int64
	// WALRegion is the ncl region capacity per WAL (>= MemtableBytes plus
	// framing overhead).
	WALRegion int64
	// L0CompactTrigger starts a compaction when L0 reaches this many tables.
	L0SlowdownTrigger int
	L0CompactTrigger  int
	// MaxImmutables stalls writers when this many unflushed memtables pile up.
	MaxImmutables int
	// KVStoreCosts is the per-operation CPU cost model; the constants live
	// in internal/model and the fields promote (cfg.EncodeCPU etc.).
	model.KVStoreCosts
}

// DefaultConfig returns the configuration used by the benchmarks, scaled to
// simulation-sized datasets; CPU costs come from the baseline profile.
func DefaultConfig() Config {
	return Config{
		Dir:               "/kv",
		Durability:        SplitFT,
		MemtableBytes:     4 << 20,
		WALRegion:         8 << 20,
		L0SlowdownTrigger: 8,
		L0CompactTrigger:  4,
		MaxImmutables:     4,
		KVStoreCosts:      model.Baseline().Apps.KVStore,
	}
}

// memtable is the mutable in-memory write buffer.
type memtable struct {
	data  map[string]entry
	bytes int64
	// walPath is the log file backing this memtable.
	walPath string
}

func newMemtable(walPath string) *memtable {
	return &memtable{data: make(map[string]entry), walPath: walPath}
}

func (m *memtable) put(e entry) {
	m.data[e.key] = e
	m.bytes += int64(len(e.key) + len(e.value) + 16)
}

func (m *memtable) sorted() []entry {
	keys := make([]string, 0, len(m.data))
	for k := range m.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]entry, len(keys))
	for i, k := range keys {
		out[i] = m.data[k]
	}
	return out
}

type writeReq struct {
	ent  entry
	done bool
	err  error
}

// DB is an open store instance.
type DB struct {
	fs   *core.FS
	node *simnet.Node
	cfg  Config

	mu      simnet.Mutex
	qCond   *simnet.Cond
	flush   *simnet.Cond // flusher wake + stall wait
	compact *simnet.Cond

	queue        []*writeReq
	leaderActive bool
	// reqFree recycles writeReqs and spareQueue the queue's backing array:
	// the group-commit path runs once per op, and the put rate is high enough
	// that one allocation per op shows up in the perf alloc gate.
	reqFree    []*writeReq
	spareQueue []*writeReq

	mem     *memtable
	imm     []*memtable
	wal     core.File
	fileSeq int
	// nextWAL is pre-opened in the background once the memtable is half
	// full, so rotation never blocks the commit leader on NCL region setup
	// (RocksDB's log-file preallocation/recycling).
	nextWAL     core.File
	nextWALPath string
	preparing   bool

	l0 []*ssTable // newest first
	l1 []*ssTable // sorted, non-overlapping (kept as one run)
	// tables is the read path's lookup order (l0 newest-first, then l1) as
	// an immutable snapshot: rebuilt via retable on every table-set change,
	// never mutated in place, so Get can release mu without copying it.
	tables []*ssTable

	closed bool

	// Stats.
	Batches      int64
	Ops          int64
	StallTime    time.Duration
	Compactions  int64
	Flushes      int64
	SlowdownTime time.Duration
}

// Open creates a fresh store (no recovery; use Recover for restart paths).
func Open(p *simnet.Proc, fs *core.FS, cfg Config) (*DB, error) {
	db := newDB(fs, cfg)
	if err := db.rotateWAL(p); err != nil {
		return nil, err
	}
	db.startBackground(p)
	return db, nil
}

func newDB(fs *core.FS, cfg Config) *DB {
	db := &DB{fs: fs, node: fs.Node(), cfg: cfg}
	db.qCond = simnet.NewCond(&db.mu)
	db.flush = simnet.NewCond(&db.mu)
	db.compact = simnet.NewCond(&db.mu)
	return db
}

func (db *DB) startBackground(p *simnet.Proc) {
	p.GoOn(db.node, "kv-flusher", db.flusherLoop)
	p.GoOn(db.node, "kv-compactor", db.compactorLoop)
}

func (db *DB) walPath(n int) string { return fmt.Sprintf("%s/wal-%06d.log", db.cfg.Dir, n) }
func (db *DB) sstPath(level, n int) string {
	return fmt.Sprintf("%s/L%d-%06d.sst", db.cfg.Dir, level, n)
}

// walFlags returns the open flags for a WAL file under the configuration:
// the entire SplitFT port is the O_NCL bit (plus the append-only hint that
// enables tail catch-up at recovery).
func (db *DB) walFlags() core.OpenFlag {
	if db.cfg.Durability == SplitFT {
		return core.O_NCL | core.O_CREATE | core.O_APPEND
	}
	return core.O_CREATE
}

// rotateWAL opens a fresh WAL and memtable; caller must hold no lock or the
// write lock consistently (called at open and from the commit path).
func (db *DB) rotateWAL(p *simnet.Proc) error {
	db.fileSeq++
	path := db.walPath(db.fileSeq)
	w, err := db.fs.OpenFile(p, path, db.walFlags(), db.cfg.WALRegion)
	if err != nil {
		return err
	}
	db.wal = w
	db.mem = newMemtable(path)
	return nil
}

// Put inserts or updates a key.
func (db *DB) Put(p *simnet.Proc, key string, value []byte) error {
	v := make([]byte, len(value))
	copy(v, value)
	return db.write(p, entry{key: key, value: v})
}

// Delete removes a key (tombstone).
func (db *DB) Delete(p *simnet.Proc, key string) error {
	return db.write(p, entry{key: key, del: true})
}

// write enqueues the update and runs the group-commit protocol: the first
// waiter becomes leader, takes the whole queue as one batch, appends a
// single WAL record (fsynced or NCL-recorded per configuration), applies
// the batch to the memtable, and wakes everyone.
func (db *DB) write(p *simnet.Proc, e entry) error {
	db.mu.Lock(p)
	if db.closed {
		db.mu.Unlock(p)
		return errors.New("kvstore: closed")
	}
	var w *writeReq
	if n := len(db.reqFree); n > 0 {
		w = db.reqFree[n-1]
		db.reqFree = db.reqFree[:n-1]
		*w = writeReq{ent: e}
	} else {
		w = &writeReq{ent: e}
	}
	if db.queue == nil && db.spareQueue != nil {
		db.queue, db.spareQueue = db.spareQueue, nil
	}
	db.queue = append(db.queue, w)
	for {
		if w.done {
			err := w.err
			*w = writeReq{}
			db.reqFree = append(db.reqFree, w)
			db.mu.Unlock(p)
			return err
		}
		if db.leaderActive {
			db.qCond.Wait(p)
			continue
		}
		db.leaderActive = true
		batch := db.queue
		db.queue = nil
		db.mu.Unlock(p)

		err := db.commitBatch(p, batch)

		db.mu.Lock(p)
		for _, b := range batch {
			b.done = true
			b.err = err
		}
		db.leaderActive = false
		db.Batches++
		db.Ops += int64(len(batch))
		if db.spareQueue == nil {
			db.spareQueue = batch[:0]
		}
		db.qCond.Broadcast(p)
	}
}

// walRecord layout: [4B payloadLen][4B crc32(payload)][payload], where
// payload is [4B count] then per op [1B del][4B klen][4B vlen][key][value].
func encodeBatch(batch []*writeReq) []byte {
	size := 4
	for _, w := range batch {
		size += 9 + len(w.ent.key) + len(w.ent.value)
	}
	buf := make([]byte, 8+size)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(size))
	payload := buf[8:]
	binary.LittleEndian.PutUint32(payload[0:4], uint32(len(batch)))
	pos := 4
	for _, w := range batch {
		if w.ent.del {
			payload[pos] = 1
		}
		binary.LittleEndian.PutUint32(payload[pos+1:pos+5], uint32(len(w.ent.key)))
		binary.LittleEndian.PutUint32(payload[pos+5:pos+9], uint32(len(w.ent.value)))
		pos += 9
		copy(payload[pos:], w.ent.key)
		pos += len(w.ent.key)
		copy(payload[pos:], w.ent.value)
		pos += len(w.ent.value)
	}
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	return buf
}

func (db *DB) commitBatch(p *simnet.Proc, batch []*writeReq) error {
	// Serialize (leader CPU).
	p.Sleep(time.Duration(len(batch)) * db.cfg.EncodeCPU)
	rec := encodeBatch(batch)

	// One log write per batch; durability per configuration.
	if _, err := db.wal.Write(p, rec); err != nil {
		return err
	}
	if db.cfg.Durability == Strong {
		if err := db.wal.Sync(p); err != nil {
			return err
		}
	}

	// Apply to the memtable.
	p.Sleep(time.Duration(len(batch)) * db.cfg.ApplyCPU)
	for _, w := range batch {
		db.mem.put(w.ent)
	}

	// Backpressure: slow down when L0 piles up; stall when flushing lags.
	db.mu.Lock(p)
	if len(db.l0) >= db.cfg.L0SlowdownTrigger {
		db.mu.Unlock(p)
		p.Sleep(db.cfg.SlowdownDelay)
		db.SlowdownTime += db.cfg.SlowdownDelay
		db.mu.Lock(p)
	}
	for len(db.imm) >= db.cfg.MaxImmutables && !db.closed {
		start := p.Now()
		db.flush.WaitTimeout(p, 20*time.Millisecond)
		db.StallTime += p.Now() - start
	}
	// Prepare the next WAL off the critical path once half full.
	if db.mem.bytes >= db.cfg.MemtableBytes/2 && db.nextWAL == nil && !db.preparing {
		db.preparing = true
		db.fileSeq++
		seq := db.fileSeq
		p.GoOn(db.node, "kv-wal-prep", func(wp *simnet.Proc) {
			path := db.walPath(seq)
			w, err := db.fs.OpenFile(wp, path, db.walFlags(), db.cfg.WALRegion)
			db.mu.Lock(wp)
			db.preparing = false
			if err == nil {
				db.nextWAL = w
				db.nextWALPath = path
			}
			db.mu.Unlock(wp)
		})
	}
	// Rotate if the memtable is full.
	var err error
	if db.mem.bytes >= db.cfg.MemtableBytes {
		db.imm = append(db.imm, db.mem)
		oldWAL := db.wal
		if db.nextWAL != nil {
			db.wal = db.nextWAL
			db.mem = newMemtable(db.nextWALPath)
			db.nextWAL = nil
			db.mu.Unlock(p)
		} else {
			db.mu.Unlock(p)
			err = db.rotateWAL(p)
		}
		_ = oldWAL.Close(p) // kept durable/recoverable until the flush deletes it
		db.mu.Lock(p)
		db.flush.Broadcast(p)
	}
	db.mu.Unlock(p)
	return err
}

// Get returns the value for key, if present.
func (db *DB) Get(p *simnet.Proc, key string) ([]byte, bool, error) {
	db.node.CPU().Use(p, db.cfg.GetCPU)
	db.mu.Lock(p)
	// Memtable, then immutables newest-first.
	if e, ok := db.mem.data[key]; ok {
		db.mu.Unlock(p)
		return e.value, !e.del, nil
	}
	for i := len(db.imm) - 1; i >= 0; i-- {
		if e, ok := db.imm[i].data[key]; ok {
			db.mu.Unlock(p)
			return e.value, !e.del, nil
		}
	}
	tables := db.tables // immutable snapshot: safe to walk unlocked
	db.mu.Unlock(p)
	for _, t := range tables {
		v, found, deleted, err := t.get(p, key)
		if err != nil {
			return nil, false, err
		}
		if found {
			return v, !deleted, nil
		}
	}
	return nil, false, nil
}

// retable rebuilds the immutable lookup snapshot after a table-set change.
// Caller holds mu (or has exclusive access, as during recovery).
func (db *DB) retable() {
	t := make([]*ssTable, 0, len(db.l0)+len(db.l1))
	t = append(t, db.l0...)
	t = append(t, db.l1...)
	db.tables = t
}

// flusherLoop writes immutable memtables to L0 tables and deletes their
// WALs — the background "large write then reclaim the log" cycle of §3.
func (db *DB) flusherLoop(p *simnet.Proc) {
	for {
		db.mu.Lock(p)
		for len(db.imm) == 0 && !db.closed {
			db.flush.WaitTimeout(p, 50*time.Millisecond)
		}
		if db.closed {
			db.mu.Unlock(p)
			return
		}
		m := db.imm[0]
		db.fileSeq++
		path := db.sstPath(0, db.fileSeq)
		db.mu.Unlock(p)

		t, err := writeSSTable(p, db.fs, path, m.sorted())
		if err != nil {
			p.Sleep(10 * time.Millisecond)
			continue
		}
		db.mu.Lock(p)
		db.imm = db.imm[1:]
		db.l0 = append([]*ssTable{t}, db.l0...)
		db.retable()
		db.Flushes++
		trigger := len(db.l0) >= db.cfg.L0CompactTrigger
		db.flush.Broadcast(p)
		if trigger {
			db.compact.Signal(p)
		}
		db.mu.Unlock(p)
		// The memtable is durable as a table; delete its log (reclaim).
		db.fs.Unlink(p, m.walPath) //nolint:errcheck
	}
}

// compactorLoop merges all of L0 with L1 into a fresh L1 run.
func (db *DB) compactorLoop(p *simnet.Proc) {
	for {
		db.mu.Lock(p)
		for len(db.l0) < db.cfg.L0CompactTrigger && !db.closed {
			db.compact.WaitTimeout(p, 100*time.Millisecond)
		}
		if db.closed {
			db.mu.Unlock(p)
			return
		}
		inputsL0 := append([]*ssTable(nil), db.l0...)
		inputsL1 := append([]*ssTable(nil), db.l1...)
		db.mu.Unlock(p)

		merged, err := db.mergeTables(p, inputsL0, inputsL1)
		if err != nil {
			p.Sleep(10 * time.Millisecond)
			continue
		}
		db.fileSeq++
		path := db.sstPath(1, db.fileSeq)
		t, err := writeSSTable(p, db.fs, path, merged)
		if err != nil {
			p.Sleep(10 * time.Millisecond)
			continue
		}
		db.mu.Lock(p)
		db.l0 = db.l0[:len(db.l0)-len(inputsL0)]
		db.l1 = []*ssTable{t}
		db.retable()
		db.Compactions++
		db.mu.Unlock(p)
		for _, in := range append(inputsL0, inputsL1...) {
			db.fs.Unlink(p, in.path) //nolint:errcheck
		}
	}
}

// mergeTables produces the sorted union with newest-wins semantics.
// inputsL0 is newest-first; L1 is oldest.
func (db *DB) mergeTables(p *simnet.Proc, inputsL0, inputsL1 []*ssTable) ([]entry, error) {
	result := make(map[string]entry)
	// Oldest first so newer entries overwrite.
	for _, t := range inputsL1 {
		ents, err := t.scanAll(p)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			result[e.key] = e
		}
	}
	for i := len(inputsL0) - 1; i >= 0; i-- {
		ents, err := inputsL0[i].scanAll(p)
		if err != nil {
			return nil, err
		}
		// Charge merge CPU coarsely per table.
		p.Sleep(time.Duration(len(ents)) * db.cfg.MergeCPU)
		for _, e := range ents {
			result[e.key] = e
		}
	}
	keys := make([]string, 0, len(result))
	for k := range result {
		if result[k].del {
			delete(result, k) // full-merge drops tombstones
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]entry, len(keys))
	for i, k := range keys {
		out[i] = result[k]
	}
	return out, nil
}

// Close stops background work (the store remains recoverable).
func (db *DB) Close(p *simnet.Proc) {
	db.mu.Lock(p)
	db.closed = true
	db.flush.Broadcast(p)
	db.compact.Signal(p)
	db.qCond.Broadcast(p)
	db.mu.Unlock(p)
}

// ---- Recovery ----

// Recover reconstructs a store after an application-server crash: open the
// surviving tables from the dfs, then replay the WALs. In SplitFT mode the
// WALs are recovered from NCL peers; in DFT modes, from the dfs (weak mode
// recovers only what writeback happened to flush — the data-loss window the
// paper's Table 1 guarantees column is about).
func Recover(p *simnet.Proc, fs *core.FS, cfg Config) (*DB, error) {
	db := newDB(fs, cfg)

	// Tables: keep only complete ones, newest L1 generation wins.
	var l0 []*ssTable
	var l1 []*ssTable
	maxSeq := 0
	for _, path := range fs.ListDFS(cfg.Dir + "/") {
		if !strings.HasSuffix(path, ".sst") {
			continue
		}
		t, err := openSSTable(p, fs, path)
		if err != nil {
			continue // incomplete flush/compaction output: ignore
		}
		var level, n int
		if _, err := fmt.Sscanf(path[len(cfg.Dir)+1:], "L%d-%06d.sst", &level, &n); err != nil {
			continue
		}
		if n > maxSeq {
			maxSeq = n
		}
		if level == 0 {
			l0 = append(l0, t)
		} else {
			l1 = append(l1, t)
		}
	}
	// L0 newest first by sequence in the file name.
	sort.Slice(l0, func(i, j int) bool { return l0[i].path > l0[j].path })
	// Only the newest complete L1 run is current.
	sort.Slice(l1, func(i, j int) bool { return l1[i].path > l1[j].path })
	if len(l1) > 1 {
		for _, stale := range l1[1:] {
			fs.Unlink(p, stale.path) //nolint:errcheck
		}
		l1 = l1[:1]
	}
	db.l0 = l0
	db.l1 = l1

	// WALs: ncl files in SplitFT mode, dfs files otherwise.
	var wals []string
	if cfg.Durability == SplitFT {
		names, err := fs.ListNCL(p)
		if err != nil {
			return nil, err
		}
		wals = names
	} else {
		for _, path := range fs.ListDFS(cfg.Dir + "/") {
			if strings.HasSuffix(path, ".log") {
				wals = append(wals, path)
			}
		}
	}
	sort.Strings(wals)
	for _, w := range wals {
		var n int
		if _, err := fmt.Sscanf(w[len(cfg.Dir)+1:], "wal-%06d.log", &n); err == nil && n > maxSeq {
			maxSeq = n
		}
	}
	db.fileSeq = maxSeq

	// Replay WALs oldest-to-newest into fresh memtables, then flush them to
	// tables and reclaim the logs, ending with one empty memtable + WAL.
	for _, walName := range wals {
		flags := db.walFlags() &^ core.O_CREATE
		f, err := fs.OpenFile(p, walName, flags, cfg.WALRegion)
		if err != nil {
			return nil, fmt.Errorf("kvstore: reopen wal %s: %w", walName, err)
		}
		mem := newMemtable(walName)
		if err := replayWAL(p, f, mem); err != nil {
			return nil, err
		}
		if len(mem.data) > 0 {
			db.fileSeq++
			t, err := writeSSTable(p, fs, db.sstPath(0, db.fileSeq), mem.sorted())
			if err != nil {
				return nil, err
			}
			db.l0 = append([]*ssTable{t}, db.l0...)
		}
		f.Close(p)
		fs.Unlink(p, walName) //nolint:errcheck
	}
	if err := db.rotateWAL(p); err != nil {
		return nil, err
	}
	db.retable()
	db.startBackground(p)
	return db, nil
}

// replayWAL applies every intact batch record; it stops at the first torn
// or corrupt record (an unacknowledged trailing write, §4.5.1).
func replayWAL(p *simnet.Proc, f core.File, mem *memtable) error {
	size := f.Size()
	data := make([]byte, size)
	if _, err := f.Pread(p, data, 0); err != nil {
		return err
	}
	// Parsing cost: reading and decoding dominates app-level recovery time
	// (Fig 11b "parse"); model at ~150 MB/s.
	p.Sleep(time.Duration(float64(len(data)) / 150e6 * float64(time.Second)))
	pos := 0
	for pos+8 <= len(data) {
		plen := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
		crc := binary.LittleEndian.Uint32(data[pos+4 : pos+8])
		if plen == 0 || pos+8+plen > len(data) {
			return nil
		}
		payload := data[pos+8 : pos+8+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			return nil // torn batch: stop replay here
		}
		count := int(binary.LittleEndian.Uint32(payload[0:4]))
		q := 4
		for i := 0; i < count; i++ {
			del := payload[q] == 1
			klen := int(binary.LittleEndian.Uint32(payload[q+1 : q+5]))
			vlen := int(binary.LittleEndian.Uint32(payload[q+5 : q+9]))
			q += 9
			key := string(payload[q : q+klen])
			q += klen
			val := make([]byte, vlen)
			copy(val, payload[q:q+vlen])
			q += vlen
			mem.put(entry{key: key, value: val, del: del})
		}
		pos += 8 + plen
	}
	return nil
}

// Stats snapshot for benches.
type Stats struct {
	Batches, Ops         int64
	Flushes, Compactions int64
	StallTime            time.Duration
	SlowdownTime         time.Duration
	L0Tables, L1Tables   int
	MemtableBytes        int64
}

// WAL returns the active write-ahead-log file (failure-injection benches
// use it to find the log's current NCL peers).
func (db *DB) WAL() core.File { return db.wal }

// Stats returns a consistent snapshot of internal counters.
func (db *DB) Stats() Stats {
	return Stats{
		Batches: db.Batches, Ops: db.Ops,
		Flushes: db.Flushes, Compactions: db.Compactions,
		StallTime: db.StallTime, SlowdownTime: db.SlowdownTime,
		L0Tables: len(db.l0), L1Tables: len(db.l1),
		MemtableBytes: db.mem.bytes,
	}
}
