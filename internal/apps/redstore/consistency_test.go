package redstore

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"splitft/internal/harness"
	"splitft/internal/simnet"
)

// Consistency property: for any random command sequence and crash point —
// including crashes around AOF rewrites/snapshots — a recovered SplitFT
// store returns exactly the last acknowledged value of every key.
func TestQuickSplitFTConsistencyAcrossCrash(t *testing.T) {
	f := func(seed int64, nOps uint16, crashMS uint8) bool {
		ops := int(nOps)%300 + 40
		c := harness.New(harness.Options{Seed: seed, NumPeers: 4})
		shadow := map[string]string{}
		ok := true
		err := c.Run(func(p *simnet.Proc) error {
			c.AppNode.Go("app-v1", func(ap *simnet.Proc) {
				fs, err := c.NewFS(ap, "redq", 0)
				if err != nil {
					return
				}
				cfg := testConfig(SplitFT)
				cfg.AOFRewriteBytes = 16 << 10 // snapshots trigger often
				s, err := Open(ap, fs, cfg)
				if err != nil {
					return
				}
				rng := seed
				for i := 0; i < ops; i++ {
					rng = rng*6364136223846793005 + 1442695040888963407
					key := fmt.Sprintf("k%03d", uint64(rng)%83)
					if uint64(rng)>>32%13 == 0 {
						if s.Del(ap, key) != nil {
							return
						}
						delete(shadow, key)
					} else {
						val := fmt.Sprintf("v%d-%d", seed, i)
						if s.Set(ap, key, []byte(val)) != nil {
							return
						}
						shadow[key] = val
					}
				}
				ap.Sleep(time.Hour)
			})
			p.Sleep(150*time.Millisecond + time.Duration(crashMS)*time.Millisecond)
			c.CrashApp()
			p.Sleep(10 * time.Millisecond)
			c.RestartApp()
			fs2, err := c.NewFS(p, "redq", 1)
			if err != nil {
				return err
			}
			cfg := testConfig(SplitFT)
			cfg.AOFRewriteBytes = 16 << 10
			s2, err := Recover(p, fs2, cfg)
			if err != nil {
				return err
			}
			for key, want := range shadow {
				v, found, err := s2.Get(p, key)
				if err != nil || !found || string(v) != want {
					ok = false
					return nil
				}
			}
			// Deleted keys must stay deleted.
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
