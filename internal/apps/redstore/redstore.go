// Package redstore is the Redis-style data-structure store ported to
// SplitFT (§4.7). Like Redis it runs a single-threaded command loop: every
// request — reads included — passes through one processing proc, which is
// what produces the head-of-line blocking the paper observes in strong-app
// DFT under YCSB (§5.3): reads queue behind writes waiting on fsyncs.
//
// Durability uses an append-only file (AOF). Pipelined commands arriving
// while the loop is busy are batched into one AOF append. When the AOF
// outgrows its limit, a background snapshot writes the dataset as an RDB
// file to the dfs and the AOF is deleted and recreated (delete-based
// reclamation, Table 2).
//
// The SplitFT port is the O_NCL flag on the AOF open call.
package redstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"splitft/internal/core"
	"splitft/internal/model"
	"splitft/internal/simnet"
)

// Durability mirrors the kvstore configurations.
type Durability int

const (
	// Weak appends to the AOF without fsync (appendfsync no).
	Weak Durability = iota
	// Strong fsyncs the AOF after every batch (appendfsync always).
	Strong
	// SplitFT keeps the AOF in near-compute logs.
	SplitFT
)

func (d Durability) String() string {
	switch d {
	case Weak:
		return "weak"
	case Strong:
		return "strong"
	default:
		return "splitft"
	}
}

// Config tunes the store.
type Config struct {
	Dir        string
	Durability Durability
	// AOFRewriteBytes triggers an RDB snapshot + AOF swap.
	AOFRewriteBytes int64
	// AOFRegion is the ncl region capacity for the AOF.
	AOFRegion int64
	// BatchMax bounds how many pipelined commands one loop iteration takes.
	BatchMax int
	// RedStoreCosts is the CPU/copy cost model; the constants live in
	// internal/model and the fields promote (cfg.OpCPU etc.).
	model.RedStoreCosts
}

// DefaultConfig returns simulation-scaled settings; CPU costs come from the
// baseline profile.
func DefaultConfig() Config {
	return Config{
		Dir:             "/redis",
		Durability:      SplitFT,
		AOFRewriteBytes: 8 << 20,
		AOFRegion:       16 << 20,
		BatchMax:        32,
		RedStoreCosts:   model.Baseline().Apps.RedStore,
	}
}

type opKind int

const (
	opSet opKind = iota
	opGet
	opDel
)

type request struct {
	kind  opKind
	key   string
	value []byte
	reply *simnet.Chan[response]
}

type response struct {
	value []byte
	found bool
	err   error
}

// Store is a running instance.
type Store struct {
	fs   *core.FS
	node *simnet.Node
	cfg  Config

	data   map[string][]byte
	reqCh  *simnet.Chan[request]
	aof    core.File
	aofNum int
	closed bool

	snapshotting bool

	// Stats.
	Ops       int64
	Batches   int64
	Snapshots int64
}

func (s *Store) aofPath(n int) string { return fmt.Sprintf("%s/appendonly-%04d.aof", s.cfg.Dir, n) }
func (s *Store) rdbPath(n int) string { return fmt.Sprintf("%s/dump-%04d.rdb", s.cfg.Dir, n) }

func (s *Store) aofFlags() core.OpenFlag {
	if s.cfg.Durability == SplitFT {
		return core.O_NCL | core.O_CREATE | core.O_APPEND
	}
	return core.O_CREATE
}

// Open starts a fresh store.
func Open(p *simnet.Proc, fs *core.FS, cfg Config) (*Store, error) {
	s := &Store{
		fs:    fs,
		node:  fs.Node(),
		cfg:   cfg,
		data:  make(map[string][]byte),
		reqCh: simnet.NewChan[request](fs.Node().Sim()),
	}
	s.aofNum = 1
	aof, err := fs.OpenFile(p, s.aofPath(s.aofNum), s.aofFlags(), cfg.AOFRegion)
	if err != nil {
		return nil, err
	}
	s.aof = aof
	p.GoOn(s.node, "redstore-loop", s.commandLoop)
	return s, nil
}

// Set stores key=value, durably per the configuration, and returns once the
// command loop acknowledged it.
func (s *Store) Set(p *simnet.Proc, key string, value []byte) error {
	v := make([]byte, len(value))
	copy(v, value)
	r := s.do(p, request{kind: opSet, key: key, value: v})
	return r.err
}

// Get returns the value for key.
func (s *Store) Get(p *simnet.Proc, key string) ([]byte, bool, error) {
	r := s.do(p, request{kind: opGet, key: key})
	return r.value, r.found, r.err
}

// Del removes key.
func (s *Store) Del(p *simnet.Proc, key string) error {
	r := s.do(p, request{kind: opDel, key: key})
	return r.err
}

func (s *Store) do(p *simnet.Proc, r request) response {
	r.reply = simnet.NewChan[response](s.node.Sim())
	s.reqCh.Send(p, r)
	resp, ok := r.reply.Recv(p)
	if !ok {
		return response{err: errors.New("redstore: closed")}
	}
	return resp
}

// commandLoop is the single thread: it drains up to BatchMax pipelined
// requests, processes them, persists the write commands as one AOF record,
// and replies. Reads wait their turn behind writes — by design.
func (s *Store) commandLoop(p *simnet.Proc) {
	for {
		first, ok := s.reqCh.Recv(p)
		if !ok {
			return
		}
		batch := []request{first}
		for len(batch) < s.cfg.BatchMax {
			r, ok := s.reqCh.TryRecv(p)
			if !ok {
				break
			}
			batch = append(batch, r)
		}
		// Per-command CPU (single threaded).
		p.Sleep(time.Duration(len(batch)) * s.cfg.OpCPU)

		// Persist the write commands.
		var writes []request
		for _, r := range batch {
			if r.kind != opGet {
				writes = append(writes, r)
			}
		}
		var err error
		if len(writes) > 0 {
			rec := encodeAOF(writes)
			if _, werr := s.aof.Write(p, rec); werr != nil {
				err = werr
			} else if s.cfg.Durability == Strong {
				err = s.aof.Sync(p)
			}
		}
		// Apply and reply.
		for _, r := range batch {
			resp := response{err: err}
			if err == nil {
				switch r.kind {
				case opSet:
					s.data[r.key] = r.value
				case opDel:
					delete(s.data, r.key)
				case opGet:
					v, found := s.data[r.key]
					resp.value, resp.found = v, found
				}
			}
			r.reply.Send(p, resp)
		}
		s.Ops += int64(len(batch))
		s.Batches++

		if len(writes) > 0 && s.aof.Size() > s.cfg.AOFRewriteBytes && !s.snapshotting {
			s.startSnapshot(p)
		}
	}
}

// encodeAOF frames a batch: [4B len][4B crc][payload]; payload is
// [4B count] then per op [1B kind][4B klen][4B vlen][key][value].
func encodeAOF(writes []request) []byte {
	size := 4
	for _, w := range writes {
		size += 9 + len(w.key) + len(w.value)
	}
	buf := make([]byte, 8+size)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(size))
	payload := buf[8:]
	binary.LittleEndian.PutUint32(payload[0:4], uint32(len(writes)))
	pos := 4
	for _, w := range writes {
		if w.kind == opDel {
			payload[pos] = 1
		}
		binary.LittleEndian.PutUint32(payload[pos+1:pos+5], uint32(len(w.key)))
		binary.LittleEndian.PutUint32(payload[pos+5:pos+9], uint32(len(w.value)))
		pos += 9
		copy(payload[pos:], w.key)
		pos += len(w.key)
		copy(payload[pos:], w.value)
		pos += len(w.value)
	}
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	return buf
}

// startSnapshot forks the dataset (copy charged to the loop, like fork COW
// pressure) and writes it to an RDB file in the background; on completion
// the old AOF is deleted and a fresh one absorbs further updates.
func (s *Store) startSnapshot(p *simnet.Proc) {
	s.snapshotting = true
	snap := make(map[string][]byte, len(s.data))
	var bytes int64
	for k, v := range s.data {
		snap[k] = v
		bytes += int64(len(k) + len(v))
	}
	p.Sleep(time.Duration(float64(bytes) / s.cfg.SnapshotCopyBW * float64(time.Second)))
	oldAOF := s.aof
	oldPath := s.aofPath(s.aofNum)
	s.aofNum++
	newAOF, err := s.fs.OpenFile(p, s.aofPath(s.aofNum), s.aofFlags(), s.cfg.AOFRegion)
	if err != nil {
		s.snapshotting = false
		s.aofNum--
		return
	}
	s.aof = newAOF
	rdbNum := s.aofNum
	p.GoOn(s.node, "redstore-snapshot", func(sp *simnet.Proc) {
		defer func() { s.snapshotting = false }()
		if err := s.writeRDB(sp, rdbNum, snap); err != nil {
			return
		}
		// RDB durable: reclaim the old AOF and the previous RDB.
		oldAOF.Close(sp)
		s.fs.Unlink(sp, oldPath) //nolint:errcheck
		if rdbNum > 1 {
			prev := s.rdbPath(rdbNum - 1)
			if s.fs.Exists(sp, prev) {
				s.fs.Unlink(sp, prev) //nolint:errcheck
			}
		}
		s.Snapshots++
	})
}

// writeRDB serializes the snapshot to the dfs: one large background write.
func (s *Store) writeRDB(p *simnet.Proc, num int, snap map[string][]byte) error {
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	size := 8
	for _, k := range keys {
		size += 8 + len(k) + len(snap[k])
	}
	buf := make([]byte, size)
	binary.LittleEndian.PutUint64(buf[0:8], uint64(len(keys)))
	pos := 8
	for _, k := range keys {
		binary.LittleEndian.PutUint32(buf[pos:pos+4], uint32(len(k)))
		binary.LittleEndian.PutUint32(buf[pos+4:pos+8], uint32(len(snap[k])))
		pos += 8
		copy(buf[pos:], k)
		pos += len(k)
		copy(buf[pos:], snap[k])
		pos += len(snap[k])
	}
	f, err := s.fs.OpenFile(p, s.rdbPath(num), core.O_CREATE|core.O_EXTENT, 0)
	if err != nil {
		return err
	}
	if _, err := f.Write(p, buf); err != nil {
		return err
	}
	if err := f.Sync(p); err != nil {
		return err
	}
	return f.Close(p)
}

// Close shuts the command loop down.
func (s *Store) Close(p *simnet.Proc) {
	if !s.closed {
		s.closed = true
		s.reqCh.Close(p)
	}
}

// ---- Recovery ----

// Recover rebuilds the store from the newest complete RDB snapshot plus the
// surviving AOFs — from NCL peers in SplitFT mode, from the dfs otherwise.
func Recover(p *simnet.Proc, fs *core.FS, cfg Config) (*Store, error) {
	s := &Store{
		fs:    fs,
		node:  fs.Node(),
		cfg:   cfg,
		data:  make(map[string][]byte),
		reqCh: simnet.NewChan[request](fs.Node().Sim()),
	}
	// Newest RDB first.
	rdbs := fs.ListDFS(cfg.Dir + "/dump-")
	maxNum := 0
	if len(rdbs) > 0 {
		newest := rdbs[len(rdbs)-1]
		if err := s.loadRDB(p, newest); err != nil {
			return nil, err
		}
		fmt.Sscanf(newest[len(cfg.Dir)+1:], "dump-%04d.rdb", &maxNum) //nolint:errcheck
	}
	// Replay AOFs newer than the snapshot, oldest first.
	var aofs []string
	if cfg.Durability == SplitFT {
		names, err := fs.ListNCL(p)
		if err != nil {
			return nil, err
		}
		aofs = names
	} else {
		aofs = fs.ListDFS(cfg.Dir + "/appendonly-")
	}
	sort.Strings(aofs)
	for _, path := range aofs {
		var n int
		if _, err := fmt.Sscanf(path[len(cfg.Dir)+1:], "appendonly-%04d.aof", &n); err == nil && n > maxNum {
			maxNum = n
		}
		flags := s.aofFlags() &^ core.O_CREATE
		f, err := fs.OpenFile(p, path, flags, cfg.AOFRegion)
		if err != nil {
			return nil, err
		}
		s.replayAOF(p, f)
		f.Close(p)
		fs.Unlink(p, path) //nolint:errcheck
	}
	s.aofNum = maxNum + 1
	aof, err := fs.OpenFile(p, s.aofPath(s.aofNum), s.aofFlags(), cfg.AOFRegion)
	if err != nil {
		return nil, err
	}
	s.aof = aof
	p.GoOn(s.node, "redstore-loop", s.commandLoop)
	return s, nil
}

func (s *Store) loadRDB(p *simnet.Proc, path string) error {
	f, err := s.fs.OpenFile(p, path, 0, 0)
	if err != nil {
		return err
	}
	defer f.Close(p)
	buf := make([]byte, f.Size())
	if _, err := f.Pread(p, buf, 0); err != nil {
		return err
	}
	p.Sleep(time.Duration(float64(len(buf)) / 200e6 * float64(time.Second))) // parse
	if len(buf) < 8 {
		return nil
	}
	count := binary.LittleEndian.Uint64(buf[0:8])
	pos := 8
	for i := uint64(0); i < count && pos+8 <= len(buf); i++ {
		klen := int(binary.LittleEndian.Uint32(buf[pos : pos+4]))
		vlen := int(binary.LittleEndian.Uint32(buf[pos+4 : pos+8]))
		pos += 8
		if pos+klen+vlen > len(buf) {
			break
		}
		key := string(buf[pos : pos+klen])
		pos += klen
		val := make([]byte, vlen)
		copy(val, buf[pos:pos+vlen])
		pos += vlen
		s.data[key] = val
	}
	return nil
}

// replayAOF applies intact batches, stopping at the first torn record.
func (s *Store) replayAOF(p *simnet.Proc, f core.File) {
	data := make([]byte, f.Size())
	if _, err := f.Pread(p, data, 0); err != nil {
		return
	}
	p.Sleep(time.Duration(float64(len(data)) / 150e6 * float64(time.Second))) // parse
	pos := 0
	for pos+8 <= len(data) {
		plen := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
		crc := binary.LittleEndian.Uint32(data[pos+4 : pos+8])
		if plen == 0 || pos+8+plen > len(data) {
			return
		}
		payload := data[pos+8 : pos+8+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			return
		}
		count := int(binary.LittleEndian.Uint32(payload[0:4]))
		q := 4
		for i := 0; i < count; i++ {
			del := payload[q] == 1
			klen := int(binary.LittleEndian.Uint32(payload[q+1 : q+5]))
			vlen := int(binary.LittleEndian.Uint32(payload[q+5 : q+9]))
			q += 9
			key := string(payload[q : q+klen])
			q += klen
			val := make([]byte, vlen)
			copy(val, payload[q:q+vlen])
			q += vlen
			if del {
				delete(s.data, key)
			} else {
				s.data[key] = val
			}
		}
		pos += 8 + plen
	}
}

// Len returns the number of keys (tests).
func (s *Store) Len() int { return len(s.data) }

// AOFSize returns the active append-only file's current size.
func (s *Store) AOFSize() int64 { return s.aof.Size() }
