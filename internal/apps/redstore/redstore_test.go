package redstore

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"splitft/internal/harness"
	"splitft/internal/simnet"
)

func testConfig(d Durability) Config {
	cfg := DefaultConfig()
	cfg.Durability = d
	cfg.AOFRewriteBytes = 64 << 10
	cfg.AOFRegion = 512 << 10
	return cfg
}

func TestSetGetDelAllDurabilities(t *testing.T) {
	for _, d := range []Durability{Weak, Strong, SplitFT} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			c := harness.New(harness.Options{Seed: 1, NumPeers: 4})
			err := c.Run(func(p *simnet.Proc) error {
				fs, err := c.NewFS(p, "redis", 0)
				if err != nil {
					return err
				}
				s, err := Open(p, fs, testConfig(d))
				if err != nil {
					return err
				}
				for i := 0; i < 50; i++ {
					if err := s.Set(p, fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
						return err
					}
				}
				v, ok, err := s.Get(p, "k007")
				if err != nil || !ok || string(v) != "v7" {
					return fmt.Errorf("get = %q %v %v", v, ok, err)
				}
				if err := s.Del(p, "k007"); err != nil {
					return err
				}
				if _, ok, _ := s.Get(p, "k007"); ok {
					return fmt.Errorf("deleted key still present")
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPipelinedBatching(t *testing.T) {
	c := harness.New(harness.Options{Seed: 2, NumPeers: 4})
	err := c.Run(func(p *simnet.Proc) error {
		fs, _ := c.NewFS(p, "redis", 0)
		s, err := Open(p, fs, testConfig(SplitFT))
		if err != nil {
			return err
		}
		var wg simnet.WaitGroup
		const clients, each = 12, 40
		wg.Add(clients)
		for i := 0; i < clients; i++ {
			i := i
			p.GoOn(c.AppNode, fmt.Sprintf("cli%d", i), func(cp *simnet.Proc) {
				for j := 0; j < each; j++ {
					s.Set(cp, fmt.Sprintf("c%02d-%03d", i, j), []byte("v"))
				}
				wg.Done(cp)
			})
		}
		wg.Wait(p)
		if s.Ops != clients*each {
			return fmt.Errorf("ops = %d", s.Ops)
		}
		if s.Batches >= s.Ops {
			return fmt.Errorf("no batching: %d batches / %d ops", s.Batches, s.Ops)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRotatesAOF(t *testing.T) {
	c := harness.New(harness.Options{Seed: 3, NumPeers: 4})
	err := c.Run(func(p *simnet.Proc) error {
		fs, _ := c.NewFS(p, "redis", 0)
		s, err := Open(p, fs, testConfig(SplitFT))
		if err != nil {
			return err
		}
		val := bytes.Repeat([]byte("x"), 120)
		for i := 0; i < 1500; i++ { // ~200KB of AOF > 64KB threshold
			if err := s.Set(p, fmt.Sprintf("key%05d", i), val); err != nil {
				return err
			}
		}
		p.Sleep(2 * time.Second)
		if s.Snapshots == 0 {
			return fmt.Errorf("no snapshot happened")
		}
		if rdbs := fs.ListDFS("/redis/dump-"); len(rdbs) == 0 {
			return fmt.Errorf("no rdb file on the dfs")
		}
		names, _ := fs.ListNCL(p)
		if len(names) != 1 {
			return fmt.Errorf("ncl files = %v, want only the active AOF", names)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func crashRecover(t *testing.T, seed int64, d Durability, writes int) (acked, survived int) {
	t.Helper()
	c := harness.New(harness.Options{Seed: seed, NumPeers: 4})
	err := c.Run(func(p *simnet.Proc) error {
		c.AppNode.Go("app-v1", func(ap *simnet.Proc) {
			fs, err := c.NewFS(ap, "redis", 0)
			if err != nil {
				return
			}
			s, err := Open(ap, fs, testConfig(d))
			if err != nil {
				return
			}
			for i := 0; i < writes; i++ {
				if err := s.Set(ap, fmt.Sprintf("key%05d", i), []byte(fmt.Sprintf("val%d", i))); err != nil {
					return
				}
				acked = i + 1
			}
			ap.Sleep(time.Hour)
		})
		p.Sleep(400 * time.Millisecond)
		c.CrashApp()
		p.Sleep(10 * time.Millisecond)
		c.RestartApp()
		fs2, err := c.NewFS(p, "redis", 1)
		if err != nil {
			return err
		}
		s2, err := Recover(p, fs2, testConfig(d))
		if err != nil {
			return err
		}
		for i := 0; i < acked; i++ {
			v, ok, err := s2.Get(p, fmt.Sprintf("key%05d", i))
			if err != nil {
				return err
			}
			if ok && string(v) == fmt.Sprintf("val%d", i) {
				survived++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return acked, survived
}

func TestCrashRecoverySplitFTNoLoss(t *testing.T) {
	acked, survived := crashRecover(t, 4, SplitFT, 1200)
	if acked == 0 || survived != acked {
		t.Fatalf("acked=%d survived=%d", acked, survived)
	}
}

func TestCrashRecoveryStrongNoLoss(t *testing.T) {
	acked, survived := crashRecover(t, 5, Strong, 60)
	if acked == 0 || survived != acked {
		t.Fatalf("acked=%d survived=%d", acked, survived)
	}
}

func TestCrashRecoveryWeakLoses(t *testing.T) {
	acked, survived := crashRecover(t, 6, Weak, 1200)
	if acked == 0 {
		t.Fatal("nothing acked")
	}
	if survived >= acked {
		t.Fatalf("weak lost nothing (%d/%d)", survived, acked)
	}
}

func TestRecoveryUsesSnapshotPlusAOF(t *testing.T) {
	// Data must come back from RDB + AOF even when snapshots rotated AOFs.
	c := harness.New(harness.Options{Seed: 7, NumPeers: 4})
	err := c.Run(func(p *simnet.Proc) error {
		val := bytes.Repeat([]byte("y"), 120)
		c.AppNode.Go("app-v1", func(ap *simnet.Proc) {
			fs, _ := c.NewFS(ap, "redis", 0)
			s, err := Open(ap, fs, testConfig(SplitFT))
			if err != nil {
				return
			}
			for i := 0; i < 2000; i++ {
				s.Set(ap, fmt.Sprintf("key%05d", i), val)
			}
			ap.Sleep(time.Hour)
		})
		p.Sleep(3 * time.Second) // writes done + snapshot(s)
		c.CrashApp()
		p.Sleep(10 * time.Millisecond)
		c.RestartApp()
		fs2, _ := c.NewFS(p, "redis", 1)
		s2, err := Recover(p, fs2, testConfig(SplitFT))
		if err != nil {
			return err
		}
		if s2.Len() != 2000 {
			return fmt.Errorf("recovered %d keys, want 2000", s2.Len())
		}
		for _, i := range []int{0, 1000, 1999} {
			v, ok, _ := s2.Get(p, fmt.Sprintf("key%05d", i))
			if !ok || !bytes.Equal(v, val) {
				return fmt.Errorf("key%05d missing after recovery", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHeadOfLineBlocking(t *testing.T) {
	// In strong mode a read behind a write waits for the write's fsync —
	// the single-threaded behaviour behind Redis' poor YCSB-B results.
	c := harness.New(harness.Options{Seed: 8, NumPeers: 4})
	err := c.Run(func(p *simnet.Proc) error {
		fs, _ := c.NewFS(p, "redis", 0)
		s, err := Open(p, fs, testConfig(Strong))
		if err != nil {
			return err
		}
		s.Set(p, "a", []byte("1"))
		done := simnet.NewChan[time.Duration](c.Sim)
		p.GoOn(c.AppNode, "writer", func(wp *simnet.Proc) {
			s.Set(wp, "b", []byte("2"))
		})
		p.GoOn(c.AppNode, "reader", func(rp *simnet.Proc) {
			rp.Sleep(10 * time.Microsecond) // queue behind the write
			start := rp.Now()
			s.Get(rp, "a")
			done.Send(rp, rp.Now()-start)
		})
		lat, _ := done.Recv(p)
		if lat < time.Millisecond {
			return fmt.Errorf("read latency %v; expected head-of-line blocking behind the fsync", lat)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
