package modelcheck

import (
	"strings"
	"testing"

	"splitft/internal/ncl"
)

func mustSpec(t *testing.T, s string) ncl.PolicySpec {
	t.Helper()
	spec, err := ncl.ParsePolicy(s)
	if err != nil {
		t.Fatalf("ParsePolicy(%q): %v", s, err)
	}
	return spec
}

// Every policy's correct ack rule survives its full failure budget, at two
// bound sizes each.
func TestReplicationCorrectProtocols(t *testing.T) {
	for _, pol := range []string{"mirror", "mirror:2", "ec:2,1", "ec:2,2", "quorum", "quorum:2"} {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			spec := mustSpec(t, pol)
			small := DefaultReplConfig(spec)
			for _, cfg := range []ReplConfig{small, {MaxWrites: 4, MaxCrashes: spec.Tolerates()}} {
				res := CheckReplication(spec, cfg)
				if res.Violation != nil {
					t.Fatalf("correct %s flagged at writes=%d: %s\ntrace: %v",
						pol, cfg.MaxWrites, res.Violation.Kind, res.Violation.Trace)
				}
				if res.States < 100 {
					t.Fatalf("explored only %d states; bounds too tight to mean anything", res.States)
				}
				t.Logf("writes=%d crashes=%d: %d states, no violations",
					cfg.MaxWrites, cfg.MaxCrashes, res.States)
			}
		})
	}
}

func TestReplicationLostStripeIsCaught(t *testing.T) {
	for _, pol := range []string{"ec:2,1", "ec:2,2"} {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			spec := mustSpec(t, pol)
			cfg := DefaultReplConfig(spec)
			cfg.Mutation = ReplMutLostStripe
			res := CheckReplication(spec, cfg)
			if res.Violation == nil {
				t.Fatal("lost-stripe ack bug not caught")
			}
			if len(res.Violation.Trace) == 0 || !strings.Contains(res.Violation.Trace[len(res.Violation.Trace)-1], "crash") {
				// The minimal counterexample ends in the crash that drops the
				// stripe below K cells.
				t.Fatalf("counterexample trace does not end in a crash: %v", res.Violation.Trace)
			}
			t.Logf("caught after %d states at depth %d: %s\ntrace: %v",
				res.States, res.Violation.Depth, res.Violation.Kind, res.Violation.Trace)
		})
	}
}

func TestReplicationSplitBrainAckIsCaught(t *testing.T) {
	for _, pol := range []string{"quorum", "quorum:2", "mirror"} {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			spec := mustSpec(t, pol)
			cfg := DefaultReplConfig(spec)
			cfg.Mutation = ReplMutSplitBrainAck
			res := CheckReplication(spec, cfg)
			if res.Violation == nil {
				t.Fatal("split-brain (minority) ack bug not caught")
			}
			t.Logf("caught after %d states at depth %d: %s\ntrace: %v",
				res.States, res.Violation.Depth, res.Violation.Kind, res.Violation.Trace)
		})
	}
}

// Anti-vacuity: a crash budget one past the policy's tolerance must produce
// violations even for the correct protocol — otherwise "correct passes"
// would mean the checker can't see loss at all.
func TestReplicationOverBudgetIsDetected(t *testing.T) {
	for _, pol := range []string{"mirror", "ec:2,1", "quorum"} {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			spec := mustSpec(t, pol)
			cfg := DefaultReplConfig(spec)
			cfg.MaxCrashes = spec.Tolerates() + 1
			res := CheckReplication(spec, cfg)
			if res.Violation == nil {
				t.Fatalf("%s: exceeding the failure budget should lose acked writes", pol)
			}
			t.Logf("caught after %d states: %s", res.States, res.Violation.Kind)
		})
	}
}
