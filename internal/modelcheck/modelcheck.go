// Package modelcheck is an explicit-state model checker for NCL's
// replication and recovery protocols (§4.6). The paper reports exploring
// over four million states, asserting after each that every write returned
// as success is recovered in the order the writes completed, and showing
// that seeded bugs — writing the sequence number before the data, or
// updating the ap-map before catching up a new peer — are flagged.
//
// The model abstracts one ncl file with 2f+1 log peers. Writes are
// integers; each application write posts a data op followed by a header
// (sequence-number) op to every live member's send queue, and queues drain
// in order (the RDMA SQ guarantee). The checker enumerates all
// interleavings of posting, delivery, peer crashes/restarts, peer
// replacement, application crashes, and application recovery with an
// adversarial choice of read quorum — and asserts the §4.6 correctness
// condition at every recovery.
//
// Acknowledgement is eager (a write is considered acknowledged the instant
// a majority of current members holds it), which is the strongest adversary:
// if any schedule could have externalized the write, the checker demands it
// be recoverable.
package modelcheck

import (
	"fmt"
)

// Mutation selects a seeded protocol bug (§4.6's checker validation).
type Mutation int

const (
	// MutNone checks the correct protocol.
	MutNone Mutation = iota
	// MutSeqBeforeData posts the sequence-number write before the data
	// write, so a peer can advertise data it does not hold.
	MutSeqBeforeData
	// MutSwapBeforeCatchup updates the ap-map with a replacement peer
	// before catching it up (Fig 7iii).
	MutSwapBeforeCatchup
	// MutNoRecoveryCatchup skips catching up lagging peers during
	// application recovery (§4.5.1's unsafe shortcut).
	MutNoRecoveryCatchup
)

func (m Mutation) String() string {
	switch m {
	case MutNone:
		return "none"
	case MutSeqBeforeData:
		return "seq-before-data"
	case MutSwapBeforeCatchup:
		return "ap-map-before-catch-up"
	default:
		return "no-recovery-catch-up"
	}
}

// Config bounds the exploration.
type Config struct {
	F               int // failure budget; 2F+1 peers
	MaxWrites       int
	MaxPeerCrashes  int
	MaxAppCrashes   int
	MaxReplacements int
	Mutation        Mutation
}

// DefaultConfig explores 3 peers, 3 writes, and generous failure budgets.
func DefaultConfig() Config {
	return Config{F: 1, MaxWrites: 3, MaxPeerCrashes: 2, MaxAppCrashes: 1, MaxReplacements: 2}
}

// opKind is a queued 1-sided write.
type opKind byte

const (
	opData opKind = iota
	opHdr
)

type qop struct {
	Kind opKind
	Seq  int8
}

// peerState is one membership slot.
type peerState struct {
	Alive bool
	MrMap bool // false after a crash+restart: lookup requests are rejected
	Data  int8 // highest data write applied (in-order, so a prefix)
	Hdr   int8 // highest header (sequence number) applied
	Queue []qop
}

// state is one global configuration.
type state struct {
	AppAlive bool
	W        int8 // writes issued (app's local buffer holds all of them)
	A        int8 // writes acknowledged to clients (externalized promise)
	Epoch    int8
	Peers    []peerState
	PeerCr   int8
	AppCr    int8
	Repl     int8
}

func (s *state) clone() *state {
	c := *s
	c.Peers = make([]peerState, len(s.Peers))
	for i, p := range s.Peers {
		c.Peers[i] = p
		c.Peers[i].Queue = append([]qop(nil), p.Queue...)
	}
	return &c
}

func (s *state) key() string { return fmt.Sprintf("%+v", *s) }

// eagerAck advances A to the largest write held (header-visible) by a
// majority of current members. Only a live application acknowledges.
func (s *state) eagerAck(f int) {
	if !s.AppAlive {
		return
	}
	for w := s.A + 1; w <= s.W; w++ {
		n := 0
		for _, p := range s.Peers {
			if p.Hdr >= w {
				n++
			}
		}
		if n >= f+1 {
			s.A = w
		} else {
			break
		}
	}
}

// Violation describes a detected correctness failure.
type Violation struct {
	Kind  string
	Depth int
	Trace []string
	State string
}

// Result summarizes a run.
type Result struct {
	States    int
	Violation *Violation
}

type node struct {
	st    *state
	trace []string
}

// Check explores the bounded state space and returns the first violation
// found (breadth-first, so traces are minimal-ish), or nil.
func Check(cfg Config) Result {
	n := 2*cfg.F + 1
	init := &state{AppAlive: true, Peers: make([]peerState, n)}
	for i := range init.Peers {
		init.Peers[i] = peerState{Alive: true, MrMap: true}
	}
	visited := map[string]struct{}{init.key(): {}}
	queue := []node{{st: init}}
	states := 0

	push := func(parent node, action string, st *state, out *[]node) {
		st.eagerAck(cfg.F)
		k := st.key()
		if _, seen := visited[k]; seen {
			return
		}
		visited[k] = struct{}{}
		*out = append(*out, node{st: st, trace: append(append([]string(nil), parent.trace...), action)})
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		states++
		var next []node
		s := cur.st

		// 1. Application issues the next write.
		if s.AppAlive && s.W < int8(cfg.MaxWrites) {
			c := s.clone()
			c.W++
			for i := range c.Peers {
				if c.Peers[i].Alive && c.Peers[i].MrMap {
					if cfg.Mutation == MutSeqBeforeData {
						c.Peers[i].Queue = append(c.Peers[i].Queue, qop{opHdr, c.W}, qop{opData, c.W})
					} else {
						c.Peers[i].Queue = append(c.Peers[i].Queue, qop{opData, c.W}, qop{opHdr, c.W})
					}
				}
			}
			push(cur, fmt.Sprintf("issue(%d)", c.W), c, &next)
		}

		// 2. Deliver the head of any peer's queue (SQ order).
		for i := range s.Peers {
			if len(s.Peers[i].Queue) == 0 || !s.Peers[i].Alive {
				continue
			}
			c := s.clone()
			op := c.Peers[i].Queue[0]
			c.Peers[i].Queue = c.Peers[i].Queue[1:]
			if op.Kind == opData {
				if op.Seq > c.Peers[i].Data {
					c.Peers[i].Data = op.Seq
				}
			} else if op.Seq > c.Peers[i].Hdr {
				c.Peers[i].Hdr = op.Seq
			}
			push(cur, fmt.Sprintf("deliver(p%d,%v%d)", i, op.Kind, op.Seq), c, &next)
		}

		// 3. Peer crash: memory and mr-map lost, queue dropped.
		if s.PeerCr < int8(cfg.MaxPeerCrashes) {
			for i := range s.Peers {
				if !s.Peers[i].Alive {
					continue
				}
				c := s.clone()
				c.Peers[i] = peerState{Alive: false}
				c.PeerCr++
				push(cur, fmt.Sprintf("crash(p%d)", i), c, &next)
			}
		}

		// 4. Peer restart: alive again but the mr-map is gone.
		for i := range s.Peers {
			if s.Peers[i].Alive {
				continue
			}
			c := s.clone()
			c.Peers[i].Alive = true
			push(cur, fmt.Sprintf("restart(p%d)", i), c, &next)
		}

		// 5. Replacement of a failed member by the live application
		//    (§4.5.2): catch the new peer up from the local buffer, then
		//    switch the ap-map. The mutation swaps that order, so the new
		//    peer is counted before it holds anything.
		if s.AppAlive && s.Repl < int8(cfg.MaxReplacements) {
			for i := range s.Peers {
				if s.Peers[i].Alive && s.Peers[i].MrMap {
					continue // only failed/forgotten members are replaced
				}
				c := s.clone()
				if cfg.Mutation == MutSwapBeforeCatchup {
					c.Peers[i] = peerState{Alive: true, MrMap: true} // empty!
				} else {
					c.Peers[i] = peerState{Alive: true, MrMap: true, Data: c.W, Hdr: c.W}
				}
				c.Epoch++
				c.Repl++
				push(cur, fmt.Sprintf("replace(p%d)", i), c, &next)
			}
		}

		// 6. Application crash: local buffer and in-flight writes vanish.
		if s.AppAlive && s.AppCr < int8(cfg.MaxAppCrashes) {
			c := s.clone()
			c.AppAlive = false
			c.AppCr++
			for i := range c.Peers {
				c.Peers[i].Queue = nil
			}
			push(cur, "crash(app)", c, &next)
		}

		// 7. Application recovery: adversarial choice of the f+1 read
		//    quorum among responders (alive peers that still hold the
		//    mr-map entry).
		if !s.AppAlive {
			var responders []int
			for i := range s.Peers {
				if s.Peers[i].Alive && s.Peers[i].MrMap {
					responders = append(responders, i)
				}
			}
			if len(responders) >= cfg.F+1 {
				for _, quorum := range subsets(responders, cfg.F+1) {
					maxHdr := int8(-1)
					rp := -1
					for _, i := range quorum {
						if s.Peers[i].Hdr > maxHdr {
							maxHdr = s.Peers[i].Hdr
							rp = i
						}
					}
					// The §4.6 correctness condition.
					if maxHdr < s.A {
						return Result{States: states, Violation: &Violation{
							Kind:  fmt.Sprintf("acked write %d not recoverable (quorum max seq %d)", s.A, maxHdr),
							Depth: len(cur.trace), Trace: append(cur.trace, fmt.Sprintf("recover%v", quorum)),
							State: s.key(),
						}}
					}
					// The recovery peer must actually hold the data its
					// sequence number advertises.
					if s.Peers[rp].Data < maxHdr {
						return Result{States: states, Violation: &Violation{
							Kind:  fmt.Sprintf("recovery peer p%d advertises seq %d but holds data only to %d", rp, maxHdr, s.Peers[rp].Data),
							Depth: len(cur.trace), Trace: append(cur.trace, fmt.Sprintf("recover%v", quorum)),
							State: s.key(),
						}}
					}
					c := s.clone()
					c.AppAlive = true
					c.W = maxHdr
					c.A = maxHdr // recovered data may be externalized now
					inQuorum := func(i int) bool {
						for _, q := range quorum {
							if q == i {
								return true
							}
						}
						return false
					}
					for i := range c.Peers {
						c.Peers[i].Queue = nil
						switch {
						case c.Peers[i].Alive && c.Peers[i].MrMap:
							if cfg.Mutation == MutNoRecoveryCatchup {
								// Unsafe shortcut: only the quorum's view
								// advances; lagging responders stay behind.
								if inQuorum(i) && i == rp {
									c.Peers[i].Data, c.Peers[i].Hdr = maxHdr, maxHdr
								}
							} else {
								// Catch up every responsive peer via the
								// staging + atomic switch.
								c.Peers[i].Data, c.Peers[i].Hdr = maxHdr, maxHdr
							}
						default:
							// Unresponsive members are replaced with fresh
							// caught-up peers before recovery returns.
							if c.Repl < int8(cfg.MaxReplacements) {
								c.Peers[i] = peerState{Alive: true, MrMap: true, Data: maxHdr, Hdr: maxHdr}
								c.Repl++
								c.Epoch++
							}
						}
					}
					push(cur, fmt.Sprintf("recover%v", quorum), c, &next)
				}
			}
		}

		queue = append(queue, next...)
	}
	return Result{States: states}
}

// subsets returns all k-element subsets of items.
func subsets(items []int, k int) [][]int {
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i < len(items); i++ {
			rec(i+1, append(cur, items[i]))
		}
	}
	rec(0, nil)
	return out
}
