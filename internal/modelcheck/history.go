// History-based durability/linearizability checking for live chaos runs.
// The BFS checkers in this package verify protocol state spaces offline;
// History verifies an *execution*: workload clients record every write they
// invoke and every acknowledgement they receive, and after each recovery
// the observed store state is checked against the acked prefix.
//
// The model is a register per key written by a single owner with strictly
// increasing versions — exactly the shape the chaos workload generates — so
// linearizability of the fsynced prefix collapses to a window invariant
// per key:
//
//	lastAcked(k) <= recovered(k) <= lastInvoked(k)
//
// Below the window an acknowledged write was lost (the durability violation
// SplitFT's protocol exists to prevent); above it the store surfaced a
// version that was never written (fabrication — corruption or misdirected
// replay). In-flight writes (invoked, never acked) may legally land or
// vanish with the crash, which is why the window has width.
//
// A verified observation re-baselines the key: the recovered version was
// externalized by the check itself, so a *later* recovery returning less is
// a monotonicity violation even if it still exceeds the original acked
// version. This gives monotone reads across successive recoveries for free.
package modelcheck

import (
	"fmt"
	"sort"
	"time"
)

// HistoryViolation is one failed window check.
type HistoryViolation struct {
	Kind      string        `json:"kind"` // "lost-acked-write" | "fabricated-write" | "ack-without-invoke"
	Key       string        `json:"key"`
	Recovered int64         `json:"recovered"` // 0 = key missing
	Acked     int64         `json:"acked"`
	Invoked   int64         `json:"invoked"`
	At        time.Duration `json:"at"`
}

func (v HistoryViolation) String() string {
	return fmt.Sprintf("%s: key %s recovered v%d, acked v%d, invoked v%d (t=%v)",
		v.Kind, v.Key, v.Recovered, v.Acked, v.Invoked, v.At)
}

// keyHist tracks one key's window. Versions are positive; 0 means "never".
type keyHist struct {
	acked   int64
	invoked int64
}

// History accumulates the per-key write windows of one workload execution.
// It lives on the host heap (not on any simulated node), so it survives
// every crash the run injects. Not concurrency-safe across OS threads; the
// simulator's cooperative scheduling is.
type History struct {
	keys       map[string]*keyHist
	violations []HistoryViolation
	// Invocations and Acks count recorded operations (reporting).
	Invocations int64
	Acks        int64
}

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{keys: make(map[string]*keyHist)}
}

func (h *History) key(k string) *keyHist {
	kh := h.keys[k]
	if kh == nil {
		kh = &keyHist{}
		h.keys[k] = kh
	}
	return kh
}

// Invoke records that the key's owner is about to submit version ver.
// Call it before the write leaves the client, so a write that commits but
// whose ack is lost still widens the window.
func (h *History) Invoke(key string, ver int64) {
	kh := h.key(key)
	if ver > kh.invoked {
		kh.invoked = ver
	}
	h.Invocations++
}

// Ack records that version ver of key was acknowledged durable. An ack for
// a version never invoked is a harness bug and recorded as a violation.
func (h *History) Ack(key string, ver int64, at time.Duration) {
	kh := h.key(key)
	if ver > kh.invoked {
		h.violations = append(h.violations, HistoryViolation{
			Kind: "ack-without-invoke", Key: key,
			Recovered: ver, Acked: kh.acked, Invoked: kh.invoked, At: at,
		})
		return
	}
	if ver > kh.acked {
		kh.acked = ver
	}
	h.Acks++
}

// Observe checks one recovered (or read-back) value against the key's
// window and re-baselines the acked floor to what was observed. found =
// false means the key was missing entirely (recovered version 0).
func (h *History) Observe(key string, ver int64, found bool, at time.Duration) *HistoryViolation {
	kh := h.key(key)
	if !found {
		ver = 0
	}
	var kind string
	switch {
	case ver < kh.acked:
		kind = "lost-acked-write"
	case ver > kh.invoked:
		kind = "fabricated-write"
	default:
		if ver > kh.acked {
			// The store externalized an in-flight write; later recoveries
			// must not regress below it.
			kh.acked = ver
		}
		return nil
	}
	v := HistoryViolation{Kind: kind, Key: key,
		Recovered: ver, Acked: kh.acked, Invoked: kh.invoked, At: at}
	h.violations = append(h.violations, v)
	return &v
}

// Keys returns every key ever invoked, sorted (deterministic iteration for
// recovery sweeps).
func (h *History) Keys() []string {
	out := make([]string, 0, len(h.keys))
	for k := range h.keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Violations returns every violation recorded so far, in record order.
func (h *History) Violations() []HistoryViolation { return h.violations }
