package modelcheck

import (
	"fmt"
	"testing"
)

func cfgWith(m Mutation) Config {
	cfg := DefaultConfig()
	cfg.MaxAppCrashes = 2 // some seeded bugs need two recoveries to surface
	cfg.Mutation = m
	return cfg
}

func TestCorrectProtocolHasNoViolations(t *testing.T) {
	res := Check(cfgWith(MutNone))
	if res.Violation != nil {
		t.Fatalf("correct protocol flagged: %s\ntrace: %v", res.Violation.Kind, res.Violation.Trace)
	}
	if res.States < 1000 {
		t.Fatalf("explored only %d states; bounds too tight to mean anything", res.States)
	}
	t.Logf("explored %d states, no violations", res.States)
}

func TestSeqBeforeDataIsCaught(t *testing.T) {
	res := Check(cfgWith(MutSeqBeforeData))
	if res.Violation == nil {
		t.Fatal("seq-before-data bug not caught")
	}
	t.Logf("caught after %d states: %s\ntrace: %v", res.States, res.Violation.Kind, res.Violation.Trace)
}

func TestSwapBeforeCatchupIsCaught(t *testing.T) {
	res := Check(cfgWith(MutSwapBeforeCatchup))
	if res.Violation == nil {
		t.Fatal("ap-map-before-catch-up bug not caught")
	}
	t.Logf("caught after %d states: %s\ntrace: %v", res.States, res.Violation.Kind, res.Violation.Trace)
}

func TestNoRecoveryCatchupIsCaught(t *testing.T) {
	res := Check(cfgWith(MutNoRecoveryCatchup))
	if res.Violation == nil {
		t.Fatal("no-recovery-catch-up bug not caught")
	}
	t.Logf("caught after %d states: %s\ntrace: %v", res.States, res.Violation.Kind, res.Violation.Trace)
}

func TestCorrectProtocolLargerBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	cfg := Config{F: 1, MaxWrites: 4, MaxPeerCrashes: 3, MaxAppCrashes: 2, MaxReplacements: 3}
	res := Check(cfg)
	if res.Violation != nil {
		t.Fatalf("violation at larger bounds: %s\ntrace: %v", res.Violation.Kind, res.Violation.Trace)
	}
	t.Logf("explored %d states, no violations", res.States)
}

func TestSubsets(t *testing.T) {
	got := subsets([]int{0, 1, 2}, 2)
	if len(got) != 3 {
		t.Fatalf("subsets = %v", got)
	}
	want := map[string]bool{"[0 1]": true, "[0 2]": true, "[1 2]": true}
	for _, s := range got {
		if !want[fmt.Sprint(s)] {
			t.Fatalf("unexpected subset %v", s)
		}
	}
}

func TestEagerAckRequiresMajority(t *testing.T) {
	s := &state{AppAlive: true, W: 2, Peers: []peerState{
		{Alive: true, MrMap: true, Data: 2, Hdr: 2},
		{Alive: true, MrMap: true, Data: 1, Hdr: 1},
		{Alive: true, MrMap: true},
	}}
	s.eagerAck(1)
	if s.A != 1 {
		t.Fatalf("A = %d, want 1 (write 2 is on one peer only)", s.A)
	}
	s.Peers[1].Hdr = 2
	s.Peers[1].Data = 2
	s.eagerAck(1)
	if s.A != 2 {
		t.Fatalf("A = %d, want 2", s.A)
	}
}
