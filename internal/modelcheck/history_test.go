package modelcheck

import "testing"

func TestHistoryWindowAccepts(t *testing.T) {
	h := NewHistory()
	h.Invoke("k", 1)
	h.Ack("k", 1, 0)
	h.Invoke("k", 2)
	h.Invoke("k", 3) // 2 and 3 in flight, never acked
	for ver, found := range map[int64]bool{1: true, 2: true, 3: true} {
		h2 := NewHistory()
		h2.Invoke("k", 1)
		h2.Ack("k", 1, 0)
		h2.Invoke("k", 2)
		h2.Invoke("k", 3)
		if v := h2.Observe("k", ver, found, 0); v != nil {
			t.Errorf("recovered v%d inside window [1,3] flagged: %v", ver, v)
		}
	}
	if got := len(h.Violations()); got != 0 {
		t.Fatalf("violations = %d, want 0", got)
	}
}

func TestHistoryLostAckedWrite(t *testing.T) {
	h := NewHistory()
	h.Invoke("k", 1)
	h.Ack("k", 1, 0)
	h.Invoke("k", 2)
	h.Ack("k", 2, 0)
	v := h.Observe("k", 1, true, 0)
	if v == nil || v.Kind != "lost-acked-write" {
		t.Fatalf("recovered v1 with v2 acked: violation = %v, want lost-acked-write", v)
	}
	// A missing key with acked writes is the same loss.
	h2 := NewHistory()
	h2.Invoke("k", 1)
	h2.Ack("k", 1, 0)
	if v := h2.Observe("k", 0, false, 0); v == nil || v.Kind != "lost-acked-write" {
		t.Fatalf("missing key with acked write: violation = %v, want lost-acked-write", v)
	}
	// But a missing key with only in-flight writes is legal.
	h3 := NewHistory()
	h3.Invoke("k", 1)
	if v := h3.Observe("k", 0, false, 0); v != nil {
		t.Fatalf("missing unacked key flagged: %v", v)
	}
}

func TestHistoryFabricatedWrite(t *testing.T) {
	h := NewHistory()
	h.Invoke("k", 2)
	if v := h.Observe("k", 5, true, 0); v == nil || v.Kind != "fabricated-write" {
		t.Fatalf("recovered v5 with only v2 invoked: violation = %v, want fabricated-write", v)
	}
}

// An observed in-flight write re-baselines the acked floor: a later
// recovery regressing below it violates monotone reads across recoveries.
func TestHistoryObservationRebaselines(t *testing.T) {
	h := NewHistory()
	h.Invoke("k", 1)
	h.Ack("k", 1, 0)
	h.Invoke("k", 2) // in flight at the crash
	if v := h.Observe("k", 2, true, 0); v != nil {
		t.Fatalf("first recovery at v2: %v", v)
	}
	if v := h.Observe("k", 1, true, 0); v == nil || v.Kind != "lost-acked-write" {
		t.Fatalf("second recovery regressed to v1 after observing v2: violation = %v", v)
	}
}

func TestHistoryAckWithoutInvoke(t *testing.T) {
	h := NewHistory()
	h.Ack("k", 1, 0)
	vs := h.Violations()
	if len(vs) != 1 || vs[0].Kind != "ack-without-invoke" {
		t.Fatalf("violations = %v, want one ack-without-invoke", vs)
	}
}

func TestHistoryKeysSorted(t *testing.T) {
	h := NewHistory()
	for _, k := range []string{"c", "a", "b"} {
		h.Invoke(k, 1)
	}
	keys := h.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("keys = %v, want sorted [a b c]", keys)
	}
}
