// Chain-append model: an explicit-state checker for the dfs extent plane's
// chain replication (internal/dfs/extent.go). One client pumps frames down
// a chain of storage nodes; each node stores a frame in its in-memory
// append log before forwarding it, and the ack rides back up only after
// the tail has stored. A node crash wipes its log; the client re-forms the
// remainder of the stream onto a fresh chain of survivors.
//
// The checked invariant is acked-frame durability: every frame whose ack
// reached the client is resident on at least one alive storage node, at
// every reachable state. With a crash budget below the chain length the
// correct protocol satisfies it — an ack means all chain members stored
// the frame, so wiping fewer than all of them leaves a holder. The seeded
// bugs break the store-before-ack ordering and must be flagged.
package modelcheck

import (
	"fmt"
	"sort"
)

// ChainMutation selects a seeded chain-protocol bug.
type ChainMutation int

const (
	// ChainMutNone checks the correct protocol: the ack is generated at
	// the tail, after every chain member has stored the frame.
	ChainMutNone ChainMutation = iota
	// ChainMutAckEarly has the head acknowledge a frame as soon as it
	// stores it, before the downstream members hold a copy — a head crash
	// then strands an acked frame with no surviving replica.
	ChainMutAckEarly
	// ChainMutAckOnSend has the client count a frame acknowledged the
	// moment it is sent, while the only copy is still in flight.
	ChainMutAckOnSend
)

func (m ChainMutation) String() string {
	switch m {
	case ChainMutNone:
		return "none"
	case ChainMutAckEarly:
		return "ack-at-head"
	default:
		return "ack-on-send"
	}
}

// ChainConfig bounds the chain exploration.
type ChainConfig struct {
	ChainLen   int // nodes per chain
	Spares     int // extra nodes available for re-forms
	MaxFrames  int // frames the client pumps
	MaxCrashes int // storage-node crash budget (keep < ChainLen)
	MaxReforms int
	Mutation   ChainMutation
}

// DefaultChainConfig explores a 3-node chain with one spare, two frames,
// and a two-crash budget — small enough to exhaust, large enough that a
// crash can land at every protocol stage.
func DefaultChainConfig() ChainConfig {
	return ChainConfig{ChainLen: 3, Spares: 1, MaxFrames: 2, MaxCrashes: 2, MaxReforms: 1}
}

// cnode is one storage node: alive or wiped, with a bitmask of the frames
// its in-memory append log holds.
type cnode struct {
	Alive  bool
	Stored uint16
}

// cmsg is one frame in flight toward position Pos of the current chain.
type cmsg struct {
	Frame int8
	Pos   int8
}

type cstate struct {
	Nodes   []cnode
	Chain   []int8 // node indices in forwarding order
	Msgs    []cmsg
	Sent    int8   // frames handed to the pump so far
	Acked   uint16 // frames whose ack reached the client
	Crashes int8
	Reforms int8
}

func (s *cstate) clone() *cstate {
	c := *s
	c.Nodes = append([]cnode(nil), s.Nodes...)
	c.Chain = append([]int8(nil), s.Chain...)
	c.Msgs = append([]cmsg(nil), s.Msgs...)
	return &c
}

// canon sorts the in-flight set so semantically equal states share a key.
func (s *cstate) canon() {
	sort.Slice(s.Msgs, func(i, j int) bool {
		if s.Msgs[i].Frame != s.Msgs[j].Frame {
			return s.Msgs[i].Frame < s.Msgs[j].Frame
		}
		return s.Msgs[i].Pos < s.Msgs[j].Pos
	})
}

func (s *cstate) key() string { return fmt.Sprintf("%+v", *s) }

// durabilityViolation returns the first acked frame no alive node holds,
// or -1. (In-flight copies don't count: once the ack returns, the client
// may discard its buffer, so durability must come from the nodes.)
func (s *cstate) durabilityViolation() int {
	for f := 0; f < 16; f++ {
		if s.Acked&(1<<f) == 0 {
			continue
		}
		held := false
		for _, n := range s.Nodes {
			if n.Alive && n.Stored&(1<<f) != 0 {
				held = true
				break
			}
		}
		if !held {
			return f
		}
	}
	return -1
}

// chainDead reports whether the current chain has a dead member (the
// condition under which the client's pump fails and a re-form fires).
func (s *cstate) chainDead() bool {
	for _, i := range s.Chain {
		if !s.Nodes[i].Alive {
			return true
		}
	}
	return false
}

// CheckChain explores the bounded chain-append state space breadth-first
// and returns the first durability violation, or nil.
func CheckChain(cfg ChainConfig) Result {
	n := cfg.ChainLen + cfg.Spares
	init := &cstate{Nodes: make([]cnode, n), Chain: make([]int8, cfg.ChainLen)}
	for i := range init.Nodes {
		init.Nodes[i].Alive = true
	}
	for i := range init.Chain {
		init.Chain[i] = int8(i)
	}
	visited := map[string]struct{}{init.key(): {}}
	queue := []cbfsNode{{st: init}}
	states := 0

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		states++
		s := cur.st

		// expand pushes a successor, checking the invariant first; a
		// violation aborts the search with the trace that produced it.
		var next []cbfsNode
		var found *Violation
		expand := func(action string, c *cstate) {
			if found != nil {
				return
			}
			c.canon()
			trace := append(append([]string(nil), cur.trace...), action)
			if f := c.durabilityViolation(); f >= 0 {
				found = &Violation{
					Kind:  fmt.Sprintf("acked frame %d held by no alive node", f),
					Depth: len(trace), Trace: trace, State: c.key(),
				}
				return
			}
			k := c.key()
			if _, seen := visited[k]; seen {
				return
			}
			visited[k] = struct{}{}
			next = append(next, cbfsNode{st: c, trace: trace})
		}

		// 1. Client pumps the next frame to the chain head.
		if s.Sent < int8(cfg.MaxFrames) {
			c := s.clone()
			f := c.Sent
			c.Sent++
			c.Msgs = append(c.Msgs, cmsg{Frame: f, Pos: 0})
			if cfg.Mutation == ChainMutAckOnSend {
				c.Acked |= 1 << f
			}
			expand(fmt.Sprintf("send(%d)", f), c)
		}

		// 2. Deliver an in-flight frame to its chain position. A dead
		//    receiver drops it (the sender's RPC times out; the client's
		//    re-form resends). The tail's store generates the ack —
		//    eagerly, the strongest adversary: if any schedule could have
		//    returned the sync, the checker demands durability then.
		for i, m := range s.Msgs {
			c := s.clone()
			c.Msgs = append(c.Msgs[:i], c.Msgs[i+1:]...)
			node := &c.Nodes[c.Chain[m.Pos]]
			if node.Alive {
				node.Stored |= 1 << m.Frame
				if int(m.Pos) == len(c.Chain)-1 || cfg.Mutation == ChainMutAckEarly && m.Pos == 0 {
					c.Acked |= 1 << m.Frame
				}
				if int(m.Pos) < len(c.Chain)-1 {
					c.Msgs = append(c.Msgs, cmsg{Frame: m.Frame, Pos: m.Pos + 1})
				}
			}
			expand(fmt.Sprintf("deliver(f%d,pos%d)", m.Frame, m.Pos), c)
		}

		// 3. Storage node crash: the in-memory append log is wiped.
		if s.Crashes < int8(cfg.MaxCrashes) {
			for i := range s.Nodes {
				if !s.Nodes[i].Alive {
					continue
				}
				c := s.clone()
				c.Nodes[i] = cnode{}
				c.Crashes++
				expand(fmt.Sprintf("crash(sn%d)", i), c)
			}
		}

		// 4. Re-form: the client detects the dead member, excludes it, and
		//    re-pumps every unacked frame onto a fresh all-alive chain.
		//    Acked frames stay where they are — the manifest still names
		//    the old chain's survivors (sealed at the acked watermark).
		if s.Reforms < int8(cfg.MaxReforms) && s.chainDead() {
			var alive []int8
			for i := range s.Nodes {
				if s.Nodes[i].Alive {
					alive = append(alive, int8(i))
				}
			}
			if len(alive) >= cfg.ChainLen {
				c := s.clone()
				c.Chain = alive[:cfg.ChainLen]
				c.Msgs = nil // in-flight frames died with the timeout
				c.Reforms++
				for f := int8(0); f < c.Sent; f++ {
					if c.Acked&(1<<f) == 0 {
						c.Msgs = append(c.Msgs, cmsg{Frame: f, Pos: 0})
					}
				}
				expand("reform", c)
			}
		}

		if found != nil {
			return Result{States: states, Violation: found}
		}
		queue = append(queue, next...)
	}
	return Result{States: states}
}

// cbfsNode pairs a chain state with the action trace that reached it.
type cbfsNode struct {
	st    *cstate
	trace []string
}
