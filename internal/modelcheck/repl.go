// Replication-policy model: an explicit-state checker for the ncl policy
// seam (internal/ncl/policy.go), generic over the policy spec. One
// application broadcasts writes to a peer group; each peer's deliveries are
// FIFO (the RDMA SQ guarantee holds per QP even for the unordered quorum
// policy — only cross-peer ordering differs), so a peer's replica is always
// a prefix of the write stream. The policy fixes the group shape and the
// two numbers that matter:
//
//   - AckNeed: how many peers must store a write before it is acknowledged
//     (mirror/quorum: F+1 of 2F+1; ec: all K+M — a stripe with any cell
//     unwritten is not yet reconstructible from arbitrary K survivors).
//   - What recovery needs: mirror/quorum read an adversarially chosen
//     MinAlive-subset of the live peers and take the longest prefix; ec
//     needs K live cells of a stripe to reconstruct it.
//
// The checked invariant is acked-write durability under an eager-recovery
// adversary: at every reachable state, every acknowledged write must be
// recoverable by the worst read quorum the policy permits. Acknowledgement
// is eager (latched the instant enough peers hold the write) — if any
// schedule could have externalized the ack, the checker demands durability
// from then on.
//
// Two seeded bugs validate the checker: ReplMutLostStripe acks an ec write
// one cell early, ReplMutSplitBrainAck acks a quorum write at F (a
// minority). Both must produce counterexample traces.
package modelcheck

import (
	"fmt"

	"splitft/internal/ncl"
)

// ReplMutation selects a seeded replication-policy bug.
type ReplMutation int

const (
	// ReplMutNone checks the correct ack rule for the given policy.
	ReplMutNone ReplMutation = iota
	// ReplMutLostStripe acknowledges an ec write when K+M-1 cells are
	// stored. The missing cell means M peer failures can leave only K-1
	// cells of an acked stripe — reconstruction is impossible.
	ReplMutLostStripe
	// ReplMutSplitBrainAck acknowledges a mirror/quorum write at F holders
	// (a minority). An F+1 read quorum drawn from the other F+1 peers then
	// misses the write entirely.
	ReplMutSplitBrainAck
)

func (m ReplMutation) String() string {
	switch m {
	case ReplMutNone:
		return "none"
	case ReplMutLostStripe:
		return "lost-stripe-ack"
	default:
		return "split-brain-ack"
	}
}

// ReplConfig bounds the exploration of one policy.
type ReplConfig struct {
	MaxWrites  int
	MaxCrashes int // peer-crash budget; Tolerates() for the correct protocol
	Mutation   ReplMutation
}

// DefaultReplConfig explores three writes with the policy's full failure
// budget — the exact boundary the ack rule is designed for.
func DefaultReplConfig(spec ncl.PolicySpec) ReplConfig {
	return ReplConfig{MaxWrites: 3, MaxCrashes: spec.Tolerates()}
}

// rpeer is one log peer. Deliveries are FIFO per peer, so the replica is
// fully described by prefix lengths: writes [0, Stored) are resident,
// writes [Stored, Sent) are in flight toward it.
type rpeer struct {
	Alive  bool
	Stored int8
	Sent   int8
}

type rstate struct {
	Peers   []rpeer
	Writes  int8 // writes the application has issued
	Acked   int8 // acknowledged prefix (latched, never shrinks)
	Crashes int8
}

func (s *rstate) clone() *rstate {
	c := *s
	c.Peers = append([]rpeer(nil), s.Peers...)
	return &c
}

func (s *rstate) key() string { return fmt.Sprintf("%+v", *s) }

// ackRule returns how many stored copies acknowledge a write under the
// (possibly mutated) policy.
func ackRule(spec ncl.PolicySpec, mut ReplMutation) int {
	switch spec.Kind {
	case ncl.PolicyEC:
		if mut == ReplMutLostStripe {
			return spec.K + spec.M - 1
		}
		return spec.K + spec.M
	default:
		if mut == ReplMutSplitBrainAck {
			return spec.F
		}
		return spec.F + 1
	}
}

// latchAcks advances the acked prefix: write w is acknowledged once ackNeed
// live peers hold it. Acks latch — a later crash cannot un-acknowledge.
func (s *rstate) latchAcks(ackNeed int) {
	for s.Acked < s.Writes {
		holders := 0
		for _, pr := range s.Peers {
			if pr.Alive && pr.Stored > s.Acked {
				holders++
			}
		}
		if holders < ackNeed {
			break
		}
		s.Acked++
	}
}

// durabilityViolation returns the first acked write the policy's worst-case
// recovery cannot reproduce, or -1.
//
// mirror/quorum: recovery reads any MinAlive = F+1 subset of the live peers
// and adopts the longest prefix among them. The adversary picks the subset,
// so write w is lost iff F+1 live peers all have Stored <= w — or fewer
// than F+1 peers are alive at all, in which case no read quorum exists and
// the acked write is gone for good (dead peers' regions are wiped).
//
// ec: reconstruction of write w's stripe needs K of its cells on live
// peers; fewer than K live holders is loss regardless of read-set choice.
func (s *rstate) durabilityViolation(spec ncl.PolicySpec) int {
	for w := int8(0); w < s.Acked; w++ {
		holders, lacking := 0, 0
		for _, pr := range s.Peers {
			if !pr.Alive {
				continue
			}
			if pr.Stored > w {
				holders++
			} else {
				lacking++
			}
		}
		if spec.Kind == ncl.PolicyEC {
			if holders < spec.K {
				return int(w)
			}
		} else if holders+lacking < spec.F+1 || lacking >= spec.F+1 {
			return int(w)
		}
	}
	return -1
}

// CheckReplication explores the bounded write/crash state space of one
// replication policy breadth-first and returns the first acked-write
// durability violation, or nil.
func CheckReplication(spec ncl.PolicySpec, cfg ReplConfig) Result {
	ackNeed := ackRule(spec, cfg.Mutation)
	init := &rstate{Peers: make([]rpeer, spec.Slots())}
	for i := range init.Peers {
		init.Peers[i].Alive = true
	}
	visited := map[string]struct{}{init.key(): {}}
	queue := []rbfsNode{{st: init}}
	states := 0

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		states++
		s := cur.st

		var next []rbfsNode
		var found *Violation
		expand := func(action string, c *rstate) {
			if found != nil {
				return
			}
			c.latchAcks(ackNeed)
			trace := append(append([]string(nil), cur.trace...), action)
			if w := c.durabilityViolation(spec); w >= 0 {
				found = &Violation{
					Kind: fmt.Sprintf("%s: acked write %d unrecoverable under the worst %s read set",
						spec, w, spec),
					Depth: len(trace), Trace: trace, State: c.key(),
				}
				return
			}
			k := c.key()
			if _, seen := visited[k]; seen {
				return
			}
			visited[k] = struct{}{}
			next = append(next, rbfsNode{st: c, trace: trace})
		}

		// 1. The application issues the next write: one WR enqueued per
		//    live member (dead members get nothing — their QP is torn down).
		if s.Writes < int8(cfg.MaxWrites) {
			c := s.clone()
			c.Writes++
			for i := range c.Peers {
				if c.Peers[i].Alive {
					c.Peers[i].Sent = c.Writes
				}
			}
			expand(fmt.Sprintf("write(%d)", s.Writes), c)
		}

		// 2. A peer's queue head lands: its stored prefix extends by one.
		for i, pr := range s.Peers {
			if !pr.Alive || pr.Stored >= pr.Sent {
				continue
			}
			c := s.clone()
			c.Peers[i].Stored++
			expand(fmt.Sprintf("deliver(w%d,p%d)", pr.Stored, i), c)
		}

		// 3. A peer crashes: its lent region is gone, in-flight WRs die
		//    with the QP.
		if s.Crashes < int8(cfg.MaxCrashes) {
			for i := range s.Peers {
				if !s.Peers[i].Alive {
					continue
				}
				c := s.clone()
				c.Peers[i] = rpeer{}
				c.Crashes++
				expand(fmt.Sprintf("crash(p%d)", i), c)
			}
		}

		if found != nil {
			return Result{States: states, Violation: found}
		}
		queue = append(queue, next...)
	}
	return Result{States: states}
}

// rbfsNode pairs a replication state with the action trace that reached it.
type rbfsNode struct {
	st    *rstate
	trace []string
}
