package modelcheck

import "testing"

func chainCfgWith(m ChainMutation) ChainConfig {
	cfg := DefaultChainConfig()
	cfg.Mutation = m
	return cfg
}

func TestChainCorrectProtocolHasNoViolations(t *testing.T) {
	res := CheckChain(chainCfgWith(ChainMutNone))
	if res.Violation != nil {
		t.Fatalf("correct chain protocol flagged: %s\ntrace: %v", res.Violation.Kind, res.Violation.Trace)
	}
	if res.States < 500 {
		t.Fatalf("explored only %d states; bounds too tight to mean anything", res.States)
	}
	t.Logf("explored %d states, no violations", res.States)
}

func TestChainAckEarlyIsCaught(t *testing.T) {
	res := CheckChain(chainCfgWith(ChainMutAckEarly))
	if res.Violation == nil {
		t.Fatal("ack-at-head bug not caught")
	}
	// The minimal counterexample: the head stores and acks frame 0, then
	// crashes before anyone downstream holds it.
	t.Logf("caught after %d states at depth %d: %s\ntrace: %v",
		res.States, res.Violation.Depth, res.Violation.Kind, res.Violation.Trace)
}

func TestChainAckOnSendIsCaught(t *testing.T) {
	res := CheckChain(chainCfgWith(ChainMutAckOnSend))
	if res.Violation == nil {
		t.Fatal("ack-on-send bug not caught")
	}
	t.Logf("caught after %d states at depth %d: %s\ntrace: %v",
		res.States, res.Violation.Depth, res.Violation.Kind, res.Violation.Trace)
}

// A crash budget that can wipe the whole chain before a re-form completes
// breaks durability by design — the checker must see that too, or the
// "correct protocol passes" result would be vacuous.
func TestChainFullWipeIsDetected(t *testing.T) {
	cfg := DefaultChainConfig()
	cfg.MaxCrashes = cfg.ChainLen
	res := CheckChain(cfg)
	if res.Violation == nil {
		t.Fatal("wiping every chain member should strand acked frames")
	}
	t.Logf("caught after %d states: %s\ntrace: %v", res.States, res.Violation.Kind, res.Violation.Trace)
}

func TestChainCorrectProtocolLargerBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	cfg := ChainConfig{ChainLen: 3, Spares: 2, MaxFrames: 3, MaxCrashes: 2, MaxReforms: 2}
	res := CheckChain(cfg)
	if res.Violation != nil {
		t.Fatalf("violation at larger bounds: %s\ntrace: %v", res.Violation.Kind, res.Violation.Trace)
	}
	t.Logf("explored %d states, no violations", res.States)
}
