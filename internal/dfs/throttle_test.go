package dfs

import (
	"testing"
	"time"

	"splitft/internal/simnet"
)

// Writeback throttling: fsync-less buffered writes pay a growing penalty as
// dirty data accumulates (the balance_dirty_pages effect that separates
// weak-mode log writes from SplitFT's, which bypass the dfs entirely).
func TestWritebackThrottleGrowsWithDirtyData(t *testing.T) {
	s := simnet.New(1)
	params := DefaultParams()
	params.WritebackInterval = time.Hour // keep dirty data around
	params.DirtyHighWater = 64 << 20
	cluster := NewCluster(s, "c", params)
	node := s.NewNode("n")
	client := cluster.Mount(node)
	var clean, dirtyish time.Duration
	node.Go("t", func(p *simnet.Proc) {
		f, _ := client.Create(p, "/log")
		buf := make([]byte, 128)
		start := p.Now()
		f.Write(p, buf)
		clean = p.Now() - start

		// Pile up ~48MB dirty (75% of the high water mark).
		f.Write(p, make([]byte, 48<<20))
		start = p.Now()
		f.Write(p, buf)
		dirtyish = p.Now() - start
		s.Stop()
	})
	if err := s.RunUntil(time.Hour); err != nil {
		t.Fatal(err)
	}
	if dirtyish <= clean {
		t.Fatalf("no throttle: clean=%v dirty=%v", clean, dirtyish)
	}
	if dirtyish-clean < time.Microsecond {
		t.Fatalf("throttle too small to matter: %v", dirtyish-clean)
	}
	if dirtyish-clean > params.WritebackThrottleMax {
		t.Fatalf("throttle exceeds configured max: %v", dirtyish-clean)
	}
}

// Syncing drains dirty data, so the throttle disappears — strong-mode
// writers pay the fsync instead.
func TestThrottleClearsAfterSync(t *testing.T) {
	s := simnet.New(2)
	cluster := NewCluster(s, "c", DefaultParams())
	node := s.NewNode("n")
	client := cluster.Mount(node)
	node.Go("t", func(p *simnet.Proc) {
		f, _ := client.Create(p, "/log")
		f.Write(p, make([]byte, 32<<20))
		f.Sync(p)
		buf := make([]byte, 128)
		start := p.Now()
		f.Write(p, buf)
		lat := p.Now() - start
		if lat > 2*time.Microsecond {
			t.Errorf("post-sync write still throttled: %v", lat)
		}
		s.Stop()
	})
	if err := s.RunUntil(time.Hour); err != nil {
		t.Fatal(err)
	}
}

// Throttling can be disabled entirely.
func TestThrottleDisabled(t *testing.T) {
	s := simnet.New(3)
	params := DefaultParams()
	params.WritebackThrottleMax = 0
	params.WritebackInterval = time.Hour
	cluster := NewCluster(s, "c", params)
	node := s.NewNode("n")
	client := cluster.Mount(node)
	node.Go("t", func(p *simnet.Proc) {
		f, _ := client.Create(p, "/log")
		f.Write(p, make([]byte, 48<<20))
		start := p.Now()
		f.Write(p, make([]byte, 128))
		if lat := p.Now() - start; lat > 2*time.Microsecond {
			t.Errorf("throttle applied despite being disabled: %v", lat)
		}
		s.Stop()
	})
	if err := s.RunUntil(time.Hour); err != nil {
		t.Fatal(err)
	}
}
