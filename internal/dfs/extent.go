// The extent plane: ChubaoFS-style fixed-size, append-only extents stored
// on a set of storage nodes, replicated by chain replication (client ->
// head -> mid -> tail, ack riding the nested RPC returns back up). Each
// storage node keeps its extent replicas in an in-memory append log
// (DXRAM-style backup logging) and drains them to its local disk
// asynchronously, off the ack path — an acked append is resident in
// ChainLength memories, which is the durability the flat path buys with
// its 3-replica sync round trip, minus the disk from the critical path.
//
// Cost model: three per-node virtual-time pipes (ingress link, egress
// link, disk drain) plus a per-frame fixed cost. A frame occupies the
// sender's egress link and the receiver's ingress link for size/
// LinkBandwidth each, so a windowed stream of frames pipelines at
// per-link bandwidth; the disk pipe is reserved but never slept on.

package dfs

import (
	"errors"
	"fmt"
	"time"

	"splitft/internal/simnet"
	"splitft/internal/wire"
)

// Extent-plane message codes (range 0x50-0x5f; see internal/wire).
const (
	codeExtAppend     wire.Code = 0x50
	codeExtAppendResp wire.Code = 0x51
	codeExtRead       wire.Code = 0x52
	codeExtReadResp   wire.Code = 0x53
)

// extAppendReq replicates one frame down the chain: Rest names the chain
// members after the receiving node, in forwarding order.
type extAppendReq struct {
	Ext  uint64
	Off  int64
	Data []byte
	Rest []string
}

func (r extAppendReq) MarshalWire() wire.Msg {
	return wire.Msg{Code: codeExtAppend, U: [4]uint64{r.Ext, uint64(r.Off)}, B: r.Data, Strs: r.Rest}
}

type extAppendResp struct{}

func (*extAppendResp) UnmarshalWire(wire.Msg) error { return nil }

// extReadReq fetches [Off, Off+N) of one extent replica.
type extReadReq struct {
	Ext uint64
	Off int64
	N   int64
}

func (r extReadReq) MarshalWire() wire.Msg {
	return wire.Msg{Code: codeExtRead, U: [4]uint64{r.Ext, uint64(r.Off), uint64(r.N)}}
}

type extReadResp struct{ Data []byte }

func (r *extReadResp) UnmarshalWire(m wire.Msg) error {
	r.Data = m.B
	return nil
}

// ChainNodeError blames a specific chain member for a failed append: a
// node whose forward to the next hop times out wraps the failure with the
// next hop's address, so the client learns which node to exclude when it
// re-forms the chain. It crosses the simulated wire intact (handler errors
// are returned in-process).
type ChainNodeError struct {
	Addr string
	Err  error
}

func (e *ChainNodeError) Error() string {
	return fmt.Sprintf("dfs: chain node %s failed: %v", e.Addr, e.Err)
}

func (e *ChainNodeError) Unwrap() error { return e.Err }

// chainHopTimeout is the RPC timeout for an append to a chain member with
// rest downstream nodes after it. Each hop's budget exceeds its callee's by
// one timeout unit, so when a deep member dies, the hop calling it times
// out FIRST and its ChainNodeError rides the still-open upstream calls back
// to the client. With a flat timeout the client's own call — started
// earliest — would expire first, and the client would blame the head for
// every failure anywhere in the chain.
func chainHopTimeout(rest int) time.Duration {
	return time.Duration(rest+1) * simnet.DefaultRPCTimeout
}

// extentStore is the cluster-side extent plane: the storage nodes and, for
// the standalone (controller-less) configuration, the local ID counter.
type extentStore struct {
	c      *Cluster
	nodes  []*extNode
	byAddr map[string]*extNode

	// metaFactory builds a per-mount metadata client (controller-backed in
	// the full stack); nil falls back to localExtentMeta.
	metaFactory func(*simnet.Node) ExtentMeta
	// nextLocal feeds localExtentMeta's ID allocation.
	nextLocal uint64
	// sealedLocal records localExtentMeta seals (id -> committed length).
	sealedLocal map[uint64]int64
}

// extNode is one storage node's extent service: replicas in an in-memory
// append log, three virtual-time pipes for the cost model.
type extNode struct {
	store *extentStore
	node  *simnet.Node
	addr  string

	extents map[uint64]*extReplica

	ingressBusy time.Duration
	egressBusy  time.Duration
	diskBusy    time.Duration

	// BytesStored counts bytes this node appended (all chain positions).
	BytesStored int64
}

type extReplica struct {
	data []byte
}

// EnableExtents attaches the extent plane to the cluster, registering one
// append/read service per storage node. A node crash wipes its in-memory
// replicas (the append log is memory-resident; the chain's other members
// keep the data) and leaves the node unreachable until restarted.
func (c *Cluster) EnableExtents(nodes []*simnet.Node) {
	es := &extentStore{c: c, byAddr: make(map[string]*extNode), sealedLocal: make(map[uint64]int64)}
	for _, n := range nodes {
		en := &extNode{store: es, node: n, addr: n.Name(), extents: make(map[uint64]*extReplica)}
		es.nodes = append(es.nodes, en)
		es.byAddr[en.addr] = en
		c.sim.Net().Register(en.addr, n, en.handle)
		n.OnCrash(func() { en.extents = make(map[uint64]*extReplica) })
	}
	c.extents = es
}

// ExtentsEnabled reports whether the extent plane is attached.
func (c *Cluster) ExtentsEnabled() bool { return c.extents != nil }

// SetExtentMetaFactory installs the extent-metadata client constructor
// (the harness wires a sessionless controller client here). Mounts build
// their metadata client lazily on first extent use; without a factory they
// use the cluster-local allocator, which models only the metadata cost.
func (c *Cluster) SetExtentMetaFactory(f func(*simnet.Node) ExtentMeta) {
	c.extents.metaFactory = f
}

// StorageNodeNames returns the extent plane's node addresses in chain-pick
// order (nil when the plane is disabled).
func (c *Cluster) StorageNodeNames() []string {
	if c.extents == nil {
		return nil
	}
	out := make([]string, len(c.extents.nodes))
	for i, en := range c.extents.nodes {
		out[i] = en.addr
	}
	return out
}

// reservePipe reserves n bytes on a virtual-time pipe and returns the
// reservation's completion time (the shared-pipe pattern of
// Cluster.reserve, one pipe per link).
func reservePipe(s *simnet.Sim, busy *time.Duration, n int64, bw float64) time.Duration {
	start := *busy
	if now := s.Now(); start < now {
		start = now
	}
	*busy = start + time.Duration(float64(n)/bw*float64(time.Second))
	return *busy
}

// sleepUntil sleeps p to a reservation's completion time.
func sleepUntil(p *simnet.Proc, at time.Duration) {
	if d := at - p.Now(); d > 0 {
		p.Sleep(d)
	}
}

func (en *extNode) handle(p *simnet.Proc, m simnet.Msg) (simnet.Msg, error) {
	switch m.Code {
	case codeExtAppend:
		return en.handleAppend(p, m)
	case codeExtRead:
		return en.handleRead(p, m)
	}
	return simnet.Msg{}, fmt.Errorf("dfs: extent node %s: unknown code %#x", en.addr, uint16(m.Code))
}

// handleAppend stores one frame and forwards it down the rest of the
// chain; the ack returns when every downstream member has stored it.
func (en *extNode) handleAppend(p *simnet.Proc, m simnet.Msg) (simnet.Msg, error) {
	pm := en.store.c.params
	ext, off, data, rest := m.U[0], int64(m.U[1]), m.B, m.Strs
	// The frame occupies this node's ingress link, then pays the fixed
	// append cost (log-index update, memory commit).
	sleepUntil(p, reservePipe(en.store.c.sim, &en.ingressBusy, int64(len(data)), pm.LinkBandwidth))
	p.Sleep(pm.AppendFixed)
	rep := en.extents[ext]
	if rep == nil {
		rep = &extReplica{}
		en.extents[ext] = rep
	}
	end := off + int64(len(data))
	rep.data = grow(rep.data, end)
	copy(rep.data[off:end], data)
	en.BytesStored += int64(len(data))
	// Drain to local disk asynchronously: the reservation advances the disk
	// pipe (sustained load eventually backs up into ingress stalls in a real
	// system; the model keeps it off the ack path, DXRAM-style).
	reservePipe(en.store.c.sim, &en.diskBusy, int64(len(data)), pm.NodeWriteBandwidth)
	if len(rest) > 0 {
		next := rest[0]
		sleepUntil(p, reservePipe(en.store.c.sim, &en.egressBusy, int64(len(data)), pm.LinkBandwidth))
		_, err := wire.CallTimeout[extAppendResp](p, en.store.c.sim.Net(), en.node, next,
			extAppendReq{Ext: ext, Off: off, Data: data, Rest: rest[1:]},
			chainHopTimeout(len(rest[1:])))
		if err != nil {
			var cne *ChainNodeError
			if errors.As(err, &cne) {
				return simnet.Msg{}, err // already blamed downstream
			}
			return simnet.Msg{}, &ChainNodeError{Addr: next, Err: err}
		}
	}
	return simnet.Msg{Code: codeExtAppendResp}, nil
}

// handleRead serves a replica range from the node's memory log over its
// egress link.
func (en *extNode) handleRead(p *simnet.Proc, m simnet.Msg) (simnet.Msg, error) {
	pm := en.store.c.params
	ext, off, n := m.U[0], int64(m.U[1]), int64(m.U[2])
	rep := en.extents[ext]
	if rep == nil || off+n > int64(len(rep.data)) {
		return simnet.Msg{}, fmt.Errorf("dfs: extent node %s: extent %d range [%d,%d) not resident",
			en.addr, ext, off, off+n)
	}
	sleepUntil(p, reservePipe(en.store.c.sim, &en.egressBusy, n, pm.LinkBandwidth))
	p.Sleep(pm.AppendFixed)
	out := make([]byte, n)
	copy(out, rep.data[off:off+n])
	en.store.c.BytesRead += n
	return simnet.Msg{Code: codeExtReadResp, B: out}, nil
}

// reconstruct rebuilds a manifest's logical content from whichever
// replicas still hold each segment — a zero-cost test/debug helper
// mirroring DurableBytes on the flat path.
func (es *extentStore) reconstruct(man *extManifest) []byte {
	out := make([]byte, man.size)
	for _, seg := range man.segs {
		n := seg.logEnd - seg.logStart
		for _, addr := range seg.nodes {
			en := es.byAddr[addr]
			if en == nil {
				continue
			}
			rep := en.extents[seg.ext]
			if rep == nil || seg.extOff+n > int64(len(rep.data)) {
				continue
			}
			copy(out[seg.logStart:seg.logEnd], rep.data[seg.extOff:seg.extOff+n])
			break
		}
	}
	return out
}
