package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"splitft/internal/simnet"
)

type fixture struct {
	sim     *simnet.Sim
	cluster *Cluster
	node    *simnet.Node
	client  *Client
}

func newFixture(seed int64) *fixture {
	s := simnet.New(seed)
	c := NewCluster(s, "ceph", DefaultParams())
	n := s.NewNode("appserver")
	return &fixture{sim: s, cluster: c, node: n, client: c.Mount(n)}
}

func run(t *testing.T, s *simnet.Sim) {
	t.Helper()
	if err := s.RunUntil(time.Hour); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestWriteSyncReadBack(t *testing.T) {
	fx := newFixture(1)
	fx.node.Go("test", func(p *simnet.Proc) {
		f, err := fx.client.Create(p, "/data/wal-1")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if _, err := f.Write(p, []byte("hello ")); err != nil {
			t.Errorf("write: %v", err)
		}
		if _, err := f.Write(p, []byte("world")); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := f.Sync(p); err != nil {
			t.Errorf("sync: %v", err)
		}
		buf := make([]byte, 11)
		n, err := f.Pread(p, buf, 0)
		if err != nil || n != 11 || string(buf) != "hello world" {
			t.Errorf("pread = %q, %d, %v", buf[:n], n, err)
		}
		got, ok := fx.cluster.DurableBytes("/data/wal-1")
		if !ok || string(got) != "hello world" {
			t.Errorf("durable = %q, %v", got, ok)
		}
		fx.sim.Stop()
	})
	run(t, fx.sim)
}

func TestUnsyncedDataLostOnCrash(t *testing.T) {
	fx := newFixture(1)
	fx.sim.Go("test", func(p *simnet.Proc) {
		done := make(chan struct{}, 1)
		fx.node.Go("app", func(ap *simnet.Proc) {
			f, _ := fx.client.Create(ap, "/log")
			f.Write(ap, []byte("durable|"))
			f.Sync(ap)
			f.Write(ap, []byte("volatile"))
			done <- struct{}{}
			ap.Sleep(time.Hour)
		})
		p.Sleep(100 * time.Millisecond) // before writeback interval fires
		<-done
		fx.node.Crash()
		got, ok := fx.cluster.DurableBytes("/log")
		if !ok || string(got) != "durable|" {
			t.Errorf("durable after crash = %q (ok=%v), want only synced prefix", got, ok)
		}
		fx.sim.Stop()
	})
	run(t, fx.sim)
}

func TestBackgroundWritebackEventuallyDurable(t *testing.T) {
	fx := newFixture(1)
	fx.node.Go("test", func(p *simnet.Proc) {
		f, _ := fx.client.Create(p, "/log")
		f.Write(p, []byte("lazily"))
		// No sync: wait past the writeback interval.
		p.Sleep(2 * DefaultParams().WritebackInterval)
		got, _ := fx.cluster.DurableBytes("/log")
		if string(got) != "lazily" {
			t.Errorf("durable after writeback = %q", got)
		}
		fx.sim.Stop()
	})
	run(t, fx.sim)
}

func TestSyncCostModel(t *testing.T) {
	fx := newFixture(1)
	pm := DefaultParams()
	fx.node.Go("test", func(p *simnet.Proc) {
		f, _ := fx.client.Create(p, "/f")
		// Small sync write: dominated by the fixed cost (~2.3ms).
		f.Write(p, make([]byte, 512))
		start := p.Now()
		f.Sync(p)
		small := p.Now() - start
		if small < pm.SyncFixed || small > pm.SyncFixed+time.Millisecond {
			t.Errorf("512B sync = %v, want ~%v", small, pm.SyncFixed)
		}
		// 64MB sync write: dominated by bandwidth (~128ms @ 500MB/s).
		f.Write(p, make([]byte, 64<<20))
		start = p.Now()
		f.Sync(p)
		large := p.Now() - start
		if large < 100*time.Millisecond || large > 200*time.Millisecond {
			t.Errorf("64MB sync = %v, want ~130ms", large)
		}
		fx.sim.Stop()
	})
	run(t, fx.sim)
}

// Fig 1(d): sequential sync-write throughput spans roughly three orders of
// magnitude between 512B and 64MB IOs.
func TestFig1dThroughputShape(t *testing.T) {
	tput := func(ioSize int64) float64 {
		fx := newFixture(1)
		var mbps float64
		fx.node.Go("bench", func(p *simnet.Proc) {
			f, _ := fx.client.Create(p, "/seq")
			total := int64(0)
			target := int64(16 << 20)
			if ioSize >= 16<<20 {
				target = 2 * ioSize
			}
			buf := make([]byte, ioSize)
			start := p.Now()
			for total < target {
				f.Write(p, buf)
				f.Sync(p)
				total += ioSize
			}
			secs := (p.Now() - start).Seconds()
			mbps = float64(total) / 1e6 / secs
			fx.sim.Stop()
		})
		if err := fx.sim.RunUntil(24 * time.Hour); err != nil {
			t.Fatal(err)
		}
		return mbps
	}
	small := tput(512)
	large := tput(64 << 20)
	ratio := large / small
	if ratio < 500 || ratio > 5000 {
		t.Errorf("64MB/512B throughput ratio = %.0f (small=%.2f MB/s large=%.0f MB/s), want ~3 orders",
			ratio, small, large)
	}
}

func TestMetadataOps(t *testing.T) {
	fx := newFixture(1)
	fx.node.Go("test", func(p *simnet.Proc) {
		if _, err := fx.client.Open(p, "/missing"); !errors.Is(err, ErrNotExist) {
			t.Errorf("open missing: %v", err)
		}
		f, _ := fx.client.Create(p, "/a")
		f.Write(p, []byte("x"))
		f.Sync(p)
		f.Close(p)
		if err := fx.client.Rename(p, "/a", "/b"); err != nil {
			t.Errorf("rename: %v", err)
		}
		if fx.client.Exists("/a") || !fx.client.Exists("/b") {
			t.Error("rename did not move the file")
		}
		if got := fx.client.List("/"); fmt.Sprint(got) != "[/b]" {
			t.Errorf("list = %v", got)
		}
		if err := fx.client.Unlink(p, "/b"); err != nil {
			t.Errorf("unlink: %v", err)
		}
		if fx.client.Exists("/b") {
			t.Error("unlink left the file")
		}
		if err := fx.client.Unlink(p, "/b"); !errors.Is(err, ErrNotExist) {
			t.Errorf("double unlink: %v", err)
		}
		fx.sim.Stop()
	})
	run(t, fx.sim)
}

func TestReopenSeesDurableOnly(t *testing.T) {
	fx := newFixture(1)
	fx.sim.Go("test", func(p *simnet.Proc) {
		fx.node.Go("writer", func(wp *simnet.Proc) {
			f, _ := fx.client.Create(wp, "/f")
			f.Write(wp, []byte("synced"))
			f.Sync(wp)
			f.Write(wp, []byte("+dirty"))
		})
		p.Sleep(50 * time.Millisecond)
		fx.node.Crash()
		p.Sleep(time.Millisecond)
		fx.node.Restart()
		cl2 := fx.cluster.Mount(fx.node)
		fx.node.Go("reader", func(rp *simnet.Proc) {
			f, err := cl2.Open(rp, "/f")
			if err != nil {
				t.Errorf("reopen: %v", err)
				return
			}
			buf := make([]byte, 64)
			n, _ := f.Pread(rp, buf, 0)
			if string(buf[:n]) != "synced" {
				t.Errorf("reopened content = %q", buf[:n])
			}
			fx.sim.Stop()
		})
	})
	run(t, fx.sim)
}

func TestDirectIOSlowerThanCached(t *testing.T) {
	fx := newFixture(1)
	fx.node.Go("test", func(p *simnet.Proc) {
		f, _ := fx.client.Create(p, "/f")
		f.Write(p, make([]byte, 8<<20))
		f.Sync(p)
		f.Close(p)

		read := func(direct bool) time.Duration {
			fx.client.DirectIO = direct
			h, _ := fx.client.Open(p, "/f")
			defer h.Close(p)
			buf := make([]byte, 4096)
			start := p.Now()
			for off := int64(0); off < 8<<20; off += 4096 {
				h.Pread(p, buf, off)
			}
			return p.Now() - start
		}
		direct := read(true)
		// New mount so the cache is cold but readahead applies.
		cached := read(false)
		if cached >= direct {
			t.Errorf("cached read (%v) not faster than direct IO (%v)", cached, direct)
		}
		if direct < 100*cached/10 { // direct should be much slower (per-read fixed cost)
			t.Logf("direct=%v cached=%v", direct, cached)
		}
		fx.sim.Stop()
	})
	run(t, fx.sim)
}

func TestReadaheadAmortizesSequentialReads(t *testing.T) {
	s := simnet.New(1)
	params := DefaultParams()
	params.CacheCapacity = 8 << 20 // small cache so eviction is cheap to force
	cluster := NewCluster(s, "ceph", params)
	node := s.NewNode("appserver")
	fx := &fixture{sim: s, cluster: cluster, node: node, client: cluster.Mount(node)}
	var seqLat, randLat time.Duration
	fx.node.Go("test", func(p *simnet.Proc) {
		f, _ := fx.client.Create(p, "/f")
		f.Write(p, make([]byte, 16<<20))
		f.Sync(p)
		f.Close(p)
		// Evict everything by filling the cache with another file.
		g, _ := fx.client.Create(p, "/fill")
		g.Write(p, make([]byte, 12<<20))
		g.Sync(p)
		g.Close(p)

		h, _ := fx.client.Open(p, "/f")
		buf := make([]byte, 512)
		start := p.Now()
		reads := 0
		for off := int64(0); off < 8<<20; off += 512 {
			h.Read(p, buf)
			reads++
		}
		seqLat = (p.Now() - start) / time.Duration(reads)

		// Random-ish strided reads defeat readahead.
		start = p.Now()
		reads = 0
		for off := int64(8 << 20); off < 16<<20; off += 1 << 20 {
			h.Pread(p, buf, off)
			reads++
		}
		randLat = (p.Now() - start) / time.Duration(reads)
		fx.sim.Stop()
	})
	run(t, fx.sim)
	if seqLat >= randLat {
		t.Errorf("sequential read latency (%v) should beat strided (%v)", seqLat, randLat)
	}
	if seqLat > 100*time.Microsecond {
		t.Errorf("sequential 512B read = %v, want small (readahead-amortized)", seqLat)
	}
}

func TestDirtyHighWaterStallsWriter(t *testing.T) {
	fx := newFixture(1)
	fx.node.Go("test", func(p *simnet.Proc) {
		f, _ := fx.client.Create(p, "/log")
		// Write far past the high watermark without syncing.
		chunk := make([]byte, 1<<20)
		for i := 0; i < 150; i++ {
			f.Write(p, chunk)
		}
		if fx.client.StallTime == 0 {
			t.Error("expected writer stalls past the dirty high watermark")
		}
		fx.sim.Stop()
	})
	run(t, fx.sim)
}

func TestPwriteOverwriteAndSpans(t *testing.T) {
	fx := newFixture(1)
	fx.node.Go("test", func(p *simnet.Proc) {
		f, _ := fx.client.Create(p, "/f")
		f.Pwrite(p, []byte("aaaaaaaaaa"), 0)
		f.Sync(p)
		f.Pwrite(p, []byte("BB"), 3)
		f.Pwrite(p, []byte("CC"), 8) // extends nothing, within file
		f.Sync(p)
		got, _ := fx.cluster.DurableBytes("/f")
		if string(got) != "aaaBBaaaCC" {
			t.Errorf("durable = %q", got)
		}
		fx.sim.Stop()
	})
	run(t, fx.sim)
}

func TestAddSpanMerging(t *testing.T) {
	var spans []span
	spans = addSpan(spans, span{10, 20})
	spans = addSpan(spans, span{30, 40})
	spans = addSpan(spans, span{15, 35}) // bridges both
	if len(spans) != 1 || spans[0] != (span{10, 40}) {
		t.Fatalf("spans = %+v", spans)
	}
	spans = addSpan(spans, span{0, 5})
	if len(spans) != 2 || spans[0] != (span{0, 5}) {
		t.Fatalf("spans = %+v", spans)
	}
	spans = addSpan(spans, span{5, 10}) // adjacent: merges with both
	if len(spans) != 1 || spans[0] != (span{0, 40}) {
		t.Fatalf("spans = %+v", spans)
	}
}

// Property: addSpan maintains its invariant — sorted, non-overlapping,
// non-adjacent, non-empty spans — and covers exactly the bytes ever added,
// for any sequence of spans including empty ones (a zero-length Pwrite used
// to insert a zero-length span, breaking the sorted-merge invariant).
func TestAddSpanProperty(t *testing.T) {
	const limit = 256
	f := func(ops []uint16) bool {
		var spans []span
		var shadow [limit + 16]bool
		for _, op := range ops {
			start := int64(op % limit)
			length := int64(op/limit) % 16 // 0..15, empty spans included
			spans = addSpan(spans, span{start, start + length})
			for i := start; i < start+length; i++ {
				shadow[i] = true
			}
		}
		for i, s := range spans {
			if s.end <= s.start {
				t.Logf("empty span %d: %+v", i, spans)
				return false
			}
			// Strictly after the previous span with a gap: adjacent or
			// overlapping spans must have been merged.
			if i > 0 && s.start <= spans[i-1].end {
				t.Logf("unsorted/unmerged at %d: %+v", i, spans)
				return false
			}
		}
		covered := func(i int64) bool {
			for _, s := range spans {
				if i >= s.start && i < s.end {
					return true
				}
			}
			return false
		}
		for i := int64(0); i < limit+16; i++ {
			if covered(i) != shadow[i] {
				t.Logf("byte %d: covered=%v shadow=%v spans=%+v", i, covered(i), shadow[i], spans)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Regression: an empty span between two real ones must vanish, not wedge
	// itself into the list.
	spans := addSpan(addSpan(nil, span{0, 10}), span{20, 30})
	if got := addSpan(spans, span{15, 15}); len(got) != 2 {
		t.Fatalf("empty span inserted: %+v", got)
	}
}

// A writeback flush in flight when its file is renamed must follow the inode:
// the data lands under the new name, and a file re-created at the old path is
// not resurrected with the old content.
func TestRenameDuringWriteback(t *testing.T) {
	fx := newFixture(3)
	payload := bytes.Repeat([]byte{0xAB}, 8<<20) // 16ms of writeback at 500 MB/s
	fx.node.Go("test", func(p *simnet.Proc) {
		f, err := fx.client.Create(p, "/old")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if _, err := f.Write(p, payload); err != nil {
			t.Errorf("write: %v", err)
		}
		// Let the background writeback pick the dirty file up, then rename
		// mid-flush (the 8 MB flush spends ~16ms on storage bandwidth).
		p.Sleep(fx.cluster.Params().WritebackInterval + 5*time.Millisecond)
		if err := fx.client.Rename(p, "/old", "/new"); err != nil {
			t.Errorf("rename: %v", err)
		}
		g, err := fx.client.Create(p, "/old")
		if err != nil {
			t.Errorf("recreate: %v", err)
			return
		}
		if _, err := g.Write(p, []byte("fresh")); err != nil {
			t.Errorf("write new: %v", err)
		}
		if err := g.Sync(p); err != nil {
			t.Errorf("sync new: %v", err)
		}
		// Drain the in-flight flush and sync the renamed file's remainder
		// through the original handle (it tracks the inode, not the name).
		if err := f.Sync(p); err != nil {
			t.Errorf("sync renamed: %v", err)
		}
		p.Sleep(2 * fx.cluster.Params().WritebackInterval)
		if got, ok := fx.cluster.DurableBytes("/old"); !ok || string(got) != "fresh" {
			t.Errorf("old path resurrected: %d bytes, ok=%v", len(got), ok)
		}
		if got, ok := fx.cluster.DurableBytes("/new"); !ok || !bytes.Equal(got, payload) {
			t.Errorf("renamed file lost data: %d bytes, ok=%v", len(got), ok)
		}
		fx.sim.Stop()
	})
	run(t, fx.sim)
}

// Property: any sequence of pwrites followed by sync yields durable content
// identical to applying the writes to a shadow buffer.
func TestQuickPwriteSyncFidelity(t *testing.T) {
	type op struct {
		Off  uint16
		Data []byte
		Sync bool
	}
	f := func(ops []op) bool {
		if len(ops) == 0 || len(ops) > 24 {
			return true
		}
		fx := newFixture(5)
		ok := true
		fx.node.Go("t", func(p *simnet.Proc) {
			file, _ := fx.client.Create(p, "/f")
			shadow := []byte{}
			for _, o := range ops {
				if len(o.Data) == 0 {
					continue
				}
				off := int64(o.Off) % 4096
				file.Pwrite(p, o.Data, off)
				if end := off + int64(len(o.Data)); end > int64(len(shadow)) {
					grown := make([]byte, end)
					copy(grown, shadow)
					shadow = grown
				}
				copy(shadow[off:], o.Data)
				if o.Sync {
					file.Sync(p)
				}
			}
			file.Sync(p)
			got, _ := fx.cluster.DurableBytes("/f")
			if !bytes.Equal(got, shadow) {
				ok = false
			}
			fx.sim.Stop()
		})
		if err := fx.sim.RunUntil(time.Hour); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: after a crash, durable content is exactly the content as of some
// prefix point >= the last explicit sync (writeback may have flushed more,
// but never reorders or loses synced data).
func TestQuickCrashDurabilityPrefix(t *testing.T) {
	f := func(nWrites uint8, crashAfterMs uint8) bool {
		n := int(nWrites)%12 + 1
		s := simnet.New(9)
		cluster := NewCluster(s, "c", DefaultParams())
		node := s.NewNode("n")
		client := cluster.Mount(node)
		var syncedLen int64
		node.Go("writer", func(p *simnet.Proc) {
			file, _ := client.Create(p, "/f")
			for i := 0; i < n; i++ {
				payload := bytes.Repeat([]byte{byte(i + 1)}, 100)
				file.Write(p, payload)
				if i%3 == 0 {
					file.Sync(p)
					syncedLen = file.Size()
				}
			}
			p.Sleep(time.Hour)
		})
		crashed := false
		s.Go("injector", func(p *simnet.Proc) {
			p.Sleep(time.Duration(crashAfterMs) * time.Millisecond / 4)
			node.Crash()
			crashed = true
		})
		if err := s.RunUntil(time.Hour); err != nil {
			return false
		}
		if !crashed {
			return false
		}
		got, _ := cluster.DurableBytes("/f")
		if int64(len(got)) < syncedLen {
			return false
		}
		// Content must be a clean prefix: byte j belongs to write j/100.
		for j := 0; j < len(got); j++ {
			if got[j] != byte(j/100+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalExt4Faster(t *testing.T) {
	syncLat := func(params Params) time.Duration {
		s := simnet.New(1)
		c := NewCluster(s, "x", params)
		n := s.NewNode("n")
		cl := c.Mount(n)
		var lat time.Duration
		n.Go("t", func(p *simnet.Proc) {
			f, _ := cl.Create(p, "/f")
			f.Write(p, make([]byte, 4096))
			start := p.Now()
			f.Sync(p)
			lat = p.Now() - start
			s.Stop()
		})
		s.RunUntil(time.Hour)
		return lat
	}
	ceph := syncLat(DefaultParams())
	ext4 := syncLat(LocalExt4Params())
	if ext4 >= ceph {
		t.Errorf("local ext4 sync (%v) should beat CephFS (%v)", ext4, ceph)
	}
}
