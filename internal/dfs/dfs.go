// Package dfs simulates the disaggregated storage backends of the DFT
// paradigm: a CephFS-like distributed file system and, with different
// parameters, a local-ext4-on-SSD file system (used only as a recovery
// baseline, as in the paper's Fig 11b).
//
// Semantics reproduced (§2.1 of the paper):
//
//   - Writes are buffered in the client's (application server's) memory and
//     become durable only on fsync, which replicates them to the storage
//     service. Data written before the last successful fsync survives a
//     client crash; everything after it is lost.
//   - Metadata operations (create/unlink/rename) are synchronous and
//     durable immediately.
//   - A background writeback proc flushes dirty data periodically, and
//     writers stall when dirty data exceeds a high watermark — the
//     "write stalls" that weak-mode applications suffer and SplitFT avoids.
//   - Reads are served through a client block cache with sequential
//     readahead; direct IO bypasses the cache (Fig 11a baselines).
//
// Cost model: a single shared storage pipe per cluster (bandwidth
// reservation in virtual time, crash-safe by construction) plus fixed
// round-trip costs for sync, metadata and fetch operations. DefaultParams
// is calibrated to the paper's CephFS measurements: a small sync write
// costs ~2.3 ms (Table 1, Fig 8 "strong"), sequential write throughput
// spans three orders of magnitude between 512 B and 64 MB IOs (Fig 1d).
package dfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"splitft/internal/model"
	"splitft/internal/simnet"
	"splitft/internal/trace"
)

// Params is the storage cost model. The constants live in internal/model
// (the unified hardware cost-model layer); this alias keeps the dfs API
// self-contained.
type Params = model.DFSParams

// DefaultParams returns the baseline profile's dfs cost model, which
// models the paper's CephFS deployment (3 replicas on SATA SSDs behind a
// 25 Gb network).
func DefaultParams() Params {
	return model.Baseline().DFS
}

// LocalExt4Params returns the baseline profile's local-ext4 cost model — a
// local partition on a SATA SSD (the comparison point in Fig 11b; "not
// realistic" for DFT but fast).
func LocalExt4Params() Params {
	return model.Baseline().LocalFS
}

// Errors.
var (
	ErrNotExist = errors.New("dfs: file does not exist")
	ErrExist    = errors.New("dfs: file already exists")
	ErrClosed   = errors.New("dfs: file handle closed")
)

// Cluster is the storage service: durable state that survives any client or
// application crash. (Internally the real service replicates 3x; the model
// collapses that into the cost constants.)
type Cluster struct {
	sim    *simnet.Sim
	name   string
	params Params
	files  map[string]*durableFile
	// diskBusyUntil implements the shared storage pipe as a virtual-time
	// reservation: crash-safe, deterministic FIFO bandwidth sharing.
	diskBusyUntil time.Duration

	// extents is the chained-append extent store (nil until EnableExtents;
	// the classic primary-copy path above is untouched by it).
	extents *extentStore

	// Stats.
	BytesWritten int64
	BytesRead    int64
	Syncs        int64
	// ExtentBytes counts bytes acked through extent chains (the payload
	// once, not per replica); ExtentSyncs counts extent-file fsyncs.
	ExtentBytes int64
	ExtentSyncs int64
}

// durableFile is one inode of the storage service. Small files hold their
// bytes inline (data); large files opened with the extent flag hold a
// manifest mapping logical ranges onto chain-replicated extents (ext).
type durableFile struct {
	data []byte
	ext  *extManifest
}

// NewCluster creates a storage service on s.
func NewCluster(s *simnet.Sim, name string, params Params) *Cluster {
	return &Cluster{sim: s, name: name, params: params, files: make(map[string]*durableFile)}
}

// Params returns the cluster cost model.
func (c *Cluster) Params() Params { return c.params }

// reserveWrite reserves the storage pipe for n bytes and returns the
// reservation's completion time.
func (c *Cluster) reserve(n int64, bw float64) time.Duration {
	start := c.diskBusyUntil
	if now := c.sim.Now(); start < now {
		start = now
	}
	c.diskBusyUntil = start + time.Duration(float64(n)/bw*float64(time.Second))
	return c.diskBusyUntil
}

// DurableSize returns the durable length of path, and whether it exists.
func (c *Cluster) DurableSize(path string) (int64, bool) {
	f, ok := c.files[path]
	if !ok {
		return 0, false
	}
	if f.ext != nil {
		return f.ext.size, true
	}
	return int64(len(f.data)), true
}

// DurableBytes returns a copy of the durable content of path. For an
// extent-backed file the content is reconstructed from the storage nodes'
// replicas (a zero-cost test/debug helper, not a data path).
func (c *Cluster) DurableBytes(path string) ([]byte, bool) {
	f, ok := c.files[path]
	if !ok {
		return nil, false
	}
	if f.ext != nil {
		return c.extents.reconstruct(f.ext), true
	}
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, true
}

// Client is one node's mount of the cluster. Its caches and dirty data die
// with the node; durable state lives in the Cluster.
type Client struct {
	cluster *Cluster
	node    *simnet.Node
	dead    bool

	open  map[*File]struct{}
	dirty int64

	cache     map[blockKey]*blockEnt
	cacheLRU  uint64
	cacheUsed int64

	stallCond *simnet.Cond
	stallMu   simnet.Mutex

	flushNow *simnet.Chan[struct{}]

	// Extent-plane state (nil/zero until the mount touches an extent file):
	// the metadata client, the extent-ID lease cache, the chain members this
	// mount has blamed for failed appends, the egress-link pipe all chained
	// appends serialize through, and a counter naming pump procs.
	meta          ExtentMeta
	allocNext     uint64
	allocEnd      uint64
	suspects      map[string]time.Duration
	reforms       int
	extEgressBusy time.Duration
	pumpSeq       uint64

	// DirectIO disables the block cache and readahead for all reads through
	// this client (Fig 11a "DFS direct IO" baseline).
	DirectIO bool

	// Stats.
	CacheHits    int64
	CacheMisses  int64
	StallTime    time.Duration
	FlushedBytes int64
}

type blockKey struct {
	path string
	idx  int64
}

type blockEnt struct {
	lru  uint64
	size int64
}

// Mount creates a client for node. The mount dies (caches and dirty data
// dropped) when the node crashes; remounting after restart starts clean.
func (c *Cluster) Mount(node *simnet.Node) *Client {
	cl := &Client{
		cluster:  c,
		node:     node,
		open:     make(map[*File]struct{}),
		cache:    make(map[blockKey]*blockEnt),
		flushNow: simnet.NewChan[struct{}](c.sim),
	}
	cl.stallCond = simnet.NewCond(&cl.stallMu)
	node.OnCrash(func() { cl.dead = true })
	node.Go("dfs-writeback", cl.writeback)
	return cl
}

// writeback periodically flushes all dirty data, and immediately when
// kicked by a stalling writer.
func (cl *Client) writeback(p *simnet.Proc) {
	for {
		_, _, _ = cl.flushNow.RecvTimeout(p, cl.cluster.params.WritebackInterval)
		if cl.dead {
			return
		}
		// Snapshot in path order: map iteration order would make runs
		// nondeterministic.
		files := make([]*File, 0, len(cl.open))
		for f := range cl.open {
			files = append(files, f)
		}
		sort.Slice(files, func(i, j int) bool { return files[i].path < files[j].path })
		for _, f := range files {
			if f.dirtyBytes() > 0 {
				f.flush(p, false)
			}
		}
		cl.stallMu.Lock(p)
		cl.stallCond.Broadcast(p)
		cl.stallMu.Unlock(p)
	}
}

func (cl *Client) checkAlive() error {
	if cl.dead {
		return errors.New("dfs: client mount is dead")
	}
	return nil
}

// grow extends buf to length n (geometric capacity growth, zero-filled).
func grow(buf []byte, n int64) []byte {
	if n <= int64(len(buf)) {
		return buf
	}
	if n <= int64(cap(buf)) {
		return buf[:n]
	}
	newCap := int64(cap(buf)) * 2
	if newCap < n {
		newCap = n
	}
	grown := make([]byte, n, newCap)
	copy(grown, buf)
	return grown
}

// span is a dirty byte range [start, end).
type span struct{ start, end int64 }

// addSpan inserts s into sorted, disjoint, non-empty spans, merging
// overlapping and adjacent ranges. Empty spans are dropped: a zero-length
// write dirties nothing, and inserting one would break the non-empty
// invariant everything downstream (flush packing, extent appends) relies on.
func addSpan(spans []span, s span) []span {
	if s.end <= s.start {
		return spans
	}
	i := sort.Search(len(spans), func(i int) bool { return spans[i].end >= s.start })
	j := i
	for j < len(spans) && spans[j].start <= s.end {
		if spans[j].start < s.start {
			s.start = spans[j].start
		}
		if spans[j].end > s.end {
			s.end = spans[j].end
		}
		j++
	}
	out := make([]span, 0, len(spans)-(j-i)+1)
	out = append(out, spans[:i]...)
	out = append(out, s)
	out = append(out, spans[j:]...)
	return out
}

func spanBytes(spans []span) int64 {
	var n int64
	for _, s := range spans {
		n += s.end - s.start
	}
	return n
}

// File is an open handle. The view holds the client's coherent picture of
// the file (durable content plus buffered writes); dirty spans track what
// fsync must push. A single client writing a file at a time is assumed, as
// in the paper's applications.
type File struct {
	client *Client
	path   string
	// df is the inode this handle writes through. Flushes apply to the
	// inode, not to whatever cl.cluster.files[path] resolves to at landing
	// time: a Rename during a flush moves the inode (data follows the
	// file), and an Unlink orphans it (data goes nowhere) — never does a
	// flush resurrect content into a file that replaced this one at path.
	df         *durableFile
	view       []byte
	dirty      []span
	offset     int64 // cursor for Write/Read
	lastSeqEnd int64
	flushing   bool
	closed     bool
}

// Create creates (or truncates) path and opens it.
func (cl *Client) Create(p *simnet.Proc, path string) (*File, error) {
	if err := cl.checkAlive(); err != nil {
		return nil, err
	}
	p.Sleep(cl.cluster.params.MetaFixed)
	df := &durableFile{}
	cl.cluster.files[path] = df
	f := &File{client: cl, path: path, df: df}
	cl.open[f] = struct{}{}
	return f, nil
}

// Open opens an existing file for read/write; the cursor starts at 0.
func (cl *Client) Open(p *simnet.Proc, path string) (*File, error) {
	if err := cl.checkAlive(); err != nil {
		return nil, err
	}
	p.Sleep(cl.cluster.params.MetaFixed)
	df, ok := cl.cluster.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	if df.ext != nil {
		return nil, fmt.Errorf("dfs: %s is extent-backed; open it through OpenFileExt", path)
	}
	f := &File{client: cl, path: path, df: df, view: append([]byte(nil), df.data...)}
	cl.open[f] = struct{}{}
	return f, nil
}

// OpenFile opens path, creating it if create is set and it doesn't exist.
func (cl *Client) OpenFile(p *simnet.Proc, path string, create bool) (*File, error) {
	if _, ok := cl.cluster.files[path]; !ok && create {
		return cl.Create(p, path)
	}
	return cl.Open(p, path)
}

// Exists reports whether path exists durably.
func (cl *Client) Exists(path string) bool {
	_, ok := cl.cluster.files[path]
	return ok
}

// Unlink removes path durably.
func (cl *Client) Unlink(p *simnet.Proc, path string) error {
	if err := cl.checkAlive(); err != nil {
		return err
	}
	p.Sleep(cl.cluster.params.MetaFixed)
	if _, ok := cl.cluster.files[path]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	delete(cl.cluster.files, path)
	for k := range cl.cache {
		if k.path == path {
			cl.cacheUsed -= cl.cache[k].size
			delete(cl.cache, k)
		}
	}
	return nil
}

// Rename atomically renames old to new, replacing new if present.
func (cl *Client) Rename(p *simnet.Proc, oldPath, newPath string) error {
	if err := cl.checkAlive(); err != nil {
		return err
	}
	p.Sleep(cl.cluster.params.MetaFixed)
	df, ok := cl.cluster.files[oldPath]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, oldPath)
	}
	cl.cluster.files[newPath] = df
	delete(cl.cluster.files, oldPath)
	// Cached blocks are keyed by path: entries for the old name (and for a
	// file the rename replaced) would serve stale hits to future openers.
	for k := range cl.cache {
		if k.path == oldPath || k.path == newPath {
			cl.cacheUsed -= cl.cache[k].size
			delete(cl.cache, k)
		}
	}
	return nil
}

// List returns the durable paths with the given prefix, sorted.
func (cl *Client) List(prefix string) []string {
	var out []string
	for name := range cl.cluster.files {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Cluster returns the backing storage service.
func (cl *Client) Cluster() *Cluster { return cl.cluster }

func (f *File) dirtyBytes() int64 { return spanBytes(f.dirty) }

// DirtyBytes reports how much buffered data a Sync would flush right now.
func (f *File) DirtyBytes() int64 { return f.dirtyBytes() }

// Size returns the file's current (buffered) length.
func (f *File) Size() int64 { return int64(len(f.view)) }

// Path returns the file's path.
func (f *File) Path() string { return f.path }

// SeekTo sets the cursor for Write/Read to an absolute offset.
func (f *File) SeekTo(off int64) { f.offset = off }

// Write appends data at the cursor (buffered; durable only after Sync).
func (f *File) Write(p *simnet.Proc, data []byte) (int, error) {
	n, err := f.Pwrite(p, data, f.offset)
	f.offset += int64(n)
	return n, err
}

// Pwrite writes data at off (buffered).
func (f *File) Pwrite(p *simnet.Proc, data []byte, off int64) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	cl := f.client
	if err := cl.checkAlive(); err != nil {
		return 0, err
	}
	tsp := p.StartSpan("dfs", "pwrite", trace.Str("path", f.path), trace.Int("bytes", int64(len(data))))
	defer p.EndSpan(tsp)
	pm := cl.cluster.params
	// Stall if writeback can't keep up (the weak-mode penalty).
	for cl.dirty > pm.DirtyHighWater {
		start := p.Now()
		cl.flushNow.Send(p, struct{}{})
		cl.stallMu.Lock(p)
		cl.stallCond.WaitTimeout(p, 20*time.Millisecond)
		cl.stallMu.Unlock(p)
		cl.StallTime += p.Now() - start
	}
	cost := pm.SyscallFixed + time.Duration(float64(len(data))/pm.MemBandwidth*float64(time.Second))
	if pm.WritebackThrottleMax > 0 && cl.dirty > 0 {
		ratio := float64(cl.dirty) / float64(pm.DirtyHighWater)
		if ratio > 1 {
			ratio = 1
		}
		cost += time.Duration(ratio * float64(pm.WritebackThrottleMax))
	}
	p.Sleep(cost)
	end := off + int64(len(data))
	f.view = grow(f.view, end)
	copy(f.view[off:], data)
	f.dirty = addSpan(f.dirty, span{start: off, end: end})
	cl.dirty += int64(len(data))
	return len(data), nil
}

// Sync makes all buffered writes durable (fsync).
func (f *File) Sync(p *simnet.Proc) error {
	if f.closed {
		return ErrClosed
	}
	return f.flush(p, true)
}

// flush pushes dirty spans to the cluster. foreground distinguishes an
// explicit fsync (pays the replication round trip) from background
// writeback (pays only bandwidth).
func (f *File) flush(p *simnet.Proc, foreground bool) error {
	cl := f.client
	if err := cl.checkAlive(); err != nil {
		return err
	}
	op := "writeback"
	if foreground {
		op = "fsync"
	}
	tsp := p.StartSpan("dfs", op, trace.Str("path", f.path))
	defer p.EndSpan(tsp)
	pm := cl.cluster.params
	// An fsync must not return before earlier in-flight writeback of this
	// file has landed durably.
	for f.flushing {
		p.Sleep(100 * time.Microsecond)
		if err := cl.checkAlive(); err != nil {
			return err
		}
	}
	f.flushing = true
	defer func() { f.flushing = false }()
	n := f.dirtyBytes()
	tsp.SetAttr(trace.Int("bytes", n))
	if n == 0 {
		if foreground {
			p.Sleep(pm.SyncCleanFixed)
			cl.cluster.Syncs++
		}
		return nil
	}
	spans := f.dirty
	f.dirty = nil
	cl.dirty -= n
	done := cl.cluster.reserve(n, pm.WriteBandwidth)
	wait := done - p.Now()
	if foreground {
		wait += pm.SyncFixed
	}
	p.Sleep(wait)
	if cl.dead {
		return errors.New("dfs: client died during flush")
	}
	// Apply the spans durably to this handle's inode (see File.df). The
	// view may have grown past some spans' snapshot; copy what the view
	// holds now (writeback semantics). If the file was unlinked while the
	// flush was in flight the inode is orphaned and the data simply goes
	// nowhere, like kernel writeback to a deleted inode.
	df := f.df
	for _, s := range spans {
		end := s.end
		if end > int64(len(f.view)) {
			end = int64(len(f.view))
		}
		df.data = grow(df.data, end)
		copy(df.data[s.start:end], f.view[s.start:end])
	}
	cl.cluster.BytesWritten += n
	if foreground {
		cl.cluster.Syncs++
	} else {
		cl.FlushedBytes += n
	}
	// Recently written data is cache-resident — but only while the path
	// still names this inode. A file renamed away (or replaced) mid-flush
	// must not warm cache blocks for whatever now lives at the old path.
	if cl.cluster.files[f.path] == df {
		for _, s := range spans {
			cl.insertBlocks(f.path, s.start, s.end)
		}
	}
	return nil
}

// Read reads from the cursor.
func (f *File) Read(p *simnet.Proc, buf []byte) (int, error) {
	n, err := f.Pread(p, buf, f.offset)
	f.offset += int64(n)
	return n, err
}

// Pread reads len(buf) bytes at off, returning the count read (short at
// EOF). Cost depends on cache residency and readahead.
func (f *File) Pread(p *simnet.Proc, buf []byte, off int64) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	cl := f.client
	if err := cl.checkAlive(); err != nil {
		return 0, err
	}
	pm := cl.cluster.params
	if off >= int64(len(f.view)) {
		return 0, nil
	}
	tsp := p.StartSpan("dfs", "pread", trace.Str("path", f.path), trace.Int("bytes", int64(len(buf))))
	defer p.EndSpan(tsp)
	n := int64(len(buf))
	if off+n > int64(len(f.view)) {
		n = int64(len(f.view)) - off
	}
	if cl.DirectIO {
		done := cl.cluster.reserve(n, pm.ReadBandwidth)
		p.Sleep(pm.ReadFixed + (done - p.Now()))
		cl.cluster.BytesRead += n
	} else {
		f.chargeCachedRead(p, off, n)
	}
	copy(buf[:n], f.view[off:off+n])
	return int(n), nil
}

// chargeCachedRead charges the cost of reading [off, off+n) through the
// block cache with sequential readahead.
func (f *File) chargeCachedRead(p *simnet.Proc, off, n int64) {
	cl := f.client
	pm := cl.cluster.params
	bs := int64(pm.CacheBlock)
	var missBytes int64
	for b := off / bs; b*bs < off+n; b++ {
		key := blockKey{path: f.path, idx: b}
		if ent, ok := cl.cache[key]; ok {
			cl.cacheLRU++
			ent.lru = cl.cacheLRU
			cl.CacheHits++
			continue
		}
		cl.CacheMisses++
		// Miss: fetch this block, or a whole readahead window if the access
		// is sequential.
		fetchEnd := (b + 1) * bs
		if pm.ReadaheadWindow > 0 && off == f.lastSeqEnd {
			fetchEnd = b*bs + int64(pm.ReadaheadWindow)
		}
		if fetchEnd > int64(len(f.view)) {
			fetchEnd = int64(len(f.view))
		}
		fetchStart := b * bs
		missBytes += fetchEnd - fetchStart
		cl.insertBlocks(f.path, fetchStart, fetchEnd)
	}
	if missBytes > 0 {
		done := cl.cluster.reserve(missBytes, pm.ReadBandwidth)
		p.Sleep(pm.ReadFixed + (done - p.Now()))
		cl.cluster.BytesRead += missBytes
	}
	// Cache-hit portion: local memory copy.
	p.Sleep(pm.SyscallFixed + time.Duration(float64(n-missBytes)/pm.MemBandwidth*float64(time.Second)))
	f.lastSeqEnd = off + n
}

// insertBlocks marks [start, end) of path cache-resident, evicting LRU
// blocks if over capacity.
func (cl *Client) insertBlocks(path string, start, end int64) {
	pm := cl.cluster.params
	bs := int64(pm.CacheBlock)
	for b := start / bs; b*bs < end; b++ {
		key := blockKey{path: path, idx: b}
		if _, ok := cl.cache[key]; ok {
			continue
		}
		cl.cacheLRU++
		cl.cache[key] = &blockEnt{lru: cl.cacheLRU, size: bs}
		cl.cacheUsed += bs
	}
	for cl.cacheUsed > pm.CacheCapacity {
		var victim blockKey
		var oldest uint64 = ^uint64(0)
		for k, e := range cl.cache {
			if e.lru < oldest {
				oldest = e.lru
				victim = k
			}
		}
		cl.cacheUsed -= cl.cache[victim].size
		delete(cl.cache, victim)
	}
}

// Close flushes nothing (POSIX close doesn't imply fsync) and releases the
// handle. Unsynced data remains buffered client-side until writeback.
func (f *File) Close(p *simnet.Proc) error {
	if f.closed {
		return ErrClosed
	}
	f.closed = true
	// Keep dirty accounting: writeback still owns the spans. Transfer them
	// to a detached flush so the data eventually lands (as the kernel would).
	if f.dirtyBytes() > 0 && !f.client.dead {
		f.closed = false
		err := f.flush(p, false)
		f.closed = true
		if err != nil {
			return err
		}
	}
	delete(f.client.open, f)
	return nil
}
