package dfs

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"splitft/internal/simnet"
)

// extFixture is a standalone extent-plane testbed: a dfs cluster with
// storage nodes attached and the cluster-local extent allocator.
type extFixture struct {
	sim     *simnet.Sim
	cluster *Cluster
	node    *simnet.Node
	client  *Client
	sns     []*simnet.Node
}

func newExtFixture(seed int64, params Params) *extFixture {
	s := simnet.New(seed)
	c := NewCluster(s, "ceph", params)
	sns := make([]*simnet.Node, params.ExtentNodes)
	for i := range sns {
		sns[i] = s.NewNode(fmt.Sprintf("sn%d", i))
	}
	c.EnableExtents(sns)
	n := s.NewNode("appserver")
	return &extFixture{sim: s, cluster: c, node: n, client: c.Mount(n), sns: sns}
}

// pattern fills a deterministic, position-dependent byte pattern so a
// misplaced segment shows up as a content mismatch, not just a length one.
func pattern(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*7 + i/251)
	}
	return out
}

func TestExtentWriteSyncReadBack(t *testing.T) {
	fx := newExtFixture(1, DefaultParams())
	payload := pattern(9 << 20) // 3 extents at the 4 MB default
	fx.node.Go("test", func(p *simnet.Proc) {
		h, err := fx.client.OpenFileExt(p, "/ext/f", true, true)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if _, ok := h.(*ExtentFile); !ok {
			t.Errorf("created %T, want *ExtentFile", h)
		}
		if _, err := h.Write(p, payload); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := h.Sync(p); err != nil {
			t.Errorf("sync: %v", err)
		}
		if got, ok := fx.cluster.DurableBytes("/ext/f"); !ok || !bytes.Equal(got, payload) {
			t.Errorf("durable = %d bytes, ok=%v", len(got), ok)
		}
		if fx.cluster.ExtentBytes != int64(len(payload)) || fx.cluster.ExtentSyncs == 0 {
			t.Errorf("stats: bytes=%d syncs=%d", fx.cluster.ExtentBytes, fx.cluster.ExtentSyncs)
		}
		// The stride chain pick must spread the three extents' chain slots
		// over distinct nodes, not pile them on one chain.
		loaded := 0
		for _, en := range fx.cluster.extents.nodes {
			if en.BytesStored > 0 {
				loaded++
			}
		}
		if loaded < 6 {
			t.Errorf("only %d storage nodes hold data, want a spread", loaded)
		}
		// A second mount auto-detects the backend and reads through the
		// manifest, across an extent boundary.
		cl2 := fx.cluster.Mount(fx.sim.NewNode("reader"))
		h2, err := cl2.OpenFileExt(p, "/ext/f", false, false)
		if err != nil {
			t.Errorf("reopen: %v", err)
			return
		}
		if h2.Size() != int64(len(payload)) {
			t.Errorf("reopened size = %d", h2.Size())
		}
		buf := make([]byte, 1<<20)
		off := int64(4<<20) - 512<<10 // spans the extent 0 -> 1 boundary
		if n, err := h2.Pread(p, buf, off); err != nil || n != len(buf) {
			t.Errorf("pread = %d, %v", n, err)
		} else if !bytes.Equal(buf, payload[off:off+int64(len(buf))]) {
			t.Error("remote read content mismatch")
		}
		fx.sim.Stop()
	})
	run(t, fx.sim)
}

// An overwrite appends fresh bytes and shadows the old range in the
// manifest (log-structured splice), without disturbing its neighbors.
func TestExtentOverwriteShadowsOldRange(t *testing.T) {
	fx := newExtFixture(2, DefaultParams())
	fx.node.Go("test", func(p *simnet.Proc) {
		h, err := fx.client.OpenFileExt(p, "/ext/f", true, true)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		shadow := pattern(1 << 20)
		h.Write(p, shadow)
		if err := h.Sync(p); err != nil {
			t.Errorf("sync: %v", err)
		}
		over := bytes.Repeat([]byte{0xEE}, 100<<10)
		h.Pwrite(p, over, 300<<10)
		copy(shadow[300<<10:], over)
		if err := h.Sync(p); err != nil {
			t.Errorf("sync overwrite: %v", err)
		}
		man := fx.cluster.files["/ext/f"].ext
		if len(man.segs) != 3 {
			t.Errorf("manifest has %d segments after splice, want 3: %+v", len(man.segs), man.segs)
		}
		if got, ok := fx.cluster.DurableBytes("/ext/f"); !ok || !bytes.Equal(got, shadow) {
			t.Errorf("durable mismatch after overwrite (ok=%v)", ok)
		}
		// A fresh mount reads the spliced view remotely.
		cl2 := fx.cluster.Mount(fx.sim.NewNode("reader"))
		h2, err := cl2.OpenFileExt(p, "/ext/f", false, false)
		if err != nil {
			t.Errorf("reopen: %v", err)
			return
		}
		buf := make([]byte, len(shadow))
		if n, err := h2.Pread(p, buf, 0); err != nil || n != len(buf) {
			t.Errorf("pread = %d, %v", n, err)
		} else if !bytes.Equal(buf, shadow) {
			t.Error("spliced read mismatch")
		}
		fx.sim.Stop()
	})
	run(t, fx.sim)
}

// The headline perf property: a 64 MB chained append syncs at least 5x
// faster than the flat path's primary-copy sync write of the same bytes.
func TestChainAppendBeatsFlatSync(t *testing.T) {
	fx := newExtFixture(3, DefaultParams())
	payload := make([]byte, 64<<20)
	fx.node.Go("test", func(p *simnet.Proc) {
		flat, err := fx.client.Create(p, "/flat")
		if err != nil {
			t.Errorf("create flat: %v", err)
			return
		}
		flat.Write(p, payload)
		start := p.Now()
		if err := flat.Sync(p); err != nil {
			t.Errorf("flat sync: %v", err)
		}
		flatDur := p.Now() - start

		h, err := fx.client.OpenFileExt(p, "/chained", true, true)
		if err != nil {
			t.Errorf("create extent: %v", err)
			return
		}
		h.Write(p, payload)
		start = p.Now()
		if err := h.Sync(p); err != nil {
			t.Errorf("chain sync: %v", err)
		}
		chainDur := p.Now() - start
		if chainDur <= 0 || flatDur < 5*chainDur {
			t.Errorf("chain sync %v not ≥5x faster than flat sync %v", chainDur, flatDur)
		}
		fx.sim.Stop()
	})
	run(t, fx.sim)
}

// failParams shrinks the plane so failure tests stay quick — 8 nodes, 1 MB
// extents, 128 KB frames — and slows the links so a 3 MB pump spans ~10 ms
// of virtual time, a window a crash injector can reliably land inside.
func failParams() Params {
	pm := DefaultParams()
	pm.ExtentNodes = 8
	pm.ExtentSize = 1 << 20
	pm.ChainFrame = 128 << 10
	pm.ChainWindow = 4
	pm.LinkBandwidth = 300e6
	return pm
}

// crashMidAppend writes 3 MB while crashing the storage node at idx a
// little into the pump, and asserts the chain re-forms: the sync succeeds,
// the acked data is fully readable with the node still dead, and the mount
// excludes the suspect from later chains.
func crashMidAppend(t *testing.T, idx int) {
	fx := newExtFixture(4, failParams())
	payload := pattern(3 << 20)
	victim := fx.sns[idx]
	syncStarted := false
	fx.node.Go("writer", func(p *simnet.Proc) {
		h, err := fx.client.OpenFileExt(p, "/ext/f", true, true)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		h.Write(p, payload)
		syncStarted = true
		if err := h.Sync(p); err != nil {
			t.Errorf("sync across the crash: %v", err)
		}
		if !fx.client.isSuspect(victim.Name()) {
			t.Errorf("%s not marked suspect after the failure", victim.Name())
		}
		// Everything acked must reconstruct from the surviving replicas.
		if got, ok := fx.cluster.DurableBytes("/ext/f"); !ok || !bytes.Equal(got, payload) {
			t.Errorf("durable mismatch after re-form (ok=%v)", ok)
		}
		// Post-crash segments must not include the suspect.
		man := fx.cluster.files["/ext/f"].ext
		resealed := false
		for _, sg := range man.segs {
			for _, addr := range sg.nodes {
				if addr == victim.Name() {
					// Pre-crash segments may still name the victim; reads
					// fail over. But a segment written on a re-formed chain
					// (a later extent ID) must not.
					if sg.ext >= 3 {
						t.Errorf("re-formed segment on suspect: %+v", sg)
					}
				}
			}
			if sg.ext >= 3 {
				resealed = true
			}
		}
		if !resealed {
			t.Error("no re-formed segment in the manifest; crash missed the append")
		}
		// A fresh mount reads the whole file with the victim still dead,
		// failing over to surviving chain members.
		cl2 := fx.cluster.Mount(fx.sim.NewNode("reader"))
		h2, err := cl2.OpenFileExt(p, "/ext/f", false, false)
		if err != nil {
			t.Errorf("reopen: %v", err)
			return
		}
		buf := make([]byte, len(payload))
		if n, err := h2.Pread(p, buf, 0); err != nil || n != len(buf) {
			t.Errorf("failover pread = %d, %v", n, err)
		} else if !bytes.Equal(buf, payload) {
			t.Error("failover read mismatch")
		}
		fx.sim.Stop()
	})
	fx.sim.Go("injector", func(p *simnet.Proc) {
		for !syncStarted {
			p.Sleep(100 * time.Microsecond)
		}
		// The sync pays one metadata trip (~0.5 ms) and then pumps 3 MB over
		// ~10 ms of link time; 1 ms in, every chunk still has unacked frames,
		// so the crash lands mid-append whichever chain the victim is on.
		p.Sleep(time.Millisecond)
		victim.Crash()
	})
	run(t, fx.sim)
}

func TestChainHeadCrashMidAppend(t *testing.T) { crashMidAppend(t, 0) }
func TestChainTailCrashMidAppend(t *testing.T) { crashMidAppend(t, 2) }

// A client crash mid-flush must commit nothing: the inode keeps the old
// manifest, like an fsync that never returned.
func TestClientCrashMidFlushKeepsOldManifest(t *testing.T) {
	fx := newExtFixture(5, failParams())
	v1 := pattern(1 << 20)
	syncStarted := false
	fx.node.Go("writer", func(p *simnet.Proc) {
		h, err := fx.client.OpenFileExt(p, "/ext/f", true, true)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		h.Write(p, v1)
		if err := h.Sync(p); err != nil {
			t.Errorf("sync v1: %v", err)
		}
		h.Pwrite(p, bytes.Repeat([]byte{0xDD}, 1<<20), 0)
		syncStarted = true
		h.Sync(p) // the crash interrupts this; the proc dies inside
		t.Error("sync returned after client crash")
	})
	fx.sim.Go("injector", func(p *simnet.Proc) {
		for !syncStarted {
			p.Sleep(100 * time.Microsecond)
		}
		// The 1 MB re-write pumps for ~3.3 ms of link time; 2 ms in is
		// mid-flush, after frames have landed but before the commit.
		p.Sleep(2 * time.Millisecond)
		fx.node.Crash()
	})
	run(t, fx.sim)
	if got, ok := fx.cluster.DurableBytes("/ext/f"); !ok || !bytes.Equal(got, v1) {
		t.Errorf("old manifest not preserved across client crash (ok=%v)", ok)
	}
}
