package dfs

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"splitft/internal/simnet"
	"splitft/internal/trace"
)

// Handle is the file-handle surface shared by the flat path (*File) and
// the extent path (*ExtentFile); internal/core programs against it so an
// application doesn't care which backend a path landed on.
type Handle interface {
	Write(p *simnet.Proc, data []byte) (int, error)
	Pwrite(p *simnet.Proc, data []byte, off int64) (int, error)
	Read(p *simnet.Proc, buf []byte) (int, error)
	Pread(p *simnet.Proc, buf []byte, off int64) (int, error)
	Sync(p *simnet.Proc) error
	Close(p *simnet.Proc) error
	Size() int64
	Path() string
	DirtyBytes() int64
	SeekTo(off int64)
}

var (
	_ Handle = (*File)(nil)
	_ Handle = (*ExtentFile)(nil)
)

// extSeg maps one contiguous logical range of a file onto one extent. The
// chain membership is embedded so reads never need a metadata lookup.
type extSeg struct {
	logStart, logEnd int64
	ext              uint64
	extOff           int64
	nodes            []string
}

// extManifest is an extent-backed file's durable metadata: sorted,
// non-overlapping segments mapping the logical file onto extents. It is
// immutable once installed on the inode; a flush commits by swapping in a
// spliced clone, so a client crash mid-flush leaves the old manifest — and
// therefore the old file content — intact, exactly like an fsync that
// never returned.
type extManifest struct {
	size int64
	segs []extSeg
}

func (m *extManifest) clone() *extManifest {
	q := &extManifest{size: m.size, segs: make([]extSeg, len(m.segs))}
	copy(q.segs, m.segs)
	return q
}

// splice inserts sg, trimming older segments it overlaps: an overwrite
// (e.g. a litedb checkpoint Pwrite) appends fresh bytes to the log and
// shadows the range of whatever extent held them before.
func (m *extManifest) splice(sg extSeg) {
	out := m.segs[:0:0]
	for _, old := range m.segs {
		if old.logEnd <= sg.logStart || old.logStart >= sg.logEnd {
			out = append(out, old)
			continue
		}
		if old.logStart < sg.logStart {
			left := old
			left.logEnd = sg.logStart
			out = append(out, left)
		}
		if old.logEnd > sg.logEnd {
			right := old
			right.extOff += sg.logEnd - old.logStart
			right.logStart = sg.logEnd
			out = append(out, right)
		}
	}
	i := sort.Search(len(out), func(i int) bool { return out[i].logStart > sg.logStart })
	out = append(out, extSeg{})
	copy(out[i+1:], out[i:])
	out[i] = sg
	m.segs = out
	if sg.logEnd > m.size {
		m.size = sg.logEnd
	}
}

// ExtentFile is an open handle on an extent-backed file. Writes buffer in
// the client like the flat path; Sync packs the dirty spans into chunks
// and streams each down its extent's chain concurrently, then commits the
// manifest. Extent files skip the background writeback plane — they are
// explicit-sync append streams, the pattern every port uses for SSTables,
// checkpoints and journal chunks.
type ExtentFile struct {
	client *Client
	path   string
	df     *durableFile

	view     []byte
	resident []span
	dirty    []span
	size     int64
	offset   int64

	flushing bool
	closed   bool

	// The append tail: where the next flushed byte lands. Invalidated by a
	// failed flush (re-forms may have sealed it) so the next flush starts
	// on a fresh extent.
	tailValid bool
	tailExt   uint64
	tailOff   int64
	tailNodes []string
}

// OpenFileExt opens path on whichever backend it lives on, creating it if
// create is set and it doesn't exist — on the extent plane when extent is
// set and the plane is attached, on the flat path otherwise. Existing
// files open as whatever they were created as (the flag only matters at
// create), so readers need no knowledge of the backend.
func (cl *Client) OpenFileExt(p *simnet.Proc, path string, create, extent bool) (Handle, error) {
	if err := cl.checkAlive(); err != nil {
		return nil, err
	}
	df, ok := cl.cluster.files[path]
	if !ok {
		if !create {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
		}
		if extent && cl.cluster.ExtentsEnabled() {
			return cl.createExtentFile(p, path)
		}
		return cl.Create(p, path)
	}
	if df.ext != nil {
		return cl.openExtentFile(p, path, df)
	}
	return cl.Open(p, path)
}

func (cl *Client) createExtentFile(p *simnet.Proc, path string) (*ExtentFile, error) {
	p.Sleep(cl.cluster.params.MetaFixed)
	df := &durableFile{ext: &extManifest{}}
	cl.cluster.files[path] = df
	return &ExtentFile{client: cl, path: path, df: df}, nil
}

func (cl *Client) openExtentFile(p *simnet.Proc, path string, df *durableFile) (*ExtentFile, error) {
	p.Sleep(cl.cluster.params.MetaFixed)
	// The tail is not recovered: appends after reopen start on a fresh
	// extent (log-structured; the partially filled old tail just stays as
	// it is, referenced by the manifest).
	return &ExtentFile{client: cl, path: path, df: df, size: df.ext.size}, nil
}

// Size returns the file's current (buffered) length.
func (f *ExtentFile) Size() int64 { return f.size }

// Path returns the file's path.
func (f *ExtentFile) Path() string { return f.path }

// DirtyBytes reports how much buffered data a Sync would flush right now.
func (f *ExtentFile) DirtyBytes() int64 { return spanBytes(f.dirty) }

// SeekTo sets the cursor for Write/Read to an absolute offset.
func (f *ExtentFile) SeekTo(off int64) { f.offset = off }

// Write appends data at the cursor (buffered; durable only after Sync).
func (f *ExtentFile) Write(p *simnet.Proc, data []byte) (int, error) {
	n, err := f.Pwrite(p, data, f.offset)
	f.offset += int64(n)
	return n, err
}

// Pwrite buffers data at off. Extent files pay the local copy cost only:
// they are outside the writeback plane, so there is no dirty throttling —
// durability cost is paid where it belongs, at Sync.
func (f *ExtentFile) Pwrite(p *simnet.Proc, data []byte, off int64) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	cl := f.client
	if err := cl.checkAlive(); err != nil {
		return 0, err
	}
	tsp := p.StartSpan("dfs", "pwrite", trace.Str("path", f.path), trace.Int("bytes", int64(len(data))))
	defer p.EndSpan(tsp)
	pm := cl.cluster.params
	p.Sleep(pm.SyscallFixed + time.Duration(float64(len(data))/pm.MemBandwidth*float64(time.Second)))
	end := off + int64(len(data))
	f.view = grow(f.view, end)
	copy(f.view[off:end], data)
	f.dirty = addSpan(f.dirty, span{start: off, end: end})
	f.resident = addSpan(f.resident, span{start: off, end: end})
	if end > f.size {
		f.size = end
	}
	return len(data), nil
}

// Sync makes all buffered writes durable through chained appends.
func (f *ExtentFile) Sync(p *simnet.Proc) error {
	if f.closed {
		return ErrClosed
	}
	return f.flushExt(p)
}

// pack cuts the dirty spans into chunks, filling the append tail and
// allocating fresh extents (from the lease cache) as extents fill. Chunks
// never cross an extent boundary.
func (f *ExtentFile) pack(p *simnet.Proc, spans []span) ([]chunk, error) {
	pm := f.client.cluster.params
	var chunks []chunk
	for _, s := range spans {
		cur := s.start
		for cur < s.end {
			if !f.tailValid || f.tailOff >= pm.ExtentSize {
				id, nodes, err := f.client.allocExtent(p)
				if err != nil {
					return nil, err
				}
				f.tailValid, f.tailExt, f.tailOff, f.tailNodes = true, id, 0, nodes
			}
			take := s.end - cur
			if room := pm.ExtentSize - f.tailOff; take > room {
				take = room
			}
			chunks = append(chunks, chunk{ext: f.tailExt, extOff: f.tailOff,
				logStart: cur, data: f.view[cur : cur+take], nodes: f.tailNodes})
			f.tailOff += take
			cur += take
		}
	}
	return chunks, nil
}

// flushExt is the extent fsync: pack dirty spans into chunks, pump every
// chunk down its chain concurrently, then commit the spliced manifest.
func (f *ExtentFile) flushExt(p *simnet.Proc) error {
	cl := f.client
	if err := cl.checkAlive(); err != nil {
		return err
	}
	tsp := p.StartSpan("dfs", "fsync", trace.Str("path", f.path))
	defer p.EndSpan(tsp)
	pm := cl.cluster.params
	for f.flushing {
		p.Sleep(100 * time.Microsecond)
		if err := cl.checkAlive(); err != nil {
			return err
		}
	}
	f.flushing = true
	defer func() { f.flushing = false }()
	n := spanBytes(f.dirty)
	tsp.SetAttr(trace.Int("bytes", n))
	if n == 0 {
		p.Sleep(pm.SyncCleanFixed)
		cl.cluster.ExtentSyncs++
		return nil
	}
	spans := f.dirty
	f.dirty = nil
	restore := func() {
		for _, s := range spans {
			f.dirty = addSpan(f.dirty, s)
		}
		f.tailValid = false
	}
	chunks, err := f.pack(p, spans)
	if err != nil {
		restore()
		return err
	}
	results := make([][]extSeg, len(chunks))
	errs := make([]error, len(chunks))
	if len(chunks) == 1 {
		results[0], errs[0] = cl.writeChunk(p, chunks[0])
	} else {
		var wg simnet.WaitGroup
		wg.Add(len(chunks))
		for i := range chunks {
			i := i
			cl.pumpSeq++
			p.Go(fmt.Sprintf("dfs-chain-chunk:%d", cl.pumpSeq), func(wp *simnet.Proc) {
				defer wg.Done(wp)
				results[i], errs[i] = cl.writeChunk(wp, chunks[i])
			})
		}
		wg.Wait(p)
	}
	if cl.dead {
		// Died mid-flush: nothing commits; the inode keeps its old manifest.
		return errors.New("dfs: client died during flush")
	}
	for _, e := range errs {
		if e != nil {
			restore()
			return e
		}
	}
	// Commit: splice the new segments into a manifest clone, then install
	// it atomically on the inode (one metadata op).
	man := f.df.ext.clone()
	for _, segs := range results {
		for _, sg := range segs {
			man.splice(sg)
		}
	}
	p.Sleep(pm.MetaFixed)
	f.df.ext = man
	cl.cluster.ExtentSyncs++
	cl.cluster.ExtentBytes += n
	// The tail continues from the last segment written (a re-form may have
	// moved it off the extent pack chose).
	last := results[len(results)-1]
	sg := last[len(last)-1]
	f.tailExt = sg.ext
	f.tailOff = sg.extOff + (sg.logEnd - sg.logStart)
	f.tailNodes = sg.nodes
	f.tailValid = f.tailOff < pm.ExtentSize
	return nil
}

// Read reads from the cursor.
func (f *ExtentFile) Read(p *simnet.Proc, buf []byte) (int, error) {
	n, err := f.Pread(p, buf, f.offset)
	f.offset += int64(n)
	return n, err
}

// Pread reads len(buf) bytes at off (short at EOF). Locally resident
// ranges cost a memory copy; the rest is fetched from the extents' chain
// members through the manifest.
func (f *ExtentFile) Pread(p *simnet.Proc, buf []byte, off int64) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	cl := f.client
	if err := cl.checkAlive(); err != nil {
		return 0, err
	}
	if off >= f.size {
		return 0, nil
	}
	tsp := p.StartSpan("dfs", "pread", trace.Str("path", f.path), trace.Int("bytes", int64(len(buf))))
	defer p.EndSpan(tsp)
	n := int64(len(buf))
	if off+n > f.size {
		n = f.size - off
	}
	want := span{start: off, end: off + n}
	for _, miss := range missingRanges(f.resident, want) {
		if err := f.fetchRange(p, miss); err != nil {
			return 0, err
		}
	}
	pm := cl.cluster.params
	p.Sleep(pm.SyscallFixed + time.Duration(float64(n)/pm.MemBandwidth*float64(time.Second)))
	f.view = grow(f.view, off+n)
	copy(buf[:n], f.view[off:off+n])
	return int(n), nil
}

// missingRanges returns the parts of want not covered by the sorted,
// disjoint resident spans.
func missingRanges(resident []span, want span) []span {
	var out []span
	cur := want.start
	for _, r := range resident {
		if r.end <= cur {
			continue
		}
		if r.start >= want.end {
			break
		}
		if r.start > cur {
			out = append(out, span{start: cur, end: r.start})
		}
		if r.end > cur {
			cur = r.end
		}
	}
	if cur < want.end {
		out = append(out, span{start: cur, end: want.end})
	}
	return out
}

// fetchRange pulls one missing logical range into the view from the
// extents holding it (manifest holes read as zeros).
func (f *ExtentFile) fetchRange(p *simnet.Proc, s span) error {
	f.view = grow(f.view, s.end)
	for _, sg := range f.df.ext.segs {
		if sg.logEnd <= s.start || sg.logStart >= s.end {
			continue
		}
		lo, hi := s.start, s.end
		if sg.logStart > lo {
			lo = sg.logStart
		}
		if sg.logEnd < hi {
			hi = sg.logEnd
		}
		data, err := f.client.readExtentRange(p, sg, lo-sg.logStart, hi-lo)
		if err != nil {
			return err
		}
		copy(f.view[lo:hi], data)
	}
	f.resident = addSpan(f.resident, s)
	return nil
}

// Close flushes remaining dirty data (extent files have no background
// writeback to hand it to) and releases the handle.
func (f *ExtentFile) Close(p *simnet.Proc) error {
	if f.closed {
		return ErrClosed
	}
	if f.DirtyBytes() > 0 && !f.client.dead {
		if err := f.flushExt(p); err != nil {
			return err
		}
	}
	f.closed = true
	return nil
}
