package dfs

import (
	"errors"
	"fmt"
	"time"

	"splitft/internal/simnet"
	"splitft/internal/wire"
)

// Client-side half of the extent plane: ID allocation with a lease cache,
// deterministic chain selection, and the windowed frame pump that streams
// one chunk down its chain.

// ExtentMeta is the extent-metadata service a mount allocates and seals
// extents through. The full stack wires a sessionless controller client
// (the sharded controller owns /dfs/<vol>/...); standalone dfs tests fall
// back to a cluster-local allocator that models only the metadata cost.
type ExtentMeta interface {
	// AllocIDs reserves n consecutive extent IDs and returns the first.
	AllocIDs(p *simnet.Proc, n int) (uint64, error)
	// Seal records an extent's chain membership and committed length when a
	// failed append re-forms onto a fresh extent. The length is the client's
	// acked watermark for its append stream (recovery bookkeeping; reads go
	// through file manifests, never through seal records).
	Seal(p *simnet.Proc, id uint64, nodes []string, length int64) error
}

// extAllocBatch is how many extent IDs one metadata round trip reserves;
// the lease cache hands them out locally so a multi-extent flush pays for
// allocation once, not per extent.
const extAllocBatch = 32

// extMaxRetries bounds chain re-forms per chunk before the flush fails.
const extMaxRetries = 3

// chainProbation is how long a blamed chain member stays out of chain
// selection. Depth-scaled timeouts blame slow-but-alive members exactly
// like crashed ones, so blame must expire: a gray node re-enters the pick
// set after the window instead of being excluded for the mount's lifetime.
const chainProbation = 2 * time.Second

// chainReformAmnesty caps consecutive chain re-forms before the suspect set
// is cleared wholesale. Under a widespread gray failure every node ends up
// blamed; without amnesty the client re-forms onto an ever-shrinking pool
// until chainFor starves even though the fabric has recovered.
const chainReformAmnesty = 3

// localExtentMeta is the controller-less allocator: a counter on the
// cluster, priced at one metadata op per call.
type localExtentMeta struct{ es *extentStore }

func (m localExtentMeta) AllocIDs(p *simnet.Proc, n int) (uint64, error) {
	p.Sleep(m.es.c.params.MetaFixed)
	first := m.es.nextLocal
	m.es.nextLocal += uint64(n)
	return first, nil
}

func (m localExtentMeta) Seal(p *simnet.Proc, id uint64, nodes []string, length int64) error {
	p.Sleep(m.es.c.params.MetaFixed)
	m.es.sealedLocal[id] = length
	return nil
}

// extMeta returns (lazily building) this mount's metadata client.
func (cl *Client) extMeta() ExtentMeta {
	if cl.meta == nil {
		if f := cl.cluster.extents.metaFactory; f != nil {
			cl.meta = f(cl.node)
		} else {
			cl.meta = localExtentMeta{es: cl.cluster.extents}
		}
	}
	return cl.meta
}

// allocExtent returns a fresh extent ID (from the lease cache) and the
// chain that will hold it.
func (cl *Client) allocExtent(p *simnet.Proc) (uint64, []string, error) {
	if cl.allocNext >= cl.allocEnd {
		first, err := cl.extMeta().AllocIDs(p, extAllocBatch)
		if err != nil {
			return 0, nil, err
		}
		cl.allocNext, cl.allocEnd = first, first+extAllocBatch
	}
	id := cl.allocNext
	cl.allocNext++
	nodes, err := cl.chainFor(id)
	if err != nil {
		return 0, nil, err
	}
	return id, nodes, nil
}

// chainFor picks extent id's chain deterministically: ChainLength distinct
// nodes scanning from (id*ChainLength) mod N, skipping unexpired suspects.
// The stride spreads consecutive extents' chain slots evenly over the
// nodes, so a multi-extent flush loads every link equally. When suspects
// leave fewer than ChainLength candidates, the whole suspect set is
// re-admitted — capacity beats blame: a chain over recently-blamed nodes
// can still make progress, a starved allocator cannot.
func (cl *Client) chainFor(id uint64) ([]string, error) {
	es := cl.cluster.extents
	k := cl.cluster.params.ChainLength
	if k < 1 {
		k = 1
	}
	n := len(es.nodes)
	start := int(id * uint64(k) % uint64(n))
	pick := func() []string {
		out := make([]string, 0, k)
		for i := 0; i < n && len(out) < k; i++ {
			en := es.nodes[(start+i)%n]
			if cl.isSuspect(en.addr) {
				continue
			}
			out = append(out, en.addr)
		}
		return out
	}
	out := pick()
	if len(out) < k && len(cl.suspects) > 0 {
		cl.suspects = nil
		out = pick()
	}
	if len(out) < k {
		return nil, fmt.Errorf("dfs: extent chain needs %d nodes, have %d", k, n)
	}
	return out, nil
}

// suspect excludes a chain member from chain picks on this mount until the
// probation window expires. Like NCL's suspect cooldown this trades
// capacity for not re-forming onto a flapping node — but the blame is
// timeout-based and cannot distinguish crashed from merely slow, so it must
// not be permanent. Mounts are as long-lived as their node, so the set
// dies with a client crash.
func (cl *Client) suspect(addr string) {
	if addr == "" {
		return
	}
	if cl.suspects == nil {
		cl.suspects = make(map[string]time.Duration)
	}
	cl.suspects[addr] = cl.cluster.sim.Now() + chainProbation
}

// isSuspect reports whether addr is inside its probation window, lazily
// expiring stale entries.
func (cl *Client) isSuspect(addr string) bool {
	until, ok := cl.suspects[addr]
	if !ok {
		return false
	}
	if cl.cluster.sim.Now() >= until {
		delete(cl.suspects, addr)
		return false
	}
	return true
}

// chunk is one contiguous append stream: a logical range of the file
// destined for one extent at one offset, on one chain.
type chunk struct {
	ext      uint64
	extOff   int64
	logStart int64
	data     []byte
	nodes    []string
}

// pumpFrames streams ch down its chain in ChainFrame-sized frames with a
// ChainWindow-deep window, and returns the contiguous acked prefix. On
// failure, suspect names the chain member to blame (the head when the
// head itself is unreachable; whoever a ChainNodeError blames otherwise).
func (cl *Client) pumpFrames(p *simnet.Proc, ch chunk) (acked int64, suspect string, err error) {
	pm := cl.cluster.params
	frame := pm.ChainFrame
	if frame <= 0 || frame > len(ch.data) {
		frame = len(ch.data)
	}
	nframes := (len(ch.data) + frame - 1) / frame
	ackedArr := make([]bool, nframes)
	next := 0
	stop := false
	var failErr error
	var failSuspect string
	worker := func(wp *simnet.Proc) {
		for !stop {
			i := next
			if i >= nframes {
				return
			}
			next++
			lo := i * frame
			hi := lo + frame
			if hi > len(ch.data) {
				hi = len(ch.data)
			}
			data := ch.data[lo:hi]
			// Serialize the frame onto the client's egress link, then hand it
			// to the chain head; the nested forwards ack back up the chain as
			// the Call returns.
			sleepUntil(wp, reservePipe(cl.cluster.sim, &cl.extEgressBusy, int64(len(data)), pm.LinkBandwidth))
			if cl.dead {
				stop = true
				if failErr == nil {
					failErr = errors.New("dfs: client died during chained append")
				}
				return
			}
			_, cerr := wire.CallTimeout[extAppendResp](wp, cl.cluster.sim.Net(), cl.node, ch.nodes[0],
				extAppendReq{Ext: ch.ext, Off: ch.extOff + int64(lo), Data: data, Rest: ch.nodes[1:]},
				chainHopTimeout(len(ch.nodes)-1))
			if cerr != nil {
				stop = true
				if failErr == nil {
					failErr = cerr
					var cne *ChainNodeError
					if errors.As(cerr, &cne) {
						failSuspect = cne.Addr
					} else {
						failSuspect = ch.nodes[0]
					}
				}
				return
			}
			ackedArr[i] = true
		}
	}
	w := pm.ChainWindow
	if w > nframes {
		w = nframes
	}
	if w <= 1 {
		worker(p)
	} else {
		var wg simnet.WaitGroup
		wg.Add(w)
		for k := 0; k < w; k++ {
			cl.pumpSeq++
			p.Go(fmt.Sprintf("dfs-chain-pump:%d", cl.pumpSeq), func(wp *simnet.Proc) {
				defer wg.Done(wp)
				worker(wp)
			})
		}
		wg.Wait(p)
	}
	for i := 0; i < nframes; i++ {
		if !ackedArr[i] {
			break
		}
		hi := (i + 1) * frame
		if hi > len(ch.data) {
			hi = len(ch.data)
		}
		acked = int64(hi)
	}
	return acked, failSuspect, failErr
}

// writeChunk pumps one chunk to durability, re-forming onto a fresh chain
// when a member fails mid-append: the suspect is excluded, the broken
// extent sealed at the acked watermark, and the remainder retried on a new
// extent. Returns the manifest segments covering ch's logical range (more
// than one after a re-form).
func (cl *Client) writeChunk(p *simnet.Proc, ch chunk) ([]extSeg, error) {
	var segs []extSeg
	for attempt := 0; ; attempt++ {
		acked, suspect, err := cl.pumpFrames(p, ch)
		if acked > 0 {
			segs = append(segs, extSeg{
				logStart: ch.logStart, logEnd: ch.logStart + acked,
				ext: ch.ext, extOff: ch.extOff, nodes: ch.nodes,
			})
		}
		if err == nil {
			cl.reforms = 0
			return segs, nil
		}
		if cl.dead {
			return segs, err
		}
		cl.suspect(suspect)
		// Consecutive re-forms without a completed chunk mean the blame is
		// not converging (gray fabric, not one bad node): amnesty the whole
		// suspect set so healthy nodes blamed by slow hops come back.
		if cl.reforms++; cl.reforms > chainReformAmnesty {
			cl.suspects = nil
			cl.reforms = 0
		}
		if serr := cl.extMeta().Seal(p, ch.ext, ch.nodes, ch.extOff+acked); serr != nil {
			return segs, serr
		}
		if attempt >= extMaxRetries {
			return segs, err
		}
		id, nodes, aerr := cl.allocExtent(p)
		if aerr != nil {
			return segs, aerr
		}
		ch = chunk{ext: id, extOff: 0, logStart: ch.logStart + acked,
			data: ch.data[acked:], nodes: nodes}
	}
}

// readExtentRange fetches n bytes at off within a manifest segment's
// extent, falling over to the next chain member when one is unreachable.
func (cl *Client) readExtentRange(p *simnet.Proc, sg extSeg, off, n int64) ([]byte, error) {
	var lastErr error
	for _, addr := range sg.nodes {
		resp, err := wire.Call[extReadResp](p, cl.cluster.sim.Net(), cl.node, addr,
			extReadReq{Ext: sg.ext, Off: sg.extOff + off, N: n})
		if err == nil {
			return resp.Data, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("dfs: extent %d unreadable on all %d chain members: %w",
		sg.ext, len(sg.nodes), lastErr)
}
