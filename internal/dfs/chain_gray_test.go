package dfs

import (
	"bytes"
	"testing"
	"time"

	"splitft/internal/simnet"
)

// Regression: a gray (slow-but-alive) mid chain member is blamed by the
// depth-scaled hop timeout exactly like a crashed one. The write must
// succeed by re-forming — but the blame must expire: after the link heals
// and the probation window passes, the node re-enters chain selection
// instead of being excluded for the mount's lifetime.
func TestGrayMidNodeProbationAndReadmission(t *testing.T) {
	fx := newExtFixture(6, failParams())
	payload := pattern(1 << 20) // exactly one 1 MiB extent
	fx.node.Go("writer", func(p *simnet.Proc) {
		h, err := fx.client.OpenFileExt(p, "/ext/g", true, true)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		// Extent 0's chain is sn0 -> sn1 -> sn2. Make the head->mid hop gray:
		// 500 ms one-way exceeds the mid hop's 400 ms budget, so the head
		// times out on a healthy node and blames it.
		head, mid := fx.sns[0], fx.sns[1]
		fx.sim.Net().SetLinkLatency(head, mid, 500*time.Millisecond)
		h.Write(p, payload)
		if err := h.Sync(p); err != nil {
			t.Errorf("sync across the gray hop: %v", err)
		}
		if got, ok := fx.cluster.DurableBytes("/ext/g"); !ok || !bytes.Equal(got, payload) {
			t.Errorf("durable mismatch after gray re-form (ok=%v)", ok)
		}
		if !fx.client.isSuspect(mid.Name()) {
			t.Errorf("%s not under probation after the blamed timeout", mid.Name())
		}

		// Heal the link and wait out the probation window: the blame expires.
		fx.sim.Net().SetLinkLatency(head, mid, 0)
		p.Sleep(chainProbation + 100*time.Millisecond)
		if fx.client.isSuspect(mid.Name()) {
			t.Errorf("%s still suspect after the probation window", mid.Name())
		}

		// And the healed node actually serves chains again: the next extents
		// (IDs 2, 3 -> chains starting at sn6 and sn1) include it.
		h.Write(p, pattern(2<<20))
		if err := h.Sync(p); err != nil {
			t.Errorf("post-heal sync: %v", err)
		}
		readmitted := false
		for _, sg := range fx.cluster.files["/ext/g"].ext.segs {
			if sg.ext < 2 {
				continue
			}
			for _, addr := range sg.nodes {
				if addr == mid.Name() {
					readmitted = true
				}
			}
		}
		if !readmitted {
			t.Errorf("healed node %s never re-admitted to a chain", mid.Name())
		}
		fx.sim.Stop()
	})
	run(t, fx.sim)
}

// When blame piles up until fewer than ChainLength candidates remain,
// chainFor re-admits the whole suspect set instead of starving: capacity
// beats blame. (Before the fix this returned an error forever, even after
// every blamed node recovered.)
func TestChainForReadmitsWhenSuspectsStarveSelection(t *testing.T) {
	fx := newExtFixture(7, failParams()) // 8 nodes, ChainLength 3
	fx.node.Go("test", func(p *simnet.Proc) {
		for i := 0; i < 6; i++ {
			fx.client.suspect(fx.sns[i].Name())
		}
		nodes, err := fx.client.chainFor(0)
		if err != nil {
			t.Errorf("chainFor starved with 2 clean nodes of 8: %v", err)
		}
		if len(nodes) != 3 {
			t.Errorf("chainFor returned %d nodes, want 3", len(nodes))
		}
		if len(fx.client.suspects) != 0 {
			t.Errorf("suspect set not cleared by re-admission: %v", fx.client.suspects)
		}
		fx.sim.Stop()
	})
	run(t, fx.sim)
}
