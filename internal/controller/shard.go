package controller

import (
	"strings"

	"splitft/internal/wire"
)

// Sharding splits the controller's znode tree across multiple Raft groups
// (ChubaoFS-style multi-raft metanodes) so thousands of client WALs stop
// funneling their session keep-alives and ap-map updates through a single
// leader's log. The partition is by application: group 0 (the root group)
// owns the peer registry (/peers/...) and the shard directory (/shards),
// and groups 1..N each own a contiguous range of the 32-bit FNV-1a hash of
// the application name, covering that application's ap-map entries
// (/apps/<app>/...) and its single-instance lock (/servers/<app>). Keeping
// an application's files and lock on one shard preserves the per-app
// guarantees the paper gets from ZooKeeper — the lock, its session, and the
// ephemeral behavior all live in one replicated state machine.
//
// Sessions are per shard: a client lazily establishes its session on each
// shard it creates ephemerals on, and its keep-alive proc services all of
// them. Expiry therefore also runs per shard, which is exactly the fault
// isolation wanted — one shard's leader election only stalls the sessions
// (and ephemerals) homed on that shard.

// ShardRange describes one group's slice of the app-hash space. Hi is
// inclusive; the root group carries an empty range (Lo > Hi).
type ShardRange struct {
	Group  int
	Lo, Hi uint32
}

func (r ShardRange) contains(h uint32) bool { return h >= r.Lo && h <= r.Hi }

// shardLayout computes the group layout for n configured shards. n <= 1
// keeps everything in one group (the paper's setup); n > 1 yields the root
// group plus n data groups slicing the hash space evenly.
func shardLayout(n int) []ShardRange {
	if n <= 1 {
		return []ShardRange{{Group: 0, Lo: 0, Hi: ^uint32(0)}}
	}
	out := make([]ShardRange, 0, n+1)
	out = append(out, ShardRange{Group: 0, Lo: 1, Hi: 0}) // root: empty app range
	step := (uint64(1) << 32) / uint64(n)
	for g := 1; g <= n; g++ {
		lo := uint32(uint64(g-1) * step)
		hi := ^uint32(0)
		if g < n {
			hi = uint32(uint64(g)*step - 1)
		}
		out = append(out, ShardRange{Group: g, Lo: lo, Hi: hi})
	}
	return out
}

// fnv32 is FNV-1a over the app name; inlined (vs hash/fnv) so routing on
// the op hot path allocates nothing.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// routeKey extracts the routing key from a znode path: per-application
// paths (/apps/<app>/... including list prefixes, and /servers/<app>) route
// by application, per-volume extent metadata (/dfs/<vol>/...) routes by
// volume; everything else — the peer registry, the shard directory — is
// meta state homed on the root group. Volumes hash into the same key space
// as applications (the prefix keeps "dfs:cephfs" distinct from an app
// literally named cephfs), so extent allocation spreads over the data
// shards like any other tenant.
func routeKey(path string) (app string, meta bool) {
	switch {
	case strings.HasPrefix(path, "/apps/"):
		rest := path[len("/apps/"):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		return rest, false
	case strings.HasPrefix(path, "/servers/"):
		return path[len("/servers/"):], false
	case strings.HasPrefix(path, "/dfs/"):
		rest := path[len("/dfs/"):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		return "dfs:" + rest, false
	default:
		return "", true
	}
}

// shardDirPath is the root-group znode holding the shard directory.
const shardDirPath = "/shards"

// shardDirMsg encodes the layout as the /shards znode value: one Sub entry
// per range with (group, lo, hi) in the U slots.
func shardDirMsg(shards []ShardRange) wire.Msg {
	m := wire.Msg{Code: codeShardDir}
	m.Sub = make([]wire.Msg, len(shards))
	for i, sr := range shards {
		m.Sub[i] = wire.Msg{Code: codeShardDir,
			U: [4]uint64{uint64(sr.Group), uint64(sr.Lo), uint64(sr.Hi)}}
	}
	return m
}

// parseShardDir decodes a codeShardDir znode value.
func parseShardDir(m wire.Msg) []ShardRange {
	out := make([]ShardRange, len(m.Sub))
	for i, s := range m.Sub {
		out[i] = ShardRange{Group: int(s.U[0]), Lo: uint32(s.U[1]), Hi: uint32(s.U[2])}
	}
	return out
}
