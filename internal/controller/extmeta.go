package controller

import (
	"errors"
	"fmt"

	"splitft/internal/simnet"
	"splitft/internal/wire"
)

// Extent metadata for the dfs extent plane, on the shard layout: every
// volume's state lives under /dfs/<vol>/ and routes by volume hash (see
// routeKey), so extent allocation scales with the controller exactly like
// the per-application ap-map does. Two kinds of znode:
//
//   - /dfs/<vol>/next — the volume's extent-ID counter, advanced by a
//     compare-and-set loop (clients allocate in batches and lease the IDs
//     locally, so the loop runs once per ~32 extents, not per extent);
//   - /dfs/<vol>/ext/<id> — a seal record: chain membership and the acked
//     length at which a failed append abandoned the extent.
//
// These ops are sessionless — nothing here is ephemeral, so an extent
// client costs the controller no keep-alive traffic.

// Znode value codes for the extent plane (controller 0x30-0x3f range).
const (
	codeExtCounter wire.Code = 0x39
	codeExtEntry   wire.Code = 0x3a
)

// ExtentEntry is the value stored at /dfs/<vol>/ext/<id>.
type ExtentEntry struct {
	Nodes  []string // chain membership, head first
	Length int64    // committed (acked) length
	Sealed bool
}

// MarshalWire encodes the entry as a flat message.
func (e ExtentEntry) MarshalWire() wire.Msg {
	m := wire.Msg{Code: codeExtEntry, Strs: e.Nodes}
	m.SetInt(0, e.Length)
	m.SetBool(1, e.Sealed)
	return m
}

// UnmarshalWire decodes a codeExtEntry message.
func (e *ExtentEntry) UnmarshalWire(m wire.Msg) error {
	if m.Code != codeExtEntry {
		return fmt.Errorf("controller: decoding %#x as ExtentEntry", uint16(m.Code))
	}
	e.Nodes = m.Strs
	e.Length = m.Int(0)
	e.Sealed = m.Bool(1)
	return nil
}

func extCounterPath(vol string) string { return "/dfs/" + vol + "/next" }

func extEntryPath(vol string, id uint64) string {
	return fmt.Sprintf("/dfs/%s/ext/%d", vol, id)
}

// AllocExtentIDs reserves n consecutive extent IDs for vol and returns the
// first, via compare-and-set on the volume's counter znode. Conflicts
// (another client won the CAS) retry; each round trip is one linearizable
// command on the volume's shard.
func (c *Client) AllocExtentIDs(p *simnet.Proc, vol string, n int) (uint64, error) {
	path := extCounterPath(vol)
	for {
		res, err := c.run(p, path, false, cmdGet{Path: path}.MarshalWire())
		if err != nil {
			return 0, err
		}
		if !res.Found {
			m := wire.Msg{Code: codeExtCounter, U: [4]uint64{uint64(n)}}
			_, err := c.run(p, path, false, cmdCreate{Path: path, Data: m}.MarshalWire())
			if errors.Is(err, ErrExists) {
				continue // lost the creation race; re-read and CAS
			}
			if err != nil {
				return 0, err
			}
			return 0, nil
		}
		next := res.Data.U[0]
		m := wire.Msg{Code: codeExtCounter, U: [4]uint64{next + uint64(n)}}
		_, err = c.run(p, path, false, cmdSet{Path: path, Data: m, Version: res.Version}.MarshalWire())
		if errors.Is(err, ErrBadVersion) {
			continue // lost the CAS race; re-read
		}
		if err != nil {
			return 0, err
		}
		return next, nil
	}
}

// SealExtent records an extent's chain membership and committed length
// (create-or-set: the record may exist from an earlier partial seal).
func (c *Client) SealExtent(p *simnet.Proc, vol string, id uint64, nodes []string, length int64) error {
	path := extEntryPath(vol, id)
	data := ExtentEntry{Nodes: nodes, Length: length, Sealed: true}.MarshalWire()
	_, err := c.run(p, path, false, cmdCreate{Path: path, Data: data}.MarshalWire())
	if errors.Is(err, ErrExists) {
		_, err = c.run(p, path, false, cmdSet{Path: path, Data: data, Version: -1}.MarshalWire())
	}
	return err
}

// GetExtent reads an extent's seal record.
func (c *Client) GetExtent(p *simnet.Proc, vol string, id uint64) (ExtentEntry, bool, error) {
	res, err := c.run(p, extEntryPath(vol, id), false, cmdGet{Path: extEntryPath(vol, id)}.MarshalWire())
	if err != nil {
		return ExtentEntry{}, false, err
	}
	if !res.Found {
		return ExtentEntry{}, false, nil
	}
	var e ExtentEntry
	if err := e.UnmarshalWire(res.Data); err != nil {
		return ExtentEntry{}, false, err
	}
	return e, true, nil
}

// ExtentMetaClient scopes a controller client to one volume's extent
// metadata. It structurally satisfies dfs.ExtentMeta, so the harness can
// hand it straight to the storage layer without this package importing it.
type ExtentMetaClient struct {
	c   *Client
	vol string
}

// ExtentMeta returns the vol-scoped extent-metadata view of this client.
func (c *Client) ExtentMeta(vol string) *ExtentMetaClient {
	return &ExtentMetaClient{c: c, vol: vol}
}

// AllocIDs reserves n consecutive extent IDs and returns the first.
func (m *ExtentMetaClient) AllocIDs(p *simnet.Proc, n int) (uint64, error) {
	return m.c.AllocExtentIDs(p, m.vol, n)
}

// Seal records an extent's chain membership and committed length.
func (m *ExtentMetaClient) Seal(p *simnet.Proc, id uint64, nodes []string, length int64) error {
	return m.c.SealExtent(p, m.vol, id, nodes, length)
}
