package controller

import (
	"errors"
	"testing"
	"time"

	"splitft/internal/simnet"
)

// newShardedFixture builds a controller whose znode tree is partitioned
// across `shards` data Raft groups plus the root group.
func newShardedFixture(seed int64, shards int) *fixture {
	s := simnet.New(seed)
	nodes := []*simnet.Node{s.NewNode("ctrl0"), s.NewNode("ctrl1"), s.NewNode("ctrl2")}
	cfg := DefaultConfig()
	cfg.Shards = shards
	svc := Start(s, nodes, cfg)
	return &fixture{sim: s, svc: svc, cNodes: nodes}
}

// dataGroupFor resolves the data group owning an app's paths.
func dataGroupFor(svc *Service, app string) int {
	h := fnv32(app)
	for _, sr := range svc.shards {
		if sr.Group != 0 && sr.contains(h) {
			return sr.Group
		}
	}
	return -1
}

// TestShardLayoutCoversHashSpace checks the static layout: group 0 owns the
// meta range, the data ranges tile the 32-bit hash space contiguously with
// no gaps or overlaps, and routing sends app paths to data groups only.
func TestShardLayoutCoversHashSpace(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8} {
		shards := shardLayout(n)
		if len(shards) != n+1 {
			t.Fatalf("shards=%d: %d ranges, want %d", n, len(shards), n+1)
		}
		if shards[0].Group != 0 {
			t.Fatalf("shards=%d: first range is group %d, want root", n, shards[0].Group)
		}
		var next uint32
		for i, sr := range shards[1:] {
			if sr.Group != i+1 {
				t.Errorf("shards=%d: range %d has group %d", n, i, sr.Group)
			}
			if sr.Lo != next {
				t.Errorf("shards=%d: range %d starts at %#x, want %#x", n, i, sr.Lo, next)
			}
			if sr.Hi < sr.Lo {
				t.Errorf("shards=%d: range %d inverted [%#x,%#x]", n, i, sr.Lo, sr.Hi)
			}
			next = sr.Hi + 1
		}
		if shards[len(shards)-1].Hi != ^uint32(0) {
			t.Errorf("shards=%d: last range ends at %#x", n, shards[len(shards)-1].Hi)
		}
		// Every app hash lands in exactly one data range.
		for _, app := range []string{"app1", "kvstore", "redstore", "scale0042", "x"} {
			h := fnv32(app)
			owners := 0
			for _, sr := range shards[1:] {
				if sr.contains(h) {
					owners++
				}
			}
			if owners != 1 {
				t.Errorf("shards=%d: app %q owned by %d data ranges", n, app, owners)
			}
		}
	}
}

// TestShardedSessionExpiryEphemeralOnDataShard checks that session state and
// the expiry scan work on non-root shards: an instance lock (an ephemeral on
// the app's data group) must disappear after its owner's session expires
// there, without any help from the root group.
func TestShardedSessionExpiryEphemeralOnDataShard(t *testing.T) {
	fx := newShardedFixture(11, 4)
	n1 := fx.sim.NewNode("inst1")
	n2 := fx.sim.NewNode("inst2")
	fx.sim.Go("test", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		const app = "app1"
		if g := dataGroupFor(fx.svc, app); g <= 0 {
			t.Fatalf("app %q routed to group %d, want a data group", app, g)
		}
		c1 := NewClient(fx.svc, n1, app+"-server", 0)
		if err := c1.StartSession(p); err != nil {
			t.Fatalf("session: %v", err)
		}
		if err := c1.AcquireServerLock(p, app); err != nil {
			t.Fatalf("acquire: %v", err)
		}
		n1.Crash()
		// Same fencing token: blocked while the ephemeral survives.
		c2 := NewClient(fx.svc, n2, app+"-server", 0)
		if err := c2.StartSession(p); err != nil {
			t.Fatalf("session 2: %v", err)
		}
		if err := c2.AcquireServerLock(p, app); !errors.Is(err, ErrFenced) {
			t.Fatalf("lock free before expiry: %v", err)
		}
		p.Sleep(3 * fx.svc.cfg.SessionTimeout)
		if err := c2.AcquireServerLock(p, app); err != nil {
			t.Fatalf("acquire after expiry: %v", err)
		}
		fx.sim.Stop()
	})
	fx.run(t, time.Minute)
}

// TestShardLeaderFailoverMidReplacement crashes the Raft leader of the data
// group owning an app while a client is mid-way through a WAL replacement
// (ap-map update, delete, re-create). The ops must ride out the election on
// that one shard and the node must rejoin cleanly.
func TestShardLeaderFailoverMidReplacement(t *testing.T) {
	fx := newShardedFixture(12, 4)
	appNode := fx.sim.NewNode("app")
	fx.sim.Go("test", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		const app = "app1"
		g := dataGroupFor(fx.svc, app)
		if g <= 0 {
			t.Fatalf("app %q routed to group %d, want a data group", app, g)
		}
		c := NewClient(fx.svc, appNode, app, 0)
		v, err := c.SetAppFile(p, app, "wal-0", FileEntry{Peers: []string{"p1", "p2", "p3"}, Epoch: 1}, -1)
		if err != nil {
			t.Fatalf("set before failover: %v", err)
		}
		// Crash the node leading the app's group.
		var crashed *simnet.Node
		for i, n := range fx.cNodes {
			if fx.svc.replicas[n.Name()][g].IsLeader() {
				crashed = fx.cNodes[i]
				break
			}
		}
		if crashed == nil {
			t.Fatal("no leader for data group")
		}
		crashed.Crash()
		// The replacement sequence continues against the shard's new leader:
		// CAS the entry (peer swap), then rotate (delete + re-create).
		if _, err := c.SetAppFile(p, app, "wal-0", FileEntry{Peers: []string{"p1", "p2", "p4"}, Epoch: 2}, v); err != nil {
			t.Fatalf("cas during failover: %v", err)
		}
		if err := c.DeleteAppFile(p, app, "wal-0"); err != nil {
			t.Fatalf("delete during failover: %v", err)
		}
		if _, err := c.SetAppFile(p, app, "wal-1", FileEntry{Peers: []string{"p1", "p2", "p4"}, Epoch: 2}, -1); err != nil {
			t.Fatalf("create during failover: %v", err)
		}
		crashed.Restart()
		fx.svc.RestartNode(crashed)
		p.Sleep(time.Second)
		files, err := c.ListAppFiles(p, app)
		if err != nil || len(files) != 1 {
			t.Fatalf("list after rejoin: %v files=%v", err, files)
		}
		if e := files["wal-1"]; e.Epoch != 2 {
			t.Fatalf("wal-1 entry = %+v", e)
		}
		fx.sim.Stop()
	})
	fx.run(t, time.Minute)
}

// TestWrongShardRetryRefreshesDirectory poisons a client's cached shard
// directory so its next proposal lands on a group that does not own the
// path. The owning check at apply time must reject it with ErrWrongShard and
// the client must refetch the directory and succeed transparently.
func TestWrongShardRetryRefreshesDirectory(t *testing.T) {
	fx := newShardedFixture(13, 4)
	appNode := fx.sim.NewNode("app")
	fx.sim.Go("test", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		c := NewClient(fx.svc, appNode, "app1", 0)
		if _, err := c.SetAppFile(p, "app1", "f", FileEntry{Epoch: 1}, -1); err != nil {
			t.Fatalf("set: %v", err)
		}
		if len(c.dir) != len(fx.svc.shards) {
			t.Fatalf("dir cache has %d ranges, want %d", len(c.dir), len(fx.svc.shards))
		}
		// Rotate the data groups in the cached directory: every app path now
		// resolves to a group that does not own it.
		poison := append([]ShardRange(nil), c.dir...)
		n := len(poison) - 1
		for i := 1; i <= n; i++ {
			poison[i].Group = 1 + i%n
		}
		c.dir = poison
		for _, app := range []string{"app1", "kvstore", "redstore"} {
			if _, err := c.SetAppFile(p, app, "g", FileEntry{Epoch: 1}, -1); err != nil {
				t.Fatalf("set %s through poisoned directory: %v", app, err)
			}
			e, _, found, err := c.GetAppFile(p, app, "g")
			if err != nil || !found || e.Epoch != 1 {
				t.Fatalf("get %s after retry: %+v %v %v", app, found, e, err)
			}
		}
		// The retry path must have replaced the poisoned cache with the
		// published layout.
		for i, sr := range c.dir {
			if sr != fx.svc.shards[i] {
				t.Fatalf("dir[%d] = %+v, want %+v", i, sr, fx.svc.shards[i])
			}
		}
		fx.sim.Stop()
	})
	fx.run(t, time.Minute)
}

// TestExtentMetaOnShardedController exercises the /dfs/<vol>/ extent paths
// on a sharded controller: volume routing lands on a data group, batched
// ID allocation is a CAS loop that hands out disjoint ranges to competing
// clients, and seal records round-trip.
func TestExtentMetaOnShardedController(t *testing.T) {
	fx := newShardedFixture(21, 4)
	n1 := fx.sim.NewNode("dfs-client-1")
	n2 := fx.sim.NewNode("dfs-client-2")
	fx.sim.Go("test", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		// Volume paths must route by volume to a data group, and volumes
		// must not collide with a same-named application.
		app, meta := routeKey("/dfs/cephfs/next")
		if meta || app != "dfs:cephfs" {
			t.Fatalf("routeKey(/dfs/cephfs/next) = %q, %v", app, meta)
		}
		if a2, _ := routeKey("/apps/cephfs/f"); a2 == app {
			t.Fatal("volume key collides with app key")
		}
		if g := dataGroupFor(fx.svc, "dfs:cephfs"); g <= 0 {
			t.Fatalf("volume routed to group %d, want a data group", g)
		}
		c1 := NewClient(fx.svc, n1, "dfs-1", 0)
		c2 := NewClient(fx.svc, n2, "dfs-2", 0)
		// Interleaved batch allocations must return disjoint ID ranges.
		seen := map[uint64]string{}
		clients := []struct {
			name string
			c    *Client
		}{{"c1", c1}, {"c2", c2}}
		for i := 0; i < 3; i++ {
			for _, cc := range clients {
				name, c := cc.name, cc.c
				first, err := c.AllocExtentIDs(p, "cephfs", 8)
				if err != nil {
					t.Fatalf("%s alloc: %v", name, err)
				}
				for id := first; id < first+8; id++ {
					if owner, dup := seen[id]; dup {
						t.Fatalf("id %d allocated to both %s and %s", id, owner, name)
					}
					seen[id] = name
				}
			}
		}
		if len(seen) != 48 {
			t.Fatalf("allocated %d ids, want 48", len(seen))
		}
		// Seal records round-trip, including the create-or-set overwrite.
		if err := c1.SealExtent(p, "cephfs", 7, []string{"sn0", "sn1", "sn2"}, 1<<20); err != nil {
			t.Fatalf("seal: %v", err)
		}
		if err := c2.SealExtent(p, "cephfs", 7, []string{"sn0", "sn1", "sn2"}, 2<<20); err != nil {
			t.Fatalf("re-seal: %v", err)
		}
		e, found, err := c1.GetExtent(p, "cephfs", 7)
		if err != nil || !found {
			t.Fatalf("get extent: %v %v", found, err)
		}
		if !e.Sealed || e.Length != 2<<20 || len(e.Nodes) != 3 || e.Nodes[0] != "sn0" {
			t.Fatalf("extent entry = %+v", e)
		}
		if _, found, _ := c1.GetExtent(p, "cephfs", 999); found {
			t.Fatal("absent extent reported found")
		}
		fx.sim.Stop()
	})
	fx.run(t, time.Minute)
}
