package controller

import (
	"errors"
	"fmt"
	"sort"

	"splitft/internal/raft"
	"splitft/internal/simnet"
	"splitft/internal/wire"
)

// Client is a typed controller client used by ncl-lib and by log peers.
// Every operation is a linearizable command through the owning shard's Raft
// log. On a sharded controller the client caches the shard directory
// (fetched once from the root group) and routes each path to its group; an
// ErrWrongShard reply — possible only if the directory was stale — drops
// the cache and retries. Sessions are lazy and per shard: the client
// registers on a shard the first time it creates an ephemeral there, and
// one keep-alive proc services every shard it registered on.
type Client struct {
	svc     *Service
	node    *simnet.Node
	session string
	fencing int64

	// rcs[g] is the lazily created proposal client for group g.
	rcs []*raft.Client
	// dir is the cached shard directory; nil until fetched (single-group
	// controllers use the service's static layout immediately).
	dir []ShardRange
	// sess[g] records that this client's session is established on group g.
	sess []bool
	// wantSession is set by StartSession; until then, ephemeral ops surface
	// ErrSession exactly like a sessionless ZooKeeper client would.
	wantSession bool
	started     bool
}

// NewClient creates a controller client for the given node. name identifies
// the principal (application or peer identity); fencing is its incarnation
// number, used for ephemeral takeover on recovery. The underlying session id
// is unique per (name, node, fencing) so concurrent instances of the same
// principal hold distinct sessions and arbitration happens on the znodes'
// fencing tokens, as in ZooKeeper where each client connection is its own
// session.
func NewClient(svc *Service, node *simnet.Node, name string, fencing int64) *Client {
	c := &Client{
		svc:     svc,
		node:    node,
		session: fmt.Sprintf("%s@%s#%d", name, node.Name(), fencing),
		fencing: fencing,
		rcs:     make([]*raft.Client, len(svc.shards)),
		sess:    make([]bool, len(svc.shards)),
	}
	if len(svc.shards) == 1 {
		c.dir = svc.shards
	}
	return c
}

// client returns (creating on first use) the proposal client for group g.
func (c *Client) client(g int) *raft.Client {
	if c.rcs[g] == nil {
		rc := raft.NewClient(c.svc.set.Group(g), c.node)
		rc.Deadline = c.svc.cfg.OpTimeout
		// Fast per-attempt failover: keep-alives must land within a fraction
		// of the session timeout even right after a partition heals.
		rc.CallTimeout = c.svc.cfg.SessionTimeout / 6
		c.rcs[g] = rc
	}
	return c.rcs[g]
}

// cmdOp names a znode command for span attribution.
func cmdOp(code wire.Code) string {
	switch code {
	case codeNewSession:
		return "new-session"
	case codeKeepAlive:
		return "keep-alive"
	case codeCreate:
		return "create"
	case codeSet:
		return "set"
	case codeDelete:
		return "delete"
	case codeGet:
		return "get"
	case codeList:
		return "list"
	default:
		return fmt.Sprintf("cmd-%#x", uint16(code))
	}
}

// proposeAt runs one encoded command on group g and decodes the opResult.
func (c *Client) proposeAt(p *simnet.Proc, g int, cmd wire.Msg) (opResult, error) {
	if p.Tracing() {
		sp := p.StartSpan("controller", cmdOp(cmd.Code))
		defer p.EndSpan(sp)
	}
	res, err := c.client(g).Propose(p, cmd)
	if err != nil {
		return opResult{}, err
	}
	var r opResult
	r.UnmarshalWire(res) //nolint:errcheck
	if r.Err != nil {
		return r, r.Err
	}
	return r, nil
}

// ensureDir makes sure the shard directory is cached, fetching /shards from
// the root group on a sharded controller (retrying briefly: the directory
// is published by a boot proc and may trail the ensemble by a moment).
func (c *Client) ensureDir(p *simnet.Proc) error {
	if c.dir != nil {
		return nil
	}
	var lastErr error
	deadline := p.Now() + c.svc.cfg.OpTimeout
	for {
		r, err := c.proposeAt(p, 0, cmdGet{Path: shardDirPath}.MarshalWire())
		if err == nil && r.Found {
			c.dir = parseShardDir(r.Data)
			return nil
		}
		lastErr = err
		if p.Now() >= deadline {
			if lastErr == nil {
				lastErr = ErrNotFound
			}
			return fmt.Errorf("controller: shard directory unavailable: %w", lastErr)
		}
		p.Sleep(c.svc.cfg.ExpiryScan)
	}
}

// groupFor routes a path through the cached directory.
func (c *Client) groupFor(path string) int {
	if len(c.dir) == 1 {
		return 0
	}
	app, meta := routeKey(path)
	if meta {
		return 0
	}
	h := fnv32(app)
	for _, sr := range c.dir {
		if sr.contains(h) {
			return sr.Group
		}
	}
	return 0
}

// establishSession registers the client's session on group g.
func (c *Client) establishSession(p *simnet.Proc, g int) error {
	_, err := c.proposeAt(p, g, cmdNewSession{
		Session: c.session,
		At:      p.Now(),
		Timeout: c.svc.cfg.SessionTimeout,
	}.MarshalWire())
	if err == nil {
		c.sess[g] = true
	}
	return err
}

// run routes one command to the group owning path, lazily establishing the
// session there when the op needs one, and refreshes the directory on a
// wrong-shard reply.
func (c *Client) run(p *simnet.Proc, path string, needSession bool, cmd wire.Msg) (opResult, error) {
	if err := c.ensureDir(p); err != nil {
		return opResult{}, err
	}
	for attempt := 0; ; attempt++ {
		g := c.groupFor(path)
		if needSession && c.wantSession && !c.sess[g] {
			if err := c.establishSession(p, g); err != nil {
				return opResult{}, err
			}
		}
		r, err := c.proposeAt(p, g, cmd)
		if errors.Is(err, ErrWrongShard) && len(c.svc.shards) > 1 && attempt < 2 {
			c.dir = nil
			if derr := c.ensureDir(p); derr != nil {
				return opResult{}, derr
			}
			continue
		}
		return r, err
	}
}

// StartSession arms the client's session and spawns the keep-alive proc
// (which dies with the node, letting the session expire — exactly the
// ZooKeeper ephemeral-node behaviour the paper relies on). On a
// single-group controller the session is registered immediately; on a
// sharded one it is registered per shard on first ephemeral use, and the
// keep-alive proc services every shard the session reached.
func (c *Client) StartSession(p *simnet.Proc) error {
	if err := c.ensureDir(p); err != nil {
		return err
	}
	c.wantSession = true
	if len(c.dir) == 1 {
		if err := c.establishSession(p, 0); err != nil {
			return err
		}
	}
	if !c.started {
		c.started = true
		c.node.Go("ctrl-keepalive:"+c.session, func(kp *simnet.Proc) {
			for {
				kp.Sleep(c.svc.cfg.KeepAlive)
				for g := range c.sess {
					if !c.sess[g] {
						continue
					}
					_, err := c.proposeAt(kp, g, cmdKeepAlive{Session: c.session, At: kp.Now()}.MarshalWire())
					if errors.Is(err, ErrSession) {
						// Expired (e.g. after a partition): re-establish so
						// our ephemerals can be re-created by the owner.
						c.proposeAt(kp, g, cmdNewSession{ //nolint:errcheck
							Session: c.session,
							At:      kp.Now(),
							Timeout: c.svc.cfg.SessionTimeout,
						}.MarshalWire())
					}
				}
			}
		})
	}
	return nil
}

// ---- Peer registry (/peers) ----

func peerPath(name string) string { return "/peers/" + name }

// RegisterPeer advertises a log peer and its lendable memory (§4.3). The
// registration is ephemeral: it disappears if the peer dies.
func (c *Client) RegisterPeer(p *simnet.Proc, info PeerInfo) error {
	path := peerPath(info.Name)
	_, err := c.run(p, path, true, cmdCreate{
		Path: path, Data: info.MarshalWire(),
		Ephemeral: true, Session: c.session, Fencing: c.fencing, Takeover: true,
	}.MarshalWire())
	return err
}

// PublishPeer republishes a peer's full registration in one proposal (the
// value is a hint, so unconditional set is correct). ErrNotFound means the
// registration expired; the caller re-registers or drops the update.
func (c *Client) PublishPeer(p *simnet.Proc, info PeerInfo) error {
	path := peerPath(info.Name)
	_, err := c.run(p, path, false, cmdSet{Path: path, Data: info.MarshalWire(), Version: -1}.MarshalWire())
	return err
}

// UpdatePeerMem republishes a peer's available memory (paper step 4a),
// reading the current registration and rewriting it with the new value.
// Peers that track their own registration use the single-proposal
// PublishPeer instead.
func (c *Client) UpdatePeerMem(p *simnet.Proc, name string, avail int64) error {
	res, err := c.run(p, peerPath(name), false, cmdGet{Path: peerPath(name)}.MarshalWire())
	if err != nil || !res.Found {
		return ErrNotFound
	}
	var info PeerInfo
	info.UnmarshalWire(res.Data) //nolint:errcheck
	info.AvailMem = avail
	return c.PublishPeer(p, info)
}

// PickPeers returns up to n registered peers with at least minMem available,
// excluding the given names, most-free first (name tiebreak). The choice is
// a hint: a returned peer can still reject the allocation (§4.3).
func (c *Client) PickPeers(p *simnet.Proc, n int, minMem int64, exclude []string) ([]PeerInfo, error) {
	res, err := c.run(p, "/peers/", false, cmdList{Prefix: "/peers/"}.MarshalWire())
	if err != nil {
		return nil, err
	}
	skip := make(map[string]bool, len(exclude))
	for _, e := range exclude {
		skip[e] = true
	}
	var cands []PeerInfo
	for _, d := range res.Datas {
		var info PeerInfo
		info.UnmarshalWire(d) //nolint:errcheck
		if !skip[info.Name] && info.AvailMem >= minMem {
			cands = append(cands, info)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].AvailMem != cands[j].AvailMem {
			return cands[i].AvailMem > cands[j].AvailMem
		}
		return cands[i].Name < cands[j].Name
	})
	if len(cands) > n {
		cands = cands[:n]
	}
	return cands, nil
}

// ListPeers returns every registered peer (the NCL pool refresh path).
func (c *Client) ListPeers(p *simnet.Proc) ([]PeerInfo, error) {
	res, err := c.run(p, "/peers/", false, cmdList{Prefix: "/peers/"}.MarshalWire())
	if err != nil {
		return nil, err
	}
	out := make([]PeerInfo, len(res.Datas))
	for i, d := range res.Datas {
		out[i].UnmarshalWire(d) //nolint:errcheck
	}
	return out, nil
}

// GetPeer returns one peer's registration.
func (c *Client) GetPeer(p *simnet.Proc, name string) (PeerInfo, bool, error) {
	res, err := c.run(p, peerPath(name), false, cmdGet{Path: peerPath(name)}.MarshalWire())
	if err != nil {
		return PeerInfo{}, false, err
	}
	if !res.Found {
		return PeerInfo{}, false, nil
	}
	var info PeerInfo
	info.UnmarshalWire(res.Data) //nolint:errcheck
	return info, true, nil
}

// ---- ap-map (/apps/<app>/<file>) ----

func fileKey(app, file string) string { return "/apps/" + app + "/" + file }

// SetAppFile writes the ap-map entry for (app, file). version -1 creates or
// overwrites; otherwise it is a compare-and-set on the znode version.
func (c *Client) SetAppFile(p *simnet.Proc, app, file string, e FileEntry, version int64) (int64, error) {
	path := fileKey(app, file)
	data := e.MarshalWire()
	if version < 0 {
		res, err := c.run(p, path, false, cmdGet{Path: path}.MarshalWire())
		if err != nil {
			return 0, err
		}
		if !res.Found {
			r, err := c.run(p, path, false, cmdCreate{Path: path, Data: data}.MarshalWire())
			if errors.Is(err, ErrExists) {
				// Lost a (retried) race with ourselves; fall through to set.
				r, err = c.run(p, path, false, cmdSet{Path: path, Data: data, Version: -1}.MarshalWire())
			}
			return r.Version, err
		}
		r, err := c.run(p, path, false, cmdSet{Path: path, Data: data, Version: -1}.MarshalWire())
		return r.Version, err
	}
	r, err := c.run(p, path, false, cmdSet{Path: path, Data: data, Version: version}.MarshalWire())
	return r.Version, err
}

// GetAppFile reads the ap-map entry for (app, file).
func (c *Client) GetAppFile(p *simnet.Proc, app, file string) (FileEntry, int64, bool, error) {
	path := fileKey(app, file)
	res, err := c.run(p, path, false, cmdGet{Path: path}.MarshalWire())
	if err != nil {
		return FileEntry{}, 0, false, err
	}
	if !res.Found {
		return FileEntry{}, 0, false, nil
	}
	var e FileEntry
	e.UnmarshalWire(res.Data) //nolint:errcheck
	return e, res.Version, true, nil
}

// DeleteAppFile removes the ap-map entry (on ncl-file release).
func (c *Client) DeleteAppFile(p *simnet.Proc, app, file string) error {
	path := fileKey(app, file)
	_, err := c.run(p, path, false, cmdDelete{Path: path, Version: -1}.MarshalWire())
	if errors.Is(err, ErrNotFound) {
		return nil
	}
	return err
}

// ListAppFiles returns the ncl files recorded for app (used on recovery to
// find what must be restored from peers).
func (c *Client) ListAppFiles(p *simnet.Proc, app string) (map[string]FileEntry, error) {
	prefix := "/apps/" + app + "/"
	res, err := c.run(p, prefix, false, cmdList{Prefix: prefix}.MarshalWire())
	if err != nil {
		return nil, err
	}
	out := make(map[string]FileEntry, len(res.Paths))
	for i, path := range res.Paths {
		var e FileEntry
		e.UnmarshalWire(res.Datas[i]) //nolint:errcheck
		out[path[len(prefix):]] = e
	}
	return out, nil
}

// ---- Single-instance lock (/servers/<app>) ----

// AcquireServerLock claims the application's single-instance znode (§4.7).
// A fresh instance takes over from a crashed predecessor with a lower
// fencing token; concurrent instances with the same token race and exactly
// one wins (the paper's ZooKeeper guarantee). The lock lives on the
// application's shard, next to its ap-map entries.
func (c *Client) AcquireServerLock(p *simnet.Proc, app string) error {
	path := "/servers/" + app
	_, err := c.run(p, path, true, cmdCreate{
		Path:      path,
		Data:      ServerInfo{Node: c.node.Name(), Fencing: c.fencing}.MarshalWire(),
		Ephemeral: true, Session: c.session, Fencing: c.fencing, Takeover: true,
	}.MarshalWire())
	if errors.Is(err, ErrExists) {
		return fmt.Errorf("%w: another instance of %s is active", ErrFenced, app)
	}
	return err
}
