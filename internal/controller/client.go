package controller

import (
	"fmt"
	"sort"

	"splitft/internal/raft"
	"splitft/internal/simnet"
	"splitft/internal/wire"
)

// Client is a typed controller client used by ncl-lib and by log peers.
// Every operation is a linearizable command through the Raft log.
type Client struct {
	svc     *Service
	rc      *raft.Client
	node    *simnet.Node
	session string
	fencing int64
	started bool
}

// NewClient creates a controller client for the given node. name identifies
// the principal (application or peer identity); fencing is its incarnation
// number, used for ephemeral takeover on recovery. The underlying session id
// is unique per (name, node, fencing) so concurrent instances of the same
// principal hold distinct sessions and arbitration happens on the znodes'
// fencing tokens, as in ZooKeeper where each client connection is its own
// session.
func NewClient(svc *Service, node *simnet.Node, name string, fencing int64) *Client {
	rc := raft.NewClient(svc.cluster, node)
	rc.Deadline = svc.cfg.OpTimeout
	// Fast per-attempt failover: keep-alives must land within a fraction of
	// the session timeout even right after a partition heals.
	rc.CallTimeout = svc.cfg.SessionTimeout / 6
	session := fmt.Sprintf("%s@%s#%d", name, node.Name(), fencing)
	return &Client{svc: svc, rc: rc, node: node, session: session, fencing: fencing}
}

// cmdOp names a znode command for span attribution.
func cmdOp(code wire.Code) string {
	switch code {
	case codeNewSession:
		return "new-session"
	case codeKeepAlive:
		return "keep-alive"
	case codeCreate:
		return "create"
	case codeSet:
		return "set"
	case codeDelete:
		return "delete"
	case codeGet:
		return "get"
	case codeList:
		return "list"
	default:
		return fmt.Sprintf("cmd-%#x", uint16(code))
	}
}

// propose runs one encoded command and decodes the opResult.
func (c *Client) propose(p *simnet.Proc, cmd wire.Msg) (opResult, error) {
	if p.Tracing() {
		sp := p.StartSpan("controller", cmdOp(cmd.Code))
		defer p.EndSpan(sp)
	}
	res, err := c.rc.Propose(p, cmd)
	if err != nil {
		return opResult{}, err
	}
	var r opResult
	r.UnmarshalWire(res) //nolint:errcheck
	if r.Err != nil {
		return r, r.Err
	}
	return r, nil
}

// StartSession registers the client's session and spawns the keep-alive
// proc (which dies with the node, letting the session expire — exactly the
// ZooKeeper ephemeral-node behaviour the paper relies on).
func (c *Client) StartSession(p *simnet.Proc) error {
	_, err := c.propose(p, cmdNewSession{
		Session: c.session,
		At:      p.Now(),
		Timeout: c.svc.cfg.SessionTimeout,
	}.MarshalWire())
	if err != nil {
		return err
	}
	if !c.started {
		c.started = true
		c.node.Go("ctrl-keepalive:"+c.session, func(kp *simnet.Proc) {
			for {
				kp.Sleep(c.svc.cfg.KeepAlive)
				_, err := c.propose(kp, cmdKeepAlive{Session: c.session, At: kp.Now()}.MarshalWire())
				if err == ErrSession {
					// Expired (e.g. after a partition): re-establish so our
					// ephemerals can be re-created by the owner.
					c.propose(kp, cmdNewSession{ //nolint:errcheck
						Session: c.session,
						At:      kp.Now(),
						Timeout: c.svc.cfg.SessionTimeout,
					}.MarshalWire())
				}
			}
		})
	}
	return nil
}

// ---- Peer registry (/peers) ----

func peerPath(name string) string { return "/peers/" + name }

// RegisterPeer advertises a log peer and its lendable memory (§4.3). The
// registration is ephemeral: it disappears if the peer dies.
func (c *Client) RegisterPeer(p *simnet.Proc, info PeerInfo) error {
	_, err := c.propose(p, cmdCreate{
		Path: peerPath(info.Name), Data: info.MarshalWire(),
		Ephemeral: true, Session: c.session, Fencing: c.fencing, Takeover: true,
	}.MarshalWire())
	return err
}

// UpdatePeerMem republishes a peer's available memory (paper step 4a; the
// value is a hint, so unconditional set is correct).
func (c *Client) UpdatePeerMem(p *simnet.Proc, name string, avail int64) error {
	res, err := c.propose(p, cmdGet{Path: peerPath(name)}.MarshalWire())
	if err != nil || !res.Found {
		return ErrNotFound
	}
	var info PeerInfo
	info.UnmarshalWire(res.Data) //nolint:errcheck
	info.AvailMem = avail
	_, err = c.propose(p, cmdSet{Path: peerPath(name), Data: info.MarshalWire(), Version: -1}.MarshalWire())
	return err
}

// PickPeers returns up to n registered peers with at least minMem available,
// excluding the given names, most-free first (name tiebreak). The choice is
// a hint: a returned peer can still reject the allocation (§4.3).
func (c *Client) PickPeers(p *simnet.Proc, n int, minMem int64, exclude []string) ([]PeerInfo, error) {
	res, err := c.propose(p, cmdList{Prefix: "/peers/"}.MarshalWire())
	if err != nil {
		return nil, err
	}
	skip := make(map[string]bool, len(exclude))
	for _, e := range exclude {
		skip[e] = true
	}
	var cands []PeerInfo
	for _, d := range res.Datas {
		var info PeerInfo
		info.UnmarshalWire(d) //nolint:errcheck
		if !skip[info.Name] && info.AvailMem >= minMem {
			cands = append(cands, info)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].AvailMem != cands[j].AvailMem {
			return cands[i].AvailMem > cands[j].AvailMem
		}
		return cands[i].Name < cands[j].Name
	})
	if len(cands) > n {
		cands = cands[:n]
	}
	return cands, nil
}

// GetPeer returns one peer's registration.
func (c *Client) GetPeer(p *simnet.Proc, name string) (PeerInfo, bool, error) {
	res, err := c.propose(p, cmdGet{Path: peerPath(name)}.MarshalWire())
	if err != nil {
		return PeerInfo{}, false, err
	}
	if !res.Found {
		return PeerInfo{}, false, nil
	}
	var info PeerInfo
	info.UnmarshalWire(res.Data) //nolint:errcheck
	return info, true, nil
}

// ---- ap-map (/apps/<app>/<file>) ----

func fileKey(app, file string) string { return "/apps/" + app + "/" + file }

// SetAppFile writes the ap-map entry for (app, file). version -1 creates or
// overwrites; otherwise it is a compare-and-set on the znode version.
func (c *Client) SetAppFile(p *simnet.Proc, app, file string, e FileEntry, version int64) (int64, error) {
	path := fileKey(app, file)
	data := e.MarshalWire()
	if version < 0 {
		res, err := c.propose(p, cmdGet{Path: path}.MarshalWire())
		if err != nil {
			return 0, err
		}
		if !res.Found {
			r, err := c.propose(p, cmdCreate{Path: path, Data: data}.MarshalWire())
			if err == ErrExists {
				// Lost a (retried) race with ourselves; fall through to set.
				r, err = c.propose(p, cmdSet{Path: path, Data: data, Version: -1}.MarshalWire())
			}
			return r.Version, err
		}
		r, err := c.propose(p, cmdSet{Path: path, Data: data, Version: -1}.MarshalWire())
		return r.Version, err
	}
	r, err := c.propose(p, cmdSet{Path: path, Data: data, Version: version}.MarshalWire())
	return r.Version, err
}

// GetAppFile reads the ap-map entry for (app, file).
func (c *Client) GetAppFile(p *simnet.Proc, app, file string) (FileEntry, int64, bool, error) {
	res, err := c.propose(p, cmdGet{Path: fileKey(app, file)}.MarshalWire())
	if err != nil {
		return FileEntry{}, 0, false, err
	}
	if !res.Found {
		return FileEntry{}, 0, false, nil
	}
	var e FileEntry
	e.UnmarshalWire(res.Data) //nolint:errcheck
	return e, res.Version, true, nil
}

// DeleteAppFile removes the ap-map entry (on ncl-file release).
func (c *Client) DeleteAppFile(p *simnet.Proc, app, file string) error {
	_, err := c.propose(p, cmdDelete{Path: fileKey(app, file), Version: -1}.MarshalWire())
	if err == ErrNotFound {
		return nil
	}
	return err
}

// ListAppFiles returns the ncl files recorded for app (used on recovery to
// find what must be restored from peers).
func (c *Client) ListAppFiles(p *simnet.Proc, app string) (map[string]FileEntry, error) {
	prefix := "/apps/" + app + "/"
	res, err := c.propose(p, cmdList{Prefix: prefix}.MarshalWire())
	if err != nil {
		return nil, err
	}
	out := make(map[string]FileEntry, len(res.Paths))
	for i, path := range res.Paths {
		var e FileEntry
		e.UnmarshalWire(res.Datas[i]) //nolint:errcheck
		out[path[len(prefix):]] = e
	}
	return out, nil
}

// ---- Single-instance lock (/servers/<app>) ----

// AcquireServerLock claims the application's single-instance znode (§4.7).
// A fresh instance takes over from a crashed predecessor with a lower
// fencing token; concurrent instances with the same token race and exactly
// one wins (the paper's ZooKeeper guarantee).
func (c *Client) AcquireServerLock(p *simnet.Proc, app string) error {
	_, err := c.propose(p, cmdCreate{
		Path:      "/servers/" + app,
		Data:      ServerInfo{Node: c.node.Name(), Fencing: c.fencing}.MarshalWire(),
		Ephemeral: true, Session: c.session, Fencing: c.fencing, Takeover: true,
	}.MarshalWire())
	if err == ErrExists {
		return fmt.Errorf("%w: another instance of %s is active", ErrFenced, app)
	}
	return err
}
