package controller

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"splitft/internal/simnet"
)

type fixture struct {
	sim    *simnet.Sim
	svc    *Service
	cNodes []*simnet.Node
}

func newFixture(seed int64) *fixture {
	s := simnet.New(seed)
	nodes := []*simnet.Node{s.NewNode("ctrl0"), s.NewNode("ctrl1"), s.NewNode("ctrl2")}
	svc := Start(s, nodes, DefaultConfig())
	return &fixture{sim: s, svc: svc, cNodes: nodes}
}

func (fx *fixture) run(t *testing.T, d time.Duration) {
	t.Helper()
	if err := fx.sim.RunUntil(d); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestPeerRegistrationAndPick(t *testing.T) {
	fx := newFixture(1)
	app := fx.sim.NewNode("app")
	fx.sim.Go("test", func(p *simnet.Proc) {
		p.Sleep(time.Second) // controller election
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("peer%d", i)
			pn := fx.sim.NewNode(name)
			c := NewClient(fx.svc, pn, name, 0)
			if err := c.StartSession(p); err != nil {
				t.Errorf("session %s: %v", name, err)
			}
			if err := c.RegisterPeer(p, PeerInfo{Name: name, Addr: name + "/rpc", AvailMem: int64(i+1) << 30}); err != nil {
				t.Errorf("register %s: %v", name, err)
			}
		}
		ac := NewClient(fx.svc, app, "app1", 0)
		peers, err := ac.PickPeers(p, 3, 2<<30, nil)
		if err != nil {
			t.Errorf("pick: %v", err)
		}
		if len(peers) != 3 {
			t.Fatalf("picked %d peers, want 3", len(peers))
		}
		// Most-free-first: peer3 (4G), peer2 (3G), peer1 (2G); peer0 (1G) excluded.
		if peers[0].Name != "peer3" || peers[2].Name != "peer1" {
			t.Errorf("pick order = %v", peers)
		}
		// Exclusion works (peer replacement path).
		peers, _ = ac.PickPeers(p, 3, 0, []string{"peer3", "peer2"})
		for _, q := range peers {
			if q.Name == "peer3" || q.Name == "peer2" {
				t.Errorf("excluded peer returned: %v", q)
			}
		}
		fx.sim.Stop()
	})
	fx.run(t, time.Minute)
}

func TestPeerSessionExpiryRemovesRegistration(t *testing.T) {
	fx := newFixture(2)
	peerNode := fx.sim.NewNode("peerX")
	app := fx.sim.NewNode("app")
	fx.sim.Go("test", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		c := NewClient(fx.svc, peerNode, "peerX", 0)
		c.StartSession(p)
		c.RegisterPeer(p, PeerInfo{Name: "peerX", Addr: "x", AvailMem: 1 << 30})
		ac := NewClient(fx.svc, app, "app1", 0)
		if peers, _ := ac.PickPeers(p, 1, 0, nil); len(peers) != 1 {
			t.Errorf("peer not visible before crash")
		}
		peerNode.Crash() // keepalive proc dies with the node
		p.Sleep(3 * fx.svc.cfg.SessionTimeout)
		if peers, _ := ac.PickPeers(p, 1, 0, nil); len(peers) != 0 {
			t.Errorf("dead peer still registered: %v", peers)
		}
		fx.sim.Stop()
	})
	fx.run(t, time.Minute)
}

func TestApMapCASAndListing(t *testing.T) {
	fx := newFixture(3)
	app := fx.sim.NewNode("app")
	fx.sim.Go("test", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		c := NewClient(fx.svc, app, "app1", 0)
		e := FileEntry{Peers: []string{"p1", "p2", "p3"}, Epoch: 1, RegionSize: 1 << 20}
		v, err := c.SetAppFile(p, "app1", "wal-000", e, -1)
		if err != nil {
			t.Fatalf("set: %v", err)
		}
		got, v2, found, err := c.GetAppFile(p, "app1", "wal-000")
		if err != nil || !found || v2 != v || got.Epoch != 1 || len(got.Peers) != 3 {
			t.Fatalf("get = %+v v=%d found=%v err=%v", got, v2, found, err)
		}
		// CAS with the right version succeeds, with a stale version fails.
		e.Epoch = 2
		if _, err := c.SetAppFile(p, "app1", "wal-000", e, v2); err != nil {
			t.Errorf("cas: %v", err)
		}
		if _, err := c.SetAppFile(p, "app1", "wal-000", e, v2); !errors.Is(err, ErrBadVersion) {
			t.Errorf("stale cas: %v, want bad version", err)
		}
		c.SetAppFile(p, "app1", "wal-001", FileEntry{Epoch: 1}, -1)
		files, err := c.ListAppFiles(p, "app1")
		if err != nil || len(files) != 2 {
			t.Fatalf("list = %v, %v", files, err)
		}
		if files["wal-000"].Epoch != 2 {
			t.Errorf("wal-000 entry = %+v", files["wal-000"])
		}
		if err := c.DeleteAppFile(p, "app1", "wal-000"); err != nil {
			t.Errorf("delete: %v", err)
		}
		if err := c.DeleteAppFile(p, "app1", "wal-000"); err != nil {
			t.Errorf("idempotent delete: %v", err)
		}
		files, _ = c.ListAppFiles(p, "app1")
		if len(files) != 1 {
			t.Errorf("after delete: %v", files)
		}
		fx.sim.Stop()
	})
	fx.run(t, time.Minute)
}

func TestServerLockSingleInstance(t *testing.T) {
	fx := newFixture(4)
	n1 := fx.sim.NewNode("inst1")
	n2 := fx.sim.NewNode("inst2")
	fx.sim.Go("test", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		c1 := NewClient(fx.svc, n1, "app1-server", 0)
		c1.StartSession(p)
		if err := c1.AcquireServerLock(p, "app1"); err != nil {
			t.Fatalf("first acquire: %v", err)
		}
		// Same fencing token (a concurrent duplicate instance): must lose.
		c2 := NewClient(fx.svc, n2, "app1-server", 0)
		c2.StartSession(p)
		if err := c2.AcquireServerLock(p, "app1"); !errors.Is(err, ErrFenced) {
			t.Fatalf("duplicate instance acquired the lock: %v", err)
		}
		fx.sim.Stop()
	})
	fx.run(t, time.Minute)
}

func TestServerLockTakeoverAfterCrash(t *testing.T) {
	fx := newFixture(5)
	n1 := fx.sim.NewNode("inst1")
	n2 := fx.sim.NewNode("inst2")
	fx.sim.Go("test", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		c1 := NewClient(fx.svc, n1, "app1-server", 0)
		c1.StartSession(p)
		c1.AcquireServerLock(p, "app1")
		n1.Crash()
		// Recovery on another machine with a higher fencing token takes over
		// immediately — no session-expiry wait.
		c2 := NewClient(fx.svc, n2, "app1-server", 1)
		c2.StartSession(p)
		start := p.Now()
		if err := c2.AcquireServerLock(p, "app1"); err != nil {
			t.Fatalf("takeover: %v", err)
		}
		if p.Now()-start > 100*time.Millisecond {
			t.Errorf("takeover took %v, want fast", p.Now()-start)
		}
		fx.sim.Stop()
	})
	fx.run(t, time.Minute)
}

func TestControllerSurvivesNodeFailure(t *testing.T) {
	fx := newFixture(6)
	app := fx.sim.NewNode("app")
	fx.sim.Go("test", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		c := NewClient(fx.svc, app, "app1", 0)
		if _, err := c.SetAppFile(p, "a", "f", FileEntry{Epoch: 1}, -1); err != nil {
			t.Fatalf("set before: %v", err)
		}
		fx.cNodes[0].Crash()
		// The ensemble keeps serving with 2/3.
		if _, err := c.SetAppFile(p, "a", "g", FileEntry{Epoch: 1}, -1); err != nil {
			t.Fatalf("set during failure: %v", err)
		}
		e, _, found, err := c.GetAppFile(p, "a", "f")
		if err != nil || !found || e.Epoch != 1 {
			t.Fatalf("get during failure: %+v %v %v", e, found, err)
		}
		// Restart the node; it rejoins and the ensemble still works.
		fx.cNodes[0].Restart()
		fx.svc.RestartNode(fx.cNodes[0])
		p.Sleep(time.Second)
		if _, err := c.SetAppFile(p, "a", "h", FileEntry{Epoch: 1}, -1); err != nil {
			t.Fatalf("set after rejoin: %v", err)
		}
		fx.sim.Stop()
	})
	fx.run(t, 2*time.Minute)
}

func TestUpdatePeerMem(t *testing.T) {
	fx := newFixture(7)
	pn := fx.sim.NewNode("peer1")
	fx.sim.Go("test", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		c := NewClient(fx.svc, pn, "peer1", 0)
		c.StartSession(p)
		c.RegisterPeer(p, PeerInfo{Name: "peer1", Addr: "a", AvailMem: 100})
		if err := c.UpdatePeerMem(p, "peer1", 40); err != nil {
			t.Fatalf("update: %v", err)
		}
		info, found, err := c.GetPeer(p, "peer1")
		if err != nil || !found || info.AvailMem != 40 {
			t.Fatalf("get = %+v %v %v", info, found, err)
		}
		fx.sim.Stop()
	})
	fx.run(t, time.Minute)
}

func TestControllerLeaderPartitionFailover(t *testing.T) {
	// Partition one controller node from its peers mid-stream: the ensemble
	// must keep serving (a new leader if the victim led), and heal cleanly.
	fx := newFixture(8)
	app := fx.sim.NewNode("app")
	fx.sim.Go("test", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		c := NewClient(fx.svc, app, "app1", 0)
		if _, err := c.SetAppFile(p, "a", "f0", FileEntry{Epoch: 1}, -1); err != nil {
			t.Errorf("pre-partition set: %v", err)
		}
		victim := fx.cNodes[0]
		for _, n := range fx.cNodes[1:] {
			fx.sim.Net().Partition(victim, n)
		}
		if _, err := c.SetAppFile(p, "a", "f1", FileEntry{Epoch: 1}, -1); err != nil {
			t.Errorf("set during partition: %v", err)
		}
		for _, n := range fx.cNodes[1:] {
			fx.sim.Net().Heal(victim, n)
		}
		p.Sleep(time.Second)
		if _, err := c.SetAppFile(p, "a", "f2", FileEntry{Epoch: 1}, -1); err != nil {
			t.Errorf("set after heal: %v", err)
		}
		files, err := c.ListAppFiles(p, "a")
		if err != nil || len(files) != 3 {
			t.Errorf("files = %v, %v", files, err)
		}
		fx.sim.Stop()
	})
	fx.run(t, 2*time.Minute)
}

func TestSessionSurvivesShortPartitionDiesOnLong(t *testing.T) {
	fx := newFixture(9)
	pn := fx.sim.NewNode("peerZ")
	app := fx.sim.NewNode("app")
	fx.sim.Go("test", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		c := NewClient(fx.svc, pn, "peerZ", 0)
		c.StartSession(p)
		c.RegisterPeer(p, PeerInfo{Name: "peerZ", Addr: "z", AvailMem: 1})
		ac := NewClient(fx.svc, app, "observer", 0)

		// Short partition (< session timeout): registration survives.
		for _, n := range fx.cNodes {
			fx.sim.Net().Partition(pn, n)
		}
		p.Sleep(fx.svc.cfg.SessionTimeout / 2)
		for _, n := range fx.cNodes {
			fx.sim.Net().Heal(pn, n)
		}
		p.Sleep(2 * fx.svc.cfg.KeepAlive)
		if peers, _ := ac.PickPeers(p, 1, 0, nil); len(peers) != 1 {
			t.Errorf("registration lost after short partition")
		}

		// Long partition (> session timeout): ephemeral removed; after the
		// heal the keepalive proc re-establishes the session and the owner
		// re-registers.
		for _, n := range fx.cNodes {
			fx.sim.Net().Partition(pn, n)
		}
		p.Sleep(3 * fx.svc.cfg.SessionTimeout)
		if peers, _ := ac.PickPeers(p, 1, 0, nil); len(peers) != 0 {
			t.Errorf("registration survived expiry: %v", peers)
		}
		for _, n := range fx.cNodes {
			fx.sim.Net().Heal(pn, n)
		}
		p.Sleep(3 * fx.svc.cfg.KeepAlive)
		if err := c.RegisterPeer(p, PeerInfo{Name: "peerZ", Addr: "z", AvailMem: 1}); err != nil {
			t.Errorf("re-register after expiry: %v", err)
		}
		fx.sim.Stop()
	})
	fx.run(t, 2*time.Minute)
}
