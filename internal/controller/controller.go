// Package controller implements NCL's fault-tolerant controller (§4.3,
// §4.7). The paper builds it on a ZooKeeper ensemble; this implementation
// provides the same facilities — a hierarchical key space with versioned
// compare-and-set, ephemeral nodes bound to client sessions, and a
// single-instance lock per application — as a state machine replicated by
// the internal/raft package across three controller nodes.
//
// Directory layout mirrors §4.7:
//
//	/peers/<name>          -> PeerInfo   (ephemeral: registered log peers)
//	/apps/<app>/<file>     -> FileEntry  (the ap-map: peers + epoch per ncl file)
//	/servers/<app>         -> ServerInfo (ephemeral: single-instance lock)
//
// One deviation from stock ZooKeeper, documented in DESIGN.md: ephemeral
// creates carry a fencing token (the application incarnation). A recovering
// instance with a higher token takes over the /servers znode immediately
// instead of waiting out the dead session, keeping recovery at the paper's
// sub-second scale while preserving the only-one-instance guarantee (two
// instances with the same token still race, and exactly one wins).
package controller

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"splitft/internal/model"
	"splitft/internal/raft"
	"splitft/internal/simnet"
	"splitft/internal/wire"
)

// Wire codes for the controller's commands, results and znode values
// (0x30–0x3f range, see internal/wire). Commands travel unwrapped through
// the Raft log; any of these codes is outside raft's own range and hence
// treated as a proposal by the replicas.
const (
	codeNewSession wire.Code = 0x30
	codeKeepAlive  wire.Code = 0x31
	codeExpire     wire.Code = 0x32
	codeCreate     wire.Code = 0x33
	codeSet        wire.Code = 0x34
	codeDelete     wire.Code = 0x35
	codeGet        wire.Code = 0x36
	codeList       wire.Code = 0x37
	codeShardDir   wire.Code = 0x38
	codePeerInfo   wire.Code = 0x3b
	codeFileEntry  wire.Code = 0x3c
	codeServerInfo wire.Code = 0x3d
	codeResult     wire.Code = 0x3e
)

// PeerInfo is the value stored at /peers/<name>.
type PeerInfo struct {
	Name     string
	Addr     string // RPC address of the peer daemon
	Domain   string // failure domain (rack/zone); "" when not configured
	AvailMem int64
}

// MarshalWire encodes the registration as a flat message.
func (i PeerInfo) MarshalWire() wire.Msg {
	m := wire.Msg{Code: codePeerInfo, S: [3]string{i.Name, i.Addr, i.Domain}}
	m.SetInt(0, i.AvailMem)
	return m
}

// UnmarshalWire decodes a codePeerInfo message.
func (i *PeerInfo) UnmarshalWire(m wire.Msg) error {
	i.Name, i.Addr, i.Domain, i.AvailMem = m.S[0], m.S[1], m.S[2], m.Int(0)
	return nil
}

// FileEntry is the ap-map value stored at /apps/<app>/<file>.
type FileEntry struct {
	Peers      []string
	Epoch      int64
	RegionSize int64
	// AppendOnly records that the file only ever grows, enabling the
	// tail-shipping catch-up optimization during recovery (§4.5.1).
	AppendOnly bool
	// Policy is the replication policy spec string the file was written
	// under (ncl.ParsePolicy); "" means mirror from before the field existed.
	Policy string
	// Capacity is the log's nominal capacity in bytes. RegionSize is the
	// per-peer region (policy-dependent: larger than Capacity for mirror,
	// smaller for ec fragments); 0 falls back to RegionSize-derived sizing.
	Capacity int64
}

// MarshalWire encodes the ap-map entry as a flat message.
func (e FileEntry) MarshalWire() wire.Msg {
	m := wire.Msg{Code: codeFileEntry, Strs: e.Peers, S: [3]string{e.Policy}}
	m.SetInt(0, e.Epoch)
	m.SetInt(1, e.RegionSize)
	m.SetBool(2, e.AppendOnly)
	m.SetInt(3, e.Capacity)
	return m
}

// UnmarshalWire decodes a codeFileEntry message.
func (e *FileEntry) UnmarshalWire(m wire.Msg) error {
	e.Peers = m.Strs
	e.Policy = m.S[0]
	e.Epoch = m.Int(0)
	e.RegionSize = m.Int(1)
	e.AppendOnly = m.Bool(2)
	e.Capacity = m.Int(3)
	return nil
}

// ServerInfo is the value stored at /servers/<app>.
type ServerInfo struct {
	Node    string
	Fencing int64
}

// MarshalWire encodes the lock owner as a flat message.
func (s ServerInfo) MarshalWire() wire.Msg {
	m := wire.Msg{Code: codeServerInfo, S: [3]string{s.Node}}
	m.SetInt(0, s.Fencing)
	return m
}

// UnmarshalWire decodes a codeServerInfo message.
func (s *ServerInfo) UnmarshalWire(m wire.Msg) error {
	s.Node, s.Fencing = m.S[0], m.Int(0)
	return nil
}

// Errors.
var (
	ErrExists     = errors.New("controller: node exists")
	ErrNotFound   = errors.New("controller: node not found")
	ErrBadVersion = errors.New("controller: version mismatch")
	ErrSession    = errors.New("controller: session expired or unknown")
	ErrFenced     = errors.New("controller: fenced by a newer instance")
	// ErrWrongShard rejects a znode op routed to a group that does not own
	// the path; clients refresh their shard directory and retry.
	ErrWrongShard = errors.New("controller: wrong shard for path")
)

// ---- Replicated state machine ----

type znode struct {
	data      wire.Msg
	version   int64
	ephemeral bool
	session   string
	fencing   int64
}

type session struct {
	lastSeen time.Duration
	timeout  time.Duration
}

type tree struct {
	nodes    map[string]*znode
	sessions map[string]*session
	// shard is the app-hash range this tree owns; all short-circuits the
	// ownership check (the single-group controller owns every path).
	shard ShardRange
	all   bool
}

func newTree() *tree {
	t := newShardTree(ShardRange{Hi: ^uint32(0)})
	t.all = true
	return t
}

func newShardTree(sr ShardRange) *tree {
	return &tree{nodes: make(map[string]*znode), sessions: make(map[string]*session), shard: sr}
}

// owns reports whether this shard's state machine is the home of path.
// Session commands skip the check — sessions exist per shard.
func (t *tree) owns(path string) bool {
	if t.all {
		return true
	}
	app, meta := routeKey(path)
	if meta {
		return t.shard.Group == 0
	}
	if t.shard.Group == 0 {
		return false
	}
	return t.shard.contains(fnv32(app))
}

// Commands. Every mutation is versioned or idempotent so client retries
// after ambiguous failures are safe. Each command is a Go struct with a flat
// wire encoding; the struct form exists only at the edges (client encode,
// Apply decode) — the Raft log and RPC plane carry wire.Msg values.
type cmdNewSession struct {
	Session string
	At      time.Duration
	Timeout time.Duration
}

func (c cmdNewSession) MarshalWire() wire.Msg {
	m := wire.Msg{Code: codeNewSession, S: [3]string{c.Session}}
	m.SetInt(0, int64(c.At))
	m.SetInt(1, int64(c.Timeout))
	return m
}

func (c *cmdNewSession) UnmarshalWire(m wire.Msg) error {
	c.Session = m.S[0]
	c.At = time.Duration(m.Int(0))
	c.Timeout = time.Duration(m.Int(1))
	return nil
}

type cmdKeepAlive struct {
	Session string
	At      time.Duration
}

func (c cmdKeepAlive) MarshalWire() wire.Msg {
	m := wire.Msg{Code: codeKeepAlive, S: [3]string{c.Session}}
	m.SetInt(0, int64(c.At))
	return m
}

func (c *cmdKeepAlive) UnmarshalWire(m wire.Msg) error {
	c.Session = m.S[0]
	c.At = time.Duration(m.Int(0))
	return nil
}

type cmdExpire struct {
	Session string
	AsOf    time.Duration
}

func (c cmdExpire) MarshalWire() wire.Msg {
	m := wire.Msg{Code: codeExpire, S: [3]string{c.Session}}
	m.SetInt(0, int64(c.AsOf))
	return m
}

func (c *cmdExpire) UnmarshalWire(m wire.Msg) error {
	c.Session = m.S[0]
	c.AsOf = time.Duration(m.Int(0))
	return nil
}

type cmdCreate struct {
	Path      string
	Data      wire.Msg
	Ephemeral bool
	Session   string
	Fencing   int64
	Takeover  bool // allow replacing an owner with a strictly lower fencing token
}

func (c cmdCreate) MarshalWire() wire.Msg {
	m := wire.Msg{Code: codeCreate, S: [3]string{c.Path, c.Session}, Sub: []wire.Msg{c.Data}}
	m.SetInt(0, c.Fencing)
	m.SetBool(1, c.Ephemeral)
	m.SetBool(2, c.Takeover)
	return m
}

func (c *cmdCreate) UnmarshalWire(m wire.Msg) error {
	c.Path, c.Session = m.S[0], m.S[1]
	c.Data = m.Sub[0]
	c.Fencing = m.Int(0)
	c.Ephemeral = m.Bool(1)
	c.Takeover = m.Bool(2)
	return nil
}

type cmdSet struct {
	Path    string
	Data    wire.Msg
	Version int64 // -1: unconditional
}

func (c cmdSet) MarshalWire() wire.Msg {
	m := wire.Msg{Code: codeSet, S: [3]string{c.Path}, Sub: []wire.Msg{c.Data}}
	m.SetInt(0, c.Version)
	return m
}

func (c *cmdSet) UnmarshalWire(m wire.Msg) error {
	c.Path = m.S[0]
	c.Data = m.Sub[0]
	c.Version = m.Int(0)
	return nil
}

type cmdDelete struct {
	Path    string
	Version int64 // -1: unconditional
}

func (c cmdDelete) MarshalWire() wire.Msg {
	m := wire.Msg{Code: codeDelete, S: [3]string{c.Path}}
	m.SetInt(0, c.Version)
	return m
}

func (c *cmdDelete) UnmarshalWire(m wire.Msg) error {
	c.Path = m.S[0]
	c.Version = m.Int(0)
	return nil
}

type cmdGet struct{ Path string }

func (c cmdGet) MarshalWire() wire.Msg {
	return wire.Msg{Code: codeGet, S: [3]string{c.Path}}
}

type cmdList struct{ Prefix string }

func (c cmdList) MarshalWire() wire.Msg {
	return wire.Msg{Code: codeList, S: [3]string{c.Prefix}}
}

// opResult is the decoded view of a codeResult message, the reply to every
// command. Found results carry the znode value in Sub[0]; List results carry
// paths in Strs and the matching values in Sub.
type opResult struct {
	Err     error
	Version int64
	Found   bool
	Data    wire.Msg
	Paths   []string
	Datas   []wire.Msg
}

func (r opResult) MarshalWire() wire.Msg {
	m := wire.Msg{Code: codeResult, Err: r.Err, Strs: r.Paths, Sub: r.Datas}
	m.SetInt(0, r.Version)
	m.SetBool(1, r.Found)
	if r.Found {
		m.Sub = []wire.Msg{r.Data}
	}
	return m
}

func (r *opResult) UnmarshalWire(m wire.Msg) error {
	r.Err = m.Err
	r.Version = m.Int(0)
	r.Found = m.Bool(1)
	r.Paths = m.Strs
	if r.Found {
		if len(m.Sub) == 1 {
			r.Data = m.Sub[0]
		}
	} else {
		r.Datas = m.Sub
	}
	return nil
}

// Apply implements raft.StateMachine. It must not block.
func (t *tree) Apply(cmd wire.Msg) wire.Msg {
	return t.apply(cmd).MarshalWire()
}

func (t *tree) apply(cmd wire.Msg) opResult {
	switch cmd.Code {
	case codeNewSession:
		var c cmdNewSession
		c.UnmarshalWire(cmd) //nolint:errcheck
		// Re-creating a session (same name, new fencing) replaces it and
		// drops the old incarnation's ephemerals.
		if _, ok := t.sessions[c.Session]; ok {
			t.dropEphemerals(c.Session)
		}
		t.sessions[c.Session] = &session{lastSeen: c.At, timeout: c.Timeout}
		return opResult{}
	case codeKeepAlive:
		var c cmdKeepAlive
		c.UnmarshalWire(cmd) //nolint:errcheck
		s, ok := t.sessions[c.Session]
		if !ok {
			return opResult{Err: ErrSession}
		}
		if c.At > s.lastSeen {
			s.lastSeen = c.At
		}
		return opResult{}
	case codeExpire:
		var c cmdExpire
		c.UnmarshalWire(cmd) //nolint:errcheck
		s, ok := t.sessions[c.Session]
		if !ok {
			return opResult{}
		}
		if c.AsOf-s.lastSeen < s.timeout {
			return opResult{} // heartbeat arrived in the meantime
		}
		delete(t.sessions, c.Session)
		t.dropEphemerals(c.Session)
		return opResult{}
	case codeCreate:
		var c cmdCreate
		c.UnmarshalWire(cmd) //nolint:errcheck
		if !t.owns(c.Path) {
			return opResult{Err: ErrWrongShard}
		}
		if c.Ephemeral {
			if _, ok := t.sessions[c.Session]; !ok {
				return opResult{Err: ErrSession}
			}
		}
		if old, ok := t.nodes[c.Path]; ok {
			// A create proposal may be re-submitted after an ambiguous
			// timeout; if the node is an ephemeral this same session already
			// owns, the first submission won — report success (with the
			// existing version) instead of self-fencing the retrier.
			if c.Ephemeral && old.ephemeral && old.session == c.Session && old.fencing == c.Fencing {
				return opResult{Version: old.version}
			}
			if !(c.Takeover && old.ephemeral && c.Fencing > old.fencing) {
				return opResult{Err: ErrExists}
			}
		}
		t.nodes[c.Path] = &znode{data: c.Data, version: 1, ephemeral: c.Ephemeral,
			session: c.Session, fencing: c.Fencing}
		return opResult{Version: 1}
	case codeSet:
		var c cmdSet
		c.UnmarshalWire(cmd) //nolint:errcheck
		if !t.owns(c.Path) {
			return opResult{Err: ErrWrongShard}
		}
		n, ok := t.nodes[c.Path]
		if !ok {
			return opResult{Err: ErrNotFound}
		}
		if c.Version >= 0 && n.version != c.Version {
			return opResult{Err: ErrBadVersion, Version: n.version}
		}
		n.data = c.Data
		n.version++
		return opResult{Version: n.version}
	case codeDelete:
		var c cmdDelete
		c.UnmarshalWire(cmd) //nolint:errcheck
		if !t.owns(c.Path) {
			return opResult{Err: ErrWrongShard}
		}
		n, ok := t.nodes[c.Path]
		if !ok {
			return opResult{Err: ErrNotFound}
		}
		if c.Version >= 0 && n.version != c.Version {
			return opResult{Err: ErrBadVersion, Version: n.version}
		}
		delete(t.nodes, c.Path)
		return opResult{}
	case codeGet:
		if !t.owns(cmd.S[0]) {
			return opResult{Err: ErrWrongShard}
		}
		n, ok := t.nodes[cmd.S[0]]
		if !ok {
			return opResult{Found: false}
		}
		return opResult{Found: true, Data: n.data, Version: n.version}
	case codeList:
		prefix := cmd.S[0]
		if !t.owns(prefix) {
			return opResult{Err: ErrWrongShard}
		}
		var paths []string
		for p := range t.nodes {
			if strings.HasPrefix(p, prefix) {
				paths = append(paths, p)
			}
		}
		sort.Strings(paths)
		datas := make([]wire.Msg, len(paths))
		for i, p := range paths {
			datas[i] = t.nodes[p].data
		}
		return opResult{Paths: paths, Datas: datas}
	default:
		return opResult{Err: fmt.Errorf("controller: unknown command %#x", uint16(cmd.Code))}
	}
}

func (t *tree) dropEphemerals(sess string) {
	for p, n := range t.nodes {
		if n.ephemeral && n.session == sess {
			delete(t.nodes, p)
		}
	}
}

// ---- Service ----

// Config holds controller timing. The constants live in internal/model
// (the unified hardware cost-model layer); this alias keeps the controller
// API self-contained. Its Raft field aliases raft.Config the same way.
type Config = model.ControllerConfig

// DefaultConfig returns the baseline profile's controller timing: sessions
// expire ~600 ms after a client dies, scanned every 200 ms.
func DefaultConfig() Config {
	return model.Baseline().Controller
}

// Service is a running controller ensemble: one raft.Set whose group 0 is
// the root shard (peer registry + shard directory) and whose groups 1..N,
// when cfg.Shards > 1, own hash ranges of the per-application state. With
// cfg.Shards <= 1 the set has a single group owning everything — the
// paper's ZooKeeper-equivalent layout.
type Service struct {
	sim      *simnet.Sim
	cfg      Config
	set      *raft.Set
	shards   []ShardRange
	nodes    []*simnet.Node
	replicas map[string][]*raft.Replica // node id -> replicas in group order
}

// Start boots a controller ensemble across the given nodes (typically 3).
func Start(s *simnet.Sim, nodes []*simnet.Node, cfg Config) *Service {
	ids := make([]string, len(nodes))
	for i, n := range nodes {
		ids[i] = n.Name()
	}
	svc := &Service{sim: s, cfg: cfg, nodes: nodes,
		shards: shardLayout(cfg.Shards), replicas: make(map[string][]*raft.Replica)}
	svc.set = raft.NewSet(s, "ncl-controller", cfg.Raft, ids)
	for _, sr := range svc.shards {
		sr := sr
		if len(svc.shards) == 1 {
			svc.set.AddGroup(func() raft.StateMachine { return newTree() })
		} else {
			svc.set.AddGroup(func() raft.StateMachine { return newShardTree(sr) })
		}
	}
	for i, n := range nodes {
		svc.startNode(n, ids[i])
	}
	return svc
}

func (svc *Service) startNode(n *simnet.Node, id string) {
	reps := svc.set.StartNode(n, id)
	svc.replicas[id] = reps
	if len(svc.shards) > 1 {
		// Publish the shard directory into the root group so clients can
		// fetch it. Every node proposes the same create; the first to land
		// wins and the rest see ErrExists — idempotent by construction.
		n.Go("ctrl-shard-dir:"+id, func(p *simnet.Proc) {
			rc := raft.NewClient(svc.set.Group(0), n)
			rc.Deadline = svc.cfg.OpTimeout
			for {
				res, err := rc.Propose(p, cmdCreate{Path: shardDirPath, Data: shardDirMsg(svc.shards)}.MarshalWire())
				if err == nil {
					var r opResult
					r.UnmarshalWire(res) //nolint:errcheck
					if r.Err == nil || errors.Is(r.Err, ErrExists) {
						return
					}
				}
				p.Sleep(svc.cfg.ExpiryScan)
			}
		})
	}
	// Session-expiry monitor: for every group this node currently leads,
	// propose expirations for sessions whose heartbeats stopped. The state
	// machine re-checks at apply time, so a stale monitor can never expire
	// a live session. Groups are scanned in index order and stale names
	// sorted, keeping the proposal stream deterministic.
	n.Go("ctrl-expiry:"+id, func(p *simnet.Proc) {
		rcs := make([]*raft.Client, len(reps))
		var stale []string
		for {
			p.Sleep(svc.cfg.ExpiryScan)
			for g, rep := range reps {
				if !rep.IsLeader() {
					continue
				}
				t := rep.SM().(*tree)
				stale = stale[:0]
				for name, sess := range t.sessions {
					if p.Now()-sess.lastSeen >= sess.timeout {
						stale = append(stale, name)
					}
				}
				if len(stale) == 0 {
					continue
				}
				sort.Strings(stale)
				if rcs[g] == nil {
					rcs[g] = raft.NewClient(svc.set.Group(g), n)
					rcs[g].Deadline = svc.cfg.OpTimeout
				}
				for _, name := range stale {
					rcs[g].Propose(p, cmdExpire{Session: name, AsOf: p.Now()}.MarshalWire()) //nolint:errcheck
				}
			}
		}
	})
}

// RestartNode re-joins a restarted controller node to the ensemble.
func (svc *Service) RestartNode(n *simnet.Node) {
	svc.startNode(n, n.Name())
}

// Cluster exposes the root Raft group (for tests and diagnostics).
func (svc *Service) Cluster() *raft.Cluster { return svc.set.Group(0) }

// Nodes returns the ensemble's nodes in start order.
func (svc *Service) Nodes() []*simnet.Node { return svc.nodes }

// LeaderNode returns the node whose replica currently leads raft group g,
// or nil when no replica believes it leads (mid-election). Fault injectors
// use it to aim partitions at the node whose loss actually hurts.
func (svc *Service) LeaderNode(g int) *simnet.Node {
	for _, n := range svc.nodes {
		reps := svc.replicas[n.Name()]
		if g < len(reps) && reps[g].IsLeader() {
			return n
		}
	}
	return nil
}

// Shards returns the shard layout (group 0 first).
func (svc *Service) Shards() []ShardRange { return svc.shards }

// Config returns the service timing configuration.
func (svc *Service) Config() Config { return svc.cfg }
