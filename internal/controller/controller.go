// Package controller implements NCL's fault-tolerant controller (§4.3,
// §4.7). The paper builds it on a ZooKeeper ensemble; this implementation
// provides the same facilities — a hierarchical key space with versioned
// compare-and-set, ephemeral nodes bound to client sessions, and a
// single-instance lock per application — as a state machine replicated by
// the internal/raft package across three controller nodes.
//
// Directory layout mirrors §4.7:
//
//	/peers/<name>          -> PeerInfo   (ephemeral: registered log peers)
//	/apps/<app>/<file>     -> FileEntry  (the ap-map: peers + epoch per ncl file)
//	/servers/<app>         -> ServerInfo (ephemeral: single-instance lock)
//
// One deviation from stock ZooKeeper, documented in DESIGN.md: ephemeral
// creates carry a fencing token (the application incarnation). A recovering
// instance with a higher token takes over the /servers znode immediately
// instead of waiting out the dead session, keeping recovery at the paper's
// sub-second scale while preserving the only-one-instance guarantee (two
// instances with the same token still race, and exactly one wins).
package controller

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"splitft/internal/model"
	"splitft/internal/raft"
	"splitft/internal/simnet"
)

// PeerInfo is the value stored at /peers/<name>.
type PeerInfo struct {
	Name     string
	Addr     string // RPC address of the peer daemon
	AvailMem int64
}

// FileEntry is the ap-map value stored at /apps/<app>/<file>.
type FileEntry struct {
	Peers      []string
	Epoch      int64
	RegionSize int64
	// AppendOnly records that the file only ever grows, enabling the
	// tail-shipping catch-up optimization during recovery (§4.5.1).
	AppendOnly bool
}

// ServerInfo is the value stored at /servers/<app>.
type ServerInfo struct {
	Node    string
	Fencing int64
}

// Errors.
var (
	ErrExists     = errors.New("controller: node exists")
	ErrNotFound   = errors.New("controller: node not found")
	ErrBadVersion = errors.New("controller: version mismatch")
	ErrSession    = errors.New("controller: session expired or unknown")
	ErrFenced     = errors.New("controller: fenced by a newer instance")
)

// ---- Replicated state machine ----

type znode struct {
	data      any
	version   int64
	ephemeral bool
	session   string
	fencing   int64
}

type session struct {
	lastSeen time.Duration
	timeout  time.Duration
}

type tree struct {
	nodes    map[string]*znode
	sessions map[string]*session
}

func newTree() *tree {
	return &tree{nodes: make(map[string]*znode), sessions: make(map[string]*session)}
}

// Commands. Every mutation is versioned or idempotent so client retries
// after ambiguous failures are safe.
type cmdNewSession struct {
	Session string
	At      time.Duration
	Timeout time.Duration
}

type cmdKeepAlive struct {
	Session string
	At      time.Duration
}

type cmdExpire struct {
	Session string
	AsOf    time.Duration
}

type cmdCreate struct {
	Path      string
	Data      any
	Ephemeral bool
	Session   string
	Fencing   int64
	Takeover  bool // allow replacing an owner with a strictly lower fencing token
}

type cmdSet struct {
	Path    string
	Data    any
	Version int64 // -1: unconditional
}

type cmdDelete struct {
	Path    string
	Version int64 // -1: unconditional
}

type cmdGet struct{ Path string }

type cmdList struct{ Prefix string }

// Results.
type opResult struct {
	Err     error
	Version int64
	Found   bool
	Data    any
	Paths   []string
	Datas   []any
}

// Apply implements raft.StateMachine. It must not block.
func (t *tree) Apply(cmd any) any {
	switch c := cmd.(type) {
	case cmdNewSession:
		// Re-creating a session (same name, new fencing) replaces it and
		// drops the old incarnation's ephemerals.
		if _, ok := t.sessions[c.Session]; ok {
			t.dropEphemerals(c.Session)
		}
		t.sessions[c.Session] = &session{lastSeen: c.At, timeout: c.Timeout}
		return opResult{}
	case cmdKeepAlive:
		s, ok := t.sessions[c.Session]
		if !ok {
			return opResult{Err: ErrSession}
		}
		if c.At > s.lastSeen {
			s.lastSeen = c.At
		}
		return opResult{}
	case cmdExpire:
		s, ok := t.sessions[c.Session]
		if !ok {
			return opResult{}
		}
		if c.AsOf-s.lastSeen < s.timeout {
			return opResult{} // heartbeat arrived in the meantime
		}
		delete(t.sessions, c.Session)
		t.dropEphemerals(c.Session)
		return opResult{}
	case cmdCreate:
		if c.Ephemeral {
			if _, ok := t.sessions[c.Session]; !ok {
				return opResult{Err: ErrSession}
			}
		}
		if old, ok := t.nodes[c.Path]; ok {
			if !(c.Takeover && old.ephemeral && c.Fencing > old.fencing) {
				return opResult{Err: ErrExists}
			}
		}
		t.nodes[c.Path] = &znode{data: c.Data, version: 1, ephemeral: c.Ephemeral,
			session: c.Session, fencing: c.Fencing}
		return opResult{Version: 1}
	case cmdSet:
		n, ok := t.nodes[c.Path]
		if !ok {
			return opResult{Err: ErrNotFound}
		}
		if c.Version >= 0 && n.version != c.Version {
			return opResult{Err: ErrBadVersion, Version: n.version}
		}
		n.data = c.Data
		n.version++
		return opResult{Version: n.version}
	case cmdDelete:
		n, ok := t.nodes[c.Path]
		if !ok {
			return opResult{Err: ErrNotFound}
		}
		if c.Version >= 0 && n.version != c.Version {
			return opResult{Err: ErrBadVersion, Version: n.version}
		}
		delete(t.nodes, c.Path)
		return opResult{}
	case cmdGet:
		n, ok := t.nodes[c.Path]
		if !ok {
			return opResult{Found: false}
		}
		return opResult{Found: true, Data: n.data, Version: n.version}
	case cmdList:
		var paths []string
		for p := range t.nodes {
			if strings.HasPrefix(p, c.Prefix) {
				paths = append(paths, p)
			}
		}
		sort.Strings(paths)
		datas := make([]any, len(paths))
		for i, p := range paths {
			datas[i] = t.nodes[p].data
		}
		return opResult{Paths: paths, Datas: datas}
	default:
		return opResult{Err: fmt.Errorf("controller: unknown command %T", cmd)}
	}
}

func (t *tree) dropEphemerals(sess string) {
	for p, n := range t.nodes {
		if n.ephemeral && n.session == sess {
			delete(t.nodes, p)
		}
	}
}

// ---- Service ----

// Config holds controller timing. The constants live in internal/model
// (the unified hardware cost-model layer); this alias keeps the controller
// API self-contained. Its Raft field aliases raft.Config the same way.
type Config = model.ControllerConfig

// DefaultConfig returns the baseline profile's controller timing: sessions
// expire ~600 ms after a client dies, scanned every 200 ms.
func DefaultConfig() Config {
	return model.Baseline().Controller
}

// Service is a running controller ensemble.
type Service struct {
	sim      *simnet.Sim
	cfg      Config
	cluster  *raft.Cluster
	nodes    []*simnet.Node
	replicas map[string]*raft.Replica
}

// Start boots a controller ensemble across the given nodes (typically 3).
func Start(s *simnet.Sim, nodes []*simnet.Node, cfg Config) *Service {
	ids := make([]string, len(nodes))
	for i, n := range nodes {
		ids[i] = n.Name()
	}
	svc := &Service{sim: s, cfg: cfg, nodes: nodes, replicas: make(map[string]*raft.Replica)}
	svc.cluster = raft.NewCluster(s, "ncl-controller", cfg.Raft, ids, func() raft.StateMachine { return newTree() })
	for i, n := range nodes {
		svc.startNode(n, ids[i])
	}
	return svc
}

func (svc *Service) startNode(n *simnet.Node, id string) {
	rep := raft.StartReplica(svc.cluster, n, id)
	svc.replicas[id] = rep
	// Session-expiry monitor: the leader proposes expirations for sessions
	// whose heartbeats stopped. The state machine re-checks at apply time,
	// so a stale monitor can never expire a live session.
	n.Go("ctrl-expiry:"+id, func(p *simnet.Proc) {
		rc := raft.NewClient(svc.cluster, n)
		rc.Deadline = svc.cfg.OpTimeout
		for {
			p.Sleep(svc.cfg.ExpiryScan)
			if !rep.IsLeader() {
				continue
			}
			t := rep.SM().(*tree)
			var stale []string
			for name, sess := range t.sessions {
				if p.Now()-sess.lastSeen >= sess.timeout {
					stale = append(stale, name)
				}
			}
			sort.Strings(stale)
			for _, name := range stale {
				rc.Propose(p, cmdExpire{Session: name, AsOf: p.Now()}) //nolint:errcheck
			}
		}
	})
}

// RestartNode re-joins a restarted controller node to the ensemble.
func (svc *Service) RestartNode(n *simnet.Node) {
	svc.startNode(n, n.Name())
}

// Cluster exposes the underlying Raft cluster (for clients).
func (svc *Service) Cluster() *raft.Cluster { return svc.cluster }

// Config returns the service timing configuration.
func (svc *Service) Config() Config { return svc.cfg }
