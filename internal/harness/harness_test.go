package harness

import (
	"errors"
	"testing"
	"time"

	"splitft/internal/core"
	"splitft/internal/simnet"
)

func TestRunBootsEverything(t *testing.T) {
	c := New(Options{Seed: 1, NumPeers: 3, WithLocalFS: true})
	err := c.Run(func(p *simnet.Proc) error {
		if len(c.Peers) != 3 {
			t.Errorf("peers booted = %d", len(c.Peers))
		}
		if c.LocalFS == nil {
			t.Error("local fs cluster missing")
		}
		fs, err := c.NewFS(p, "app", 0)
		if err != nil {
			return err
		}
		// NCL and dfs paths both usable out of the box.
		nf, err := fs.OpenFile(p, "log", core.O_NCL|core.O_CREATE, 1<<20)
		if err != nil {
			return err
		}
		if _, err := nf.Write(p, []byte("x")); err != nil {
			return err
		}
		df, err := fs.OpenFile(p, "/data", core.O_CREATE, 0)
		if err != nil {
			return err
		}
		if _, err := df.Write(p, []byte("y")); err != nil {
			return err
		}
		return df.Sync(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	c := New(Options{Seed: 2, NumPeers: 2})
	sentinel := errors.New("sentinel")
	if err := c.Run(func(p *simnet.Proc) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestRestartPeerRejoins(t *testing.T) {
	c := New(Options{Seed: 3, NumPeers: 3})
	err := c.Run(func(p *simnet.Proc) error {
		name := c.PeerNodes[0].Name()
		c.PeerNodes[0].Crash()
		p.Sleep(10 * time.Millisecond)
		if err := c.RestartPeer(p, name); err != nil {
			return err
		}
		if !c.PeerNodes[0].Alive() {
			t.Error("peer node not alive after restart")
		}
		if err := c.RestartPeer(p, "nope"); err == nil {
			t.Error("unknown peer restart succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := New(Options{Seed: 4})
	if len(c.PeerNodes) != 4 {
		t.Fatalf("default peers = %d", len(c.PeerNodes))
	}
	if c.Sim.Net().Latency(c.AppNode, c.ClientNode) != 5*time.Microsecond {
		t.Fatalf("default latency = %v", c.Sim.Net().Latency(c.AppNode, c.ClientNode))
	}
}
