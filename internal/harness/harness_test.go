package harness

import (
	"errors"
	"testing"
	"time"

	"splitft/internal/core"
	"splitft/internal/model"
	"splitft/internal/simnet"
)

func TestRunBootsEverything(t *testing.T) {
	c := New(Options{Seed: 1, NumPeers: 3, WithLocalFS: true})
	err := c.Run(func(p *simnet.Proc) error {
		if len(c.Peers) != 3 {
			t.Errorf("peers booted = %d", len(c.Peers))
		}
		if c.LocalFS == nil {
			t.Error("local fs cluster missing")
		}
		fs, err := c.NewFS(p, "app", 0)
		if err != nil {
			return err
		}
		// NCL and dfs paths both usable out of the box.
		nf, err := fs.OpenFile(p, "log", core.O_NCL|core.O_CREATE, 1<<20)
		if err != nil {
			return err
		}
		if _, err := nf.Write(p, []byte("x")); err != nil {
			return err
		}
		df, err := fs.OpenFile(p, "/data", core.O_CREATE, 0)
		if err != nil {
			return err
		}
		if _, err := df.Write(p, []byte("y")); err != nil {
			return err
		}
		return df.Sync(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	c := New(Options{Seed: 2, NumPeers: 2})
	sentinel := errors.New("sentinel")
	if err := c.Run(func(p *simnet.Proc) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestRestartPeerRejoins(t *testing.T) {
	c := New(Options{Seed: 3, NumPeers: 3})
	err := c.Run(func(p *simnet.Proc) error {
		name := c.PeerNodes[0].Name()
		c.PeerNodes[0].Crash()
		p.Sleep(10 * time.Millisecond)
		if err := c.RestartPeer(p, name); err != nil {
			return err
		}
		if !c.PeerNodes[0].Alive() {
			t.Error("peer node not alive after restart")
		}
		if err := c.RestartPeer(p, "nope"); err == nil {
			t.Error("unknown peer restart succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := New(Options{Seed: 4})
	if len(c.PeerNodes) != 4 {
		t.Fatalf("default peers = %d", len(c.PeerNodes))
	}
	if c.Sim.Net().Latency(c.AppNode, c.ClientNode) != 5*time.Microsecond {
		t.Fatalf("default latency = %v", c.Sim.Net().Latency(c.AppNode, c.ClientNode))
	}
	if c.Profile == nil || c.Profile.Name != model.Baseline().Name {
		t.Fatalf("nil Options.Profile should resolve to the baseline, got %+v", c.Profile)
	}
}

func TestProfileOverridePlumbing(t *testing.T) {
	prof := model.CX6RoCE100()
	prof.DFS.SyncFixed = 1750 * time.Microsecond
	prof.NCL.Replication = "mirror:2"
	c := New(Options{Seed: 5, Profile: prof})
	// The fabric, dfs and network must be built from the custom profile,
	// not the baseline.
	if got := c.Fabric.Params().WRBase; got != prof.RDMA.WRBase {
		t.Errorf("fabric WRBase = %v, want %v", got, prof.RDMA.WRBase)
	}
	if got := c.DFS.Params().SyncFixed; got != 1750*time.Microsecond {
		t.Errorf("dfs SyncFixed = %v, want the override", got)
	}
	if got := c.Sim.Net().Latency(c.AppNode, c.ClientNode); got != prof.NetLatency {
		t.Errorf("net latency = %v, want %v", got, prof.NetLatency)
	}
	if got := c.FSOptions("app", 0).NCL.Policy.F; got != 2 {
		t.Errorf("FSOptions NCL.Policy.F = %d, want the profile's 2", got)
	}
	if c.peerCfg != prof.Peer {
		t.Errorf("peer config = %+v, want the profile's", c.peerCfg)
	}
}

func TestExplicitOverridesBeatProfile(t *testing.T) {
	prof := model.Baseline()
	dfsParams := prof.DFS
	dfsParams.SyncFixed = 42 * time.Microsecond
	c := New(Options{
		Seed:       6,
		Profile:    prof,
		DFSParams:  &dfsParams,
		NetLatency: 9 * time.Microsecond,
		PeerMem:    64 << 20,
	})
	if got := c.DFS.Params().SyncFixed; got != 42*time.Microsecond {
		t.Errorf("DFSParams override lost: %v", got)
	}
	if got := c.Sim.Net().Latency(c.AppNode, c.ClientNode); got != 9*time.Microsecond {
		t.Errorf("NetLatency override lost: %v", got)
	}
	if c.peerCfg.LendableMem != 64<<20 {
		t.Errorf("PeerMem override lost: %v", c.peerCfg.LendableMem)
	}
}
