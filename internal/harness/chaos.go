package harness

import (
	"fmt"
	"math/rand"
	"time"

	"splitft/internal/simnet"
)

// Injector drives adversarial failure schedules against a Cluster on the
// virtual clock: domain-correlated crashes, gray (slow-but-alive) peers and
// storage nodes, controller isolation mid-replacement, crash storms, and
// lossy links. Every decision draws from a seeded RNG, so a schedule is a
// pure function of (cluster seed, injector seed, scenario) and replays
// byte-identically. Each injected event is appended to Events and handed to
// OnEvent, which is where the chaos runner hangs its durability check —
// "verify the fsynced prefix after every event" is literally this hook.
type Injector struct {
	C   *Cluster
	rng *rand.Rand

	// Events is the schedule actually executed, with virtual timestamps.
	Events []ChaosEvent
	// OnEvent, when non-nil, runs synchronously after every injected event.
	// An error aborts the scenario.
	OnEvent func(p *simnet.Proc, what string) error
}

// ChaosEvent is one executed fault event.
type ChaosEvent struct {
	At   time.Duration `json:"at"`
	What string        `json:"what"`
}

// ChaosScenarios lists every scenario Run accepts, in sweep order.
var ChaosScenarios = []string{
	"peer-crash", "rack", "gray-peer", "gray-chain", "ctrl-isolate", "storm", "flaky-link",
}

// NewInjector builds an injector with its own seeded RNG (independent of
// the simulation's, so adding a scenario never perturbs workload draws).
func NewInjector(c *Cluster, seed int64) *Injector {
	return &Injector{C: c, rng: rand.New(rand.NewSource(seed))}
}

func (in *Injector) event(p *simnet.Proc, format string, args ...any) error {
	what := fmt.Sprintf(format, args...)
	in.Events = append(in.Events, ChaosEvent{At: p.Now(), What: what})
	if in.OnEvent != nil {
		return in.OnEvent(p, what)
	}
	return nil
}

// pickPeer returns a random peer index.
func (in *Injector) pickPeer() int { return in.rng.Intn(len(in.C.PeerNodes)) }

// crashPeer crashes one peer node.
func (in *Injector) crashPeer(p *simnet.Proc, i int) error {
	in.C.PeerNodes[i].Crash()
	return in.event(p, "crash %s", in.C.PeerNodes[i].Name())
}

// restartPeer revives one peer node and its daemon.
func (in *Injector) restartPeer(p *simnet.Proc, i int) error {
	name := in.C.PeerNodes[i].Name()
	if err := in.C.RestartPeer(p, name); err != nil {
		return err
	}
	return in.event(p, "restart %s", name)
}

// CrashDomain crashes every peer in one failure domain — the correlated
// rack failure. It returns the crashed indices.
func (in *Injector) CrashDomain(p *simnet.Proc, dom string) ([]int, error) {
	var down []int
	for i := range in.C.PeerNodes {
		if in.C.peerCfgFor(i).Domain == dom {
			in.C.PeerNodes[i].Crash()
			down = append(down, i)
		}
	}
	return down, in.event(p, "crash domain %s (%d peers)", dom, len(down))
}

// Run executes one named scenario (see ChaosScenarios) and leaves the
// cluster healthy: every crashed node restarted, every link fault cleared.
func (in *Injector) Run(p *simnet.Proc, scenario string) error {
	net := in.C.Sim.Net()
	var err error
	step := func(e error) {
		if err == nil {
			err = e
		}
	}
	switch scenario {
	case "peer-crash":
		// The baseline single failure: one peer dies mid-load, comes back.
		p.Sleep(50 * time.Millisecond)
		i := in.pickPeer()
		step(in.crashPeer(p, i))
		p.Sleep(300 * time.Millisecond)
		step(in.restartPeer(p, i))

	case "rack":
		// Correlated failure: every peer sharing a failure domain dies at
		// the same instant — the regime domain-spread placement exists for.
		p.Sleep(50 * time.Millisecond)
		dom := in.C.peerCfgFor(in.pickPeer()).Domain
		down, e := in.CrashDomain(p, dom)
		step(e)
		p.Sleep(400 * time.Millisecond)
		for _, i := range down {
			step(in.restartPeer(p, i))
		}

	case "gray-peer":
		// Slow-but-alive log peer: every RDMA WR toward it pays 2 ms extra,
		// so its completions lag thousands of sequence numbers behind while
		// the peer keeps answering RPCs — the failure detectors see nothing.
		p.Sleep(50 * time.Millisecond)
		i := in.pickPeer()
		pn := in.C.PeerNodes[i]
		net.SetLinkLatency(in.C.AppNode, pn, 2*time.Millisecond)
		step(in.event(p, "gray %s (+2ms app->peer)", pn.Name()))
		p.Sleep(300 * time.Millisecond)
		net.SetLinkLatency(in.C.AppNode, pn, 0)
		step(in.event(p, "ungray %s", pn.Name()))

	case "gray-chain":
		// Slow-but-alive storage node: incoming hops exceed the chain's
		// depth-scaled timeout, so healthy-looking appends blame it and
		// chains re-form around it (the probation-window path).
		if len(in.C.StorageNodes) == 0 {
			return fmt.Errorf("harness: gray-chain needs an extent plane")
		}
		p.Sleep(50 * time.Millisecond)
		sn := in.C.StorageNodes[in.rng.Intn(len(in.C.StorageNodes))]
		grayIn := func(d time.Duration) {
			net.SetLinkLatency(in.C.AppNode, sn, d)
			for _, other := range in.C.StorageNodes {
				if other != sn {
					net.SetLinkLatency(other, sn, d)
				}
			}
		}
		grayIn(500 * time.Millisecond)
		step(in.event(p, "gray %s (+500ms inbound)", sn.Name()))
		p.Sleep(400 * time.Millisecond)
		grayIn(0)
		step(in.event(p, "ungray %s", sn.Name()))

	case "ctrl-isolate":
		// A peer dies (forcing a replacement) and the controller leader is
		// isolated mid-replacement: the ap-map CAS must stall until the
		// ensemble re-elects or the partition heals, never ack a torn map.
		p.Sleep(50 * time.Millisecond)
		i := in.pickPeer()
		step(in.crashPeer(p, i))
		p.Sleep(20 * time.Millisecond)
		if leader := in.C.Controller.LeaderNode(0); leader != nil {
			net.Isolate(leader)
			step(in.event(p, "isolate controller leader %s", leader.Name()))
			p.Sleep(400 * time.Millisecond)
			net.Unisolate(leader)
			step(in.event(p, "reconnect %s", leader.Name()))
		}
		p.Sleep(200 * time.Millisecond)
		step(in.restartPeer(p, i))

	case "storm":
		// Crash storm: overlapping crashes and restarts in quick succession,
		// so recovery and repair always run against further failures.
		p.Sleep(50 * time.Millisecond)
		a := in.pickPeer()
		b := (a + 1) % len(in.C.PeerNodes)
		c := (a + 2) % len(in.C.PeerNodes)
		step(in.crashPeer(p, a))
		p.Sleep(80 * time.Millisecond)
		step(in.crashPeer(p, b))
		p.Sleep(80 * time.Millisecond)
		step(in.restartPeer(p, a))
		p.Sleep(80 * time.Millisecond)
		step(in.crashPeer(p, c))
		p.Sleep(80 * time.Millisecond)
		step(in.restartPeer(p, b))
		p.Sleep(80 * time.Millisecond)
		step(in.restartPeer(p, c))

	case "flaky-link":
		// Lossy control plane: 15% of RPCs between the app and the peers/
		// controller vanish, both directions. The RDMA data plane is not
		// lossy (its transport retries model loss as latency), so this
		// stresses setup, lookup and lease traffic.
		p.Sleep(50 * time.Millisecond)
		lossy := func(rate float64) {
			for _, pn := range in.C.PeerNodes {
				net.SetLoss(in.C.AppNode, pn, rate)
				net.SetLoss(pn, in.C.AppNode, rate)
			}
			for _, cn := range in.C.Controller.Nodes() {
				net.SetLoss(in.C.AppNode, cn, rate)
				net.SetLoss(cn, in.C.AppNode, rate)
			}
		}
		lossy(0.15)
		step(in.event(p, "loss 15%% on app<->peer and app<->controller links"))
		p.Sleep(300 * time.Millisecond)
		lossy(0)
		step(in.event(p, "links clean"))

	default:
		return fmt.Errorf("harness: unknown chaos scenario %q", scenario)
	}
	if err != nil {
		return err
	}
	// Catch-all: a scenario must not leak faults into the next one.
	net.HealAll()
	p.Sleep(100 * time.Millisecond)
	return in.event(p, "heal-all")
}
