package harness

import (
	"errors"
	"testing"
	"time"

	"splitft/internal/simnet"
)

func chaosCluster(seed int64) *Cluster {
	return New(Options{Seed: seed, NumPeers: 6, PeerDomainCount: 3})
}

// Every scenario must leave the cluster healthy: all peers alive, no link
// fault outliving the run, and an event log with nondecreasing timestamps.
func TestChaosScenariosLeaveClusterHealthy(t *testing.T) {
	for _, sc := range ChaosScenarios {
		sc := sc
		t.Run(sc, func(t *testing.T) {
			c := chaosCluster(11)
			in := NewInjector(c, 42)
			if err := c.Run(func(p *simnet.Proc) error {
				return in.Run(p, sc)
			}); err != nil {
				t.Fatalf("scenario %s: %v", sc, err)
			}
			for i, n := range c.PeerNodes {
				if !n.Alive() {
					t.Errorf("peer %d dead after %s", i, sc)
				}
			}
			net := c.Sim.Net()
			for _, n := range c.PeerNodes {
				if net.Partitioned(c.AppNode, n) || net.GrayLatency(c.AppNode, n) != 0 {
					t.Errorf("lingering fault toward %s after %s", n.Name(), sc)
				}
			}
			for _, n := range c.Controller.Nodes() {
				if net.Isolated(n) {
					t.Errorf("controller node %s still isolated after %s", n.Name(), sc)
				}
			}
			if len(in.Events) < 2 {
				t.Fatalf("scenario %s logged %d events", sc, len(in.Events))
			}
			last := time.Duration(-1)
			for _, ev := range in.Events {
				if ev.At < last {
					t.Errorf("event %q at %v after %v", ev.What, ev.At, last)
				}
				last = ev.At
			}
			if got := in.Events[len(in.Events)-1].What; got != "heal-all" {
				t.Errorf("last event = %q, want heal-all", got)
			}
		})
	}
}

// The executed schedule is a pure function of (cluster seed, injector seed):
// two fresh runs of the full sweep produce identical event logs.
func TestChaosScheduleDeterministic(t *testing.T) {
	runOnce := func() []ChaosEvent {
		c := chaosCluster(7)
		in := NewInjector(c, 99)
		if err := c.Run(func(p *simnet.Proc) error {
			for _, sc := range ChaosScenarios {
				if err := in.Run(p, sc); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return in.Events
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// The rack scenario crashes exactly one whole failure domain, correlated.
func TestChaosRackCrashesWholeDomain(t *testing.T) {
	c := chaosCluster(3)
	in := NewInjector(c, 5)
	var downAtOnce int
	in.OnEvent = func(p *simnet.Proc, what string) error {
		down := 0
		for _, n := range c.PeerNodes {
			if !n.Alive() {
				down++
			}
		}
		if down > downAtOnce {
			downAtOnce = down
		}
		return nil
	}
	if err := c.Run(func(p *simnet.Proc) error {
		return in.Run(p, "rack")
	}); err != nil {
		t.Fatal(err)
	}
	// 6 peers over 3 domains: a rack failure takes exactly 2 down together.
	if downAtOnce != 2 {
		t.Fatalf("max simultaneous crashes = %d, want 2 (one domain)", downAtOnce)
	}
}

// An OnEvent error aborts the scenario; unknown scenarios are rejected.
func TestChaosErrorPaths(t *testing.T) {
	c := chaosCluster(4)
	in := NewInjector(c, 1)
	sentinel := errors.New("check failed")
	in.OnEvent = func(p *simnet.Proc, what string) error { return sentinel }
	if err := c.Run(func(p *simnet.Proc) error {
		if err := in.Run(p, "peer-crash"); err != sentinel {
			t.Errorf("OnEvent error not propagated: %v", err)
		}
		if err := in.Run(p, "no-such-scenario"); err == nil {
			t.Error("unknown scenario accepted")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
