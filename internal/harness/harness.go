// Package harness assembles the full SplitFT deployment used by tests,
// benchmarks and examples: the simulated datacenter of §5's testbed — a
// three-node controller ensemble, a CephFS-like dfs cluster, an RDMA
// fabric, a pool of log peers, an application-server node, and a client
// node — all on one deterministic simulation.
package harness

import (
	"fmt"
	"time"

	"splitft/internal/controller"
	"splitft/internal/core"
	"splitft/internal/dfs"
	"splitft/internal/model"
	"splitft/internal/ncl"
	"splitft/internal/peer"
	"splitft/internal/rdma"
	"splitft/internal/simnet"
	"splitft/internal/trace"
)

// Options configures a testbed.
type Options struct {
	Seed     int64
	NumPeers int
	// Trace, when non-nil, is attached to the simulation so every layer
	// records spans into it (see internal/trace). Nil disables tracing.
	Trace *trace.Collector
	// Profile is the hardware cost model for the whole testbed (fabric,
	// dfs, controller, peers, net latency). Nil means model.Baseline().
	// The fine-grained overrides below layer on top of it.
	Profile *model.Profile
	// PeerMem is each peer's lendable memory (default from profile: 1 GiB).
	PeerMem int64
	// AppCores is the application server's core count (default 10, the
	// paper's E5-2640v4).
	AppCores int
	// DFSParams overrides the profile's dfs cost model.
	DFSParams *dfs.Params
	// WithLocalFS adds a local-ext4 cluster (Fig 11b baseline).
	WithLocalFS bool
	// NetLatency overrides the profile's default one-way latency.
	NetLatency time.Duration
	// PeerConfig overrides peer daemon settings (LendableMem is still
	// taken from PeerMem when set).
	PeerConfig *peer.Config
	// PeerDomainCount > 0 assigns each peer a failure domain, round-robin
	// across that many domains ("dom0".."dom<n-1>"), so placement spreads
	// a log's group across domains. 0 leaves domains unset (the default —
	// placement and traces are unchanged).
	PeerDomainCount int
	// ControllerShards overrides the profile's Controller.Shards: the
	// number of data Raft groups the controller's znode tree is split
	// across (0/1 = the paper's single-group layout).
	ControllerShards int
}

// Cluster is a running testbed.
type Cluster struct {
	Sim        *simnet.Sim
	Controller *controller.Service
	Fabric     *rdma.Fabric
	DFS        *dfs.Cluster
	LocalFS    *dfs.Cluster
	AppNode    *simnet.Node
	ClientNode *simnet.Node
	// StorageNodes back the dfs extent plane (empty when the profile's
	// DFS.ExtentNodes is zero).
	StorageNodes []*simnet.Node
	PeerNodes    []*simnet.Node
	Peers        map[string]*peer.Peer
	// Profile is the resolved hardware cost model the testbed was built
	// with; application builders read their CPU costs from it.
	Profile *model.Profile
	// Seed is the simulation seed the testbed was built with; workload
	// drivers derive per-client generator seeds from it.
	Seed int64

	peerCfg     peer.Config
	domainCount int
}

// New builds the testbed (nodes and services that need no running procs).
// Call Run (or Boot from your own proc) to bring up peers.
func New(opts Options) *Cluster {
	if opts.NumPeers == 0 {
		opts.NumPeers = 4
	}
	if opts.AppCores == 0 {
		opts.AppCores = 10
	}
	prof := opts.Profile
	if prof == nil {
		prof = model.Baseline()
	}
	if opts.NetLatency == 0 {
		opts.NetLatency = prof.NetLatency
	}
	s := simnet.New(opts.Seed)
	if opts.Trace != nil {
		s.SetTracer(opts.Trace)
	}
	s.Net().SetDefaultLatency(opts.NetLatency)
	ctrlCfg := prof.Controller
	if opts.ControllerShards != 0 {
		ctrlCfg.Shards = opts.ControllerShards
	}
	ctrlNodes := []*simnet.Node{s.NewNode("ctrl0"), s.NewNode("ctrl1"), s.NewNode("ctrl2")}
	dfsParams := prof.DFS
	if opts.DFSParams != nil {
		dfsParams = *opts.DFSParams
	}
	c := &Cluster{
		Sim:        s,
		Controller: controller.Start(s, ctrlNodes, ctrlCfg),
		Fabric:     rdma.NewFabric(s, prof.RDMA),
		DFS:        dfs.NewCluster(s, "cephfs", dfsParams),
		AppNode:    s.NewNode("appserver"),
		ClientNode: s.NewNode("client"),
		Peers:      make(map[string]*peer.Peer),
		Profile:    prof,
		Seed:       opts.Seed,
	}
	if dfsParams.ExtentNodes > 0 {
		for i := 0; i < dfsParams.ExtentNodes; i++ {
			c.StorageNodes = append(c.StorageNodes, s.NewNode(fmt.Sprintf("cephfs-sn%d", i)))
		}
		c.DFS.EnableExtents(c.StorageNodes)
		// Extent metadata lives under /dfs/cephfs/ on the sharded controller.
		// The per-mount client is sessionless — allocation and seals are not
		// ephemeral — so it adds no keep-alive traffic.
		ctrl := c.Controller
		c.DFS.SetExtentMetaFactory(func(n *simnet.Node) dfs.ExtentMeta {
			return controller.NewClient(ctrl, n, "dfs-extmeta", 0).ExtentMeta("cephfs")
		})
	}
	if opts.WithLocalFS {
		// The local-ext4 baseline never has an extent plane, whatever the
		// profile says about the disaggregated cluster.
		localParams := prof.LocalFS
		localParams.ExtentNodes = 0
		c.LocalFS = dfs.NewCluster(s, "local-ext4", localParams)
	}
	c.AppNode.SetCores(opts.AppCores)
	c.ClientNode.SetCores(16)
	c.peerCfg = prof.Peer
	if opts.PeerConfig != nil {
		c.peerCfg = *opts.PeerConfig
	}
	if opts.PeerMem != 0 {
		c.peerCfg.LendableMem = opts.PeerMem
	}
	c.domainCount = opts.PeerDomainCount
	for i := 0; i < opts.NumPeers; i++ {
		c.PeerNodes = append(c.PeerNodes, s.NewNode(fmt.Sprintf("peer%d", i)))
	}
	return c
}

// peerCfgFor returns the daemon config for the i-th peer, assigning its
// failure domain when PeerDomainCount is set.
func (c *Cluster) peerCfgFor(i int) peer.Config {
	cfg := c.peerCfg
	if c.domainCount > 0 {
		cfg.Domain = fmt.Sprintf("dom%d", i%c.domainCount)
	}
	return cfg
}

// Boot waits out controller election and starts the peer daemons. Call it
// from a proc before using NCL.
func (c *Cluster) Boot(p *simnet.Proc) error {
	p.Sleep(time.Second)
	for i, n := range c.PeerNodes {
		pr, err := peer.Start(p, c.Controller, c.Fabric, n, c.peerCfgFor(i))
		if err != nil {
			return fmt.Errorf("harness: start peer %s: %w", n.Name(), err)
		}
		c.Peers[n.Name()] = pr
	}
	return nil
}

// RestartPeer revives a crashed peer node and restarts its daemon.
func (c *Cluster) RestartPeer(p *simnet.Proc, name string) error {
	var node *simnet.Node
	idx := -1
	for i, n := range c.PeerNodes {
		if n.Name() == name {
			node, idx = n, i
			break
		}
	}
	if node == nil {
		return fmt.Errorf("harness: unknown peer %s", name)
	}
	node.Restart()
	pr, err := peer.Start(p, c.Controller, c.Fabric, node, c.peerCfgFor(idx))
	if err != nil {
		return err
	}
	c.Peers[name] = pr
	return nil
}

// Run boots the cluster and executes fn in a detached proc, stopping the
// simulation when fn returns. It returns the simulation error, if any.
func (c *Cluster) Run(fn func(p *simnet.Proc) error) error {
	var fnErr error
	c.Sim.Go("harness-main", func(p *simnet.Proc) {
		// Stop is deferred so the simulation halts promptly even if fn's
		// goroutine exits abnormally (e.g. t.Fatal inside a test proc).
		defer c.Sim.Stop()
		if err := c.Boot(p); err != nil {
			fnErr = err
			return
		}
		fnErr = fn(p)
	})
	if err := c.Sim.RunUntil(24 * time.Hour); err != nil {
		return err
	}
	return fnErr
}

// FSOptions builds core.FS options for an application on the app node. The
// ncl configuration (replication policy, region size, cost model) derives
// from the cluster's profile; an unparsable policy string panics here —
// profiles are validated input, not user data.
func (c *Cluster) FSOptions(appID string, fencing int64) core.Options {
	nclCfg, err := ncl.ConfigFromProfile(c.Profile)
	if err != nil {
		panic(fmt.Sprintf("harness: profile %s: %v", c.Profile.Name, err))
	}
	return core.Options{
		Controller: c.Controller,
		Fabric:     c.Fabric,
		DFS:        c.DFS,
		Node:       c.AppNode,
		AppID:      appID,
		Fencing:    fencing,
		NCL:        nclCfg,
	}
}

// NewFS creates a SplitFT FS for appID on the application node.
func (c *Cluster) NewFS(p *simnet.Proc, appID string, fencing int64) (*core.FS, error) {
	return core.NewFS(p, c.FSOptions(appID, fencing))
}

// CrashApp crashes the application server; RestartApp revives the node
// (services must be re-created by the caller, as a restarted process would).
func (c *Cluster) CrashApp()   { c.AppNode.Crash() }
func (c *Cluster) RestartApp() { c.AppNode.Restart() }
