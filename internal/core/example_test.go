package core_test

import (
	"fmt"
	"log"

	"splitft/internal/core"
	"splitft/internal/harness"
	"splitft/internal/simnet"
)

// Example demonstrates the SplitFT public API end to end: a write-ahead log
// opened with O_NCL is durable on a log-peer majority the moment Write
// returns, survives an application-server crash, and recovers on restart.
// The simulation is deterministic, so the output is stable.
func Example() {
	cluster := harness.New(harness.Options{Seed: 7, NumPeers: 4})
	err := cluster.Run(func(p *simnet.Proc) error {
		cluster.AppNode.Go("app", func(ap *simnet.Proc) {
			fs, err := cluster.NewFS(ap, "example", 0)
			if err != nil {
				return
			}
			wal, err := fs.OpenFile(ap, "wal", core.O_NCL|core.O_CREATE|core.O_APPEND, 1<<20)
			if err != nil {
				return
			}
			wal.Write(ap, []byte("commit-1;"))
			wal.Write(ap, []byte("commit-2;"))
			fmt.Printf("acknowledged %d bytes\n", wal.Size())
			ap.Sleep(1 << 40) // hold until the crash
		})
		p.Sleep(200 * 1e6)
		cluster.CrashApp()
		p.Sleep(10 * 1e6)
		cluster.RestartApp()

		fs2, err := cluster.NewFS(p, "example", 1)
		if err != nil {
			return err
		}
		wal2, err := fs2.OpenFile(p, "wal", core.O_NCL, 0)
		if err != nil {
			return err
		}
		buf := make([]byte, wal2.Size())
		wal2.Pread(p, buf, 0)
		fmt.Printf("recovered %q\n", buf)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// acknowledged 18 bytes
	// recovered "commit-1;commit-2;"
}
