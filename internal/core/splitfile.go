package core

import (
	"encoding/binary"
	"fmt"

	"splitft/internal/simnet"
)

// SplitFile implements the §6 extension: fine-granular write splitting for
// files that mix small and large writes. Writes smaller than the threshold
// go to an NCL journal (fast, replicated in memory); writes at or above it
// go to the dfs file and are synced there (large writes extract full dfs
// bandwidth, so a synchronous flush is cheap per byte). The journal records
// where the latest data for each byte range resides, so recovery can merge
// the two layers — the metadata lives in the NCL layer, as the paper
// suggests.
//
// Journal entry layout (little endian):
//
//	[8B offset][4B length][1B kind] [payload if kind==small]
//
// kind: 0 = small write (payload inline), 1 = large-write marker (payload
// already durable in the dfs file when the marker is journaled).
type SplitFile struct {
	fs        *FS
	path      string
	threshold int
	journal   *nclFile
	dfsF      File
	view      []byte
	cursor    int64
	jOff      int64
}

const (
	splitKindSmall = 0
	splitKindLarge = 1
	splitHdrLen    = 13
)

func splitJournalPath(path string) string { return path + ".ncl-journal" }

// OpenSplit opens (or recovers) a fine-granular split file. threshold is
// the small/large boundary in bytes; journalSize the NCL region capacity.
func (fs *FS) OpenSplit(p *simnet.Proc, path string, threshold int, journalSize int64) (*SplitFile, error) {
	jpath := splitJournalPath(path)
	jexists, err := fs.lib.Exists(p, jpath)
	if err != nil {
		return nil, err
	}
	jf, err := fs.OpenFile(p, jpath, O_NCL|O_CREATE, journalSize)
	if err != nil {
		return nil, err
	}
	df, err := fs.OpenFile(p, path, O_CREATE, 0)
	if err != nil {
		return nil, err
	}
	sf := &SplitFile{
		fs:        fs,
		path:      path,
		threshold: threshold,
		journal:   jf.(*nclFile),
		dfsF:      df,
	}
	if jexists {
		if err := sf.replay(p); err != nil {
			return nil, err
		}
	}
	return sf, nil
}

// replay rebuilds the merged view after recovery: start from the durable
// dfs content, then apply journal entries in order.
func (sf *SplitFile) replay(p *simnet.Proc) error {
	base := make([]byte, sf.dfsF.Size())
	if len(base) > 0 {
		if _, err := sf.dfsF.Pread(p, base, 0); err != nil {
			return err
		}
	}
	sf.view = base
	j := sf.journal.lg.Bytes()
	off := int64(0)
	for off+splitHdrLen <= int64(len(j)) {
		wOff := int64(binary.LittleEndian.Uint64(j[off : off+8]))
		wLen := int64(binary.LittleEndian.Uint32(j[off+8 : off+12]))
		kind := j[off+12]
		off += splitHdrLen
		switch kind {
		case splitKindSmall:
			if off+wLen > int64(len(j)) {
				// Torn trailing entry (unacknowledged write): stop.
				return nil
			}
			sf.applyView(wOff, j[off:off+wLen])
			off += wLen
		case splitKindLarge:
			// The range is durable in the dfs file; re-apply it so ordering
			// against earlier small writes is correct.
			seg := make([]byte, wLen)
			n, err := sf.dfsF.Pread(p, seg, wOff)
			if err != nil {
				return err
			}
			sf.applyView(wOff, seg[:n])
		default:
			return fmt.Errorf("splitft: corrupt journal entry kind %d", kind)
		}
	}
	sf.cursor = int64(len(sf.view))
	sf.jOff = sf.journal.lg.Length()
	return nil
}

func (sf *SplitFile) applyView(off int64, data []byte) {
	end := off + int64(len(data))
	if end > int64(len(sf.view)) {
		grown := make([]byte, end)
		copy(grown, sf.view)
		sf.view = grown
	}
	copy(sf.view[off:], data)
}

func (sf *SplitFile) journalEntry(p *simnet.Proc, off int64, length int, kind byte, payload []byte) error {
	buf := make([]byte, splitHdrLen+len(payload))
	binary.LittleEndian.PutUint64(buf[0:8], uint64(off))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(length))
	buf[12] = kind
	copy(buf[splitHdrLen:], payload)
	if _, err := sf.journal.Pwrite(p, buf, sf.jOff); err != nil {
		return err
	}
	sf.jOff += int64(len(buf))
	return nil
}

// Pwrite routes the write by size: small writes are journaled to NCL
// (durable on return); large writes go to the dfs, are synced there, and
// then a marker is journaled.
func (sf *SplitFile) Pwrite(p *simnet.Proc, data []byte, off int64) (int, error) {
	if len(data) >= sf.threshold {
		if _, err := sf.dfsF.Pwrite(p, data, off); err != nil {
			return 0, err
		}
		if err := sf.dfsF.Sync(p); err != nil {
			return 0, err
		}
		if err := sf.journalEntry(p, off, len(data), splitKindLarge, nil); err != nil {
			return 0, err
		}
	} else {
		if err := sf.journalEntry(p, off, len(data), splitKindSmall, data); err != nil {
			return 0, err
		}
	}
	sf.applyView(off, data)
	return len(data), nil
}

// Write appends at the cursor.
func (sf *SplitFile) Write(p *simnet.Proc, data []byte) (int, error) {
	n, err := sf.Pwrite(p, data, sf.cursor)
	sf.cursor += int64(n)
	return n, err
}

// Pread reads from the merged view.
func (sf *SplitFile) Pread(p *simnet.Proc, buf []byte, off int64) (int, error) {
	if off >= int64(len(sf.view)) {
		return 0, nil
	}
	n := int64(len(buf))
	if off+n > int64(len(sf.view)) {
		n = int64(len(sf.view)) - off
	}
	copy(buf[:n], sf.view[off:off+n])
	return int(n), nil
}

// Size returns the merged file length.
func (sf *SplitFile) Size() int64 { return int64(len(sf.view)) }

// Checkpoint writes the full merged view durably to the dfs file and resets
// the journal — the split-file analogue of log reclamation.
func (sf *SplitFile) Checkpoint(p *simnet.Proc) error {
	if _, err := sf.dfsF.Pwrite(p, sf.view, 0); err != nil {
		return err
	}
	if err := sf.dfsF.Sync(p); err != nil {
		return err
	}
	jpath := splitJournalPath(sf.path)
	if err := sf.fs.Unlink(p, jpath); err != nil {
		return err
	}
	jf, err := sf.fs.OpenFile(p, jpath, O_NCL|O_CREATE, sf.journal.lg.Capacity())
	if err != nil {
		return err
	}
	sf.journal = jf.(*nclFile)
	sf.jOff = 0
	return nil
}

// Close releases handles without destroying state.
func (sf *SplitFile) Close(p *simnet.Proc) error {
	if err := sf.journal.Close(p); err != nil {
		return err
	}
	return sf.dfsF.Close(p)
}
