package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"splitft/internal/controller"
	"splitft/internal/dfs"
	"splitft/internal/ncl"
	"splitft/internal/peer"
	"splitft/internal/rdma"
	"splitft/internal/simnet"
	"splitft/internal/trace"
)

// testbed assembles the full SplitFT deployment: controller ensemble, dfs
// cluster, RDMA fabric, log peers, and an application node.
type testbed struct {
	sim     *simnet.Sim
	svc     *controller.Service
	fabric  *rdma.Fabric
	dcl     *dfs.Cluster
	appNode *simnet.Node
	pNodes  []*simnet.Node
}

func newTestbed(seed int64, nPeers int) *testbed {
	s := simnet.New(seed)
	s.Net().SetDefaultLatency(5 * time.Microsecond)
	ctrlNodes := []*simnet.Node{s.NewNode("ctrl0"), s.NewNode("ctrl1"), s.NewNode("ctrl2")}
	tb := &testbed{
		sim:     s,
		svc:     controller.Start(s, ctrlNodes, controller.DefaultConfig()),
		fabric:  rdma.NewFabric(s, rdma.DefaultParams()),
		dcl:     dfs.NewCluster(s, "cephfs", dfs.DefaultParams()),
		appNode: s.NewNode("appserver"),
	}
	for i := 0; i < nPeers; i++ {
		tb.pNodes = append(tb.pNodes, s.NewNode(fmt.Sprintf("peer%d", i)))
	}
	return tb
}

func (tb *testbed) run(t *testing.T, fn func(p *simnet.Proc)) {
	t.Helper()
	tb.sim.Go("test-main", func(p *simnet.Proc) {
		defer tb.sim.Stop()
		p.Sleep(time.Second)
		cfg := peer.DefaultConfig()
		cfg.LendableMem = 256 << 20
		for _, n := range tb.pNodes {
			if _, err := peer.Start(p, tb.svc, tb.fabric, n, cfg); err != nil {
				t.Errorf("peer start: %v", err)
				tb.sim.Stop()
				return
			}
		}
		fn(p)
	})
	if err := tb.sim.RunUntil(10 * time.Minute); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func (tb *testbed) opts(fencing int64) Options {
	nclCfg := ncl.DefaultConfig()
	nclCfg.RegionSize = 4 << 20
	return Options{
		Controller: tb.svc,
		Fabric:     tb.fabric,
		DFS:        tb.dcl,
		Node:       tb.appNode,
		AppID:      "app1",
		Fencing:    fencing,
		NCL:        nclCfg,
	}
}

func TestDFSRouting(t *testing.T) {
	tb := newTestbed(1, 3)
	tb.run(t, func(p *simnet.Proc) {
		col := trace.New()
		tb.sim.SetTracer(col)
		fs, err := NewFS(p, tb.opts(0))
		if err != nil {
			t.Fatalf("fs: %v", err)
		}
		f, err := fs.OpenFile(p, "/sst/000001.sst", O_CREATE, 0)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		mark := col.Len()
		f.Write(p, bytes.Repeat([]byte("S"), 4096))
		if err := f.Sync(p); err != nil {
			t.Fatalf("sync: %v", err)
		}
		if got, _ := tb.dcl.DurableBytes("/sst/000001.sst"); len(got) != 4096 {
			t.Errorf("durable = %d bytes", len(got))
		}
		spans := col.Since(mark)
		if n := trace.Count(spans, "core", "write.dfs"); n != 1 {
			t.Errorf("write.dfs spans = %d, want 1", n)
		}
		if sp := trace.First(spans, "core", "write.dfs"); sp == nil || sp.IntAttr("bytes") != 4096 || !sp.Done() {
			t.Errorf("write.dfs span = %+v", sp)
		}
		if n := trace.Count(spans, "core", "write.ncl"); n != 0 {
			t.Errorf("dfs-routed write produced %d write.ncl spans", n)
		}
		buf := make([]byte, 10)
		if n, _ := f.Pread(p, buf, 0); n != 10 || buf[0] != 'S' {
			t.Errorf("read back: %d %q", n, buf)
		}
		f.Close(p)
		if err := fs.Rename(p, "/sst/000001.sst", "/sst/000002.sst"); err != nil {
			t.Errorf("rename: %v", err)
		}
		if got := fs.ListDFS("/sst/"); len(got) != 1 || got[0] != "/sst/000002.sst" {
			t.Errorf("list = %v", got)
		}
	})
}

func TestNCLRoutingAndFastSync(t *testing.T) {
	tb := newTestbed(2, 3)
	tb.run(t, func(p *simnet.Proc) {
		fs, err := NewFS(p, tb.opts(0))
		if err != nil {
			t.Fatalf("fs: %v", err)
		}
		col := trace.New()
		tb.sim.SetTracer(col)
		f, err := fs.OpenFile(p, "/wal/000003.log", O_NCL|O_CREATE, 1<<20)
		if err != nil {
			t.Fatalf("open ncl: %v", err)
		}
		mark := col.Len()
		start := p.Now()
		f.Write(p, make([]byte, 128))
		writeLat := p.Now() - start
		start = p.Now()
		if err := f.Sync(p); err != nil {
			t.Fatalf("sync: %v", err)
		}
		syncLat := p.Now() - start
		// The write is replicated synchronously (a few us); Sync is ~free.
		if writeLat > 15*time.Microsecond {
			t.Errorf("ncl write = %v, want ~5us", writeLat)
		}
		if syncLat > time.Microsecond {
			t.Errorf("ncl sync = %v, want ~0", syncLat)
		}
		spans := col.Since(mark)
		if n := trace.Count(spans, "core", "write.ncl"); n != 1 {
			t.Errorf("write.ncl spans = %d, want 1", n)
		}
		if sp := trace.First(spans, "core", "write.ncl"); sp == nil || sp.IntAttr("bytes") != 128 {
			t.Errorf("write.ncl span = %+v", sp)
		}
		if n := trace.Count(spans, "core", "write.dfs"); n != 0 {
			t.Errorf("ncl-routed write produced %d write.dfs spans", n)
		}
		// The dfs knows nothing about this file.
		if _, ok := tb.dcl.DurableBytes("/wal/000003.log"); ok {
			t.Error("ncl file leaked into the dfs")
		}
		if !fs.Exists(p, "/wal/000003.log") {
			t.Error("exists should see the ncl file")
		}
	})
}

func TestCrashRecoveryThroughFS(t *testing.T) {
	tb := newTestbed(3, 4)
	tb.run(t, func(p *simnet.Proc) {
		var want []byte
		tb.appNode.Go("app-v1", func(ap *simnet.Proc) {
			fs, err := NewFS(ap, tb.opts(0))
			if err != nil {
				return
			}
			f, err := fs.OpenFile(ap, "wal-7", O_NCL|O_CREATE, 1<<20)
			if err != nil {
				return
			}
			for i := 0; i < 30; i++ {
				rec := bytes.Repeat([]byte{byte(i + 1)}, 50)
				if _, err := f.Write(ap, rec); err != nil {
					return
				}
				want = append(want, rec...)
			}
			ap.Sleep(time.Hour)
		})
		p.Sleep(300 * time.Millisecond)
		tb.appNode.Crash()
		p.Sleep(10 * time.Millisecond)
		tb.appNode.Restart()

		fs2, err := NewFS(p, tb.opts(1))
		if err != nil {
			t.Fatalf("fs v2: %v", err)
		}
		files, err := fs2.ListNCL(p)
		if err != nil || len(files) != 1 {
			t.Fatalf("ncl files = %v, %v", files, err)
		}
		col := trace.New()
		tb.sim.SetTracer(col)
		mark := col.Len()
		f2, err := fs2.OpenFile(p, "wal-7", O_NCL, 0)
		tb.sim.SetTracer(nil)
		if err != nil {
			t.Fatalf("recovering open: %v", err)
		}
		buf := make([]byte, len(want))
		n, _ := f2.Pread(p, buf, 0)
		if n < len(want) || !bytes.Equal(buf[:len(want)], want) {
			t.Fatalf("recovered %d bytes, mismatch", n)
		}
		spans := col.Since(mark)
		if rec := trace.First(spans, "ncl", "recover"); rec == nil || !rec.Done() {
			t.Error("recovery span not recorded")
		} else if trace.Sum(spans, "ncl", "recover.") <= 0 {
			t.Error("recovery phase spans missing")
		}
	})
}

func TestUnlinkReleasesUnopenedNCLFile(t *testing.T) {
	tb := newTestbed(4, 3)
	tb.run(t, func(p *simnet.Proc) {
		tb.appNode.Go("app-v1", func(ap *simnet.Proc) {
			fs, _ := NewFS(ap, tb.opts(0))
			f, _ := fs.OpenFile(ap, "old-wal", O_NCL|O_CREATE, 1<<20)
			f.Write(ap, []byte("stale"))
			ap.Sleep(time.Hour)
		})
		p.Sleep(200 * time.Millisecond)
		tb.appNode.Crash()
		p.Sleep(10 * time.Millisecond)
		tb.appNode.Restart()
		fs2, _ := NewFS(p, tb.opts(1))
		// Delete without recovering (checkpoint made the log obsolete).
		if err := fs2.Unlink(p, "old-wal"); err != nil {
			t.Fatalf("unlink: %v", err)
		}
		files, _ := fs2.ListNCL(p)
		if len(files) != 0 {
			t.Errorf("ncl files after unlink = %v", files)
		}
		if _, err := fs2.OpenFile(p, "old-wal", O_NCL, 0); !errors.Is(err, ErrNotExist) {
			t.Errorf("open deleted ncl file: %v", err)
		}
	})
}

func TestSplitFileRoutingAndRecovery(t *testing.T) {
	tb := newTestbed(5, 3)
	tb.run(t, func(p *simnet.Proc) {
		var shadow []byte
		apply := func(off int64, data []byte) {
			end := off + int64(len(data))
			if end > int64(len(shadow)) {
				g := make([]byte, end)
				copy(g, shadow)
				shadow = g
			}
			copy(shadow[off:], data)
		}
		tb.appNode.Go("app-v1", func(ap *simnet.Proc) {
			fs, _ := NewFS(ap, tb.opts(0))
			sf, err := fs.OpenSplit(ap, "/mixed.db", 4096, 1<<20)
			if err != nil {
				return
			}
			large := bytes.Repeat([]byte("L"), 64<<10)
			sf.Pwrite(ap, large, 0)
			apply(0, large)
			small := []byte("tiny-update")
			sf.Pwrite(ap, small, 100)
			apply(100, small)
			sf.Pwrite(ap, []byte("more"), 70000)
			apply(70000, []byte("more"))
			large2 := bytes.Repeat([]byte("M"), 8192)
			sf.Pwrite(ap, large2, 50)
			apply(50, large2)
			sf.Pwrite(ap, []byte("after-large"), 60)
			apply(60, []byte("after-large"))
			ap.Sleep(time.Hour)
		})
		p.Sleep(500 * time.Millisecond)
		tb.appNode.Crash()
		p.Sleep(10 * time.Millisecond)
		tb.appNode.Restart()
		fs2, _ := NewFS(p, tb.opts(1))
		sf2, err := fs2.OpenSplit(p, "/mixed.db", 4096, 1<<20)
		if err != nil {
			t.Fatalf("recover split: %v", err)
		}
		if sf2.Size() != int64(len(shadow)) {
			t.Fatalf("size = %d, want %d", sf2.Size(), len(shadow))
		}
		got := make([]byte, len(shadow))
		sf2.Pread(p, got, 0)
		if !bytes.Equal(got, shadow) {
			for i := range got {
				if got[i] != shadow[i] {
					t.Fatalf("content diverges at %d: %q vs %q", i, got[i], shadow[i])
				}
			}
		}
	})
}

func TestSplitFileCheckpointResetsJournal(t *testing.T) {
	tb := newTestbed(6, 3)
	tb.run(t, func(p *simnet.Proc) {
		fs, _ := NewFS(p, tb.opts(0))
		sf, err := fs.OpenSplit(p, "/mixed.db", 1024, 1<<20)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		for i := 0; i < 50; i++ {
			sf.Pwrite(p, []byte("small-write-payload"), int64(i*20))
		}
		if err := sf.Checkpoint(p); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
		if sf.jOff != 0 {
			t.Errorf("journal offset after checkpoint = %d", sf.jOff)
		}
		// Everything durable in the dfs now.
		durable, _ := tb.dcl.DurableBytes("/mixed.db")
		if int64(len(durable)) != sf.Size() {
			t.Errorf("durable %d bytes, view %d", len(durable), sf.Size())
		}
		// Writes after checkpoint still work and recover.
		sf.Pwrite(p, []byte("post-ckpt"), 3)
		buf := make([]byte, 9)
		sf.Pread(p, buf, 3)
		if string(buf) != "post-ckpt" {
			t.Errorf("read = %q", buf)
		}
	})
}

// Property: random mixed-size pwrites recover exactly after a crash.
func TestQuickSplitFileFidelity(t *testing.T) {
	type op struct {
		Off   uint16
		Size  uint16
		Large bool
	}
	f := func(ops []op) bool {
		if len(ops) == 0 || len(ops) > 12 {
			return true
		}
		tb := newTestbed(7, 3)
		ok := true
		tb.run(t, func(p *simnet.Proc) {
			var shadow []byte
			tb.appNode.Go("app", func(ap *simnet.Proc) {
				fs, _ := NewFS(ap, tb.opts(0))
				sf, err := fs.OpenSplit(ap, "/f", 2048, 4<<20)
				if err != nil {
					return
				}
				for i, o := range ops {
					size := int(o.Size)%1024 + 1
					if o.Large {
						size += 2048
					}
					data := bytes.Repeat([]byte{byte(i + 1)}, size)
					off := int64(o.Off) % 8192
					if _, err := sf.Pwrite(ap, data, off); err != nil {
						return
					}
					end := off + int64(size)
					if end > int64(len(shadow)) {
						g := make([]byte, end)
						copy(g, shadow)
						shadow = g
					}
					copy(shadow[off:], data)
				}
				ap.Sleep(time.Hour)
			})
			p.Sleep(2 * time.Second)
			tb.appNode.Crash()
			p.Sleep(10 * time.Millisecond)
			tb.appNode.Restart()
			fs2, _ := NewFS(p, tb.opts(1))
			sf2, err := fs2.OpenSplit(p, "/f", 2048, 4<<20)
			if err != nil {
				ok = false
				return
			}
			got := make([]byte, len(shadow))
			sf2.Pread(p, got, 0)
			if !bytes.Equal(got, shadow) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
