// Package core implements the SplitFT layer (§3, §4.1): a POSIX-style file
// interface that splits application writes between the disaggregated file
// system and near-compute logs. Classification is static and at file
// granularity: applications tag files that receive small synchronous writes
// with the O_NCL open flag (write-ahead logs, append-only files); everything
// else — SSTables, checkpoints, database files — goes straight to the dfs,
// exactly as in the DFT paradigm.
//
// The same FS serves all three configurations of the evaluation: weak-app
// DFT (logs on dfs, no fsync), strong-app DFT (logs on dfs, fsync per
// batch), and SplitFT (logs opened with O_NCL; Sync on them is a no-op
// because every record is already replicated synchronously).
//
// The package also implements the §6 extension: fine-granular write
// splitting for files that mix small and large writes (see splitfile.go).
package core

import (
	"errors"
	"fmt"

	"splitft/internal/controller"
	"splitft/internal/dfs"
	"splitft/internal/ncl"
	"splitft/internal/rdma"
	"splitft/internal/simnet"
	"splitft/internal/trace"
)

// Open flags.
type OpenFlag int

const (
	// O_CREATE creates the file if absent.
	O_CREATE OpenFlag = 1 << iota
	// O_NCL routes the file to near-compute logs: small synchronous writes
	// are replicated to log peers instead of hitting the dfs. Opening an
	// existing ncl file (after a crash) triggers NCL recovery.
	O_NCL
	// O_TRUNC truncates an existing file.
	O_TRUNC
	// O_APPEND declares the file append-only. For ncl files this enables
	// the tail-shipping recovery catch-up (§4.5.1): lagging peers receive
	// only the missing log suffix instead of a whole-region copy. Never
	// set it on circular logs.
	O_APPEND
	// O_EXTENT routes a new dfs file to the extent plane: large sequential
	// writes become chained appends pipelining at per-link bandwidth
	// instead of paying the flat sync path. Only meaningful at create —
	// existing files open as whatever backend they were created on — and a
	// no-op when the cluster has no extent plane (the local-ext4 baseline).
	O_EXTENT
)

// Errors.
var (
	ErrNotExist = errors.New("splitft: file does not exist")
	ErrIsNCL    = errors.New("splitft: operation not supported on ncl files")
)

// File is the interface applications program against; both dfs-backed and
// ncl-backed files implement it.
type File interface {
	Write(p *simnet.Proc, data []byte) (int, error)
	Pwrite(p *simnet.Proc, data []byte, off int64) (int, error)
	Read(p *simnet.Proc, buf []byte) (int, error)
	Pread(p *simnet.Proc, buf []byte, off int64) (int, error)
	Sync(p *simnet.Proc) error
	Close(p *simnet.Proc) error
	Size() int64
	Path() string
}

// Options configures an FS instance.
type Options struct {
	Controller *controller.Service
	Fabric     *rdma.Fabric
	DFS        *dfs.Cluster
	Node       *simnet.Node
	AppID      string
	// Fencing is the application incarnation; bump on every restart.
	Fencing int64
	// NCL tunes the near-compute log library: replication policy, default
	// region capacity (used when OpenFile is called without an explicit
	// size), and the hardware cost model. Build it with
	// ncl.ConfigFromProfile; the zero value means mirror f=1 over 64 MiB.
	NCL ncl.Config
	// AcquireLock claims the single-instance znode at start-up.
	AcquireLock bool
}

// FS is one application's SplitFT file system instance.
type FS struct {
	node   *simnet.Node
	dfs    *dfs.Client
	lib    *ncl.Lib
	nclCfg ncl.Config

	appID             string
	defaultRegionSize int64

	nclOpen map[string]*nclFile
}

// Durable writes are observable as trace spans: the core layer emits
// "core"/"write.ncl" for each replicated record and "core"/"write.dfs" for
// each dfs fsync (with a "bytes" attribute carrying the flushed size), which
// is what the Fig 1 IO-size characterization queries. NCL recovery emits the
// "ncl"/"recover.*" phase spans Fig 11(b) is built from.

// NewFS mounts the dfs and initializes ncl-lib for the application.
func NewFS(p *simnet.Proc, opts Options) (*FS, error) {
	if opts.NCL.RegionSize == 0 {
		opts.NCL.RegionSize = 64 << 20
	}
	lib, err := ncl.NewLib(p, opts.Controller, opts.Fabric, opts.Node, opts.AppID, opts.Fencing, opts.NCL)
	if err != nil {
		return nil, err
	}
	fs := &FS{
		node:              opts.Node,
		dfs:               opts.DFS.Mount(opts.Node),
		lib:               lib,
		nclCfg:            opts.NCL,
		appID:             opts.AppID,
		defaultRegionSize: opts.NCL.RegionSize,
		nclOpen:           make(map[string]*nclFile),
	}
	if opts.AcquireLock {
		if err := lib.AcquireInstanceLock(p); err != nil {
			return nil, err
		}
	}
	return fs, nil
}

// Node returns the application-server node this FS instance runs on.
func (fs *FS) Node() *simnet.Node { return fs.node }

// DFSClient exposes the underlying dfs mount (benchmarks and recovery code
// use it for direct access).
func (fs *FS) DFSClient() *dfs.Client { return fs.dfs }

// NCLLib exposes the underlying ncl-lib instance.
func (fs *FS) NCLLib() *ncl.Lib { return fs.lib }

// OpenFile opens path. With O_NCL the file lives in near-compute logs:
// creation allocates peer regions of regionSize (0 = default), and opening
// an existing ncl file runs recovery. Without O_NCL the file is a plain dfs
// file.
func (fs *FS) OpenFile(p *simnet.Proc, path string, flags OpenFlag, regionSize int64) (File, error) {
	if flags&O_NCL != 0 {
		return fs.openNCL(p, path, flags, regionSize)
	}
	inner, err := fs.dfs.OpenFileExt(p, path, flags&O_CREATE != 0, flags&O_EXTENT != 0)
	if err != nil {
		if errors.Is(err, dfs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
		}
		return nil, err
	}
	return &dfsFile{fs: fs, inner: inner}, nil
}

func (fs *FS) openNCL(p *simnet.Proc, path string, flags OpenFlag, regionSize int64) (File, error) {
	if f, ok := fs.nclOpen[path]; ok {
		return f, nil
	}
	// A log closed earlier in this same instance is still live in ncl-lib:
	// hand out a fresh handle (offset zero) instead of running recovery.
	if lg, ok := fs.lib.OpenLog(path); ok && flags&O_TRUNC == 0 {
		f := &nclFile{fs: fs, lg: lg, path: path}
		fs.nclOpen[path] = f
		return f, nil
	}
	if regionSize == 0 {
		regionSize = fs.defaultRegionSize
	}
	exists, err := fs.lib.Exists(p, path)
	if err != nil {
		return nil, err
	}
	switch {
	case exists && flags&O_TRUNC != 0:
		if err := fs.lib.ReleaseByName(p, path); err != nil {
			return nil, err
		}
		fallthrough
	case !exists:
		if flags&O_CREATE == 0 && !exists {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
		}
		lg, err := fs.lib.OpenWithOptions(p, path, regionSize,
			ncl.LogOptions{AppendOnly: flags&O_APPEND != 0})
		if err != nil {
			return nil, err
		}
		f := &nclFile{fs: fs, lg: lg, path: path}
		fs.nclOpen[path] = f
		return f, nil
	default:
		lg, err := fs.lib.Recover(p, path)
		if err != nil {
			return nil, err
		}
		f := &nclFile{fs: fs, lg: lg, path: path, cursor: 0}
		fs.nclOpen[path] = f
		return f, nil
	}
}

// Unlink removes a file from whichever layer holds it. Deleting an ncl file
// releases its peer regions and ap-map entry — the delete-to-reclaim
// pattern of RocksDB/Redis logs.
func (fs *FS) Unlink(p *simnet.Proc, path string) error {
	if f, ok := fs.nclOpen[path]; ok {
		delete(fs.nclOpen, path)
		return f.lg.Release(p)
	}
	if exists, err := fs.lib.Exists(p, path); err == nil && exists {
		return fs.lib.ReleaseByName(p, path)
	}
	err := fs.dfs.Unlink(p, path)
	if errors.Is(err, dfs.ErrNotExist) {
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	return err
}

// Rename renames a dfs file (ncl files are never renamed by the ported
// applications).
func (fs *FS) Rename(p *simnet.Proc, oldPath, newPath string) error {
	return fs.dfs.Rename(p, oldPath, newPath)
}

// Exists reports whether path exists in either layer.
func (fs *FS) Exists(p *simnet.Proc, path string) bool {
	if _, ok := fs.nclOpen[path]; ok {
		return true
	}
	if ok, err := fs.lib.Exists(p, path); err == nil && ok {
		return true
	}
	return fs.dfs.Exists(path)
}

// ListNCL lists the application's ncl files (recovery discovery).
func (fs *FS) ListNCL(p *simnet.Proc) ([]string, error) { return fs.lib.ListFiles(p) }

// ListDFS lists dfs paths with the given prefix.
func (fs *FS) ListDFS(prefix string) []string { return fs.dfs.List(prefix) }

// ---- dfs-backed file ----

type dfsFile struct {
	fs *FS
	// inner is either backend's handle: the flat *dfs.File or an extent
	// *dfs.ExtentFile, chosen at open time.
	inner dfs.Handle
}

func (f *dfsFile) Write(p *simnet.Proc, data []byte) (int, error) { return f.inner.Write(p, data) }
func (f *dfsFile) Pwrite(p *simnet.Proc, data []byte, off int64) (int, error) {
	return f.inner.Pwrite(p, data, off)
}
func (f *dfsFile) Read(p *simnet.Proc, buf []byte) (int, error) { return f.inner.Read(p, buf) }
func (f *dfsFile) Pread(p *simnet.Proc, buf []byte, off int64) (int, error) {
	return f.inner.Pread(p, buf, off)
}

func (f *dfsFile) Sync(p *simnet.Proc) error {
	dirty := f.inner.DirtyBytes()
	sp := p.StartSpan("core", "write.dfs",
		trace.Str("path", f.inner.Path()), trace.Int("bytes", dirty))
	defer p.EndSpan(sp)
	return f.inner.Sync(p)
}

func (f *dfsFile) Close(p *simnet.Proc) error { return f.inner.Close(p) }
func (f *dfsFile) Size() int64                { return f.inner.Size() }
func (f *dfsFile) Path() string               { return f.inner.Path() }

// ---- ncl-backed file ----

type nclFile struct {
	fs     *FS
	lg     *ncl.Log
	path   string
	cursor int64
	closed bool
}

func (f *nclFile) Write(p *simnet.Proc, data []byte) (int, error) {
	n, err := f.Pwrite(p, data, f.cursor)
	f.cursor += int64(n)
	return n, err
}

func (f *nclFile) Pwrite(p *simnet.Proc, data []byte, off int64) (int, error) {
	sp := p.StartSpan("core", "write.ncl",
		trace.Str("path", f.path), trace.Int("bytes", int64(len(data))))
	defer p.EndSpan(sp)
	if err := f.lg.Record(p, off, data); err != nil {
		return 0, err
	}
	return len(data), nil
}

func (f *nclFile) Read(p *simnet.Proc, buf []byte) (int, error) {
	n, err := f.Pread(p, buf, f.cursor)
	f.cursor += int64(n)
	return n, err
}

func (f *nclFile) Pread(p *simnet.Proc, buf []byte, off int64) (int, error) {
	// Reads come from the local buffer; after recovery the content was
	// prefetched from the recovery peer (Fig 11a). ncl-lib serves them in
	// user space — no syscall — so the fixed cost undercuts a dfs read.
	p.Sleep(f.fs.nclCfg.Model.LocalReadCPU)
	return f.lg.ReadAt(buf, off), nil
}

// Sync is a no-op for ncl files: every Record is already replicated to a
// majority of log peers before returning. This is precisely SplitFT's
// performance win — the fsync disappears from the critical path.
func (f *nclFile) Sync(p *simnet.Proc) error {
	p.Sleep(f.fs.nclCfg.Model.SyncCPU)
	return nil
}

func (f *nclFile) Close(p *simnet.Proc) error {
	// The log stays registered (and recoverable) until unlinked.
	f.closed = true
	delete(f.fs.nclOpen, f.path)
	return nil
}

func (f *nclFile) Size() int64  { return f.lg.Length() }
func (f *nclFile) Path() string { return f.path }

// Log exposes the underlying ncl log (white-box tests and benches).
func (f *nclFile) Log() *ncl.Log { return f.lg }
