package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"splitft/internal/simnet"
	"splitft/internal/trace"
)

// Additional core-layer coverage: cursor semantics, truncation, append-only
// enforcement, and trace classification.

func TestNCLFileCursorSemantics(t *testing.T) {
	tb := newTestbed(20, 3)
	tb.run(t, func(p *simnet.Proc) {
		fs, _ := NewFS(p, tb.opts(0))
		f, err := fs.OpenFile(p, "log", O_NCL|O_CREATE, 1<<20)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		f.Write(p, []byte("abc"))
		f.Write(p, []byte("def"))
		if f.Size() != 6 {
			t.Fatalf("size = %d", f.Size())
		}
		// Pwrite does not move the cursor.
		f.Pwrite(p, []byte("XY"), 1)
		f.Write(p, []byte("ghi"))
		buf := make([]byte, 9)
		f.Pread(p, buf, 0)
		if string(buf) != "aXYdefghi" {
			t.Fatalf("content = %q", buf)
		}
		// Read shares the fd offset with Write (POSIX semantics): the
		// cursor sits at EOF after the appends, so a plain Read sees EOF.
		r := make([]byte, 4)
		if n, _ := f.Read(p, r); n != 0 {
			t.Fatalf("read at EOF returned %d bytes", n)
		}
		// Closing and reopening within the same instance yields a fresh
		// handle over the SAME live log (no recovery), offset zero.
		f.Close(p)
		col := trace.New()
		tb.sim.SetTracer(col)
		mark := col.Len()
		f2, err := fs.OpenFile(p, "log", O_NCL, 0)
		tb.sim.SetTracer(nil)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		n, _ := f2.Read(p, r)
		if n != 4 || string(r) != "aXYd" {
			t.Fatalf("read = %q", r[:n])
		}
		n, _ = f2.Read(p, r)
		if n != 4 || string(r) != "efgh" {
			t.Fatalf("second read = %q", r[:n])
		}
		if n := trace.Count(col.Since(mark), "ncl", "recover"); n != 0 {
			t.Fatal("same-instance reopen went through recovery")
		}
	})
}

func TestNCLOpenTruncReplacesContent(t *testing.T) {
	tb := newTestbed(21, 3)
	tb.run(t, func(p *simnet.Proc) {
		fs, _ := NewFS(p, tb.opts(0))
		f, _ := fs.OpenFile(p, "log", O_NCL|O_CREATE, 1<<20)
		f.Write(p, []byte("old-contents"))
		f.Close(p)
		f2, err := fs.OpenFile(p, "log", O_NCL|O_CREATE|O_TRUNC, 1<<20)
		if err != nil {
			t.Fatalf("trunc open: %v", err)
		}
		if f2.Size() != 0 {
			t.Fatalf("size after trunc = %d", f2.Size())
		}
		f2.Write(p, []byte("new"))
		buf := make([]byte, 8)
		n, _ := f2.Pread(p, buf, 0)
		if string(buf[:n]) != "new" {
			t.Fatalf("content = %q", buf[:n])
		}
	})
}

func TestAppendOnlyFlagEnforced(t *testing.T) {
	tb := newTestbed(22, 3)
	tb.run(t, func(p *simnet.Proc) {
		fs, _ := NewFS(p, tb.opts(0))
		f, _ := fs.OpenFile(p, "aof", O_NCL|O_CREATE|O_APPEND, 1<<20)
		if _, err := f.Write(p, []byte("one")); err != nil {
			t.Fatalf("append: %v", err)
		}
		if _, err := f.Pwrite(p, []byte("x"), 0); err == nil {
			t.Fatal("overwrite allowed on O_APPEND ncl file")
		}
		// Sequential pwrite at the end is an append and is allowed.
		if _, err := f.Pwrite(p, []byte("two"), 3); err != nil {
			t.Fatalf("pwrite at end: %v", err)
		}
	})
}

func TestTraceClassification(t *testing.T) {
	tb := newTestbed(23, 3)
	tb.run(t, func(p *simnet.Proc) {
		fs, _ := NewFS(p, tb.opts(0))
		col := trace.New()
		tb.sim.SetTracer(col)
		mark := col.Len()
		nf, _ := fs.OpenFile(p, "wal", O_NCL|O_CREATE, 1<<20)
		nf.Write(p, make([]byte, 100))
		df, _ := fs.OpenFile(p, "/sst", O_CREATE, 0)
		df.Write(p, make([]byte, 5000))
		df.Sync(p)
		df.Sync(p) // clean sync: zero dirty bytes
		classes := map[string]int64{}
		for _, sp := range trace.Filter(col.Since(mark), "core", "write.") {
			classes[sp.Op] += sp.IntAttr("bytes")
		}
		if classes["write.ncl"] != 100 || classes["write.dfs"] != 5000 {
			t.Fatalf("traced = %v", classes)
		}
	})
}

func TestOpenMissingWithoutCreate(t *testing.T) {
	tb := newTestbed(24, 3)
	tb.run(t, func(p *simnet.Proc) {
		fs, _ := NewFS(p, tb.opts(0))
		if _, err := fs.OpenFile(p, "ghost", O_NCL, 0); !errors.Is(err, ErrNotExist) {
			t.Fatalf("ncl open: %v", err)
		}
		if _, err := fs.OpenFile(p, "/ghost", 0, 0); !errors.Is(err, ErrNotExist) {
			t.Fatalf("dfs open: %v", err)
		}
		if err := fs.Unlink(p, "/ghost"); !errors.Is(err, ErrNotExist) {
			t.Fatalf("unlink: %v", err)
		}
	})
}

func TestSplitFileThresholdBoundary(t *testing.T) {
	tb := newTestbed(25, 3)
	tb.run(t, func(p *simnet.Proc) {
		fs, _ := NewFS(p, tb.opts(0))
		sf, err := fs.OpenSplit(p, "/f", 1024, 1<<20)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		// Exactly at the threshold goes to the dfs (>=), below goes to NCL.
		start := p.Now()
		sf.Pwrite(p, make([]byte, 1024), 0)
		largeLat := p.Now() - start
		start = p.Now()
		sf.Pwrite(p, make([]byte, 1023), 4096)
		smallLat := p.Now() - start
		if largeLat < time.Millisecond {
			t.Errorf("threshold-size write (%v) did not pay the dfs sync", largeLat)
		}
		if smallLat > 100*time.Microsecond {
			t.Errorf("sub-threshold write (%v) did not take the NCL path", smallLat)
		}
		got := make([]byte, 1024)
		sf.Pread(p, got, 0)
		if !bytes.Equal(got, make([]byte, 1024)) {
			t.Error("content mismatch")
		}
	})
}
