package simnet

import (
	"fmt"
	"time"
)

// Node models one physical machine. Procs spawned via Node.Go die when the
// node crashes; subsystems (NIC, file-system client, peer daemon) register
// crash hooks to invalidate their state, mirroring what losing a machine
// loses: memory contents, registered memory regions, open connections.
type Node struct {
	sim   *Sim
	name  string
	alive bool
	// incarnation increments on every restart so stale messages and hooks
	// can be detected by subsystems that care.
	incarnation int

	// Intrusive list of live procs bound to this node, in spawn order, so
	// a crash kills them deterministically.
	procsHead, procsTail *Proc
	onCrash              []func()

	cpu *CPU
}

// addProc / removeProc maintain the node's intrusive proc list.
func (n *Node) addProc(p *Proc) {
	p.prevNode = n.procsTail
	if n.procsTail != nil {
		n.procsTail.nextNode = p
	} else {
		n.procsHead = p
	}
	n.procsTail = p
}

func (n *Node) removeProc(p *Proc) {
	if p.prevNode != nil {
		p.prevNode.nextNode = p.nextNode
	} else {
		n.procsHead = p.nextNode
	}
	if p.nextNode != nil {
		p.nextNode.prevNode = p.prevNode
	} else {
		n.procsTail = p.prevNode
	}
	p.prevNode, p.nextNode = nil, nil
}

// NewNode adds a machine to the simulation.
func (s *Sim) NewNode(name string) *Node {
	if _, dup := s.nodes[name]; dup {
		panic(fmt.Sprintf("simnet: duplicate node %q", name))
	}
	n := &Node{sim: s, name: name, alive: true}
	n.cpu = &CPU{node: n, cores: 1}
	s.nodes[name] = n
	return n
}

// Node returns a node by name, or nil.
func (s *Sim) Node(name string) *Node { return s.nodes[name] }

// Name returns the machine name.
func (n *Node) Name() string { return n.name }

// Alive reports whether the node is up.
func (n *Node) Alive() bool { return n.alive }

// Incarnation returns the restart count (0 for the first boot).
func (n *Node) Incarnation() int { return n.incarnation }

// Sim returns the owning simulator.
func (n *Node) Sim() *Sim { return n.sim }

// Go spawns a proc bound to this node.
func (n *Node) Go(name string, fn func(*Proc)) *Proc {
	if !n.alive {
		panic(fmt.Sprintf("simnet: spawn on dead node %q", n.name))
	}
	return n.sim.spawn(n, name, fn)
}

// OnCrash registers a hook invoked synchronously when the node crashes.
// Hooks run in the crasher's context and must not block.
func (n *Node) OnCrash(fn func()) { n.onCrash = append(n.onCrash, fn) }

// Crash takes the node down: every proc bound to it is killed, crash hooks
// fire, and the CPU queue is wiped. In-memory state owned by procs
// disappears with them; durable state is whatever subsystems modelled as
// durable. Crash may be called from any proc, including one on n itself.
func (n *Node) Crash() {
	if !n.alive {
		return
	}
	n.alive = false
	hooks := n.onCrash
	n.onCrash = nil
	for _, fn := range hooks {
		fn()
	}
	for p := n.procsHead; p != nil; p = p.nextNode {
		p.kill()
	}
	n.cpu.reset()
}

// Restart brings a crashed node back up. The caller is responsible for
// re-spawning its services (as an operator or supervisor would).
func (n *Node) Restart() {
	if n.alive {
		return
	}
	n.alive = true
	n.incarnation++
}

// SetCores configures the number of CPU cores for the node's CPU model.
func (n *Node) SetCores(k int) {
	if k < 1 {
		panic("simnet: node needs at least one core")
	}
	n.cpu.cores = k
}

// CPU returns the node's processor model.
func (n *Node) CPU() *CPU { return n.cpu }

// CPU models a node's processor as k cores executing FIFO, run-to-completion
// work slices. Procs call Use to spend modelled CPU time; when all cores are
// busy the proc queues. This is what makes server throughput saturate: a
// 10-core application server doing 4 us of work per request tops out near
// 2.5 M slices/s, and a single-threaded store (Redis) is modelled by
// funnelling all work through one proc rather than through this queue.
type CPU struct {
	node  *Node
	cores int
	busy  int
	q     waitQ
}

// Use occupies one core for d of virtual time, queueing if none is free.
func (c *CPU) Use(p *Proc, d time.Duration) {
	for c.busy >= c.cores {
		w := p.newWaiter()
		c.q.push(w)
		p.park()
		p.releaseWaiter(w)
	}
	c.busy++
	p.Sleep(d)
	c.busy--
	if w := c.q.popLive(p.sim); w != nil {
		w.state = wCancelled
		wakeWaiter(p.sim, w, p.sim.now)
	}
}

func (c *CPU) reset() {
	c.busy = 0
	c.q = waitQ{}
}
