package simnet

import (
	"errors"
	"fmt"
	"time"

	"splitft/internal/trace"
)

// Net models the datacenter network: per-pair one-way latency, partitions,
// and an RPC layer. RDMA traffic (internal/rdma) shares the same latency
// matrix and partition state so control-plane and data-plane failures are
// consistent.
type Net struct {
	sim        *Sim
	defaultLat time.Duration
	latency    map[pairKey]time.Duration
	parts      map[pairKey]bool
	servers    map[string]*rpcServer
}

type pairKey struct{ a, b string }

func pk(a, b string) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

func newNet(s *Sim) *Net {
	return &Net{
		sim:        s,
		defaultLat: 25 * time.Microsecond, // kernel TCP-ish datacenter RTT/2
		latency:    make(map[pairKey]time.Duration),
		parts:      make(map[pairKey]bool),
		servers:    make(map[string]*rpcServer),
	}
}

// SetDefaultLatency sets the one-way latency used between node pairs with
// no explicit override.
func (nt *Net) SetDefaultLatency(d time.Duration) { nt.defaultLat = d }

// SetLatency overrides the one-way latency between two nodes.
func (nt *Net) SetLatency(a, b *Node, d time.Duration) {
	nt.latency[pk(a.name, b.name)] = d
}

// Latency returns the current one-way latency between two nodes. Messages
// within a node are instantaneous.
func (nt *Net) Latency(a, b *Node) time.Duration {
	if a == b {
		return 0
	}
	if d, ok := nt.latency[pk(a.name, b.name)]; ok {
		return d
	}
	return nt.defaultLat
}

// Partition cuts connectivity between two nodes (both directions).
func (nt *Net) Partition(a, b *Node) { nt.parts[pk(a.name, b.name)] = true }

// Heal restores connectivity between two nodes.
func (nt *Net) Heal(a, b *Node) { delete(nt.parts, pk(a.name, b.name)) }

// Partitioned reports whether a and b cannot communicate.
func (nt *Net) Partitioned(a, b *Node) bool { return a != b && nt.parts[pk(a.name, b.name)] }

// Reachable reports whether a message from a would currently arrive at b.
func (nt *Net) Reachable(a, b *Node) bool {
	return a.alive && b.alive && !nt.Partitioned(a, b)
}

// Handler processes one RPC request. It runs as a proc on the server node
// (so it dies with the machine) and must treat req as immutable.
type Handler func(p *Proc, req any) (any, error)

type rpcServer struct {
	node        *Node
	inbox       *Chan[rpcReq]
	incarnation int
}

type rpcReq struct {
	from  *Node
	req   any
	reply *Chan[rpcResp]
	span  *trace.Span // caller's call span; the handler's serve span nests under it
}

type rpcResp struct {
	resp any
	err  error
}

// RPC errors. ErrTimeout covers dead servers, partitions and lost replies —
// indistinguishable to a client, exactly as in a real network.
var (
	ErrTimeout   = errors.New("simnet: rpc timeout")
	ErrNoService = errors.New("simnet: no such rpc service")
)

// Register installs an RPC service at addr, served from node. A dispatcher
// proc on the node receives requests and spawns one handler proc each.
// Re-registering an address (after a node restart) replaces the service;
// requests sent to the old incarnation are dropped.
func (nt *Net) Register(addr string, node *Node, h Handler) {
	srv := &rpcServer{node: node, inbox: NewChan[rpcReq](nt.sim), incarnation: node.incarnation}
	nt.servers[addr] = srv
	node.Go("rpc-dispatch:"+addr, func(p *Proc) {
		for {
			r, ok := srv.inbox.Recv(p)
			if !ok {
				return
			}
			req := r
			p.Go("rpc-handler:"+addr, func(hp *Proc) {
				hp.AdoptSpan(req.span)
				hsp := hp.StartSpan("rpc", "serve:"+addr, trace.Str("from", req.from.name))
				resp, err := h(hp, req.req)
				hp.EndSpan(hsp)
				if !nt.Reachable(node, req.from) {
					return // reply lost
				}
				// Error values cross the wire intact (everything is
				// in-process); handlers must return immutable errors.
				req.reply.SendAfter(hp, rpcResp{resp: resp, err: err}, nt.Latency(node, req.from))
			})
		}
	})
}

// DefaultRPCTimeout is used by Call.
const DefaultRPCTimeout = 200 * time.Millisecond

// Call performs a synchronous RPC from node `from` to service addr with the
// default timeout.
func (nt *Net) Call(p *Proc, from *Node, addr string, req any) (any, error) {
	return nt.CallTimeout(p, from, addr, req, DefaultRPCTimeout)
}

// CallTimeout performs a synchronous RPC with an explicit timeout. Requests
// to dead or partitioned servers are silently dropped and surface as
// ErrTimeout; application errors returned by the handler come back as-is
// (by message).
func (nt *Net) CallTimeout(p *Proc, from *Node, addr string, req any, timeout time.Duration) (any, error) {
	srv, ok := nt.servers[addr]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoService, addr)
	}
	sp := p.StartSpan("rpc", "call:"+addr, trace.Str("from", from.name))
	reply := NewChan[rpcResp](nt.sim)
	if nt.Reachable(from, srv.node) && srv.node.incarnation == srv.incarnation {
		srv.inbox.SendAfter(p, rpcReq{from: from, req: req, reply: reply, span: sp}, nt.Latency(from, srv.node))
	}
	resp, ok, timedOut := reply.RecvTimeout(p, timeout)
	if timedOut || !ok {
		sp.SetAttr(trace.Str("err", "timeout"))
		p.EndSpan(sp)
		return nil, ErrTimeout
	}
	p.EndSpan(sp)
	if resp.err != nil {
		return nil, resp.err
	}
	return resp.resp, nil
}
