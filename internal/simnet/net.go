package simnet

import (
	"errors"
	"fmt"
	"time"

	"splitft/internal/trace"
)

// Net models the datacenter network: per-pair one-way latency, partitions,
// directional link faults (gray latency, loss, one-way cuts), and an RPC
// layer. RDMA traffic (internal/rdma) shares the same latency matrix and
// partition state so control-plane and data-plane failures are consistent.
//
// The RPC layer is allocation-free in steady state: requests and responses
// are value-typed Msg records (no interface boxing), reply channels are
// free-listed on the Net with a generation stamp guarding against stale
// deliveries, and each service dispatches onto a pool of reusable worker
// procs instead of spawning a proc (goroutine + closure) per request.
type Net struct {
	sim        *Sim
	defaultLat time.Duration
	latency    map[pairKey]time.Duration
	faults     map[linkKey]linkFault
	isolated   map[string]bool
	servers    map[string]*rpcServer

	// freeReplies recycles reply records across calls. A record's gen is
	// bumped on release, so a late reply addressed to a previous user of the
	// record is recognized and dropped by the next one.
	freeReplies *replyRec
}

type pairKey struct{ a, b string }

func pk(a, b string) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// linkKey is a directed edge. Unlike pairKey it is not canonicalized, so
// asymmetric faults (a reaches b but not vice versa) are expressible.
type linkKey struct{ from, to string }

// linkFault is the fault state of one directed link, layered over the base
// latency matrix: a one-way cut, extra "gray" latency a slow-but-alive hop
// adds to every message, and a probabilistic message-loss rate. The zero
// value means a healthy link and is not stored.
type linkFault struct {
	cut  bool
	gray time.Duration
	loss float64
}

func newNet(s *Sim) *Net {
	return &Net{
		sim:        s,
		defaultLat: 25 * time.Microsecond, // kernel TCP-ish datacenter RTT/2
		latency:    make(map[pairKey]time.Duration),
		faults:     make(map[linkKey]linkFault),
		isolated:   make(map[string]bool),
		servers:    make(map[string]*rpcServer),
	}
}

// SetDefaultLatency sets the one-way latency used between node pairs with
// no explicit override.
func (nt *Net) SetDefaultLatency(d time.Duration) { nt.defaultLat = d }

// SetLatency overrides the one-way latency between two nodes.
func (nt *Net) SetLatency(a, b *Node, d time.Duration) {
	nt.latency[pk(a.name, b.name)] = d
}

// Latency returns the current one-way latency from a to b: the pair's base
// latency (override or default) plus any gray latency installed on the
// directed link. Messages within a node are instantaneous.
func (nt *Net) Latency(a, b *Node) time.Duration {
	if a == b {
		return 0
	}
	base := nt.defaultLat
	if d, ok := nt.latency[pk(a.name, b.name)]; ok {
		base = d
	}
	if len(nt.faults) != 0 {
		base += nt.faults[linkKey{a.name, b.name}].gray
	}
	return base
}

// mutateFault edits the directed link a->b in place, dropping the entry
// when it returns to the healthy zero value.
func (nt *Net) mutateFault(a, b string, f func(*linkFault)) {
	k := linkKey{a, b}
	lf := nt.faults[k]
	f(&lf)
	if lf == (linkFault{}) {
		delete(nt.faults, k)
	} else {
		nt.faults[k] = lf
	}
}

// Partition cuts connectivity between two nodes (both directions).
func (nt *Net) Partition(a, b *Node) {
	nt.PartitionOneWay(a, b)
	nt.PartitionOneWay(b, a)
}

// PartitionOneWay cuts delivery from a to b only; b's messages still reach
// a. This is the asymmetric half of a gray failure: a dead uplink, a
// firewall rule, a one-way congested path.
func (nt *Net) PartitionOneWay(a, b *Node) {
	nt.mutateFault(a.name, b.name, func(f *linkFault) { f.cut = true })
}

// Heal restores connectivity between two nodes. Only the cut is cleared:
// latency overrides (SetLatency, SetLinkLatency) and loss rates installed
// while the partition was up survive the heal — healing a cable does not
// recalibrate the link.
func (nt *Net) Heal(a, b *Node) {
	nt.HealOneWay(a, b)
	nt.HealOneWay(b, a)
}

// HealOneWay restores delivery from a to b.
func (nt *Net) HealOneWay(a, b *Node) {
	nt.mutateFault(a.name, b.name, func(f *linkFault) { f.cut = false })
}

// SetLinkLatency installs extra one-way latency on the directed link a->b,
// on top of the pair's base latency — a slow-but-alive hop. RDMA transfers
// toward b pay it too (internal/rdma reads it via GrayLatency). Zero
// removes the override.
func (nt *Net) SetLinkLatency(a, b *Node, extra time.Duration) {
	nt.mutateFault(a.name, b.name, func(f *linkFault) { f.gray = extra })
}

// GrayLatency returns the extra gray latency on the directed link a->b
// (zero for healthy links).
func (nt *Net) GrayLatency(a, b *Node) time.Duration {
	if len(nt.faults) == 0 || a == b {
		return 0
	}
	return nt.faults[linkKey{a.name, b.name}].gray
}

// SetLoss sets the probability that a message on the directed link a->b is
// silently dropped (RPC requests and replies; RDMA models loss as gray
// latency via its transport retries instead). Zero removes the override.
func (nt *Net) SetLoss(a, b *Node, prob float64) {
	nt.mutateFault(a.name, b.name, func(f *linkFault) { f.loss = prob })
}

// lose reports whether a message on a->b is dropped by a lossy link. The
// RNG is consulted only when a loss rate is installed somewhere, so
// fault-free runs consume no randomness and their traces are unchanged.
func (nt *Net) lose(a, b *Node) bool {
	if len(nt.faults) == 0 {
		return false
	}
	lf := nt.faults[linkKey{a.name, b.name}]
	return lf.loss > 0 && nt.sim.rng.Float64() < lf.loss
}

// Isolate cuts every link to and from n — the node stays alive (procs keep
// running, local state survives) but no message crosses its NIC.
func (nt *Net) Isolate(n *Node) { nt.isolated[n.name] = true }

// Unisolate reconnects an isolated node.
func (nt *Net) Unisolate(n *Node) { delete(nt.isolated, n.name) }

// Isolated reports whether n is currently isolated.
func (nt *Net) Isolated(n *Node) bool { return nt.isolated[n.name] }

// HealAll clears every fault: cuts (one-way and symmetric), isolations,
// gray latencies and loss rates. Base latencies (SetLatency/
// SetDefaultLatency) are topology, not faults, and are preserved.
func (nt *Net) HealAll() {
	nt.faults = make(map[linkKey]linkFault)
	nt.isolated = make(map[string]bool)
}

// Partitioned reports whether a message from a would be cut before
// reaching b: the directed link is cut, or either endpoint is isolated.
func (nt *Net) Partitioned(a, b *Node) bool {
	if a == b {
		return false
	}
	if len(nt.isolated) != 0 && (nt.isolated[a.name] || nt.isolated[b.name]) {
		return true
	}
	return len(nt.faults) != 0 && nt.faults[linkKey{a.name, b.name}].cut
}

// Reachable reports whether a message from a would currently arrive at b.
func (nt *Net) Reachable(a, b *Node) bool {
	return a.alive && b.alive && !nt.Partitioned(a, b)
}

// Handler processes one RPC request. It runs as a proc on the server node
// (so it dies with the machine) and must treat m as immutable.
type Handler func(p *Proc, m Msg) (Msg, error)

type rpcServer struct {
	net         *Net
	node        *Node
	h           Handler
	inbox       *Chan[rpcReq]
	incarnation int

	// Precomputed names and span ops, so serving allocates no strings.
	callOp     string
	serveOp    string
	workerName string

	// idle is the LIFO pool of worker procs ready to take a request. LIFO
	// keeps the pool's dispatch order deterministic and cache-warm.
	idle []*rpcWorker
}

type rpcReq struct {
	from *Node
	m    Msg
	rep  *replyRec
	gen  uint64      // rep's generation at send time; echoed in the response
	span *trace.Span // caller's call span; the handler's serve span nests under it
}

type rpcResp struct {
	m   Msg
	err error
	gen uint64
}

// replyRec is a pooled reply channel. The generation stamp makes recycling
// safe: a caller that timed out bumps gen when returning the record, so a
// reply still in flight toward it is dropped by the record's next user.
type replyRec struct {
	ch   *Chan[rpcResp]
	gen  uint64
	next *replyRec
}

func (nt *Net) acquireReply() *replyRec {
	if r := nt.freeReplies; r != nil {
		nt.freeReplies = r.next
		r.next = nil
		return r
	}
	return &replyRec{ch: NewChan[rpcResp](nt.sim)}
}

func (nt *Net) releaseReply(r *replyRec) {
	r.gen++ // invalidate any reply still in flight toward this record
	r.next = nt.freeReplies
	nt.freeReplies = r
}

// RPC errors. ErrTimeout covers dead servers, partitions and lost replies —
// indistinguishable to a client, exactly as in a real network.
var (
	ErrTimeout   = errors.New("simnet: rpc timeout")
	ErrNoService = errors.New("simnet: no such rpc service")
)

// Register installs an RPC service at addr, served from node. A dispatcher
// proc on the node receives requests and hands each to a pooled worker proc
// (spawning a new one only when every worker is busy), so concurrent
// requests still interleave but steady-state serving spawns nothing.
// Re-registering an address (after a node restart) replaces the service;
// requests sent to the old incarnation are dropped.
func (nt *Net) Register(addr string, node *Node, h Handler) {
	srv := &rpcServer{
		net:         nt,
		node:        node,
		h:           h,
		inbox:       NewChan[rpcReq](nt.sim),
		incarnation: node.incarnation,
		callOp:      "call:" + addr,
		serveOp:     "serve:" + addr,
		workerName:  "rpc-worker:" + addr,
	}
	nt.servers[addr] = srv
	node.Go("rpc-dispatch:"+addr, func(p *Proc) {
		for {
			r, ok := srv.inbox.Recv(p)
			if !ok {
				return
			}
			srv.dispatch(p, r)
		}
	})
}

// dispatch hands one request to a free worker, spawning one if the pool is
// empty. Workers die with the node; after a restart, Register builds a
// fresh server (and pool), so a dead pool is never dispatched to.
func (srv *rpcServer) dispatch(p *Proc, r rpcReq) {
	var w *rpcWorker
	if n := len(srv.idle); n > 0 {
		w = srv.idle[n-1]
		srv.idle[n-1] = nil
		srv.idle = srv.idle[:n-1]
	} else {
		w = &rpcWorker{srv: srv, inbox: NewChan[rpcReq](srv.net.sim)}
		srv.node.Go(srv.workerName, w.loop)
	}
	w.inbox.Send(p, r)
}

// rpcWorker is one reusable handler proc. It holds at most one request at a
// time: the dispatcher only sends to workers it just took off the idle pool.
type rpcWorker struct {
	srv   *rpcServer
	inbox *Chan[rpcReq]
}

func (w *rpcWorker) loop(p *Proc) {
	srv := w.srv
	nt := srv.net
	for {
		r, ok := w.inbox.Recv(p)
		if !ok {
			return
		}
		var hsp *trace.Span
		if nt.sim.tracer != nil {
			p.AdoptSpan(r.span)
			hsp = p.StartSpan("rpc", srv.serveOp, trace.Str("from", r.from.name))
		}
		m, err := srv.h(p, r.m)
		if hsp != nil {
			p.EndSpan(hsp)
		}
		p.AdoptSpan(nil) // don't leak the caller's span into the next request
		if nt.Reachable(srv.node, r.from) && !nt.lose(srv.node, r.from) {
			// Error values cross the wire intact (everything is in-process);
			// handlers must return immutable errors.
			r.rep.ch.SendAfter(p, rpcResp{m: m, err: err, gen: r.gen}, nt.Latency(srv.node, r.from))
		}
		srv.idle = append(srv.idle, w)
	}
}

// DefaultRPCTimeout is used by Call.
const DefaultRPCTimeout = 200 * time.Millisecond

// Call performs a synchronous RPC from node `from` to service addr with the
// default timeout.
func (nt *Net) Call(p *Proc, from *Node, addr string, req Msg) (Msg, error) {
	return nt.CallTimeout(p, from, addr, req, DefaultRPCTimeout)
}

// CallTimeout performs a synchronous RPC with an explicit timeout. Requests
// to dead or partitioned servers are silently dropped and surface as
// ErrTimeout; application errors returned by the handler come back as-is
// (by message). Reachability is evaluated when the request is sent and again
// when the reply is sent, so a partition cut mid-flight loses the reply even
// if it heals before the timeout.
func (nt *Net) CallTimeout(p *Proc, from *Node, addr string, req Msg, timeout time.Duration) (Msg, error) {
	srv, ok := nt.servers[addr]
	if !ok {
		return Msg{}, fmt.Errorf("%w: %s", ErrNoService, addr)
	}
	var sp *trace.Span
	if nt.sim.tracer != nil {
		sp = p.StartSpan("rpc", srv.callOp, trace.Str("from", from.name))
	}
	rec := nt.acquireReply()
	defer nt.releaseReply(rec)
	if nt.Reachable(from, srv.node) && srv.node.incarnation == srv.incarnation && !nt.lose(from, srv.node) {
		srv.inbox.SendAfter(p, rpcReq{from: from, m: req, rep: rec, gen: rec.gen, span: sp}, nt.Latency(from, srv.node))
	}
	deadline := p.sim.now + timeout
	for {
		remain := deadline - p.sim.now
		if remain < 0 {
			remain = 0
		}
		resp, ok, timedOut := rec.ch.RecvTimeout(p, remain)
		if timedOut || !ok {
			if sp != nil {
				sp.SetAttr(trace.Str("err", "timeout"))
				p.EndSpan(sp)
			}
			return Msg{}, ErrTimeout
		}
		if resp.gen != rec.gen {
			continue // stale reply addressed to a previous user of this record
		}
		p.EndSpan(sp)
		if resp.err != nil {
			return Msg{}, resp.err
		}
		return resp.m, nil
	}
}
