//go:build race

package simnet

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
