package simnet

import "time"

// The scheduler's event storage. Two structures share the work:
//
//   - eventHeap: an inlined 4-ary min-heap of value-typed events ordered by
//     (at, seq), for events in the future. 4-ary beats binary here because
//     sift-down touches a quarter of the levels and the four children share
//     a cache line (an event is 32 bytes).
//   - runQueue: a FIFO ring for events scheduled at the current instant
//     (Yield, zero/negative Sleep, same-instant wake-ups — the dominant
//     event class). FIFO order IS (at, seq) order for these: seq is
//     monotone and virtual time never decreases, so entries are appended
//     already sorted.
//
// Both are slabs: events are values in reused backing arrays, so steady-state
// scheduling allocates nothing.

// event wakes a proc at a virtual time. gen guards against stale wake-ups:
// each time a proc resumes it bumps its generation, so events scheduled for
// an earlier blocking episode are skipped.
type event struct {
	at  time.Duration
	seq uint64
	p   *Proc
	gen uint64
}

// eventLess orders events by (at, seq): virtual time first, scheduling
// order as the deterministic tie-break.
func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventHeap is the future-event priority queue.
type eventHeap struct {
	a []event
}

func (h *eventHeap) len() int { return len(h.a) }

func (h *eventHeap) push(e event) {
	a := append(h.a, e)
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventLess(a[i], a[parent]) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
	h.a = a
}

func (h *eventHeap) peek() event { return h.a[0] }

func (h *eventHeap) pop() event {
	a := h.a
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	a[last] = event{} // drop the *Proc so the slab doesn't pin finished procs
	a = a[:last]
	h.a = a
	i := 0
	for {
		first := i<<2 + 1
		if first >= len(a) {
			break
		}
		min := first
		end := first + 4
		if end > len(a) {
			end = len(a)
		}
		for c := first + 1; c < end; c++ {
			if eventLess(a[c], a[min]) {
				min = c
			}
		}
		if !eventLess(a[min], a[i]) {
			break
		}
		a[i], a[min] = a[min], a[i]
		i = min
	}
	return top
}

// runQueue is a power-of-two ring buffer of same-instant events.
type runQueue struct {
	buf  []event
	head int
	n    int
}

func (q *runQueue) len() int { return q.n }

func (q *runQueue) push(e event) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = e
	q.n++
}

func (q *runQueue) grow() {
	size := 2 * len(q.buf)
	if size == 0 {
		size = 64
	}
	nb := make([]event, size)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = nb
	q.head = 0
}

func (q *runQueue) peek() event { return q.buf[q.head] }

func (q *runQueue) pop() event {
	e := q.buf[q.head]
	q.buf[q.head] = event{}
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return e
}

// pending reports whether any event (of any generation) is queued.
func (s *Sim) pending() bool { return s.runq.n > 0 || len(s.heap.a) > 0 }

// minAt returns the virtual time of the earliest pending event. Call only
// when pending().
func (s *Sim) minAt() time.Duration {
	if s.runq.n == 0 {
		return s.heap.peek().at
	}
	if len(s.heap.a) == 0 {
		return s.runq.peek().at
	}
	if h := s.heap.peek(); eventLess(h, s.runq.peek()) {
		return h.at
	}
	return s.runq.peek().at
}

// popMin removes and returns the globally earliest event by (at, seq),
// merging the run queue and the heap. Call only when pending().
func (s *Sim) popMin() event {
	if s.runq.n == 0 {
		return s.heap.pop()
	}
	if len(s.heap.a) == 0 {
		return s.runq.pop()
	}
	if eventLess(s.heap.peek(), s.runq.peek()) {
		return s.heap.pop()
	}
	return s.runq.pop()
}

// schedule enqueues a wake-up for p at virtual time `at` (clamped to the
// present — the simulation cannot schedule into the past).
func (s *Sim) schedule(at time.Duration, p *Proc, gen uint64) {
	s.seq++
	if at <= s.now {
		s.runq.push(event{at: s.now, seq: s.seq, p: p, gen: gen})
		return
	}
	s.heap.push(event{at: at, seq: s.seq, p: p, gen: gen})
}

// nextLive pops the next dispatchable event in global (at, seq) order,
// discarding stale ones along the way. ok is false when nothing may be
// dispatched right now: the simulation is stopped or failed, the queues are
// empty, or the earliest event lies past the horizon (it stays queued).
func (s *Sim) nextLive() (event, bool) {
	if s.stopped || s.fatal != nil {
		return event{}, false
	}
	for s.pending() {
		if s.horizon > 0 && s.minAt() > s.horizon {
			break
		}
		e := s.popMin()
		if e.p.done || e.gen != e.p.gen {
			continue // stale wake-up
		}
		return e, true
	}
	return event{}, false
}

// dispatch advances the clock to e and transfers the execution token to
// e.p. The caller must immediately yield the token (block on its own wake
// channel or return to the driver loop) — except for the self-continuation
// case, which dispatch reports by returning true without touching any
// channel.
func (s *Sim) dispatch(e event, self *Proc) bool {
	s.now = e.at
	s.events++
	if e.p == self {
		return true
	}
	e.p.wake <- struct{}{}
	return false
}
