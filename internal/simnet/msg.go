package simnet

// Msg is the flat wire representation every RPC-speaking layer exchanges
// through Net. It replaces the `any`-boxed request/response values the
// transport used to carry: a Msg travels by value through the Chan slabs, so
// steady-state calls neither box nor allocate. The typed façade over this
// lives in internal/wire (Marshaler/Unmarshaler + the generic Call), which
// cannot be defined here without an import cycle.
//
// Field discipline:
//
//   - Code identifies the message type; dispatchers switch on it instead of
//     type-switching on an interface. Code ranges are allocated per layer
//     (see internal/wire).
//   - Meta is reserved for carriers that envelope other messages (the Raft
//     log stamps the entry term here when shipping entries). Leaf messages
//     must leave it zero.
//   - U, S are fixed scalar/string slots; B is an opaque byte payload; Strs
//     and Sub carry variable-length lists. Slices are shared, not copied:
//     once a Msg is handed to Send/Call it must be treated as immutable by
//     both sides, exactly like a buffer handed to the kernel.
//   - Err carries an application-level error *inside* a result message
//     (e.g. a replicated state machine's per-command outcome). Transport-
//     and handler-level errors travel out of band as the Handler's error
//     return. Errors must be immutable (sentinel) values.
type Msg struct {
	Code Code
	Meta uint64
	U    [4]uint64
	S    [3]string
	B    []byte
	Strs []string
	Sub  []Msg
	Err  error
}

// Code identifies a message type on the wire. Codes need only be unique per
// dispatcher (one RPC address), but layers draw from disjoint ranges to keep
// traces and debugging unambiguous; internal/wire documents the allocation.
type Code uint16

// SetInt stores a signed value in scalar slot i.
func (m *Msg) SetInt(i int, v int64) { m.U[i] = uint64(v) }

// Int reads scalar slot i as a signed value.
func (m *Msg) Int(i int) int64 { return int64(m.U[i]) }

// SetBool stores a flag in scalar slot i.
func (m *Msg) SetBool(i int, v bool) {
	if v {
		m.U[i] = 1
	} else {
		m.U[i] = 0
	}
}

// Bool reads scalar slot i as a flag.
func (m *Msg) Bool(i int) bool { return m.U[i] != 0 }
