package simnet

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// Tests for the scheduler hot path: negative-sleep clamping, deterministic
// teardown, kill/stale-generation edges, waiter recycling, and the
// zero-allocation steady-state gates.

// Sleep with a negative duration must clamp to a plain yield: time does not
// move (and certainly not backwards), and procs already queued at the
// current instant run first.
func TestNegativeSleepClampsToYield(t *testing.T) {
	s := New(1)
	var log []string
	s.Go("neg", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		before := p.Now()
		p.Sleep(-time.Hour)
		if p.Now() != before {
			t.Errorf("negative sleep moved time from %v to %v", before, p.Now())
		}
		log = append(log, "neg")
	})
	s.Go("peer", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		log = append(log, "peer")
	})
	run(t, s)
	// "neg" reaches 2ms first (spawned first), its Sleep(-1h) requeues it
	// behind "peer" at the same instant.
	if fmt.Sprint(log) != "[peer neg]" {
		t.Fatalf("order = %v, want negative sleep to requeue behind peer", log)
	}
}

// drain must tear down leftover procs in spawn order (the intrusive list
// replaced a Go map here, whose iteration order varied run to run).
// Teardown order is observable: killed procs unwind through their defers.
func TestDrainOrderIsSpawnOrder(t *testing.T) {
	for round := 0; round < 5; round++ {
		s := New(1)
		var torn []int
		for i := 0; i < 8; i++ {
			i := i
			s.Go(fmt.Sprint(i), func(p *Proc) {
				defer func() { torn = append(torn, i) }()
				p.Sleep(time.Hour)
			})
		}
		if err := s.RunUntil(time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(torn) != "[0 1 2 3 4 5 6 7]" {
			t.Fatalf("round %d: teardown order = %v, want spawn order", round, torn)
		}
	}
}

// A proc killed while its wake-up sits in the same-instant run queue must
// not run again: the queued event is stale the moment the kill unwinds it.
func TestKillWhileQueuedInRunQueue(t *testing.T) {
	s := New(1)
	n := s.NewNode("victim")
	resumed := false
	s.Go("driver", func(p *Proc) {
		p.Sleep(time.Millisecond)
		n.Go("yielder", func(vp *Proc) {
			vp.Yield() // parked with a wake-up in the run queue at s.now
			resumed = true
		})
		p.Yield() // let the yielder run up to its Yield
		n.Crash() // same instant: the yield wake-up is still queued
	})
	run(t, s)
	if resumed {
		t.Fatal("proc ran past Yield after its node crashed at the same instant")
	}
	if s.pending() {
		t.Fatalf("stale events left in the queues after run")
	}
}

// A wake event for an earlier generation must be discarded even when the
// proc has since started (and finished) a new blocking episode at the same
// instant — the classic timeout-vs-signal race, here aggravated by waiter
// recycling.
func TestStaleGenerationWakeIsSkipped(t *testing.T) {
	s := New(1)
	ch := NewChan[int](s)
	var got []int
	s.Go("recv", func(p *Proc) {
		// Times out at 1ms: leaves a cancelled waiter in ch's queue and a
		// claimed-but-stale state behind.
		if _, _, timedOut := ch.RecvTimeout(p, time.Millisecond); !timedOut {
			t.Error("first recv should time out")
		}
		// Immediately block again; the next message must be delivered once.
		v, ok := ch.Recv(p)
		if !ok {
			t.Error("second recv failed")
		}
		got = append(got, v)
		if v, ok := ch.TryRecv(p); ok {
			t.Errorf("message delivered twice: %d", v)
		}
	})
	s.Go("send", func(p *Proc) {
		p.Sleep(time.Millisecond) // lands exactly at the timeout instant
		ch.Send(p, 42)
	})
	run(t, s)
	if fmt.Sprint(got) != "[42]" {
		t.Fatalf("got %v, want [42]", got)
	}
}

// Waiter records cycle through the freelist across timed-out and signalled
// waits without cross-talk between blocking episodes.
func TestWaiterRecyclingAcrossTimeoutsAndSignals(t *testing.T) {
	s := New(1)
	var mu Mutex
	cond := NewCond(&mu)
	ready := false
	timeouts, wakes := 0, 0
	s.Go("waiter", func(p *Proc) {
		for i := 0; i < 100; i++ {
			mu.Lock(p)
			ready = false
			for !ready {
				if cond.WaitTimeout(p, time.Millisecond) {
					timeouts++
					break
				}
			}
			if ready {
				wakes++
			}
			mu.Unlock(p)
			p.Sleep(time.Millisecond)
		}
	})
	s.Go("signaller", func(p *Proc) {
		for i := 0; i < 100; i++ {
			// Alternate between beating the timeout and missing it.
			if i%2 == 0 {
				p.Sleep(500 * time.Microsecond)
			} else {
				p.Sleep(1500 * time.Microsecond)
			}
			mu.Lock(p)
			ready = true
			cond.Signal(p)
			mu.Unlock(p)
		}
	})
	run(t, s)
	if timeouts == 0 || wakes == 0 {
		t.Fatalf("want a mix of timeouts and wakes, got %d timeouts, %d wakes", timeouts, wakes)
	}
	if timeouts+wakes != 100 {
		t.Fatalf("timeouts (%d) + wakes (%d) != 100 rounds", timeouts, wakes)
	}
}

// Steady-state Sleep churn must not allocate: events are values in reused
// slabs and the self-continuation path touches no channel. Measured from
// inside the simulation so warm-up (slab growth, goroutine stacks) is
// excluded.
func TestSleepChurnSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts perturbed by -race; gated in the non-race CI job")
	}
	s := New(1)
	for i := 0; i < 8; i++ {
		s.Go(fmt.Sprintf("churn%d", i), func(p *Proc) {
			for {
				p.Sleep(time.Microsecond)
			}
		})
	}
	var delta uint64
	s.Go("monitor", func(p *Proc) {
		p.Sleep(time.Millisecond) // warm-up: slabs reach steady capacity
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		p.Sleep(10 * time.Millisecond) // ~80k events
		runtime.ReadMemStats(&m1)
		delta = m1.Mallocs - m0.Mallocs
		s.Stop()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if delta != 0 {
		t.Fatalf("Sleep churn allocated %d times in steady state, want 0", delta)
	}
}

// Same gate for Yield churn (the run-queue fast path) plus blocked-receive
// wake-ups through the waiter freelist.
func TestYieldAndChanChurnSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts perturbed by -race; gated in the non-race CI job")
	}
	s := New(1)
	ping := NewChan[int](s)
	pong := NewChan[int](s)
	s.Go("ping", func(p *Proc) {
		for i := 0; ; i++ {
			ping.Send(p, 1)
			pong.Recv(p)
			if i%64 == 63 {
				p.Sleep(time.Microsecond) // let virtual time advance
			} else {
				p.Yield()
			}
		}
	})
	s.Go("pong", func(p *Proc) {
		for {
			ping.Recv(p)
			pong.Send(p, 1)
			p.Yield()
		}
	})
	var delta uint64
	s.Go("monitor", func(p *Proc) {
		p.Sleep(time.Millisecond)
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		p.Sleep(10 * time.Millisecond)
		runtime.ReadMemStats(&m1)
		delta = m1.Mallocs - m0.Mallocs
		s.Stop()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if delta != 0 {
		t.Fatalf("Yield/Chan churn allocated %d times in steady state, want 0", delta)
	}
}

// AllocsPerRun variant of the gate: a whole 200k-event churn run costs only
// its fixed setup (Sim, proc, slab growth), enforcing ~0 allocs/event
// without reaching into MemStats.
func TestSleepChurnAllocsPerRunBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts perturbed by -race; gated in the non-race CI job")
	}
	const events = 200000
	allocs := testing.AllocsPerRun(3, func() {
		s := New(1)
		s.Go("churn", func(p *Proc) {
			for i := 0; i < events; i++ {
				p.Sleep(time.Microsecond)
			}
		})
		if err := s.Run(); err != nil {
			panic(err)
		}
	})
	if allocs > 100 {
		t.Fatalf("200k-event churn run cost %.0f allocs (%.4f/event), want setup-only", allocs, allocs/events)
	}
}
