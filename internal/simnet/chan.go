package simnet

import "time"

// Chan is a simulated message channel with per-message delivery delay and an
// unbounded buffer. It is the building block for NIC queues, RPC transports
// and mailboxes. Messages become visible to receivers only once their
// delivery time arrives; among ready messages, delivery order is
// (readyAt, send sequence), so a zero-delay Chan is FIFO.
type Chan[T any] struct {
	sim     *Sim
	items   chanItemHeap[T]
	seq     uint64
	waiters waitQ
	closed  bool
}

type chanItem[T any] struct {
	readyAt time.Duration
	seq     uint64
	v       T
}

// chanItemHeap is an inlined binary min-heap ordered by (readyAt, seq).
// Inlined (rather than container/heap) so pushes and pops neither box items
// into interfaces nor allocate in steady state.
type chanItemHeap[T any] []chanItem[T]

func (h chanItemHeap[T]) less(i, j int) bool {
	if h[i].readyAt != h[j].readyAt {
		return h[i].readyAt < h[j].readyAt
	}
	return h[i].seq < h[j].seq
}

func (h *chanItemHeap[T]) push(it chanItem[T]) {
	a := append(*h, it)
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !a.less(i, parent) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
	*h = a
}

func (h *chanItemHeap[T]) pop() chanItem[T] {
	a := *h
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	a[last] = chanItem[T]{} // release the payload to the GC
	a = a[:last]
	*h = a
	i := 0
	for {
		l := 2*i + 1
		if l >= len(a) {
			break
		}
		min := l
		if r := l + 1; r < len(a) && a.less(r, l) {
			min = r
		}
		if !a.less(min, i) {
			break
		}
		a[i], a[min] = a[min], a[i]
		i = min
	}
	return top
}

// NewChan returns an empty channel on s.
func NewChan[T any](s *Sim) *Chan[T] { return &Chan[T]{sim: s} }

// Len returns the number of buffered messages (ready or in flight).
func (c *Chan[T]) Len() int { return len(c.items) }

// Send enqueues v for immediate delivery.
func (c *Chan[T]) Send(p *Proc, v T) { c.SendAfter(p, v, 0) }

// SendAfter enqueues v for delivery after delay d of virtual time. Sends on
// a closed channel are silently dropped (a message to a torn-down mailbox
// vanishes, as on a real network).
func (c *Chan[T]) SendAfter(p *Proc, v T, d time.Duration) {
	if c.closed {
		return
	}
	c.seq++
	readyAt := p.sim.now + d
	c.items.push(chanItem[T]{readyAt: readyAt, seq: c.seq, v: v})
	c.wakeAll(p.sim, readyAt)
}

// Close closes the channel. Buffered messages remain receivable; further
// receives on an empty closed channel return ok=false.
func (c *Chan[T]) Close(p *Proc) {
	c.closed = true
	c.wakeAll(p.sim, p.sim.now)
}

func (c *Chan[T]) wakeAll(s *Sim, at time.Duration) {
	for {
		w := c.waiters.popLive(s)
		if w == nil {
			return
		}
		w.state = wCancelled
		wakeWaiter(s, w, at)
	}
}

// Recv blocks until a message is deliverable and returns it. ok is false if
// the channel is closed and drained.
func (c *Chan[T]) Recv(p *Proc) (v T, ok bool) {
	v, ok, _ = c.recv(p, -1)
	return v, ok
}

// RecvTimeout is Recv with a deadline: timedOut is true when d elapsed with
// no deliverable message.
func (c *Chan[T]) RecvTimeout(p *Proc, d time.Duration) (v T, ok bool, timedOut bool) {
	return c.recv(p, d)
}

// TryRecv returns a deliverable message without blocking.
func (c *Chan[T]) TryRecv(p *Proc) (v T, ok bool) {
	if len(c.items) > 0 && c.items[0].readyAt <= p.sim.now {
		return c.items.pop().v, true
	}
	var zero T
	return zero, false
}

func (c *Chan[T]) recv(p *Proc, timeout time.Duration) (v T, ok bool, timedOut bool) {
	var deadline time.Duration
	hasDeadline := timeout >= 0
	if hasDeadline {
		deadline = p.sim.now + timeout
	}
	for {
		if len(c.items) > 0 && c.items[0].readyAt <= p.sim.now {
			return c.items.pop().v, true, false
		}
		if c.closed && len(c.items) == 0 {
			var zero T
			return zero, false, false
		}
		if hasDeadline && p.sim.now >= deadline {
			var zero T
			return zero, false, true
		}
		// Wait for a sender (or for an in-flight message to become ready,
		// or for the deadline — whichever is earliest).
		w := p.newWaiter()
		c.waiters.push(w)
		wakeAt := time.Duration(-1)
		if len(c.items) > 0 {
			wakeAt = c.items[0].readyAt
		}
		if hasDeadline && (wakeAt < 0 || deadline < wakeAt) {
			wakeAt = deadline
		}
		if wakeAt >= 0 {
			p.sim.schedule(wakeAt, p, p.gen)
		}
		p.park()
		p.releaseWaiter(w)
	}
}
