package simnet

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"splitft/internal/trace"
)

// Edge-case tests for the RPC layer: exact timeout boundaries, partitions
// cut and healed mid-flight, and servers dying with requests queued. All
// are pinned to exact virtual times — the simulator is deterministic per
// seed, so any drift is a behavior change, not noise.

// A reply arriving exactly at the timeout instant is delivered, not timed
// out: ready items are drained before the deadline is checked. One tick
// less budget and the call times out at the deadline.
func TestRPCTimeoutExactlyAtLatencyBoundary(t *testing.T) {
	s := New(1)
	srv := s.NewNode("srv")
	cli := s.NewNode("cli")
	s.Net().SetLatency(srv, cli, 100*time.Microsecond) // RTT = 200us
	s.Net().Register("echo", srv, func(p *Proc, req Msg) (Msg, error) { return req, nil })
	s.Go("exact", func(p *Proc) {
		start := p.Now()
		if _, err := s.Net().CallTimeout(p, cli, "echo", Msg{}, 200*time.Microsecond); err != nil {
			t.Errorf("timeout == RTT: err = %v, want delivery at the boundary", err)
		}
		if got := p.Now() - start; got != 200*time.Microsecond {
			t.Errorf("boundary call took %v, want exactly 200us", got)
		}

		start = p.Now()
		_, err := s.Net().CallTimeout(p, cli, "echo", Msg{}, 200*time.Microsecond-time.Nanosecond)
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("timeout just under RTT: err = %v, want ErrTimeout", err)
		}
		if got := p.Now() - start; got != 200*time.Microsecond-time.Nanosecond {
			t.Errorf("sub-boundary call took %v, want exactly the timeout", got)
		}
	})
	run(t, s)
}

// Reachability is evaluated twice: at request send and at reply send. A
// partition already up when the call starts drops the request — healing
// before the timeout cannot resurrect it. A partition cut after the
// request is sent but healed before the handler replies is harmless.
func TestRPCPartitionHealedMidFlight(t *testing.T) {
	s := New(1)
	srv := s.NewNode("srv")
	cli := s.NewNode("cli")
	s.Net().SetLatency(srv, cli, 100*time.Microsecond)
	s.Net().Register("slow", srv, func(p *Proc, req Msg) (Msg, error) {
		p.Sleep(time.Millisecond)
		return req, nil
	})

	// Case 1: partitioned at send, healed well before the timeout — the
	// request was dropped on the floor, so the call still times out.
	s.Go("heal-too-late", func(p *Proc) {
		s.Net().Partition(cli, srv)
		start := p.Now()
		done := false
		p.sim.Go("healer", func(hp *Proc) {
			hp.Sleep(100 * time.Microsecond)
			s.Net().Heal(cli, srv)
			done = true
		})
		_, err := s.Net().CallTimeout(p, cli, "slow", Msg{}, 5*time.Millisecond)
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("dropped request err = %v, want ErrTimeout", err)
		}
		if got := p.Now() - start; got != 5*time.Millisecond {
			t.Errorf("timed out after %v, want exactly 5ms", got)
		}
		if !done {
			t.Error("healer never ran")
		}

		// Case 2: partition cut while the handler runs, healed before it
		// replies. The in-flight request was already delivered and the link
		// is back by reply time, so the call completes at the normal RTT +
		// handler time.
		start = p.Now()
		p.sim.Go("flicker", func(fp *Proc) {
			fp.Sleep(200 * time.Microsecond) // request delivered at +100us
			s.Net().Partition(cli, srv)
			fp.Sleep(300 * time.Microsecond)
			s.Net().Heal(cli, srv) // healed at +500us; reply sends at +1.1ms
		})
		if _, err := s.Net().CallTimeout(p, cli, "slow", Msg{}, 5*time.Millisecond); err != nil {
			t.Errorf("healed-before-reply call err = %v, want success", err)
		}
		if got := p.Now() - start; got != 1200*time.Microsecond {
			t.Errorf("healed call took %v, want 1.2ms (RTT + 1ms handler)", got)
		}
	})
	run(t, s)
}

// A server killed while a request is still in flight toward it (or queued
// in its inbox) never serves it: the dispatcher died with the node, the
// request rots in the inbox, and the caller times out on schedule.
func TestRPCServerKilledWhileRequestQueued(t *testing.T) {
	s := New(1)
	srv := s.NewNode("srv")
	cli := s.NewNode("cli")
	s.Net().SetLatency(srv, cli, 100*time.Microsecond)
	served := false
	s.Net().Register("svc", srv, func(p *Proc, req Msg) (Msg, error) {
		served = true
		return req, nil
	})
	s.Go("caller", func(p *Proc) {
		start := p.Now()
		_, err := s.Net().CallTimeout(p, cli, "svc", Msg{}, 2*time.Millisecond)
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
		if got := p.Now() - start; got != 2*time.Millisecond {
			t.Errorf("timed out after %v, want exactly 2ms", got)
		}
	})
	s.Go("killer", func(p *Proc) {
		p.Sleep(50 * time.Microsecond) // request is mid-flight (delivery at 100us)
		srv.Crash()
	})
	run(t, s)
	if served {
		t.Fatal("handler ran on a crashed server")
	}
}

// The RPC steady-state zero-alloc gate (companion to the scheduler gates in
// sched_test.go): once the reply-record freelist and worker pool are warm,
// an echo loop must not allocate at all — no interface boxing, no per-call
// closures, no per-request proc spawns.
func TestRPCEchoSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts perturbed by -race; gated in the non-race CI job")
	}
	s := New(1)
	srv := s.NewNode("srv")
	cli := s.NewNode("cli")
	s.Net().Register("echo", srv, func(p *Proc, req Msg) (Msg, error) { return req, nil })
	s.Go("caller", func(p *Proc) {
		for i := uint64(0); ; i++ {
			if _, err := s.Net().Call(p, cli, "echo", Msg{U: [4]uint64{i}}); err != nil {
				return // sim stopping
			}
		}
	})
	var delta uint64
	s.Go("monitor", func(p *Proc) {
		// Warm-up must span one full RPC timeout window: every call parks
		// with a deadline event that goes stale when the reply wakes it
		// early, so the event heap only reaches its steady size (one dead
		// event per call in the last DefaultRPCTimeout) after ~200ms.
		p.Sleep(DefaultRPCTimeout + 50*time.Millisecond)
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		p.Sleep(100 * time.Millisecond) // ~2000 calls
		runtime.ReadMemStats(&m1)
		delta = m1.Mallocs - m0.Mallocs
		s.Stop()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if delta != 0 {
		t.Fatalf("rpc echo allocated %d times in steady state, want 0", delta)
	}
}

// AllocsPerRun variant: an entire run of 20k echo calls (60k events) costs
// only its fixed setup, enforcing ~0 allocs/event for the full call path
// without reaching into MemStats.
func TestRPCEchoAllocsPerRunBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts perturbed by -race; gated in the non-race CI job")
	}
	const calls = 20000
	allocs := testing.AllocsPerRun(3, func() {
		s := New(1)
		srv := s.NewNode("srv")
		cli := s.NewNode("cli")
		s.Net().Register("echo", srv, func(p *Proc, req Msg) (Msg, error) { return req, nil })
		s.Go("caller", func(p *Proc) {
			for i := 0; i < calls; i++ {
				if _, err := s.Net().Call(p, cli, "echo", Msg{}); err != nil {
					panic(err)
				}
			}
		})
		if err := s.Run(); err != nil {
			panic(err)
		}
	})
	if allocs > 150 {
		t.Fatalf("20k-call echo run cost %.0f allocs (%.4f/call), want setup-only", allocs, allocs/calls)
	}
}

// Attaching a tracer must surface the RPC layer: one "call:" span per
// Call on the client proc and one "serve:" span per dispatch on the
// worker, with the serve span parented under the caller's span (the
// worker adopts the call span before opening its own). The worker pool
// reuses procs across requests, so this also checks that span context
// does not leak between consecutive requests from different callers.
func TestRPCSpansEmittedWithTracer(t *testing.T) {
	s := New(1)
	col := trace.New()
	s.SetTracer(col)
	srv := s.NewNode("srv")
	cli := s.NewNode("cli")
	s.Net().Register("echo", srv, func(p *Proc, req Msg) (Msg, error) { return req, nil })
	const calls = 3
	s.Go("caller", func(p *Proc) {
		for i := 0; i < calls; i++ {
			if _, err := s.Net().Call(p, cli, "echo", Msg{}); err != nil {
				t.Errorf("call %d: %v", i, err)
			}
		}
	})
	run(t, s)

	spans := col.Spans()
	callSpans := trace.Filter(spans, "rpc", "call:echo")
	serveSpans := trace.Filter(spans, "rpc", "serve:echo")
	if len(callSpans) != calls || len(serveSpans) != calls {
		t.Fatalf("got %d call / %d serve spans, want %d each", len(callSpans), len(serveSpans), calls)
	}
	for i, sv := range serveSpans {
		if !sv.Done() {
			t.Errorf("serve span %d never ended", i)
		}
		if sv.Parent != callSpans[i].ID {
			t.Errorf("serve span %d parented to %d, want call span %d", i, sv.Parent, callSpans[i].ID)
		}
		if got := sv.StrAttr("from"); got != "cli" {
			t.Errorf("serve span %d from = %q, want %q", i, got, "cli")
		}
	}
}
