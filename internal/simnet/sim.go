// Package simnet is a deterministic discrete-event simulator for a small
// cluster of machines. It is the substrate every other package in this
// repository runs on: the simulated RDMA fabric, the disaggregated file
// system, the NCL controller, log peers, and the ported applications all
// execute as cooperative tasks ("procs") on simulated nodes driven by a
// virtual clock.
//
// The paper evaluates SplitFT on real hardware (CloudLab, 25 Gb RoCE).
// Reproducing microsecond-scale remote-memory logging in Go on real time is
// hopeless (GC pauses and timer granularity are both orders of magnitude
// larger than a 4.6 us RDMA write), so the repository substitutes a virtual
// clock: latencies come from calibrated cost models and the protocol code
// runs unchanged on top.
//
// Concurrency model: exactly one proc runs at a time. A single execution
// token moves between the driver (Sim.Run) and the proc goroutines. On the
// hot path the token is handed directly from the parking proc to the next
// event's proc — or kept, when the next event is the parking proc's own
// wake-up — so the driver is only involved when the simulation quiesces,
// stops, hits the horizon, or a proc finishes. Because there is no true
// parallelism, simulated state needs no locking, every run is deterministic
// for a given seed, and failure schedules are exactly reproducible.
package simnet

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"time"

	"splitft/internal/trace"
)

// Sim is a discrete-event simulation instance. Create one with New, add
// nodes and root procs, then call Run. A Sim must only be used from a single
// OS goroutine plus the procs it spawns; it is not safe for concurrent
// external use.
type Sim struct {
	now     time.Duration
	heap    eventHeap // future events, ordered by (at, seq)
	runq    runQueue  // same-instant events, FIFO (== (at, seq) order)
	seq     uint64
	procSeq uint64
	events  uint64 // dispatched events, for perf accounting

	// parked is signalled when the execution token returns to the driver:
	// a proc finished, or a parking proc found nothing dispatchable.
	parked chan struct{}

	rng   *rand.Rand
	nodes map[string]*Node
	net   *Net

	// Live (not finished) procs as an intrusive doubly-linked list in spawn
	// order, so shutdown drain tears procs down deterministically.
	procsHead, procsTail *Proc

	// freeWaiters recycles wait-queue records (see proc.go) so blocking
	// primitives allocate nothing in steady state.
	freeWaiters *waiter

	stopped bool
	horizon time.Duration // 0 = run to quiescence
	fatal   error

	// Debug tracing. When non-nil, Logf writes lines prefixed with the
	// virtual timestamp.
	TraceFn func(string)

	// Span tracing. When non-nil, Proc.StartSpan records deterministic
	// spans on the virtual clock; when nil, tracing costs one pointer
	// check per call site.
	tracer   *trace.Collector
	traceRun int
}

// New returns a simulator whose random source is seeded with seed.
// Identical programs with identical seeds produce identical executions.
func New(seed int64) *Sim {
	s := &Sim{
		parked: make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
		nodes:  make(map[string]*Node),
	}
	s.net = newNet(s)
	return s
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Events returns the number of events dispatched so far. One event is one
// proc wake-up: a sleep expiring, a yield, a queue hand-off. splitft-bench
// perf divides wall-clock time by this to report ns/event.
func (s *Sim) Events() uint64 { return s.events }

// Rand returns the simulation's deterministic random source. Only use it
// from simulation context (setup code or running procs).
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Net returns the simulated network.
func (s *Sim) Net() *Net { return s.net }

// SetTracer attaches a span collector; pass nil to disable tracing. A
// collector may be shared across several Sims (e.g. a bench sweep over many
// clusters); each attachment gets its own run number so exported traces keep
// the runs apart.
func (s *Sim) SetTracer(c *trace.Collector) {
	s.tracer = c
	if c != nil {
		s.traceRun = c.AddRun()
	}
}

// Tracer returns the attached span collector, or nil when tracing is
// disabled.
func (s *Sim) Tracer() *trace.Collector { return s.tracer }

// Logf emits a trace line when tracing is enabled.
func (s *Sim) Logf(format string, args ...any) {
	if s.TraceFn != nil {
		s.TraceFn(fmt.Sprintf("[%12v] ", s.now) + fmt.Sprintf(format, args...))
	}
}

// Stop requests that Run return after the currently running proc yields.
func (s *Sim) Stop() { s.stopped = true }

// errKilled is the panic value used to unwind a proc whose node crashed.
type killedPanic struct{}

// Run drives the simulation until no events remain, Stop is called, or the
// horizon set by RunUntil is reached. It returns the first proc panic, if
// any (proc panics abort the simulation and are reported with a stack).
//
// The loop body looks per-event but is not: each dispatch starts a hand-off
// chain in which parking procs dispatch each other directly, and the driver
// regains the token only when the chain cannot continue (quiescence, stop,
// horizon, or a finished proc).
func (s *Sim) Run() error {
	defer s.drain()
	for {
		ev, ok := s.nextLive()
		if !ok {
			if !s.stopped && s.fatal == nil && s.horizon > 0 && s.pending() {
				s.now = s.horizon // next event lies past the horizon
			}
			break
		}
		s.dispatch(ev, nil)
		<-s.parked
	}
	return s.fatal
}

// RunUntil drives the simulation like Run but stops once virtual time would
// pass t. Events at exactly t still execute.
func (s *Sim) RunUntil(t time.Duration) error {
	s.horizon = t
	defer func() { s.horizon = 0 }()
	return s.Run()
}

// drain unwinds every remaining proc goroutine so a finished Sim leaks
// nothing. Procs are woken in spawn order with the killed flag set and panic
// out through their recover wrapper (which unlinks them from the list), so
// teardown order is deterministic.
func (s *Sim) drain() {
	for s.procsHead != nil {
		p := s.procsHead
		p.killed = true
		p.wake <- struct{}{}
		<-s.parked
	}
}

// addProc / removeProc maintain the sim-wide intrusive proc list.
func (s *Sim) addProc(p *Proc) {
	p.prevAll = s.procsTail
	if s.procsTail != nil {
		s.procsTail.nextAll = p
	} else {
		s.procsHead = p
	}
	s.procsTail = p
}

func (s *Sim) removeProc(p *Proc) {
	if p.prevAll != nil {
		p.prevAll.nextAll = p.nextAll
	} else {
		s.procsHead = p.nextAll
	}
	if p.nextAll != nil {
		p.nextAll.prevAll = p.prevAll
	} else {
		s.procsTail = p.prevAll
	}
	p.prevAll, p.nextAll = nil, nil
}

// spawn creates a proc goroutine parked at its start and schedules its first
// wake-up at the current virtual time.
func (s *Sim) spawn(n *Node, name string, fn func(*Proc)) *Proc {
	s.procSeq++
	p := &Proc{
		sim:  s,
		node: n,
		name: name,
		id:   s.procSeq,
		wake: make(chan struct{}, 1),
	}
	s.addProc(p)
	if n != nil {
		n.addProc(p)
	}
	go func() {
		<-p.wake
		p.gen++
		defer func() {
			p.done = true
			if p.node != nil {
				p.node.removeProc(p)
			}
			s.removeProc(p)
			if r := recover(); r != nil {
				if _, ok := r.(killedPanic); !ok && s.fatal == nil {
					s.fatal = fmt.Errorf("simnet: proc %q panicked: %v\n%s", p.name, r, debug.Stack())
				}
			}
			s.parked <- struct{}{}
		}()
		if p.killed {
			panic(killedPanic{})
		}
		fn(p)
	}()
	s.schedule(s.now, p, 0)
	return p
}

// Go starts a detached root proc (bound to no node; it survives node
// crashes). Use Node.Go for procs that should die with their machine.
func (s *Sim) Go(name string, fn func(*Proc)) *Proc {
	return s.spawn(nil, name, fn)
}
