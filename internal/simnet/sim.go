// Package simnet is a deterministic discrete-event simulator for a small
// cluster of machines. It is the substrate every other package in this
// repository runs on: the simulated RDMA fabric, the disaggregated file
// system, the NCL controller, log peers, and the ported applications all
// execute as cooperative tasks ("procs") on simulated nodes driven by a
// virtual clock.
//
// The paper evaluates SplitFT on real hardware (CloudLab, 25 Gb RoCE).
// Reproducing microsecond-scale remote-memory logging in Go on real time is
// hopeless (GC pauses and timer granularity are both orders of magnitude
// larger than a 4.6 us RDMA write), so the repository substitutes a virtual
// clock: latencies come from calibrated cost models and the protocol code
// runs unchanged on top.
//
// Concurrency model: exactly one proc runs at a time. The driver (Sim.Run)
// and the proc goroutines hand a single execution token back and forth over
// channels. Because there is no true parallelism, simulated state needs no
// locking, every run is deterministic for a given seed, and failure
// schedules are exactly reproducible.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"runtime/debug"
	"time"

	"splitft/internal/trace"
)

// Sim is a discrete-event simulation instance. Create one with New, add
// nodes and root procs, then call Run. A Sim must only be used from a single
// OS goroutine plus the procs it spawns; it is not safe for concurrent
// external use.
type Sim struct {
	now     time.Duration
	eq      eventQueue
	seq     uint64
	procSeq uint64

	// parked is signalled by the currently running proc when it yields the
	// execution token back to the driver.
	parked chan struct{}

	rng   *rand.Rand
	nodes map[string]*Node
	net   *Net

	procs map[*Proc]struct{} // live (not finished) procs, for shutdown drain

	stopped bool
	horizon time.Duration // 0 = run to quiescence
	fatal   error

	// Debug tracing. When non-nil, Logf writes lines prefixed with the
	// virtual timestamp.
	TraceFn func(string)

	// Span tracing. When non-nil, Proc.StartSpan records deterministic
	// spans on the virtual clock; when nil, tracing costs one pointer
	// check per call site.
	tracer   *trace.Collector
	traceRun int
}

// event wakes a proc at a virtual time. gen guards against stale wake-ups:
// each time a proc resumes it bumps its generation, so events scheduled for
// an earlier blocking episode are skipped.
type event struct {
	at  time.Duration
	seq uint64
	p   *Proc
	gen uint64
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}
func (q eventQueue) peek() *event { return q[0] }
func (s *Sim) schedule(at time.Duration, p *Proc, gen uint64) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.eq, &event{at: at, seq: s.seq, p: p, gen: gen})
}

// New returns a simulator whose random source is seeded with seed.
// Identical programs with identical seeds produce identical executions.
func New(seed int64) *Sim {
	s := &Sim{
		parked: make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
		nodes:  make(map[string]*Node),
		procs:  make(map[*Proc]struct{}),
	}
	s.net = newNet(s)
	return s
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic random source. Only use it
// from simulation context (setup code or running procs).
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Net returns the simulated network.
func (s *Sim) Net() *Net { return s.net }

// SetTracer attaches a span collector; pass nil to disable tracing. A
// collector may be shared across several Sims (e.g. a bench sweep over many
// clusters); each attachment gets its own run number so exported traces keep
// the runs apart.
func (s *Sim) SetTracer(c *trace.Collector) {
	s.tracer = c
	if c != nil {
		s.traceRun = c.AddRun()
	}
}

// Tracer returns the attached span collector, or nil when tracing is
// disabled.
func (s *Sim) Tracer() *trace.Collector { return s.tracer }

// Logf emits a trace line when tracing is enabled.
func (s *Sim) Logf(format string, args ...any) {
	if s.TraceFn != nil {
		s.TraceFn(fmt.Sprintf("[%12v] ", s.now) + fmt.Sprintf(format, args...))
	}
}

// Stop requests that Run return after the currently running proc yields.
func (s *Sim) Stop() { s.stopped = true }

// errKilled is the panic value used to unwind a proc whose node crashed.
type killedPanic struct{}

// Run drives the simulation until no events remain, Stop is called, or the
// horizon set by RunUntil is reached. It returns the first proc panic, if
// any (proc panics abort the simulation and are reported with a stack).
func (s *Sim) Run() error {
	defer s.drain()
	for len(s.eq) > 0 {
		if s.stopped || s.fatal != nil {
			break
		}
		if s.horizon > 0 && s.eq.peek().at > s.horizon {
			s.now = s.horizon
			break
		}
		ev := heap.Pop(&s.eq).(*event)
		if ev.p.done || ev.gen != ev.p.gen {
			continue // stale wake-up
		}
		s.now = ev.at
		ev.p.wake <- struct{}{}
		<-s.parked
	}
	return s.fatal
}

// RunUntil drives the simulation like Run but stops once virtual time would
// pass t. Events at exactly t still execute.
func (s *Sim) RunUntil(t time.Duration) error {
	s.horizon = t
	defer func() { s.horizon = 0 }()
	return s.Run()
}

// drain unwinds every remaining proc goroutine so a finished Sim leaks
// nothing. Procs are woken with the killed flag set and panic out through
// their recover wrapper.
func (s *Sim) drain() {
	for p := range s.procs {
		if p.done {
			delete(s.procs, p)
			continue
		}
		p.killed = true
		p.wake <- struct{}{}
		<-s.parked
		delete(s.procs, p)
	}
}

// spawn creates a proc goroutine parked at its start and schedules its first
// wake-up at the current virtual time.
func (s *Sim) spawn(n *Node, name string, fn func(*Proc)) *Proc {
	s.procSeq++
	p := &Proc{
		sim:  s,
		node: n,
		name: name,
		id:   s.procSeq,
		wake: make(chan struct{}, 1),
	}
	s.procs[p] = struct{}{}
	if n != nil {
		n.procs[p] = struct{}{}
	}
	go func() {
		<-p.wake
		p.gen++
		defer func() {
			p.done = true
			if p.node != nil {
				delete(p.node.procs, p)
			}
			if r := recover(); r != nil {
				if _, ok := r.(killedPanic); !ok && s.fatal == nil {
					s.fatal = fmt.Errorf("simnet: proc %q panicked: %v\n%s", p.name, r, debug.Stack())
				}
			}
			s.parked <- struct{}{}
		}()
		if p.killed {
			panic(killedPanic{})
		}
		fn(p)
	}()
	s.schedule(s.now, p, 0)
	return p
}

// Go starts a detached root proc (bound to no node; it survives node
// crashes). Use Node.Go for procs that should die with their machine.
func (s *Sim) Go(name string, fn func(*Proc)) *Proc {
	return s.spawn(nil, name, fn)
}
