package simnet

import (
	"math/rand"
	"time"
)

// Proc is a cooperative task in the simulation. All blocking operations
// (Sleep, channel receives, mutex acquisition, RPC) go through the Proc so
// the scheduler can interleave tasks deterministically on the virtual clock.
//
// A Proc bound to a Node is killed when the node crashes: its next blocking
// call unwinds the goroutine. Procs must therefore not hold external
// resources across blocking calls without a recovery story — exactly the
// discipline crash-safe systems code needs anyway.
type Proc struct {
	sim  *Sim
	node *Node
	name string
	id   uint64

	wake chan struct{}
	gen  uint64

	killed bool
	done   bool

	// waiter is the wait-queue record for the blocking operation currently
	// in progress, if any. Kill cancels it so queues never hand work to a
	// dead proc.
	waiter *waiter
}

// Name returns the proc's debug name.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulator this proc belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Node returns the node this proc runs on, or nil for detached procs.
func (p *Proc) Node() *Node { return p.node }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.sim.now }

// Rand returns the simulation's deterministic random source.
func (p *Proc) Rand() *rand.Rand { return p.sim.rng }

// park yields the execution token to the driver and blocks until woken.
// On resume it bumps the generation (invalidating stale wake events) and
// unwinds if the proc was killed in the meantime.
func (p *Proc) park() {
	p.sim.parked <- struct{}{}
	<-p.wake
	p.gen++
	if p.killed {
		if w := p.waiter; w != nil {
			w.state = wCancelled
			p.waiter = nil
		}
		panic(killedPanic{})
	}
}

// Sleep suspends the proc for d of virtual time. Sleep is also how
// simulated code "spends" modelled latency or CPU cost.
func (p *Proc) Sleep(d time.Duration) {
	if p.killed {
		panic(killedPanic{})
	}
	if d <= 0 {
		// Even a zero-length sleep yields, giving other runnable procs at
		// the same timestamp a chance to interleave.
		d = 0
	}
	p.sim.schedule(p.sim.now+d, p, p.gen)
	p.park()
}

// Yield lets other procs scheduled at the current instant run.
func (p *Proc) Yield() { p.Sleep(0) }

// Go spawns a proc on the same node as p (or detached if p is detached).
func (p *Proc) Go(name string, fn func(*Proc)) *Proc {
	return p.sim.spawn(p.node, name, fn)
}

// GoOn spawns a proc bound to node n.
func (p *Proc) GoOn(n *Node, name string, fn func(*Proc)) *Proc {
	return p.sim.spawn(n, name, fn)
}

// Killed reports whether the proc has been marked for death (its node
// crashed). Long-running loops that never block can poll this, though in
// practice every loop blocks on simulated time.
func (p *Proc) Killed() bool { return p.killed }

// kill marks the proc dead and wakes it so its next (or current) park
// unwinds. Safe to call from any simulation context.
func (p *Proc) kill() {
	if p.done || p.killed {
		return
	}
	p.killed = true
	if w := p.waiter; w != nil {
		w.state = wCancelled
		p.waiter = nil
	}
	p.sim.schedule(p.sim.now, p, p.gen)
}

// Waiter states. Wait queues (Mutex, Cond, Chan, CPU) hold *waiter records;
// a record is cancelled when its proc times out of the wait or is killed,
// so wake-ups are never wasted on procs that already left.
const (
	wWaiting = iota
	wCancelled
)

type waiter struct {
	p     *Proc
	state int
}

// wakeWaiter schedules a wake-up for w's proc at virtual time `at`,
// capturing the proc's current generation.
func wakeWaiter(s *Sim, w *waiter, at time.Duration) {
	s.schedule(at, w.p, w.p.gen)
}
