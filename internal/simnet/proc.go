package simnet

import (
	"math/rand"
	"time"

	"splitft/internal/trace"
)

// Proc is a cooperative task in the simulation. All blocking operations
// (Sleep, channel receives, mutex acquisition, RPC) go through the Proc so
// the scheduler can interleave tasks deterministically on the virtual clock.
//
// A Proc bound to a Node is killed when the node crashes: its next blocking
// call unwinds the goroutine. Procs must therefore not hold external
// resources across blocking calls without a recovery story — exactly the
// discipline crash-safe systems code needs anyway.
type Proc struct {
	sim  *Sim
	node *Node
	name string
	id   uint64

	wake chan struct{}
	gen  uint64

	killed bool
	done   bool

	// waiter is the wait-queue record for the blocking operation currently
	// in progress, if any. Kill cancels it so queues never hand work to a
	// dead proc.
	waiter *waiter

	// span is the proc's current trace span. Child procs inherit the
	// spawner's span at Go/GoOn time; RPC handler procs adopt the caller's
	// call span so traces nest across nodes.
	span *trace.Span
}

// Name returns the proc's debug name.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulator this proc belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Node returns the node this proc runs on, or nil for detached procs.
func (p *Proc) Node() *Node { return p.node }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.sim.now }

// Rand returns the simulation's deterministic random source.
func (p *Proc) Rand() *rand.Rand { return p.sim.rng }

// park yields the execution token to the driver and blocks until woken.
// On resume it bumps the generation (invalidating stale wake events) and
// unwinds if the proc was killed in the meantime.
func (p *Proc) park() {
	p.sim.parked <- struct{}{}
	<-p.wake
	p.gen++
	if p.killed {
		if w := p.waiter; w != nil {
			w.state = wCancelled
			p.waiter = nil
		}
		panic(killedPanic{})
	}
}

// Sleep suspends the proc for d of virtual time. Sleep is also how
// simulated code "spends" modelled latency or CPU cost.
func (p *Proc) Sleep(d time.Duration) {
	if p.killed {
		panic(killedPanic{})
	}
	if d <= 0 {
		// Even a zero-length sleep yields, giving other runnable procs at
		// the same timestamp a chance to interleave.
		d = 0
	}
	p.sim.schedule(p.sim.now+d, p, p.gen)
	p.park()
}

// Yield lets other procs scheduled at the current instant run.
func (p *Proc) Yield() { p.Sleep(0) }

// Go spawns a proc on the same node as p (or detached if p is detached).
// The child inherits p's current span so its work nests under it.
func (p *Proc) Go(name string, fn func(*Proc)) *Proc {
	c := p.sim.spawn(p.node, name, fn)
	c.span = p.span
	return c
}

// GoOn spawns a proc bound to node n, inheriting p's current span.
func (p *Proc) GoOn(n *Node, name string, fn func(*Proc)) *Proc {
	c := p.sim.spawn(n, name, fn)
	c.span = p.span
	return c
}

// nodeName is the span Node attribution ("" for detached procs).
func (p *Proc) nodeName() string {
	if p.node == nil {
		return ""
	}
	return p.node.name
}

// StartSpan opens a trace span as a child of the proc's current span and
// makes it the new current span. Returns nil when no collector is attached
// to the Sim, so disabled tracing costs one pointer check.
func (p *Proc) StartSpan(layer, op string, attrs ...trace.Attr) *trace.Span {
	t := p.sim.tracer
	if t == nil {
		return nil
	}
	sp := t.Start(p.sim.now, p.sim.traceRun, p.id, layer, op, p.nodeName(), p.span, attrs...)
	p.span = sp
	return sp
}

// EndSpan finishes sp at the current virtual time and restores the proc's
// previous span context. Safe on nil spans, so call sites need no
// tracing-enabled check.
func (p *Proc) EndSpan(sp *trace.Span) {
	if sp == nil {
		return
	}
	p.sim.tracer.End(sp, p.sim.now)
	if p.span == sp {
		p.span = sp.Prev()
	}
}

// StartDetachedSpan opens an async span that is NOT pushed onto the proc's
// span stack: its lifetime may cross procs (e.g. an RDMA work request posted
// here but completed by the NIC engine). It still parents under the current
// span. Finish it with FinishSpan from whichever proc observes completion.
func (p *Proc) StartDetachedSpan(layer, op string, attrs ...trace.Attr) *trace.Span {
	t := p.sim.tracer
	if t == nil {
		return nil
	}
	sp := t.Start(p.sim.now, p.sim.traceRun, p.id, layer, op, p.nodeName(), p.span, attrs...)
	sp.Async = true
	return sp
}

// FinishSpan ends a detached span without touching the span stack. Nil-safe.
func (p *Proc) FinishSpan(sp *trace.Span) {
	if sp == nil {
		return
	}
	p.sim.tracer.End(sp, p.sim.now)
}

// Span returns the proc's current span (nil when tracing is disabled or no
// span is open).
func (p *Proc) Span() *trace.Span { return p.span }

// AdoptSpan makes sp the proc's current span. RPC handler procs use it to
// nest their work under the remote caller's span.
func (p *Proc) AdoptSpan(sp *trace.Span) { p.span = sp }

// Killed reports whether the proc has been marked for death (its node
// crashed). Long-running loops that never block can poll this, though in
// practice every loop blocks on simulated time.
func (p *Proc) Killed() bool { return p.killed }

// kill marks the proc dead and wakes it so its next (or current) park
// unwinds. Safe to call from any simulation context.
func (p *Proc) kill() {
	if p.done || p.killed {
		return
	}
	p.killed = true
	if w := p.waiter; w != nil {
		w.state = wCancelled
		p.waiter = nil
	}
	p.sim.schedule(p.sim.now, p, p.gen)
}

// Waiter states. Wait queues (Mutex, Cond, Chan, CPU) hold *waiter records;
// a record is cancelled when its proc times out of the wait or is killed,
// so wake-ups are never wasted on procs that already left.
const (
	wWaiting = iota
	wCancelled
)

type waiter struct {
	p     *Proc
	state int
}

// wakeWaiter schedules a wake-up for w's proc at virtual time `at`,
// capturing the proc's current generation.
func wakeWaiter(s *Sim, w *waiter, at time.Duration) {
	s.schedule(at, w.p, w.p.gen)
}
