package simnet

import (
	"math/rand"
	"time"

	"splitft/internal/trace"
)

// Proc is a cooperative task in the simulation. All blocking operations
// (Sleep, channel receives, mutex acquisition, RPC) go through the Proc so
// the scheduler can interleave tasks deterministically on the virtual clock.
//
// A Proc bound to a Node is killed when the node crashes: its next blocking
// call unwinds the goroutine. Procs must therefore not hold external
// resources across blocking calls without a recovery story — exactly the
// discipline crash-safe systems code needs anyway.
type Proc struct {
	sim  *Sim
	node *Node
	name string
	id   uint64

	wake chan struct{}
	gen  uint64

	killed bool
	done   bool

	// Intrusive list links: prevAll/nextAll chain all live procs of the Sim
	// (drain order), prevNode/nextNode chain the procs of p's node (crash
	// kill order). Both are spawn-ordered and deterministic, unlike the
	// map-based bookkeeping they replaced.
	prevAll, nextAll   *Proc
	prevNode, nextNode *Proc

	// waiter is the wait-queue record for the blocking operation currently
	// in progress, if any. Kill cancels it so queues never hand work to a
	// dead proc.
	waiter *waiter

	// span is the proc's current trace span. Child procs inherit the
	// spawner's span at Go/GoOn time; RPC handler procs adopt the caller's
	// call span so traces nest across nodes.
	span *trace.Span
}

// Name returns the proc's debug name.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulator this proc belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Node returns the node this proc runs on, or nil for detached procs.
func (p *Proc) Node() *Node { return p.node }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.sim.now }

// Rand returns the simulation's deterministic random source.
func (p *Proc) Rand() *rand.Rand { return p.sim.rng }

// park yields the execution token and blocks until woken. The parking proc
// dispatches the next event itself: if that event is its own wake-up the
// token never moves (no channel operation at all — the dominant case for
// Yield and zero-length sleeps); if it targets another proc the token is
// handed over directly; only when nothing is dispatchable does the driver
// get involved. On resume the proc bumps its generation (invalidating stale
// wake events) and unwinds if it was killed in the meantime.
func (p *Proc) park() {
	s := p.sim
	if ev, ok := s.nextLive(); ok {
		if s.dispatch(ev, p) {
			p.resume() // self-continuation
			return
		}
	} else {
		s.parked <- struct{}{} // quiescent / stopped / horizon: driver decides
	}
	<-p.wake
	p.resume()
}

// resume is the post-wake bookkeeping shared by every way a proc regains
// the token.
func (p *Proc) resume() {
	p.gen++
	if p.killed {
		if w := p.waiter; w != nil {
			p.waiter = nil
			p.sim.releaseWaiter(w)
		}
		panic(killedPanic{})
	}
}

// Sleep suspends the proc for d of virtual time. Sleep is also how
// simulated code "spends" modelled latency or CPU cost. A negative d is
// clamped to zero: virtual time cannot run backwards, so Sleep(-x) behaves
// exactly like Yield — the proc reschedules at the current instant, after
// everything already queued there.
func (p *Proc) Sleep(d time.Duration) {
	if p.killed {
		panic(killedPanic{})
	}
	if d < 0 {
		d = 0
	}
	// Even a zero-length sleep yields, giving other runnable procs at the
	// same timestamp a chance to interleave.
	p.sim.schedule(p.sim.now+d, p, p.gen)
	p.park()
}

// Yield lets other procs scheduled at the current instant run.
func (p *Proc) Yield() { p.Sleep(0) }

// Go spawns a proc on the same node as p (or detached if p is detached).
// The child inherits p's current span so its work nests under it.
func (p *Proc) Go(name string, fn func(*Proc)) *Proc {
	c := p.sim.spawn(p.node, name, fn)
	c.span = p.span
	return c
}

// GoOn spawns a proc bound to node n, inheriting p's current span.
func (p *Proc) GoOn(n *Node, name string, fn func(*Proc)) *Proc {
	c := p.sim.spawn(n, name, fn)
	c.span = p.span
	return c
}

// nodeName is the span Node attribution ("" for detached procs).
func (p *Proc) nodeName() string {
	if p.node == nil {
		return ""
	}
	return p.node.name
}

// StartSpan opens a trace span as a child of the proc's current span and
// makes it the new current span. Returns nil when no collector is attached
// to the Sim, so disabled tracing costs one pointer check.
func (p *Proc) StartSpan(layer, op string, attrs ...trace.Attr) *trace.Span {
	t := p.sim.tracer
	if t == nil {
		return nil
	}
	sp := t.Start(p.sim.now, p.sim.traceRun, p.id, layer, op, p.nodeName(), p.span, attrs...)
	p.span = sp
	return sp
}

// EndSpan finishes sp at the current virtual time and restores the proc's
// previous span context. Safe on nil spans, so call sites need no
// tracing-enabled check.
func (p *Proc) EndSpan(sp *trace.Span) {
	if sp == nil {
		return
	}
	p.sim.tracer.End(sp, p.sim.now)
	if p.span == sp {
		p.span = sp.Prev()
	}
}

// StartDetachedSpan opens an async span that is NOT pushed onto the proc's
// span stack: its lifetime may cross procs (e.g. an RDMA work request posted
// here but completed by the NIC engine). It still parents under the current
// span. Finish it with FinishSpan from whichever proc observes completion.
func (p *Proc) StartDetachedSpan(layer, op string, attrs ...trace.Attr) *trace.Span {
	t := p.sim.tracer
	if t == nil {
		return nil
	}
	sp := t.Start(p.sim.now, p.sim.traceRun, p.id, layer, op, p.nodeName(), p.span, attrs...)
	sp.Async = true
	return sp
}

// FinishSpan ends a detached span without touching the span stack. Nil-safe.
func (p *Proc) FinishSpan(sp *trace.Span) {
	if sp == nil {
		return
	}
	p.sim.tracer.End(sp, p.sim.now)
}

// Span returns the proc's current span (nil when tracing is disabled or no
// span is open).
func (p *Proc) Span() *trace.Span { return p.span }

// AdoptSpan makes sp the proc's current span. RPC handler procs use it to
// nest their work under the remote caller's span.
func (p *Proc) AdoptSpan(sp *trace.Span) { p.span = sp }

// Tracing reports whether a trace collector is attached. Hot paths use it to
// skip building span attributes (whose vararg slices would otherwise escape)
// when tracing is off.
func (p *Proc) Tracing() bool { return p.sim.tracer != nil }

// Killed reports whether the proc has been marked for death (its node
// crashed). Long-running loops that never block can poll this, though in
// practice every loop blocks on simulated time.
func (p *Proc) Killed() bool { return p.killed }

// kill marks the proc dead and wakes it so its next (or current) park
// unwinds. Safe to call from any simulation context.
func (p *Proc) kill() {
	if p.done || p.killed {
		return
	}
	p.killed = true
	if w := p.waiter; w != nil {
		p.waiter = nil
		p.sim.releaseWaiter(w)
	}
	p.sim.schedule(p.sim.now, p, p.gen)
}

// Waiter states. Wait queues (Mutex, Cond, Chan, CPU) hold *waiter records;
// a record is cancelled when its proc times out of the wait or is killed,
// so wake-ups are never wasted on procs that already left.
const (
	wWaiting = iota
	wCancelled
)

// waiter is one proc's registration in a wait queue. Records are recycled
// through the Sim's freelist; the lifecycle is:
//
//  1. newWaiter allocates (or reuses) a record and makes it p.waiter.
//  2. waitQ.push/pop track queue membership via inQueue.
//  3. When the blocking episode ends, the owner calls Proc.releaseWaiter:
//     a record no queue holds returns to the freelist immediately; one
//     still queued (a timed-out wait, a killed proc) is marked cancelled
//     and freed by whichever queue operation eventually dequeues it.
//
// Only the owning proc reads a record after release, and only before
// releasing it, so reuse can never alias a live wait.
type waiter struct {
	p        *Proc
	state    int
	inQueue  bool
	nextFree *waiter
}

// newWaiter returns a fresh wait record for p and registers it as the
// proc's in-progress blocking operation.
func (p *Proc) newWaiter() *waiter {
	s := p.sim
	w := s.freeWaiters
	if w != nil {
		s.freeWaiters = w.nextFree
		w.nextFree = nil
	} else {
		w = &waiter{}
	}
	w.p = p
	w.state = wWaiting
	w.inQueue = false
	p.waiter = w
	return w
}

// releaseWaiter ends p's blocking episode on w. Read w.state (timed out vs
// claimed) before calling: after release the record may be reused.
func (p *Proc) releaseWaiter(w *waiter) {
	p.waiter = nil
	p.sim.releaseWaiter(w)
}

// releaseWaiter recycles w unless a wait queue still holds it (then the
// dequeue frees it).
func (s *Sim) releaseWaiter(w *waiter) {
	if w.inQueue {
		w.state = wCancelled
		return
	}
	s.freeWaiter(w)
}

func (s *Sim) freeWaiter(w *waiter) {
	w.p = nil
	w.nextFree = s.freeWaiters
	s.freeWaiters = w
}

// waitQ is a FIFO of waiter records with O(1) amortized push/pop and a
// recycled backing array, so steady-state queueing allocates nothing.
type waitQ struct {
	q    []*waiter
	head int
}

func (q *waitQ) empty() bool { return q.head == len(q.q) }

func (q *waitQ) push(w *waiter) {
	if q.head == len(q.q) {
		q.q = q.q[:0]
		q.head = 0
	} else if q.head > 32 && 2*q.head >= len(q.q) {
		// Compact so a queue that never fully drains cannot grow without
		// bound behind its own head.
		n := copy(q.q, q.q[q.head:])
		for i := n; i < len(q.q); i++ {
			q.q[i] = nil
		}
		q.q = q.q[:n]
		q.head = 0
	}
	w.inQueue = true
	q.q = append(q.q, w)
}

func (q *waitQ) pop() *waiter {
	w := q.q[q.head]
	q.q[q.head] = nil
	q.head++
	w.inQueue = false
	return w
}

// popLive dequeues until it finds a non-cancelled record, recycling the
// cancelled ones (their owners left long ago). Returns nil when the queue
// is exhausted.
func (q *waitQ) popLive(s *Sim) *waiter {
	for !q.empty() {
		w := q.pop()
		if w.state == wCancelled {
			s.freeWaiter(w)
			continue
		}
		return w
	}
	return nil
}

// wakeWaiter schedules a wake-up for w's proc at virtual time `at`,
// capturing the proc's current generation.
func wakeWaiter(s *Sim, w *waiter, at time.Duration) {
	s.schedule(at, w.p, w.p.gen)
}
