package simnet

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func run(t *testing.T, s *Sim) {
	t.Helper()
	if err := s.Run(); err != nil {
		t.Fatalf("sim run: %v", err)
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	s := New(1)
	var at time.Duration
	s.Go("a", func(p *Proc) {
		p.Sleep(3 * time.Millisecond)
		at = p.Now()
	})
	run(t, s)
	if at != 3*time.Millisecond {
		t.Fatalf("now = %v, want 3ms", at)
	}
}

func TestSleepOrdering(t *testing.T) {
	s := New(1)
	var order []string
	for _, tc := range []struct {
		name string
		d    time.Duration
	}{{"c", 3 * time.Millisecond}, {"a", 1 * time.Millisecond}, {"b", 2 * time.Millisecond}} {
		tc := tc
		s.Go(tc.name, func(p *Proc) {
			p.Sleep(tc.d)
			order = append(order, tc.name)
		})
	}
	run(t, s)
	if got := fmt.Sprint(order); got != "[a b c]" {
		t.Fatalf("order = %v", got)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	// Events at the same timestamp run in scheduling order (deterministic).
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Go(fmt.Sprint(i), func(p *Proc) {
			p.Sleep(time.Millisecond)
			order = append(order, i)
		})
	}
	run(t, s)
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (full: %v)", i, v, i, order)
		}
	}
}

func TestDeterminism(t *testing.T) {
	trace := func(seed int64) string {
		s := New(seed)
		out := ""
		ch := NewChan[int](s)
		for i := 0; i < 5; i++ {
			i := i
			s.Go(fmt.Sprint(i), func(p *Proc) {
				d := time.Duration(p.Rand().Intn(1000)) * time.Microsecond
				p.Sleep(d)
				ch.Send(p, i)
			})
		}
		s.Go("recv", func(p *Proc) {
			for j := 0; j < 5; j++ {
				v, _ := ch.Recv(p)
				out += fmt.Sprintf("%d@%v;", v, p.Now())
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := trace(42), trace(42)
	if a != b {
		t.Fatalf("nondeterministic: %q vs %q", a, b)
	}
	if c := trace(43); c == a {
		t.Fatalf("different seed produced identical trace %q", c)
	}
}

func TestChanDeliveryDelay(t *testing.T) {
	s := New(1)
	ch := NewChan[string](s)
	var at time.Duration
	s.Go("send", func(p *Proc) {
		ch.SendAfter(p, "hi", 5*time.Millisecond)
	})
	s.Go("recv", func(p *Proc) {
		v, ok := ch.Recv(p)
		if !ok || v != "hi" {
			t.Errorf("recv = %q, %v", v, ok)
		}
		at = p.Now()
	})
	run(t, s)
	if at != 5*time.Millisecond {
		t.Fatalf("delivered at %v, want 5ms", at)
	}
}

func TestChanOutOfOrderReadiness(t *testing.T) {
	// A later send with a shorter delay is delivered first.
	s := New(1)
	ch := NewChan[int](s)
	var got []int
	s.Go("send", func(p *Proc) {
		ch.SendAfter(p, 1, 10*time.Millisecond)
		ch.SendAfter(p, 2, 1*time.Millisecond)
	})
	s.Go("recv", func(p *Proc) {
		for i := 0; i < 2; i++ {
			v, _ := ch.Recv(p)
			got = append(got, v)
		}
	})
	run(t, s)
	if fmt.Sprint(got) != "[2 1]" {
		t.Fatalf("got %v, want [2 1]", got)
	}
}

func TestChanTimeout(t *testing.T) {
	s := New(1)
	ch := NewChan[int](s)
	s.Go("recv", func(p *Proc) {
		_, ok, timedOut := ch.RecvTimeout(p, 2*time.Millisecond)
		if ok || !timedOut {
			t.Errorf("ok=%v timedOut=%v, want timeout", ok, timedOut)
		}
		if p.Now() != 2*time.Millisecond {
			t.Errorf("timed out at %v", p.Now())
		}
		// A message arriving before a second deadline is received.
		ch.SendAfter(p, 7, time.Millisecond)
		v, ok, timedOut := ch.RecvTimeout(p, 5*time.Millisecond)
		if !ok || timedOut || v != 7 {
			t.Errorf("second recv = %v %v %v", v, ok, timedOut)
		}
	})
	run(t, s)
}

func TestChanClose(t *testing.T) {
	s := New(1)
	ch := NewChan[int](s)
	var got []int
	var closedOK bool
	s.Go("send", func(p *Proc) {
		ch.Send(p, 1)
		ch.Send(p, 2)
		ch.Close(p)
	})
	s.Go("recv", func(p *Proc) {
		for {
			v, ok := ch.Recv(p)
			if !ok {
				closedOK = true
				return
			}
			got = append(got, v)
		}
	})
	run(t, s)
	if !closedOK || fmt.Sprint(got) != "[1 2]" {
		t.Fatalf("got %v closed=%v", got, closedOK)
	}
}

func TestMutexExclusionAndFIFO(t *testing.T) {
	s := New(1)
	var mu Mutex
	inCS := 0
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Go(fmt.Sprint(i), func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Microsecond) // stagger arrival
			mu.Lock(p)
			inCS++
			if inCS != 1 {
				t.Errorf("mutual exclusion violated: %d in CS", inCS)
			}
			order = append(order, i)
			p.Sleep(time.Millisecond)
			inCS--
			mu.Unlock(p)
		})
	}
	run(t, s)
	if fmt.Sprint(order) != "[0 1 2 3 4]" {
		t.Fatalf("order %v, want FIFO", order)
	}
}

func TestCondSignalBroadcast(t *testing.T) {
	s := New(1)
	var mu Mutex
	cond := NewCond(&mu)
	ready := 0
	awoken := 0
	for i := 0; i < 3; i++ {
		s.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			mu.Lock(p)
			for ready == 0 {
				cond.Wait(p)
			}
			awoken++
			mu.Unlock(p)
		})
	}
	s.Go("sig", func(p *Proc) {
		p.Sleep(time.Millisecond)
		mu.Lock(p)
		ready = 1
		cond.Broadcast(p)
		mu.Unlock(p)
	})
	run(t, s)
	if awoken != 3 {
		t.Fatalf("awoken = %d, want 3", awoken)
	}
}

func TestCondWaitTimeout(t *testing.T) {
	s := New(1)
	var mu Mutex
	cond := NewCond(&mu)
	s.Go("w", func(p *Proc) {
		mu.Lock(p)
		timedOut := cond.WaitTimeout(p, 3*time.Millisecond)
		if !timedOut {
			t.Error("expected timeout")
		}
		if p.Now() != 3*time.Millisecond {
			t.Errorf("woke at %v", p.Now())
		}
		mu.Unlock(p)
	})
	run(t, s)
}

func TestWaitGroup(t *testing.T) {
	s := New(1)
	var wg WaitGroup
	wg.Add(3)
	doneAt := time.Duration(0)
	for i := 1; i <= 3; i++ {
		i := i
		s.Go(fmt.Sprint(i), func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond)
			wg.Done(p)
		})
	}
	s.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	run(t, s)
	if doneAt != 3*time.Millisecond {
		t.Fatalf("wait finished at %v, want 3ms", doneAt)
	}
}

func TestSemaphore(t *testing.T) {
	s := New(1)
	sem := NewSemaphore(2)
	active, peak := 0, 0
	for i := 0; i < 6; i++ {
		s.Go(fmt.Sprint(i), func(p *Proc) {
			sem.Acquire(p)
			active++
			if active > peak {
				peak = active
			}
			p.Sleep(time.Millisecond)
			active--
			sem.Release(p)
		})
	}
	run(t, s)
	if peak != 2 {
		t.Fatalf("peak concurrency = %d, want 2", peak)
	}
}

func TestNodeCrashKillsProcs(t *testing.T) {
	s := New(1)
	n := s.NewNode("victim")
	progressed := false
	hookRan := false
	n.OnCrash(func() { hookRan = true })
	n.Go("loop", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		progressed = true // must never run
	})
	s.Go("injector", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		n.Crash()
	})
	run(t, s)
	if progressed {
		t.Fatal("proc survived node crash")
	}
	if !hookRan {
		t.Fatal("crash hook did not run")
	}
	if n.Alive() {
		t.Fatal("node still alive")
	}
}

func TestNodeCrashSelf(t *testing.T) {
	s := New(1)
	n := s.NewNode("n")
	after := false
	n.Go("suicidal", func(p *Proc) {
		n.Crash()
		p.Sleep(time.Microsecond) // unwinds here
		after = true
	})
	run(t, s)
	if after {
		t.Fatal("proc continued after crashing its own node")
	}
}

func TestNodeRestart(t *testing.T) {
	s := New(1)
	n := s.NewNode("n")
	var boots []int
	s.Go("op", func(p *Proc) {
		n.Go("svc", func(p *Proc) { boots = append(boots, n.Incarnation()); p.Sleep(time.Hour) })
		p.Sleep(time.Millisecond)
		n.Crash()
		p.Sleep(time.Millisecond)
		n.Restart()
		n.Go("svc", func(p *Proc) { boots = append(boots, n.Incarnation()) })
	})
	run(t, s)
	if fmt.Sprint(boots) != "[0 1]" {
		t.Fatalf("boots = %v", boots)
	}
}

func TestCPUSaturation(t *testing.T) {
	// 2 cores, 4 procs each needing 1ms of CPU: finish at 1ms and 2ms.
	s := New(1)
	n := s.NewNode("srv")
	n.SetCores(2)
	var finish []time.Duration
	for i := 0; i < 4; i++ {
		n.Go(fmt.Sprint(i), func(p *Proc) {
			n.CPU().Use(p, time.Millisecond)
			finish = append(finish, p.Now())
		})
	}
	run(t, s)
	want := []time.Duration{time.Millisecond, time.Millisecond, 2 * time.Millisecond, 2 * time.Millisecond}
	if fmt.Sprint(finish) != fmt.Sprint(want) {
		t.Fatalf("finish = %v, want %v", finish, want)
	}
}

func TestRPCRoundtrip(t *testing.T) {
	s := New(1)
	srv := s.NewNode("srv")
	cli := s.NewNode("cli")
	s.Net().SetLatency(srv, cli, 100*time.Microsecond)
	s.Net().Register("echo", srv, func(p *Proc, req Msg) (Msg, error) {
		return Msg{S: [3]string{"echo:" + req.S[0]}}, nil
	})
	var resp Msg
	var rtt time.Duration
	s.Go("caller", func(p *Proc) {
		start := p.Now()
		var err error
		resp, err = s.Net().Call(p, cli, "echo", Msg{S: [3]string{"hi"}})
		if err != nil {
			t.Errorf("call: %v", err)
		}
		rtt = p.Now() - start
	})
	run(t, s)
	if resp.S[0] != "echo:hi" {
		t.Fatalf("resp = %v", resp)
	}
	if rtt != 200*time.Microsecond {
		t.Fatalf("rtt = %v, want 200us", rtt)
	}
}

func TestRPCHandlerError(t *testing.T) {
	s := New(1)
	srv := s.NewNode("srv")
	cli := s.NewNode("cli")
	s.Net().Register("fail", srv, func(p *Proc, req Msg) (Msg, error) {
		return Msg{}, errors.New("boom")
	})
	s.Go("caller", func(p *Proc) {
		_, err := s.Net().Call(p, cli, "fail", Msg{})
		if err == nil || err.Error() != "boom" {
			t.Errorf("err = %v, want boom", err)
		}
	})
	run(t, s)
}

func TestRPCTimeoutOnDeadServer(t *testing.T) {
	s := New(1)
	srv := s.NewNode("srv")
	cli := s.NewNode("cli")
	s.Net().Register("svc", srv, func(p *Proc, req Msg) (Msg, error) { return req, nil })
	s.Go("test", func(p *Proc) {
		srv.Crash()
		start := p.Now()
		_, err := s.Net().CallTimeout(p, cli, "svc", Msg{}, 10*time.Millisecond)
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want timeout", err)
		}
		if p.Now()-start != 10*time.Millisecond {
			t.Errorf("timeout took %v", p.Now()-start)
		}
	})
	run(t, s)
}

func TestRPCPartition(t *testing.T) {
	s := New(1)
	srv := s.NewNode("srv")
	cli := s.NewNode("cli")
	s.Net().Register("svc", srv, func(p *Proc, req Msg) (Msg, error) { return req, nil })
	s.Go("test", func(p *Proc) {
		s.Net().Partition(cli, srv)
		if _, err := s.Net().CallTimeout(p, cli, "svc", Msg{}, 5*time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Errorf("partitioned call err = %v", err)
		}
		s.Net().Heal(cli, srv)
		if _, err := s.Net().Call(p, cli, "svc", Msg{}); err != nil {
			t.Errorf("healed call err = %v", err)
		}
	})
	run(t, s)
}

func TestRPCServerRestartDropsOldIncarnation(t *testing.T) {
	s := New(1)
	srv := s.NewNode("srv")
	cli := s.NewNode("cli")
	hits := 0
	register := func() {
		s.Net().Register("svc", srv, func(p *Proc, req Msg) (Msg, error) {
			hits++
			return Msg{}, nil
		})
	}
	register()
	s.Go("test", func(p *Proc) {
		if _, err := s.Net().Call(p, cli, "svc", Msg{}); err != nil {
			t.Errorf("first call: %v", err)
		}
		srv.Crash()
		if _, err := s.Net().CallTimeout(p, cli, "svc", Msg{}, 5*time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Errorf("call to crashed server: %v", err)
		}
		srv.Restart()
		register()
		if _, err := s.Net().Call(p, cli, "svc", Msg{}); err != nil {
			t.Errorf("call after restart: %v", err)
		}
	})
	run(t, s)
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := New(1)
	ticks := 0
	s.Go("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Millisecond)
			ticks++
		}
	})
	if err := s.RunUntil(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	if s.Now() != 10*time.Millisecond {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestProcPanicSurfacesAsError(t *testing.T) {
	s := New(1)
	s.Go("bad", func(p *Proc) { panic("kaboom") })
	if err := s.Run(); err == nil {
		t.Fatal("expected error from panicking proc")
	}
}

// Property: for any set of sleep durations, procs finish in sorted order of
// duration (stable for ties by spawn order).
func TestQuickSleepOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 50 {
			return true
		}
		s := New(7)
		var finished []int
		for i, r := range raw {
			i, d := i, time.Duration(r)*time.Microsecond
			s.Go(fmt.Sprint(i), func(p *Proc) {
				p.Sleep(d)
				finished = append(finished, i)
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		for k := 1; k < len(finished); k++ {
			a, b := finished[k-1], finished[k]
			if raw[a] > raw[b] || (raw[a] == raw[b] && a > b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a Chan delivers every message exactly once regardless of the
// mix of delays, and never before its delivery time.
func TestQuickChanDelivery(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 || len(delays) > 64 {
			return true
		}
		s := New(11)
		ch := NewChan[int](s)
		sentAt := make([]time.Duration, len(delays))
		okAll := true
		s.Go("send", func(p *Proc) {
			for i, d := range delays {
				sentAt[i] = p.Now() + time.Duration(d)*time.Microsecond
				ch.SendAfter(p, i, time.Duration(d)*time.Microsecond)
			}
		})
		seen := make(map[int]bool)
		s.Go("recv", func(p *Proc) {
			for range delays {
				v, ok := ch.Recv(p)
				if !ok || seen[v] || p.Now() < sentAt[v] {
					okAll = false
					return
				}
				seen[v] = true
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		return okAll && len(seen) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
