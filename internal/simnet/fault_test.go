package simnet

import (
	"errors"
	"testing"
	"time"
)

// Tests for the directional fault surface: one-way partitions, gray
// latency, loss, node isolation, and crash re-entrancy. Like net_test.go,
// timings are pinned to exact virtual instants.

// A one-way cut is asymmetric at the message level: with cli->srv cut the
// handler never runs, with srv->cli cut the handler runs (the request got
// through) but the caller still times out because the reply is dropped.
func TestOneWayPartitionAsymmetry(t *testing.T) {
	s := New(1)
	srv := s.NewNode("srv")
	cli := s.NewNode("cli")
	served := 0
	s.Net().Register("count", srv, func(p *Proc, req Msg) (Msg, error) {
		served++
		return req, nil
	})
	s.Go("main", func(p *Proc) {
		s.Net().PartitionOneWay(cli, srv)
		if !s.Net().Partitioned(cli, srv) {
			t.Error("cli->srv should be partitioned")
		}
		if s.Net().Partitioned(srv, cli) {
			t.Error("srv->cli should not be partitioned")
		}
		if _, err := s.Net().CallTimeout(p, cli, "count", Msg{}, time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Errorf("request-cut call err = %v, want ErrTimeout", err)
		}
		if served != 0 {
			t.Errorf("handler ran %d times behind a request-side cut, want 0", served)
		}

		s.Net().HealOneWay(cli, srv)
		s.Net().PartitionOneWay(srv, cli)
		if _, err := s.Net().CallTimeout(p, cli, "count", Msg{}, time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Errorf("reply-cut call err = %v, want ErrTimeout", err)
		}
		if served != 1 {
			t.Errorf("handler ran %d times behind a reply-side cut, want 1 (request got through)", served)
		}

		s.Net().HealOneWay(srv, cli)
		if _, err := s.Net().Call(p, cli, "count", Msg{}); err != nil {
			t.Errorf("healed call err = %v", err)
		}
		if served != 2 {
			t.Errorf("served = %d after heal, want 2", served)
		}
	})
	run(t, s)
}

// The symmetric Partition/Heal wrappers cut and restore both directions,
// preserving the old API's behavior.
func TestSymmetricPartitionCutsBothWays(t *testing.T) {
	s := New(1)
	a := s.NewNode("a")
	b := s.NewNode("b")
	s.Net().Partition(a, b)
	if !s.Net().Partitioned(a, b) || !s.Net().Partitioned(b, a) {
		t.Fatal("Partition must cut both directions")
	}
	s.Net().Heal(a, b)
	if s.Net().Partitioned(a, b) || s.Net().Partitioned(b, a) {
		t.Fatal("Heal must restore both directions")
	}
}

// Net.Heal restores connectivity only — a per-pair latency override and a
// per-link gray override installed before (or during) the partition must
// survive the heal, not be reset to defaultLat. (Regression: healing a
// cable does not recalibrate the link.)
func TestHealKeepsLatencyOverride(t *testing.T) {
	s := New(1)
	srv := s.NewNode("srv")
	cli := s.NewNode("cli")
	s.Net().SetLatency(srv, cli, 100*time.Microsecond)
	s.Net().SetLinkLatency(cli, srv, 50*time.Microsecond) // gray on the request path
	s.Net().Register("echo", srv, func(p *Proc, req Msg) (Msg, error) { return req, nil })
	s.Go("main", func(p *Proc) {
		s.Net().Partition(cli, srv)
		s.Net().Heal(cli, srv)
		if got := s.Net().Latency(cli, srv); got != 150*time.Microsecond {
			t.Errorf("post-heal cli->srv latency = %v, want 150us (override + gray)", got)
		}
		if got := s.Net().Latency(srv, cli); got != 100*time.Microsecond {
			t.Errorf("post-heal srv->cli latency = %v, want the 100us override", got)
		}
		// And the override is what the wire actually pays: 150us out, 100us
		// back.
		start := p.Now()
		if _, err := s.Net().Call(p, cli, "echo", Msg{}); err != nil {
			t.Fatalf("post-heal call: %v", err)
		}
		if got := p.Now() - start; got != 250*time.Microsecond {
			t.Errorf("post-heal RTT = %v, want exactly 250us", got)
		}
	})
	run(t, s)
}

// Isolate cuts every link of a node in both directions while HealAll
// restores all faults at once — including one-way cuts and loss — but
// keeps base latency overrides.
func TestIsolateAndHealAll(t *testing.T) {
	s := New(1)
	a := s.NewNode("a")
	b := s.NewNode("b")
	c := s.NewNode("c")
	s.Net().SetLatency(a, b, 40*time.Microsecond)
	s.Net().Register("b-svc", b, func(p *Proc, req Msg) (Msg, error) { return req, nil })
	s.Net().Register("c-svc", c, func(p *Proc, req Msg) (Msg, error) { return req, nil })
	s.Go("main", func(p *Proc) {
		s.Net().Isolate(b)
		s.Net().PartitionOneWay(a, c)
		s.Net().SetLoss(c, a, 1.0)
		if !s.Net().Partitioned(a, b) || !s.Net().Partitioned(b, a) || !s.Net().Isolated(b) {
			t.Error("isolation must cut both directions of every link")
		}
		if _, err := s.Net().CallTimeout(p, a, "b-svc", Msg{}, time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Errorf("call into isolated node err = %v, want ErrTimeout", err)
		}
		if _, err := s.Net().CallTimeout(p, a, "c-svc", Msg{}, time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Errorf("one-way-cut call err = %v, want ErrTimeout", err)
		}
		s.Net().HealAll()
		if s.Net().Isolated(b) || s.Net().Partitioned(a, b) || s.Net().Partitioned(a, c) {
			t.Error("HealAll must clear isolation and cuts")
		}
		start := p.Now()
		if _, err := s.Net().Call(p, a, "b-svc", Msg{}); err != nil {
			t.Errorf("post-HealAll call err = %v", err)
		}
		if got := p.Now() - start; got != 80*time.Microsecond {
			t.Errorf("post-HealAll RTT = %v, want 80us (latency override survives HealAll)", got)
		}
		if _, err := s.Net().Call(p, a, "c-svc", Msg{}); err != nil {
			t.Errorf("post-HealAll lossy-link call err = %v (loss must be cleared)", err)
		}
	})
	run(t, s)
}

// Loss = 1.0 drops every message; loss = 0 restores the link; and a lossy
// run is deterministic per seed (two sims with the same seed agree on every
// drop decision).
func TestLossDropsAndIsDeterministic(t *testing.T) {
	outcomes := func(seed int64, loss float64) []bool {
		s := New(seed)
		srv := s.NewNode("srv")
		cli := s.NewNode("cli")
		s.Net().Register("echo", srv, func(p *Proc, req Msg) (Msg, error) { return req, nil })
		var got []bool
		s.Go("main", func(p *Proc) {
			s.Net().SetLoss(cli, srv, loss)
			for i := 0; i < 32; i++ {
				_, err := s.Net().CallTimeout(p, cli, "echo", Msg{}, 500*time.Microsecond)
				got = append(got, err == nil)
			}
		})
		if err := s.Run(); err != nil {
			t.Fatalf("sim run: %v", err)
		}
		return got
	}
	for _, ok := range outcomes(1, 1.0) {
		if ok {
			t.Fatal("loss=1.0 delivered a message")
		}
	}
	for _, ok := range outcomes(1, 0) {
		if !ok {
			t.Fatal("loss=0 dropped a message")
		}
	}
	a, b := outcomes(7, 0.5), outcomes(7, 0.5)
	delivered := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: same seed diverged (%v vs %v)", i, a[i], b[i])
		}
		if a[i] {
			delivered++
		}
	}
	if delivered == 0 || delivered == len(a) {
		t.Fatalf("loss=0.5 delivered %d/%d, want a mix", delivered, len(a))
	}
}

// Node.Crash invoked from inside an OnCrash hook — the crash-storm case
// where one machine's death handler takes another down, whose handler
// crashes back. Hooks must run exactly once per node, re-entrant
// self-crash must be a no-op, and every proc must unwind (no leaks on the
// nodes' intrusive lists).
func TestCrashReentrantFromOnCrashHook(t *testing.T) {
	s := New(1)
	a := s.NewNode("a")
	b := s.NewNode("b")
	hookRuns := map[string]int{}
	a.OnCrash(func() {
		hookRuns["a"]++
		b.Crash() // cascade into b...
	})
	b.OnCrash(func() {
		hookRuns["b"]++
		a.Crash() // ...which crashes back into a, already dead: must no-op
		b.Crash() // and a re-entrant self-crash must no-op too
	})
	// Procs on both nodes so the kill sweep has something to unwind.
	for i := 0; i < 3; i++ {
		a.Go("a-worker", func(p *Proc) {
			for {
				p.Sleep(10 * time.Microsecond)
			}
		})
		b.Go("b-worker", func(p *Proc) {
			for {
				p.Sleep(10 * time.Microsecond)
			}
		})
	}
	s.Go("storm", func(p *Proc) {
		p.Sleep(time.Millisecond)
		a.Crash()
		if a.Alive() || b.Alive() {
			t.Error("both nodes must be down after the cascading crash")
		}
		// Let killed procs wake once and unwind.
		p.Sleep(time.Millisecond)
		if a.procsHead != nil || b.procsHead != nil {
			t.Error("crashed nodes still hold procs: leak in the kill sweep")
		}
		if hookRuns["a"] != 1 || hookRuns["b"] != 1 {
			t.Errorf("hook runs = %v, want exactly one per node", hookRuns)
		}
	})
	run(t, s)
}

// A node crash that kills a proc parked inside Cond.Wait/WaitTimeout must
// unwind cleanly through the caller's deferred Unlock. Before the fix the
// cond had released the mutex for the duration of the park, so the unwind
// hit "unlock of unlocked Mutex" and the secondary panic masked the kill —
// every chaos schedule that crashed a node mid-ack-wait blew up the sim.
func TestCrashUnwindsCondWaitUnderDeferredUnlock(t *testing.T) {
	s := New(1)
	n := s.NewNode("n")
	mu := &Mutex{}
	cond := NewCond(mu)
	reached := false
	n.Go("waiter", func(p *Proc) {
		mu.Lock(p)
		defer mu.Unlock(p) // the idiom every store's critical section uses
		for {
			cond.WaitTimeout(p, time.Millisecond)
			reached = true
		}
	})
	n.Go("sleeper", func(p *Proc) {
		mu.Lock(p)
		defer mu.Unlock(p)
		cond.Wait(p) // plain Wait variant: killed while parked forever
	})
	s.Go("main", func(p *Proc) {
		p.Sleep(100 * time.Microsecond) // both procs are parked in the cond
		n.Crash()
		p.Sleep(time.Millisecond) // killed procs wake once and unwind
		if n.procsHead != nil {
			t.Error("crashed node still holds procs")
		}
	})
	if reached {
		t.Error("waiter advanced before any signal/timeout")
	}
	run(t, s)
}
