package simnet

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// Property: the merged heap + run-queue dispatch order equals a reference
// sort.SliceStable replay of (at, seq) over the same schedule. The driver
// below mimics Sim.Run against the raw queues: it interleaves schedule calls
// (biased toward same-instant bursts, which take the run-queue fast path)
// with pops that advance the clock, exactly the discrete-event invariant the
// scheduler relies on.
func TestDispatchOrderMatchesStableSortReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		s := New(seed)
		rng := rand.New(rand.NewSource(seed))
		dummy := &Proc{sim: s}

		type ref struct {
			at  time.Duration
			seq uint64
		}
		var scheduled []ref // appended in seq order
		var dispatched []ref

		schedule := func() {
			var d time.Duration
			switch rng.Intn(4) {
			case 0, 1: // same-instant burst: run-queue fast path
				d = 0
			case 2:
				d = time.Duration(rng.Intn(5)) * time.Microsecond
			default:
				d = time.Duration(rng.Intn(1000)) * time.Microsecond
			}
			at := s.now + d
			s.schedule(at, dummy, 0)
			scheduled = append(scheduled, ref{at: at, seq: s.seq})
		}

		// Seed the queues, then interleave scheduling and dispatching.
		for i := 0; i < 10; i++ {
			schedule()
		}
		for i := 0; i < 3000; i++ {
			if rng.Intn(2) == 0 && s.pending() {
				e := s.popMin()
				if e.at < s.now {
					t.Fatalf("seed %d: event at %v dispatched after clock reached %v", seed, e.at, s.now)
				}
				s.now = e.at
				dispatched = append(dispatched, ref{at: e.at, seq: e.seq})
			} else {
				schedule()
			}
		}
		for s.pending() {
			e := s.popMin()
			s.now = e.at
			dispatched = append(dispatched, ref{at: e.at, seq: e.seq})
		}

		// scheduled is already in seq order, so a stable sort by at alone
		// yields the required (at, seq) total order.
		expect := append([]ref(nil), scheduled...)
		sort.SliceStable(expect, func(i, j int) bool { return expect[i].at < expect[j].at })
		if len(dispatched) != len(expect) {
			t.Fatalf("seed %d: dispatched %d of %d events", seed, len(dispatched), len(expect))
		}
		for i := range expect {
			if dispatched[i] != expect[i] {
				t.Fatalf("seed %d: dispatch[%d] = %+v, reference %+v", seed, i, dispatched[i], expect[i])
			}
		}
	}
}

// Same property end to end through the public API: procs sleeping random
// durations (many zero) must run in (wake time, schedule order) order.
func TestProcDispatchOrderSameInstantBursts(t *testing.T) {
	s := New(3)
	rng := rand.New(rand.NewSource(3))
	type wake struct {
		at   time.Duration
		proc int
	}
	var order []wake
	const procs = 40
	for i := 0; i < procs; i++ {
		i := i
		d := time.Duration(rng.Intn(3)) * time.Microsecond // heavy tie density
		s.Go(fmt.Sprint(i), func(p *Proc) {
			p.Sleep(d)
			order = append(order, wake{at: p.Now(), proc: i})
			p.Yield() // same-instant burst through the run queue
			order = append(order, wake{at: p.Now(), proc: i})
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2*procs {
		t.Fatalf("recorded %d wake-ups, want %d", len(order), 2*procs)
	}
	for i := 1; i < len(order); i++ {
		if order[i].at < order[i-1].at {
			t.Fatalf("wake %d at %v before previous at %v", i, order[i].at, order[i-1].at)
		}
	}
	// Within each instant, first wake-ups run in spawn order, then the
	// yielded continuations in the same order.
	byInstant := map[time.Duration][]int{}
	var instants []time.Duration
	for _, w := range order {
		if _, ok := byInstant[w.at]; !ok {
			instants = append(instants, w.at)
		}
		byInstant[w.at] = append(byInstant[w.at], w.proc)
	}
	for _, at := range instants {
		seq := byInstant[at]
		half := len(seq) / 2
		for i := 1; i < half; i++ {
			if seq[i] < seq[i-1] {
				t.Fatalf("instant %v: first wake-ups out of spawn order: %v", at, seq)
			}
		}
		for i := half + 1; i < len(seq); i++ {
			if seq[i] < seq[i-1] {
				t.Fatalf("instant %v: yield continuations out of order: %v", at, seq)
			}
		}
	}
}

// The run queue must stay a correct ring across wrap-around and growth.
func TestRunQueueWrapAndGrow(t *testing.T) {
	var q runQueue
	next := uint64(0)
	pop := uint64(0)
	for round := 0; round < 5000; round++ {
		for i := 0; i < 3; i++ {
			next++
			q.push(event{seq: next})
		}
		for i := 0; i < 2; i++ {
			pop++
			if got := q.pop().seq; got != pop {
				t.Fatalf("round %d: popped seq %d, want %d", round, got, pop)
			}
		}
	}
	for q.len() > 0 {
		pop++
		if got := q.pop().seq; got != pop {
			t.Fatalf("drain: popped seq %d, want %d", got, pop)
		}
	}
	if pop != next {
		t.Fatalf("popped %d of %d events", pop, next)
	}
}

// The 4-ary heap must agree with a sort on random inputs.
func TestEventHeapSortsRandomInput(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var h eventHeap
	var ref []event
	for i := 0; i < 4000; i++ {
		e := event{at: time.Duration(rng.Intn(64)), seq: uint64(i)}
		h.push(e)
		ref = append(ref, e)
	}
	sort.SliceStable(ref, func(i, j int) bool { return ref[i].at < ref[j].at })
	for i, want := range ref {
		got := h.pop()
		if got.at != want.at || got.seq != want.seq {
			t.Fatalf("pop %d = (%v, %d), want (%v, %d)", i, got.at, got.seq, want.at, want.seq)
		}
	}
	if h.len() != 0 {
		t.Fatalf("heap not empty after draining: %d left", h.len())
	}
}
