package simnet

import (
	"fmt"
	"testing"
	"time"
)

// Scheduler hot-path benchmarks. Each reports ns/op where one op is one
// dispatched simulator event (or one higher-level operation built from a
// fixed number of events), plus allocs/op via ReportAllocs. The same
// workloads back `splitft-bench perf`, which writes BENCH_simnet.json;
// CI runs them non-gating so the trajectory stays visible.

// BenchmarkEventChurn is the headline microbenchmark: a single proc sleeping
// in a tight loop. Every iteration is one schedule + one dispatch; after the
// hot-path overhaul each is a self-continuation that never touches a channel.
func BenchmarkEventChurn(b *testing.B) {
	s := New(1)
	s.Go("churn", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventChurnFanout is event churn with 64 concurrent sleepers, so
// the event queue holds real depth and every dispatch switches procs.
func BenchmarkEventChurnFanout(b *testing.B) {
	const procs = 64
	s := New(1)
	per := b.N / procs
	for i := 0; i < procs; i++ {
		i := i
		s.Go(fmt.Sprintf("churn%d", i), func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Nanosecond) // stagger phases
			for j := 0; j < per; j++ {
				p.Sleep(time.Microsecond)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkYieldPingPong is two procs interleaving at the same virtual
// instant — the run-queue fast path (no virtual time ever passes).
func BenchmarkYieldPingPong(b *testing.B) {
	s := New(1)
	for i := 0; i < 2; i++ {
		s.Go(fmt.Sprintf("y%d", i), func(p *Proc) {
			for j := 0; j < b.N/2; j++ {
				p.Yield()
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkChanPingPong bounces one message between two procs; each op is a
// full send + blocked-receive wake-up round trip.
func BenchmarkChanPingPong(b *testing.B) {
	s := New(1)
	ping := NewChan[int](s)
	pong := NewChan[int](s)
	s.Go("ping", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Send(p, i)
			pong.Recv(p)
		}
	})
	s.Go("pong", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Recv(p)
			pong.Send(p, i)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMutexConvoy hammers one Mutex from 8 procs with a Yield inside
// the critical section, exercising waiter queueing and direct handoff.
func BenchmarkMutexConvoy(b *testing.B) {
	const procs = 8
	s := New(1)
	var mu Mutex
	for i := 0; i < procs; i++ {
		s.Go(fmt.Sprintf("m%d", i), func(p *Proc) {
			for j := 0; j < b.N/procs; j++ {
				mu.Lock(p)
				p.Yield()
				mu.Unlock(p)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRPCEcho measures a full simulated RPC: two Chan hops, the
// dispatcher handoff to a pooled worker, and timeout bookkeeping.
func BenchmarkRPCEcho(b *testing.B) {
	s := New(1)
	srv := s.NewNode("srv")
	cli := s.NewNode("cli")
	s.Net().Register("echo", srv, func(p *Proc, req Msg) (Msg, error) { return req, nil })
	s.Go("caller", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Net().Call(p, cli, "echo", Msg{U: [4]uint64{uint64(i)}}); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
