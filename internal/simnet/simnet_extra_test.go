package simnet

import (
	"fmt"
	"testing"
	"time"
)

// Additional simnet coverage: non-blocking primitives, teardown semantics,
// latency overrides, and scheduling edge cases.

func TestTryRecvAndClose(t *testing.T) {
	s := New(1)
	ch := NewChan[int](s)
	s.Go("t", func(p *Proc) {
		if _, ok := ch.TryRecv(p); ok {
			t.Error("TryRecv on empty chan succeeded")
		}
		ch.SendAfter(p, 1, time.Millisecond)
		if _, ok := ch.TryRecv(p); ok {
			t.Error("TryRecv returned an in-flight message early")
		}
		p.Sleep(2 * time.Millisecond)
		if v, ok := ch.TryRecv(p); !ok || v != 1 {
			t.Errorf("TryRecv after delivery = %v %v", v, ok)
		}
		ch.Close(p)
		ch.Send(p, 9) // dropped silently
		if _, ok := ch.Recv(p); ok {
			t.Error("recv on closed empty chan returned a value")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseWakesBlockedReceiver(t *testing.T) {
	s := New(1)
	ch := NewChan[int](s)
	woke := false
	s.Go("recv", func(p *Proc) {
		_, ok := ch.Recv(p)
		woke = true
		if ok {
			t.Error("closed chan delivered a value")
		}
	})
	s.Go("closer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		ch.Close(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !woke {
		t.Fatal("receiver never woke after close")
	}
}

func TestTryLock(t *testing.T) {
	s := New(1)
	var mu Mutex
	s.Go("t", func(p *Proc) {
		if !mu.TryLock(p) {
			t.Error("TryLock on free mutex failed")
		}
		if mu.TryLock(p) {
			t.Error("TryLock on held mutex succeeded")
		}
		mu.Unlock(p)
		if !mu.TryLock(p) {
			t.Error("TryLock after unlock failed")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyOverridePerPair(t *testing.T) {
	s := New(1)
	a := s.NewNode("a")
	b := s.NewNode("b")
	c := s.NewNode("c")
	s.Net().SetDefaultLatency(10 * time.Microsecond)
	s.Net().SetLatency(a, b, time.Millisecond)
	if got := s.Net().Latency(a, b); got != time.Millisecond {
		t.Fatalf("a-b latency = %v", got)
	}
	if got := s.Net().Latency(b, a); got != time.Millisecond {
		t.Fatalf("latency not symmetric: %v", got)
	}
	if got := s.Net().Latency(a, c); got != 10*time.Microsecond {
		t.Fatalf("default latency = %v", got)
	}
	if got := s.Net().Latency(a, a); got != 0 {
		t.Fatalf("self latency = %v", got)
	}
}

func TestReachability(t *testing.T) {
	s := New(1)
	a := s.NewNode("a")
	b := s.NewNode("b")
	if !s.Net().Reachable(a, b) {
		t.Fatal("fresh nodes unreachable")
	}
	s.Net().Partition(a, b)
	if s.Net().Reachable(a, b) || s.Net().Reachable(b, a) {
		t.Fatal("partitioned nodes reachable")
	}
	s.Net().Heal(a, b)
	b.Crash()
	if s.Net().Reachable(a, b) {
		t.Fatal("dead node reachable")
	}
}

func TestSemaphoreFIFOUnderContention(t *testing.T) {
	s := New(1)
	sem := NewSemaphore(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Go(fmt.Sprint(i), func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Microsecond)
			sem.Acquire(p)
			order = append(order, i)
			p.Sleep(time.Millisecond)
			sem.Release(p)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[0 1 2 3 4]" {
		t.Fatalf("order = %v", order)
	}
}

func TestCrashResetsCPUQueue(t *testing.T) {
	s := New(1)
	n := s.NewNode("n")
	n.SetCores(1)
	resumed := false
	s.Go("driver", func(p *Proc) {
		n.Go("hog", func(hp *Proc) { n.CPU().Use(hp, time.Hour) })
		p.Sleep(time.Millisecond)
		n.Crash()
		p.Sleep(time.Millisecond)
		n.Restart()
		n.Go("after", func(ap *Proc) {
			n.CPU().Use(ap, time.Millisecond)
			resumed = true
		})
	})
	if err := s.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if !resumed {
		t.Fatal("CPU queue not reset by crash: post-restart work never ran")
	}
}

func TestYieldInterleavesSameInstant(t *testing.T) {
	s := New(1)
	var log []string
	s.Go("a", func(p *Proc) {
		log = append(log, "a1")
		p.Yield()
		log = append(log, "a2")
	})
	s.Go("b", func(p *Proc) {
		log = append(log, "b1")
		p.Yield()
		log = append(log, "b2")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(log) != "[a1 b1 a2 b2]" {
		t.Fatalf("interleaving = %v", log)
	}
}

func TestStopFromProcHaltsPromptly(t *testing.T) {
	s := New(1)
	ticks := 0
	s.Go("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Millisecond)
			ticks++
		}
	})
	s.Go("stopper", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		s.Stop()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks > 6 {
		t.Fatalf("sim kept running after Stop: %d ticks", ticks)
	}
}

func TestRPCConcurrentHandlers(t *testing.T) {
	// Handlers run as independent procs: a slow request must not block a
	// fast one behind it.
	s := New(1)
	srv := s.NewNode("srv")
	cli := s.NewNode("cli")
	s.Net().Register("svc", srv, func(p *Proc, req Msg) (Msg, error) {
		if req.S[0] == "slow" {
			p.Sleep(50 * time.Millisecond)
		}
		return req, nil
	})
	var fastDone, slowDone time.Duration
	s.Go("slow", func(p *Proc) {
		s.Net().Call(p, cli, "svc", Msg{S: [3]string{"slow"}}) //nolint:errcheck
		slowDone = p.Now()
	})
	s.Go("fast", func(p *Proc) {
		p.Sleep(time.Millisecond)
		s.Net().Call(p, cli, "svc", Msg{S: [3]string{"fast"}}) //nolint:errcheck
		fastDone = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fastDone >= slowDone {
		t.Fatalf("fast rpc (%v) queued behind slow one (%v)", fastDone, slowDone)
	}
}
