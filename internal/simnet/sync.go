package simnet

import "time"

// Mutex is a simulated mutual-exclusion lock with FIFO handoff: Unlock
// passes ownership directly to the longest-waiting live proc, so lock
// acquisition order is deterministic. Because only one proc runs at a time
// there are no data races; the Mutex models *logical* exclusion (e.g. a
// store's single-writer critical section).
//
// A Mutex must not be shared across nodes: node crashes kill the lock
// holder without unlocking, which is only meaningful when every waiter dies
// with it.
type Mutex struct {
	held bool
	q    waitQ
}

// Lock acquires m, blocking p until it is available.
func (m *Mutex) Lock(p *Proc) {
	if !m.held {
		m.held = true
		return
	}
	w := p.newWaiter()
	m.q.push(w)
	p.park()
	p.releaseWaiter(w)
	// Ownership was handed to us by Unlock; m.held is still true.
}

// TryLock acquires m if it is free and reports whether it did.
func (m *Mutex) TryLock(p *Proc) bool {
	if m.held {
		return false
	}
	m.held = true
	return true
}

// Unlock releases m, handing it to the next live waiter if any.
func (m *Mutex) Unlock(p *Proc) {
	if !m.held {
		panic("simnet: unlock of unlocked Mutex")
	}
	if w := m.q.popLive(p.sim); w != nil {
		// Direct handoff: the lock stays held and w's proc resumes as owner.
		wakeWaiter(p.sim, w, p.sim.now)
		return
	}
	m.held = false
}

// Cond is a simulated condition variable associated with a Mutex.
type Cond struct {
	L *Mutex
	q waitQ
}

// NewCond returns a condition variable using lock l.
func NewCond(l *Mutex) *Cond { return &Cond{L: l} }

// Wait atomically releases c.L and suspends p until Signal or Broadcast
// wakes it, then reacquires c.L. As with sync.Cond, callers must re-check
// their predicate in a loop.
func (c *Cond) Wait(p *Proc) {
	w := p.newWaiter()
	c.q.push(w)
	c.L.Unlock(p)
	defer c.relockOnKill(p)
	p.park()
	p.releaseWaiter(w)
	c.L.Lock(p)
}

// relockOnKill restores the caller's lock ownership when a node crash
// kills the proc mid-wait. The kill panic from park unwinds through the
// caller, whose deferred Unlock expects to own c.L — without this it dies
// on "unlock of unlocked Mutex" and masks the crash. Handing the dead proc
// the lock is sound: a Mutex is node-local, so every other user dies with
// the same crash.
func (c *Cond) relockOnKill(p *Proc) {
	if p.killed {
		c.L.held = true
	}
}

// WaitTimeout is Wait with a deadline. It reports whether the wait timed
// out (as opposed to being signalled). The lock is reacquired either way.
func (c *Cond) WaitTimeout(p *Proc, d time.Duration) (timedOut bool) {
	w := p.newWaiter()
	c.q.push(w)
	c.L.Unlock(p)
	defer c.relockOnKill(p)
	p.sim.schedule(p.sim.now+d, p, p.gen)
	p.park()
	timedOut = w.state == wWaiting // nobody claimed the record: timer fired first
	p.releaseWaiter(w)
	c.L.Lock(p)
	return timedOut
}

// Signal wakes one waiting proc, if any.
func (c *Cond) Signal(p *Proc) {
	if w := c.q.popLive(p.sim); w != nil {
		w.state = wCancelled // claim
		wakeWaiter(p.sim, w, p.sim.now)
	}
}

// Broadcast wakes every waiting proc.
func (c *Cond) Broadcast(p *Proc) {
	for {
		w := c.q.popLive(p.sim)
		if w == nil {
			return
		}
		w.state = wCancelled
		wakeWaiter(p.sim, w, p.sim.now)
	}
}

// WaitGroup mirrors sync.WaitGroup on the virtual clock.
type WaitGroup struct {
	n int
	q waitQ
}

// Add adds delta to the counter.
func (g *WaitGroup) Add(delta int) {
	g.n += delta
	if g.n < 0 {
		panic("simnet: negative WaitGroup counter")
	}
}

// Done decrements the counter, waking waiters when it reaches zero.
func (g *WaitGroup) Done(p *Proc) {
	g.n--
	if g.n < 0 {
		panic("simnet: negative WaitGroup counter")
	}
	if g.n == 0 {
		for {
			w := g.q.popLive(p.sim)
			if w == nil {
				return
			}
			w.state = wCancelled
			wakeWaiter(p.sim, w, p.sim.now)
		}
	}
}

// Wait blocks p until the counter reaches zero.
func (g *WaitGroup) Wait(p *Proc) {
	for g.n > 0 {
		w := p.newWaiter()
		g.q.push(w)
		p.park()
		p.releaseWaiter(w)
	}
}

// Semaphore is a counting semaphore with FIFO wake-up.
type Semaphore struct {
	avail int
	q     waitQ
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(n int) *Semaphore { return &Semaphore{avail: n} }

// Acquire takes one permit, blocking until available.
func (s *Semaphore) Acquire(p *Proc) {
	for s.avail == 0 {
		w := p.newWaiter()
		s.q.push(w)
		p.park()
		p.releaseWaiter(w)
	}
	s.avail--
}

// Release returns one permit and wakes a waiter if any.
func (s *Semaphore) Release(p *Proc) {
	s.avail++
	if w := s.q.popLive(p.sim); w != nil {
		w.state = wCancelled
		wakeWaiter(p.sim, w, p.sim.now)
	}
}
