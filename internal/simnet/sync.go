package simnet

import "time"

// Mutex is a simulated mutual-exclusion lock with FIFO handoff: Unlock
// passes ownership directly to the longest-waiting live proc, so lock
// acquisition order is deterministic. Because only one proc runs at a time
// there are no data races; the Mutex models *logical* exclusion (e.g. a
// store's single-writer critical section).
//
// A Mutex must not be shared across nodes: node crashes kill the lock
// holder without unlocking, which is only meaningful when every waiter dies
// with it.
type Mutex struct {
	held bool
	q    []*waiter
}

// Lock acquires m, blocking p until it is available.
func (m *Mutex) Lock(p *Proc) {
	if !m.held {
		m.held = true
		return
	}
	w := &waiter{p: p}
	m.q = append(m.q, w)
	p.waiter = w
	p.park()
	p.waiter = nil
	// Ownership was handed to us by Unlock; m.held is still true.
}

// TryLock acquires m if it is free and reports whether it did.
func (m *Mutex) TryLock(p *Proc) bool {
	if m.held {
		return false
	}
	m.held = true
	return true
}

// Unlock releases m, handing it to the next live waiter if any.
func (m *Mutex) Unlock(p *Proc) {
	if !m.held {
		panic("simnet: unlock of unlocked Mutex")
	}
	for len(m.q) > 0 {
		w := m.q[0]
		m.q = m.q[1:]
		if w.state == wCancelled {
			continue
		}
		// Direct handoff: the lock stays held and w's proc resumes as owner.
		wakeWaiter(p.sim, w, p.sim.now)
		return
	}
	m.held = false
}

// Cond is a simulated condition variable associated with a Mutex.
type Cond struct {
	L *Mutex
	q []*waiter
}

// NewCond returns a condition variable using lock l.
func NewCond(l *Mutex) *Cond { return &Cond{L: l} }

// Wait atomically releases c.L and suspends p until Signal or Broadcast
// wakes it, then reacquires c.L. As with sync.Cond, callers must re-check
// their predicate in a loop.
func (c *Cond) Wait(p *Proc) {
	w := &waiter{p: p}
	c.q = append(c.q, w)
	c.L.Unlock(p)
	p.waiter = w
	p.park()
	p.waiter = nil
	w.state = wCancelled // defensive: record is spent either way
	c.L.Lock(p)
}

// WaitTimeout is Wait with a deadline. It reports whether the wait timed
// out (as opposed to being signalled). The lock is reacquired either way.
func (c *Cond) WaitTimeout(p *Proc, d time.Duration) (timedOut bool) {
	w := &waiter{p: p}
	c.q = append(c.q, w)
	c.L.Unlock(p)
	p.waiter = w
	p.sim.schedule(p.sim.now+d, p, p.gen)
	p.park()
	p.waiter = nil
	timedOut = w.state == wWaiting // nobody claimed the record: timer fired first
	w.state = wCancelled
	c.L.Lock(p)
	return timedOut
}

// Signal wakes one waiting proc, if any.
func (c *Cond) Signal(p *Proc) {
	for len(c.q) > 0 {
		w := c.q[0]
		c.q = c.q[1:]
		if w.state == wCancelled {
			continue
		}
		w.state = wCancelled // claim
		wakeWaiter(p.sim, w, p.sim.now)
		return
	}
}

// Broadcast wakes every waiting proc.
func (c *Cond) Broadcast(p *Proc) {
	q := c.q
	c.q = nil
	for _, w := range q {
		if w.state == wCancelled {
			continue
		}
		w.state = wCancelled
		wakeWaiter(p.sim, w, p.sim.now)
	}
}

// WaitGroup mirrors sync.WaitGroup on the virtual clock.
type WaitGroup struct {
	n int
	q []*waiter
}

// Add adds delta to the counter.
func (g *WaitGroup) Add(delta int) {
	g.n += delta
	if g.n < 0 {
		panic("simnet: negative WaitGroup counter")
	}
}

// Done decrements the counter, waking waiters when it reaches zero.
func (g *WaitGroup) Done(p *Proc) {
	g.n--
	if g.n < 0 {
		panic("simnet: negative WaitGroup counter")
	}
	if g.n == 0 {
		q := g.q
		g.q = nil
		for _, w := range q {
			if w.state == wCancelled {
				continue
			}
			w.state = wCancelled
			wakeWaiter(p.sim, w, p.sim.now)
		}
	}
}

// Wait blocks p until the counter reaches zero.
func (g *WaitGroup) Wait(p *Proc) {
	for g.n > 0 {
		w := &waiter{p: p}
		g.q = append(g.q, w)
		p.waiter = w
		p.park()
		p.waiter = nil
		w.state = wCancelled
	}
}

// Semaphore is a counting semaphore with FIFO wake-up.
type Semaphore struct {
	avail int
	q     []*waiter
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(n int) *Semaphore { return &Semaphore{avail: n} }

// Acquire takes one permit, blocking until available.
func (s *Semaphore) Acquire(p *Proc) {
	for s.avail == 0 {
		w := &waiter{p: p}
		s.q = append(s.q, w)
		p.waiter = w
		p.park()
		p.waiter = nil
		w.state = wCancelled
	}
	s.avail--
}

// Release returns one permit and wakes a waiter if any.
func (s *Semaphore) Release(p *Proc) {
	s.avail++
	for len(s.q) > 0 {
		w := s.q[0]
		s.q = s.q[1:]
		if w.state == wCancelled {
			continue
		}
		w.state = wCancelled
		wakeWaiter(p.sim, w, p.sim.now)
		return
	}
}
