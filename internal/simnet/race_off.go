//go:build !race

package simnet

// raceEnabled reports whether the race detector is compiled in. The strict
// zero-allocation gates skip under -race, whose instrumentation perturbs
// allocation counts; CI runs them in a separate non-race job.
const raceEnabled = false
