package rdma

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"splitft/internal/simnet"
)

type fixture struct {
	sim    *simnet.Sim
	fabric *Fabric
	app    *simnet.Node
	peer   *simnet.Node
	appNIC *NIC
	prNIC  *NIC
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	s := simnet.New(1)
	f := NewFabric(s, DefaultParams())
	app := s.NewNode("app")
	peer := s.NewNode("peer")
	s.Net().SetLatency(app, peer, 1*time.Microsecond)
	return &fixture{sim: s, fabric: f, app: app, peer: peer,
		appNIC: f.AttachNIC(app), prNIC: f.AttachNIC(peer)}
}

func run(t *testing.T, s *simnet.Sim) {
	t.Helper()
	if err := s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	fx := newFixture(t)
	region := make([]byte, 4096)
	var mr *MR
	fx.peer.Go("setup", func(p *simnet.Proc) {
		var err error
		mr, err = fx.prNIC.RegisterMR(p, region)
		if err != nil {
			t.Errorf("register: %v", err)
		}
	})
	fx.app.Go("writer", func(p *simnet.Proc) {
		p.Sleep(10 * time.Millisecond) // wait for registration
		cq := NewCQ(fx.sim)
		qp, err := fx.appNIC.Connect(p, "peer", cq)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		payload := []byte("hello near-compute log")
		qp.PostWrite(p, mr.RKey(), 100, payload, 7)
		c, _ := cq.Poll(p)
		if c.Err != nil || c.Ctx != 7 {
			t.Errorf("write completion: %+v", c)
		}
		// The write landed in peer memory with no peer CPU involvement.
		if !bytes.Equal(region[100:100+len(payload)], payload) {
			t.Errorf("remote memory = %q", region[100:100+len(payload)])
		}
		// Read it back through the fabric.
		into := make([]byte, len(payload))
		qp.PostRead(p, mr.RKey(), 100, into, 8)
		c, _ = cq.Poll(p)
		if c.Err != nil || !bytes.Equal(into, payload) {
			t.Errorf("read completion err=%v data=%q", c.Err, into)
		}
	})
	run(t, fx.sim)
}

func TestSQOrderingAndCompletionOrder(t *testing.T) {
	fx := newFixture(t)
	region := make([]byte, 1<<20)
	var mr *MR
	fx.peer.Go("setup", func(p *simnet.Proc) { mr, _ = fx.prNIC.RegisterMR(p, region) })
	fx.app.Go("writer", func(p *simnet.Proc) {
		p.Sleep(10 * time.Millisecond)
		cq := NewCQ(fx.sim)
		qp, err := fx.appNIC.Connect(p, "peer", cq)
		if err != nil {
			t.Fatalf("connect: %v", err)
		}
		// Post a large then a tiny WR: despite the size difference the tiny
		// one must complete second (send-queue ordering).
		qp.PostWrite(p, mr.RKey(), 0, make([]byte, 512*1024), 1)
		qp.PostWrite(p, mr.RKey(), 0, []byte{1}, 2)
		c1, _ := cq.Poll(p)
		c2, _ := cq.Poll(p)
		if c1.Ctx != 1 || c2.Ctx != 2 {
			t.Errorf("completion order: %v then %v, want 1 then 2", c1.Ctx, c2.Ctx)
		}
	})
	run(t, fx.sim)
}

func TestWriteLatencyModel(t *testing.T) {
	fx := newFixture(t)
	region := make([]byte, 4096)
	var mr *MR
	fx.peer.Go("setup", func(p *simnet.Proc) { mr, _ = fx.prNIC.RegisterMR(p, region) })
	fx.app.Go("writer", func(p *simnet.Proc) {
		p.Sleep(10 * time.Millisecond)
		cq := NewCQ(fx.sim)
		qp, _ := fx.appNIC.Connect(p, "peer", cq)
		start := p.Now()
		qp.PostWrite(p, mr.RKey(), 0, make([]byte, 128), 0)
		cq.Poll(p)
		lat := p.Now() - start
		// 1.5us base + 128B/3GB/s ~= 1.54us.
		if lat < time.Microsecond || lat > 3*time.Microsecond {
			t.Errorf("128B write latency = %v, want ~1.5us", lat)
		}
	})
	run(t, fx.sim)
}

func TestRemoteCrashErrorsAndFlushesQP(t *testing.T) {
	fx := newFixture(t)
	region := make([]byte, 4096)
	var mr *MR
	fx.peer.Go("setup", func(p *simnet.Proc) { mr, _ = fx.prNIC.RegisterMR(p, region) })
	fx.app.Go("writer", func(p *simnet.Proc) {
		p.Sleep(10 * time.Millisecond)
		cq := NewCQ(fx.sim)
		qp, _ := fx.appNIC.Connect(p, "peer", cq)
		qp.PostWrite(p, mr.RKey(), 0, []byte{1}, 1)
		if c, _ := cq.Poll(p); c.Err != nil {
			t.Fatalf("pre-crash write failed: %v", c.Err)
		}
		fx.peer.Crash()
		qp.PostWrite(p, mr.RKey(), 0, []byte{2}, 2)
		qp.PostWrite(p, mr.RKey(), 0, []byte{3}, 3)
		c2, _ := cq.Poll(p)
		c3, _ := cq.Poll(p)
		if !errors.Is(c2.Err, ErrRemoteDown) {
			t.Errorf("first post-crash completion = %v, want remote-down", c2.Err)
		}
		if !errors.Is(c3.Err, ErrQPError) {
			t.Errorf("second post-crash completion = %v, want flushed", c3.Err)
		}
		if !qp.Errored() {
			t.Error("qp not in error state")
		}
	})
	run(t, fx.sim)
}

func TestCrashedPeerLosesRegistrations(t *testing.T) {
	fx := newFixture(t)
	region := make([]byte, 64)
	var mr *MR
	fx.peer.Go("setup", func(p *simnet.Proc) { mr, _ = fx.prNIC.RegisterMR(p, region) })
	fx.app.Go("test", func(p *simnet.Proc) {
		p.Sleep(10 * time.Millisecond)
		fx.peer.Crash()
		p.Sleep(time.Millisecond)
		fx.peer.Restart()
		newNIC := fx.fabric.AttachNIC(fx.peer)
		_ = newNIC
		cq := NewCQ(fx.sim)
		qp, err := fx.appNIC.Connect(p, "peer", cq)
		if err != nil {
			t.Fatalf("reconnect: %v", err)
		}
		// The old rkey must be gone after the peer lost its memory.
		qp.PostWrite(p, mr.RKey(), 0, []byte{9}, 0)
		if c, _ := cq.Poll(p); !errors.Is(c.Err, ErrRemoteAccess) {
			t.Errorf("write with stale rkey: %v, want access error", c.Err)
		}
	})
	run(t, fx.sim)
}

func TestInvalidateRevokesAccess(t *testing.T) {
	fx := newFixture(t)
	region := make([]byte, 64)
	var mr *MR
	fx.peer.Go("setup", func(p *simnet.Proc) { mr, _ = fx.prNIC.RegisterMR(p, region) })
	fx.app.Go("test", func(p *simnet.Proc) {
		p.Sleep(10 * time.Millisecond)
		cq := NewCQ(fx.sim)
		qp, _ := fx.appNIC.Connect(p, "peer", cq)
		mr.Invalidate() // peer revokes its memory (local, instantaneous)
		qp.PostWrite(p, mr.RKey(), 0, []byte{1}, 0)
		if c, _ := cq.Poll(p); !errors.Is(c.Err, ErrRemoteAccess) {
			t.Errorf("write to revoked region: %v", c.Err)
		}
	})
	run(t, fx.sim)
}

func TestBoundsChecking(t *testing.T) {
	fx := newFixture(t)
	region := make([]byte, 64)
	var mr *MR
	fx.peer.Go("setup", func(p *simnet.Proc) { mr, _ = fx.prNIC.RegisterMR(p, region) })
	fx.app.Go("test", func(p *simnet.Proc) {
		p.Sleep(10 * time.Millisecond)
		cq := NewCQ(fx.sim)
		qp, _ := fx.appNIC.Connect(p, "peer", cq)
		qp.PostWrite(p, mr.RKey(), 60, []byte("toolong"), 0)
		if c, _ := cq.Poll(p); !errors.Is(c.Err, ErrRemoteAccess) {
			t.Errorf("out-of-bounds write: %v", c.Err)
		}
	})
	run(t, fx.sim)
}

func TestPartitionCausesTransportError(t *testing.T) {
	fx := newFixture(t)
	region := make([]byte, 64)
	var mr *MR
	fx.peer.Go("setup", func(p *simnet.Proc) { mr, _ = fx.prNIC.RegisterMR(p, region) })
	fx.app.Go("test", func(p *simnet.Proc) {
		p.Sleep(10 * time.Millisecond)
		cq := NewCQ(fx.sim)
		qp, _ := fx.appNIC.Connect(p, "peer", cq)
		fx.sim.Net().Partition(fx.app, fx.peer)
		start := p.Now()
		qp.PostWrite(p, mr.RKey(), 0, []byte{1}, 0)
		c, _ := cq.Poll(p)
		if !errors.Is(c.Err, ErrRemoteDown) {
			t.Errorf("partitioned write: %v", c.Err)
		}
		if p.Now()-start < DefaultParams().RetryTimeout {
			t.Errorf("error reported before retry timeout: %v", p.Now()-start)
		}
	})
	run(t, fx.sim)
}

func TestConnectToDeadNodeFails(t *testing.T) {
	fx := newFixture(t)
	fx.app.Go("test", func(p *simnet.Proc) {
		fx.peer.Crash()
		cq := NewCQ(fx.sim)
		if _, err := fx.appNIC.Connect(p, "peer", cq); !errors.Is(err, ErrRemoteDown) {
			t.Errorf("connect to dead peer: %v", err)
		}
		if _, err := fx.appNIC.Connect(p, "ghost", cq); !errors.Is(err, ErrNoNIC) {
			t.Errorf("connect to unknown node: %v", err)
		}
	})
	run(t, fx.sim)
}

func TestRegistrationCostScalesWithSize(t *testing.T) {
	fx := newFixture(t)
	var small, large time.Duration
	fx.peer.Go("reg", func(p *simnet.Proc) {
		start := p.Now()
		if _, err := fx.prNIC.RegisterMR(p, make([]byte, 4096)); err != nil {
			t.Errorf("register small: %v", err)
		}
		small = p.Now() - start
		start = p.Now()
		if _, err := fx.prNIC.RegisterMR(p, make([]byte, 60<<20)); err != nil {
			t.Errorf("register large: %v", err)
		}
		large = p.Now() - start
	})
	run(t, fx.sim)
	if large < 10*small {
		t.Errorf("60MB registration (%v) should dwarf 4KB (%v)", large, small)
	}
	// Table 3 target: ~50ms for a 60MB region.
	if large < 30*time.Millisecond || large > 90*time.Millisecond {
		t.Errorf("60MB registration = %v, want ~52ms", large)
	}
}

// Property: any sequence of writes to random offsets is reflected exactly in
// peer memory, in order, when all complete successfully.
func TestQuickWritesApplyInOrder(t *testing.T) {
	type wspec struct {
		Off  uint16
		Data []byte
	}
	f := func(specs []wspec) bool {
		if len(specs) == 0 || len(specs) > 32 {
			return true
		}
		s := simnet.New(3)
		fab := NewFabric(s, DefaultParams())
		app := s.NewNode("app")
		peer := s.NewNode("peer")
		appNIC := fab.AttachNIC(app)
		prNIC := fab.AttachNIC(peer)
		region := make([]byte, 1<<17)
		shadow := make([]byte, 1<<17)
		var mr *MR
		okAll := true
		peer.Go("setup", func(p *simnet.Proc) { mr, _ = prNIC.RegisterMR(p, region) })
		app.Go("writer", func(p *simnet.Proc) {
			p.Sleep(10 * time.Millisecond)
			cq := NewCQ(s)
			qp, err := appNIC.Connect(p, "peer", cq)
			if err != nil {
				okAll = false
				return
			}
			for _, sp := range specs {
				if len(sp.Data) == 0 {
					continue
				}
				off := int(sp.Off) % (len(region) - len(sp.Data))
				qp.PostWrite(p, mr.RKey(), off, sp.Data, 0)
				copy(shadow[off:], sp.Data)
			}
			for _, sp := range specs {
				if len(sp.Data) == 0 {
					continue
				}
				if c, _ := cq.Poll(p); c.Err != nil {
					okAll = false
				}
			}
			if !bytes.Equal(region, shadow) {
				okAll = false
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
