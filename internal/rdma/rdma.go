// Package rdma simulates the subset of RDMA verbs that NCL depends on:
// memory-region registration with remote keys, reliable-connected queue
// pairs with send-queue ordering, completion queues, and 1-sided READ/WRITE
// operations that access a remote node's memory without involving its CPU.
//
// The paper's implementation uses ibverbs over 25 Gb RoCE (Mellanox CX-4).
// This package reproduces the semantics NCL's correctness argument leans on:
//
//   - SQ ordering: WRs on a QP complete in post order (§4.4 uses this to
//     order the data write before the sequence-number write).
//   - 1-sided access: writes and reads land in the remote MR directly; the
//     remote CPU is only involved at registration time.
//   - Failure surface: a crashed or partitioned remote turns WRs into
//     completion errors after a retry timeout and moves the QP to the error
//     state, flushing subsequently posted WRs — as a real RC QP does.
//   - Revocation: invalidating an MR (peer memory reclaim, §4.5.2) makes
//     subsequent remote access fail with a protection error.
//
// Latency follows a base-plus-bandwidth cost model calibrated to the
// paper's measurements (see DefaultParams).
package rdma

import (
	"errors"
	"fmt"
	"math/bits"
	"time"

	"splitft/internal/model"
	"splitft/internal/simnet"
	"splitft/internal/trace"
)

// Params is the fabric cost model. The constants live in internal/model
// (the unified hardware cost-model layer); this alias keeps the fabric API
// self-contained.
type Params = model.RDMAParams

// DefaultParams returns the baseline profile's fabric cost model,
// calibrated so a 128 B application write (data WR + 16 B sequence WR,
// SQ-ordered) completes in ~3 us of fabric time, matching the paper's
// 4.6 us end-to-end NCL record latency once library overhead is added; a
// 60 MB region registers in ~54 ms (Table 3's "connect to new peer" step).
func DefaultParams() Params {
	return model.Baseline().RDMA
}

// Errors surfaced in completions or from Connect.
var (
	ErrRemoteDown   = errors.New("rdma: remote unreachable (transport retry exceeded)")
	ErrRemoteAccess = errors.New("rdma: remote access error (invalid rkey or bounds)")
	ErrQPError      = errors.New("rdma: qp in error state, wr flushed")
	ErrNoNIC        = errors.New("rdma: node has no NIC attached")
	ErrNICDown      = errors.New("rdma: nic is down")
)

// Fabric is one RDMA network shared by all NICs; it uses the simnet latency
// matrix and partition state so data-plane and control-plane failures agree.
type Fabric struct {
	sim     *simnet.Sim
	params  Params
	nics    map[string]*NIC
	nextKey uint64
	bufs    bufPool
}

// bufPool recycles write-payload staging buffers in power-of-two size
// classes. PostWrite copies the caller's payload into a pooled buffer (the
// caller may reuse its own immediately, as after a real post with a
// registered send buffer) and the QP engine returns the buffer once the
// write has been applied or failed. Simnet procs are cooperatively
// scheduled, so the pool needs no lock.
type bufPool struct {
	classes [33][][]byte
}

func (bp *bufPool) get(n int) []byte {
	if n == 0 {
		return nil
	}
	c := bits.Len(uint(n - 1))
	if l := bp.classes[c]; len(l) > 0 {
		b := l[len(l)-1]
		l[len(l)-1] = nil
		bp.classes[c] = l[:len(l)-1]
		return b[:n]
	}
	return make([]byte, n, 1<<c)
}

// put returns a buffer obtained from get (its cap is exactly a class size).
func (bp *bufPool) put(b []byte) {
	if cap(b) == 0 {
		return
	}
	c := bits.Len(uint(cap(b) - 1))
	bp.classes[c] = append(bp.classes[c], b[:0])
}

// NewFabric creates a fabric on s with the given cost model.
func NewFabric(s *simnet.Sim, p Params) *Fabric {
	return &Fabric{sim: s, params: p, nics: make(map[string]*NIC)}
}

// Params returns the fabric cost model.
func (f *Fabric) Params() Params { return f.params }

// NIC is a node's RDMA adapter. Crash of the node takes the NIC down,
// invalidates every registered MR, and errors every QP targeting it.
type NIC struct {
	fabric *Fabric
	node   *simnet.Node
	up     bool
	mrs    map[uint64]*MR
}

// AttachNIC gives node an RDMA adapter (or re-attaches one after restart).
func (f *Fabric) AttachNIC(node *simnet.Node) *NIC {
	n := &NIC{fabric: f, node: node, up: true, mrs: make(map[uint64]*MR)}
	f.nics[node.Name()] = n
	node.OnCrash(func() {
		n.up = false
		for _, mr := range n.mrs {
			mr.valid = false
		}
		n.mrs = make(map[uint64]*MR)
	})
	return n
}

// NIC returns the adapter attached to the named node, or nil.
func (f *Fabric) NIC(nodeName string) *NIC { return f.nics[nodeName] }

// Up reports whether the NIC (and its node) is operational.
func (n *NIC) Up() bool { return n.up }

// MR is a registered memory region. The buffer is the region's backing
// memory; 1-sided operations from remote QPs read and write it directly.
type MR struct {
	nic   *NIC
	buf   []byte
	rkey  uint64
	valid bool
}

// RegisterMR registers buf with the NIC, paying the pinning cost, and
// returns the region. The caller (a log peer's setup path, typically) runs
// on the NIC's node.
func (n *NIC) RegisterMR(p *simnet.Proc, buf []byte) (*MR, error) {
	if !n.up {
		return nil, ErrNICDown
	}
	sp := p.StartSpan("rdma", "register", trace.Int("bytes", int64(len(buf))))
	defer p.EndSpan(sp)
	pm := n.fabric.params
	p.Sleep(pm.RegFixed + time.Duration(float64(len(buf))/pm.RegBandwidth*float64(time.Second)))
	if !n.up {
		return nil, ErrNICDown
	}
	n.fabric.nextKey++
	mr := &MR{nic: n, buf: buf, rkey: n.fabric.nextKey, valid: true}
	n.mrs[mr.rkey] = mr
	return mr, nil
}

// RKey returns the remote key granting access to the region.
func (mr *MR) RKey() uint64 { return mr.rkey }

// Bytes exposes the region's backing memory (local access by its owner).
func (mr *MR) Bytes() []byte { return mr.buf }

// Valid reports whether the region is still registered.
func (mr *MR) Valid() bool { return mr.valid }

// Invalidate revokes the region: later remote accesses fail with a
// protection error. Peers use this for memory revocation (§4.5.2) and when
// releasing a log's region. Revocation is local and instantaneous.
func (mr *MR) Invalidate() {
	mr.valid = false
	delete(mr.nic.mrs, mr.rkey)
}

// RefreshMR re-arms a previously invalidated region under a fresh rkey
// without re-pinning its memory — the recycling path of §4.3 ("the peers
// ... invalidate the keys and recycle the memory region for future use").
// It costs a fraction of a full registration (rkey programming only).
func (n *NIC) RefreshMR(p *simnet.Proc, mr *MR) error {
	if !n.up {
		return ErrNICDown
	}
	if mr.nic != n {
		return ErrRemoteAccess
	}
	sp := p.StartSpan("rdma", "refresh", trace.Int("bytes", int64(len(mr.buf))))
	defer p.EndSpan(sp)
	p.Sleep(n.fabric.params.RegFixed / 10)
	if !n.up {
		return ErrNICDown
	}
	n.fabric.nextKey++
	mr.rkey = n.fabric.nextKey
	mr.valid = true
	n.mrs[mr.rkey] = mr
	return nil
}

// Completion reports the outcome of a posted work request. Ctx is the
// opaque value given at post time; callers pack whatever routing state they
// need into its 64 bits (ncl packs flags, a connection id and a sequence
// number) so completions flow through the CQ without boxing.
type Completion struct {
	QP   *QP
	WRID uint64
	Ctx  uint64
	Err  error // nil on success
}

// CQ is a completion queue; multiple QPs may share one so a client can poll
// a single stream (NCL shares one CQ across all peers of a log).
type CQ struct {
	ch *simnet.Chan[Completion]
}

// NewCQ creates a completion queue.
func NewCQ(s *simnet.Sim) *CQ { return &CQ{ch: simnet.NewChan[Completion](s)} }

// Poll blocks until a completion arrives.
func (cq *CQ) Poll(p *simnet.Proc) (Completion, bool) { return cq.ch.Recv(p) }

// PollTimeout blocks for at most d.
func (cq *CQ) PollTimeout(p *simnet.Proc, d time.Duration) (c Completion, ok, timedOut bool) {
	return cq.ch.RecvTimeout(p, d)
}

// TryPoll returns a completion if one is ready.
func (cq *CQ) TryPoll(p *simnet.Proc) (Completion, bool) { return cq.ch.TryRecv(p) }

// Close destroys the CQ; blocked pollers return ok=false and completions
// from still-draining QPs are dropped.
func (cq *CQ) Close(p *simnet.Proc) { cq.ch.Close(p) }

type wrKind int

const (
	wrWrite wrKind = iota
	wrRead
)

type workRequest struct {
	kind   wrKind
	id     uint64
	rkey   uint64
	offset int
	data   []byte // write payload (pooled; returned by the engine)
	into   []byte // read destination
	ctx    uint64
	span   *trace.Span // post→completion async span, finished by the engine
}

// QP is a reliable-connected queue pair. One engine proc per QP drains the
// send queue in order, giving verbs' SQ-ordering guarantee. Once any WR
// fails, the QP enters the error state and flushes everything after it.
type QP struct {
	fabric     *Fabric
	local      *NIC
	remote     *NIC
	remoteName string
	remoteInc  int
	sq         *simnet.Chan[workRequest]
	cq         *CQ
	nextWR     uint64
	errState   bool
	closed     bool
}

// Connect establishes a QP from this NIC to the named remote node,
// delivering completions to cq. It costs three network round trips plus the
// handshake base, mirroring connection setup through a rendezvous.
func (n *NIC) Connect(p *simnet.Proc, remote string, cq *CQ) (*QP, error) {
	if !n.up {
		return nil, ErrNICDown
	}
	rn := n.fabric.nics[remote]
	if rn == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoNIC, remote)
	}
	sp := p.StartSpan("rdma", "connect", trace.Str("remote", remote))
	defer p.EndSpan(sp)
	net := n.fabric.sim.Net()
	p.Sleep(n.fabric.params.ConnectBase + 6*net.Latency(n.node, rn.node))
	if !n.up {
		return nil, ErrNICDown
	}
	if !rn.up || !net.Reachable(n.node, rn.node) {
		return nil, ErrRemoteDown
	}
	qp := &QP{
		fabric:     n.fabric,
		local:      n,
		remote:     rn,
		remoteName: remote,
		remoteInc:  rn.node.Incarnation(),
		sq:         simnet.NewChan[workRequest](n.fabric.sim),
		cq:         cq,
	}
	n.node.Go("rdma-qp-engine:"+remote, qp.engine)
	return qp, nil
}

// RemoteName returns the remote node's name.
func (qp *QP) RemoteName() string { return qp.remoteName }

// Errored reports whether the QP is in the error state.
func (qp *QP) Errored() bool { return qp.errState }

// Close tears the QP down; in-flight WRs are abandoned.
func (qp *QP) Close(p *simnet.Proc) {
	if qp.closed {
		return
	}
	qp.closed = true
	qp.sq.Close(p)
}

// PostWrite posts a 1-sided RDMA write of data to [offset, offset+len) of
// the remote region named by rkey. It returns immediately with the WR id;
// the outcome arrives on the QP's CQ. ctx is returned in the completion.
// The payload is copied into a pooled staging buffer at post time, so the
// caller may reuse data immediately.
func (qp *QP) PostWrite(p *simnet.Proc, rkey uint64, offset int, data []byte, ctx uint64) uint64 {
	d := qp.fabric.bufs.get(len(data))
	copy(d, data)
	return qp.post(p, workRequest{kind: wrWrite, rkey: rkey, offset: offset, data: d, ctx: ctx})
}

// PostRead posts a 1-sided RDMA read of len(into) bytes from the remote
// region at offset into `into`. The buffer is filled by completion time.
func (qp *QP) PostRead(p *simnet.Proc, rkey uint64, offset int, into []byte, ctx uint64) uint64 {
	return qp.post(p, workRequest{kind: wrRead, rkey: rkey, offset: offset, into: into, ctx: ctx})
}

func (qp *QP) post(p *simnet.Proc, wr workRequest) uint64 {
	qp.nextWR++
	wr.id = qp.nextWR
	if qp.closed {
		qp.fabric.bufs.put(wr.data) // nothing will drain the SQ
		return wr.id
	}
	if p.Tracing() {
		op := "write"
		size := len(wr.data)
		if wr.kind == wrRead {
			op = "read"
			size = len(wr.into)
		}
		// A WR's lifetime crosses procs: posted here, completed by the QP
		// engine. Detached async span, finished when the completion is
		// delivered.
		wr.span = p.StartDetachedSpan("rdma", op,
			trace.Str("remote", qp.remoteName), trace.Int("bytes", int64(size)))
	}
	qp.sq.Send(p, wr)
	return wr.id
}

// engine drains the send queue in order, applying the cost model and the
// failure semantics. It runs on the local node and dies with it.
func (qp *QP) engine(p *simnet.Proc) {
	pm := qp.fabric.params
	net := qp.fabric.sim.Net()
	for {
		wr, ok := qp.sq.Recv(p)
		if !ok {
			return
		}
		if qp.errState {
			wr.span.SetAttr(trace.Str("err", "flushed"))
			p.FinishSpan(wr.span)
			qp.fabric.bufs.put(wr.data)
			qp.cq.ch.Send(p, Completion{QP: qp, WRID: wr.id, Ctx: wr.ctx, Err: ErrQPError})
			continue
		}
		size := len(wr.data)
		if wr.kind == wrRead {
			size = len(wr.into)
		}
		xfer := pm.WRBase/2 + time.Duration(float64(size)/pm.Bandwidth*float64(time.Second))
		// A gray (slow-but-alive) link toward the remote delays every WR; the
		// in-order engine turns that into a growing completion backlog, which
		// is exactly how a slow NCL peer starves an ack quorum.
		xfer += net.GrayLatency(qp.local.node, qp.remote.node)
		p.Sleep(xfer) // request propagation + serialization
		var err error
		switch {
		case !net.Reachable(qp.local.node, qp.remote.node),
			!qp.remote.up,
			qp.remote.node.Incarnation() != qp.remoteInc:
			err = ErrRemoteDown
		default:
			mr := qp.remote.mrs[wr.rkey]
			if mr == nil || !mr.valid {
				err = ErrRemoteAccess
			} else if wr.offset < 0 || wr.offset+size > len(mr.buf) {
				err = ErrRemoteAccess
			} else if wr.kind == wrWrite {
				copy(mr.buf[wr.offset:], wr.data) // the 1-sided write: no peer CPU
			} else {
				copy(wr.into, mr.buf[wr.offset:wr.offset+size])
			}
		}
		if errors.Is(err, ErrRemoteDown) {
			p.Sleep(pm.RetryTimeout) // transport-level retries before giving up
		} else {
			p.Sleep(pm.WRBase / 2) // ack path
		}
		if err != nil {
			qp.errState = true
			wr.span.SetAttr(trace.Str("err", err.Error()))
		}
		p.FinishSpan(wr.span)
		qp.fabric.bufs.put(wr.data) // write applied (or failed); recycle the staging buffer
		qp.cq.ch.Send(p, Completion{QP: qp, WRID: wr.id, Ctx: wr.ctx, Err: err})
	}
}
