package ncl

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"splitft/internal/peer"
	"splitft/internal/simnet"
	"splitft/internal/trace"
	"splitft/internal/wire"
)

// Additional failure-mode coverage: partitions, capacity limits, multiple
// concurrent logs, and cross-restart epochs.

func TestRecordBeyondCapacity(t *testing.T) {
	c := newCluster(20, 3, smallPeerCfg())
	c.run(t, func(p *simnet.Proc) {
		l := c.newLib(p, t, "app1", 0)
		lg, err := l.Open(p, "wal", 256)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if err := lg.Record(p, 0, make([]byte, 256)); err != nil {
			t.Fatalf("exact-fit record: %v", err)
		}
		if err := lg.Record(p, 200, make([]byte, 100)); !errors.Is(err, ErrRegionFull) {
			t.Fatalf("overflow accepted: %v", err)
		}
		if err := lg.Record(p, -1, []byte("x")); !errors.Is(err, ErrRegionFull) {
			t.Fatalf("negative offset accepted: %v", err)
		}
	})
}

func TestPartitionFromOnePeerThenHeal(t *testing.T) {
	cfg := smallPeerCfg()
	cfg.GCGrace = 3 * time.Second // keep the GC check within the 6 s sleep below
	c := newCluster(21, 4, cfg)
	c.run(t, func(p *simnet.Proc) {
		l := c.newLib(p, t, "app1", 0)
		lg, err := l.Open(p, "wal", 1<<20)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		victim := lg.LivePeers()[1]
		c.sim.Net().Partition(c.appNode, c.pNodes[victim])
		// Writes proceed on the majority; the partitioned peer errors out
		// and is replaced in the background.
		for i := 0; i < 10; i++ {
			if _, err := lg.Append(p, []byte("during-partition")); err != nil {
				t.Fatalf("append during partition: %v", err)
			}
		}
		p.Sleep(500 * time.Millisecond)
		for _, pn := range lg.LivePeers() {
			if pn == victim {
				t.Fatalf("partitioned peer still a member")
			}
		}
		// Heal: the old peer's stale region is eventually GCed via the
		// epoch rules; the log keeps working.
		c.sim.Net().Heal(c.appNode, c.pNodes[victim])
		if _, err := lg.Append(p, []byte("after-heal")); err != nil {
			t.Fatalf("append after heal: %v", err)
		}
		p.Sleep(6 * time.Second) // GC interval + grace
		if c.peers[victim].Regions() != 0 {
			t.Errorf("stale region on healed peer not garbage collected")
		}
	})
}

func TestMultipleLogsIndependentPeersAndRecovery(t *testing.T) {
	c := newCluster(22, 6, smallPeerCfg())
	c.run(t, func(p *simnet.Proc) {
		var want [3][]byte
		c.appNode.Go("app-v1", func(ap *simnet.Proc) {
			l, err := NewLib(ap, c.svc, c.fabric, c.appNode, "app1", 0, DefaultConfig())
			if err != nil {
				return
			}
			logs := make([]*Log, 3)
			for i := range logs {
				lg, err := l.Open(ap, fmt.Sprintf("wal-%d", i), 1<<20)
				if err != nil {
					return
				}
				logs[i] = lg
			}
			for round := 0; round < 20; round++ {
				for i, lg := range logs {
					rec := []byte(fmt.Sprintf("log%d-rec%02d;", i, round))
					if _, err := lg.Append(ap, rec); err != nil {
						return
					}
					want[i] = append(want[i], rec...)
				}
			}
			ap.Sleep(time.Hour)
		})
		p.Sleep(400 * time.Millisecond)
		c.appNode.Crash()
		p.Sleep(10 * time.Millisecond)
		c.appNode.Restart()
		l2, _ := NewLib(p, c.svc, c.fabric, c.appNode, "app1", 1, DefaultConfig())
		files, err := l2.ListFiles(p)
		if err != nil || len(files) != 3 {
			t.Fatalf("files = %v, %v", files, err)
		}
		for i := 0; i < 3; i++ {
			lg, err := l2.Recover(p, fmt.Sprintf("wal-%d", i))
			if err != nil {
				t.Fatalf("recover wal-%d: %v", i, err)
			}
			if !bytes.Equal(lg.Bytes(), want[i]) {
				t.Fatalf("wal-%d content mismatch", i)
			}
		}
	})
}

func TestRecoverThenCrashThenRecoverAgain(t *testing.T) {
	// The §4.6 condition across SUCCESSIVE recoveries: data recovered (and
	// thus externalizable) once must be recovered by every later recovery.
	c := newCluster(23, 5, smallPeerCfg())
	c.run(t, func(p *simnet.Proc) {
		c.appNode.Go("app-v1", func(ap *simnet.Proc) {
			l, _ := NewLib(ap, c.svc, c.fabric, c.appNode, "app1", 0, DefaultConfig())
			lg, err := l.Open(ap, "wal", 1<<20)
			if err != nil {
				return
			}
			for i := 0; i < 20; i++ {
				lg.Append(ap, bytes.Repeat([]byte{byte(i + 1)}, 32))
			}
			ap.Sleep(time.Hour)
		})
		p.Sleep(300 * time.Millisecond)
		c.appNode.Crash()
		p.Sleep(10 * time.Millisecond)
		c.appNode.Restart()

		var afterFirst []byte
		c.appNode.Go("app-v2", func(ap *simnet.Proc) {
			l2, _ := NewLib(ap, c.svc, c.fabric, c.appNode, "app1", 1, DefaultConfig())
			lg2, err := l2.Recover(ap, "wal")
			if err != nil {
				return
			}
			afterFirst = append([]byte(nil), lg2.Bytes()...)
			// Write a bit more, then get crashed again.
			lg2.Append(ap, []byte("second-life"))
			afterFirst = append(afterFirst, []byte("second-life")...)
			ap.Sleep(time.Hour)
		})
		p.Sleep(300 * time.Millisecond)
		c.appNode.Crash()
		p.Sleep(10 * time.Millisecond)
		c.appNode.Restart()

		l3, _ := NewLib(p, c.svc, c.fabric, c.appNode, "app1", 2, DefaultConfig())
		lg3, err := l3.Recover(p, "wal")
		if err != nil {
			t.Fatalf("second recovery: %v", err)
		}
		if !bytes.Equal(lg3.Bytes(), afterFirst) {
			t.Fatalf("second recovery lost data: %d vs %d bytes", lg3.Length(), len(afterFirst))
		}
	})
}

func TestPeerCrashDuringRecoveryHeaderRead(t *testing.T) {
	// A peer that answers the lookup but dies before serving reads must not
	// wedge recovery while a quorum remains.
	c := newCluster(24, 5, smallPeerCfg())
	c.run(t, func(p *simnet.Proc) {
		var member string
		c.appNode.Go("app-v1", func(ap *simnet.Proc) {
			l, _ := NewLib(ap, c.svc, c.fabric, c.appNode, "app1", 0, DefaultConfig())
			lg, err := l.Open(ap, "wal", 1<<20)
			if err != nil {
				return
			}
			for i := 0; i < 10; i++ {
				lg.Append(ap, []byte("payload"))
			}
			member = lg.LivePeers()[0]
			ap.Sleep(time.Hour)
		})
		p.Sleep(300 * time.Millisecond)
		c.appNode.Crash()
		c.pNodes[member].Crash() // one of three members dies with the app
		p.Sleep(10 * time.Millisecond)
		c.appNode.Restart()
		l2, _ := NewLib(p, c.svc, c.fabric, c.appNode, "app1", 1, DefaultConfig())
		col := trace.New()
		c.sim.SetTracer(col)
		mark := col.Len()
		lg2, err := l2.Recover(p, "wal")
		c.sim.SetTracer(nil)
		if err != nil {
			t.Fatalf("recover with one dead member: %v", err)
		}
		if lg2.Length() != 70 {
			t.Fatalf("recovered %d bytes, want 70", lg2.Length())
		}
		// The dead member was replaced during recovery to restore f=1.
		if len(lg2.LivePeers()) != 3 {
			t.Fatalf("live peers after recovery = %v", lg2.LivePeers())
		}
		if trace.Sum(col.Since(mark), "ncl", "recover.syncpeer") <= 0 {
			t.Errorf("sync-peer phase span missing from recovery trace")
		}
		// And the restored membership keeps accepting writes.
		if _, err := lg2.Append(p, []byte("more")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	})
}

func TestEpochMonotonicAcrossReplacements(t *testing.T) {
	c := newCluster(25, 6, smallPeerCfg())
	c.run(t, func(p *simnet.Proc) {
		l := c.newLib(p, t, "app1", 0)
		lg, err := l.Open(p, "wal", 1<<20)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		epochs := []int64{lg.Epoch()}
		for round := 0; round < 2; round++ {
			victim := lg.LivePeers()[0]
			c.pNodes[victim].Crash()
			for i := 0; i < 5; i++ {
				if _, err := lg.Append(p, []byte("x")); err != nil {
					t.Fatalf("append: %v", err)
				}
			}
			p.Sleep(time.Second)
			epochs = append(epochs, lg.Epoch())
		}
		for i := 1; i < len(epochs); i++ {
			if epochs[i] <= epochs[i-1] {
				t.Fatalf("epochs not strictly increasing: %v", epochs)
			}
		}
		// The ap-map reflects the final membership and epoch.
		entry, _, found, err := l.ctrl.GetAppFile(p, "app1", "wal")
		if err != nil || !found {
			t.Fatalf("ap-map: %v %v", found, err)
		}
		if entry.Epoch != lg.Epoch() {
			t.Errorf("ap-map epoch %d != log epoch %d", entry.Epoch, lg.Epoch())
		}
		live := map[string]bool{}
		for _, pn := range lg.LivePeers() {
			live[pn] = true
		}
		for _, pn := range entry.Peers {
			if !live[pn] {
				t.Errorf("ap-map peer %s not live in the log", pn)
			}
		}
	})
}

func TestAppendOnlyTailCatchup(t *testing.T) {
	// A lagging peer of an append-only log is caught up by shipping only
	// the missing tail into its existing region (§4.5.1's optimization):
	// after recovery its region matches without a staging switch.
	c := newCluster(26, 3, smallPeerCfg())
	c.run(t, func(p *simnet.Proc) {
		var lagging string
		var laggingKeyBefore uint64
		c.appNode.Go("app-v1", func(ap *simnet.Proc) {
			l, _ := NewLib(ap, c.svc, c.fabric, c.appNode, "app1", 0, DefaultConfig())
			lg, err := l.OpenWithOptions(ap, "wal", 1<<20, LogOptions{AppendOnly: true})
			if err != nil {
				return
			}
			lg.Append(ap, []byte("AAAA"))
			ap.Sleep(time.Millisecond)
			lagging = lg.LivePeers()[2]
			c.sim.Net().Partition(c.appNode, c.pNodes[lagging])
			lg.Append(ap, []byte("BBBB"))
			lg.Append(ap, []byte("CCCC"))
			ap.Sleep(time.Hour)
		})
		p.Sleep(200 * time.Millisecond)
		c.appNode.Crash()
		c.sim.Net().Heal(c.appNode, c.pNodes[lagging])
		p.Sleep(10 * time.Millisecond)
		c.appNode.Restart()

		// Remember the lagging peer's region identity (rkey via lookup).
		look, err := wire.Call[peer.LookupResp](p, c.sim.Net(), c.appNode, peer.Addr(lagging), peer.LookupReq{App: "app1", File: "wal"})
		if err != nil {
			t.Fatalf("pre-recovery lookup: %v", err)
		}
		laggingKeyBefore = look.RKey

		l2, _ := NewLib(p, c.svc, c.fabric, c.appNode, "app1", 1, DefaultConfig())
		lg2, err := l2.Recover(p, "wal")
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		if string(lg2.Bytes()) != "AAAABBBBCCCC" {
			t.Fatalf("recovered %q", lg2.Bytes())
		}
		// Tail shipping reuses the SAME region: the rkey must be unchanged
		// (a staging switch would have re-keyed it) and the content full.
		look, err = wire.Call[peer.LookupResp](p, c.sim.Net(), c.appNode, peer.Addr(lagging), peer.LookupReq{App: "app1", File: "wal"})
		if err != nil {
			t.Fatalf("post-recovery lookup: %v", err)
		}
		if got := look.RKey; got != laggingKeyBefore {
			t.Fatalf("append-only catch-up switched regions: rkey %d -> %d", laggingKeyBefore, got)
		}
		region, _ := c.peers[lagging].RegionBytes("app1", "wal")
		if string(region[HeaderSize:HeaderSize+12]) != "AAAABBBBCCCC" {
			t.Fatalf("lagging peer content = %q", region[HeaderSize:HeaderSize+12])
		}
		// Overwrites on an append-only log are rejected.
		if err := lg2.Record(p, 0, []byte("zz")); err == nil {
			t.Fatal("overwrite accepted on append-only log")
		}
		// Appends still work.
		if _, err := lg2.Append(p, []byte("DDDD")); err != nil {
			t.Fatalf("append after tail catch-up: %v", err)
		}
	})
}
