// Package ncl implements near-compute logs (NCL), the paper's core
// abstraction (§4): it makes an application's small synchronous log writes
// fault-tolerant by replicating them to the memory of 2f+1 log peers with
// 1-sided RDMA writes, acknowledging once a majority holds every write in
// application order.
//
// The package is the "ncl-lib" of Fig 2/3. Its operations map one-to-one to
// the paper's: Open (initialize), Record, Release, and Recover, plus the
// failure paths of §4.5 — peer replacement with catch-up before the ap-map
// update, application recovery with a max-sequence-number quorum read and an
// atomic region-switch catch-up, epoch-stamped allocations so peers can
// garbage-collect leaked space, and graceful handling of peer memory
// revocation.
//
// Region layout: every log region starts with a 16-byte header — the
// sequence number and the byte length of the log — followed by the log's
// physical content. Each application write becomes two RDMA writes per peer
// (data, then header), ordered by the QP's send queue, so a peer whose
// header shows sequence s is guaranteed to hold every write up to s (§4.4).
//
// That description covers the default mirror policy. How a log's bytes are
// placed, replicated, and recovered is pluggable (policy.go): Config.Policy
// selects mirror, Reed-Solomon striping ("ec:k,m"), or one-RTT quorum
// journals ("quorum") — see ReplicationPolicy.
package ncl

import (
	"errors"
	"fmt"
	"time"

	"splitft/internal/controller"
	"splitft/internal/model"
	"splitft/internal/peer"
	"splitft/internal/rdma"
	"splitft/internal/simnet"
	"splitft/internal/trace"
	"splitft/internal/wire"
)

// HeaderSize is the per-region metadata prefix: sequence number (8 bytes)
// and log length (8 bytes), both written as one header RDMA write ordered
// after the data write.
const HeaderSize = 16

// Config is ncl-lib's single configuration entry point: the replication
// policy (group shape + commit rule), the default region capacity, and the
// calibrated cost constants from the hardware model. Construct it with
// ConfigFromProfile (or DefaultConfig for the baseline); the zero value of
// Policy/RegionSize is normalized by NewLib to mirror f=1 over 64 MiB
// regions.
type Config struct {
	// Policy is the parsed replication policy (see ParsePolicy).
	Policy PolicySpec
	// RegionSize is the default log capacity for callers that open files
	// without an explicit size (the FS layer).
	RegionSize int64
	// Model holds the calibrated cost constants (internal/model).
	Model model.NCLConfig
	// UnsafeAckQuorum, when in (0, AckNeed), deliberately weakens Record's
	// ack wait to that many peers. It exists ONLY so the chaos checker can
	// prove it catches real protocol bugs: acking below the policy's commit
	// rule loses acknowledged writes under the right crash schedule, and
	// the history checker must produce that counterexample. Never set it
	// in production configurations.
	UnsafeAckQuorum int
}

// ConfigFromProfile derives the ncl configuration from a hardware profile:
// the policy is parsed from prof.NCL.Replication, the default region size
// comes from prof.NCL.DefaultRegionSize, and the cost constants carry over.
func ConfigFromProfile(prof *model.Profile) (Config, error) {
	spec, err := ParsePolicy(prof.NCL.Replication)
	if err != nil {
		return Config{}, err
	}
	size := prof.NCL.DefaultRegionSize
	if size == 0 {
		size = 64 << 20
	}
	return Config{Policy: spec, RegionSize: size, Model: prof.NCL}, nil
}

// DefaultConfig returns the baseline profile's configuration, used
// throughout the evaluation (mirror with f=1, so three log peers — the
// paper's setup).
func DefaultConfig() Config {
	cfg, err := ConfigFromProfile(model.Baseline())
	if err != nil {
		panic(err) // baseline profile always parses
	}
	return cfg
}

// normalize fills the zero-value defaults.
func (c *Config) normalize() {
	if c.Policy == (PolicySpec{}) {
		c.Policy = PolicySpec{Kind: PolicyMirror, F: 1}
	}
	if c.RegionSize == 0 {
		c.RegionSize = 64 << 20
	}
}

// Errors.
var (
	ErrReleased    = errors.New("ncl: log released")
	ErrRegionFull  = errors.New("ncl: write beyond region capacity")
	ErrNotFound    = errors.New("ncl: no such ncl file")
	ErrUnavailable = errors.New("ncl: fewer than f+1 peers available")
	ErrNoPeers     = errors.New("ncl: could not allocate enough log peers")
)

// Lib is one application's ncl-lib instance. It owns the RDMA NIC
// connection state and the controller session for the application.
type Lib struct {
	sim     *simnet.Sim
	node    *simnet.Node
	svc     *controller.Service
	fabric  *rdma.Fabric
	nic     *rdma.NIC
	ctrl    *controller.Client
	appID   string
	fencing int64
	cfg     Config

	logs map[string]*Log
	dead bool

	// suspects are peers that recently failed a data-path operation; they
	// are excluded from allocation until the cooldown passes, since the
	// controller's registry only drops them after session expiry.
	suspects map[string]time.Duration

	// pool is the cached peer registry used when cfg.PoolRefresh > 0 (see
	// pool.go).
	pool serverPool
}

func (l *Lib) markSuspect(name string, now time.Duration) {
	l.suspects[name] = now + l.cfg.Model.SuspectCooldown
}

func (l *Lib) suspectNames(now time.Duration) []string {
	var out []string
	for name, until := range l.suspects {
		if now < until {
			out = append(out, name)
		} else {
			delete(l.suspects, name)
		}
	}
	sortStrings(out)
	return out
}

// NewLib initializes ncl-lib for application appID running on node. fencing
// is the application's incarnation (bump it on every restart).
func NewLib(p *simnet.Proc, svc *controller.Service, fabric *rdma.Fabric, node *simnet.Node, appID string, fencing int64, cfg Config) (*Lib, error) {
	cfg.normalize()
	l := &Lib{
		sim:      node.Sim(),
		node:     node,
		svc:      svc,
		fabric:   fabric,
		nic:      fabric.AttachNIC(node),
		appID:    appID,
		fencing:  fencing,
		cfg:      cfg,
		logs:     make(map[string]*Log),
		suspects: make(map[string]time.Duration),
	}
	l.ctrl = controller.NewClient(svc, node, appID, fencing)
	node.OnCrash(func() { l.dead = true })
	if err := l.ctrl.StartSession(p); err != nil {
		return nil, fmt.Errorf("ncl: controller session: %w", err)
	}
	return l, nil
}

// AcquireInstanceLock claims the application's single-instance znode. Call
// once at start-up; the paper requires that only one instance of the
// application accesses its ncl files at a time (§4.7).
func (l *Lib) AcquireInstanceLock(p *simnet.Proc) error {
	return l.ctrl.AcquireServerLock(p, l.appID)
}

// Controller exposes the controller client (for the SplitFT layer).
func (l *Lib) Controller() *controller.Client { return l.ctrl }

// OpenLog returns the already-open log of the given name, if any. Callers
// re-opening a file within the same instance get the live log rather than
// going through recovery (which is only for fresh instances).
func (l *Lib) OpenLog(name string) (*Log, bool) {
	lg, ok := l.logs[name]
	return lg, ok
}

// ListFiles returns the ncl files recorded for this application in the
// ap-map — what a recovering instance must restore.
func (l *Lib) ListFiles(p *simnet.Proc) ([]string, error) {
	entries, err := l.ctrl.ListAppFiles(p, l.appID)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sortStrings(names)
	return names, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// peerConn is the client-side state for one log peer of one log.
type peerConn struct {
	name string
	qp   *rdma.QP
	rkey uint64
	// slot is this peer's index in the membership — for ec, the fragment
	// index (which data/parity cell its region holds).
	slot int
	// domain is the peer's failure domain, used by pooled placement spread.
	domain string
	// id is this connection's index in Log.conns, packed into RDMA
	// completion contexts so the poller can route without boxing.
	id uint64
	// completedSeq: every record with seq <= completedSeq (data and header)
	// is durably in this peer's region. Monotonic because the QP completes
	// WRs in post order.
	completedSeq uint64
	failed       bool
	// active: counted toward the ack majority. A replacement peer becomes
	// active only after the ap-map names it (§4.5.2).
	active bool
}

// Log is an open ncl file.
type Log struct {
	lib      *Lib
	name     string
	capacity int64

	// policy is the per-log replication strategy; place is its derived
	// group shape for this capacity.
	policy ReplicationPolicy
	place  Placement

	buf    []byte // local buffer: authoritative file content
	length int64
	seq    uint64

	epoch     int64
	apVersion int64

	// appendOnly marks logs that only grow (RocksDB WALs, Redis AOFs);
	// recovery may then catch lagging peers up by shipping the missing
	// tail bytes into their existing regions instead of copying the whole
	// region through staging (the §4.5.1 optimization). Circular logs
	// (SQLite WALs) must leave this false.
	appendOnly bool

	peers []*peerConn
	cq    *rdma.CQ

	// conns is the append-only registry of every peerConn this log ever
	// connected (including replaced ones); completion contexts carry an
	// index into it. peers holds the current membership and is reordered
	// or rewritten on replacement, so its indexes are not stable.
	conns []*peerConn
	// bulks routes catch-up/read completions to their waiters by bulk id.
	// A waiter that bails early deletes its entry; stragglers are dropped.
	bulks    map[uint64]*simnet.Chan[error]
	nextBulk uint64

	mu       simnet.Mutex
	ackCond  *simnet.Cond
	repairCh *simnet.Chan[struct{}]

	released bool

	// Stats. Latency breakdowns (Fig 11b recovery phases, Table 3
	// replacement steps) are trace spans, not struct fields: attach a
	// trace.Collector to the Sim and query the "ncl" layer's "recover.*"
	// and "replace.*" ops.
	Records      uint64
	Replacements int
	StallTime    time.Duration
}

// RDMA completion contexts are packed into the 64-bit Ctx word rather than
// boxed, keeping the record hot path allocation-free:
//
//	record WRs: bit 0 clear, bit 1 = header write,
//	            bits 2..17 = conn id, bits 18..63 = sequence number
//	bulk WRs:   bit 0 set, bits 1..63 = bulk waiter id
const (
	ctxBulkFlag   = 1 << 0
	ctxHeaderFlag = 1 << 1
	ctxConnShift  = 2
	ctxConnMask   = (1 << 16) - 1
	ctxSeqShift   = 18
)

func recCtx(pc *peerConn, seq uint64, header bool) uint64 {
	ctx := pc.id<<ctxConnShift | seq<<ctxSeqShift
	if header {
		ctx |= ctxHeaderFlag
	}
	return ctx
}

// registerConn assigns pc a stable id and records it in the conn registry.
func (lg *Log) registerConn(pc *peerConn) {
	pc.id = uint64(len(lg.conns))
	lg.conns = append(lg.conns, pc)
}

// newBulkWaiter allocates a bulk id and its completion channel. The caller
// must delete the id from lg.bulks when done waiting.
func (lg *Log) newBulkWaiter() (uint64, *simnet.Chan[error]) {
	lg.nextBulk++
	id := lg.nextBulk
	done := simnet.NewChan[error](lg.lib.sim)
	lg.bulks[id] = done
	return id, done
}

func bulkCtx(id uint64) uint64 { return ctxBulkFlag | id<<1 }

// LogOptions tunes per-file behaviour.
type LogOptions struct {
	// AppendOnly enables the tail-shipping recovery catch-up (§4.5.1).
	// Only set it for files that are never overwritten in place.
	AppendOnly bool
}

// Open creates a new ncl file of the given capacity: it obtains the
// policy's peer group from the controller (2f+1 for mirror/quorum, k+m for
// ec), sets up a memory region on each, and records the allocation — peers,
// epoch, and policy — in the ap-map (§4.3, Fig 4). The returned Log is
// empty.
func (l *Lib) Open(p *simnet.Proc, name string, capacity int64) (*Log, error) {
	return l.OpenWithOptions(p, name, capacity, LogOptions{})
}

// OpenWithOptions is Open with per-file options.
func (l *Lib) OpenWithOptions(p *simnet.Proc, name string, capacity int64, opts LogOptions) (*Log, error) {
	sp := p.StartSpan("ncl", "open", trace.Str("file", name), trace.Int("bytes", capacity))
	defer p.EndSpan(sp)
	lg := &Log{
		lib:        l,
		name:       name,
		capacity:   capacity,
		buf:        make([]byte, HeaderSize+capacity),
		epoch:      1,
		appendOnly: opts.AppendOnly,
		cq:         rdma.NewCQ(l.sim),
		repairCh:   simnet.NewChan[struct{}](l.sim),
		bulks:      make(map[uint64]*simnet.Chan[error]),
	}
	lg.ackCond = simnet.NewCond(&lg.mu)
	lg.policy = newPolicy(l.cfg.Policy, capacity)
	lg.place = lg.policy.Place(capacity)

	var exclude []string
	for len(lg.peers) < lg.place.Slots {
		pc, err := l.allocatePeer(p, lg, exclude, lg.epoch)
		if err != nil {
			lg.abortOpen(p)
			return nil, err
		}
		exclude = append(exclude, pc.name)
		pc.active = true
		pc.slot = len(lg.peers)
		lg.peers = append(lg.peers, pc)
	}
	// Step 4b: record the allocation in the ap-map.
	ver, err := l.ctrl.SetAppFile(p, l.appID, name, lg.fileEntry(lg.epoch), -1)
	if err != nil {
		lg.abortOpen(p)
		return nil, fmt.Errorf("ncl: ap-map update: %w", err)
	}
	lg.apVersion = ver
	l.logs[name] = lg
	lg.start(p)
	return lg, nil
}

// abortOpen unwinds a failed OpenWithOptions: the QPs are closed so their
// engine procs exit. Without this, every failed open under a saturated
// controller leaks its QPs, and a retrying client turns saturation into an
// unbounded proc pile-up.
//
// The allocated regions are deliberately NOT released here. A release RPC
// fired during abort can outlive its timeout in a busy peer's queue, and a
// retried open of the same file — which setup idempotency hands the very
// same regions — would then have its live region swept by the stale
// release. Orphaned regions (the retry chose other peers, or never came)
// are reclaimed by the peers' space-leak GC once the grace period passes.
func (lg *Log) abortOpen(p *simnet.Proc) {
	for _, pc := range lg.peers {
		if pc != nil {
			pc.qp.Close(p)
		}
	}
	lg.peers = nil
	lg.cq.Close(p)
	lg.repairCh.Close(p)
}

// allocatePeer picks a candidate from the controller, sets up a region and
// connects a QP. The controller's answer is a hint; peers that reject (or
// died) are skipped and another candidate is requested (§4.3).
func (l *Lib) allocatePeer(p *simnet.Proc, lg *Log, exclude []string, epoch int64) (*peerConn, error) {
	tried := append([]string(nil), exclude...)
	tried = append(tried, l.suspectNames(p.Now())...)
	if l.cfg.Model.PoolRefresh > 0 {
		return l.allocateFromPool(p, lg, tried, epoch)
	}
	for attempt := 0; attempt < l.cfg.Model.SetupRetries; attempt++ {
		cands, err := l.ctrl.PickPeers(p, 1, lg.regionSize(), tried)
		if err != nil {
			return nil, fmt.Errorf("ncl: pick peers: %w", err)
		}
		if len(cands) == 0 {
			return nil, ErrNoPeers
		}
		cand := cands[0]
		tried = append(tried, cand.Name)
		pc, err := l.connectPeer(p, lg, cand, epoch)
		if err != nil {
			continue // rejected or dead: try the next candidate
		}
		return pc, nil
	}
	return nil, ErrNoPeers
}

// connectPeer asks one candidate to set up a region and connects a QP.
// The setup timeout scales with the region size: registration pins memory
// at the fabric's registration bandwidth, so large regions legitimately
// take hundreds of ms — allow 2x the modelled cost plus an RPC base.
func (l *Lib) connectPeer(p *simnet.Proc, lg *Log, cand controller.PeerInfo, epoch int64) (*peerConn, error) {
	rp := l.fabric.Params()
	reg := rp.RegFixed + time.Duration(float64(lg.regionSize())/rp.RegBandwidth*float64(time.Second))
	timeout := 200*time.Millisecond + 2*reg
	setup, err := wire.CallTimeout[peer.SetupResp](p, l.sim.Net(), l.node, cand.Addr, peer.SetupReq{
		App: l.appID, File: lg.name, Size: lg.regionSize(), Epoch: epoch,
	}, timeout)
	if err != nil {
		return nil, err
	}
	qp, err := l.nic.Connect(p, cand.Name, lg.cq)
	if err != nil {
		return nil, err
	}
	pc := &peerConn{name: cand.Name, qp: qp, rkey: setup.RKey, domain: cand.Domain}
	lg.registerConn(pc)
	return pc, nil
}

// regionSize is the per-peer region size the policy derived — what setup
// requests, placement filters, and free-memory accounting all use, so a
// policy's MemoryFactor is exactly what the peer registry reserves.
func (lg *Log) regionSize() int64 { return lg.place.SlotRegion }

func (lg *Log) peerNames() []string {
	names := make([]string, len(lg.peers))
	for i, pc := range lg.peers {
		if pc != nil {
			names[i] = pc.name
		}
	}
	return names
}

// fileEntry builds the ap-map entry for the current membership at the given
// epoch.
func (lg *Log) fileEntry(epoch int64) controller.FileEntry {
	return controller.FileEntry{
		Peers:      lg.peerNames(),
		Epoch:      epoch,
		RegionSize: lg.regionSize(),
		AppendOnly: lg.appendOnly,
		Policy:     lg.policy.Spec().String(),
		Capacity:   lg.capacity,
	}
}

// start spawns the completion poller and the repair proc. Both die with the
// application node.
func (lg *Log) start(p *simnet.Proc) {
	p.GoOn(lg.lib.node, "ncl-poller:"+lg.name, lg.pollLoop)
	p.GoOn(lg.lib.node, "ncl-repair:"+lg.name, lg.repairLoop)
}

// pollLoop drains the shared CQ, advancing per-peer completed sequence
// numbers and routing bulk-transfer completions to their waiters.
func (lg *Log) pollLoop(p *simnet.Proc) {
	for {
		c, ok := lg.cq.Poll(p)
		if !ok {
			return
		}
		ctx := c.Ctx
		if ctx&ctxBulkFlag != 0 {
			if done, ok := lg.bulks[ctx>>1]; ok {
				done.Send(p, c.Err)
			}
			continue
		}
		pc := lg.conns[(ctx>>ctxConnShift)&ctxConnMask]
		seq := ctx >> ctxSeqShift
		lg.mu.Lock(p)
		if c.Err != nil {
			if !pc.failed {
				pc.failed = true
				lg.lib.markSuspect(pc.name, p.Now())
				lg.repairCh.Send(p, struct{}{})
			}
		} else if ctx&ctxHeaderFlag != 0 && seq > pc.completedSeq {
			pc.completedSeq = seq
		}
		lg.ackCond.Broadcast(p)
		lg.mu.Unlock(p)
	}
}

// Record replicates one application write at the given file offset (§4.4).
// It assigns the next sequence number, hands the write to the replication
// policy (mirror: data + header WR per active peer; ec: one coded frame per
// slot; quorum: one journal frame per peer), and returns once the policy's
// ack quorum of active peers has completed every record up to and including
// this one.
//
// Record supports overwrites at arbitrary offsets within the region, which
// is how circular logs (SQLite-style, Fig 7ii) are replicated physically
// under mirror; the ec and quorum frame logs accept overwrites too but
// consume frame budget per write (see their policy docs).
func (lg *Log) Record(p *simnet.Proc, off int64, data []byte) error {
	if p.Tracing() {
		sp := p.StartSpan("ncl", "record", trace.Str("file", lg.name), trace.Int("bytes", int64(len(data))))
		defer p.EndSpan(sp)
	}
	lg.mu.Lock(p)
	defer lg.mu.Unlock(p)
	if lg.released {
		return ErrReleased
	}
	end := off + int64(len(data))
	if off < 0 || end > lg.capacity {
		return fmt.Errorf("%w: [%d,%d) cap %d", ErrRegionFull, off, end, lg.capacity)
	}
	if lg.appendOnly && off != lg.length {
		return fmt.Errorf("ncl: overwrite at %d on append-only log %s (length %d)", off, lg.name, lg.length)
	}
	prevLength := lg.length
	copy(lg.buf[HeaderSize+off:], data)
	if end > lg.length {
		lg.length = end
	}
	lg.seq++
	seq := lg.seq
	if err := lg.policy.Append(p, lg, off, data); err != nil {
		// Nothing was posted: roll the sequence and length back. The local
		// buffer keeps the bytes, but they were never replicated and the
		// caller sees the failure.
		lg.seq--
		lg.length = prevLength
		return err
	}
	p.Sleep(lg.lib.cfg.Model.RecordCPU)
	lg.Records++
	start := p.Now()
	need := lg.place.AckNeed
	if u := lg.lib.cfg.UnsafeAckQuorum; u > 0 && u < need {
		need = u // seeded mutation: ack before the commit rule holds
	}
	for lg.ackCount(seq) < need {
		if lg.released {
			return ErrReleased
		}
		if timedOut := lg.ackCond.WaitTimeout(p, lg.lib.cfg.Model.AckTimeout); timedOut {
			// No majority progress: make sure repair is running (it may
			// already be replacing failed peers).
			lg.repairCh.Send(p, struct{}{})
		}
	}
	if wait := p.Now() - start; wait > time.Millisecond {
		lg.StallTime += wait
	}
	return nil
}

// ackCount returns how many active peers hold every record up to seq.
func (lg *Log) ackCount(seq uint64) int {
	n := 0
	for _, pc := range lg.peers {
		if pc != nil && pc.active && !pc.failed && pc.completedSeq >= seq {
			n++
		}
	}
	return n
}

// Append is Record at the current end of the log.
func (lg *Log) Append(p *simnet.Proc, data []byte) (off int64, err error) {
	off = lg.length
	return off, lg.Record(p, off, data)
}

// Length returns the log's current byte length.
func (lg *Log) Length() int64 { return lg.length }

// Capacity returns the region capacity in bytes.
func (lg *Log) Capacity() int64 { return lg.capacity }

// Seq returns the last assigned sequence number (tests).
func (lg *Log) Seq() uint64 { return lg.seq }

// Epoch returns the log's current allocation epoch (tests).
func (lg *Log) Epoch() int64 { return lg.epoch }

// Policy returns the log's replication policy spec.
func (lg *Log) Policy() PolicySpec { return lg.policy.Spec() }

// Bytes returns the local buffer content (the file view).
func (lg *Log) Bytes() []byte { return lg.buf[HeaderSize : HeaderSize+lg.length] }

// RemoteReadAt reads log content directly from a live peer's region with a
// 1-sided RDMA read instead of the local buffer — the "NCL no prefetch"
// variant of Fig 11(a). It exists to show why Recover prefetches. Only the
// mirror policy keeps full plaintext copies remotely; under ec the regions
// hold coded fragments and under quorum framed journals, so a raw remote
// read has nothing file-shaped to return.
func (lg *Log) RemoteReadAt(p *simnet.Proc, buf []byte, off int64) (int, error) {
	if lg.policy.Spec().Kind != PolicyMirror {
		return 0, fmt.Errorf("ncl: RemoteReadAt requires the mirror policy (log %s uses %s)",
			lg.name, lg.policy.Spec())
	}
	if off >= lg.length {
		return 0, nil
	}
	n := int64(len(buf))
	if off+n > lg.length {
		n = lg.length - off
	}
	var target *peerConn
	for _, pc := range lg.peers {
		if pc != nil && pc.active && !pc.failed {
			target = pc
			break
		}
	}
	if target == nil {
		return 0, ErrUnavailable
	}
	if p.Tracing() {
		sp := p.StartSpan("ncl", "remoteread", trace.Str("file", lg.name), trace.Int("bytes", n))
		defer p.EndSpan(sp)
	}
	p.Sleep(lg.lib.cfg.Model.ReadOverhead) // per-read library overhead (WR setup + poll)
	if err := lg.readInto(p, target, HeaderSize+int(off), buf[:n]); err != nil {
		return 0, err
	}
	return int(n), nil
}

// ReadAt copies log content into buf from offset off.
func (lg *Log) ReadAt(buf []byte, off int64) int {
	if off >= lg.length {
		return 0
	}
	n := int64(len(buf))
	if off+n > lg.length {
		n = lg.length - off
	}
	copy(buf[:n], lg.buf[HeaderSize+off:HeaderSize+off+n])
	return int(n)
}

// Release frees the log's resources everywhere: the paper's `release` call,
// invoked when the application deletes the ncl file after a checkpoint or
// compaction (§4.3). Peer regions are released, the ap-map entry removed,
// and the local state reset.
func (lg *Log) Release(p *simnet.Proc) error {
	sp := p.StartSpan("ncl", "release", trace.Str("file", lg.name))
	defer p.EndSpan(sp)
	lg.mu.Lock(p)
	if lg.released {
		lg.mu.Unlock(p)
		return nil
	}
	lg.released = true
	lg.ackCond.Broadcast(p)
	peers := append([]*peerConn(nil), lg.peers...)
	lg.mu.Unlock(p)

	net := lg.lib.sim.Net()
	for _, pc := range peers {
		if pc == nil {
			continue
		}
		// Best-effort: dead peers' allocations are reclaimed by their GC.
		net.CallTimeout(p, lg.lib.node, peer.Addr(pc.name), peer.ReleaseReq{ //nolint:errcheck
			App: lg.lib.appID, File: lg.name,
		}.MarshalWire(), 10*time.Millisecond)
		pc.qp.Close(p)
	}
	// Local teardown happens regardless of the ap-map outcome: the poller
	// and repair procs must die and the lib must forget the log even when
	// the delete proposal times out on a saturated controller, or every
	// failed release strands a proc pair. A dangling ap-map entry is safe —
	// ReleaseByName can retry it, and peers already freed their regions.
	delErr := lg.lib.ctrl.DeleteAppFile(p, lg.lib.appID, lg.name)
	delete(lg.lib.logs, lg.name)
	// Tear down the poller and repair procs.
	lg.cq.Close(p)
	lg.repairCh.Close(p)
	if delErr != nil {
		return fmt.Errorf("ncl: ap-map delete: %w", delErr)
	}
	return nil
}

// ReleaseByName frees an ncl file that is not open (e.g. a log superseded
// by a checkpoint that a recovering application deletes without replaying):
// peers holding regions are told to release them and the ap-map entry is
// removed. Unreachable peers reclaim their allocations via the space-leak
// GC once the entry is gone.
func (l *Lib) ReleaseByName(p *simnet.Proc, name string) error {
	if lg, ok := l.logs[name]; ok {
		return lg.Release(p)
	}
	entry, _, found, err := l.ctrl.GetAppFile(p, l.appID, name)
	if err != nil {
		return err
	}
	if !found {
		return nil
	}
	for _, pname := range entry.Peers {
		l.sim.Net().CallTimeout(p, l.node, peer.Addr(pname), peer.ReleaseReq{ //nolint:errcheck
			App: l.appID, File: name,
		}.MarshalWire(), 10*time.Millisecond)
	}
	return l.ctrl.DeleteAppFile(p, l.appID, name)
}

// LivePeers returns the names of currently active, healthy peers (tests).
func (lg *Log) LivePeers() []string {
	var out []string
	for _, pc := range lg.peers {
		if pc != nil && pc.active && !pc.failed {
			out = append(out, pc.name)
		}
	}
	return out
}
