package ncl

// Systematic Reed-Solomon over GF(2^8) for the ec policy. The encode matrix
// is [I; C] where C is a K x M Cauchy block: C[j][i] = 1/(x_j + y_i) with
// x_j = K+j and y_i = i (all arithmetic in GF(2^8), + is XOR). Every K x K
// submatrix of [I; C] is invertible, so any K of the K+M cells reconstruct
// the stripe. Hand-rolled on purpose: the simulator can't take external
// dependencies, and the cell sizes here (a few KB) don't need SIMD kernels —
// the *time* cost of encoding is modeled separately by
// model.NCLConfig.EncodeBandwidth.

import "fmt"

// GF(2^8) log/antilog tables for the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11d), generator 2.
var gfExp [512]byte
var gfLog [256]byte

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

func gfInv(a byte) byte {
	if a == 0 {
		panic("ncl: GF(2^8) inverse of zero")
	}
	return gfExp[255-int(gfLog[a])]
}

// gfMulAddRow dst ^= coef * src, the inner loop of both encode and decode.
func gfMulAddRow(dst, src []byte, coef byte) {
	if coef == 0 {
		return
	}
	if coef == 1 {
		for i := range src {
			dst[i] ^= src[i]
		}
		return
	}
	lc := int(gfLog[coef])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[lc+int(gfLog[s])]
		}
	}
}

// rsCode is a (K, M) systematic code. parity holds the Cauchy rows: row j is
// the coefficients producing parity cell j from the K data cells.
type rsCode struct {
	k, m   int
	parity [][]byte
}

func newRS(k, m int) *rsCode {
	if k < 1 || m < 1 || k+m > 255 {
		panic(fmt.Sprintf("ncl: bad RS shape (%d,%d)", k, m))
	}
	c := &rsCode{k: k, m: m, parity: make([][]byte, m)}
	for j := 0; j < m; j++ {
		row := make([]byte, k)
		for i := 0; i < k; i++ {
			row[i] = gfInv(byte(k+j) ^ byte(i))
		}
		c.parity[j] = row
	}
	return c
}

// encode fills cells[k..k+m-1] (parity) from cells[0..k-1] (data). All cells
// must be the same length; parity cells are overwritten in place.
func (c *rsCode) encode(cells [][]byte) {
	for j := 0; j < c.m; j++ {
		out := cells[c.k+j]
		for i := range out {
			out[i] = 0
		}
		for i := 0; i < c.k; i++ {
			gfMulAddRow(out, cells[i], c.parity[j][i])
		}
	}
}

// reconstruct rebuilds every absent cell from the present ones. cells holds
// all k+m slots (present ones filled, absent ones allocated to cell length);
// present flags which are trustworthy. Needs at least k present.
func (c *rsCode) reconstruct(cells [][]byte, present []bool) error {
	avail := 0
	for _, ok := range present {
		if ok {
			avail++
		}
	}
	if avail < c.k {
		return fmt.Errorf("ncl: RS(%d,%d) reconstruct with only %d cells", c.k, c.m, avail)
	}
	allData := true
	for i := 0; i < c.k; i++ {
		if !present[i] {
			allData = false
			break
		}
	}
	if !allData {
		// Invert the K x K submatrix of [I; C] formed by the first K present
		// rows: dec * [chosen cells] = [data cells].
		mat := make([][]byte, c.k)
		chosen := make([][]byte, c.k)
		n := 0
		for r := 0; r < c.k+c.m && n < c.k; r++ {
			if !present[r] {
				continue
			}
			row := make([]byte, c.k)
			if r < c.k {
				row[r] = 1
			} else {
				copy(row, c.parity[r-c.k])
			}
			mat[n] = row
			chosen[n] = cells[r]
			n++
		}
		dec := invertMatrix(mat)
		for i := 0; i < c.k; i++ {
			if present[i] {
				continue
			}
			out := cells[i]
			for x := range out {
				out[x] = 0
			}
			for j := 0; j < c.k; j++ {
				gfMulAddRow(out, chosen[j], dec[i][j])
			}
		}
	}
	// With all data cells in hand, recompute any absent parity.
	for j := 0; j < c.m; j++ {
		if present[c.k+j] {
			continue
		}
		out := cells[c.k+j]
		for x := range out {
			out[x] = 0
		}
		for i := 0; i < c.k; i++ {
			gfMulAddRow(out, cells[i], c.parity[j][i])
		}
	}
	return nil
}

// invertMatrix Gauss-Jordan inverts a square GF(2^8) matrix. The matrices
// here are submatrices of [I; Cauchy], which are always invertible; a
// singular input is a programming error and panics.
func invertMatrix(m [][]byte) [][]byte {
	n := len(m)
	a := make([][]byte, n)
	inv := make([][]byte, n)
	for i := range m {
		a[i] = append([]byte(nil), m[i]...)
		inv[i] = make([]byte, n)
		inv[i][i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if a[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			panic("ncl: singular RS decode matrix")
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		if pv := a[col][col]; pv != 1 {
			ipv := gfInv(pv)
			for x := 0; x < n; x++ {
				a[col][x] = gfMul(a[col][x], ipv)
				inv[col][x] = gfMul(inv[col][x], ipv)
			}
		}
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			coef := a[r][col]
			gfMulAddRow(a[r], a[col], coef)
			gfMulAddRow(inv[r], inv[col], coef)
		}
	}
	return inv
}
