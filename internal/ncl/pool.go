package ncl

import (
	"sort"
	"time"

	"splitft/internal/controller"
	"splitft/internal/simnet"
)

// Pooled server set. With cfg.PoolRefresh > 0, ncl-lib caches the
// controller's full peer registry for that long and picks allocation
// candidates from the cache with rendezvous hashing keyed by (peer,
// app/file). Two things change versus the paper's per-slot PickPeers call:
// the controller answers one List per TTL instead of one per allocation,
// and placement stops being most-free-first — a thousand WALs opened in the
// same interval would all see the same "most free" peers and pile onto
// them, while rendezvous weights spread files across the fleet and keep
// each file's placement stable under registry churn. PoolRefresh = 0
// disables the pool and keeps the paper's exact behavior.

type serverPool struct {
	peers     []controller.PeerInfo
	fetchedAt time.Duration
	valid     bool
}

// rdvWeight is FNV-1a over "peer|app/file" — the rendezvous (highest
// random weight) score of placing this file's slot on this peer.
func rdvWeight(peerName, key string) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(peerName); i++ {
		h ^= uint64(peerName[i])
		h *= prime
	}
	h ^= '|'
	h *= prime
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return h
}

// poolCandidates returns allocation candidates for lg in rendezvous order,
// refreshing the cached registry when the TTL lapsed. Names in tried and
// peers advertising less than the region size are filtered out (the
// advertised memory is a hint either way — the peer itself still accepts or
// rejects the setup).
func (l *Lib) poolCandidates(p *simnet.Proc, lg *Log, tried []string) ([]controller.PeerInfo, error) {
	now := p.Now()
	if !l.pool.valid || now-l.pool.fetchedAt >= l.cfg.Model.PoolRefresh {
		peers, err := l.ctrl.ListPeers(p)
		if err != nil {
			return nil, err
		}
		l.pool.peers = peers
		l.pool.fetchedAt = now
		l.pool.valid = true
	}
	skip := make(map[string]bool, len(tried))
	for _, t := range tried {
		skip[t] = true
	}
	key := l.appID + "/" + lg.name
	type scored struct {
		info controller.PeerInfo
		w    uint64
	}
	cands := make([]scored, 0, len(l.pool.peers))
	for _, info := range l.pool.peers {
		if skip[info.Name] || info.AvailMem < lg.regionSize() {
			continue
		}
		cands = append(cands, scored{info: info, w: rdvWeight(info.Name, key)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].w != cands[j].w {
			return cands[i].w > cands[j].w
		}
		return cands[i].info.Name < cands[j].info.Name
	})
	// Failure-domain spread: prefer candidates in domains the log's current
	// members do not occupy, so one rack/domain failure cannot take more
	// members than the policy tolerates. Within a usage tier the rendezvous
	// order is preserved (stable sort), and when no one advertises a domain
	// every count is zero — the order, and every existing trace, is
	// unchanged.
	used := make(map[string]int)
	for _, pc := range lg.peers {
		if pc != nil && pc.domain != "" {
			used[pc.domain]++
		}
	}
	if len(used) > 0 {
		sort.SliceStable(cands, func(i, j int) bool {
			return used[cands[i].info.Domain] < used[cands[j].info.Domain]
		})
	}
	out := make([]controller.PeerInfo, len(cands))
	for i, c := range cands {
		out[i] = c.info
	}
	return out, nil
}

// allocateFromPool is allocatePeer's pooled variant: candidates come from
// the cached registry in rendezvous order instead of a controller round
// trip per slot. An empty candidate list forces one refresh before giving
// up — newly registered capacity may be hidden by a stale cache.
func (l *Lib) allocateFromPool(p *simnet.Proc, lg *Log, tried []string, epoch int64) (*peerConn, error) {
	for attempt := 0; attempt < l.cfg.Model.SetupRetries; attempt++ {
		cands, err := l.poolCandidates(p, lg, tried)
		if err != nil {
			return nil, err
		}
		if len(cands) == 0 {
			if l.pool.valid {
				l.pool.valid = false
				continue
			}
			return nil, ErrNoPeers
		}
		cand := cands[0]
		tried = append(tried, cand.Name)
		pc, err := l.connectPeer(p, lg, cand, epoch)
		if err != nil {
			// Rejected or dead: drop the candidate from the cached registry
			// so allocations within the TTL stop paying its setup timeout,
			// then try the next one. The peer re-enters the pool at the next
			// refresh (a rejection is not a death sentence — the cache is a
			// hint, and a healthy-again peer is rediscovered within one TTL).
			l.dropPooledPeer(cand.Name)
			continue
		}
		return pc, nil
	}
	return nil, ErrNoPeers
}

// dropPooledPeer invalidates one entry of the cached registry in place.
// Without this, a peer that died inside the refresh window keeps ranking in
// rendezvous order and every allocation until the TTL lapses re-pays the
// full setup timeout against it.
func (l *Lib) dropPooledPeer(name string) {
	for i, info := range l.pool.peers {
		if info.Name == name {
			l.pool.peers = append(l.pool.peers[:i], l.pool.peers[i+1:]...)
			return
		}
	}
}
