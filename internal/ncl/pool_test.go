package ncl

import (
	"fmt"
	"testing"
	"time"

	"splitft/internal/simnet"
)

// Regression: a peer that dies inside the pool's refresh window must be
// dropped from the cached registry on the first failed setup, not retried
// (at a full setup timeout each) by every allocation until the TTL lapses.
func TestPoolDropsDeadPeerInsideRefreshWindow(t *testing.T) {
	c := newCluster(31, 5, smallPeerCfg())
	c.run(t, func(p *simnet.Proc) {
		libCfg := DefaultConfig()
		libCfg.Model.PoolRefresh = time.Minute // far longer than the test
		l, err := NewLib(p, c.svc, c.fabric, c.appNode, "app1", 0, libCfg)
		if err != nil {
			t.Fatalf("new lib: %v", err)
		}
		lg, err := l.Open(p, "warm", 1<<20) // warms the registry cache
		if err != nil {
			t.Fatalf("open warm: %v", err)
		}
		member := map[string]bool{}
		for _, n := range lg.LivePeers() {
			member[n] = true
		}
		// Crash a spare (non-member), so no repair traffic interferes and
		// the only way the death is noticed is a failed allocation.
		victim := ""
		names := make([]string, 0, len(c.pNodes))
		for name := range c.pNodes {
			names = append(names, name)
		}
		sortStrings(names)
		for _, name := range names {
			if !member[name] {
				victim = name
				break
			}
		}
		c.pNodes[victim].Crash()
		fetchedAt := l.pool.fetchedAt

		// File names whose rendezvous ranking puts the dead peer first, so
		// an allocation must try (and fail against) it.
		victimRanked := func(from int) string {
			for i := from; i < from+10000; i++ {
				cand := fmt.Sprintf("w%d", i)
				key := "app1/" + cand
				best, bw := "", uint64(0)
				for _, pn := range names {
					if w := rdvWeight(pn, key); w > bw {
						bw, best = w, pn
					}
				}
				if best == victim {
					return cand
				}
			}
			t.Fatal("no victim-ranked file name found")
			return ""
		}

		first := victimRanked(0)
		start := p.Now()
		lg2, err := l.Open(p, first, 1<<20)
		if err != nil {
			t.Fatalf("open %s: %v", first, err)
		}
		firstCost := p.Now() - start
		if firstCost < 200*time.Millisecond {
			t.Fatalf("first open took %v; expected it to pay one setup timeout against the dead peer", firstCost)
		}
		for _, n := range lg2.LivePeers() {
			if n == victim {
				t.Fatalf("dead peer %s became a member", victim)
			}
		}
		for _, info := range l.pool.peers {
			if info.Name == victim {
				t.Fatalf("dead peer %s still in the cached registry after a failed setup", victim)
			}
		}
		if !l.pool.valid || l.pool.fetchedAt != fetchedAt {
			t.Fatal("dropping one dead entry must not invalidate or refresh the whole cache")
		}

		// A later allocation inside the same TTL that would again rank the
		// dead peer first must not re-pay the setup timeout.
		second := victimRanked(10000)
		start = p.Now()
		if _, err := l.Open(p, second, 1<<20); err != nil {
			t.Fatalf("open %s: %v", second, err)
		}
		if cost := p.Now() - start; cost >= 100*time.Millisecond {
			t.Fatalf("second open took %v; the dead peer was dropped, no timeout should be paid", cost)
		}
	})
}
