package ncl

import (
	"time"

	"splitft/internal/simnet"
	"splitft/internal/trace"
)

// This file implements log-peer failure handling (§4.5.2): detecting failed
// peers (the poller marks them on RDMA completion errors), allocating a
// replacement, catching it up, and only then updating the ap-map — the
// ordering Fig 7(iii) shows is required to avoid data loss. Replacement of
// a single peer happens in the background while writes continue on the
// remaining quorum; when the policy's ack quorum is unreachable (more than
// f peers gone for mirror/quorum, any peer gone for ec), Record blocks
// until a replacement is caught up (the ~100 ms stall of Fig 12).

// repairLoop waits for failure notifications and replaces failed peers one
// at a time.
func (lg *Log) repairLoop(p *simnet.Proc) {
	for {
		if _, ok := lg.repairCh.Recv(p); !ok {
			return
		}
		backoff := 20 * time.Millisecond
		for {
			lg.mu.Lock(p)
			if lg.released {
				lg.mu.Unlock(p)
				return
			}
			idx := -1
			for i, pc := range lg.peers {
				if pc != nil && pc.failed {
					idx = i
					break
				}
			}
			lg.mu.Unlock(p)
			if idx < 0 {
				break
			}
			if lg.replacePeer(p, idx) {
				backoff = 20 * time.Millisecond
			} else {
				// No peer available (or the controller timed out): back off
				// so a saturated control plane is not hammered by every
				// degraded log at once.
				p.Sleep(backoff)
				if backoff < 2*time.Second {
					backoff *= 2
				}
			}
		}
	}
}

// replacePeer substitutes the failed peer at idx with a fresh one. Order
// matters for safety (§4.5.2): (1) allocate a region under a new epoch,
// (2) bulk catch-up the new peer with the policy's replica content for that
// slot, (3) CAS the ap-map with the new membership, (4) activate the peer
// and send it the delta. Only after (4) does the peer count toward write
// quorums.
//
// Each step is a trace span ("ncl"/"replace.getpeer", ".connect",
// ".catchup", ".apmap" under an "ncl"/"replace" parent) — Table 3's latency
// breakdown is a span query over one replacement.
func (lg *Log) replacePeer(p *simnet.Proc, idx int) bool {
	l := lg.lib
	lg.mu.Lock(p)
	if lg.released || lg.peers[idx] == nil || !lg.peers[idx].failed {
		lg.mu.Unlock(p)
		return true
	}
	oldPC := lg.peers[idx]
	newEpoch := lg.epoch + 1
	exclude := make([]string, 0, len(lg.peers))
	for _, pc := range lg.peers {
		if pc != nil {
			exclude = append(exclude, pc.name)
		}
	}
	lg.mu.Unlock(p)

	rsp := p.StartSpan("ncl", "replace", trace.Str("file", lg.name))
	defer p.EndSpan(rsp)
	// (1) Allocate and connect: the controller query, then region setup +
	// MR registration + QP connect.
	sp := p.StartSpan("ncl", "replace.getpeer")
	cands, err := l.ctrl.PickPeers(p, 1, lg.regionSize(), append(exclude, l.suspectNames(p.Now())...))
	p.EndSpan(sp)
	if err != nil || len(cands) == 0 {
		return false
	}
	sp = p.StartSpan("ncl", "replace.connect")
	pc, err := l.connectPeer(p, lg, cands[0], newEpoch)
	if err != nil {
		// Fall back to the generic retry path for rejected hints.
		pc, err = l.allocatePeer(p, lg, append(exclude, cands[0].Name), newEpoch)
		if err != nil {
			p.EndSpan(sp)
			return false
		}
	}
	pc.slot = idx
	p.EndSpan(sp)
	// (2) Bulk catch-up from the client-side replica state (§4.5.2: "ncl-lib
	// copies the contents of the ncl file from its local buffer" — for ec,
	// the slot's fragment log; for quorum, the journal).
	sp = p.StartSpan("ncl", "replace.catchup")
	if err := lg.policy.Repair(p, lg, pc.qp, pc.rkey, idx, true); err != nil {
		p.EndSpan(sp)
		pc.qp.Close(p)
		return false
	}
	p.EndSpan(sp)
	// (3) ap-map switch under CAS; the epoch stamps the new membership.
	lg.mu.Lock(p)
	names := lg.peerNames()
	names[idx] = pc.name
	entry := lg.fileEntry(newEpoch)
	entry.Peers = names
	apVersion := lg.apVersion
	lg.mu.Unlock(p)
	sp = p.StartSpan("ncl", "replace.apmap")
	ver, err := l.ctrl.SetAppFile(p, l.appID, lg.name, entry, apVersion)
	p.EndSpan(sp)
	if err != nil {
		// The CAS proposal may have committed even though the reply was
		// lost (a timeout on a saturated controller) — in which case every
		// blind retry would fail ErrBadVersion forever. Re-read the entry:
		// if it already names our membership at our epoch, the first
		// submission won and this replacement should proceed.
		rentry, rver, found, gerr := l.ctrl.GetAppFile(p, l.appID, lg.name)
		if gerr != nil || !found || rentry.Epoch != newEpoch || !sameNames(rentry.Peers, names) {
			pc.qp.Close(p)
			return false
		}
		ver = rver
	}
	// (4) Activate: send the delta accumulated during (2)-(3) and include
	// the peer in future replication. Its completedSeq only advances once
	// the delta lands, so it joins quorums exactly when it is caught up.
	lg.mu.Lock(p)
	lg.apVersion = ver
	lg.epoch = newEpoch
	lg.policy.Snapshot(p, lg, pc)
	pc.active = true
	lg.peers[idx] = pc
	lg.Replacements++
	lg.mu.Unlock(p)
	oldPC.qp.Close(p)
	return true
}

func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
