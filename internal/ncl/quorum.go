package ncl

// quorumPolicy is the SWARM-style one-RTT write path: each record becomes
// ONE self-describing frame (header + payload) appended to a per-peer
// journal, posted as a single RDMA write to every peer with no ordering
// dependency between the data and a separate commit header. Acked at f+1
// of 2f+1 — half the WRs and one less serialized fabric hop per record
// than mirror's data-then-header pair, which is what buys the lower write
// tail latency.
//
// Commit rule and recovery: a record is acknowledged once f+1 peers
// completed its frame. Each peer's journal is a byte-exact prefix of the
// client's journal (frames are posted in order on each QP), so during
// recovery the longest journal among any f+1 responsive members contains
// every acknowledged frame: the ack quorum and the recovery read set
// intersect in at least one member, and that member's prefix includes the
// frame. Recovery replays the longest journal, then read-repairs every
// lagging survivor by rewriting its full journal, and republishes the
// membership under a bumped epoch so stale frames beyond the recovered
// prefix can never outrank post-recovery writes.
//
// Like ec, the journal is append-only with no in-place compaction; the
// region carries a slack budget (capacity/8 beyond the capacity itself)
// for frame headers, and Append fails with ErrRegionFull when the journal
// is exhausted. Records of >= 256 B never exhaust it before the nominal
// capacity; the application's checkpoint/rotate path resets it.

import (
	"fmt"
	"time"

	"splitft/internal/simnet"
)

type quorumPolicy struct {
	spec     PolicySpec
	capacity int64

	journalCap int64
	journal    []byte
	journalLen int64

	// caughtUp carries, between the recovery read and sync phases, the
	// survivors whose journals already match the recovered prefix.
	caughtUp map[*peerConn]bool
}

func newQuorumPolicy(spec PolicySpec, capacity int64) *quorumPolicy {
	q := &quorumPolicy{
		spec:       spec,
		capacity:   capacity,
		journalCap: quorumJournalCap(capacity),
	}
	q.journal = make([]byte, q.journalCap)
	return q
}

// quorumJournalCap sizes one journal region: the capacity itself plus a
// frame-header slack budget (1/8th of capacity, floor 4 KiB).
func quorumJournalCap(capacity int64) int64 {
	slack := capacity / 8
	if slack < 4096 {
		slack = 4096
	}
	return capacity + slack
}

func (q *quorumPolicy) Spec() PolicySpec { return q.spec }

func (q *quorumPolicy) Place(capacity int64) Placement {
	return Placement{
		Slots:      q.spec.Slots(),
		SlotRegion: quorumJournalCap(capacity),
		AckNeed:    q.spec.F + 1,
		MinAlive:   q.spec.F + 1,
	}
}

func (q *quorumPolicy) MemoryFactor(capacity int64) float64 {
	return float64(int64(q.spec.Slots())*quorumJournalCap(capacity)) / float64(capacity)
}

// Append frames the record into the journal and posts one WR per live
// peer. Caller holds lg.mu.
func (q *quorumPolicy) Append(p *simnet.Proc, lg *Log, off int64, data []byte) error {
	length := int64(len(data))
	fs := frameHdrSize + length
	if q.journalLen+fs > q.journalCap {
		return fmt.Errorf("%w: quorum journal exhausted (%d of %d bytes; checkpoint and reopen)",
			ErrRegionFull, q.journalLen, q.journalCap)
	}
	pos := q.journalLen
	copy(q.journal[pos+frameHdrSize:], data)
	putFrame(q.journal[pos:pos+fs], lg.seq, uint64(lg.epoch), off, length, length)
	for _, pc := range lg.peers {
		if pc != nil && pc.active && !pc.failed {
			pc.qp.PostWrite(p, pc.rkey, int(pos), q.journal[pos:pos+fs], recCtx(pc, lg.seq, true))
		}
	}
	q.journalLen = pos + fs
	return nil
}

// Recover reads every survivor's full journal and replays the longest one
// (ties broken by membership-slot order, deterministically). Unlike ec
// there is no cut below the maximum: any single journal is self-contained,
// so the most advanced one is used whole — recovering at-worst some
// unacknowledged tail records, exactly as mirror's max-sequence rule does.
func (q *quorumPolicy) Recover(p *simnet.Proc, lg *Log, alive []*peerConn) error {
	type jscan struct {
		pc     *peerConn
		frames []frame
		last   uint64
		buf    []byte
	}
	scans := make([]jscan, 0, len(alive))
	for _, pc := range alive {
		buf := make([]byte, q.journalCap)
		if err := lg.readInto(p, pc, 0, buf); err != nil {
			pc.failed = true
			continue
		}
		fr := scanFrames(buf, q.capacity)
		var last uint64
		if len(fr) > 0 {
			last = fr[len(fr)-1].seq
		}
		scans = append(scans, jscan{pc: pc, frames: fr, last: last, buf: buf})
	}
	if len(scans) < lg.place.MinAlive {
		return fmt.Errorf("%w: %d of %d journals readable", ErrUnavailable, len(scans), q.spec.Slots())
	}
	best := 0
	for i := 1; i < len(scans); i++ {
		if scans[i].last > scans[best].last {
			best = i
		}
	}
	chosen := scans[best]
	q.journalLen = 0
	for _, f := range chosen.frames {
		copy(lg.buf[HeaderSize+f.off:], f.cell[:f.len])
		if end := f.off + f.len; end > lg.length {
			lg.length = end
		}
		lg.seq = f.seq
		q.journalLen = f.pos + f.size
	}
	copy(q.journal, chosen.buf[:q.journalLen])
	// Remember who already matches so Resync can skip them: a survivor with
	// the same last sequence holds the identical byte prefix.
	q.caughtUp = make(map[*peerConn]bool, len(scans))
	for _, sc := range scans {
		if sc.last == chosen.last {
			q.caughtUp[sc.pc] = true
		}
	}
	return nil
}

// Resync read-repairs every lagging survivor with a full-journal rewrite.
// Suffix shipping would also work (prefix property), but the full rewrite
// is simple, correct for every lag shape, and off the hot path.
func (q *quorumPolicy) Resync(p *simnet.Proc, lg *Log, alive []*peerConn) error {
	for _, pc := range alive {
		if pc.failed {
			continue
		}
		if !q.caughtUp[pc] {
			if err := q.Repair(p, lg, pc.qp, pc.rkey, pc.slot, false); err != nil {
				pc.failed = true
				continue
			}
		}
		pc.completedSeq = lg.seq
		pc.active = true
	}
	q.caughtUp = nil
	return nil
}

func (q *quorumPolicy) Repair(p *simnet.Proc, lg *Log, qp qpLike, rkey uint64, slot int, lock bool) error {
	id, done := lg.newBulkWaiter()
	defer delete(lg.bulks, id)
	if lock {
		lg.mu.Lock(p)
	}
	n := 0
	if q.journalLen > 0 {
		qp.PostWrite(p, rkey, 0, q.journal[:q.journalLen], bulkCtx(id))
		n++
	}
	if lock {
		lg.mu.Unlock(p)
	}
	for i := 0; i < n; i++ {
		err, ok := done.Recv(p)
		if !ok {
			return ErrReleased
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (q *quorumPolicy) Snapshot(p *simnet.Proc, lg *Log, pc *peerConn) {
	if q.journalLen == 0 {
		return
	}
	p.Sleep(time.Duration(float64(q.journalLen) / lg.lib.cfg.Model.CatchupCopyCPU * float64(time.Second)))
	pc.qp.PostWrite(p, pc.rkey, 0, q.journal[:q.journalLen], recCtx(pc, lg.seq, true))
}
