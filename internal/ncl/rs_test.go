package ncl

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestRSRoundTripAllErasurePatterns(t *testing.T) {
	shapes := [][2]int{{2, 1}, {4, 2}, {3, 3}, {8, 4}, {10, 4}}
	for _, sh := range shapes {
		k, m := sh[0], sh[1]
		rs := newRS(k, m)
		rng := rand.New(rand.NewSource(int64(k*100 + m)))
		cellLen := 37
		orig := make([][]byte, k+m)
		for i := range orig {
			orig[i] = make([]byte, cellLen)
			if i < k {
				rng.Read(orig[i])
			}
		}
		rs.encode(orig)

		// Every way of erasing exactly m cells must reconstruct.
		n := k + m
		for mask := 0; mask < 1<<n; mask++ {
			erased := 0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					erased++
				}
			}
			if erased != m {
				continue
			}
			cells := make([][]byte, n)
			present := make([]bool, n)
			for i := range cells {
				cells[i] = make([]byte, cellLen)
				if mask&(1<<i) == 0 {
					copy(cells[i], orig[i])
					present[i] = true
				}
			}
			if err := rs.reconstruct(cells, present); err != nil {
				t.Fatalf("rs(%d,%d) mask %b: %v", k, m, mask, err)
			}
			for i := 0; i < n; i++ {
				if !bytes.Equal(cells[i], orig[i]) {
					t.Fatalf("rs(%d,%d) mask %b: cell %d differs", k, m, mask, i)
				}
			}
		}
	}
}

func TestRSTooFewCells(t *testing.T) {
	rs := newRS(4, 2)
	cells := make([][]byte, 6)
	present := make([]bool, 6)
	for i := range cells {
		cells[i] = make([]byte, 8)
	}
	present[0], present[1], present[2] = true, true, true // only 3 of 4 needed
	if err := rs.reconstruct(cells, present); err == nil {
		t.Fatal("reconstruct with k-1 cells succeeded")
	}
}

func TestRSEncodeDeterministic(t *testing.T) {
	rs := newRS(4, 2)
	data := []byte("the quick brown fox jumps over th") // not cell-aligned on purpose
	mk := func() [][]byte {
		cells := make([][]byte, 6)
		for i := range cells {
			cells[i] = make([]byte, 9)
		}
		for i := 0; i < 4; i++ {
			lo := i * 9
			hi := lo + 9
			if hi > len(data) {
				hi = len(data)
			}
			if lo < len(data) {
				copy(cells[i], data[lo:hi])
			}
		}
		rs.encode(cells)
		return cells
	}
	a, b := mk(), mk()
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("cell %d not deterministic", i)
		}
	}
	// A second rsCode instance with the same shape produces identical parity
	// (recovery re-encodes survivors' parity and compares byte ranges).
	rs2 := newRS(4, 2)
	c := make([][]byte, 6)
	for i := range c {
		c[i] = append([]byte(nil), a[i]...)
	}
	for i := 4; i < 6; i++ {
		for j := range c[i] {
			c[i][j] = 0
		}
	}
	rs2.encode(c)
	for i := 4; i < 6; i++ {
		if !bytes.Equal(c[i], a[i]) {
			t.Fatalf("parity %d differs across instances", i)
		}
	}
}

func TestGFFieldAxioms(t *testing.T) {
	// Spot-check inverses over the whole field: x * inv(x) == 1.
	for x := 1; x < 256; x++ {
		if got := gfMul(byte(x), gfInv(byte(x))); got != 1 {
			t.Fatalf("x=%d: x*inv(x) = %d", x, got)
		}
	}
}
