package ncl

// mirrorPolicy is the paper's replication protocol (§4.4): every peer holds
// a full copy of the region — a 16-byte header (sequence number, length)
// followed by the log content. Each record is a data write followed by a
// header write, ordered by the QP's send queue, so a peer whose header
// shows sequence s holds every write up to s. Acked at f+1 of 2f+1.
//
// This implementation is the regression anchor: it is a verbatim move of
// the pre-policy-seam code paths, so mirror traces stay deterministic per
// (profile, seed) and cost-identical to the original.

import (
	"encoding/binary"
	"fmt"
	"time"

	"splitft/internal/peer"
	"splitft/internal/simnet"
	"splitft/internal/wire"
)

type mirrorPolicy struct {
	spec PolicySpec

	// Recovery state shared between the read and sync phases: each
	// survivor's advertised header, and the peer whose region was
	// prefetched.
	hdrLens      map[*peerConn]int64
	recoveryPeer *peerConn
}

func (m *mirrorPolicy) Spec() PolicySpec { return m.spec }

func (m *mirrorPolicy) Place(capacity int64) Placement {
	return Placement{
		Slots:      m.spec.Slots(),
		SlotRegion: HeaderSize + capacity,
		AckNeed:    m.spec.F + 1,
		MinAlive:   m.spec.F + 1,
	}
}

func (m *mirrorPolicy) MemoryFactor(capacity int64) float64 {
	return float64(int64(m.spec.Slots())*(HeaderSize+capacity)) / float64(capacity)
}

// putHeader fills h (HeaderSize bytes) with the current seq/length. Callers
// pass a stack array: PostWrite copies the payload at post time, so the
// header never escapes and the record hot path stays allocation-free.
func (lg *Log) putHeader(h []byte) {
	binary.LittleEndian.PutUint64(h[0:8], lg.seq)
	binary.LittleEndian.PutUint64(h[8:16], uint64(lg.length))
}

// Append posts a data write followed by a header write to every active
// peer (§4.4). Caller holds lg.mu with lg.buf/length/seq already updated.
func (m *mirrorPolicy) Append(p *simnet.Proc, lg *Log, off int64, data []byte) error {
	seq := lg.seq
	var hdr [HeaderSize]byte
	lg.putHeader(hdr[:])
	for _, pc := range lg.peers {
		if pc != nil && pc.active && !pc.failed {
			pc.qp.PostWrite(p, pc.rkey, HeaderSize+int(off), data, recCtx(pc, seq, false))
			pc.qp.PostWrite(p, pc.rkey, 0, hdr[:], recCtx(pc, seq, true))
		}
	}
	return nil
}

// Recover is the read phase of §4.5.1 steps 3-4: read the header from every
// survivor, pick the maximum sequence number (quorum intersection
// guarantees it covers every acknowledged write), and prefetch the full
// region from that peer.
func (m *mirrorPolicy) Recover(p *simnet.Proc, lg *Log, alive []*peerConn) error {
	type hdrInfo struct {
		seq    uint64
		length int64
	}
	hdrs := make(map[*peerConn]hdrInfo)
	m.hdrLens = make(map[*peerConn]int64)
	for _, pc := range alive {
		hbuf := make([]byte, HeaderSize)
		if err := lg.readInto(p, pc, 0, hbuf); err != nil {
			continue
		}
		h := hdrInfo{
			seq:    binary.LittleEndian.Uint64(hbuf[0:8]),
			length: int64(binary.LittleEndian.Uint64(hbuf[8:16])),
		}
		hdrs[pc] = h
		m.hdrLens[pc] = h.length
	}
	if len(hdrs) < lg.place.MinAlive {
		return fmt.Errorf("%w: %d header responses", ErrUnavailable, len(hdrs))
	}
	var recoveryPeer *peerConn
	for _, pc := range alive { // deterministic order; first max wins
		h, ok := hdrs[pc]
		if !ok {
			continue
		}
		if recoveryPeer == nil || h.seq > hdrs[recoveryPeer].seq {
			recoveryPeer = pc
		}
	}
	maxHdr := hdrs[recoveryPeer]
	if maxHdr.length > 0 {
		if err := lg.readInto(p, recoveryPeer, HeaderSize, lg.buf[HeaderSize:HeaderSize+maxHdr.length]); err != nil {
			return fmt.Errorf("ncl: recovery read from %s: %w", recoveryPeer.name, err)
		}
	}
	lg.seq = maxHdr.seq
	lg.length = maxHdr.length
	binary.LittleEndian.PutUint64(lg.buf[0:8], lg.seq)
	binary.LittleEndian.PutUint64(lg.buf[8:16], uint64(lg.length))
	m.recoveryPeer = recoveryPeer
	return nil
}

// Resync is the sync phase of §4.5.1 step 5: catch every other responsive
// peer up to the recovered content. Circular (and by default all) logs get
// the whole region via staging + atomic switch; logs the application
// declared append-only get the cheaper tail shipping into their existing
// regions. Peers that fail here are marked for replacement.
func (m *mirrorPolicy) Resync(p *simnet.Proc, lg *Log, alive []*peerConn) error {
	for _, pc := range alive {
		if pc == m.recoveryPeer {
			pc.completedSeq = lg.seq
			pc.active = true
			continue
		}
		var err error
		if lg.appendOnly {
			err = lg.catchUpTail(p, pc, m.hdrLens[pc])
		} else {
			err = lg.catchUpViaStaging(p, pc, lg.epoch)
		}
		if err != nil {
			// Treat as freshly failed: the caller replaces it.
			pc.failed = true
			continue
		}
		pc.completedSeq = lg.seq
		pc.active = true
	}
	return nil
}

func (m *mirrorPolicy) Repair(p *simnet.Proc, lg *Log, qp qpLike, rkey uint64, slot int, lock bool) error {
	return lg.bulkTransfer(p, qp, rkey, lock)
}

// Snapshot posts the current region content and header to pc as ordinary
// record WRs, so the poller advances pc.completedSeq to the current
// sequence number when they complete. Caller holds lg.mu. The client-side
// copy briefly occupies the writer — the Fig 12 "blip".
func (m *mirrorPolicy) Snapshot(p *simnet.Proc, lg *Log, pc *peerConn) {
	if lg.length > 0 {
		p.Sleep(time.Duration(float64(lg.length) / lg.lib.cfg.Model.CatchupCopyCPU * float64(time.Second)))
		pc.qp.PostWrite(p, pc.rkey, HeaderSize, lg.buf[HeaderSize:HeaderSize+lg.length],
			recCtx(pc, lg.seq, false))
	}
	var hdr [HeaderSize]byte
	lg.putHeader(hdr[:])
	pc.qp.PostWrite(p, pc.rkey, 0, hdr[:], recCtx(pc, lg.seq, true))
}

// catchUpViaStaging copies the recovered content to a fresh staging region
// on pc and atomically switches the peer's mr-map to it (§4.5.1). The
// switch also covers circular logs, where shipping a log tail would be
// incorrect (Fig 7ii).
func (lg *Log) catchUpViaStaging(p *simnet.Proc, pc *peerConn, epoch int64) error {
	l := lg.lib
	stg, err := wire.Call[peer.AllocStagingResp](p, l.sim.Net(), l.node, peer.Addr(pc.name), peer.AllocStagingReq{
		App: l.appID, File: lg.name, Size: lg.regionSize(), Epoch: epoch,
	})
	if err != nil {
		return err
	}
	if err := lg.bulkTransfer(p, pc.qp, stg.RKey, false); err != nil {
		return err
	}
	if _, err := wire.Call[wire.Ack](p, l.sim.Net(), l.node, peer.Addr(pc.name), peer.CommitSwitchReq{
		App: l.appID, File: lg.name, StagingID: stg.StagingID, Epoch: epoch,
	}); err != nil {
		return err
	}
	pc.rkey = stg.RKey
	return nil
}

// catchUpTail ships only the missing bytes at the end of an append-only
// log into the lagging peer's EXISTING region, followed by a header write.
// Safe because in-order replication makes a lagging peer's prefix (up to
// its advertised length) identical to the recovered content; bytes beyond
// it are at worst a torn, unacknowledged record that the new header caps.
func (lg *Log) catchUpTail(p *simnet.Proc, pc *peerConn, peerLen int64) error {
	if peerLen > lg.length {
		// A peer cannot advertise more than the recovered maximum unless
		// its header is corrupt; fall back to the full copy path.
		return fmt.Errorf("ncl: peer %s advertises %d > recovered %d", pc.name, peerLen, lg.length)
	}
	id, done := lg.newBulkWaiter()
	defer delete(lg.bulks, id)
	n := 1
	if peerLen < lg.length {
		pc.qp.PostWrite(p, pc.rkey, HeaderSize+int(peerLen),
			lg.buf[HeaderSize+peerLen:HeaderSize+lg.length], bulkCtx(id))
		n++
	}
	var hdr [HeaderSize]byte
	lg.putHeader(hdr[:])
	pc.qp.PostWrite(p, pc.rkey, 0, hdr[:], bulkCtx(id))
	for i := 0; i < n; i++ {
		err, ok := done.Recv(p)
		if !ok {
			return ErrReleased
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// bulkTransfer writes the current log snapshot (data then header) to a
// remote region and waits for both completions. With lock=true the snapshot
// is cut under lg.mu; PostWrite copies payloads into staging buffers at post
// time, so only the posting happens under the lock — the transfer itself
// proceeds unlocked and writes continue meanwhile.
func (lg *Log) bulkTransfer(p *simnet.Proc, qp qpLike, rkey uint64, lock bool) error {
	id, done := lg.newBulkWaiter()
	defer delete(lg.bulks, id)
	if lock {
		lg.mu.Lock(p)
	}
	n := 1
	if lg.length > 0 {
		qp.PostWrite(p, rkey, HeaderSize, lg.buf[HeaderSize:HeaderSize+lg.length], bulkCtx(id))
		n++
	}
	var hdr [HeaderSize]byte
	lg.putHeader(hdr[:])
	qp.PostWrite(p, rkey, 0, hdr[:], bulkCtx(id))
	if lock {
		lg.mu.Unlock(p)
	}
	for i := 0; i < n; i++ {
		err, ok := done.Recv(p)
		if !ok {
			return ErrReleased
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// qpLike lets bulk writes serve both live QPs and recovery-time QPs.
type qpLike interface {
	PostWrite(p *simnet.Proc, rkey uint64, offset int, data []byte, ctx uint64) uint64
}
