package ncl

import (
	"fmt"
	"time"

	"splitft/internal/peer"
	"splitft/internal/rdma"
	"splitft/internal/simnet"
	"splitft/internal/trace"
	"splitft/internal/wire"
)

// This file implements application recovery (§4.5.1): after a crash the
// application (possibly on a different machine) reconstructs each ncl
// file's most up-to-date content from the log peers recorded in the ap-map:
//
//  1. Fetch the ap-map entry from the controller ("get peer"). The entry
//     carries the replication policy the file was written under, so a
//     recovering instance — even one configured with a different default —
//     rebuilds the file correctly.
//  2. Contact each peer; a peer that crashed since the allocation has lost
//     its mr-map and rejects the lookup ("connect").
//  3. Read phase ("rdma read"): the policy reconstructs the log content.
//     Mirror reads headers from >= f+1 peers and prefetches the maximum's
//     region; ec reads and RS-decodes >= k fragment logs; quorum replays
//     the longest of >= f+1 journals.
//  4. Sync phase ("sync peer"): the policy catches every responsive
//     survivor up to the recovered content, then unresponsive peers are
//     replaced entirely and the membership republished under an
//     incremented epoch.
//
// Only after (4) does Recover return data to the application: returning
// earlier could externalize state that a subsequent failure un-recovers.

// Recovery time breaks down as Fig 11(b) does via trace spans: Recover emits
// an "ncl"/"recover" span with child spans "recover.getpeer" (controller
// ap-map fetch), "recover.connect" (peer lookups + QP connects),
// "recover.rdmaread" (the policy's read phase) and "recover.syncpeer" (the
// policy's sync phase + replacements). Attach a trace.Collector to the Sim
// to observe them.

// Exists reports whether the application has an ncl file of this name
// recorded in the ap-map.
func (l *Lib) Exists(p *simnet.Proc, name string) (bool, error) {
	_, _, found, err := l.ctrl.GetAppFile(p, l.appID, name)
	return found, err
}

// Recover rebuilds the named ncl file from its log peers and returns the
// open log with its recovered content, ready for further records.
func (l *Lib) Recover(p *simnet.Proc, name string) (*Log, error) {
	rsp := p.StartSpan("ncl", "recover", trace.Str("file", name))
	defer p.EndSpan(rsp)

	// (1) ap-map fetch.
	sp := p.StartSpan("ncl", "recover.getpeer")
	entry, ver, found, err := l.ctrl.GetAppFile(p, l.appID, name)
	p.EndSpan(sp)
	if err != nil {
		return nil, fmt.Errorf("ncl: recover %s: %w", name, err)
	}
	if !found {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}

	// The entry's policy is authoritative — not this instance's config.
	// Entries written before the policy field carry an empty string and a
	// region-derived capacity: reconstruct mirror with f from the group size.
	spec, err := ParsePolicy(entry.Policy)
	if err != nil {
		return nil, fmt.Errorf("ncl: recover %s: %w", name, err)
	}
	if entry.Policy == "" && len(entry.Peers) > 0 {
		spec.F = (len(entry.Peers) - 1) / 2
		if spec.F < 1 {
			spec.F = 1
		}
	}
	capacity := entry.Capacity
	if capacity == 0 {
		capacity = entry.RegionSize - HeaderSize
	}

	lg := &Log{
		lib:        l,
		name:       name,
		capacity:   capacity,
		buf:        make([]byte, HeaderSize+capacity),
		epoch:      entry.Epoch,
		apVersion:  ver,
		appendOnly: entry.AppendOnly,
		cq:         rdma.NewCQ(l.sim),
		repairCh:   simnet.NewChan[struct{}](l.sim),
		bulks:      make(map[uint64]*simnet.Chan[error]),
	}
	lg.ackCond = simnet.NewCond(&lg.mu)
	lg.policy = newPolicy(spec, capacity)
	lg.place = lg.policy.Place(capacity)
	// The poller runs from here so completion routing works during recovery.
	lg.start(p)

	// (2) Contact peers: mr-map lookup + QP connect. Membership slots are
	// positional (for ec, slot i holds fragment i), so lg.peers keeps the
	// entry's order with nil holes for unreachable members.
	sp = p.StartSpan("ncl", "recover.connect")
	var alive []*peerConn
	lg.peers = make([]*peerConn, len(entry.Peers))
	for i, pname := range entry.Peers {
		look, err := wire.CallTimeout[peer.LookupResp](p, l.sim.Net(), l.node, peer.Addr(pname),
			peer.LookupReq{App: l.appID, File: name}, 20*time.Millisecond)
		if err != nil {
			continue
		}
		qp, err := l.nic.Connect(p, pname, lg.cq)
		if err != nil {
			continue
		}
		pc := &peerConn{name: pname, qp: qp, rkey: look.RKey, slot: i}
		lg.registerConn(pc)
		alive = append(alive, pc)
		lg.peers[i] = pc
	}
	p.EndSpan(sp)
	if len(alive) < lg.place.MinAlive {
		return nil, fmt.Errorf("%w: %d of %d peers reachable (need %d)",
			ErrUnavailable, len(alive), len(entry.Peers), lg.place.MinAlive)
	}

	// (3) Read phase: the policy reconstructs buf/length/seq from the
	// reachable members.
	sp = p.StartSpan("ncl", "recover.rdmaread")
	if err := lg.policy.Recover(p, lg, alive); err != nil {
		p.EndSpan(sp)
		return nil, err
	}
	p.EndSpan(sp)

	// (4) Sync phase: catch survivors up, then replace the rest. The ec and
	// quorum policies always republish under a bumped epoch even with a full
	// house — post-recovery frames must outrank any stale frames beyond the
	// recovered prefix on generation.
	sp = p.StartSpan("ncl", "recover.syncpeer")
	if err := lg.policy.Resync(p, lg, alive); err != nil {
		p.EndSpan(sp)
		return nil, err
	}
	needReplace := 0
	for _, pc := range lg.peers {
		if pc == nil || pc.failed {
			needReplace++
		}
	}
	if needReplace > 0 || spec.Kind != PolicyMirror {
		if err := lg.replaceAtRecovery(p, entry.Peers, needReplace); err != nil {
			p.EndSpan(sp)
			return nil, err
		}
	}
	p.EndSpan(sp)

	l.logs[name] = lg
	return lg, nil
}

// readInto issues a 1-sided RDMA read from pc's region into buf and waits.
func (lg *Log) readInto(p *simnet.Proc, pc *peerConn, off int, buf []byte) error {
	id, done := lg.newBulkWaiter()
	defer delete(lg.bulks, id)
	pc.qp.PostRead(p, pc.rkey, off, buf, bulkCtx(id))
	err, ok := done.Recv(p)
	if !ok {
		return ErrReleased
	}
	return err
}

// replaceAtRecovery fills the missing membership slots with fresh,
// caught-up peers and publishes the membership under an incremented epoch.
// Slots are preserved (ec fragment i must land in slot i); with zero
// replacements this is a pure epoch bump (the ec/quorum generation fence).
func (lg *Log) replaceAtRecovery(p *simnet.Proc, oldPeers []string, need int) error {
	l := lg.lib
	newEpoch := lg.epoch + 1
	exclude := append([]string(nil), oldPeers...)
	for slot, pc := range lg.peers {
		if pc != nil && !pc.failed {
			continue
		}
		if pc != nil {
			pc.qp.Close(p)
			lg.peers[slot] = nil
		}
		npc, err := l.allocatePeer(p, lg, exclude, newEpoch)
		if err != nil {
			return fmt.Errorf("ncl: recovery replacement: %w", err)
		}
		exclude = append(exclude, npc.name)
		npc.slot = slot
		if err := lg.policy.Repair(p, lg, npc.qp, npc.rkey, slot, false); err != nil {
			return fmt.Errorf("ncl: recovery catch-up of %s: %w", npc.name, err)
		}
		npc.completedSeq = lg.seq
		npc.active = true
		lg.peers[slot] = npc
	}
	ver, err := l.ctrl.SetAppFile(p, l.appID, lg.name, lg.fileEntry(newEpoch), lg.apVersion)
	if err != nil {
		return fmt.Errorf("ncl: recovery ap-map update: %w", err)
	}
	lg.apVersion = ver
	lg.epoch = newEpoch
	return nil
}
