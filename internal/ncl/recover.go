package ncl

import (
	"encoding/binary"
	"fmt"
	"time"

	"splitft/internal/controller"
	"splitft/internal/peer"
	"splitft/internal/rdma"
	"splitft/internal/simnet"
	"splitft/internal/trace"
	"splitft/internal/wire"
)

// This file implements application recovery (§4.5.1): after a crash the
// application (possibly on a different machine) reconstructs each ncl
// file's most up-to-date content from the log peers recorded in the ap-map:
//
//  1. Fetch the ap-map entry from the controller ("get peer").
//  2. Contact each peer; a peer that crashed since the allocation has lost
//     its mr-map and rejects the lookup ("connect").
//  3. Read the header sequence number from at least f+1 peers and pick the
//     maximum: quorum intersection guarantees it covers every acknowledged
//     write ("rdma read" of the headers).
//  4. Prefetch the full region from the peer holding the maximum — the
//     recovery peer ("rdma read").
//  5. Catch every other responsive peer up to the recovered content by
//     writing it to a fresh staging region and atomically switching the
//     peer's mr-map entry — required even for equal sequence numbers, and
//     the only safe option for circular logs (Fig 7 i/ii) ("sync peer").
//  6. Replace unresponsive peers entirely, then publish the new membership
//     under an incremented epoch.
//
// Only after (5)-(6) does Recover return data to the application: returning
// earlier could externalize state that a subsequent failure un-recovers.

// Recovery time breaks down as Fig 11(b) does via trace spans: Recover emits
// an "ncl"/"recover" span with child spans "recover.getpeer" (controller
// ap-map fetch), "recover.connect" (peer lookups + QP connects),
// "recover.rdmaread" (header reads + region prefetch) and "recover.syncpeer"
// (catch-up of lagging peers + replacements). Attach a trace.Collector to
// the Sim to observe them.

// Exists reports whether the application has an ncl file of this name
// recorded in the ap-map.
func (l *Lib) Exists(p *simnet.Proc, name string) (bool, error) {
	_, _, found, err := l.ctrl.GetAppFile(p, l.appID, name)
	return found, err
}

// Recover rebuilds the named ncl file from its log peers and returns the
// open log with its recovered content, ready for further records.
func (l *Lib) Recover(p *simnet.Proc, name string) (*Log, error) {
	rsp := p.StartSpan("ncl", "recover", trace.Str("file", name))
	defer p.EndSpan(rsp)

	// (1) ap-map fetch.
	sp := p.StartSpan("ncl", "recover.getpeer")
	entry, ver, found, err := l.ctrl.GetAppFile(p, l.appID, name)
	p.EndSpan(sp)
	if err != nil {
		return nil, fmt.Errorf("ncl: recover %s: %w", name, err)
	}
	if !found {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}

	lg := &Log{
		lib:        l,
		name:       name,
		capacity:   entry.RegionSize - HeaderSize,
		buf:        make([]byte, entry.RegionSize),
		epoch:      entry.Epoch,
		apVersion:  ver,
		appendOnly: entry.AppendOnly,
		cq:         rdma.NewCQ(l.sim),
		repairCh:   simnet.NewChan[struct{}](l.sim),
		bulks:      make(map[uint64]*simnet.Chan[error]),
	}
	lg.ackCond = simnet.NewCond(&lg.mu)
	// The poller runs from here so completion routing works during recovery.
	lg.start(p)

	// (2) Contact peers: mr-map lookup + QP connect.
	sp = p.StartSpan("ncl", "recover.connect")
	var alive []*peerConn
	var missing []int // slots in entry.Peers that need replacement
	for i, pname := range entry.Peers {
		look, err := wire.CallTimeout[peer.LookupResp](p, l.sim.Net(), l.node, peer.Addr(pname),
			peer.LookupReq{App: l.appID, File: name}, 20*time.Millisecond)
		if err != nil {
			missing = append(missing, i)
			continue
		}
		qp, err := l.nic.Connect(p, pname, lg.cq)
		if err != nil {
			missing = append(missing, i)
			continue
		}
		pc := &peerConn{name: pname, qp: qp, rkey: look.RKey}
		lg.registerConn(pc)
		alive = append(alive, pc)
		lg.peers = append(lg.peers, pc) // placed; reordered below
	}
	p.EndSpan(sp)
	if len(alive) < l.cfg.F+1 {
		return nil, fmt.Errorf("%w: %d of %d peers reachable", ErrUnavailable, len(alive), len(entry.Peers))
	}

	// (3) Header reads: the maximum sequence number among >= f+1 responses
	// is guaranteed to cover every acknowledged write.
	sp = p.StartSpan("ncl", "recover.rdmaread")
	type hdrInfo struct {
		seq    uint64
		length int64
	}
	hdrs := make(map[*peerConn]hdrInfo)
	for _, pc := range alive {
		hbuf := make([]byte, HeaderSize)
		if err := lg.readInto(p, pc, 0, hbuf); err != nil {
			continue
		}
		hdrs[pc] = hdrInfo{
			seq:    binary.LittleEndian.Uint64(hbuf[0:8]),
			length: int64(binary.LittleEndian.Uint64(hbuf[8:16])),
		}
	}
	if len(hdrs) < l.cfg.F+1 {
		p.EndSpan(sp)
		return nil, fmt.Errorf("%w: %d header responses", ErrUnavailable, len(hdrs))
	}
	var recoveryPeer *peerConn
	for _, pc := range alive { // deterministic order; first max wins
		h, ok := hdrs[pc]
		if !ok {
			continue
		}
		if recoveryPeer == nil || h.seq > hdrs[recoveryPeer].seq {
			recoveryPeer = pc
		}
	}
	maxHdr := hdrs[recoveryPeer]

	// (4) Prefetch the full region from the recovery peer.
	if maxHdr.length > 0 {
		if err := lg.readInto(p, recoveryPeer, HeaderSize, lg.buf[HeaderSize:HeaderSize+maxHdr.length]); err != nil {
			p.EndSpan(sp)
			return nil, fmt.Errorf("ncl: recovery read from %s: %w", recoveryPeer.name, err)
		}
	}
	lg.seq = maxHdr.seq
	lg.length = maxHdr.length
	binary.LittleEndian.PutUint64(lg.buf[0:8], lg.seq)
	binary.LittleEndian.PutUint64(lg.buf[8:16], uint64(lg.length))
	p.EndSpan(sp)

	// (5) Catch up every other responsive peer. Circular (and by-default
	// all) logs get the whole region via staging + atomic switch; logs the
	// application declared append-only get the cheaper tail shipping into
	// their existing regions (§4.5.1's optimization).
	sp = p.StartSpan("ncl", "recover.syncpeer")
	for _, pc := range alive {
		if pc == recoveryPeer {
			pc.completedSeq = lg.seq
			pc.active = true
			continue
		}
		var err error
		if lg.appendOnly {
			err = lg.catchUpTail(p, pc, hdrs[pc].length)
		} else {
			err = lg.catchUpViaStaging(p, pc, entry.Epoch)
		}
		if err != nil {
			// Treat as freshly failed: replace below.
			pc.failed = true
			continue
		}
		pc.completedSeq = lg.seq
		pc.active = true
	}
	// (6) Replace unresponsive (or just-failed) peers so the fault-tolerance
	// level is restored before the application externalizes anything.
	needReplace := len(missing)
	for _, pc := range alive {
		if pc.failed {
			needReplace++
		}
	}
	if needReplace > 0 {
		if err := lg.replaceAtRecovery(p, entry, needReplace); err != nil {
			p.EndSpan(sp)
			return nil, err
		}
	}
	p.EndSpan(sp)

	l.logs[name] = lg
	return lg, nil
}

// readInto issues a 1-sided RDMA read from pc's region into buf and waits.
func (lg *Log) readInto(p *simnet.Proc, pc *peerConn, off int, buf []byte) error {
	id, done := lg.newBulkWaiter()
	defer delete(lg.bulks, id)
	pc.qp.PostRead(p, pc.rkey, off, buf, bulkCtx(id))
	err, ok := done.Recv(p)
	if !ok {
		return ErrReleased
	}
	return err
}

// catchUpViaStaging copies the recovered content to a fresh staging region
// on pc and atomically switches the peer's mr-map to it (§4.5.1). The
// switch also covers circular logs, where shipping a log tail would be
// incorrect (Fig 7ii).
func (lg *Log) catchUpViaStaging(p *simnet.Proc, pc *peerConn, epoch int64) error {
	l := lg.lib
	stg, err := wire.Call[peer.AllocStagingResp](p, l.sim.Net(), l.node, peer.Addr(pc.name), peer.AllocStagingReq{
		App: l.appID, File: lg.name, Size: lg.regionSize(), Epoch: epoch,
	})
	if err != nil {
		return err
	}
	if err := lg.bulkTransfer(p, pc.qp, stg.RKey, false); err != nil {
		return err
	}
	if _, err := wire.Call[wire.Ack](p, l.sim.Net(), l.node, peer.Addr(pc.name), peer.CommitSwitchReq{
		App: l.appID, File: lg.name, StagingID: stg.StagingID, Epoch: epoch,
	}); err != nil {
		return err
	}
	pc.rkey = stg.RKey
	return nil
}

// catchUpTail ships only the missing bytes at the end of an append-only
// log into the lagging peer's EXISTING region, followed by a header write.
// Safe because in-order replication makes a lagging peer's prefix (up to
// its advertised length) identical to the recovered content; bytes beyond
// it are at worst a torn, unacknowledged record that the new header caps.
func (lg *Log) catchUpTail(p *simnet.Proc, pc *peerConn, peerLen int64) error {
	if peerLen > lg.length {
		// A peer cannot advertise more than the recovered maximum unless
		// its header is corrupt; fall back to the full copy path.
		return fmt.Errorf("ncl: peer %s advertises %d > recovered %d", pc.name, peerLen, lg.length)
	}
	id, done := lg.newBulkWaiter()
	defer delete(lg.bulks, id)
	n := 1
	if peerLen < lg.length {
		pc.qp.PostWrite(p, pc.rkey, HeaderSize+int(peerLen),
			lg.buf[HeaderSize+peerLen:HeaderSize+lg.length], bulkCtx(id))
		n++
	}
	var hdr [HeaderSize]byte
	lg.putHeader(hdr[:])
	pc.qp.PostWrite(p, pc.rkey, 0, hdr[:], bulkCtx(id))
	for i := 0; i < n; i++ {
		err, ok := done.Recv(p)
		if !ok {
			return ErrReleased
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// replaceAtRecovery fills the missing peer slots with fresh, caught-up
// peers and publishes the new membership under an incremented epoch.
func (lg *Log) replaceAtRecovery(p *simnet.Proc, entry controller.FileEntry, need int) error {
	l := lg.lib
	newEpoch := lg.epoch + 1
	exclude := append([]string(nil), entry.Peers...)
	// Drop failed conns from the peer list.
	kept := lg.peers[:0]
	for _, pc := range lg.peers {
		if pc.failed {
			pc.qp.Close(p)
			continue
		}
		kept = append(kept, pc)
	}
	lg.peers = kept
	for i := 0; i < need; i++ {
		pc, err := l.allocatePeer(p, lg, exclude, newEpoch)
		if err != nil {
			return fmt.Errorf("ncl: recovery replacement: %w", err)
		}
		exclude = append(exclude, pc.name)
		if err := lg.bulkTransfer(p, pc.qp, pc.rkey, false); err != nil {
			return fmt.Errorf("ncl: recovery catch-up of %s: %w", pc.name, err)
		}
		pc.completedSeq = lg.seq
		pc.active = true
		lg.peers = append(lg.peers, pc)
	}
	ver, err := l.ctrl.SetAppFile(p, l.appID, lg.name, controller.FileEntry{
		Peers: lg.peerNames(), Epoch: newEpoch, RegionSize: lg.regionSize(),
	}, lg.apVersion)
	if err != nil {
		return fmt.Errorf("ncl: recovery ap-map update: %w", err)
	}
	lg.apVersion = ver
	lg.epoch = newEpoch
	return nil
}
