package ncl

// ecPolicy stripes each record across k+m peers with systematic
// Reed-Solomon coding (Hydra-style resilient remote memory): the record is
// split into k data cells (the last zero-padded), m parity cells are
// computed client-side, and each slot receives one self-describing frame
// per record — header plus its cell. Any k surviving slots reconstruct
// every record, so m simultaneous peer failures lose nothing at
// (k+m)/k-of-capacity memory instead of mirror's (2f+1)x.
//
// Commit rule: a record is acknowledged only when ALL k+m slots completed
// its frame (AckNeed = k+m). This is what makes the recovery cut safe with
// only k readable regions: every acknowledged record's frame is on every
// slot, so even the k-th highest surviving last-sequence covers all acks.
// The cost is that a single slow/failed peer stalls writes until it is
// replaced — the mirror policy keeps the paper's f+1 ack rule instead.
//
// Each slot region is an append-only frame log. There is no in-place
// compaction: rewriting a region's prefix while some slots have received
// the rewrite and others have not would split the reconstruction quorum
// across two incompatible representations, and a client crash in that
// window could lose acknowledged data with only m peer failures. Instead
// the region carries a slack budget (~capacity/64 beyond the cell share)
// for frame headers, and Append fails with ErrRegionFull when the budget
// is exhausted — the application's checkpoint/rotate path (Release + Open)
// resets it. Records of >= 2 KiB never exhaust the budget before the
// nominal capacity; logs of smaller records or heavy in-place overwrite
// churn should use mirror.

import (
	"fmt"
	"time"

	"splitft/internal/simnet"
)

type ecPolicy struct {
	spec     PolicySpec
	rs       *rsCode
	capacity int64
	shardCap int64

	// shards holds the client-side copy of every slot's frame log; posting,
	// repair and snapshot all read from it, so the append path allocates
	// nothing.
	shards   [][]byte
	shardLen int64
	cells    [][]byte // reusable per-frame cell views into shards
}

func newECPolicy(spec PolicySpec, capacity int64) *ecPolicy {
	e := &ecPolicy{
		spec:     spec,
		rs:       newRS(spec.K, spec.M),
		capacity: capacity,
		shardCap: ecShardCap(spec.K, capacity),
		cells:    make([][]byte, spec.K+spec.M),
	}
	e.shards = make([][]byte, spec.K+spec.M)
	for i := range e.shards {
		e.shards[i] = make([]byte, e.shardCap)
	}
	return e
}

// ecShardCap sizes one slot region: the slot's 1/k share of the capacity
// plus a frame-header slack budget (1/64th of capacity, floor 512 B). For
// ec(4,2) the total comes to ~1.59x the log capacity.
func ecShardCap(k int, capacity int64) int64 {
	cell := (capacity + int64(k) - 1) / int64(k)
	slack := capacity / 64
	if slack < 512 {
		slack = 512
	}
	return cell + slack
}

func (e *ecPolicy) Spec() PolicySpec { return e.spec }

func (e *ecPolicy) Place(capacity int64) Placement {
	return Placement{
		Slots:      e.spec.Slots(),
		SlotRegion: ecShardCap(e.spec.K, capacity),
		AckNeed:    e.spec.K + e.spec.M,
		MinAlive:   e.spec.K,
	}
}

func (e *ecPolicy) MemoryFactor(capacity int64) float64 {
	return float64(int64(e.spec.Slots())*ecShardCap(e.spec.K, capacity)) / float64(capacity)
}

// Append encodes the record into one frame per slot and posts a single WR
// per live slot. Caller holds lg.mu.
func (e *ecPolicy) Append(p *simnet.Proc, lg *Log, off int64, data []byte) error {
	length := int64(len(data))
	k := int64(e.spec.K)
	cell := (length + k - 1) / k
	fs := frameHdrSize + cell
	if e.shardLen+fs > e.shardCap {
		return fmt.Errorf("%w: ec frame budget exhausted (%d of %d shard bytes; checkpoint and reopen)",
			ErrRegionFull, e.shardLen, e.shardCap)
	}
	pos := e.shardLen
	// Data cells: slice the record across the k data slots, zero-padding
	// the tail of the last occupied cell and any wholly-empty cells.
	for i := 0; i < e.spec.K; i++ {
		dst := e.shards[i][pos+frameHdrSize : pos+frameHdrSize+cell]
		lo, hi := int64(i)*cell, int64(i+1)*cell
		if lo > length {
			lo = length
		}
		if hi > length {
			hi = length
		}
		n := copy(dst, data[lo:hi])
		for x := n; x < len(dst); x++ {
			dst[x] = 0
		}
	}
	for s := range e.cells {
		e.cells[s] = e.shards[s][pos+frameHdrSize : pos+frameHdrSize+cell]
	}
	e.rs.encode(e.cells)
	seq, gen := lg.seq, uint64(lg.epoch)
	for s := range e.shards {
		putFrame(e.shards[s][pos:pos+fs], seq, gen, off, length, cell)
		if s < len(lg.peers) {
			if pc := lg.peers[s]; pc != nil && pc.active && !pc.failed {
				pc.qp.PostWrite(p, pc.rkey, int(pos), e.shards[s][pos:pos+fs], recCtx(pc, seq, true))
			}
		}
	}
	e.shardLen = pos + fs
	// Client-side encode cost: one pass over the record at the modeled
	// GF(2^8) kernel bandwidth.
	if bw := lg.lib.cfg.Model.EncodeBandwidth; bw > 0 && length > 0 {
		p.Sleep(time.Duration(float64(length) / bw * float64(time.Second)))
	}
	return nil
}

// Recover reads every survivor's region, scans its frame log, and
// RS-decodes the stream cut at the k-th highest surviving sequence number.
// Because acks require all k+m slots, every surviving slot's last sequence
// is >= the highest acknowledged one, so any cut at or above the k-th
// highest covers all acks; cutting there (rather than the maximum)
// guarantees k cells per frame. Slots are pure append logs, so every scan
// is a prefix of the same global frame stream and frames at equal index
// agree on metadata.
func (e *ecPolicy) Recover(p *simnet.Proc, lg *Log, alive []*peerConn) error {
	type shardScan struct {
		pc     *peerConn
		frames []frame
		last   uint64
	}
	scans := make([]shardScan, 0, len(alive))
	for _, pc := range alive {
		buf := make([]byte, e.shardCap)
		if err := lg.readInto(p, pc, 0, buf); err != nil {
			pc.failed = true
			continue
		}
		fr := scanFrames(buf, e.capacity)
		var last uint64
		if len(fr) > 0 {
			last = fr[len(fr)-1].seq
		}
		scans = append(scans, shardScan{pc: pc, frames: fr, last: last})
	}
	if len(scans) < e.spec.K {
		return fmt.Errorf("%w: %d of %d fragments readable (need %d)",
			ErrUnavailable, len(scans), e.spec.Slots(), e.spec.K)
	}
	// Cut at the k-th highest last-sequence.
	lasts := make([]uint64, len(scans))
	for i, sc := range scans {
		lasts[i] = sc.last
	}
	for i := 1; i < len(lasts); i++ { // small n: insertion sort, descending
		for j := i; j > 0 && lasts[j] > lasts[j-1]; j-- {
			lasts[j], lasts[j-1] = lasts[j-1], lasts[j]
		}
	}
	cut := lasts[e.spec.K-1]

	// Reference frame list: any scan reaching the cut, truncated to it.
	var ref []frame
	for _, sc := range scans {
		if sc.last >= cut {
			ref = sc.frames
			break
		}
	}
	n := 0
	for n < len(ref) && ref[n].seq <= cut {
		n++
	}
	ref = ref[:n]

	// Decode frame by frame, applying records in order and rebuilding the
	// client-side shard logs (data cells from the stream, parity
	// re-encoded — identical to what survivors hold, by determinism of the
	// code).
	e.shardLen = 0
	record := make([]byte, 0, 64<<10)
	for fi, rf := range ref {
		cell := int64(len(rf.cell))
		pos := rf.pos
		present := make([]bool, e.spec.Slots())
		for s := range e.cells {
			e.cells[s] = e.shards[s][pos+frameHdrSize : pos+frameHdrSize+cell]
		}
		for _, sc := range scans {
			if fi >= len(sc.frames) {
				continue
			}
			f := sc.frames[fi]
			if f.seq != rf.seq || int64(len(f.cell)) != cell || f.pos != pos {
				return fmt.Errorf("ncl: ec fragment %s diverges at seq %d", sc.pc.name, rf.seq)
			}
			slot := sc.pc.slot
			copy(e.cells[slot], f.cell)
			present[slot] = true
		}
		if err := e.rs.reconstruct(e.cells, present); err != nil {
			return fmt.Errorf("ncl: ec decode at seq %d: %w", rf.seq, err)
		}
		// Reassemble and apply the record.
		record = record[:0]
		for i := 0; i < e.spec.K && int64(len(record)) < rf.len; i++ {
			take := rf.len - int64(len(record))
			if take > cell {
				take = cell
			}
			record = append(record, e.cells[i][:take]...)
		}
		copy(lg.buf[HeaderSize+rf.off:], record)
		if end := rf.off + rf.len; end > lg.length {
			lg.length = end
		}
		lg.seq = rf.seq
		// Stamp the frame headers over the rebuilt cells, preserving the
		// original generation.
		for s := range e.shards {
			putFrame(e.shards[s][pos:pos+rf.size], rf.seq, rf.gen, rf.off, rf.len, cell)
		}
		e.shardLen = pos + rf.size
	}
	return nil
}

// Resync rewrites each survivor's frame log up to the cut. Slots that
// already reached the cut hold an identical prefix (per-slot streams are
// prefixes of the global stream) and are skipped; slots that were ahead of
// the cut keep stale frames beyond it, which the next scan rejects because
// recovery always republishes under a bumped epoch and post-recovery
// frames outrank them on generation.
func (e *ecPolicy) Resync(p *simnet.Proc, lg *Log, alive []*peerConn) error {
	for _, pc := range alive {
		if pc.failed {
			continue
		}
		if err := e.Repair(p, lg, pc.qp, pc.rkey, pc.slot, false); err != nil {
			pc.failed = true
			continue
		}
		pc.completedSeq = lg.seq
		pc.active = true
	}
	return nil
}

func (e *ecPolicy) Repair(p *simnet.Proc, lg *Log, qp qpLike, rkey uint64, slot int, lock bool) error {
	id, done := lg.newBulkWaiter()
	defer delete(lg.bulks, id)
	if lock {
		lg.mu.Lock(p)
	}
	n := 0
	if e.shardLen > 0 {
		qp.PostWrite(p, rkey, 0, e.shards[slot][:e.shardLen], bulkCtx(id))
		n++
	}
	if lock {
		lg.mu.Unlock(p)
	}
	for i := 0; i < n; i++ {
		err, ok := done.Recv(p)
		if !ok {
			return ErrReleased
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (e *ecPolicy) Snapshot(p *simnet.Proc, lg *Log, pc *peerConn) {
	if e.shardLen == 0 {
		return
	}
	p.Sleep(time.Duration(float64(e.shardLen) / lg.lib.cfg.Model.CatchupCopyCPU * float64(time.Second)))
	pc.qp.PostWrite(p, pc.rkey, 0, e.shards[pc.slot][:e.shardLen], recCtx(pc, lg.seq, true))
}
