package ncl

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"splitft/internal/simnet"
)

// ---- Spec parsing and placement ----

func TestParsePolicyRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want PolicySpec
	}{
		{"", PolicySpec{Kind: PolicyMirror, F: 1}},
		{"mirror", PolicySpec{Kind: PolicyMirror, F: 1}},
		{"mirror:2", PolicySpec{Kind: PolicyMirror, F: 2}},
		{"ec:4,2", PolicySpec{Kind: PolicyEC, K: 4, M: 2}},
		{"ec:10,4", PolicySpec{Kind: PolicyEC, K: 10, M: 4}},
		{"quorum", PolicySpec{Kind: PolicyQuorum, F: 1}},
		{"swarm-quorum", PolicySpec{Kind: PolicyQuorum, F: 1}},
		{"quorum:3", PolicySpec{Kind: PolicyQuorum, F: 3}},
	}
	for _, tc := range cases {
		got, err := ParsePolicy(tc.in)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParsePolicy(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		back, err := ParsePolicy(got.String())
		if err != nil || back != got {
			t.Errorf("round trip %q -> %q -> %+v (%v)", tc.in, got.String(), back, err)
		}
	}
	for _, bad := range []string{"ec", "ec:1,2", "ec:4", "ec:4,0", "ec:12,8", "mirror:0", "mirror:9", "raid5", "quorum:x"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", bad)
		}
	}
}

func TestPlacementShapes(t *testing.T) {
	const capacity = 1 << 20
	cases := []struct {
		spec                     string
		slots, ackNeed, minAlive int
		tolerates                int
	}{
		{"mirror", 3, 2, 2, 1},
		{"mirror:2", 5, 3, 3, 2},
		{"ec:4,2", 6, 6, 4, 2},
		{"quorum", 3, 2, 2, 1},
	}
	for _, tc := range cases {
		spec, err := ParsePolicy(tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		pol := newPolicy(spec, capacity)
		pl := pol.Place(capacity)
		if pl.Slots != tc.slots || pl.AckNeed != tc.ackNeed || pl.MinAlive != tc.minAlive {
			t.Errorf("%s: placement %+v, want slots=%d ack=%d alive=%d",
				tc.spec, pl, tc.slots, tc.ackNeed, tc.minAlive)
		}
		if got := spec.Tolerates(); got != tc.tolerates {
			t.Errorf("%s: tolerates %d, want %d", tc.spec, got, tc.tolerates)
		}
		if int64(pl.Slots)*pl.SlotRegion < capacity {
			t.Errorf("%s: total remote bytes %d < capacity", tc.spec, int64(pl.Slots)*pl.SlotRegion)
		}
	}
}

// The issue's headline memory claim: ec(4,2) replicates a log at <= 1.6x its
// capacity where mirror costs ~3x, and the factor is exactly what the peer
// registry reserves (Slots x SlotRegion).
func TestMemoryFactors(t *testing.T) {
	const capacity = 64 << 20
	for _, tc := range []struct {
		spec   string
		lo, hi float64
	}{
		{"mirror", 2.99, 3.01},
		{"ec:4,2", 1.45, 1.60},
		{"quorum", 3.0, 3.45},
	} {
		spec, _ := ParsePolicy(tc.spec)
		pol := newPolicy(spec, capacity)
		got := pol.MemoryFactor(capacity)
		if got < tc.lo || got > tc.hi {
			t.Errorf("%s: memory factor %.3f outside [%.2f, %.2f]", tc.spec, got, tc.lo, tc.hi)
		}
		pl := pol.Place(capacity)
		reserved := float64(int64(pl.Slots)*pl.SlotRegion) / float64(capacity)
		if reserved != got {
			t.Errorf("%s: MemoryFactor %.4f != registry reservation %.4f", tc.spec, got, reserved)
		}
	}
}

// ---- Frame codec ----

func TestFrameScanStopsAtGarbage(t *testing.T) {
	buf := make([]byte, 4096)
	pos := int64(0)
	for i := 1; i <= 3; i++ {
		payload := bytes.Repeat([]byte{byte('a' + i)}, 10)
		copy(buf[pos+frameHdrSize:], payload)
		putFrame(buf[pos:pos+frameHdrSize+10], uint64(i), 1, int64((i-1)*10), 10, 10)
		pos += frameHdrSize + 10
	}
	fr := scanFrames(buf, 4096)
	if len(fr) != 3 {
		t.Fatalf("scanned %d frames, want 3", len(fr))
	}
	for i, f := range fr {
		if f.seq != uint64(i+1) || f.len != 10 || f.off != int64(i*10) {
			t.Fatalf("frame %d = %+v", i, f)
		}
	}
	// Corrupt the second frame's payload: the scan must stop after frame 1.
	buf[frameHdrSize+10+frameHdrSize+3] ^= 0xff
	if fr := scanFrames(buf, 4096); len(fr) != 1 {
		t.Fatalf("scan past corruption: %d frames", len(fr))
	}
}

func TestFrameScanRejectsStaleGeneration(t *testing.T) {
	// A frame log recovered under epoch e+1 with stale epoch-e bytes beyond
	// the recovered prefix: once an e+1 frame appears, a following e frame
	// (stale leftover) terminates the scan.
	buf := make([]byte, 4096)
	w := func(pos int64, seq, gen uint64) int64 {
		copy(buf[pos+frameHdrSize:], []byte("0123456789"))
		putFrame(buf[pos:pos+frameHdrSize+10], seq, gen, 0, 10, 10)
		return pos + frameHdrSize + 10
	}
	pos := w(0, 1, 1)
	pos = w(pos, 2, 2) // post-recovery write under the bumped epoch
	_ = w(pos, 3, 1)   // stale pre-crash leftover: gen regressed
	if fr := scanFrames(buf, 4096); len(fr) != 2 {
		t.Fatalf("stale-generation frame accepted: %d frames", len(fr))
	}
}

func TestFrameScanAcceptsZeroLength(t *testing.T) {
	buf := make([]byte, 1024)
	putFrame(buf[0:frameHdrSize], 1, 1, 0, 0, 0)
	copy(buf[frameHdrSize+frameHdrSize:], []byte("xy"))
	putFrame(buf[frameHdrSize:2*frameHdrSize+2], 2, 1, 0, 2, 2)
	if fr := scanFrames(buf, 1024); len(fr) != 2 {
		t.Fatalf("zero-length frame broke the scan: %d frames", len(fr))
	}
}

// ---- Per-policy behavior on the simulated testbed ----

func policyCfg(t *testing.T, policy string) Config {
	t.Helper()
	cfg := DefaultConfig()
	spec, err := ParsePolicy(policy)
	if err != nil {
		t.Fatalf("ParsePolicy(%q): %v", policy, err)
	}
	cfg.Policy = spec
	return cfg
}

// allPolicies are the specs every cross-policy test sweeps.
var allPolicies = []string{"mirror", "ec:4,2", "quorum"}

func TestPolicyWriteCrashRecover(t *testing.T) {
	// The core durability contract, per policy: acked writes survive an
	// application crash and full recovery, byte for byte.
	for _, pol := range allPolicies {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			c := newCluster(31, 8, smallPeerCfg())
			c.run(t, func(p *simnet.Proc) {
				var want []byte
				c.appNode.Go("app-v1", func(ap *simnet.Proc) {
					l, err := NewLib(ap, c.svc, c.fabric, c.appNode, "app1", 0, policyCfg(t, pol))
					if err != nil {
						return
					}
					lg, err := l.Open(ap, "wal", 1<<20)
					if err != nil {
						return
					}
					for i := 0; i < 30; i++ {
						rec := bytes.Repeat([]byte{byte(i + 1)}, 100+i*7)
						if _, err := lg.Append(ap, rec); err != nil {
							return
						}
						want = append(want, rec...)
					}
					ap.Sleep(time.Hour)
				})
				p.Sleep(400 * time.Millisecond)
				c.appNode.Crash()
				p.Sleep(10 * time.Millisecond)
				c.appNode.Restart()

				// The recovering lib is configured with MIRROR defaults either
				// way: the ap-map entry's policy must win.
				l2, err := NewLib(p, c.svc, c.fabric, c.appNode, "app1", 1, DefaultConfig())
				if err != nil {
					t.Fatalf("new lib: %v", err)
				}
				lg2, err := l2.Recover(p, "wal")
				if err != nil {
					t.Fatalf("recover: %v", err)
				}
				if !bytes.Equal(lg2.Bytes(), want) {
					t.Fatalf("recovered %d bytes, want %d", lg2.Length(), int64(len(want)))
				}
				if got := lg2.policy.Spec().String(); got != policyCfg(t, pol).Policy.String() {
					t.Fatalf("recovered under policy %s, want %s", got, pol)
				}
				// And the log keeps accepting writes.
				if _, err := lg2.Append(p, []byte("post-recovery")); err != nil {
					t.Fatalf("append after recovery: %v", err)
				}
			})
		})
	}
}

func TestPolicyPeerCrashMidAppend(t *testing.T) {
	// A peer dying under write load: the policy must keep (or restore)
	// write availability and lose nothing. Mirror/quorum ride out the
	// failure on the surviving majority; ec stalls until the background
	// replacement activates (AckNeed = k+m), then resumes.
	for _, pol := range allPolicies {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			c := newCluster(32, 9, smallPeerCfg())
			c.run(t, func(p *simnet.Proc) {
				l, err := NewLib(p, c.svc, c.fabric, c.appNode, "app1", 0, policyCfg(t, pol))
				if err != nil {
					t.Fatalf("new lib: %v", err)
				}
				lg, err := l.Open(p, "wal", 1<<20)
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				var want []byte
				rec := func(i int) []byte { return bytes.Repeat([]byte{byte(i + 1)}, 300) }
				for i := 0; i < 5; i++ {
					if _, err := lg.Append(p, rec(i)); err != nil {
						t.Fatalf("append %d: %v", i, err)
					}
					want = append(want, rec(i)...)
				}
				victim := lg.LivePeers()[1]
				c.pNodes[victim].Crash()
				for i := 5; i < 15; i++ {
					if _, err := lg.Append(p, rec(i)); err != nil {
						t.Fatalf("append %d after peer crash: %v", i, err)
					}
					want = append(want, rec(i)...)
				}
				p.Sleep(2 * time.Second) // replacement settles
				for _, pn := range lg.LivePeers() {
					if pn == victim {
						t.Fatalf("crashed peer still a member")
					}
				}
				if len(lg.LivePeers()) != lg.place.Slots {
					t.Fatalf("membership not restored: %d of %d", len(lg.LivePeers()), lg.place.Slots)
				}
				// Full crash-recovery proves the re-replicated state is whole.
				c.appNode.Crash()
				p.Sleep(10 * time.Millisecond)
				c.appNode.Restart()
				l2, _ := NewLib(p, c.svc, c.fabric, c.appNode, "app1", 1, DefaultConfig())
				lg2, err := l2.Recover(p, "wal")
				if err != nil {
					t.Fatalf("recover: %v", err)
				}
				if !bytes.Equal(lg2.Bytes(), want) {
					t.Fatalf("post-replacement recovery mismatch: %d vs %d bytes", lg2.Length(), len(want))
				}
			})
		})
	}
}

func TestPolicyPeerCrashDuringRecovery(t *testing.T) {
	// A member dies together with the application: recovery must still
	// reconstruct from the survivors and restore full membership.
	for _, pol := range allPolicies {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			c := newCluster(33, 9, smallPeerCfg())
			c.run(t, func(p *simnet.Proc) {
				var member string
				var want []byte
				c.appNode.Go("app-v1", func(ap *simnet.Proc) {
					l, _ := NewLib(ap, c.svc, c.fabric, c.appNode, "app1", 0, policyCfg(t, pol))
					lg, err := l.Open(ap, "wal", 1<<20)
					if err != nil {
						return
					}
					for i := 0; i < 12; i++ {
						rec := bytes.Repeat([]byte{byte(i + 1)}, 200)
						if _, err := lg.Append(ap, rec); err != nil {
							return
						}
						want = append(want, rec...)
					}
					member = lg.LivePeers()[0]
					ap.Sleep(time.Hour)
				})
				p.Sleep(400 * time.Millisecond)
				c.appNode.Crash()
				c.pNodes[member].Crash()
				p.Sleep(10 * time.Millisecond)
				c.appNode.Restart()
				l2, _ := NewLib(p, c.svc, c.fabric, c.appNode, "app1", 1, DefaultConfig())
				lg2, err := l2.Recover(p, "wal")
				if err != nil {
					t.Fatalf("recover with one dead member: %v", err)
				}
				if !bytes.Equal(lg2.Bytes(), want) {
					t.Fatalf("recovery mismatch: %d vs %d bytes", lg2.Length(), len(want))
				}
				if len(lg2.LivePeers()) != lg2.place.Slots {
					t.Fatalf("membership not restored: %v", lg2.LivePeers())
				}
				if _, err := lg2.Append(p, []byte("onward")); err != nil {
					t.Fatalf("append after recovery: %v", err)
				}
			})
		})
	}
}

func TestECTooManyFailuresErrorsNotCorrupts(t *testing.T) {
	// ec(4,2) with m+1 = 3 members dead: recovery must fail with
	// ErrUnavailable — never hand back reconstructed-from-too-few garbage.
	c := newCluster(34, 8, smallPeerCfg())
	c.run(t, func(p *simnet.Proc) {
		var members []string
		c.appNode.Go("app-v1", func(ap *simnet.Proc) {
			l, _ := NewLib(ap, c.svc, c.fabric, c.appNode, "app1", 0, policyCfg(t, "ec:4,2"))
			lg, err := l.Open(ap, "wal", 1<<20)
			if err != nil {
				return
			}
			for i := 0; i < 8; i++ {
				lg.Append(ap, bytes.Repeat([]byte{byte(i + 1)}, 256))
			}
			members = append([]string(nil), lg.LivePeers()...)
			ap.Sleep(time.Hour)
		})
		p.Sleep(400 * time.Millisecond)
		c.appNode.Crash()
		for _, m := range members[:3] {
			c.pNodes[m].Crash()
		}
		p.Sleep(10 * time.Millisecond)
		c.appNode.Restart()
		l2, _ := NewLib(p, c.svc, c.fabric, c.appNode, "app1", 1, DefaultConfig())
		if _, err := l2.Recover(p, "wal"); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("recovery with k-1 fragments: err = %v, want ErrUnavailable", err)
		}
	})
}

func TestFrameBudgetExhaustion(t *testing.T) {
	// Tiny records burn the ec/quorum frame-header slack; Append must fail
	// cleanly with ErrRegionFull (wrapped), roll the write back, and keep the
	// log usable after the app checkpoints (Release + Open).
	for _, pol := range []string{"ec:4,2", "quorum"} {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			c := newCluster(35, 8, smallPeerCfg())
			c.run(t, func(p *simnet.Proc) {
				l, err := NewLib(p, c.svc, c.fabric, c.appNode, "app1", 0, policyCfg(t, pol))
				if err != nil {
					t.Fatalf("new lib: %v", err)
				}
				lg, err := l.Open(p, "wal", 4096)
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				var budgetErr error
				wrote := 0
				for i := 0; i < 4096; i++ {
					// 1-byte overwrites at offset 0: no capacity pressure, pure
					// frame-budget pressure.
					if err := lg.Record(p, 0, []byte{byte(i)}); err != nil {
						budgetErr = err
						break
					}
					wrote++
				}
				if budgetErr == nil {
					t.Fatal("frame budget never exhausted")
				}
				if !errors.Is(budgetErr, ErrRegionFull) {
					t.Fatalf("budget exhaustion error = %v, want ErrRegionFull", budgetErr)
				}
				seqBefore := lg.Seq()
				if err := lg.Record(p, 0, []byte{0xff}); !errors.Is(err, ErrRegionFull) {
					t.Fatalf("write after exhaustion: %v", err)
				}
				if lg.Seq() != seqBefore {
					t.Fatalf("failed append advanced seq: %d -> %d", seqBefore, lg.Seq())
				}
				// The checkpoint/rotate path resets the budget.
				if err := lg.Release(p); err != nil {
					t.Fatalf("release: %v", err)
				}
				lg2, err := l.Open(p, "wal", 4096)
				if err != nil {
					t.Fatalf("reopen: %v", err)
				}
				if err := lg2.Record(p, 0, []byte{1}); err != nil {
					t.Fatalf("write after rotate: %v", err)
				}
				_ = wrote
			})
		})
	}
}

func TestECBigRecordsFillNominalCapacity(t *testing.T) {
	// The sizing guarantee: records >= 2 KiB never hit the ec frame budget
	// before the nominal capacity itself.
	c := newCluster(36, 8, smallPeerCfg())
	c.run(t, func(p *simnet.Proc) {
		l, _ := NewLib(p, c.svc, c.fabric, c.appNode, "app1", 0, policyCfg(t, "ec:4,2"))
		const capacity = 256 << 10
		lg, err := l.Open(p, "wal", capacity)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		rec := make([]byte, 2048)
		for off := int64(0); off+2048 <= capacity; off += 2048 {
			if _, err := lg.Append(p, rec); err != nil {
				t.Fatalf("append at %d/%d: %v", off, int64(capacity), err)
			}
		}
		if lg.Length() != capacity {
			t.Fatalf("filled %d of %d", lg.Length(), int64(capacity))
		}
	})
}

func TestPolicyTraceDeterministic(t *testing.T) {
	// Same (policy, seed) twice => byte-identical event history. The
	// simulation's determinism contract extends to every policy.
	for _, pol := range allPolicies {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			run := func() string {
				c := newCluster(37, 8, smallPeerCfg())
				var out string
				c.run(t, func(p *simnet.Proc) {
					l, err := NewLib(p, c.svc, c.fabric, c.appNode, "app1", 0, policyCfg(t, pol))
					if err != nil {
						t.Fatalf("new lib: %v", err)
					}
					lg, err := l.Open(p, "wal", 1<<20)
					if err != nil {
						t.Fatalf("open: %v", err)
					}
					var hist []string
					for i := 0; i < 20; i++ {
						start := p.Now()
						if _, err := lg.Append(p, bytes.Repeat([]byte{byte(i)}, 128+i)); err != nil {
							t.Fatalf("append: %v", err)
						}
						hist = append(hist, fmt.Sprintf("%d:%d", i, p.Now()-start))
					}
					hist = append(hist, fmt.Sprintf("peers:%v seq:%d", lg.LivePeers(), lg.Seq()))
					out = fmt.Sprint(hist)
				})
				return out
			}
			a, b := run(), run()
			if a == "" || a != b {
				t.Fatalf("non-deterministic history:\n%s\nvs\n%s", a, b)
			}
		})
	}
}
