package ncl

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"splitft/internal/controller"
	"splitft/internal/peer"
	"splitft/internal/rdma"
	"splitft/internal/simnet"
	"splitft/internal/trace"
	"splitft/internal/wire"
)

// cluster is the standard NCL testbed: 3 controller nodes, a configurable
// pool of log peers, and one (restartable) application node.
type cluster struct {
	sim     *simnet.Sim
	svc     *controller.Service
	fabric  *rdma.Fabric
	peers   map[string]*peer.Peer
	pNodes  map[string]*simnet.Node
	appNode *simnet.Node
	peerCfg peer.Config
}

func newCluster(seed int64, nPeers int, peerCfg peer.Config) *cluster {
	s := simnet.New(seed)
	s.Net().SetDefaultLatency(5 * time.Microsecond) // RDMA-class datacenter
	ctrlNodes := []*simnet.Node{s.NewNode("ctrl0"), s.NewNode("ctrl1"), s.NewNode("ctrl2")}
	c := &cluster{
		sim:     s,
		svc:     controller.Start(s, ctrlNodes, controller.DefaultConfig()),
		fabric:  rdma.NewFabric(s, rdma.DefaultParams()),
		peers:   make(map[string]*peer.Peer),
		pNodes:  make(map[string]*simnet.Node),
		appNode: s.NewNode("appserver"),
	}
	c.peerCfg = peerCfg
	for i := 0; i < nPeers; i++ {
		c.pNodes[fmt.Sprintf("peer%d", i)] = s.NewNode(fmt.Sprintf("peer%d", i))
	}
	return c
}

// run boots peers (after controller election) and executes fn in a detached
// proc, then stops the simulation.
func (c *cluster) run(t *testing.T, fn func(p *simnet.Proc)) {
	t.Helper()
	c.sim.Go("test-main", func(p *simnet.Proc) {
		defer c.sim.Stop()
		p.Sleep(time.Second) // controller leader election
		names := make([]string, 0, len(c.pNodes))
		for name := range c.pNodes {
			names = append(names, name)
		}
		sortStrings(names)
		for _, name := range names {
			pr, err := peer.Start(p, c.svc, c.fabric, c.pNodes[name], c.peerCfg)
			if err != nil {
				t.Errorf("start peer %s: %v", name, err)
				c.sim.Stop()
				return
			}
			c.peers[name] = pr
		}
		fn(p)
	})
	if err := c.sim.RunUntil(10 * time.Minute); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func (c *cluster) restartPeer(p *simnet.Proc, t *testing.T, name string) {
	t.Helper()
	node := c.pNodes[name]
	node.Restart()
	pr, err := peer.Start(p, c.svc, c.fabric, node, c.peerCfg)
	if err != nil {
		t.Errorf("restart peer %s: %v", name, err)
		return
	}
	c.peers[name] = pr
}

func (c *cluster) newLib(p *simnet.Proc, t *testing.T, app string, fencing int64) *Lib {
	t.Helper()
	l, err := NewLib(p, c.svc, c.fabric, c.appNode, app, fencing, DefaultConfig())
	if err != nil {
		t.Fatalf("new lib: %v", err)
	}
	return l
}

func smallPeerCfg() peer.Config {
	cfg := peer.DefaultConfig()
	cfg.LendableMem = 64 << 20
	return cfg
}

func TestOpenRecordReplicatesToMajority(t *testing.T) {
	c := newCluster(1, 4, smallPeerCfg())
	c.run(t, func(p *simnet.Proc) {
		l := c.newLib(p, t, "app1", 0)
		lg, err := l.Open(p, "wal-000", 1<<20)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if got := len(lg.LivePeers()); got != 3 {
			t.Fatalf("live peers = %d, want 3 (2f+1)", got)
		}
		payload := []byte("record-one")
		if _, err := lg.Append(p, payload); err != nil {
			t.Fatalf("append: %v", err)
		}
		if _, err := lg.Append(p, []byte("record-two")); err != nil {
			t.Fatalf("append: %v", err)
		}
		// White box: at least a majority of peers hold both records with a
		// matching header.
		p.Sleep(time.Millisecond) // let the slowest peer finish too
		current := 0
		for _, pn := range lg.LivePeers() {
			region, ok := c.peers[pn].RegionBytes("app1", "wal-000")
			if !ok {
				t.Errorf("peer %s has no region", pn)
				continue
			}
			seq := binary.LittleEndian.Uint64(region[0:8])
			length := binary.LittleEndian.Uint64(region[8:16])
			if seq == 2 && length == 20 && string(region[HeaderSize:HeaderSize+10]) == "record-one" {
				current++
			}
		}
		if current < 2 {
			t.Errorf("only %d peers current, want >= f+1", current)
		}
		if lg.Length() != 20 || string(lg.Bytes()[:10]) != "record-one" {
			t.Errorf("local buffer wrong: len=%d", lg.Length())
		}
	})
}

func TestRecordLatencySmallWrite(t *testing.T) {
	// Fig 8 calibration: a 128B record should complete in single-digit
	// microseconds (paper: 4.6us).
	c := newCluster(2, 3, smallPeerCfg())
	c.run(t, func(p *simnet.Proc) {
		l := c.newLib(p, t, "app1", 0)
		lg, err := l.Open(p, "wal", 1<<20)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		data := make([]byte, 128)
		lg.Append(p, data) // warm
		start := p.Now()
		const n = 100
		for i := 0; i < n; i++ {
			if _, err := lg.Append(p, data); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
		avg := (p.Now() - start) / n
		if avg < 2*time.Microsecond || avg > 10*time.Microsecond {
			t.Errorf("128B record latency = %v, want ~4-5us", avg)
		}
	})
}

func TestSlowPeerDoesNotBlockMajority(t *testing.T) {
	c := newCluster(3, 3, smallPeerCfg())
	c.run(t, func(p *simnet.Proc) {
		l := c.newLib(p, t, "app1", 0)
		lg, err := l.Open(p, "wal", 1<<20)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		// Make one member peer slow (2ms one-way).
		slow := lg.LivePeers()[2]
		c.sim.Net().SetLatency(c.appNode, c.pNodes[slow], 2*time.Millisecond)
		start := p.Now()
		lg.Append(p, []byte("x"))
		if lat := p.Now() - start; lat > time.Millisecond {
			t.Errorf("record waited for the slow peer: %v", lat)
		}
	})
}

func TestReleaseFreesPeersAndApMap(t *testing.T) {
	c := newCluster(4, 3, smallPeerCfg())
	c.run(t, func(p *simnet.Proc) {
		l := c.newLib(p, t, "app1", 0)
		lg, err := l.Open(p, "wal", 1<<20)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		members := lg.LivePeers()
		lg.Append(p, []byte("data"))
		if err := lg.Release(p); err != nil {
			t.Fatalf("release: %v", err)
		}
		for _, pn := range members {
			if c.peers[pn].Regions() != 0 {
				t.Errorf("peer %s still holds a region after release", pn)
			}
			if c.peers[pn].Avail() != smallPeerCfg().LendableMem {
				t.Errorf("peer %s avail = %d, want full", pn, c.peers[pn].Avail())
			}
		}
		files, err := l.ListFiles(p)
		if err != nil || len(files) != 0 {
			t.Errorf("ap-map after release: %v, %v", files, err)
		}
		if _, err := lg.Append(p, []byte("y")); !errors.Is(err, ErrReleased) {
			t.Errorf("append after release: %v", err)
		}
	})
}

func TestRecoverAfterAppCrash(t *testing.T) {
	c := newCluster(5, 3, smallPeerCfg())
	c.run(t, func(p *simnet.Proc) {
		var want []byte
		c.appNode.Go("app-v1", func(ap *simnet.Proc) {
			l, err := NewLib(ap, c.svc, c.fabric, c.appNode, "app1", 0, DefaultConfig())
			if err != nil {
				t.Errorf("lib: %v", err)
				return
			}
			lg, err := l.Open(ap, "wal", 1<<20)
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			for i := 0; i < 50; i++ {
				rec := bytes.Repeat([]byte{byte(i + 1)}, 100)
				if _, err := lg.Append(ap, rec); err != nil {
					t.Errorf("append %d: %v", i, err)
					return
				}
				want = append(want, rec...) // acked => must be recovered
			}
			ap.Sleep(time.Hour) // hold until crash
		})
		p.Sleep(300 * time.Millisecond)
		c.appNode.Crash()
		p.Sleep(10 * time.Millisecond)
		c.appNode.Restart()

		l2, err := NewLib(p, c.svc, c.fabric, c.appNode, "app1", 1, DefaultConfig())
		if err != nil {
			t.Fatalf("lib v2: %v", err)
		}
		files, err := l2.ListFiles(p)
		if err != nil || len(files) != 1 || files[0] != "wal" {
			t.Fatalf("list files = %v, %v", files, err)
		}
		// Recovery latency breakdown is trace spans now; attach a collector
		// mid-run to observe this recovery only.
		col := trace.New()
		c.sim.SetTracer(col)
		mark := col.Len()
		lg2, err := l2.Recover(p, "wal")
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		if int64(len(want)) > lg2.Length() {
			t.Fatalf("recovered %d bytes < acked %d", lg2.Length(), len(want))
		}
		if !bytes.Equal(lg2.Bytes()[:len(want)], want) {
			t.Fatal("recovered content does not match acked writes")
		}
		spans := col.Since(mark)
		if trace.Sum(spans, "ncl", "recover.") <= 0 {
			t.Errorf("no recover phase spans recorded")
		}
		if rec := trace.First(spans, "ncl", "recover"); rec == nil || !rec.Done() || rec.Dur() <= 0 {
			t.Errorf("recover parent span missing or unfinished: %+v", rec)
		}
		c.sim.SetTracer(nil)
		// The recovered log accepts further records.
		if _, err := lg2.Append(p, []byte("post-recovery")); err != nil {
			t.Errorf("append after recovery: %v", err)
		}
	})
}

func TestRecoverySyncsLaggingPeer(t *testing.T) {
	c := newCluster(6, 3, smallPeerCfg())
	c.run(t, func(p *simnet.Proc) {
		var lagging string
		c.appNode.Go("app-v1", func(ap *simnet.Proc) {
			l, _ := NewLib(ap, c.svc, c.fabric, c.appNode, "app1", 0, DefaultConfig())
			lg, err := l.Open(ap, "wal", 1<<20)
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			lg.Append(ap, []byte("AAAA"))
			ap.Sleep(time.Millisecond)
			// Partition one member: it misses subsequent writes but is not
			// detected as failed before the app crashes.
			lagging = lg.LivePeers()[2]
			c.sim.Net().Partition(c.appNode, c.pNodes[lagging])
			lg.Append(ap, []byte("BBBB"))
			lg.Append(ap, []byte("CCCC"))
			ap.Sleep(time.Hour)
		})
		p.Sleep(200 * time.Millisecond)
		c.appNode.Crash()
		c.sim.Net().Heal(c.appNode, c.pNodes[lagging])
		p.Sleep(10 * time.Millisecond)
		c.appNode.Restart()

		l2, _ := NewLib(p, c.svc, c.fabric, c.appNode, "app1", 1, DefaultConfig())
		lg2, err := l2.Recover(p, "wal")
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		if string(lg2.Bytes()) != "AAAABBBBCCCC" {
			t.Fatalf("recovered %q, lagging peer polluted recovery", lg2.Bytes())
		}
		// The lagging peer must now hold the full content (catch-up via
		// staging + atomic switch).
		p.Sleep(time.Millisecond)
		region, ok := c.peers[lagging].RegionBytes("app1", "wal")
		if !ok {
			t.Fatalf("lagging peer lost its region")
		}
		if binary.LittleEndian.Uint64(region[0:8]) != lg2.Seq() {
			t.Errorf("lagging peer seq = %d, want %d after catch-up",
				binary.LittleEndian.Uint64(region[0:8]), lg2.Seq())
		}
		if string(region[HeaderSize:HeaderSize+12]) != "AAAABBBBCCCC" {
			t.Errorf("lagging peer content = %q", region[HeaderSize:HeaderSize+12])
		}
	})
}

func TestCircularOverwriteRecovery(t *testing.T) {
	// SQLite-style circular log (Fig 7ii): overwrites at low offsets must be
	// recovered via whole-region catch-up, not tail shipping.
	c := newCluster(7, 3, smallPeerCfg())
	c.run(t, func(p *simnet.Proc) {
		c.appNode.Go("app-v1", func(ap *simnet.Proc) {
			l, _ := NewLib(ap, c.svc, c.fabric, c.appNode, "app1", 0, DefaultConfig())
			lg, err := l.Open(ap, "db-wal", 64)
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			lg.Record(ap, 0, []byte("aaaa")) // write a
			lg.Record(ap, 4, []byte("bbbb")) // write b
			lg.Record(ap, 0, []byte("cccc")) // wraps: overwrites a
			ap.Sleep(time.Hour)
		})
		p.Sleep(200 * time.Millisecond)
		c.appNode.Crash()
		p.Sleep(10 * time.Millisecond)
		c.appNode.Restart()
		l2, _ := NewLib(p, c.svc, c.fabric, c.appNode, "app1", 1, DefaultConfig())
		lg2, err := l2.Recover(p, "db-wal")
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		if string(lg2.Bytes()) != "ccccbbbb" {
			t.Fatalf("recovered %q, want ccccbbbb", lg2.Bytes())
		}
	})
}

func TestPeerCrashTriggersReplacement(t *testing.T) {
	c := newCluster(8, 5, smallPeerCfg())
	c.run(t, func(p *simnet.Proc) {
		l := c.newLib(p, t, "app1", 0)
		lg, err := l.Open(p, "wal", 1<<20)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		before := lg.LivePeers()
		victim := before[0]
		lg.Append(p, []byte("pre-crash"))
		c.pNodes[victim].Crash()
		// Writes keep flowing (one failure within budget f=1).
		for i := 0; i < 20; i++ {
			if _, err := lg.Append(p, []byte("during")); err != nil {
				t.Fatalf("append during failure: %v", err)
			}
		}
		p.Sleep(500 * time.Millisecond) // background replacement completes
		after := lg.LivePeers()
		if len(after) != 3 {
			t.Fatalf("live peers after replacement = %v", after)
		}
		for _, pn := range after {
			if pn == victim {
				t.Fatalf("victim still a member: %v", after)
			}
		}
		if lg.Replacements != 1 {
			t.Errorf("replacements = %d, want 1", lg.Replacements)
		}
		if lg.Epoch() != 2 {
			t.Errorf("epoch = %d, want 2 after one membership change", lg.Epoch())
		}
		// The replacement peer holds the full log.
		p.Sleep(10 * time.Millisecond)
		var newPeer string
		for _, pn := range after {
			found := false
			for _, old := range before {
				if pn == old {
					found = true
				}
			}
			if !found {
				newPeer = pn
			}
		}
		region, ok := c.peers[newPeer].RegionBytes("app1", "wal")
		if !ok {
			t.Fatalf("replacement peer %s has no region", newPeer)
		}
		if binary.LittleEndian.Uint64(region[0:8]) != lg.Seq() {
			t.Errorf("replacement peer seq = %d, want %d",
				binary.LittleEndian.Uint64(region[0:8]), lg.Seq())
		}
	})
}

func TestMajorityLossStallsThenRecovers(t *testing.T) {
	c := newCluster(9, 6, smallPeerCfg())
	c.run(t, func(p *simnet.Proc) {
		l := c.newLib(p, t, "app1", 0)
		lg, err := l.Open(p, "wal", 1<<20)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		lg.Append(p, []byte("x"))
		members := lg.LivePeers()
		// Two simultaneous crashes (> f): writes must stall, then resume
		// once a replacement is caught up (Fig 12).
		c.pNodes[members[0]].Crash()
		c.pNodes[members[1]].Crash()
		start := p.Now()
		if _, err := lg.Append(p, []byte("y")); err != nil {
			t.Fatalf("append after majority loss: %v", err)
		}
		stall := p.Now() - start
		if stall < 5*time.Millisecond {
			t.Errorf("stall = %v, expected a visible stall (replacement path)", stall)
		}
		if stall > time.Second {
			t.Errorf("stall = %v, expected recovery within ~100ms scale", stall)
		}
		// Eventually both failed peers are replaced.
		p.Sleep(time.Second)
		if n := len(lg.LivePeers()); n != 3 {
			t.Errorf("live peers = %d after repairs", n)
		}
		if lg.Replacements != 2 {
			t.Errorf("replacements = %d, want 2", lg.Replacements)
		}
	})
}

func TestMemoryRevocationHandledAsPeerFailure(t *testing.T) {
	c := newCluster(10, 4, smallPeerCfg())
	c.run(t, func(p *simnet.Proc) {
		l := c.newLib(p, t, "app1", 0)
		lg, err := l.Open(p, "wal", 1<<20)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		lg.Append(p, []byte("a"))
		victim := lg.LivePeers()[1]
		if !c.peers[victim].Revoke(p, "app1", "wal") {
			t.Fatalf("revoke failed")
		}
		// Writes continue; the revoked peer is detected and replaced.
		for i := 0; i < 10; i++ {
			if _, err := lg.Append(p, []byte("b")); err != nil {
				t.Fatalf("append after revocation: %v", err)
			}
		}
		p.Sleep(500 * time.Millisecond)
		for _, pn := range lg.LivePeers() {
			if pn == victim {
				t.Errorf("revoked peer still a member")
			}
		}
		if lg.Replacements != 1 {
			t.Errorf("replacements = %d, want 1", lg.Replacements)
		}
	})
}

func TestRecoveryUnavailableBeyondBudget(t *testing.T) {
	c := newCluster(11, 3, smallPeerCfg())
	c.run(t, func(p *simnet.Proc) {
		c.appNode.Go("app-v1", func(ap *simnet.Proc) {
			l, _ := NewLib(ap, c.svc, c.fabric, c.appNode, "app1", 0, DefaultConfig())
			lg, _ := l.Open(ap, "wal", 1<<20)
			lg.Append(ap, []byte("x"))
			ap.Sleep(time.Hour)
		})
		p.Sleep(200 * time.Millisecond)
		c.appNode.Crash()
		// Kill more than f peers.
		c.pNodes["peer0"].Crash()
		c.pNodes["peer1"].Crash()
		c.pNodes["peer2"].Crash()
		p.Sleep(10 * time.Millisecond)
		c.appNode.Restart()
		l2, _ := NewLib(p, c.svc, c.fabric, c.appNode, "app1", 1, DefaultConfig())
		if _, err := l2.Recover(p, "wal"); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("recover with all peers dead: %v, want unavailable", err)
		}
	})
}

func TestRestartedPeerRejectsRecoveryLookup(t *testing.T) {
	// A peer that crashed and restarted has lost its mr-map; recovery must
	// not read stale/zeroed data from it.
	c := newCluster(12, 4, smallPeerCfg())
	c.run(t, func(p *simnet.Proc) {
		c.appNode.Go("app-v1", func(ap *simnet.Proc) {
			l, _ := NewLib(ap, c.svc, c.fabric, c.appNode, "app1", 0, DefaultConfig())
			lg, _ := l.Open(ap, "wal", 1<<20)
			for i := 0; i < 5; i++ {
				lg.Append(ap, []byte("data!"))
			}
			ap.Sleep(time.Hour)
		})
		p.Sleep(200 * time.Millisecond)
		// Find a member, bounce it, then crash the app before any write
		// could detect the bounce.
		l := c.peers // all peers; find one with a region
		var member string
		for name, pr := range l {
			if pr.Regions() > 0 {
				member = name
				break
			}
		}
		c.appNode.Crash()
		c.pNodes[member].Crash()
		p.Sleep(10 * time.Millisecond)
		c.restartPeer(p, t, member)
		c.appNode.Restart()
		l2, _ := NewLib(p, c.svc, c.fabric, c.appNode, "app1", 1, DefaultConfig())
		lg2, err := l2.Recover(p, "wal")
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		if lg2.Length() != 25 || string(lg2.Bytes()[:5]) != "data!" {
			t.Fatalf("recovered %q (len %d)", lg2.Bytes(), lg2.Length())
		}
	})
}

func TestSpaceLeakGC(t *testing.T) {
	cfg := smallPeerCfg()
	cfg.GCInterval = 500 * time.Millisecond
	cfg.GCGrace = time.Second
	c := newCluster(13, 3, cfg)
	c.run(t, func(p *simnet.Proc) {
		// Simulate an application that allocated a region and crashed before
		// writing its ap-map entry: call Setup directly.
		_, err := wire.Call[peer.SetupResp](p, c.sim.Net(), c.appNode, peer.Addr("peer0"), peer.SetupReq{
			App: "ghost", File: "leaked", Size: 1 << 20, Epoch: 1,
		})
		if err != nil {
			t.Fatalf("setup: %v", err)
		}
		if c.peers["peer0"].Regions() != 1 {
			t.Fatalf("region not allocated")
		}
		p.Sleep(3 * time.Second) // > grace + scan
		if c.peers["peer0"].Regions() != 0 {
			t.Fatalf("leaked region not garbage collected")
		}
		if c.peers["peer0"].Avail() != cfg.LendableMem {
			t.Errorf("avail = %d after GC, want full", c.peers["peer0"].Avail())
		}
	})
}

func TestSpaceLeakGCKeepsLiveAllocations(t *testing.T) {
	cfg := smallPeerCfg()
	cfg.GCInterval = 300 * time.Millisecond
	cfg.GCGrace = 600 * time.Millisecond
	c := newCluster(14, 3, cfg)
	c.run(t, func(p *simnet.Proc) {
		l := c.newLib(p, t, "app1", 0)
		lg, err := l.Open(p, "wal", 1<<20)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		p.Sleep(3 * time.Second)
		// Live allocation (present in ap-map, epoch matches): must survive.
		total := 0
		for _, pn := range lg.LivePeers() {
			total += c.peers[pn].Regions()
		}
		if total != 3 {
			t.Fatalf("live regions GCed: %d remain", total)
		}
	})
}

func TestInstanceLockBlocksDuplicates(t *testing.T) {
	c := newCluster(15, 3, smallPeerCfg())
	c.run(t, func(p *simnet.Proc) {
		l1 := c.newLib(p, t, "app1", 0)
		if err := l1.AcquireInstanceLock(p); err != nil {
			t.Fatalf("first lock: %v", err)
		}
		other := c.sim.NewNode("appserver2")
		l2, err := NewLib(p, c.svc, c.fabric, other, "app1", 0, DefaultConfig())
		if err != nil {
			t.Fatalf("lib2: %v", err)
		}
		if err := l2.AcquireInstanceLock(p); err == nil {
			t.Fatalf("duplicate instance acquired the lock")
		}
	})
}

// The core correctness property (§4.6): for any crash point, recovery
// returns a log containing every acknowledged append, in order.
func TestQuickCrashRecoveryPrefix(t *testing.T) {
	f := func(nWrites uint8, crashAfterUS uint16) bool {
		n := int(nWrites)%30 + 1
		c := newCluster(int64(nWrites)*7919+int64(crashAfterUS), 4, smallPeerCfg())
		acked := 0
		okResult := true
		c.run(t, func(p *simnet.Proc) {
			c.appNode.Go("app-v1", func(ap *simnet.Proc) {
				l, err := NewLib(ap, c.svc, c.fabric, c.appNode, "app1", 0, DefaultConfig())
				if err != nil {
					return
				}
				lg, err := l.Open(ap, "wal", 1<<20)
				if err != nil {
					return
				}
				for i := 0; i < n; i++ {
					rec := bytes.Repeat([]byte{byte(i + 1)}, 64)
					if _, err := lg.Append(ap, rec); err != nil {
						return
					}
					acked = i + 1
				}
				ap.Sleep(time.Hour)
			})
			// Crash at an arbitrary point relative to the write stream.
			p.Sleep(150*time.Millisecond + time.Duration(crashAfterUS)*time.Microsecond)
			c.appNode.Crash()
			p.Sleep(10 * time.Millisecond)
			c.appNode.Restart()
			l2, err := NewLib(p, c.svc, c.fabric, c.appNode, "app1", 1, DefaultConfig())
			if err != nil {
				okResult = false
				return
			}
			files, _ := l2.ListFiles(p)
			if len(files) == 0 {
				// App crashed before the ap-map entry was created; nothing
				// was acked, so nothing to check.
				okResult = acked == 0
				return
			}
			lg2, err := l2.Recover(p, "wal")
			if err != nil {
				okResult = false
				return
			}
			got := lg2.Bytes()
			if int(lg2.Length()) < acked*64 {
				okResult = false
				return
			}
			for i := 0; i < acked*64; i++ {
				if got[i] != byte(i/64+1) {
					okResult = false
					return
				}
			}
		})
		return okResult
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
