package ncl

// The replication policy seam. Everything about how a log's bytes are laid
// out on its peer group — how many peers, how big each region is, what a
// record posts, what "acknowledged" means, and how recovery reconstructs
// the log — lives behind ReplicationPolicy. Three implementations:
//
//   - mirror  (mirror.go): the paper's protocol — full copies on 2f+1
//     peers, data WR + header WR SQ-ordered, acked at f+1.
//   - ec(k,m) (ec.go): Reed-Solomon striping — each record is split into k
//     data cells plus m parity cells, one per peer; any k survivors
//     reconstruct, at (k+m)/k of the log's size instead of 2f+1 copies.
//   - quorum  (quorum.go): SWARM-style one-RTT writes — one self-describing
//     frame WR per peer, no ordering between them, acked at a majority,
//     with a read-repair pass on recovery.
//
// The policy spec travels in the ap-map entry (controller.FileEntry.Policy)
// so a recovering instance — possibly configured differently — rebuilds the
// file with the policy it was written under.

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"splitft/internal/simnet"
)

// PolicyKind enumerates the replication strategies.
type PolicyKind int

const (
	// PolicyMirror is the paper's full-copy protocol.
	PolicyMirror PolicyKind = iota
	// PolicyEC stripes records with Reed-Solomon coding.
	PolicyEC
	// PolicyQuorum writes unordered one-RTT frames acked at a majority.
	PolicyQuorum
)

func (k PolicyKind) String() string {
	switch k {
	case PolicyEC:
		return "ec"
	case PolicyQuorum:
		return "quorum"
	default:
		return "mirror"
	}
}

// PolicySpec is the parsed form of a replication policy string.
type PolicySpec struct {
	Kind PolicyKind
	// F is the failure budget for mirror and quorum: 2F+1 peers, F
	// simultaneous failures tolerated.
	F int
	// K and M are the data/parity counts for ec: K+M peers, M failures
	// tolerated, any K survivors reconstruct.
	K, M int
}

// ParsePolicy parses a policy spec string: "mirror" (or ""), "mirror:F",
// "ec:K,M", "quorum" / "swarm-quorum", "quorum:F".
func ParsePolicy(s string) (PolicySpec, error) {
	name, arg := s, ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		name, arg = s[:i], s[i+1:]
	}
	switch name {
	case "", "mirror":
		f := 1
		if arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil || v < 1 || v > 7 {
				return PolicySpec{}, fmt.Errorf("ncl: bad mirror failure budget %q", arg)
			}
			f = v
		}
		return PolicySpec{Kind: PolicyMirror, F: f}, nil
	case "quorum", "swarm-quorum":
		f := 1
		if arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil || v < 1 || v > 7 {
				return PolicySpec{}, fmt.Errorf("ncl: bad quorum failure budget %q", arg)
			}
			f = v
		}
		return PolicySpec{Kind: PolicyQuorum, F: f}, nil
	case "ec":
		parts := strings.Split(arg, ",")
		if len(parts) != 2 {
			return PolicySpec{}, fmt.Errorf("ncl: ec policy wants K,M, got %q", arg)
		}
		k, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		m, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err1 != nil || err2 != nil || k < 2 || m < 1 || k+m > 16 {
			return PolicySpec{}, fmt.Errorf("ncl: bad ec shape %q (want 2<=K, 1<=M, K+M<=16)", arg)
		}
		return PolicySpec{Kind: PolicyEC, K: k, M: m}, nil
	default:
		return PolicySpec{}, fmt.Errorf("ncl: unknown replication policy %q", s)
	}
}

// String renders the canonical spec string (round-trips through ParsePolicy).
func (s PolicySpec) String() string {
	switch s.Kind {
	case PolicyEC:
		return fmt.Sprintf("ec:%d,%d", s.K, s.M)
	case PolicyQuorum:
		if s.F == 1 {
			return "quorum"
		}
		return fmt.Sprintf("quorum:%d", s.F)
	default:
		if s.F == 1 {
			return "mirror"
		}
		return fmt.Sprintf("mirror:%d", s.F)
	}
}

// Slots is the peer-group size.
func (s PolicySpec) Slots() int {
	if s.Kind == PolicyEC {
		return s.K + s.M
	}
	return 2*s.F + 1
}

// Tolerates is how many simultaneous peer failures lose no acknowledged
// write.
func (s PolicySpec) Tolerates() int {
	if s.Kind == PolicyEC {
		return s.M
	}
	return s.F
}

// Placement is the group shape a policy derives for one log.
type Placement struct {
	// Slots is the number of peer regions.
	Slots int
	// SlotRegion is each region's size in bytes; the controller's placement
	// and the peers' free-memory accounting both work in these units, so
	// the policy's memory factor is what the registry actually reserves.
	SlotRegion int64
	// AckNeed is how many active peers must complete a record before it is
	// acknowledged to the application.
	AckNeed int
	// MinAlive is how many members recovery must reach to reconstruct.
	MinAlive int
}

// ReplicationPolicy is the log-write/recovery strategy of one open log.
// Instances are per-log (ec and quorum hold client-side shard state) and
// every method is called from ncl-lib with the log's conventions: Append
// runs under lg.mu with the local buffer already updated and lg.seq already
// assigned; Recover runs on a freshly connected log before it is returned
// to the application; Repair and Snapshot are the §4.5.2 catch-up steps.
type ReplicationPolicy interface {
	// Spec returns the parsed policy.
	Spec() PolicySpec
	// Place returns the group shape for a log of the given capacity.
	Place(capacity int64) Placement
	// Append posts the RDMA writes replicating the record just applied at
	// [off, off+len(data)) as sequence lg.seq. Called under lg.mu. An error
	// (ec/quorum frame-budget exhaustion) means nothing was posted; the
	// caller rolls the sequence number back and fails the Record.
	Append(p *simnet.Proc, lg *Log, off int64, data []byte) error
	// Recover is the read phase of application recovery: rebuild lg's
	// content (buf, length, seq) from the reachable peers. alive holds the
	// connected members; len(alive) >= Place().MinAlive is guaranteed.
	// Peers that fail mid-read are marked failed (the caller replaces
	// them). Runs inside the "recover.rdmaread" span.
	Recover(p *simnet.Proc, lg *Log, alive []*peerConn) error
	// Resync is the sync phase: catch every responsive survivor up to the
	// recovered content so a subsequent failure cannot un-recover it, and
	// leave survivors active with completedSeq = lg.seq. Runs inside the
	// "recover.syncpeer" span.
	Resync(p *simnet.Proc, lg *Log, alive []*peerConn) error
	// Repair bulk-writes slot's current replica content to a fresh region
	// (a replacement peer, or a staging region) and waits for completion.
	// With lock=true the snapshot is cut under lg.mu.
	Repair(p *simnet.Proc, lg *Log, qp qpLike, rkey uint64, slot int, lock bool) error
	// Snapshot posts slot pc's replica content as ordinary record WRs so
	// the poller advances pc.completedSeq to lg.seq when they land — the
	// §4.5.2 activation delta. Called under lg.mu.
	Snapshot(p *simnet.Proc, lg *Log, pc *peerConn)
	// MemoryFactor is the total remote bytes per byte of log capacity.
	MemoryFactor(capacity int64) float64
}

// newPolicy builds the per-log policy instance for a log of the given
// capacity.
func newPolicy(spec PolicySpec, capacity int64) ReplicationPolicy {
	switch spec.Kind {
	case PolicyEC:
		return newECPolicy(spec, capacity)
	case PolicyQuorum:
		return newQuorumPolicy(spec, capacity)
	default:
		return &mirrorPolicy{spec: spec}
	}
}

// ---- Self-describing frames (ec and quorum) ----
//
// The ec and quorum policies keep each peer region as an append-only frame
// log instead of mirror's header+content image. A frame is self-describing:
//
//	[seq u64][gen u64][off u32][len u32][cell u32][sum u32][cell bytes]
//
// seq is the record's sequence number, gen the log epoch it was written
// under, (off, len) the record's location in the file, cell the byte count
// that follows (len for quorum, ceil(len/K) for ec), and sum an FNV-1a
// checksum over header and payload. Recovery scans a region from offset 0
// and accepts frames while the checksum holds, seq strictly increases and
// gen never decreases: stale bytes beyond a compaction reset (or beyond a
// recovery cut, which bumps the epoch precisely so its gen outranks them)
// fail one of the three and terminate the scan. In-place on real hardware
// the checksum also catches torn frames; in the simulation writes are
// atomic, so it only ever rejects stale bytes.
const frameHdrSize = 32

func frameSum(hdr, cell []byte) uint32 {
	const prime = 16777619
	h := uint32(2166136261)
	for _, b := range hdr {
		h ^= uint32(b)
		h *= prime
	}
	for _, b := range cell {
		h ^= uint32(b)
		h *= prime
	}
	return h
}

// putFrame writes a frame header into dst[0:frameHdrSize], checksummed over
// the cell bytes that the caller has already placed at dst[frameHdrSize:].
func putFrame(dst []byte, seq, gen uint64, off, length, cell int64) {
	binary.LittleEndian.PutUint64(dst[0:8], seq)
	binary.LittleEndian.PutUint64(dst[8:16], gen)
	binary.LittleEndian.PutUint32(dst[16:20], uint32(off))
	binary.LittleEndian.PutUint32(dst[20:24], uint32(length))
	binary.LittleEndian.PutUint32(dst[24:28], uint32(cell))
	binary.LittleEndian.PutUint32(dst[28:32], frameSum(dst[0:28], dst[frameHdrSize:frameHdrSize+cell]))
}

// frame is one parsed frame.
type frame struct {
	seq  uint64
	gen  uint64
	off  int64
	len  int64
	cell []byte // aliases the scanned buffer
	// pos/size locate the whole frame (header + cell) in the region.
	pos, size int64
}

// scanFrames parses the frame log in buf, stopping at the first frame that
// fails its checksum, repeats/regresses a sequence number, or regresses the
// epoch. maxLen bounds a frame's declared record length (the log capacity).
func scanFrames(buf []byte, maxLen int64) []frame {
	var out []frame
	var prevSeq, prevGen uint64
	pos := int64(0)
	for pos+frameHdrSize <= int64(len(buf)) {
		hdr := buf[pos : pos+frameHdrSize]
		seq := binary.LittleEndian.Uint64(hdr[0:8])
		gen := binary.LittleEndian.Uint64(hdr[8:16])
		off := int64(binary.LittleEndian.Uint32(hdr[16:20]))
		length := int64(binary.LittleEndian.Uint32(hdr[20:24]))
		cell := int64(binary.LittleEndian.Uint32(hdr[24:28]))
		sum := binary.LittleEndian.Uint32(hdr[28:32])
		if seq == 0 || seq <= prevSeq || gen < prevGen {
			break
		}
		// length == 0 is legal: zero-length records still frame (their WR is
		// what advances the ack sequence). Zeroed-region garbage is caught by
		// the seq == 0 check above, not here.
		if length < 0 || length > maxLen || off < 0 || off+length > maxLen {
			break
		}
		if cell < 0 || pos+frameHdrSize+cell > int64(len(buf)) {
			break
		}
		payload := buf[pos+frameHdrSize : pos+frameHdrSize+cell]
		if frameSum(hdr[0:28], payload) != sum {
			break
		}
		out = append(out, frame{
			seq: seq, gen: gen, off: off, len: length, cell: payload,
			pos: pos, size: frameHdrSize + cell,
		})
		prevSeq, prevGen = seq, gen
		pos += frameHdrSize + cell
	}
	return out
}
