package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestCollectorBasics(t *testing.T) {
	c := New()
	if c.Len() != 0 {
		t.Fatalf("new collector Len = %d", c.Len())
	}
	run := c.AddRun()
	if run != 0 {
		t.Fatalf("first run = %d, want 0", run)
	}
	if c.AddRun() != 1 {
		t.Fatal("second run != 1")
	}

	root := c.Start(10, run, 1, "ncl", "record", "app", nil, Str("file", "wal"), Int("bytes", 128))
	child := c.Start(12, run, 1, "rdma", "write", "app", root)
	if root.ID != 1 || child.ID != 2 {
		t.Fatalf("ids = %d, %d; want 1, 2", root.ID, child.ID)
	}
	if child.Parent != root.ID {
		t.Fatalf("child.Parent = %d, want %d", child.Parent, root.ID)
	}
	if root.Done() {
		t.Fatal("unfinished span reports Done")
	}
	if root.Dur() != 0 {
		t.Fatal("unfinished span has nonzero Dur")
	}
	c.End(child, 20)
	c.End(root, 25)
	c.End(root, 99) // idempotent
	if root.End != 25 {
		t.Fatalf("End not idempotent: %v", root.End)
	}
	if root.Dur() != 15 || child.Dur() != 8 {
		t.Fatalf("durations = %v, %v", root.Dur(), child.Dur())
	}
	if root.StrAttr("file") != "wal" || root.IntAttr("bytes") != 128 {
		t.Fatalf("attrs lost: %v", root.Attrs)
	}
	if root.StrAttr("missing") != "" || root.IntAttr("missing") != 0 {
		t.Fatal("missing attrs should be zero")
	}
}

func TestNilSafety(t *testing.T) {
	var c *Collector
	if c.Len() != 0 || c.Spans() != nil || c.Since(0) != nil {
		t.Fatal("nil collector accessors not zero")
	}
	c.End(nil, 5) // must not panic
	var sp *Span
	if sp.Dur() != 0 || sp.Done() || sp.StrAttr("x") != "" || sp.IntAttr("x") != 0 {
		t.Fatal("nil span accessors not zero")
	}
	sp.SetAttr(Str("k", "v")) // must not panic
}

func TestSinceAndQueries(t *testing.T) {
	c := New()
	run := c.AddRun()
	a := c.Start(0, run, 1, "ncl", "recover.getpeer", "n1", nil)
	c.End(a, 5)
	mark := c.Len()
	b := c.Start(5, run, 1, "ncl", "recover.rdmaread", "n1", nil)
	c.End(b, 30)
	d := c.Start(30, run, 1, "dfs", "fsync", "n1", nil)
	c.End(d, 40)

	since := c.Since(mark)
	if len(since) != 2 {
		t.Fatalf("Since(mark) = %d spans, want 2", len(since))
	}
	if c.Since(-1) == nil || len(c.Since(-1)) != 3 {
		t.Fatal("Since(-1) should clamp to all spans")
	}
	if c.Since(99) != nil {
		t.Fatal("Since past end should be nil")
	}
	if got := Sum(since, "ncl", "recover.rdmaread"); got != 25 {
		t.Fatalf("Sum = %v, want 25", got)
	}
	if got := Sum(c.Spans(), "ncl", "recover."); got != 30 {
		t.Fatalf("prefix Sum = %v, want 30", got)
	}
	if Count(c.Spans(), "", "") != 3 {
		t.Fatal("Count all != 3")
	}
	if First(c.Spans(), "dfs", "") != d {
		t.Fatal("First dfs span wrong")
	}
	if First(c.Spans(), "rdma", "") != nil {
		t.Fatal("First on absent layer should be nil")
	}
	if got := Filter(c.Spans(), "ncl", ""); len(got) != 2 {
		t.Fatalf("Filter ncl = %d spans", len(got))
	}
}

func TestAggregate(t *testing.T) {
	c := New()
	run := c.AddRun()
	for i, d := range []time.Duration{10, 20, 30} {
		sp := c.Start(time.Duration(i*100), run, 1, "ncl", "record", "app", nil)
		c.End(sp, time.Duration(i*100)+d)
	}
	open := c.Start(999, run, 1, "ncl", "record", "app", nil)
	_ = open // never ended: must be excluded
	sp := c.Start(0, run, 1, "dfs", "fsync", "app", nil)
	c.End(sp, 7)

	rows := Aggregate(c.Spans())
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	// Sorted by layer: dfs before ncl.
	if rows[0].Layer != "dfs" || rows[1].Layer != "ncl" {
		t.Fatalf("row order: %+v", rows)
	}
	r := rows[1]
	if r.Count != 3 || r.Total != 60 || r.Min != 10 || r.Max != 30 || r.Mean() != 20 {
		t.Fatalf("ncl row = %+v", r)
	}
	out := RenderAggregate(rows)
	if !strings.Contains(out, "record") || !strings.Contains(out, "fsync") {
		t.Fatalf("render missing rows:\n%s", out)
	}
	if (AggRow{}).Mean() != 0 {
		t.Fatal("empty row Mean should be 0")
	}
}

func TestChromeExport(t *testing.T) {
	c := New()
	run := c.AddRun()
	sp := c.Start(1500, run, 3, "ncl", "record", "app", nil, Str("file", "a\"b"), Int("bytes", 128))
	c.End(sp, 2750)
	async := c.Start(1600, run, 3, "rdma", "write", "app", sp)
	async.Async = true
	c.End(async, 2500)
	open := c.Start(5000, run, 3, "ncl", "record", "app", nil)
	_ = open // unfinished: excluded from export

	var buf bytes.Buffer
	if err := WriteChrome(&buf, c.Spans()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	// 1 X event + b/e pair = 3 events.
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	if events[0]["ph"] != "X" || events[0]["name"] != "record@app" {
		t.Fatalf("first event: %v", events[0])
	}
	if events[0]["ts"].(float64) != 1.5 || events[0]["dur"].(float64) != 1.25 {
		t.Fatalf("timestamps: ts=%v dur=%v", events[0]["ts"], events[0]["dur"])
	}
	args := events[0]["args"].(map[string]any)
	if args["file"] != `a"b` || args["bytes"].(float64) != 128 {
		t.Fatalf("args: %v", args)
	}
	if events[1]["ph"] != "b" || events[2]["ph"] != "e" {
		t.Fatalf("async pair: %v %v", events[1]["ph"], events[2]["ph"])
	}
	if events[1]["id"] != events[2]["id"] {
		t.Fatal("async begin/end ids differ")
	}

	// Determinism: same spans, same bytes.
	var buf2 bytes.Buffer
	if err := WriteChrome(&buf2, c.Spans()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("two exports of the same spans differ")
	}
}

func TestChromeFile(t *testing.T) {
	c := New()
	sp := c.Start(0, c.AddRun(), 1, "app", "op", "n", nil)
	c.End(sp, 10)
	path := t.TempDir() + "/trace.json"
	if err := WriteChromeFile(path, c.Spans()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeFile("/nonexistent-dir/x/y.json", c.Spans()); err == nil {
		t.Fatal("expected error for bad path")
	}
}
