// Package trace is a deterministic span layer over simnet virtual time.
//
// A Span records one operation inside the simulator: which layer emitted it
// (rpc, rdma, dfs, raft, controller, peer, ncl, core, app), the operation
// name, the node it ran on, its start/end virtual timestamps, and an optional
// parent. Because every timestamp comes from the simulated clock and span IDs
// are assigned in creation order by a single collector, two runs of the same
// experiment with the same profile and seed produce byte-identical traces.
//
// Tracing costs nothing when disabled: layers obtain spans through
// simnet.Proc.StartSpan, which returns nil when no collector is attached, and
// every trace call tolerates nil receivers/spans.
//
// The package imports only the standard library so that every other layer
// (including simnet itself) can depend on it without cycles.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// SpanID identifies a span within one Collector. IDs are assigned in creation
// order starting at 1; 0 means "no span" (used for a root span's Parent).
type SpanID uint64

// Attr is a single key/value attribute attached to a span. Values are either
// strings or integers; keeping the two cases explicit avoids interface boxing
// on the hot path.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// Str builds a string attribute.
func Str(key, val string) Attr { return Attr{Key: key, Str: val} }

// Int builds an integer attribute.
func Int(key string, val int64) Attr { return Attr{Key: key, Int: val, IsInt: true} }

// Value renders the attribute value as a string (for tables and tests).
func (a Attr) Value() string {
	if a.IsInt {
		return fmt.Sprintf("%d", a.Int)
	}
	return a.Str
}

// Span is one traced operation on the virtual clock. Start and End are
// virtual-time offsets from the simulation epoch; End == Start is legal
// (instantaneous spans), End < Start never happens for finished spans, and an
// unfinished span has End == -1.
type Span struct {
	ID     SpanID
	Parent SpanID // 0 for root spans
	Layer  string // "rpc", "rdma", "dfs", "raft", "controller", "peer", "ncl", "core", "app"
	Op     string // e.g. "record", "recover.rdmaread", "call:peer3/setup"
	Node   string // node the span ran on ("" if none)
	Run    int    // which Sim produced it (collectors can outlive one cluster)
	TID    uint64 // proc id that opened the span (Chrome thread lane)
	Start  time.Duration
	End    time.Duration
	Attrs  []Attr
	// Async marks spans whose lifetime crosses procs (e.g. an RDMA work
	// request posted by one proc and completed by the NIC engine). They are
	// exported as Chrome async (b/e) events instead of complete (X) events.
	Async bool

	prev *Span // saved proc context, restored by Proc.EndSpan
}

// Dur returns the span duration (0 for unfinished spans).
func (s *Span) Dur() time.Duration {
	if s == nil || s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// Done reports whether the span has been ended.
func (s *Span) Done() bool { return s != nil && s.End >= s.Start }

// SetAttr appends an attribute to an in-flight span. Safe on nil spans so
// call sites don't need to guard on tracing being enabled.
func (s *Span) SetAttr(a Attr) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, a)
}

// StrAttr returns the named string attribute ("" if absent).
func (s *Span) StrAttr(key string) string {
	if s == nil {
		return ""
	}
	for _, a := range s.Attrs {
		if a.Key == key && !a.IsInt {
			return a.Str
		}
	}
	return ""
}

// IntAttr returns the named integer attribute (0 if absent).
func (s *Span) IntAttr(key string) int64 {
	if s == nil {
		return 0
	}
	for _, a := range s.Attrs {
		if a.Key == key && a.IsInt {
			return a.Int
		}
	}
	return 0
}

// Prev returns the enclosing span saved when this span was started. simnet
// uses it to restore a proc's span context on EndSpan; other code should not
// need it.
func (s *Span) Prev() *Span {
	if s == nil {
		return nil
	}
	return s.prev
}

// Collector accumulates spans for one or more simulation runs. It is not
// safe for concurrent use from real OS threads, but simnet's single execution
// token means at most one proc runs at a time, so no locking is needed.
type Collector struct {
	spans []*Span
	runs  int
}

// New returns an empty collector.
func New() *Collector { return &Collector{} }

// AddRun allocates a run number for a Sim attaching to this collector.
// Numbers start at 0 and become the Chrome "pid" so multiple clusters
// sharing one collector stay distinguishable.
func (c *Collector) AddRun() int {
	r := c.runs
	c.runs++
	return r
}

// Start opens a span. parent may be nil. The caller supplies the virtual
// clock reading; the collector never consults wall time.
func (c *Collector) Start(now time.Duration, run int, tid uint64, layer, op, node string, parent *Span, attrs ...Attr) *Span {
	sp := &Span{
		ID:    SpanID(len(c.spans) + 1),
		Layer: layer,
		Op:    op,
		Node:  node,
		Run:   run,
		TID:   tid,
		Start: now,
		End:   -1,
		prev:  parent,
	}
	if parent != nil {
		sp.Parent = parent.ID
	}
	if len(attrs) > 0 {
		sp.Attrs = append(sp.Attrs, attrs...)
	}
	c.spans = append(c.spans, sp)
	return sp
}

// End finishes a span at the given virtual time. Nil-safe and idempotent.
func (c *Collector) End(sp *Span, now time.Duration) {
	if c == nil || sp == nil || sp.Done() {
		return
	}
	sp.End = now
}

// Len returns the number of spans recorded so far. Benches use it as a mark
// before an operation and query Since(mark) afterwards.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	return len(c.spans)
}

// Spans returns all recorded spans in creation order. The slice is the
// collector's backing store; callers must not mutate it.
func (c *Collector) Spans() []*Span {
	if c == nil {
		return nil
	}
	return c.spans
}

// Since returns the spans recorded at or after the given mark (a previous
// Len() reading).
func (c *Collector) Since(mark int) []*Span {
	if c == nil || mark >= len(c.spans) {
		return nil
	}
	if mark < 0 {
		mark = 0
	}
	return c.spans[mark:]
}

// Filter returns the spans matching layer and op. Either may be "" to match
// everything; op may also end in "." to match a prefix (e.g. "recover.").
func Filter(spans []*Span, layer, op string) []*Span {
	var out []*Span
	for _, s := range spans {
		if matches(s, layer, op) {
			out = append(out, s)
		}
	}
	return out
}

// First returns the first span matching layer/op, or nil.
func First(spans []*Span, layer, op string) *Span {
	for _, s := range spans {
		if matches(s, layer, op) {
			return s
		}
	}
	return nil
}

// Sum adds up the durations of finished spans matching layer/op.
func Sum(spans []*Span, layer, op string) time.Duration {
	var total time.Duration
	for _, s := range spans {
		if matches(s, layer, op) && s.Done() {
			total += s.Dur()
		}
	}
	return total
}

// Count returns the number of spans matching layer/op.
func Count(spans []*Span, layer, op string) int {
	n := 0
	for _, s := range spans {
		if matches(s, layer, op) {
			n++
		}
	}
	return n
}

func matches(s *Span, layer, op string) bool {
	if layer != "" && s.Layer != layer {
		return false
	}
	switch {
	case op == "":
		return true
	case strings.HasSuffix(op, "."):
		return strings.HasPrefix(s.Op, op)
	default:
		return s.Op == op
	}
}

// AggRow is one line of the per-phase aggregation table: all finished spans
// of a given (layer, op) pair folded together.
type AggRow struct {
	Layer string
	Op    string
	Count int
	Total time.Duration
	Min   time.Duration
	Max   time.Duration
}

// Mean returns the average span duration for the row.
func (r AggRow) Mean() time.Duration {
	if r.Count == 0 {
		return 0
	}
	return r.Total / time.Duration(r.Count)
}

// Aggregate folds finished spans into per-(layer, op) rows, sorted by layer
// then op so output is deterministic.
func Aggregate(spans []*Span) []AggRow {
	idx := map[[2]string]int{}
	var rows []AggRow
	for _, s := range spans {
		if !s.Done() {
			continue
		}
		key := [2]string{s.Layer, s.Op}
		i, ok := idx[key]
		if !ok {
			i = len(rows)
			idx[key] = i
			rows = append(rows, AggRow{Layer: s.Layer, Op: s.Op, Min: s.Dur(), Max: s.Dur()})
		}
		r := &rows[i]
		r.Count++
		r.Total += s.Dur()
		if d := s.Dur(); d < r.Min {
			r.Min = d
		} else if d > r.Max {
			r.Max = d
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Layer != rows[j].Layer {
			return rows[i].Layer < rows[j].Layer
		}
		return rows[i].Op < rows[j].Op
	})
	return rows
}

// RenderAggregate formats aggregation rows as an aligned text table.
func RenderAggregate(rows []AggRow) string {
	var b strings.Builder
	header := []string{"layer", "op", "count", "total", "mean", "min", "max"}
	cells := make([][]string, 0, len(rows)+1)
	cells = append(cells, header)
	for _, r := range rows {
		cells = append(cells, []string{
			r.Layer, r.Op, fmt.Sprintf("%d", r.Count),
			fmtDur(r.Total), fmtDur(r.Mean()), fmtDur(r.Min), fmtDur(r.Max),
		})
	}
	width := make([]int, len(header))
	for _, row := range cells {
		for i, cell := range row {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	for ri, row := range cells {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(row)-1 {
				b.WriteString(strings.Repeat(" ", width[i]-len(cell)))
			}
		}
		b.WriteString("\n")
		if ri == 0 {
			total := 0
			for _, w := range width {
				total += w
			}
			b.WriteString(strings.Repeat("-", total+2*(len(width)-1)))
			b.WriteString("\n")
		}
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Nanosecond).String()
}
