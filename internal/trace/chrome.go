package trace

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

// WriteChrome writes spans in the Chrome trace-event JSON format (the
// chrome://tracing / Perfetto "JSON Array" flavour). Regular spans become
// complete ("X") events; async spans (RDMA work requests, whose lifetime
// crosses procs) become begin/end ("b"/"e") pairs so the viewer draws them in
// their own async lanes.
//
// Timestamps are the span's virtual-clock offsets in microseconds (floats, so
// sub-microsecond events stay visible), pid is the run number and tid is the
// proc that opened the span. Output is fully deterministic: spans are emitted
// in creation order with no wall-clock or map-iteration dependence.
func WriteChrome(w io.Writer, spans []*Span) error {
	bw := &errWriter{w: w}
	bw.str("[\n")
	first := true
	for _, s := range spans {
		if !s.Done() {
			continue
		}
		if !first {
			bw.str(",\n")
		}
		first = false
		writeChromeEvent(bw, s)
	}
	bw.str("\n]\n")
	return bw.err
}

// WriteChromeFile writes the trace to path, creating or truncating it.
func WriteChromeFile(path string, spans []*Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChrome(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeChromeEvent(w *errWriter, s *Span) {
	name := s.Op
	if s.Node != "" {
		name = s.Op + "@" + s.Node
	}
	args := chromeArgs(s)
	if s.Async {
		// Async begin/end pair sharing one id; cat is required for matching.
		w.str(`{"name":`)
		w.jstr(name)
		w.str(`,"cat":`)
		w.jstr(s.Layer)
		w.str(fmt.Sprintf(`,"ph":"b","id":%d,"pid":%d,"tid":%d,"ts":%s,"args":%s}`,
			s.ID, s.Run, s.TID, usec(s.Start), args))
		w.str(",\n")
		w.str(`{"name":`)
		w.jstr(name)
		w.str(`,"cat":`)
		w.jstr(s.Layer)
		w.str(fmt.Sprintf(`,"ph":"e","id":%d,"pid":%d,"tid":%d,"ts":%s}`,
			s.ID, s.Run, s.TID, usec(s.End)))
		return
	}
	w.str(`{"name":`)
	w.jstr(name)
	w.str(`,"cat":`)
	w.jstr(s.Layer)
	w.str(fmt.Sprintf(`,"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":%s}`,
		s.Run, s.TID, usec(s.Start), usec(s.End-s.Start), args))
}

func chromeArgs(s *Span) string {
	var b strings.Builder
	b.WriteString("{")
	fmt.Fprintf(&b, `"span":%d`, s.ID)
	if s.Parent != 0 {
		fmt.Fprintf(&b, `,"parent":%d`, s.Parent)
	}
	for _, a := range s.Attrs {
		b.WriteString(",")
		b.WriteString(quoteJSON(a.Key))
		b.WriteString(":")
		if a.IsInt {
			fmt.Fprintf(&b, "%d", a.Int)
		} else {
			b.WriteString(quoteJSON(a.Str))
		}
	}
	b.WriteString("}")
	return b.String()
}

// usec renders a virtual duration as microseconds with nanosecond precision,
// trimming trailing zeros so output is compact and stable.
func usec(d time.Duration) string {
	ns := d.Nanoseconds()
	if ns%1000 == 0 {
		return fmt.Sprintf("%d", ns/1000)
	}
	s := fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
	return strings.TrimRight(s, "0")
}

func quoteJSON(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}

type errWriter struct {
	w   io.Writer
	err error
}

func (w *errWriter) str(s string) {
	if w.err != nil {
		return
	}
	_, w.err = io.WriteString(w.w, s)
}

func (w *errWriter) jstr(s string) { w.str(quoteJSON(s)) }
