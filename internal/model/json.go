package model

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Save writes the profile to path as indented JSON. Durations serialize as
// integer nanoseconds, bandwidths as bytes/second — the format round-trips
// through Load exactly.
func (p *Profile) Save(path string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("model: marshal profile: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a profile previously written by Save (or hand-edited). Fields
// absent from the file keep the baseline's value, so a custom profile only
// needs to spell out what it changes.
func Load(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("model: load profile: %w", err)
	}
	p := Baseline()
	if err := json.Unmarshal(data, p); err != nil {
		return nil, fmt.Errorf("model: parse profile %s: %w", path, err)
	}
	if p.Name == "" {
		p.Name = path
	}
	return p, nil
}

// Resolve turns a -profile flag value into a profile: a built-in name
// (see Names) or a path to a JSON file (anything containing a path
// separator or ending in .json).
func Resolve(nameOrPath string) (*Profile, error) {
	if p, ok := ByName(nameOrPath); ok {
		return p, nil
	}
	if strings.ContainsAny(nameOrPath, "/\\") || strings.HasSuffix(nameOrPath, ".json") {
		return Load(nameOrPath)
	}
	return nil, fmt.Errorf("%w %q (built-in: %s; or pass a .json file)",
		ErrUnknownProfile, nameOrPath, strings.Join(Names(), ", "))
}
