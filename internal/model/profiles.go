package model

import (
	"fmt"
	"sort"
	"time"
)

// cx4RoCE25 is the paper-faithful baseline, built once and cloned on every
// request so callers can mutate their copy freely.
//
// Provenance (DESIGN.md §4, all targets from the paper's §5 testbed —
// 8-node CloudLab cluster, Mellanox CX-4 NICs on 25 Gb RoCE, CephFS on
// 3-replica SATA SSDs, ZooKeeper controller, E5-2640v4 servers):
//
//   - RDMA: 1-sided write ≈ 1.5 µs base + size/3 GB/s; one app write is a
//     data WR + 16 B seq WR (SQ-ordered) ⇒ 128 B NCL record ≈ 3 µs fabric
//     time (paper end-to-end: 4.6 µs). MR registration 2 ms + size/1.2 GB/s
//     ⇒ 60 MB ≈ 54 ms (Table 3 "connect to new peer and set up MR").
//   - dfs: sync write ≈ 2.3 ms fixed (client→primary→2 replicas) +
//     size/500 MB/s (Table 1, Fig 8 "strong"); Fig 1(d): 512 B ≈ 0.2 MB/s
//     vs 64 MB ≈ 450 MB/s (≈3 orders of magnitude).
//   - Local ext4 on a SATA SSD (Fig 11b comparison): sync ≈ 0.9 ms,
//     ~450-520 MB/s.
//   - Controller: Raft quorum commit dominated by two ~0.8 ms log fsyncs
//     ⇒ ~1.6-2 ms per metadata op (paper's ZooKeeper: 2-4 ms,
//     Table 3 "get peer"/"ap-map").
//   - Apps: kvstore ~3.8 µs CPU per group-committed op (weak ≈ 230 KOps/s
//     at 12 clients), redstore ~8.6 µs single-threaded op, litedb ~180 µs
//     per transaction, kvell ~2 µs per put.
//   - NetLatency: 5 µs one-way, RDMA-class datacenter fabric.
var cx4RoCE25 = Profile{
	Name: "CX4RoCE25",
	Provenance: "Paper-faithful baseline: Mellanox CX-4 / 25 Gb RoCE, CephFS on " +
		"3-replica SATA SSDs, ZooKeeper-class controller (DESIGN.md §4).",
	RDMA: RDMAParams{
		WRBase:       1500 * time.Nanosecond,
		Bandwidth:    3e9, // ~25 Gb/s RoCE
		RegFixed:     2 * time.Millisecond,
		RegBandwidth: 1.2e9,
		ConnectBase:  30 * time.Microsecond,
		RetryTimeout: 1 * time.Millisecond,
	},
	DFS: DFSParams{
		SyncFixed:            2300 * time.Microsecond,
		SyncCleanFixed:       250 * time.Microsecond,
		WriteBandwidth:       500e6,
		ReadFixed:            550 * time.Microsecond,
		ReadBandwidth:        1e9,
		MetaFixed:            500 * time.Microsecond,
		SyscallFixed:         800 * time.Nanosecond,
		MemBandwidth:         10e9,
		ReadaheadWindow:      4 << 20,
		CacheBlock:           64 << 10,
		CacheCapacity:        256 << 20,
		DirtyHighWater:       64 << 20,
		WritebackInterval:    500 * time.Millisecond,
		WritebackThrottleMax: 2500 * time.Nanosecond,
		// Extent plane: 16 storage nodes, 4 MB extents on 3-node chains
		// (CephFS-class replication factor), 512 KB frames with an 8-frame
		// window. Links run at the fabric's 3 GB/s; each node drains its
		// append log to a SATA SSD at the same 500 MB/s the flat path
		// models, but off the ack path (DXRAM-style backup logging), so a
		// 64 MB append is bounded by client egress (~21 ms) instead of the
		// shared 500 MB/s pipe plus sync round trip (~137 ms).
		ExtentNodes:        16,
		ExtentSize:         4 << 20,
		ChainLength:        3,
		ChainFrame:         512 << 10,
		ChainWindow:        8,
		LinkBandwidth:      3e9,
		NodeWriteBandwidth: 500e6,
		AppendFixed:        20 * time.Microsecond,
	},
	LocalFS: DFSParams{
		SyncFixed:            900 * time.Microsecond,
		SyncCleanFixed:       60 * time.Microsecond,
		WriteBandwidth:       450e6,
		ReadFixed:            90 * time.Microsecond,
		ReadBandwidth:        520e6,
		MetaFixed:            60 * time.Microsecond,
		SyscallFixed:         800 * time.Nanosecond,
		MemBandwidth:         10e9,
		ReadaheadWindow:      4 << 20,
		CacheBlock:           64 << 10,
		CacheCapacity:        256 << 20,
		DirtyHighWater:       64 << 20,
		WritebackInterval:    500 * time.Millisecond,
		WritebackThrottleMax: 2500 * time.Nanosecond,
	},
	Controller: ControllerConfig{
		Raft: RaftConfig{
			HeartbeatInterval:  20 * time.Millisecond,
			ElectionTimeoutMin: 100 * time.Millisecond,
			ElectionTimeoutMax: 200 * time.Millisecond,
			FsyncCost:          800 * time.Microsecond,
			// Single-threaded apply/response path of a ZooKeeper-class
			// service on the testbed's E5-2640v4 servers: ~8K linearizable
			// writes/s per ensemble once the log fsyncs are group-committed.
			ApplyCPU:       120 * time.Microsecond,
			ProposeTimeout: 2 * time.Second,
		},
		SessionTimeout: 600 * time.Millisecond,
		KeepAlive:      150 * time.Millisecond,
		ExpiryScan:     200 * time.Millisecond,
		OpTimeout:      3 * time.Second,
	},
	Peer: PeerConfig{
		LendableMem: 1 << 30,
		GCInterval:  2 * time.Second,
		// The no-entry grace must outlast a worst-case open attempt against
		// a saturated controller — region setup succeeds immediately but the
		// ap-map update behind it can burn several 3 s proposal deadlines
		// before committing. Sweeping sooner frees a region the application
		// is about to write through. Retried setups re-arm the clock.
		GCGrace:  15 * time.Second,
		SetupCPU: 200 * time.Microsecond,
	},
	NCL: NCLConfig{
		Replication:       "mirror",
		DefaultRegionSize: 64 << 20,
		// ~6 GB/s single-core systematic RS encode (ISA-L-class GF(2^8)
		// SIMD kernels on the testbed's E5-2640v4).
		EncodeBandwidth: 6e9,
		RecordCPU:       900 * time.Nanosecond,
		AckTimeout:      5 * time.Millisecond,
		SetupRetries:    8,
		CatchupCopyCPU:  10e9,
		SuspectCooldown: 2 * time.Second,
		ReadOverhead:    2 * time.Microsecond,
		LocalReadCPU:    300 * time.Nanosecond,
		SyncCPU:         200 * time.Nanosecond,
	},
	Apps: AppCosts{
		KVStore: KVStoreCosts{
			EncodeCPU:     600 * time.Nanosecond,
			ApplyCPU:      2500 * time.Nanosecond,
			GetCPU:        1800 * time.Nanosecond,
			MergeCPU:      200 * time.Nanosecond,
			SlowdownDelay: 200 * time.Microsecond,
		},
		RedStore: RedStoreCosts{
			OpCPU:          8600 * time.Nanosecond,
			SnapshotCopyBW: 8e9,
		},
		LiteDB: LiteDBCosts{
			TxnCPU:  170 * time.Microsecond,
			ReadCPU: 70 * time.Microsecond,
		},
		KVell: KVellCosts{
			PutCPU: 2 * time.Microsecond,
			GetCPU: 1500 * time.Nanosecond,
		},
	},
	NetLatency: 5 * time.Microsecond,
}

// CX4RoCE25 returns the paper-faithful baseline profile: Mellanox CX-4
// NICs on 25 Gb RoCE with CephFS on SATA SSDs, calibrated to the paper's
// measurements (see the provenance comment on the definition).
func CX4RoCE25() *Profile { return cx4RoCE25.clone() }

// Baseline is the profile every Default*() wrapper and nil-profile option
// resolves to: CX4RoCE25.
func Baseline() *Profile { return CX4RoCE25() }

// CX6RoCE100 is the faster-fabric variant: Mellanox CX-6 class NICs on
// 100 Gb RoCE. Storage and applications are unchanged so sweeps isolate
// the fabric axis (the performance-efficiency axis Hydra explores for
// resilient remote memory).
//
// Provenance: CX-6 Dx datasheets and published microbenchmarks — ~0.8 µs
// small-write latency (vs 1.5 µs on CX-4), ~4x line rate (100 Gb/s ⇒
// ~12 GB/s per QP), faster rkey programming on registration, and a
// lower-latency switch generation (2 µs one-way).
func CX6RoCE100() *Profile {
	p := CX4RoCE25()
	p.Name = "CX6RoCE100"
	p.Provenance = "Faster fabric: Mellanox CX-6 class / 100 Gb RoCE " +
		"(~0.8 us WR base, ~12 GB/s line rate); storage and apps unchanged."
	p.RDMA.WRBase = 800 * time.Nanosecond
	p.RDMA.Bandwidth = 12e9 // ~100 Gb/s
	p.RDMA.RegFixed = 1500 * time.Microsecond
	p.RDMA.RegBandwidth = 2.4e9
	p.RDMA.ConnectBase = 20 * time.Microsecond
	// Chain links ride the same fabric: a faster NIC raises per-link
	// bandwidth for extent appends even though the disks are unchanged.
	p.DFS.LinkBandwidth = 12e9
	p.NetLatency = 2 * time.Microsecond
	return p
}

// FastDFS is the NVMe-class storage variant: the disaggregated file
// system's replicas sit on NVMe flash instead of SATA SSDs (and the local
// comparison disk is NVMe too). The fabric is unchanged so sweeps isolate
// the storage axis.
//
// Provenance: datacenter NVMe-over-fabrics deployments — small replicated
// sync writes in the 300-500 µs range (vs 2.3 ms), ~2 GB/s shared write
// bandwidth, ~100 µs fetch latency.
func FastDFS() *Profile {
	p := CX4RoCE25()
	p.Name = "FastDFS"
	p.Provenance = "NVMe-class storage: dfs sync ~0.4 ms / 2 GB/s, " +
		"reads ~120 us / 3 GB/s; fabric and apps unchanged."
	p.DFS.SyncFixed = 400 * time.Microsecond
	p.DFS.SyncCleanFixed = 80 * time.Microsecond
	p.DFS.WriteBandwidth = 2e9
	p.DFS.ReadFixed = 120 * time.Microsecond
	p.DFS.ReadBandwidth = 3e9
	p.DFS.MetaFixed = 150 * time.Microsecond
	// NVMe storage nodes drain their append logs ~4x faster; the ack path
	// (links + memory commit) is fabric-bound and unchanged.
	p.DFS.NodeWriteBandwidth = 2e9
	p.LocalFS.SyncFixed = 150 * time.Microsecond
	p.LocalFS.SyncCleanFixed = 20 * time.Microsecond
	p.LocalFS.WriteBandwidth = 1.8e9
	p.LocalFS.ReadFixed = 40 * time.Microsecond
	p.LocalFS.ReadBandwidth = 2.5e9
	p.LocalFS.MetaFixed = 30 * time.Microsecond
	return p
}

// named maps profile names to constructors. Registration happens here so
// Names/ByName stay in sync with the constructors above.
var named = map[string]func() *Profile{
	"CX4RoCE25":  CX4RoCE25,
	"CX6RoCE100": CX6RoCE100,
	"FastDFS":    FastDFS,
}

// Names lists the built-in profile names, baseline first, rest sorted.
func Names() []string {
	out := []string{"CX4RoCE25"}
	var rest []string
	for name := range named {
		if name != "CX4RoCE25" {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// ByName returns a fresh copy of the named built-in profile.
func ByName(name string) (*Profile, bool) {
	mk, ok := named[name]
	if !ok {
		return nil, false
	}
	return mk(), true
}

// ErrUnknownProfile is wrapped by Resolve for unrecognized names.
var ErrUnknownProfile = fmt.Errorf("model: unknown profile")
