package model_test

import (
	"testing"

	"splitft/internal/bench"
	"splitft/internal/model"
)

// TestCalibrationGate is the regression gate: it runs the real micro-probes
// on the full simulated stack and fails if any lands outside its profile-
// derived band. A change that shifts the cost model (deliberately or not)
// must update internal/model, not slip through.
func TestCalibrationGate(t *testing.T) {
	for _, name := range model.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			prof, ok := model.ByName(name)
			if !ok {
				t.Fatalf("unknown profile %q", name)
			}
			sc := bench.QuickScale()
			sc.Profile = prof
			rep, err := bench.Calibrate(sc, 1)
			if err != nil {
				t.Fatal(err)
			}
			t.Log("\n" + rep.Render())
			if !rep.Pass() {
				t.Errorf("calibration failed for %s", name)
			}
		})
	}
}
