package model

import (
	"errors"
	"path/filepath"
	"testing"
	"time"
)

func TestBaselineConstants(t *testing.T) {
	p := Baseline()
	// Spot-check values migrated from the per-package Default* functions;
	// a drift here silently re-calibrates every experiment.
	if p.Name != "CX4RoCE25" {
		t.Errorf("baseline name = %q, want CX4RoCE25", p.Name)
	}
	if p.RDMA.WRBase != 1500*time.Nanosecond {
		t.Errorf("RDMA.WRBase = %v, want 1.5us", p.RDMA.WRBase)
	}
	if p.RDMA.Bandwidth != 3e9 {
		t.Errorf("RDMA.Bandwidth = %v, want 3e9", p.RDMA.Bandwidth)
	}
	if p.DFS.SyncFixed != 2300*time.Microsecond {
		t.Errorf("DFS.SyncFixed = %v, want 2.3ms", p.DFS.SyncFixed)
	}
	if p.LocalFS.SyncFixed != 900*time.Microsecond {
		t.Errorf("LocalFS.SyncFixed = %v, want 0.9ms", p.LocalFS.SyncFixed)
	}
	if p.Controller.Raft.FsyncCost != 800*time.Microsecond {
		t.Errorf("Raft.FsyncCost = %v, want 0.8ms", p.Controller.Raft.FsyncCost)
	}
	if p.Peer.LendableMem != 1<<30 {
		t.Errorf("Peer.LendableMem = %v, want 1GiB", p.Peer.LendableMem)
	}
	if p.NCL.Replication != "mirror" || p.NCL.SuspectCooldown != 2*time.Second {
		t.Errorf("NCL = %+v, want Replication=mirror, SuspectCooldown=2s", p.NCL)
	}
	if p.NCL.DefaultRegionSize != 64<<20 {
		t.Errorf("NCL.DefaultRegionSize = %d, want 64MiB", p.NCL.DefaultRegionSize)
	}
	if p.Apps.KVStore.EncodeCPU != 600*time.Nanosecond {
		t.Errorf("KVStore.EncodeCPU = %v, want 600ns", p.Apps.KVStore.EncodeCPU)
	}
	if p.NetLatency != 5*time.Microsecond {
		t.Errorf("NetLatency = %v, want 5us", p.NetLatency)
	}
}

func TestProfilesAreIsolatedCopies(t *testing.T) {
	a := Baseline()
	a.RDMA.WRBase = time.Hour
	if b := Baseline(); b.RDMA.WRBase == time.Hour {
		t.Fatal("mutating a returned profile leaked into the shared baseline")
	}
}

func TestNamesAndByName(t *testing.T) {
	names := Names()
	if len(names) != 3 || names[0] != "CX4RoCE25" {
		t.Fatalf("Names() = %v, want baseline first of three", names)
	}
	for _, n := range names {
		p, ok := ByName(n)
		if !ok || p.Name != n {
			t.Errorf("ByName(%q) = %v, %v", n, p, ok)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted an unknown name")
	}
}

func TestVariantProfilesMoveTheRightAxis(t *testing.T) {
	base := Baseline()
	cx6 := CX6RoCE100()
	if cx6.RDMA.WRBase >= base.RDMA.WRBase || cx6.RDMA.Bandwidth <= base.RDMA.Bandwidth {
		t.Errorf("CX6RoCE100 fabric not faster: %+v", cx6.RDMA)
	}
	// A faster NIC speeds up the dfs chain links (LinkBandwidth) but must
	// leave the storage medium itself alone.
	if cx6.DFS.LinkBandwidth <= base.DFS.LinkBandwidth {
		t.Errorf("CX6RoCE100 chain links not faster: %v", cx6.DFS.LinkBandwidth)
	}
	cx6DFS := cx6.DFS
	cx6DFS.LinkBandwidth = base.DFS.LinkBandwidth
	if cx6DFS != base.DFS {
		t.Error("CX6RoCE100 should leave storage unchanged")
	}
	fast := FastDFS()
	if fast.DFS.SyncFixed >= base.DFS.SyncFixed || fast.DFS.WriteBandwidth <= base.DFS.WriteBandwidth {
		t.Errorf("FastDFS storage not faster: %+v", fast.DFS)
	}
	if fast.RDMA != base.RDMA {
		t.Error("FastDFS should leave the fabric unchanged")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prof.json")
	p := CX6RoCE100()
	p.DFS.SyncFixed = 1234 * time.Microsecond
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *p {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestResolve(t *testing.T) {
	if p, err := Resolve("CX6RoCE100"); err != nil || p.Name != "CX6RoCE100" {
		t.Errorf("Resolve(name) = %v, %v", p, err)
	}
	path := filepath.Join(t.TempDir(), "hw.json")
	if err := FastDFS().Save(path); err != nil {
		t.Fatal(err)
	}
	if p, err := Resolve(path); err != nil || p.Name != "FastDFS" {
		t.Errorf("Resolve(path) = %v, %v", p, err)
	}
	if _, err := Resolve("bogus"); !errors.Is(err, ErrUnknownProfile) {
		t.Errorf("Resolve(bogus) err = %v, want ErrUnknownProfile", err)
	}
	if _, err := Resolve(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("Resolve(missing file) should fail")
	}
}

func TestTargetsTrackTheProfile(t *testing.T) {
	base := Targets(Baseline())
	fast := Targets(CX6RoCE100())
	if len(base) != 5 || len(fast) != 5 {
		t.Fatalf("want 5 targets, got %d/%d", len(base), len(fast))
	}
	byProbe := func(ts []Target, probe string) Target {
		for _, x := range ts {
			if x.Probe == probe {
				return x
			}
		}
		t.Fatalf("missing target %s", probe)
		return Target{}
	}
	// A faster fabric must lower the NCL and MR expectations but leave the
	// dfs expectation alone.
	if f := byProbe(fast, ProbeNCLRecord128); f.Expect >= byProbe(base, ProbeNCLRecord128).Expect {
		t.Errorf("CX6 NCL target %v not below baseline", f.Expect)
	}
	if f := byProbe(fast, ProbeMRRegister60MB); f.Expect >= byProbe(base, ProbeMRRegister60MB).Expect {
		t.Errorf("CX6 MR target %v not below baseline", f.Expect)
	}
	if byProbe(fast, ProbeDFSSyncWrite128).Expect != byProbe(base, ProbeDFSSyncWrite128).Expect {
		t.Error("CX6 should not move the dfs target")
	}
	// Chain appends are link-bound, so the faster fabric lowers them too.
	if f := byProbe(fast, ProbeChainAppend64MB); f.Expect >= byProbe(base, ProbeChainAppend64MB).Expect {
		t.Errorf("CX6 chain-append target %v not below baseline", f.Expect)
	}
	// A profile without an extent plane has no chain target.
	noExt := Baseline()
	noExt.DFS.ExtentNodes = 0
	if got := Targets(noExt); len(got) != 4 {
		t.Errorf("extent-less profile: want 4 targets, got %d", len(got))
	}
	for _, x := range base {
		if x.Lo >= x.Expect || x.Hi <= x.Expect {
			t.Errorf("%s: band [%v, %v] does not bracket %v", x.Probe, x.Lo, x.Hi, x.Expect)
		}
	}
}

func TestCalibrateJudging(t *testing.T) {
	p := Baseline()
	ts := Targets(p)
	var good []Measurement
	for _, x := range ts {
		good = append(good, Measurement{Probe: x.Probe, Value: x.Expect})
	}
	if rep := Calibrate(p, good); !rep.Pass() {
		t.Errorf("on-target measurements failed:\n%s", rep.Render())
	}
	// One probe out of band fails the whole report.
	bad := append([]Measurement{}, good...)
	bad[0].Value = ts[0].Hi + time.Second
	if rep := Calibrate(p, bad); rep.Pass() {
		t.Error("out-of-band measurement passed")
	}
	// A missing probe fails too.
	if rep := Calibrate(p, good[1:]); rep.Pass() {
		t.Error("missing measurement passed")
	}
	if rep := Calibrate(p, nil); rep.Pass() {
		t.Error("empty measurements passed")
	}
}
