package model

import (
	"fmt"
	"time"
)

// The calibration gate: internal/bench runs micro-probes on the full
// simulated stack (bench.Calibrate) and this file judges the measurements
// against targets derived from the profile, so a change that silently
// shifts the cost model fails loudly. For the baseline profile the derived
// targets land on the paper's §4-of-DESIGN.md numbers: a 128 B NCL record
// in the low microseconds (paper end-to-end: 4.6 µs), a small dfs sync
// write ≈ 2.3 ms, a 60 MB MR registration ≈ 52-55 ms, and a controller
// metadata op of a couple of milliseconds (paper's ZooKeeper: 2-4 ms).

// Probe names shared between bench's probes and the targets here.
const (
	// ProbeNCLRecord128 is the average latency of a 128 B synchronous NCL
	// record (data WR + 16 B header WR per peer, majority-acked).
	ProbeNCLRecord128 = "ncl-record-128B"
	// ProbeDFSSyncWrite128 is the average latency of a 128 B write+fsync on
	// the disaggregated file system.
	ProbeDFSSyncWrite128 = "dfs-sync-write-128B"
	// ProbeMRRegister60MB is the cost of registering a 60 MB memory region.
	ProbeMRRegister60MB = "mr-register-60MB"
	// ProbeControllerOp is the average latency of a quorum-committed
	// controller metadata operation.
	ProbeControllerOp = "controller-op"
	// ProbeChainAppend64MB is the latency of a 64 MB buffered write made
	// durable through the extent plane's chained appends (fsync on an
	// extent-backed file). Only emitted for profiles with ExtentNodes > 0.
	ProbeChainAppend64MB = "dfs-chain-append-64MB"
)

// chainProbeBytes is the IO size of the chained-append probe (the paper's
// largest Fig 1(d) point, where the flat path is bandwidth-bound).
const chainProbeBytes = 64 << 20

// mrProbeBytes is the region size of the MR-registration probe (the
// paper's 60 MB recovery log, Table 3).
const mrProbeBytes = 60 << 20

// Target is a probe's expected value band under a given profile.
type Target struct {
	Probe string
	// Expect is the analytically derived expectation; Lo/Hi is the accepted
	// band around it (probes include real scheduling and protocol overhead
	// the closed-form expectation omits).
	Expect time.Duration
	Lo, Hi time.Duration
	// Formula documents how Expect derives from the profile.
	Formula string
}

func durOf(bytes int, bw float64) time.Duration {
	return time.Duration(float64(bytes) / bw * float64(time.Second))
}

// Targets derives the calibration targets from a profile. The formulas
// mirror what the simulation charges, so the gate works for any profile,
// not just the baseline.
func Targets(p *Profile) []Target {
	band := func(probe string, expect time.Duration, lo, hi float64, formula string) Target {
		return Target{
			Probe:   probe,
			Expect:  expect,
			Lo:      time.Duration(float64(expect) * lo),
			Hi:      time.Duration(float64(expect) * hi),
			Formula: formula,
		}
	}
	// One NCL record is a data WR and a 16 B header WR, SQ-ordered on each
	// peer's QP in parallel; the QP engine charges WRBase/2 + size/BW per
	// transfer plus WRBase/2 for the ack, so the record completes after
	// 2*WRBase + (128+16)/BW of fabric time (client CPU overlaps).
	ncl := 2*p.RDMA.WRBase + durOf(128+16, p.RDMA.Bandwidth)
	// A foreground sync of a small write pays the write syscall, the fixed
	// replication round trip and the payload's slice of the storage pipe.
	dfs := p.DFS.SyscallFixed + p.DFS.SyncFixed + durOf(128, p.DFS.WriteBandwidth)
	// MR registration is a pure cost-model charge: fixed + size/bandwidth.
	mr := p.RDMA.RegFixed + durOf(mrProbeBytes, p.RDMA.RegBandwidth)
	// A controller op is a Raft quorum commit: leader and follower each
	// fsync before acking, plus a few network hops.
	ctrl := 2*p.Controller.Raft.FsyncCost + 8*p.NetLatency
	out := []Target{
		band(ProbeNCLRecord128, ncl, 0.65, 1.7,
			"2*RDMA.WRBase + 144B/RDMA.Bandwidth"),
		band(ProbeDFSSyncWrite128, dfs, 0.8, 1.3,
			"DFS.SyscallFixed + DFS.SyncFixed + 128B/DFS.WriteBandwidth"),
		band(ProbeMRRegister60MB, mr, 0.9, 1.2,
			"RDMA.RegFixed + 60MB/RDMA.RegBandwidth"),
		band(ProbeControllerOp, ctrl, 0.5, 2.5,
			"2*Controller.Raft.FsyncCost + 8*NetLatency"),
	}
	if p.DFS.ExtentNodes > 0 {
		// A windowed chained append is bounded by serializing the payload
		// onto the client's egress link; the last frame then rides the chain
		// (per-hop fixed cost + two network hops each), and the manifest
		// commit closes the fsync. Frame pipelining overlaps everything else.
		chain := durOf(chainProbeBytes, p.DFS.LinkBandwidth) +
			time.Duration(p.DFS.ChainLength)*(p.DFS.AppendFixed+2*p.NetLatency) +
			p.DFS.MetaFixed
		out = append(out, band(ProbeChainAppend64MB, chain, 0.8, 1.4,
			"64MB/DFS.LinkBandwidth + ChainLength*(AppendFixed+2*NetLatency) + DFS.MetaFixed"))
	}
	return out
}

// Measurement is one probe's measured value.
type Measurement struct {
	Probe string
	Value time.Duration
}

// CalibrationResult is one probe's verdict.
type CalibrationResult struct {
	Probe    string
	Measured time.Duration
	Target   Target
	Pass     bool
	// Missing marks a target no probe reported a measurement for.
	Missing bool
}

// Report is a full calibration run.
type Report struct {
	Profile string
	Results []CalibrationResult
}

// Pass reports whether every target was measured inside its band.
func (r Report) Pass() bool {
	if len(r.Results) == 0 {
		return false
	}
	for _, res := range r.Results {
		if !res.Pass {
			return false
		}
	}
	return true
}

// Measured returns the probe's measured value, or 0 if absent.
func (r Report) Measured(probe string) time.Duration {
	for _, res := range r.Results {
		if res.Probe == probe {
			return res.Measured
		}
	}
	return 0
}

// Render formats the report as an aligned table with a verdict line.
func (r Report) Render() string {
	out := fmt.Sprintf("Calibration: profile %s\n", r.Profile)
	out += fmt.Sprintf("%-22s %12s %12s %26s  %s\n",
		"probe", "measured", "expected", "band", "verdict")
	for _, res := range r.Results {
		verdict := "ok"
		if res.Missing {
			verdict = "MISSING"
		} else if !res.Pass {
			verdict = "FAIL"
		}
		out += fmt.Sprintf("%-22s %12s %12s %26s  %s\n",
			res.Probe, fmtDur(res.Measured), fmtDur(res.Target.Expect),
			fmt.Sprintf("[%s, %s]", fmtDur(res.Target.Lo), fmtDur(res.Target.Hi)),
			verdict)
	}
	if r.Pass() {
		out += "PASS: all probes within tolerance\n"
	} else {
		out += "FAIL: cost model drifted from calibration targets\n"
	}
	return out
}

func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fus", float64(d.Nanoseconds())/1e3)
	default:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	}
}

// Calibrate judges probe measurements against the profile's targets. Every
// target must have a measurement inside its band for the report to pass;
// measurements without a matching target are ignored.
func Calibrate(p *Profile, meas []Measurement) Report {
	byProbe := make(map[string]time.Duration, len(meas))
	for _, m := range meas {
		byProbe[m.Probe] = m.Value
	}
	rep := Report{Profile: p.Name}
	for _, t := range Targets(p) {
		got, ok := byProbe[t.Probe]
		res := CalibrationResult{Probe: t.Probe, Measured: got, Target: t}
		if !ok {
			res.Missing = true
		} else {
			res.Pass = got >= t.Lo && got <= t.Hi
		}
		rep.Results = append(rep.Results, res)
	}
	return rep
}
