// Package model is the single home of the hardware cost model. Every
// calibrated constant the simulation runs on — RDMA verbs timing, dfs
// disk/replication timing, controller/Raft quorum latencies, peer daemon
// timing, per-application CPU costs, and the default network latency —
// lives in a Profile, and the rest of the stack only ever receives those
// constants through one:
//
//   - harness.Options takes a *Profile and wires it into every substrate;
//   - internal/bench cluster builders route Scale.Profile the same way;
//   - the per-package Default*() functions (rdma.DefaultParams,
//     dfs.DefaultParams, raft.DefaultConfig, controller.DefaultConfig,
//     peer.DefaultConfig, ncl.DefaultConfig, the app DefaultConfigs) are
//     thin wrappers over Baseline();
//   - cmd/splitft-bench selects a profile with -profile <name|file.json>.
//
// The substrate packages do not duplicate the parameter types: rdma.Params
// is an alias for RDMAParams, dfs.Params for DFSParams, and so on. That
// makes this package the one auditable parameter surface — changing a
// constant anywhere else is a compile error, not a review hazard.
//
// Named profiles (CX4RoCE25 — the paper-faithful baseline — plus the
// CX6RoCE100 faster-fabric and FastDFS NVMe-class variants) are defined in
// profiles.go with their provenance; custom profiles round-trip through
// JSON (Load/Save). Calibrate checks probe measurements against targets
// derived from a profile (calibrate.go), giving every future performance
// change a regression gate.
package model

import "time"

// RDMAParams is the fabric cost model (rdma.Params is an alias of this
// type). Calibrated so a 128 B application write (data WR + 16 B sequence
// WR, SQ-ordered) completes in ~3 us of fabric time, matching the paper's
// 4.6 us end-to-end NCL record latency once library overhead is added; a
// 60 MB region registers in ~54 ms (Table 3's "connect to new peer" step).
type RDMAParams struct {
	// WRBase is the fixed per-work-request latency (post to completion) for
	// a zero-byte transfer; half is the request path, half the ack path.
	WRBase time.Duration
	// Bandwidth is the per-QP transfer bandwidth in bytes/second.
	Bandwidth float64
	// RegFixed and RegBandwidth model memory-region registration (pinning
	// pages and programming the NIC): RegFixed + size/RegBandwidth.
	RegFixed     time.Duration
	RegBandwidth float64
	// ConnectBase is the fixed QP handshake cost in addition to 3 network
	// round trips.
	ConnectBase time.Duration
	// RetryTimeout is how long the NIC retries before reporting a transport
	// error on an unreachable remote.
	RetryTimeout time.Duration
}

// DFSParams is the storage cost model (dfs.Params is an alias of this
// type). The baseline instance models the paper's CephFS deployment
// (3 replicas on SATA SSDs behind a 25 Gb network); a second instance
// models the local-ext4 recovery baseline of Fig 11b.
type DFSParams struct {
	// SyncFixed is the fixed cost of an fsync round trip (client -> primary
	// -> replicas -> ack), paid even for tiny payloads.
	SyncFixed time.Duration
	// SyncCleanFixed is the cost of an fsync with nothing dirty.
	SyncCleanFixed time.Duration
	// WriteBandwidth is the shared durable-write bandwidth (bytes/sec).
	WriteBandwidth float64
	// ReadFixed is the fixed cost of one storage fetch (cache miss).
	ReadFixed time.Duration
	// ReadBandwidth is the shared fetch bandwidth (bytes/sec).
	ReadBandwidth float64
	// MetaFixed is the cost of a metadata op (create/unlink/rename/open).
	MetaFixed time.Duration
	// SyscallFixed is the client-local cost of a buffered read/write call.
	SyscallFixed time.Duration
	// MemBandwidth is the client-local copy bandwidth for buffered IO and
	// cache hits (bytes/sec).
	MemBandwidth float64
	// ReadaheadWindow is the sequential prefetch size; 0 disables readahead.
	ReadaheadWindow int
	// CacheBlock is the cache block size.
	CacheBlock int
	// CacheCapacity is the client block-cache capacity in bytes.
	CacheCapacity int64
	// DirtyHighWater stalls writers until writeback drains below it.
	DirtyHighWater int64
	// WritebackInterval is the periodic background flush cadence.
	WritebackInterval time.Duration
	// WritebackThrottleMax is the maximum per-write throttling delay as
	// dirty data approaches the high watermark (the balance_dirty_pages
	// effect: fsync-less "weak" log writes still pay for the writeback
	// they defer; applications whose logs bypass the dfs do not).
	WritebackThrottleMax time.Duration

	// The extent plane (ChubaoFS-style extents with chain replication for
	// appends; DXRAM-style append-only backup logs on the storage nodes).
	// Large files opened with the extent flag bypass the flat primary-copy
	// sync path above: appends stream down a per-extent chain of storage
	// nodes and are acked once resident in ChainLength memories, with each
	// node draining to disk asynchronously. ExtentNodes == 0 disables the
	// plane entirely (the LocalFS instance, and any pre-extent profile).

	// ExtentNodes is the number of storage nodes backing the extent plane.
	ExtentNodes int
	// ExtentSize is the fixed extent capacity; an append that fills the
	// tail extent allocates a fresh one on a new chain.
	ExtentSize int64
	// ChainLength is the replication factor: every extent lives on a chain
	// of this many storage nodes (client -> head -> ... -> tail, ack up).
	ChainLength int
	// ChainFrame is the maximum bytes per chained append frame; a flush is
	// cut into frames so the chain pipelines instead of store-and-forward
	// on the whole payload.
	ChainFrame int
	// ChainWindow is how many frames a client keeps in flight per append
	// stream before waiting for acks.
	ChainWindow int
	// LinkBandwidth is the per-link network bandwidth (bytes/sec) of each
	// hop on a chain: client egress, storage-node ingress and egress each
	// serialize at this rate.
	LinkBandwidth float64
	// NodeWriteBandwidth is one storage node's local drain-to-disk
	// bandwidth (bytes/sec); drained asynchronously, off the ack path.
	NodeWriteBandwidth float64
	// AppendFixed is the fixed per-frame cost at each storage node
	// (request handling, log-index update, memory commit).
	AppendFixed time.Duration
}

// RaftConfig holds the consensus protocol timing (raft.Config is an alias
// of this type). The baseline suits the controller's deployment: commit
// latency ~2 ms, failover within a few hundred milliseconds.
type RaftConfig struct {
	HeartbeatInterval  time.Duration
	ElectionTimeoutMin time.Duration
	ElectionTimeoutMax time.Duration
	// FsyncCost models persisting term/vote/log entries before answering.
	FsyncCost time.Duration
	// ApplyCPU models the single-threaded state-machine apply path: every
	// committed command pays this on the apply proc (deserialize, mutate
	// the tree, build the reply). With group commit amortizing FsyncCost
	// across a batch, this serial stage is what caps a group's linearizable
	// op throughput at roughly 1/ApplyCPU — the knee the control-plane
	// scaling experiment measures.
	ApplyCPU time.Duration
	// ProposeTimeout bounds how long a replica holds a client proposal
	// while waiting for commit.
	ProposeTimeout time.Duration
}

// ControllerConfig holds controller timing (controller.Config is an alias
// of this type): sessions expire ~600 ms after a client dies, scanned
// every 200 ms.
type ControllerConfig struct {
	Raft           RaftConfig
	SessionTimeout time.Duration
	KeepAlive      time.Duration
	ExpiryScan     time.Duration
	OpTimeout      time.Duration
	// Shards partitions the controller's znode tree across multiple Raft
	// groups (ChubaoFS-style multi-raft): 0 or 1 keeps everything in one
	// group (the paper's ZooKeeper-equivalent setup); N > 1 runs a small
	// root group for the peer registry and shard directory plus N data
	// groups that own hash ranges of the per-application state.
	Shards int
}

// PeerConfig tunes a log-peer daemon (peer.Config is an alias of this
// type).
type PeerConfig struct {
	// LendableMem is how much memory the peer offers to the common pool.
	LendableMem int64
	// GCInterval is the cadence of the space-leak scan.
	GCInterval time.Duration
	// GCGrace is how long an allocation may exist without a matching ap-map
	// entry before it is considered leaked (covers in-progress set-ups).
	GCGrace time.Duration
	// SetupCPU models the lightweight setup process work besides MR
	// registration.
	SetupCPU time.Duration
	// PublishInterval coalesces available-memory updates to the controller:
	// at most one republish per interval instead of one per setup/release.
	// 0 publishes immediately after every change (the small-cluster
	// behavior); set it when hundreds of clients churn WALs so the peer
	// pool does not turn every region event into a Raft proposal.
	PublishInterval time.Duration
	// Domain is the peer's failure domain (rack/power unit), advertised in
	// the registry. Placement spreads a log's peer group across distinct
	// domains when the fleet declares them; empty (the default) opts out.
	Domain string
}

// NCLConfig tunes ncl-lib (the cost-constant half of ncl.Config; the
// parsed replication policy and region default are derived from it by
// ncl.ConfigFromProfile).
type NCLConfig struct {
	// Replication selects the replication policy as a spec string:
	//
	//	"mirror"       full copies on 2f+1 peers, f=1 (the paper's setup)
	//	"mirror:F"     full copies with failure budget F
	//	"ec:K,M"       Reed-Solomon striping across K+M peers; any K
	//	               survivors reconstruct, at (K+M)/K memory instead of
	//	               2f+1 full copies (Hydra's memory-tax argument)
	//	"quorum"       unordered one-RTT writes to 2f+1 peers acked at a
	//	               majority, f=1 (SWARM-style; also "swarm-quorum")
	//	"quorum:F"     the same with failure budget F
	//
	// Empty means "mirror".
	Replication string
	// DefaultRegionSize is the ncl region capacity used when a file is
	// opened without an explicit size (64 MiB baseline).
	DefaultRegionSize int64
	// EncodeBandwidth is the client-side Reed-Solomon encode bandwidth in
	// bytes/sec, paid per record on the ec path (SIMD GF(2^8) arithmetic on
	// the testbed's cores).
	EncodeBandwidth float64
	// RecordCPU models ncl-lib's per-record client-side work (buffer copy,
	// posting, completion bookkeeping).
	RecordCPU time.Duration
	// AckTimeout is how long Record waits without majority progress before
	// kicking the repair path again.
	AckTimeout time.Duration
	// SetupRetries bounds how many candidate peers are tried per slot.
	SetupRetries int
	// CatchupCopyCPU is the client-side bandwidth for staging a bulk
	// catch-up transfer (bytes/sec); it briefly occupies the writer and is
	// the "small performance blip" of Fig 12.
	CatchupCopyCPU float64
	// SuspectCooldown is how long a peer that failed a data-path operation
	// is excluded from new allocations (the controller's registry only
	// drops it after session expiry).
	SuspectCooldown time.Duration
	// ReadOverhead is ncl-lib's per-call cost of a remote read from a peer
	// region (WR setup + completion poll) on the recovery/verification path.
	ReadOverhead time.Duration
	// LocalReadCPU is the fixed user-space cost of serving a read from the
	// log's local buffer — no syscall, which is why it undercuts a dfs read.
	LocalReadCPU time.Duration
	// SyncCPU is the cost of Sync on an ncl file: the fsync has left the
	// critical path, so only the library call itself remains.
	SyncCPU time.Duration
	// PoolRefresh enables the pooled server set: ncl-lib caches the
	// controller's peer registry for this long and spreads allocations over
	// it with rendezvous hashing, instead of asking the controller to pick
	// on every slot. 0 disables the pool (every allocation is a controller
	// PickPeers round trip, the paper's behavior).
	PoolRefresh time.Duration
}

// KVStoreCosts is the RocksDB-style store's per-operation CPU model
// (embedded in kvstore.Config).
type KVStoreCosts struct {
	EncodeCPU time.Duration // batch serialization, per op
	ApplyCPU  time.Duration // memtable insert, per op
	GetCPU    time.Duration // read-path lookup work
	MergeCPU  time.Duration // compaction merge work, per entry
	// SlowdownDelay is the per-batch delay applied when L0 is past the
	// slowdown trigger (RocksDB's delayed-write-rate mechanism).
	SlowdownDelay time.Duration
}

// RedStoreCosts is the Redis-style store's CPU model (embedded in
// redstore.Config).
type RedStoreCosts struct {
	// OpCPU is the single-threaded per-command processing cost.
	OpCPU time.Duration
	// SnapshotCopyBW models the copy-on-write fork cost charged to the loop
	// when a snapshot starts (bytes/sec).
	SnapshotCopyBW float64
}

// LiteDBCosts is the SQLite-style store's CPU model (embedded in
// litedb.Config).
type LiteDBCosts struct {
	// TxnCPU is the per-update-transaction processing cost (SQL parse,
	// B-tree work); ReadCPU the read-transaction cost.
	TxnCPU  time.Duration
	ReadCPU time.Duration
}

// KVellCosts is the KVell-style no-log store's CPU model (embedded in
// kvell.Config).
type KVellCosts struct {
	// PutCPU/GetCPU model per-op work.
	PutCPU time.Duration
	GetCPU time.Duration
}

// AppCosts bundles the four ported applications' CPU cost models.
type AppCosts struct {
	KVStore  KVStoreCosts
	RedStore RedStoreCosts
	LiteDB   LiteDBCosts
	KVell    KVellCosts
}

// Profile is one coherent set of hardware assumptions: everything the
// simulated testbed needs to price an operation. Callers get a fresh copy
// from the named constructors (profiles.go) or Load, and may mutate it
// freely before handing it to harness.Options / bench.Scale.
type Profile struct {
	// Name identifies the profile in reports and the -profile flag.
	Name string
	// Provenance records where the constants come from (paper section,
	// hardware datasheet, scaling rule).
	Provenance string

	// RDMA is the fabric cost model.
	RDMA RDMAParams
	// DFS is the disaggregated file system cost model.
	DFS DFSParams
	// LocalFS is the local-ext4 comparison cluster (Fig 11b baseline).
	LocalFS DFSParams
	// Controller holds controller + Raft quorum timing.
	Controller ControllerConfig
	// Peer tunes the log-peer daemons.
	Peer PeerConfig
	// NCL tunes ncl-lib.
	NCL NCLConfig
	// Apps holds the per-application CPU cost models.
	Apps AppCosts
	// NetLatency is the default one-way network latency between nodes
	// (RDMA-class for the baseline).
	NetLatency time.Duration
}

// clone returns an independent copy.
func (p *Profile) clone() *Profile {
	q := *p
	return &q
}
