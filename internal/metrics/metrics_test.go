package metrics

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != time.Microsecond || h.Max() != 100*time.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	mean := h.Mean()
	if mean != 50500*time.Nanosecond {
		t.Fatalf("mean = %v, want 50.5us", mean)
	}
	p50 := h.Percentile(0.5)
	if p50 < 45*time.Microsecond || p50 > 55*time.Microsecond {
		t.Fatalf("p50 = %v, want ~50us", p50)
	}
	p99 := h.Percentile(0.99)
	if p99 < 90*time.Microsecond || p99 > 100*time.Microsecond {
		t.Fatalf("p99 = %v, want ~99us", p99)
	}
}

func TestHistogramBucketAccuracy(t *testing.T) {
	// Every recorded duration's bucket lower bound must be within ~7% below
	// the value (log-bucket resolution guarantee).
	for _, d := range []time.Duration{1, 10, 100, 999, 4096, 1 << 20, 3 << 30, time.Hour} {
		lo := bucketLow(bucketOf(d))
		if lo > d {
			t.Fatalf("bucketLow(%v) = %v > value", d, lo)
		}
		if float64(d-lo) > 0.07*float64(d)+1 {
			t.Fatalf("bucket for %v too coarse: low=%v", d, lo)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 50; i++ {
		a.Record(time.Millisecond)
		b.Record(time.Second)
	}
	a.Merge(&b)
	if a.Count() != 100 {
		t.Fatalf("count = %d", a.Count())
	}
	if a.Max() != time.Second || a.Min() != time.Millisecond {
		t.Fatalf("min/max after merge = %v/%v", a.Min(), a.Max())
	}
}

// Property: percentile is monotonic in q and bracketed by min/max.
func TestQuickHistogramPercentileMonotonic(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		for _, v := range vals {
			h.Record(time.Duration(v%1000000 + 1))
		}
		prev := time.Duration(0)
		for q := 0.05; q <= 1.0; q += 0.05 {
			p := h.Percentile(q)
			if p < prev {
				return false
			}
			prev = p
		}
		return h.Percentile(1.0) <= h.Max() && h.Percentile(0.01) <= h.Percentile(0.99)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: with many samples drawn from a uniform range, p50 lands near the
// middle of the range.
func TestHistogramP50Uniform(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		h.Record(time.Duration(rng.Intn(1000000)) + 1)
	}
	p50 := float64(h.Percentile(0.5))
	if p50 < 450000 || p50 > 550000 {
		t.Fatalf("p50 = %v", p50)
	}
}

func TestThroughputSampler(t *testing.T) {
	ts := NewThroughputSampler(10 * time.Millisecond)
	// 5 ops in [0,10ms), 10 ops in [20ms,30ms).
	for i := 0; i < 5; i++ {
		ts.Observe(time.Duration(i) * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		ts.Observe(20*time.Millisecond + time.Duration(i)*time.Microsecond)
	}
	series := ts.Series()
	if len(series) != 3 {
		t.Fatalf("series length = %d", len(series))
	}
	if series[0].OpsPerSec != 500 {
		t.Fatalf("first interval = %v ops/s, want 500", series[0].OpsPerSec)
	}
	if series[1].OpsPerSec != 0 {
		t.Fatalf("idle interval = %v ops/s", series[1].OpsPerSec)
	}
	if series[2].OpsPerSec != 1000 {
		t.Fatalf("third interval = %v ops/s, want 1000", series[2].OpsPerSec)
	}
}

func TestSizeCDF(t *testing.T) {
	var c SizeCDF
	for i := int64(1); i <= 1000; i++ {
		c.Add(i)
	}
	if c.Quantile(0.5) != 500 {
		t.Fatalf("q50 = %d", c.Quantile(0.5))
	}
	if c.Quantile(1.0) != 1000 {
		t.Fatalf("q100 = %d", c.Quantile(1.0))
	}
	pts := c.Points(10)
	if len(pts) != 10 || pts[9].Value != 1000 || pts[9].Fraction != 1.0 {
		t.Fatalf("points = %+v", pts)
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Value <= pts[j].Value }) {
		t.Fatal("CDF points not monotone")
	}
}

// Property: CDF quantiles are monotone for arbitrary inputs.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		var c SizeCDF
		for _, v := range vals {
			c.Add(v)
		}
		prev := c.Quantile(0.01)
		for q := 0.1; q <= 1.0; q += 0.1 {
			p := c.Quantile(q)
			if p < prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{{"x", "1"}, {"yyyy", "2"}})
	if out == "" {
		t.Fatal("empty table")
	}
	lines := 0
	for _, ch := range out {
		if ch == '\n' {
			lines++
		}
	}
	if lines != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", lines, out)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:       "512B",
		8192:      "8KB",
		64 << 20:  "64MB",
		3 << 30:   "3GB",
		1536:      "1.5KB",
		100 << 20: "100MB",
	}
	for in, want := range cases {
		if got := HumanBytes(in); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
