// Package metrics provides the measurement primitives the benchmark harness
// uses to regenerate the paper's tables and figures: latency histograms with
// percentiles (Figs 8, 9, 11a), size CDFs (Fig 1), and fixed-interval
// throughput time series (Fig 12).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Histogram is a log-bucketed latency histogram covering 1 ns .. ~18 h with
// ~4% relative bucket width. It keeps the exact sum and count so means are
// exact; percentiles are bucket-resolution.
type Histogram struct {
	buckets [bucketCount]uint64
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

const (
	// 64 powers of two, 16 sub-buckets each.
	subBits     = 4
	subCount    = 1 << subBits
	bucketCount = 64 * subCount
)

func bucketOf(d time.Duration) int {
	if d < 1 {
		d = 1
	}
	v := uint64(d)
	exp := 63 - leadingZeros(v)
	var sub uint64
	if exp > subBits {
		sub = (v >> (uint(exp) - subBits)) & (subCount - 1)
	} else {
		sub = (v << (subBits - uint(exp))) & (subCount - 1)
	}
	idx := exp*subCount + int(sub)
	if idx >= bucketCount {
		idx = bucketCount - 1
	}
	return idx
}

func bucketLow(idx int) time.Duration {
	exp := idx / subCount
	sub := idx % subCount
	base := uint64(1) << uint(exp)
	var v uint64
	if exp > subBits {
		v = base + uint64(sub)<<(uint(exp)-subBits)
	} else {
		v = base + uint64(sub)>>(subBits-uint(exp))
	}
	return time.Duration(v)
}

func leadingZeros(v uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the exact mean of recorded samples.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min and Max return the observed extremes.
func (h *Histogram) Min() time.Duration { return h.min }
func (h *Histogram) Max() time.Duration { return h.max }

// Percentile returns the q-quantile (0 < q <= 1) at bucket resolution.
func (h *Histogram) Percentile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= rank {
			return bucketLow(i)
		}
	}
	return h.max
}

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// Summary formats count/mean/p50/p99/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean().Round(10*time.Nanosecond), h.Percentile(0.5), h.Percentile(0.99), h.max)
}

// Counter is a simple monotonic event counter.
type Counter struct{ n uint64 }

// Inc adds delta.
func (c *Counter) Inc(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// ThroughputSampler accumulates operation-completion timestamps into
// fixed-width intervals, producing the real-time throughput series of
// Fig 12 (10 ms samples in the paper).
type ThroughputSampler struct {
	interval time.Duration
	counts   []uint64
}

// NewThroughputSampler returns a sampler with the given interval width.
func NewThroughputSampler(interval time.Duration) *ThroughputSampler {
	if interval <= 0 {
		panic("metrics: non-positive sampler interval")
	}
	return &ThroughputSampler{interval: interval}
}

// Observe records one operation completing at virtual time t.
func (ts *ThroughputSampler) Observe(t time.Duration) {
	idx := int(t / ts.interval)
	for len(ts.counts) <= idx {
		ts.counts = append(ts.counts, 0)
	}
	ts.counts[idx]++
}

// Series returns (interval start, ops/sec) points.
func (ts *ThroughputSampler) Series() []ThroughputPoint {
	out := make([]ThroughputPoint, len(ts.counts))
	perSec := float64(time.Second) / float64(ts.interval)
	for i, c := range ts.counts {
		out[i] = ThroughputPoint{At: time.Duration(i) * ts.interval, OpsPerSec: float64(c) * perSec}
	}
	return out
}

// ThroughputPoint is one sample of a throughput time series.
type ThroughputPoint struct {
	At        time.Duration
	OpsPerSec float64
}

// SizeCDF collects integer samples (e.g. write sizes in bytes) and reports
// their empirical CDF, used for Fig 1(a)-(c).
type SizeCDF struct {
	samples []int64
	sorted  bool
}

// Add records one sample.
func (c *SizeCDF) Add(v int64) {
	c.samples = append(c.samples, v)
	c.sorted = false
}

// Count returns the number of samples.
func (c *SizeCDF) Count() int { return len(c.samples) }

func (c *SizeCDF) sortIfNeeded() {
	if !c.sorted {
		sort.Slice(c.samples, func(i, j int) bool { return c.samples[i] < c.samples[j] })
		c.sorted = true
	}
}

// Quantile returns the q-quantile of the samples.
func (c *SizeCDF) Quantile(q float64) int64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sortIfNeeded()
	idx := int(math.Ceil(q*float64(len(c.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.samples) {
		idx = len(c.samples) - 1
	}
	return c.samples[idx]
}

// Points returns up to n evenly spaced (value, cumulative fraction) points.
func (c *SizeCDF) Points(n int) []CDFPoint {
	if len(c.samples) == 0 || n <= 0 {
		return nil
	}
	c.sortIfNeeded()
	out := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		f := float64(i) / float64(n)
		out = append(out, CDFPoint{Value: c.Quantile(f), Fraction: f})
	}
	return out
}

// CDFPoint is one point on an empirical CDF.
type CDFPoint struct {
	Value    int64
	Fraction float64
}

// Table renders rows of cells as an aligned text table; the harness uses it
// to print paper-style tables.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// HumanBytes formats a byte count compactly (e.g. "512B", "8.0KB", "64MB").
func HumanBytes(n int64) string {
	switch {
	case n < 1024:
		return fmt.Sprintf("%dB", n)
	case n < 1024*1024:
		return trimZero(fmt.Sprintf("%.1fKB", float64(n)/1024))
	case n < 1024*1024*1024:
		return trimZero(fmt.Sprintf("%.1fMB", float64(n)/(1024*1024)))
	default:
		return trimZero(fmt.Sprintf("%.1fGB", float64(n)/(1024*1024*1024)))
	}
}

func trimZero(s string) string { return strings.Replace(s, ".0", "", 1) }
