package metrics

import (
	"testing"
	"time"
)

// Edge-case coverage for the histogram, sampler and CDF primitives: empty
// and single-sample inputs, merges across buckets, and boundary samples.

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Record(42 * time.Microsecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 42*time.Microsecond || h.Min() != 42*time.Microsecond || h.Max() != 42*time.Microsecond {
		t.Fatalf("mean/min/max = %v/%v/%v", h.Mean(), h.Min(), h.Max())
	}
	// Every quantile of a one-sample distribution is that sample (at bucket
	// resolution: its bucket's lower bound, never above the sample).
	for _, q := range []float64{0.01, 0.5, 0.99, 1.0} {
		p := h.Percentile(q)
		if p > 42*time.Microsecond || p < 39*time.Microsecond {
			t.Fatalf("p%.0f = %v, want ~42us", q*100, p)
		}
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	var a, b Histogram
	a.Record(time.Millisecond)

	// Merging an empty histogram is a no-op.
	before := a
	a.Merge(&b)
	if a != before {
		t.Fatal("merging an empty histogram changed the receiver")
	}

	// Merging into an empty histogram adopts the other's extremes (min must
	// not stay at the zero value).
	var c Histogram
	c.Merge(&a)
	if c.Count() != 1 || c.Min() != time.Millisecond || c.Max() != time.Millisecond {
		t.Fatalf("after merge into empty: n=%d min=%v max=%v", c.Count(), c.Min(), c.Max())
	}

	// Merging two empties stays empty.
	var d, e Histogram
	d.Merge(&e)
	if d.Count() != 0 || d.Percentile(0.5) != 0 {
		t.Fatal("empty+empty is not empty")
	}
}

func TestHistogramCrossBucketMerge(t *testing.T) {
	// Samples many powers of two apart land in different log buckets; the
	// merged histogram must report quantiles from both populations.
	var lo, hi Histogram
	for i := 0; i < 100; i++ {
		lo.Record(time.Microsecond)
		hi.Record(time.Second)
	}
	lo.Merge(&hi)
	if lo.Count() != 200 {
		t.Fatalf("count = %d", lo.Count())
	}
	p25, p75 := lo.Percentile(0.25), lo.Percentile(0.75)
	if p25 > 2*time.Microsecond {
		t.Fatalf("p25 = %v, want ~1us (low population)", p25)
	}
	if p75 < 900*time.Millisecond {
		t.Fatalf("p75 = %v, want ~1s (high population)", p75)
	}
	wantMean := (100*time.Microsecond + 100*time.Second) / 200
	if lo.Mean() != wantMean {
		t.Fatalf("mean = %v, want %v", lo.Mean(), wantMean)
	}
}

func TestThroughputSamplerBoundaries(t *testing.T) {
	ts := NewThroughputSampler(10 * time.Millisecond)
	if len(ts.Series()) != 0 {
		t.Fatal("empty sampler should have an empty series")
	}
	// A sample exactly on an interval boundary belongs to the interval it
	// starts: t = k*interval goes into bucket k, not k-1.
	ts.Observe(0)
	ts.Observe(10 * time.Millisecond)
	ts.Observe(10 * time.Millisecond)
	series := ts.Series()
	if len(series) != 2 {
		t.Fatalf("series length = %d, want 2", len(series))
	}
	if series[0].OpsPerSec != 100 || series[1].OpsPerSec != 200 {
		t.Fatalf("series = %v", series)
	}
	if series[0].At != 0 || series[1].At != 10*time.Millisecond {
		t.Fatalf("interval starts = %v, %v", series[0].At, series[1].At)
	}
}

func TestSizeCDFEdgeCases(t *testing.T) {
	var empty SizeCDF
	if empty.Quantile(0.5) != 0 || empty.Count() != 0 {
		t.Fatal("empty CDF should report zeros")
	}
	if empty.Points(5) != nil {
		t.Fatal("empty CDF should have no points")
	}

	var one SizeCDF
	one.Add(7)
	for _, q := range []float64{0.0, 0.001, 0.5, 1.0} {
		if got := one.Quantile(q); got != 7 {
			t.Fatalf("single-sample q%.3f = %d, want 7", q, got)
		}
	}
	if one.Points(0) != nil {
		t.Fatal("Points(0) should be nil")
	}

	// Duplicates and unsorted insertion order.
	var c SizeCDF
	for _, v := range []int64{5, 1, 5, 3, 5} {
		c.Add(v)
	}
	if c.Quantile(0.2) != 1 || c.Quantile(0.5) != 5 || c.Quantile(1.0) != 5 {
		t.Fatalf("quantiles = %d/%d/%d", c.Quantile(0.2), c.Quantile(0.5), c.Quantile(1.0))
	}
	// Adding after a quantile query (which sorts) must keep results correct.
	c.Add(0)
	if c.Quantile(0.001) != 0 {
		t.Fatalf("post-sort add: q0 = %d, want 0", c.Quantile(0.001))
	}
}
