package raft

import (
	"fmt"
	"testing"
	"time"

	"splitft/internal/simnet"
)

// Additional Raft coverage: persistence across full-cluster restart, term
// monotonicity, vote durability, and the log-matching property under a
// randomized schedule.

func TestFullClusterRestartPreservesLog(t *testing.T) {
	h := newHarness(20, 3)
	client := NewClient(h.cluster, h.sim.NewNode("app"))
	h.sim.Go("driver", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		for i := 0; i < 4; i++ {
			if _, err := client.Propose(p, cmdMsg(fmt.Sprintf("v%d", i))); err != nil {
				t.Errorf("propose %d: %v", i, err)
			}
		}
		// Take the whole ensemble down and bring it back: the log is
		// persistent state and must survive.
		for _, id := range h.cluster.ids {
			h.nodes[id].Crash()
		}
		p.Sleep(100 * time.Millisecond)
		for _, id := range h.cluster.ids {
			h.restart(id)
		}
		p.Sleep(2 * time.Second) // re-election + replay
		if _, err := client.Propose(p, cmdMsg("after-restart")); err != nil {
			t.Errorf("propose after full restart: %v", err)
		}
		p.Sleep(time.Second)
		h.sim.Stop()
	})
	if err := h.sim.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	// Every restarted replica replayed the full history in order.
	want := "[v0 v1 v2 v3 after-restart]"
	for id, sm := range h.sms {
		if got := fmt.Sprint(sm.applied); got != want {
			t.Errorf("replica %s applied %v, want %v", id, got, want)
		}
	}
}

func TestTermsAreMonotonic(t *testing.T) {
	h := newHarness(21, 3)
	var samples []int
	h.sim.Go("observer", func(p *simnet.Proc) {
		for i := 0; i < 20; i++ {
			p.Sleep(300 * time.Millisecond)
			if ldr := h.leader(); ldr != nil {
				samples = append(samples, ldr.Term())
			}
			if i == 8 {
				if ldr := h.leader(); ldr != nil {
					ldr.node.Crash()
				}
			}
			if i == 12 {
				for _, id := range h.cluster.ids {
					if !h.nodes[id].Alive() {
						h.restart(id)
					}
				}
			}
		}
		h.sim.Stop()
	})
	if err := h.sim.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i] < samples[i-1] {
			t.Fatalf("leader terms went backwards: %v", samples)
		}
	}
	if len(samples) < 10 {
		t.Fatalf("too few leader observations: %d", len(samples))
	}
}

func TestLogMatchingUnderChaos(t *testing.T) {
	// Log matching: if two replicas' logs contain an entry with the same
	// index and term, the logs are identical up to that index. Checked
	// directly on the persistent logs after a chaotic run.
	h := newHarness(22, 3)
	client := NewClient(h.cluster, h.sim.NewNode("app"))
	client.Deadline = 700 * time.Millisecond
	h.sim.Go("chaos", func(p *simnet.Proc) {
		ids := h.cluster.ids
		for round := 0; round < 5; round++ {
			p.Sleep(600 * time.Millisecond)
			a := h.nodes[ids[p.Rand().Intn(len(ids))]]
			b := h.nodes[ids[p.Rand().Intn(len(ids))]]
			if a != b {
				h.sim.Net().Partition(a, b)
				p.Sleep(400 * time.Millisecond)
				h.sim.Net().Heal(a, b)
			}
		}
	})
	h.sim.Go("client", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		for i := 0; i < 15; i++ {
			client.Propose(p, cmdMsg(fmt.Sprintf("c%d", i))) //nolint:errcheck
			p.Sleep(250 * time.Millisecond)
		}
		p.Sleep(2 * time.Second)
		h.sim.Stop()
	})
	if err := h.sim.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	logs := make(map[string][]entry)
	for _, id := range h.cluster.ids {
		logs[id] = h.cluster.disks[id].log
	}
	for _, a := range h.cluster.ids {
		for _, b := range h.cluster.ids {
			if a >= b {
				continue
			}
			la, lb := logs[a], logs[b]
			n := len(la)
			if len(lb) < n {
				n = len(lb)
			}
			for i := n - 1; i >= 1; i-- {
				if la[i].Term == lb[i].Term {
					// Same (index, term) => identical prefixes.
					for j := 1; j <= i; j++ {
						if la[j].Term != lb[j].Term || fmt.Sprint(la[j].Cmd) != fmt.Sprint(lb[j].Cmd) {
							t.Fatalf("log matching violated between %s and %s at %d", a, b, j)
						}
					}
					break
				}
			}
		}
	}
}

func TestClientDeadlineExpires(t *testing.T) {
	h := newHarness(23, 3)
	client := NewClient(h.cluster, h.sim.NewNode("app"))
	client.Deadline = 300 * time.Millisecond
	h.sim.Go("client", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		// Kill the entire ensemble: proposals must fail within the deadline.
		for _, id := range h.cluster.ids {
			h.nodes[id].Crash()
		}
		start := p.Now()
		_, err := client.Propose(p, cmdMsg("doomed"))
		if err == nil {
			t.Error("propose to a dead ensemble succeeded")
		}
		if p.Now()-start > time.Second {
			t.Errorf("deadline not honoured: %v", p.Now()-start)
		}
		h.sim.Stop()
	})
	if err := h.sim.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
}
