package raft

import (
	"errors"
	"time"

	"splitft/internal/simnet"
	"splitft/internal/trace"
	"splitft/internal/wire"
)

// Client submits commands to a Raft group from some node, following leader
// hints and retrying around elections and failures.
type Client struct {
	cluster *Cluster
	node    *simnet.Node
	hint    int // index into cluster.ids of the believed leader
	// Deadline bounds one Propose end to end (default 3s).
	Deadline time.Duration
	// CallTimeout bounds each RPC attempt (default 500ms). Lower it when
	// the caller must fail over quickly, e.g. session keep-alives racing an
	// expiry clock.
	CallTimeout time.Duration
}

// NewClient creates a client that calls from node.
func NewClient(cluster *Cluster, node *simnet.Node) *Client {
	return &Client{cluster: cluster, node: node, Deadline: 3 * time.Second, CallTimeout: 500 * time.Millisecond}
}

// Propose submits cmd, blocking until the state machine applied it on the
// leader, and returns the Apply result. The command travels unwrapped: any
// message whose code is outside raft's own range is treated by replicas as
// a proposal. Commands may be re-submitted after ambiguous failures
// (timeouts), so state-machine operations should be idempotent or
// versioned, as the controller's are.
func (c *Client) Propose(p *simnet.Proc, cmd wire.Msg) (wire.Msg, error) {
	var sp *trace.Span
	if p.Tracing() {
		sp = p.StartSpan("raft", "propose")
		defer p.EndSpan(sp)
	}
	net := c.cluster.sim.Net()
	cmd.Meta = c.cluster.groupTag() // route to our group on multi-group endpoints
	deadline := p.Now() + c.Deadline
	var lastErr error = ErrTimeout
	for p.Now() < deadline {
		id := c.cluster.ids[c.hint%len(c.cluster.ids)]
		resp, err := net.CallTimeout(p, c.node, c.cluster.Addr(id), cmd, c.CallTimeout)
		switch {
		case err == nil:
			return resp, nil
		case errors.Is(err, ErrNotLeader):
			var nle NotLeaderError
			if errors.As(err, &nle) && nle.Hint != "" {
				c.hint = c.indexOf(nle.Hint)
			} else {
				c.hint++
				p.Sleep(10 * time.Millisecond) // election likely in progress
			}
			lastErr = err
		default:
			c.hint++
			p.Sleep(20 * time.Millisecond)
			lastErr = err
		}
	}
	return wire.Msg{}, lastErr
}

func (c *Client) indexOf(id string) int {
	for i, x := range c.cluster.ids {
		if x == id {
			return i
		}
	}
	return 0
}
