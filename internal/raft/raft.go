// Package raft implements a compact Raft consensus protocol over the
// simulated network. It is the replication substrate for the NCL controller
// (the paper uses a fault-tolerant ZooKeeper instance; a three-replica Raft
// group provides the same guarantees — linearizable metadata operations that
// survive controller-node failures — with a comparable few-millisecond
// commit cost dominated by log fsyncs and quorum round trips).
//
// The implementation covers leader election with randomized timeouts, log
// replication with conflict rollback, the commit rule restricted to
// current-term entries, crash-restart with persistent term/vote/log, and
// linearizable reads (as no-op commands through the log). Log compaction is
// intentionally omitted: controller logs in every experiment stay far below
// the point where snapshotting matters.
package raft

import (
	"errors"
	"fmt"
	"time"

	"splitft/internal/model"
	"splitft/internal/simnet"
	"splitft/internal/wire"
)

// Config holds protocol timing. The constants live in internal/model (the
// unified hardware cost-model layer); this alias keeps the raft API
// self-contained. Defaults suit the controller's deployment: commit latency
// ~2 ms, failover within a few hundred milliseconds.
type Config = model.RaftConfig

// DefaultConfig returns the baseline profile's Raft timing parameters.
func DefaultConfig() Config {
	return model.Baseline().Controller.Raft
}

// StateMachine is the replicated application. Apply must be deterministic;
// it runs on every replica in log order. Commands and results are flat wire
// messages (see internal/wire); a command's code must lie outside raft's own
// 0x20–0x2f range.
type StateMachine interface {
	Apply(cmd wire.Msg) wire.Msg
}

// Errors returned to clients.
var (
	// ErrNotLeader carries a leader hint in its message ("" if unknown).
	ErrNotLeader = errors.New("raft: not leader")
	ErrTimeout   = errors.New("raft: proposal timed out")
	// ErrBusy sheds load before it is accepted: the leader's unapplied
	// backlog is already deeper than ApplyCPU can drain within
	// ProposeTimeout, so appending another entry would only burn apply
	// capacity on a command whose proposer is guaranteed to time out.
	ErrBusy = errors.New("raft: apply backlog full")
)

// NotLeaderError rejects a proposal sent to a non-leader, carrying a hint
// to the current leader's id when known.
type NotLeaderError struct{ Hint string }

func (e NotLeaderError) Error() string        { return "raft: not leader; hint=" + e.Hint }
func (e NotLeaderError) Is(target error) bool { return target == ErrNotLeader }

type entry struct {
	Term int
	Cmd  wire.Msg
}

// disk is the persistent state of one replica; it survives node crashes
// (in the Cluster registry, standing in for the replica's local SSD).
type disk struct {
	term     int
	votedFor string
	log      []entry // 1-indexed semantically; log[0] unused sentinel
}

// Cluster owns the durable state of all replicas of one Raft group and the
// naming needed to (re)start them.
type Cluster struct {
	sim    *simnet.Sim
	name   string
	cfg    Config
	ids    []string
	disks  map[string]*disk
	smFact func() StateMachine

	// set/group place this cluster inside a multi-group Set (see group.go):
	// all groups of a set share one RPC endpoint per node and tag messages
	// with the group id in Msg.Meta. Standalone clusters keep set nil and
	// group 0, so their wire Meta stays zero and nothing changes.
	set   *Set
	group int
}

// NewCluster defines a Raft group with the given replica ids (which double
// as RPC address suffixes). smFactory builds a fresh state machine for a
// (re)starting replica; the log replay rebuilds its contents.
func NewCluster(s *simnet.Sim, name string, cfg Config, ids []string, smFactory func() StateMachine) *Cluster {
	c := &Cluster{sim: s, name: name, cfg: cfg, ids: ids, disks: make(map[string]*disk), smFact: smFactory}
	for _, id := range ids {
		c.disks[id] = &disk{log: make([]entry, 1)}
	}
	return c
}

// Addr returns the RPC address of replica id.
func (c *Cluster) Addr(id string) string { return c.name + "/raft/" + id }

// Addrs returns all replica addresses (for clients).
func (c *Cluster) Addrs() []string {
	out := make([]string, len(c.ids))
	for i, id := range c.ids {
		out[i] = c.Addr(id)
	}
	return out
}

type role int

const (
	follower role = iota
	candidate
	leader
)

// Replica is one running Raft participant. Start a replica per controller
// node; restart it (StartReplica again) after the node recovers.
type Replica struct {
	cluster *Cluster
	id      string
	tag     string // proc-name tag: id, or id/g<N> inside a Set
	node    *simnet.Node
	d       *disk

	mu       simnet.Mutex
	role     role
	leaderID string

	commitIndex int
	lastApplied int
	sm          StateMachine

	// Leader volatile state.
	nextIndex  map[string]int
	matchIndex map[string]int

	lastHeard    time.Duration
	electTimeout time.Duration // randomized; redrawn after every candidate round
	electing     bool          // an election proc is in flight
	applyCond    *simnet.Cond  // signalled when commitIndex advances
	replWake     *simnet.Cond  // kicks replicators on new entries
	persistWake  *simnet.Cond  // kicks the group-commit persister on appends
	persisted    int           // highest log index covered by a finished fsync
	incarnation  int

	// applyResults holds state-machine results for entries this leader
	// proposed, keyed by log index, until the proposer collects them.
	applyResults map[int]wire.Msg
	// applyWaiters parks each in-flight proposer on its own cond, keyed by
	// log index, so apply-time wakeups are targeted rather than broadcast.
	applyWaiters map[int]*simnet.Cond
}

// StartReplica boots (or reboots) replica id on node. Persistent state is
// reloaded from the cluster's disk registry; volatile state starts fresh.
func StartReplica(c *Cluster, node *simnet.Node, id string) *Replica {
	r := newReplica(c, node, id)
	c.sim.Net().Register(c.Addr(id), node, r.handleRPC)
	node.Go("raft-ticker:"+id, r.electionTicker)
	node.Go("raft-apply:"+id, r.applyLoop)
	node.Go("raft-persist:"+id, r.persistLoop)
	return r
}

// newReplica builds replica id on node with fresh volatile state. Callers
// register the RPC endpoint and spawn the ticker and apply procs:
// StartReplica does it per replica, Set.StartNode once per node for all
// groups.
func newReplica(c *Cluster, node *simnet.Node, id string) *Replica {
	r := &Replica{
		cluster:     c,
		id:          id,
		tag:         id,
		node:        node,
		d:           c.disks[id],
		role:        follower,
		sm:          c.smFact(),
		incarnation: node.Incarnation(),
	}
	if c.set != nil {
		r.tag = fmt.Sprintf("%s/g%d", id, c.group)
	}
	r.applyCond = simnet.NewCond(&r.mu)
	r.replWake = simnet.NewCond(&r.mu)
	r.persistWake = simnet.NewCond(&r.mu)
	if r.d == nil {
		panic(fmt.Sprintf("raft: unknown replica id %q", id))
	}
	r.persisted = len(r.d.log) - 1 // the reloaded log is durable by definition
	return r
}

// callPeer sends one intra-group RPC, stamping the group id into Meta so
// multi-group endpoints can demultiplex (zero for standalone clusters).
func (r *Replica) callPeer(p *simnet.Proc, addr string, req wire.Msg, timeout time.Duration) (wire.Msg, error) {
	req.Meta = uint64(r.cluster.group)
	return r.cluster.sim.Net().CallTimeout(p, r.node, addr, req, timeout)
}

func (r *Replica) persist(p *simnet.Proc) {
	p.Sleep(r.cluster.cfg.FsyncCost)
}

func (r *Replica) lastLogIndex() int { return len(r.d.log) - 1 }
func (r *Replica) lastLogTerm() int  { return r.d.log[len(r.d.log)-1].Term }

// Wire codes for raft's own RPCs (range 0x20–0x2f; see internal/wire). Any
// request whose code lies outside this range is a client command proposed
// into the log, so propose needs no envelope at all.
const (
	codeRequestVote   wire.Code = 0x20
	codeVoteReply     wire.Code = 0x21
	codeAppendEntries wire.Code = 0x22
	codeAppendReply   wire.Code = 0x23
	codeNop           wire.Code = 0x24
)

// Message types.
type requestVoteArgs struct {
	Term         int
	CandidateID  string
	LastLogIndex int
	LastLogTerm  int
}

func (a requestVoteArgs) MarshalWire() wire.Msg {
	return wire.Msg{Code: codeRequestVote, S: [3]string{a.CandidateID},
		U: [4]uint64{uint64(a.Term), uint64(a.LastLogIndex), uint64(a.LastLogTerm)}}
}

func (a *requestVoteArgs) UnmarshalWire(m wire.Msg) error {
	*a = requestVoteArgs{Term: int(m.Int(0)), CandidateID: m.S[0],
		LastLogIndex: int(m.Int(1)), LastLogTerm: int(m.Int(2))}
	return nil
}

type requestVoteReply struct {
	Term    int
	Granted bool
}

func (a requestVoteReply) MarshalWire() wire.Msg {
	m := wire.Msg{Code: codeVoteReply, U: [4]uint64{uint64(a.Term)}}
	m.SetBool(1, a.Granted)
	return m
}

func (a *requestVoteReply) UnmarshalWire(m wire.Msg) error {
	*a = requestVoteReply{Term: int(m.Int(0)), Granted: m.Bool(1)}
	return nil
}

type appendEntriesArgs struct {
	Term         int
	LeaderID     string
	PrevLogIndex int
	PrevLogTerm  int
	Entries      []entry
	LeaderCommit int
}

// MarshalWire ships each entry as its command message with the entry term
// stamped into Meta (the carrier slot); UnmarshalWire moves the term back
// out so state machines see the command exactly as proposed.
func (a appendEntriesArgs) MarshalWire() wire.Msg {
	m := wire.Msg{Code: codeAppendEntries, S: [3]string{a.LeaderID},
		U: [4]uint64{uint64(a.Term), uint64(a.PrevLogIndex), uint64(a.PrevLogTerm), uint64(a.LeaderCommit)}}
	if len(a.Entries) > 0 {
		sub := make([]wire.Msg, len(a.Entries))
		for i, e := range a.Entries {
			c := e.Cmd
			c.Meta = uint64(e.Term)
			sub[i] = c
		}
		m.Sub = sub
	}
	return m
}

func (a *appendEntriesArgs) UnmarshalWire(m wire.Msg) error {
	*a = appendEntriesArgs{Term: int(m.Int(0)), LeaderID: m.S[0],
		PrevLogIndex: int(m.Int(1)), PrevLogTerm: int(m.Int(2)), LeaderCommit: int(m.Int(3))}
	if len(m.Sub) > 0 {
		a.Entries = make([]entry, len(m.Sub))
		for i, c := range m.Sub {
			term := int(c.Meta)
			c.Meta = 0
			a.Entries[i] = entry{Term: term, Cmd: c}
		}
	}
	return nil
}

type appendEntriesReply struct {
	Term          int
	Success       bool
	ConflictIndex int
}

func (a appendEntriesReply) MarshalWire() wire.Msg {
	m := wire.Msg{Code: codeAppendReply, U: [4]uint64{uint64(a.Term)}}
	m.SetBool(1, a.Success)
	m.SetInt(2, int64(a.ConflictIndex))
	return m
}

func (a *appendEntriesReply) UnmarshalWire(m wire.Msg) error {
	*a = appendEntriesReply{Term: int(m.Int(0)), Success: m.Bool(1), ConflictIndex: int(m.Int(2))}
	return nil
}

func (r *Replica) handleRPC(p *simnet.Proc, m simnet.Msg) (simnet.Msg, error) {
	switch m.Code {
	case codeRequestVote:
		var a requestVoteArgs
		a.UnmarshalWire(m) //nolint:errcheck
		return r.onRequestVote(p, a).MarshalWire(), nil
	case codeAppendEntries:
		var a appendEntriesArgs
		a.UnmarshalWire(m) //nolint:errcheck
		return r.onAppendEntries(p, a).MarshalWire(), nil
	default:
		// Every non-raft code is a client command to propose.
		return r.onPropose(p, m)
	}
}

// stepDown transitions to follower in a newer term. Caller holds mu.
func (r *Replica) stepDown(p *simnet.Proc, term int) {
	r.d.term = term
	r.d.votedFor = ""
	r.role = follower
	r.leaderID = ""
	// Parked proposers wait on per-entry conds; losing leadership is the
	// one event that must wake all of them (their entries may never apply).
	for _, w := range r.applyWaiters {
		w.Signal(p)
	}
	r.persist(p)
}

func (r *Replica) onRequestVote(p *simnet.Proc, a requestVoteArgs) requestVoteReply {
	r.mu.Lock(p)
	defer r.mu.Unlock(p)
	if a.Term > r.d.term {
		r.stepDown(p, a.Term)
	}
	reply := requestVoteReply{Term: r.d.term}
	if a.Term < r.d.term {
		return reply
	}
	upToDate := a.LastLogTerm > r.lastLogTerm() ||
		(a.LastLogTerm == r.lastLogTerm() && a.LastLogIndex >= r.lastLogIndex())
	if (r.d.votedFor == "" || r.d.votedFor == a.CandidateID) && upToDate {
		r.d.votedFor = a.CandidateID
		r.lastHeard = p.Now() // granting a vote resets the election timer
		r.persist(p)
		reply.Granted = true
	}
	return reply
}

func (r *Replica) onAppendEntries(p *simnet.Proc, a appendEntriesArgs) appendEntriesReply {
	r.mu.Lock(p)
	defer r.mu.Unlock(p)
	if a.Term > r.d.term {
		r.stepDown(p, a.Term)
	}
	reply := appendEntriesReply{Term: r.d.term}
	if a.Term < r.d.term {
		return reply
	}
	// Valid leader for our term.
	r.lastHeard = p.Now()
	r.leaderID = a.LeaderID
	if r.role != follower {
		r.role = follower
	}
	if a.PrevLogIndex > r.lastLogIndex() {
		reply.ConflictIndex = r.lastLogIndex() + 1
		return reply
	}
	if a.PrevLogIndex > 0 && r.d.log[a.PrevLogIndex].Term != a.PrevLogTerm {
		// Roll back to the first entry of the conflicting term.
		ct := r.d.log[a.PrevLogIndex].Term
		ci := a.PrevLogIndex
		for ci > 1 && r.d.log[ci-1].Term == ct {
			ci--
		}
		reply.ConflictIndex = ci
		return reply
	}
	// Append new entries, truncating on divergence.
	changed := false
	for i, e := range a.Entries {
		idx := a.PrevLogIndex + 1 + i
		if idx <= r.lastLogIndex() {
			if r.d.log[idx].Term != e.Term {
				r.d.log = r.d.log[:idx]
				r.d.log = append(r.d.log, e)
				changed = true
			}
		} else {
			r.d.log = append(r.d.log, e)
			changed = true
		}
	}
	if changed {
		r.persist(p)
		// Truncation can shrink the durable frontier; appends extend it.
		r.persisted = r.lastLogIndex()
	}
	if a.LeaderCommit > r.commitIndex {
		ci := a.LeaderCommit
		if ci > r.lastLogIndex() {
			ci = r.lastLogIndex()
		}
		if ci > r.commitIndex {
			r.commitIndex = ci
			r.applyCond.Broadcast(p)
		}
	}
	reply.Success = true
	return reply
}

// onPropose appends the command (if leader) and waits for it to commit and
// apply, returning the state machine's result.
func (r *Replica) onPropose(p *simnet.Proc, cmd wire.Msg) (wire.Msg, error) {
	r.mu.Lock(p)
	if r.role != leader {
		hint := r.leaderID
		r.mu.Unlock(p)
		return wire.Msg{}, NotLeaderError{Hint: hint}
	}
	if cpu := r.cluster.cfg.ApplyCPU; cpu > 0 {
		// Admission control: if the unapplied backlog already needs more
		// than ProposeTimeout of apply CPU, this command cannot possibly
		// answer in time — reject it now, cheaply, instead of letting it
		// queue, time out, and still consume apply capacity later (the
		// retry amplification that melts a saturated group).
		if backlog := r.lastLogIndex() - r.lastApplied; time.Duration(backlog)*cpu >= r.cluster.cfg.ProposeTimeout {
			r.mu.Unlock(p)
			return wire.Msg{}, ErrBusy
		}
	}
	r.d.log = append(r.d.log, entry{Term: r.d.term, Cmd: cmd})
	idx := r.lastLogIndex()
	term := r.d.term
	// Group commit: the fsync happens off this path, in persistLoop, where
	// one disk sync covers every entry appended while the previous sync ran.
	// Proposers therefore hold mu only for the in-memory append — under a
	// proposal burst the replicators (which need mu to build AppendEntries,
	// heartbeats included) are never starved behind a convoy of serialized
	// fsyncs, which is what used to flap leadership on a saturated group.
	// Replication starts immediately; the commit rule counts this replica
	// only once the persister has caught up past idx.
	r.persistWake.Broadcast(p)
	r.replWake.Broadcast(p)
	// Park on a per-proposal cond: the apply loop signals exactly the
	// waiters whose entries it applied, and stepDown wakes everyone. A
	// shared broadcast cond here would wake every parked proposer on every
	// committed batch — an O(waiters²) thundering herd once a group backs
	// up.
	waiter := simnet.NewCond(&r.mu)
	if r.applyWaiters == nil {
		r.applyWaiters = make(map[int]*simnet.Cond)
	}
	r.applyWaiters[idx] = waiter
	defer delete(r.applyWaiters, idx)
	deadline := p.Now() + r.cluster.cfg.ProposeTimeout
	for r.lastApplied < idx {
		if r.d.term != term || r.role != leader {
			r.mu.Unlock(p)
			return wire.Msg{}, NotLeaderError{Hint: r.leaderID}
		}
		now := p.Now()
		if now >= deadline {
			r.mu.Unlock(p)
			return wire.Msg{}, ErrTimeout
		}
		waiter.WaitTimeout(p, deadline-now)
	}
	// Verify the entry at idx is still ours (no truncation by a new leader).
	if r.d.log[idx].Term != term {
		r.mu.Unlock(p)
		return wire.Msg{}, NotLeaderError{Hint: r.leaderID}
	}
	res := r.applyResults[idx]
	delete(r.applyResults, idx)
	r.mu.Unlock(p)
	return res, nil
}

// persistLoop is the group-commit disk path: whenever the log has entries
// beyond the last finished fsync it syncs once, covering all of them, then
// re-checks. Leader-side durability feeds the commit rule from here — the
// replica's own matchIndex advances only when the fsync that covers an entry
// completes (followers may still form a majority without it, as in any Raft
// where replication runs in parallel with the leader's disk write). The
// follower append path persists synchronously per RPC and keeps `persisted`
// up to date itself, so this proc only ever works on a leader's backlog.
func (r *Replica) persistLoop(p *simnet.Proc) {
	r.mu.Lock(p)
	for {
		for r.persisted >= r.lastLogIndex() {
			r.persistWake.Wait(p)
		}
		target := r.lastLogIndex()
		r.mu.Unlock(p)
		p.Sleep(r.cluster.cfg.FsyncCost)
		r.mu.Lock(p)
		if n := r.lastLogIndex(); n < target {
			target = n // truncated by a new leader while the sync ran
		}
		if target > r.persisted {
			r.persisted = target
		}
		if r.role == leader && r.persisted > r.matchIndex[r.id] {
			r.matchIndex[r.id] = r.persisted
			r.advanceCommit(p)
		}
	}
}

// electionTicker polls the election timer for a standalone replica. Nodes
// in a Set run one shared ticker over all their groups instead (group.go).
func (r *Replica) electionTicker(p *simnet.Proc) {
	gran := r.cluster.cfg.ElectionTimeoutMin / 4
	for {
		p.Sleep(gran)
		r.tick(p)
	}
}

// tick checks the election timer once and, when it has expired, runs the
// candidate round on a dedicated proc. The indirection keeps the ticker
// non-blocking, so on a multi-group node one group's election (which holds
// the round's vote RPCs in flight for up to an election timeout) never
// delays the timer checks of the other groups sharing the ticker.
func (r *Replica) tick(p *simnet.Proc) {
	r.mu.Lock(p)
	if r.electTimeout == 0 {
		r.drawTimeout(p)
	}
	if r.role == leader || r.electing || p.Now()-r.lastHeard < r.electTimeout {
		r.mu.Unlock(p)
		return
	}
	r.electing = true
	r.mu.Unlock(p)
	p.GoOn(r.node, "raft-elect:"+r.tag, func(ep *simnet.Proc) {
		r.mu.Lock(ep)
		if r.role != leader && ep.Now()-r.lastHeard >= r.electTimeout {
			r.startElection(ep)
		}
		r.drawTimeout(ep)
		r.electing = false
		r.mu.Unlock(ep)
	})
}

// drawTimeout redraws the randomized election timeout. Caller holds mu.
func (r *Replica) drawTimeout(p *simnet.Proc) {
	cfg := r.cluster.cfg
	span := cfg.ElectionTimeoutMax - cfg.ElectionTimeoutMin
	r.electTimeout = cfg.ElectionTimeoutMin + time.Duration(p.Rand().Int63n(int64(span)))
}

// startElection runs a candidate round. Caller holds mu; it is released
// while votes are in flight and reacquired before returning.
func (r *Replica) startElection(p *simnet.Proc) {
	r.role = candidate
	r.d.term++
	r.d.votedFor = r.id
	r.leaderID = ""
	r.lastHeard = p.Now()
	term := r.d.term
	r.persist(p)
	args := requestVoteArgs{
		Term:         term,
		CandidateID:  r.id,
		LastLogIndex: r.lastLogIndex(),
		LastLogTerm:  r.lastLogTerm(),
	}
	votes := 1
	responses := 1
	total := len(r.cluster.ids)
	done := simnet.NewChan[bool](r.cluster.sim)
	for _, peer := range r.cluster.ids {
		if peer == r.id {
			continue
		}
		addr := r.cluster.Addr(peer)
		p.Go("raft-vote-req:"+peer, func(vp *simnet.Proc) {
			m, err := r.callPeer(vp, addr, args.MarshalWire(), r.cluster.cfg.ElectionTimeoutMin)
			granted := false
			if err == nil {
				var rep requestVoteReply
				rep.UnmarshalWire(m) //nolint:errcheck
				r.mu.Lock(vp)
				if rep.Term > r.d.term {
					r.stepDown(vp, rep.Term)
				}
				r.mu.Unlock(vp)
				granted = rep.Granted
			}
			done.Send(vp, granted)
		})
	}
	r.mu.Unlock(p)
	for responses < total {
		g, ok := done.Recv(p)
		if !ok {
			break
		}
		responses++
		if g {
			votes++
		}
		if votes > total/2 {
			break
		}
	}
	r.mu.Lock(p)
	if r.role == candidate && r.d.term == term && votes > total/2 {
		r.becomeLeader(p)
	}
}

// becomeLeader initializes leader state and starts replicators. Holds mu.
func (r *Replica) becomeLeader(p *simnet.Proc) {
	r.role = leader
	r.leaderID = r.id
	r.nextIndex = make(map[string]int)
	r.matchIndex = make(map[string]int)
	for _, id := range r.cluster.ids {
		r.nextIndex[id] = r.lastLogIndex() + 1
		r.matchIndex[id] = 0
	}
	r.matchIndex[r.id] = r.lastLogIndex()
	term := r.d.term
	for _, peer := range r.cluster.ids {
		if peer == r.id {
			continue
		}
		peer := peer
		p.GoOn(r.node, "raft-repl:"+r.tag+">"+peer, func(rp *simnet.Proc) { r.replicate(rp, peer, term) })
	}
	// Commit a no-op to establish commitment in the new term promptly.
	r.d.log = append(r.d.log, entry{Term: term, Cmd: wire.Msg{Code: codeNop}})
	r.matchIndex[r.id] = r.lastLogIndex()
	r.persist(p)
	r.persisted = r.lastLogIndex()
	r.replWake.Broadcast(p)
}

// replicate drives one follower while r leads in `term`.
func (r *Replica) replicate(p *simnet.Proc, peer string, term int) {
	addr := r.cluster.Addr(peer)
	cfg := r.cluster.cfg
	for {
		r.mu.Lock(p)
		if r.role != leader || r.d.term != term {
			r.mu.Unlock(p)
			return
		}
		ni := r.nextIndex[peer]
		if ni < 1 {
			ni = 1
		}
		args := appendEntriesArgs{
			Term:         term,
			LeaderID:     r.id,
			PrevLogIndex: ni - 1,
			PrevLogTerm:  r.d.log[ni-1].Term,
			LeaderCommit: r.commitIndex,
		}
		if r.lastLogIndex() >= ni {
			args.Entries = append([]entry(nil), r.d.log[ni:]...)
		}
		r.mu.Unlock(p)
		am, err := r.callPeer(p, addr, args.MarshalWire(), cfg.HeartbeatInterval*2)
		var rep appendEntriesReply
		if err == nil {
			rep.UnmarshalWire(am) //nolint:errcheck
		}
		r.mu.Lock(p)
		if r.role != leader || r.d.term != term {
			r.mu.Unlock(p)
			return
		}
		idle := true
		if err == nil {
			switch {
			case rep.Term > r.d.term:
				r.stepDown(p, rep.Term)
				r.mu.Unlock(p)
				return
			case rep.Success:
				r.nextIndex[peer] = ni + len(args.Entries)
				if m := ni + len(args.Entries) - 1; m > r.matchIndex[peer] {
					r.matchIndex[peer] = m
					r.advanceCommit(p)
				}
			default:
				ci := rep.ConflictIndex
				if ci < 1 {
					ci = 1
				}
				r.nextIndex[peer] = ci
				idle = false // retry immediately
			}
		}
		if idle && r.lastLogIndex() >= r.nextIndex[peer] {
			idle = false
		}
		if idle {
			r.replWake.WaitTimeout(p, cfg.HeartbeatInterval)
		}
		r.mu.Unlock(p)
	}
}

// advanceCommit applies the Raft commit rule. Caller holds mu.
func (r *Replica) advanceCommit(p *simnet.Proc) {
	for n := r.lastLogIndex(); n > r.commitIndex; n-- {
		if r.d.log[n].Term != r.d.term {
			continue // only current-term entries commit by counting
		}
		count := 0
		for _, id := range r.cluster.ids {
			if r.matchIndex[id] >= n {
				count++
			}
		}
		if count > len(r.cluster.ids)/2 {
			r.commitIndex = n
			r.applyCond.Broadcast(p)
			break
		}
	}
}

// applyLoop applies committed entries in order on this replica. The
// per-command CPU cost is charged with mu released — the apply PROC is the
// serial resource (as in a real coordination service's single apply thread),
// so a busy apply stage delays proposers waiting on results but never blocks
// the replicators' heartbeat path on the mutex.
func (r *Replica) applyLoop(p *simnet.Proc) {
	for {
		r.mu.Lock(p)
		for r.lastApplied >= r.commitIndex {
			r.applyCond.Wait(p)
		}
		end := r.commitIndex
		if cpu := r.cluster.cfg.ApplyCPU; cpu > 0 {
			r.mu.Unlock(p)
			p.Sleep(time.Duration(end-r.lastApplied) * cpu)
			r.mu.Lock(p)
		}
		for r.lastApplied < end {
			r.lastApplied++
			e := r.d.log[r.lastApplied]
			if e.Cmd.Code != codeNop {
				res := r.sm.Apply(e.Cmd)
				if r.role == leader {
					if r.applyResults == nil {
						r.applyResults = make(map[int]wire.Msg)
					}
					r.applyResults[r.lastApplied] = res
				}
			}
			// Wake exactly the proposer parked on this entry, if any.
			if w, ok := r.applyWaiters[r.lastApplied]; ok {
				w.Signal(p)
			}
		}
		r.mu.Unlock(p)
	}
}

// IsLeader reports whether this replica currently believes it leads.
func (r *Replica) IsLeader() bool { return r.role == leader }

// Term returns the replica's current term (for tests).
func (r *Replica) Term() int { return r.d.term }

// CommitIndex returns the replica's commit index (for tests).
func (r *Replica) CommitIndex() int { return r.commitIndex }

// SM returns the replica's state machine (for tests and local reads that
// tolerate staleness).
func (r *Replica) SM() StateMachine { return r.sm }
