// Package raft implements a compact Raft consensus protocol over the
// simulated network. It is the replication substrate for the NCL controller
// (the paper uses a fault-tolerant ZooKeeper instance; a three-replica Raft
// group provides the same guarantees — linearizable metadata operations that
// survive controller-node failures — with a comparable few-millisecond
// commit cost dominated by log fsyncs and quorum round trips).
//
// The implementation covers leader election with randomized timeouts, log
// replication with conflict rollback, the commit rule restricted to
// current-term entries, crash-restart with persistent term/vote/log, and
// linearizable reads (as no-op commands through the log). Log compaction is
// intentionally omitted: controller logs in every experiment stay far below
// the point where snapshotting matters.
package raft

import (
	"errors"
	"fmt"
	"time"

	"splitft/internal/model"
	"splitft/internal/simnet"
	"splitft/internal/wire"
)

// Config holds protocol timing. The constants live in internal/model (the
// unified hardware cost-model layer); this alias keeps the raft API
// self-contained. Defaults suit the controller's deployment: commit latency
// ~2 ms, failover within a few hundred milliseconds.
type Config = model.RaftConfig

// DefaultConfig returns the baseline profile's Raft timing parameters.
func DefaultConfig() Config {
	return model.Baseline().Controller.Raft
}

// StateMachine is the replicated application. Apply must be deterministic;
// it runs on every replica in log order. Commands and results are flat wire
// messages (see internal/wire); a command's code must lie outside raft's own
// 0x20–0x2f range.
type StateMachine interface {
	Apply(cmd wire.Msg) wire.Msg
}

// Errors returned to clients.
var (
	// ErrNotLeader carries a leader hint in its message ("" if unknown).
	ErrNotLeader = errors.New("raft: not leader")
	ErrTimeout   = errors.New("raft: proposal timed out")
)

// NotLeaderError rejects a proposal sent to a non-leader, carrying a hint
// to the current leader's id when known.
type NotLeaderError struct{ Hint string }

func (e NotLeaderError) Error() string        { return "raft: not leader; hint=" + e.Hint }
func (e NotLeaderError) Is(target error) bool { return target == ErrNotLeader }

type entry struct {
	Term int
	Cmd  wire.Msg
}

// disk is the persistent state of one replica; it survives node crashes
// (in the Cluster registry, standing in for the replica's local SSD).
type disk struct {
	term     int
	votedFor string
	log      []entry // 1-indexed semantically; log[0] unused sentinel
}

// Cluster owns the durable state of all replicas of one Raft group and the
// naming needed to (re)start them.
type Cluster struct {
	sim    *simnet.Sim
	name   string
	cfg    Config
	ids    []string
	disks  map[string]*disk
	smFact func() StateMachine
}

// NewCluster defines a Raft group with the given replica ids (which double
// as RPC address suffixes). smFactory builds a fresh state machine for a
// (re)starting replica; the log replay rebuilds its contents.
func NewCluster(s *simnet.Sim, name string, cfg Config, ids []string, smFactory func() StateMachine) *Cluster {
	c := &Cluster{sim: s, name: name, cfg: cfg, ids: ids, disks: make(map[string]*disk), smFact: smFactory}
	for _, id := range ids {
		c.disks[id] = &disk{log: make([]entry, 1)}
	}
	return c
}

// Addr returns the RPC address of replica id.
func (c *Cluster) Addr(id string) string { return c.name + "/raft/" + id }

// Addrs returns all replica addresses (for clients).
func (c *Cluster) Addrs() []string {
	out := make([]string, len(c.ids))
	for i, id := range c.ids {
		out[i] = c.Addr(id)
	}
	return out
}

type role int

const (
	follower role = iota
	candidate
	leader
)

// Replica is one running Raft participant. Start a replica per controller
// node; restart it (StartReplica again) after the node recovers.
type Replica struct {
	cluster *Cluster
	id      string
	node    *simnet.Node
	d       *disk

	mu       simnet.Mutex
	role     role
	leaderID string

	commitIndex int
	lastApplied int
	sm          StateMachine

	// Leader volatile state.
	nextIndex  map[string]int
	matchIndex map[string]int

	lastHeard   time.Duration
	applyCond   *simnet.Cond // signalled when commitIndex advances
	replWake    *simnet.Cond // kicks replicators on new entries
	incarnation int

	// applyResults holds state-machine results for entries this leader
	// proposed, keyed by log index, until the proposer collects them.
	applyResults map[int]wire.Msg
}

// StartReplica boots (or reboots) replica id on node. Persistent state is
// reloaded from the cluster's disk registry; volatile state starts fresh.
func StartReplica(c *Cluster, node *simnet.Node, id string) *Replica {
	r := &Replica{
		cluster:     c,
		id:          id,
		node:        node,
		d:           c.disks[id],
		role:        follower,
		sm:          c.smFact(),
		incarnation: node.Incarnation(),
	}
	r.applyCond = simnet.NewCond(&r.mu)
	r.replWake = simnet.NewCond(&r.mu)
	if r.d == nil {
		panic(fmt.Sprintf("raft: unknown replica id %q", id))
	}
	c.sim.Net().Register(c.Addr(id), node, r.handleRPC)
	node.Go("raft-ticker:"+id, r.electionTicker)
	node.Go("raft-apply:"+id, r.applyLoop)
	return r
}

func (r *Replica) persist(p *simnet.Proc) {
	p.Sleep(r.cluster.cfg.FsyncCost)
}

func (r *Replica) lastLogIndex() int { return len(r.d.log) - 1 }
func (r *Replica) lastLogTerm() int  { return r.d.log[len(r.d.log)-1].Term }

// Wire codes for raft's own RPCs (range 0x20–0x2f; see internal/wire). Any
// request whose code lies outside this range is a client command proposed
// into the log, so propose needs no envelope at all.
const (
	codeRequestVote   wire.Code = 0x20
	codeVoteReply     wire.Code = 0x21
	codeAppendEntries wire.Code = 0x22
	codeAppendReply   wire.Code = 0x23
	codeNop           wire.Code = 0x24
)

// Message types.
type requestVoteArgs struct {
	Term         int
	CandidateID  string
	LastLogIndex int
	LastLogTerm  int
}

func (a requestVoteArgs) MarshalWire() wire.Msg {
	return wire.Msg{Code: codeRequestVote, S: [3]string{a.CandidateID},
		U: [4]uint64{uint64(a.Term), uint64(a.LastLogIndex), uint64(a.LastLogTerm)}}
}

func (a *requestVoteArgs) UnmarshalWire(m wire.Msg) error {
	*a = requestVoteArgs{Term: int(m.Int(0)), CandidateID: m.S[0],
		LastLogIndex: int(m.Int(1)), LastLogTerm: int(m.Int(2))}
	return nil
}

type requestVoteReply struct {
	Term    int
	Granted bool
}

func (a requestVoteReply) MarshalWire() wire.Msg {
	m := wire.Msg{Code: codeVoteReply, U: [4]uint64{uint64(a.Term)}}
	m.SetBool(1, a.Granted)
	return m
}

func (a *requestVoteReply) UnmarshalWire(m wire.Msg) error {
	*a = requestVoteReply{Term: int(m.Int(0)), Granted: m.Bool(1)}
	return nil
}

type appendEntriesArgs struct {
	Term         int
	LeaderID     string
	PrevLogIndex int
	PrevLogTerm  int
	Entries      []entry
	LeaderCommit int
}

// MarshalWire ships each entry as its command message with the entry term
// stamped into Meta (the carrier slot); UnmarshalWire moves the term back
// out so state machines see the command exactly as proposed.
func (a appendEntriesArgs) MarshalWire() wire.Msg {
	m := wire.Msg{Code: codeAppendEntries, S: [3]string{a.LeaderID},
		U: [4]uint64{uint64(a.Term), uint64(a.PrevLogIndex), uint64(a.PrevLogTerm), uint64(a.LeaderCommit)}}
	if len(a.Entries) > 0 {
		sub := make([]wire.Msg, len(a.Entries))
		for i, e := range a.Entries {
			c := e.Cmd
			c.Meta = uint64(e.Term)
			sub[i] = c
		}
		m.Sub = sub
	}
	return m
}

func (a *appendEntriesArgs) UnmarshalWire(m wire.Msg) error {
	*a = appendEntriesArgs{Term: int(m.Int(0)), LeaderID: m.S[0],
		PrevLogIndex: int(m.Int(1)), PrevLogTerm: int(m.Int(2)), LeaderCommit: int(m.Int(3))}
	if len(m.Sub) > 0 {
		a.Entries = make([]entry, len(m.Sub))
		for i, c := range m.Sub {
			term := int(c.Meta)
			c.Meta = 0
			a.Entries[i] = entry{Term: term, Cmd: c}
		}
	}
	return nil
}

type appendEntriesReply struct {
	Term          int
	Success       bool
	ConflictIndex int
}

func (a appendEntriesReply) MarshalWire() wire.Msg {
	m := wire.Msg{Code: codeAppendReply, U: [4]uint64{uint64(a.Term)}}
	m.SetBool(1, a.Success)
	m.SetInt(2, int64(a.ConflictIndex))
	return m
}

func (a *appendEntriesReply) UnmarshalWire(m wire.Msg) error {
	*a = appendEntriesReply{Term: int(m.Int(0)), Success: m.Bool(1), ConflictIndex: int(m.Int(2))}
	return nil
}

func (r *Replica) handleRPC(p *simnet.Proc, m simnet.Msg) (simnet.Msg, error) {
	switch m.Code {
	case codeRequestVote:
		var a requestVoteArgs
		a.UnmarshalWire(m) //nolint:errcheck
		return r.onRequestVote(p, a).MarshalWire(), nil
	case codeAppendEntries:
		var a appendEntriesArgs
		a.UnmarshalWire(m) //nolint:errcheck
		return r.onAppendEntries(p, a).MarshalWire(), nil
	default:
		// Every non-raft code is a client command to propose.
		return r.onPropose(p, m)
	}
}

// stepDown transitions to follower in a newer term. Caller holds mu.
func (r *Replica) stepDown(p *simnet.Proc, term int) {
	r.d.term = term
	r.d.votedFor = ""
	r.role = follower
	r.leaderID = ""
	r.persist(p)
}

func (r *Replica) onRequestVote(p *simnet.Proc, a requestVoteArgs) requestVoteReply {
	r.mu.Lock(p)
	defer r.mu.Unlock(p)
	if a.Term > r.d.term {
		r.stepDown(p, a.Term)
	}
	reply := requestVoteReply{Term: r.d.term}
	if a.Term < r.d.term {
		return reply
	}
	upToDate := a.LastLogTerm > r.lastLogTerm() ||
		(a.LastLogTerm == r.lastLogTerm() && a.LastLogIndex >= r.lastLogIndex())
	if (r.d.votedFor == "" || r.d.votedFor == a.CandidateID) && upToDate {
		r.d.votedFor = a.CandidateID
		r.lastHeard = p.Now() // granting a vote resets the election timer
		r.persist(p)
		reply.Granted = true
	}
	return reply
}

func (r *Replica) onAppendEntries(p *simnet.Proc, a appendEntriesArgs) appendEntriesReply {
	r.mu.Lock(p)
	defer r.mu.Unlock(p)
	if a.Term > r.d.term {
		r.stepDown(p, a.Term)
	}
	reply := appendEntriesReply{Term: r.d.term}
	if a.Term < r.d.term {
		return reply
	}
	// Valid leader for our term.
	r.lastHeard = p.Now()
	r.leaderID = a.LeaderID
	if r.role != follower {
		r.role = follower
	}
	if a.PrevLogIndex > r.lastLogIndex() {
		reply.ConflictIndex = r.lastLogIndex() + 1
		return reply
	}
	if a.PrevLogIndex > 0 && r.d.log[a.PrevLogIndex].Term != a.PrevLogTerm {
		// Roll back to the first entry of the conflicting term.
		ct := r.d.log[a.PrevLogIndex].Term
		ci := a.PrevLogIndex
		for ci > 1 && r.d.log[ci-1].Term == ct {
			ci--
		}
		reply.ConflictIndex = ci
		return reply
	}
	// Append new entries, truncating on divergence.
	changed := false
	for i, e := range a.Entries {
		idx := a.PrevLogIndex + 1 + i
		if idx <= r.lastLogIndex() {
			if r.d.log[idx].Term != e.Term {
				r.d.log = r.d.log[:idx]
				r.d.log = append(r.d.log, e)
				changed = true
			}
		} else {
			r.d.log = append(r.d.log, e)
			changed = true
		}
	}
	if changed {
		r.persist(p)
	}
	if a.LeaderCommit > r.commitIndex {
		ci := a.LeaderCommit
		if ci > r.lastLogIndex() {
			ci = r.lastLogIndex()
		}
		if ci > r.commitIndex {
			r.commitIndex = ci
			r.applyCond.Broadcast(p)
		}
	}
	reply.Success = true
	return reply
}

// onPropose appends the command (if leader) and waits for it to commit and
// apply, returning the state machine's result.
func (r *Replica) onPropose(p *simnet.Proc, cmd wire.Msg) (wire.Msg, error) {
	r.mu.Lock(p)
	if r.role != leader {
		hint := r.leaderID
		r.mu.Unlock(p)
		return wire.Msg{}, NotLeaderError{Hint: hint}
	}
	r.d.log = append(r.d.log, entry{Term: r.d.term, Cmd: cmd})
	idx := r.lastLogIndex()
	term := r.d.term
	r.persist(p)
	r.matchIndex[r.id] = idx
	r.replWake.Broadcast(p)
	deadline := p.Now() + r.cluster.cfg.ProposeTimeout
	for r.lastApplied < idx {
		if r.d.term != term || r.role != leader {
			r.mu.Unlock(p)
			return wire.Msg{}, NotLeaderError{Hint: r.leaderID}
		}
		if p.Now() >= deadline {
			r.mu.Unlock(p)
			return wire.Msg{}, ErrTimeout
		}
		r.applyCond.WaitTimeout(p, 10*time.Millisecond)
	}
	// Verify the entry at idx is still ours (no truncation by a new leader).
	if r.d.log[idx].Term != term {
		r.mu.Unlock(p)
		return wire.Msg{}, NotLeaderError{Hint: r.leaderID}
	}
	res := r.applyResults[idx]
	delete(r.applyResults, idx)
	r.mu.Unlock(p)
	return res, nil
}

func (r *Replica) electionTicker(p *simnet.Proc) {
	cfg := r.cluster.cfg
	for {
		span := cfg.ElectionTimeoutMax - cfg.ElectionTimeoutMin
		timeout := cfg.ElectionTimeoutMin + time.Duration(p.Rand().Int63n(int64(span)))
		p.Sleep(timeout / 4)
		r.mu.Lock(p)
		if r.role != leader && p.Now()-r.lastHeard >= timeout {
			r.startElection(p)
		}
		r.mu.Unlock(p)
	}
}

// startElection runs a candidate round. Caller holds mu; it is released
// while votes are in flight and reacquired before returning.
func (r *Replica) startElection(p *simnet.Proc) {
	r.role = candidate
	r.d.term++
	r.d.votedFor = r.id
	r.leaderID = ""
	r.lastHeard = p.Now()
	term := r.d.term
	r.persist(p)
	args := requestVoteArgs{
		Term:         term,
		CandidateID:  r.id,
		LastLogIndex: r.lastLogIndex(),
		LastLogTerm:  r.lastLogTerm(),
	}
	votes := 1
	responses := 1
	total := len(r.cluster.ids)
	done := simnet.NewChan[bool](r.cluster.sim)
	for _, peer := range r.cluster.ids {
		if peer == r.id {
			continue
		}
		addr := r.cluster.Addr(peer)
		p.Go("raft-vote-req:"+peer, func(vp *simnet.Proc) {
			rep, err := wire.CallTimeout[requestVoteReply](vp, r.cluster.sim.Net(), r.node, addr, args, r.cluster.cfg.ElectionTimeoutMin)
			granted := false
			if err == nil {
				r.mu.Lock(vp)
				if rep.Term > r.d.term {
					r.stepDown(vp, rep.Term)
				}
				r.mu.Unlock(vp)
				granted = rep.Granted
			}
			done.Send(vp, granted)
		})
	}
	r.mu.Unlock(p)
	for responses < total {
		g, ok := done.Recv(p)
		if !ok {
			break
		}
		responses++
		if g {
			votes++
		}
		if votes > total/2 {
			break
		}
	}
	r.mu.Lock(p)
	if r.role == candidate && r.d.term == term && votes > total/2 {
		r.becomeLeader(p)
	}
}

// becomeLeader initializes leader state and starts replicators. Holds mu.
func (r *Replica) becomeLeader(p *simnet.Proc) {
	r.role = leader
	r.leaderID = r.id
	r.nextIndex = make(map[string]int)
	r.matchIndex = make(map[string]int)
	for _, id := range r.cluster.ids {
		r.nextIndex[id] = r.lastLogIndex() + 1
		r.matchIndex[id] = 0
	}
	r.matchIndex[r.id] = r.lastLogIndex()
	term := r.d.term
	for _, peer := range r.cluster.ids {
		if peer == r.id {
			continue
		}
		peer := peer
		p.GoOn(r.node, "raft-repl:"+peer, func(rp *simnet.Proc) { r.replicate(rp, peer, term) })
	}
	// Commit a no-op to establish commitment in the new term promptly.
	r.d.log = append(r.d.log, entry{Term: term, Cmd: wire.Msg{Code: codeNop}})
	r.matchIndex[r.id] = r.lastLogIndex()
	r.persist(p)
	r.replWake.Broadcast(p)
}

// replicate drives one follower while r leads in `term`.
func (r *Replica) replicate(p *simnet.Proc, peer string, term int) {
	addr := r.cluster.Addr(peer)
	cfg := r.cluster.cfg
	for {
		r.mu.Lock(p)
		if r.role != leader || r.d.term != term {
			r.mu.Unlock(p)
			return
		}
		ni := r.nextIndex[peer]
		if ni < 1 {
			ni = 1
		}
		args := appendEntriesArgs{
			Term:         term,
			LeaderID:     r.id,
			PrevLogIndex: ni - 1,
			PrevLogTerm:  r.d.log[ni-1].Term,
			LeaderCommit: r.commitIndex,
		}
		if r.lastLogIndex() >= ni {
			args.Entries = append([]entry(nil), r.d.log[ni:]...)
		}
		r.mu.Unlock(p)
		rep, err := wire.CallTimeout[appendEntriesReply](p, r.cluster.sim.Net(), r.node, addr, args, cfg.HeartbeatInterval*2)
		r.mu.Lock(p)
		if r.role != leader || r.d.term != term {
			r.mu.Unlock(p)
			return
		}
		idle := true
		if err == nil {
			switch {
			case rep.Term > r.d.term:
				r.stepDown(p, rep.Term)
				r.mu.Unlock(p)
				return
			case rep.Success:
				r.nextIndex[peer] = ni + len(args.Entries)
				if m := ni + len(args.Entries) - 1; m > r.matchIndex[peer] {
					r.matchIndex[peer] = m
					r.advanceCommit(p)
				}
			default:
				ci := rep.ConflictIndex
				if ci < 1 {
					ci = 1
				}
				r.nextIndex[peer] = ci
				idle = false // retry immediately
			}
		}
		if idle && r.lastLogIndex() >= r.nextIndex[peer] {
			idle = false
		}
		if idle {
			r.replWake.WaitTimeout(p, cfg.HeartbeatInterval)
		}
		r.mu.Unlock(p)
	}
}

// advanceCommit applies the Raft commit rule. Caller holds mu.
func (r *Replica) advanceCommit(p *simnet.Proc) {
	for n := r.lastLogIndex(); n > r.commitIndex; n-- {
		if r.d.log[n].Term != r.d.term {
			continue // only current-term entries commit by counting
		}
		count := 0
		for _, id := range r.cluster.ids {
			if r.matchIndex[id] >= n {
				count++
			}
		}
		if count > len(r.cluster.ids)/2 {
			r.commitIndex = n
			r.applyCond.Broadcast(p)
			break
		}
	}
}

// applyLoop applies committed entries in order on this replica.
func (r *Replica) applyLoop(p *simnet.Proc) {
	for {
		r.mu.Lock(p)
		for r.lastApplied >= r.commitIndex {
			r.applyCond.Wait(p)
		}
		for r.lastApplied < r.commitIndex {
			r.lastApplied++
			e := r.d.log[r.lastApplied]
			if e.Cmd.Code != codeNop {
				res := r.sm.Apply(e.Cmd)
				if r.role == leader {
					if r.applyResults == nil {
						r.applyResults = make(map[int]wire.Msg)
					}
					r.applyResults[r.lastApplied] = res
				}
			}
		}
		r.applyCond.Broadcast(p)
		r.mu.Unlock(p)
	}
}

// IsLeader reports whether this replica currently believes it leads.
func (r *Replica) IsLeader() bool { return r.role == leader }

// Term returns the replica's current term (for tests).
func (r *Replica) Term() int { return r.d.term }

// CommitIndex returns the replica's commit index (for tests).
func (r *Replica) CommitIndex() int { return r.commitIndex }

// SM returns the replica's state machine (for tests and local reads that
// tolerate staleness).
func (r *Replica) SM() StateMachine { return r.sm }
