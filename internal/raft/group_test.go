package raft

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"splitft/internal/simnet"
)

// setHarness runs one multi-group Set across n nodes with g groups, each
// group replicating its own regSM.
type setHarness struct {
	sim   *simnet.Sim
	set   *Set
	nodes map[string]*simnet.Node
	// replicas[id][g] is group g's replica on node id.
	replicas map[string][]*Replica
	// sms[g][id] is group g's state machine on node id, filled as factories
	// fire during StartNode.
	sms     []map[string]*regSM
	pending string
}

func newSetHarness(seed int64, n, groups int) *setHarness {
	s := simnet.New(seed)
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("c%d", i)
	}
	h := &setHarness{
		sim:      s,
		nodes:    make(map[string]*simnet.Node),
		replicas: make(map[string][]*Replica),
		sms:      make([]map[string]*regSM, groups),
	}
	h.set = NewSet(s, "ctrl", DefaultConfig(), ids)
	for g := 0; g < groups; g++ {
		g := g
		h.sms[g] = make(map[string]*regSM)
		h.set.AddGroup(func() StateMachine {
			sm := &regSM{}
			h.sms[g][h.pending] = sm
			return sm
		})
	}
	for _, id := range ids {
		node := s.NewNode(id)
		h.nodes[id] = node
		h.pending = id
		h.replicas[id] = h.set.StartNode(node, id)
	}
	return h
}

func (h *setHarness) restart(id string) {
	node := h.nodes[id]
	node.Restart()
	h.pending = id
	h.replicas[id] = h.set.StartNode(node, id)
}

// groupLeaders counts live leaders per group.
func (h *setHarness) groupLeaders() []int {
	out := make([]int, h.set.Groups())
	for id, reps := range h.replicas {
		if !h.nodes[id].Alive() {
			continue
		}
		for g, r := range reps {
			if r.IsLeader() && r.node.Incarnation() == r.incarnation {
				out[g]++
			}
		}
	}
	return out
}

// Every group elects exactly one leader, and proposals to different groups
// commit independently: each group's state machines see only that group's
// commands, on every node.
func TestSetGroupsCommitIndependently(t *testing.T) {
	const groups = 4
	h := newSetHarness(1, 3, groups)
	app := h.sim.NewNode("app")
	clients := make([]*Client, groups)
	for g := range clients {
		clients[g] = NewClient(h.set.Group(g), app)
	}
	h.sim.Go("driver", func(p *simnet.Proc) {
		p.Sleep(time.Second) // allow elections
		for i := 0; i < 3; i++ {
			for g, cl := range clients {
				if _, err := cl.Propose(p, cmdMsg(fmt.Sprintf("g%d-cmd%d", g, i))); err != nil {
					t.Errorf("group %d propose %d: %v", g, i, err)
				}
			}
		}
		p.Sleep(500 * time.Millisecond) // let followers apply
		for g, n := range h.groupLeaders() {
			if n != 1 {
				t.Errorf("group %d: %d leaders, want 1", g, n)
			}
		}
		for g := 0; g < groups; g++ {
			for id, sm := range h.sms[g] {
				if len(sm.applied) != 3 {
					t.Errorf("group %d on %s: %d applied, want 3", g, id, len(sm.applied))
					continue
				}
				for i, s := range sm.applied {
					want := fmt.Sprintf("g%d-cmd%d", g, i)
					if s != want {
						t.Errorf("group %d on %s [%d] = %q, want %q", g, id, i, s, want)
					}
				}
			}
		}
		h.sim.Stop()
	})
	if err := h.sim.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// Crashing one node fails over every group it led; after restart the node
// catches up in all groups.
func TestSetFailoverAndCatchUp(t *testing.T) {
	const groups = 3
	h := newSetHarness(3, 3, groups)
	app := h.sim.NewNode("app")
	h.sim.Go("driver", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		for g := 0; g < groups; g++ {
			cl := NewClient(h.set.Group(g), app)
			if _, err := cl.Propose(p, cmdMsg(fmt.Sprintf("pre-g%d", g))); err != nil {
				t.Errorf("pre propose g%d: %v", g, err)
			}
		}
		h.nodes["c0"].Crash()
		p.Sleep(time.Second) // re-elections among survivors
		for g, n := range h.groupLeaders() {
			if n != 1 {
				t.Errorf("group %d after crash: %d leaders, want 1", g, n)
			}
		}
		for g := 0; g < groups; g++ {
			cl := NewClient(h.set.Group(g), app)
			if _, err := cl.Propose(p, cmdMsg(fmt.Sprintf("post-g%d", g))); err != nil {
				t.Errorf("post propose g%d: %v", g, err)
			}
		}
		h.restart("c0")
		p.Sleep(time.Second)
		for g := 0; g < groups; g++ {
			sm := h.sms[g]["c0"]
			if len(sm.applied) != 2 {
				t.Errorf("group %d on restarted c0: applied %v, want 2 entries", g, sm.applied)
			}
		}
		h.sim.Stop()
	})
	if err := h.sim.RunUntil(60 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// A message tagged with a group the node does not run is rejected with
// ErrUnknownGroup rather than silently landing in group 0.
func TestSetRejectsUnknownGroup(t *testing.T) {
	h := newSetHarness(5, 3, 2)
	app := h.sim.NewNode("app")
	h.sim.Go("driver", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		m := cmdMsg("stray")
		m.Meta = 7 // no such group
		_, err := h.sim.Net().CallTimeout(p, app, h.set.Addr("c0"), m, time.Second)
		if !errors.Is(err, ErrUnknownGroup) {
			t.Errorf("got %v, want ErrUnknownGroup", err)
		}
		h.sim.Stop()
	})
	if err := h.sim.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
}
