package raft

import (
	"errors"

	"splitft/internal/simnet"
)

// ErrUnknownGroup rejects a message whose Meta names a group the receiving
// node does not run (a stale shard directory, or a misconfigured client).
var ErrUnknownGroup = errors.New("raft: unknown group")

// Set bundles several Raft groups that share one replica-id roster, one RPC
// endpoint per node, and one election ticker per node (ChubaoFS-style
// multi-raft). Each group keeps its own log, leader, and state machine, so
// the groups commit independently; only the node-level plumbing is shared.
//
// Wire layout: every message to a set endpoint carries its target group id
// in Msg.Meta (the carrier slot — reserved for transports, so client
// commands never use it). The endpoint demultiplexes on Meta, zeroes it,
// and hands the message to that group's replica; replies travel back on the
// RPC return path and need no tag. A standalone Cluster is the degenerate
// one-group case: it always sends Meta 0 and its unmuxed endpoint ignores
// it, which keeps the two forms wire-compatible.
type Set struct {
	sim    *simnet.Sim
	name   string
	cfg    Config
	ids    []string
	groups []*Cluster
}

// NewSet defines a multi-group set with a shared replica roster. Add the
// groups with AddGroup, then boot each node with StartNode.
func NewSet(s *simnet.Sim, name string, cfg Config, ids []string) *Set {
	return &Set{sim: s, name: name, cfg: cfg, ids: ids}
}

// AddGroup appends one Raft group to the set and returns its Cluster (use
// it with NewClient exactly like a standalone cluster; proposals are tagged
// automatically). All groups must be added before the first StartNode.
func (sn *Set) AddGroup(smFactory func() StateMachine) *Cluster {
	c := NewCluster(sn.sim, sn.name, sn.cfg, sn.ids, smFactory)
	c.set = sn
	c.group = len(sn.groups)
	sn.groups = append(sn.groups, c)
	return c
}

// Groups returns the number of groups in the set.
func (sn *Set) Groups() int { return len(sn.groups) }

// Group returns group g's cluster.
func (sn *Set) Group(g int) *Cluster { return sn.groups[g] }

// Addr returns the shared RPC address of replica id (same for all groups).
func (sn *Set) Addr(id string) string { return sn.groups[0].Addr(id) }

// StartNode boots (or, after a crash, reboots) replica id of every group on
// node: one demultiplexing RPC endpoint, one shared election ticker, and
// per-group apply and group-commit persister procs. Returns the replicas in
// group order.
func (sn *Set) StartNode(node *simnet.Node, id string) []*Replica {
	if len(sn.groups) == 0 {
		panic("raft: StartNode on a set with no groups")
	}
	reps := make([]*Replica, len(sn.groups))
	for g, c := range sn.groups {
		reps[g] = newReplica(c, node, id)
	}
	sn.sim.Net().Register(sn.Addr(id), node, func(p *simnet.Proc, m simnet.Msg) (simnet.Msg, error) {
		g := int(m.Meta)
		if g < 0 || g >= len(reps) {
			return simnet.Msg{}, ErrUnknownGroup
		}
		m.Meta = 0
		return reps[g].handleRPC(p, m)
	})
	node.Go("raft-ticker:"+id, func(p *simnet.Proc) {
		gran := sn.cfg.ElectionTimeoutMin / 4
		for {
			p.Sleep(gran)
			for _, r := range reps {
				r.tick(p)
			}
		}
	})
	for _, r := range reps {
		node.Go("raft-apply:"+r.tag, r.applyLoop)
		node.Go("raft-persist:"+r.tag, r.persistLoop)
	}
	return reps
}

// groupTag is used by Client.Propose: proposals to a set member carry the
// group id; standalone clusters stamp 0, which unmuxed endpoints ignore.
func (c *Cluster) groupTag() uint64 { return uint64(c.group) }
