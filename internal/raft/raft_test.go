package raft

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"splitft/internal/simnet"
	"splitft/internal/wire"
)

// codeTestCmd is the test command code (outside raft's 0x20–0x2f range).
const codeTestCmd wire.Code = 0x7f

// cmdMsg wraps a string command for proposing.
func cmdMsg(s string) wire.Msg { return wire.Msg{Code: codeTestCmd, S: [3]string{s}} }

// regSM is a deterministic test state machine: an append-only register log.
type regSM struct {
	applied []string
}

func (m *regSM) Apply(cmd wire.Msg) wire.Msg {
	s := cmd.S[0]
	m.applied = append(m.applied, s)
	return cmdMsg(fmt.Sprintf("ok:%s@%d", s, len(m.applied)))
}

type harness struct {
	sim      *simnet.Sim
	cluster  *Cluster
	nodes    map[string]*simnet.Node
	replicas map[string]*Replica
	sms      map[string]*regSM
	pending  string // id being (re)started; the SM factory records under it
}

func newHarness(seed int64, n int) *harness {
	s := simnet.New(seed)
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("c%d", i)
	}
	h := &harness{
		sim:      s,
		nodes:    make(map[string]*simnet.Node),
		replicas: make(map[string]*Replica),
		sms:      make(map[string]*regSM),
	}
	cl := NewCluster(s, "ctrl", DefaultConfig(), ids, func() StateMachine {
		sm := &regSM{}
		h.sms[h.pending] = sm
		return sm
	})
	h.cluster = cl
	for _, id := range ids {
		node := s.NewNode(id)
		h.nodes[id] = node
		h.pending = id
		h.replicas[id] = StartReplica(cl, node, id)
	}
	return h
}

func (h *harness) restart(id string) {
	node := h.nodes[id]
	node.Restart()
	h.pending = id
	h.replicas[id] = StartReplica(h.cluster, node, id)
}

func (h *harness) leaderCount() int {
	n := 0
	for id, r := range h.replicas {
		if h.nodes[id].Alive() && r.IsLeader() && r.node.Incarnation() == r.incarnation {
			n++
		}
	}
	return n
}

func (h *harness) leader() *Replica {
	for id, r := range h.replicas {
		if h.nodes[id].Alive() && r.IsLeader() && r.node.Incarnation() == r.incarnation {
			return r
		}
	}
	return nil
}

func TestElectsSingleLeader(t *testing.T) {
	h := newHarness(1, 3)
	var leaders int
	h.sim.Go("observer", func(p *simnet.Proc) {
		p.Sleep(2 * time.Second)
		leaders = h.leaderCount()
		h.sim.Stop()
	})
	if err := h.sim.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if leaders != 1 {
		t.Fatalf("leaders = %d, want 1", leaders)
	}
}

func TestProposeAppliesEverywhere(t *testing.T) {
	h := newHarness(2, 3)
	client := NewClient(h.cluster, h.sim.NewNode("app"))
	h.sim.Go("client", func(p *simnet.Proc) {
		p.Sleep(time.Second) // allow election
		for i := 0; i < 5; i++ {
			res, err := client.Propose(p, cmdMsg(fmt.Sprintf("cmd%d", i)))
			if err != nil {
				t.Errorf("propose %d: %v", i, err)
			}
			if res.S[0] == "" {
				t.Errorf("propose %d: empty result", i)
			}
		}
		p.Sleep(500 * time.Millisecond) // let followers apply
		h.sim.Stop()
	})
	if err := h.sim.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	for id, sm := range h.sms {
		if len(sm.applied) != 5 {
			t.Errorf("replica %s applied %d commands, want 5: %v", id, len(sm.applied), sm.applied)
			continue
		}
		for i, c := range sm.applied {
			if c != fmt.Sprintf("cmd%d", i) {
				t.Errorf("replica %s applied[%d] = %q", id, i, c)
			}
		}
	}
}

func TestProposeLatency(t *testing.T) {
	h := newHarness(3, 3)
	client := NewClient(h.cluster, h.sim.NewNode("app"))
	var lat time.Duration
	h.sim.Go("client", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		client.Propose(p, cmdMsg("warm")) // settle on the leader
		start := p.Now()
		if _, err := client.Propose(p, cmdMsg("x")); err != nil {
			t.Errorf("propose: %v", err)
		}
		lat = p.Now() - start
		h.sim.Stop()
	})
	if err := h.sim.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	// Table 3 context: controller ops are a few ms.
	if lat < 500*time.Microsecond || lat > 15*time.Millisecond {
		t.Fatalf("commit latency = %v, want a few ms", lat)
	}
}

func TestLeaderCrashFailover(t *testing.T) {
	h := newHarness(4, 3)
	client := NewClient(h.cluster, h.sim.NewNode("app"))
	h.sim.Go("client", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		if _, err := client.Propose(p, cmdMsg("before")); err != nil {
			t.Errorf("propose before: %v", err)
		}
		ldr := h.leader()
		if ldr == nil {
			t.Error("no leader")
			h.sim.Stop()
			return
		}
		ldr.node.Crash()
		// The group must recover and keep accepting commands.
		if _, err := client.Propose(p, cmdMsg("after")); err != nil {
			t.Errorf("propose after crash: %v", err)
		}
		p.Sleep(500 * time.Millisecond)
		h.sim.Stop()
	})
	if err := h.sim.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	// Both commands applied, in order, on the surviving replicas.
	okReplicas := 0
	for id, sm := range h.sms {
		if !h.nodes[id].Alive() {
			continue
		}
		if fmt.Sprint(sm.applied) == "[before after]" {
			okReplicas++
		} else {
			t.Errorf("replica %s applied %v", id, sm.applied)
		}
	}
	if okReplicas < 2 {
		t.Fatalf("only %d healthy replicas applied both commands", okReplicas)
	}
}

func TestCrashedReplicaCatchesUpAfterRestart(t *testing.T) {
	h := newHarness(5, 3)
	client := NewClient(h.cluster, h.sim.NewNode("app"))
	var victim string
	h.sim.Go("client", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		client.Propose(p, cmdMsg("a"))
		// Crash a follower.
		for id, r := range h.replicas {
			if !r.IsLeader() {
				victim = id
				break
			}
		}
		h.nodes[victim].Crash()
		client.Propose(p, cmdMsg("b"))
		client.Propose(p, cmdMsg("c"))
		p.Sleep(100 * time.Millisecond)
		h.restart(victim)
		p.Sleep(2 * time.Second) // catch-up via AppendEntries
		h.sim.Stop()
	})
	if err := h.sim.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	sm := h.sms[victim]
	if fmt.Sprint(sm.applied) != "[a b c]" {
		t.Fatalf("restarted replica applied %v, want [a b c] (log replay + catch-up)", sm.applied)
	}
}

func TestMinorityPartitionBlocksCommit(t *testing.T) {
	h := newHarness(6, 3)
	client := NewClient(h.cluster, h.sim.NewNode("app"))
	client.Deadline = time.Second
	h.sim.Go("client", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		ldr := h.leader()
		if ldr == nil {
			t.Error("no leader")
			h.sim.Stop()
			return
		}
		// Isolate the leader from both followers.
		for id, n := range h.nodes {
			if id != ldr.id {
				h.sim.Net().Partition(ldr.node, n)
			}
		}
		h.sim.Net().Partition(ldr.node, client.node)
		if _, err := client.Propose(p, cmdMsg("x")); err == nil {
			// A new leader among the majority side may accept it — that is
			// correct. What must not happen: the isolated old leader commits.
			p.Sleep(time.Second)
			if ldr.CommitIndex() >= ldr.lastLogIndex() && len(h.sms[ldr.id].applied) > 0 &&
				h.sms[ldr.id].applied[len(h.sms[ldr.id].applied)-1] == "x" {
				t.Error("isolated leader applied the command")
			}
		}
		h.sim.Stop()
	})
	if err := h.sim.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestLogsConvergeAfterPartitionHeals(t *testing.T) {
	h := newHarness(7, 3)
	client := NewClient(h.cluster, h.sim.NewNode("app"))
	h.sim.Go("client", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		client.Propose(p, cmdMsg("a"))
		ldr := h.leader()
		if ldr == nil {
			t.Error("no leader")
			h.sim.Stop()
			return
		}
		// Partition the old leader away; majority elects a new one and
		// commits more entries.
		for id, n := range h.nodes {
			if id != ldr.id {
				h.sim.Net().Partition(ldr.node, n)
			}
		}
		client.hint++
		client.Propose(p, cmdMsg("b"))
		client.Propose(p, cmdMsg("c"))
		// Heal; the old leader must adopt the majority log.
		for id, n := range h.nodes {
			if id != ldr.id {
				h.sim.Net().Heal(ldr.node, n)
			}
		}
		p.Sleep(2 * time.Second)
		h.sim.Stop()
	})
	if err := h.sim.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	for id, sm := range h.sms {
		if fmt.Sprint(sm.applied) != "[a b c]" {
			t.Errorf("replica %s applied %v, want [a b c]", id, sm.applied)
		}
	}
}

func TestSafetyNoDivergentApply(t *testing.T) {
	// Under a chaotic schedule of crashes and restarts, all replicas'
	// applied sequences must be prefixes of one another.
	for seed := int64(10); seed < 16; seed++ {
		h := newHarness(seed, 3)
		client := NewClient(h.cluster, h.sim.NewNode("app"))
		client.Deadline = 800 * time.Millisecond
		h.sim.Go("chaos", func(p *simnet.Proc) {
			ids := h.cluster.ids
			for round := 0; round < 4; round++ {
				p.Sleep(700 * time.Millisecond)
				victim := ids[p.Rand().Intn(len(ids))]
				if h.nodes[victim].Alive() {
					h.nodes[victim].Crash()
				}
				p.Sleep(500 * time.Millisecond)
				if !h.nodes[victim].Alive() {
					h.restart(victim)
				}
			}
		})
		h.sim.Go("client", func(p *simnet.Proc) {
			p.Sleep(time.Second)
			for i := 0; i < 12; i++ {
				client.Propose(p, cmdMsg(fmt.Sprintf("v%d", i))) // errors tolerated
				p.Sleep(300 * time.Millisecond)
			}
			p.Sleep(3 * time.Second)
			h.sim.Stop()
		})
		if err := h.sim.RunUntil(2 * time.Minute); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var longest []string
		for _, sm := range h.sms {
			if sm != nil && len(sm.applied) > len(longest) {
				longest = sm.applied
			}
		}
		for id, sm := range h.sms {
			if sm == nil {
				continue
			}
			for i, c := range sm.applied {
				if c != longest[i] {
					t.Fatalf("seed %d: replica %s diverged at %d: %q vs %q", seed, id, i, c, longest[i])
				}
			}
		}
	}
}

func TestClientNotLeaderRedirect(t *testing.T) {
	h := newHarness(8, 3)
	client := NewClient(h.cluster, h.sim.NewNode("app"))
	h.sim.Go("client", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		// Point the hint at a follower deliberately; the hint must redirect.
		ldr := h.leader()
		for i, id := range h.cluster.ids {
			if ldr != nil && id != ldr.id {
				client.hint = i
				break
			}
		}
		if _, err := client.Propose(p, cmdMsg("x")); err != nil {
			t.Errorf("propose with wrong hint: %v", err)
		}
		h.sim.Stop()
	})
	if err := h.sim.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestProposeToFollowerDirectly(t *testing.T) {
	h := newHarness(9, 3)
	app := h.sim.NewNode("app")
	h.sim.Go("client", func(p *simnet.Proc) {
		p.Sleep(time.Second)
		ldr := h.leader()
		if ldr == nil {
			t.Error("no leader")
			h.sim.Stop()
			return
		}
		for _, id := range h.cluster.ids {
			if id == ldr.id {
				continue
			}
			_, err := h.sim.Net().Call(p, app, h.cluster.Addr(id), cmdMsg("x"))
			if !errors.Is(err, ErrNotLeader) {
				t.Errorf("follower %s accepted proposal: %v", id, err)
			}
		}
		h.sim.Stop()
	})
	if err := h.sim.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
}
