// Package wire is the typed façade over simnet's flat message plane. The
// transport (simnet.Net) moves value-typed simnet.Msg records with zero
// steady-state allocation; this package keeps call sites type-safe on top of
// that without reintroducing interface boxing on the hot path.
//
// Each RPC-speaking layer defines plain request/response structs that
// implement Marshaler (struct → Msg) and Unmarshaler (Msg → struct). Both
// conversions move scalars and share slices — no encoding, no copying, no
// reflection. The generic Call/CallTimeout then give a call site like
//
//	resp, err := wire.Call[peer.LookupResp](p, net, from, addr, peer.LookupReq{...})
//
// with the response type checked at compile time. Marshal/Unmarshal run
// inline on stack values; the Msg travels by value through the transport's
// channel slabs.
//
// # Message codes
//
// Msg.Code identifies the message type; dispatchers switch on it instead of
// type-switching on `any`. Codes need only be unique per RPC address, but
// layers draw from disjoint ranges so traces and debugging stay unambiguous:
//
//	0x01        wire (Ack)
//	0x10–0x1f   peer     (setup/lookup/release/staging)
//	0x20–0x2f   raft     (vote/append/nop; other codes = client commands)
//	0x30–0x3f   controller (tree commands and results)
//	0x40–0x4f   bench    (workload ops)
//
// # Lifecycle and pooling rules
//
// A Msg handed to Call or returned from a handler is immutable from that
// point on: its slices (B, Strs, Sub) are shared with the receiver, not
// copied, exactly like a buffer handed to the kernel. Senders that reuse
// buffers must not hand them to Call. The transport pools its own reply
// records and worker procs (see simnet/net.go); messages themselves are
// plain values and need no pooling — they live in channel slabs and stack
// frames.
package wire

import (
	"time"

	"splitft/internal/simnet"
)

// Msg and Code alias the transport's flat wire representation so layers can
// write wire.Msg without importing simnet for the type alone.
type (
	Msg  = simnet.Msg
	Code = simnet.Code
)

// CodeAck identifies Ack. Codes 0x02–0x0f are reserved for future
// transport-level messages.
const CodeAck Code = 0x01

// Marshaler converts a request/response struct into its flat wire form.
// Implementations move scalars into U/S slots and share slices; they must
// not retain or mutate the result after returning it.
type Marshaler interface {
	MarshalWire() Msg
}

// Unmarshaler fills a response struct from its flat wire form. The pointer
// constraint lets Call instantiate the response on the caller's stack and
// fill it in place.
type Unmarshaler[T any] interface {
	*T
	UnmarshalWire(Msg) error
}

// Ack is the empty acknowledgement response for RPCs that return no data.
type Ack struct{}

// MarshalWire implements Marshaler.
func (Ack) MarshalWire() Msg { return Msg{Code: CodeAck} }

// UnmarshalWire implements Unmarshaler.
func (*Ack) UnmarshalWire(Msg) error { return nil }

// Call performs a typed synchronous RPC with the default timeout. Resp is
// named explicitly at the call site; PResp and Req are inferred:
//
//	resp, err := wire.Call[peer.SetupResp](p, nt, from, addr, req)
func Call[Resp any, PResp Unmarshaler[Resp], Req Marshaler](
	p *simnet.Proc, nt *simnet.Net, from *simnet.Node, addr string, req Req,
) (Resp, error) {
	return CallTimeout[Resp, PResp](p, nt, from, addr, req, simnet.DefaultRPCTimeout)
}

// CallTimeout is Call with an explicit timeout. Transport errors
// (simnet.ErrTimeout, simnet.ErrNoService) and handler errors come back
// as-is; on error the response is the zero value.
func CallTimeout[Resp any, PResp Unmarshaler[Resp], Req Marshaler](
	p *simnet.Proc, nt *simnet.Net, from *simnet.Node, addr string, req Req,
	timeout time.Duration,
) (Resp, error) {
	var resp Resp
	m, err := nt.CallTimeout(p, from, addr, req.MarshalWire(), timeout)
	if err != nil {
		return resp, err
	}
	if err := PResp(&resp).UnmarshalWire(m); err != nil {
		return resp, err
	}
	return resp, nil
}
