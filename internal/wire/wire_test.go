package wire_test

import (
	"errors"
	"testing"
	"time"

	"splitft/internal/simnet"
	"splitft/internal/wire"
)

// A toy RPC pair exercising all Msg slot kinds.
const codePing wire.Code = 0x0f

type pingReq struct {
	N    int64
	Who  string
	Blob []byte
}

func (r pingReq) MarshalWire() wire.Msg {
	m := wire.Msg{Code: codePing, S: [3]string{r.Who}, B: r.Blob}
	m.SetInt(0, r.N)
	return m
}

type pingResp struct {
	N    int64
	Who  string
	Blob []byte
}

func (r *pingResp) UnmarshalWire(m wire.Msg) error {
	r.N = m.Int(0)
	r.Who = m.S[0]
	r.Blob = m.B
	return nil
}

func TestCallRoundtrip(t *testing.T) {
	s := simnet.New(1)
	srv := s.NewNode("srv")
	cli := s.NewNode("cli")
	s.Net().Register("ping", srv, func(p *simnet.Proc, m simnet.Msg) (simnet.Msg, error) {
		if m.Code != codePing {
			t.Errorf("code = %#x, want %#x", m.Code, codePing)
		}
		out := m
		out.SetInt(0, m.Int(0)+1)
		return out, nil
	})
	s.Go("caller", func(p *simnet.Proc) {
		resp, err := wire.Call[pingResp](p, s.Net(), cli, "ping", pingReq{N: 41, Who: "cli", Blob: []byte("xyz")})
		if err != nil {
			t.Errorf("call: %v", err)
			return
		}
		if resp.N != 42 || resp.Who != "cli" || string(resp.Blob) != "xyz" {
			t.Errorf("resp = %+v", resp)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCallPropagatesHandlerError(t *testing.T) {
	s := simnet.New(1)
	srv := s.NewNode("srv")
	cli := s.NewNode("cli")
	sentinel := errors.New("nope")
	s.Net().Register("fail", srv, func(p *simnet.Proc, m simnet.Msg) (simnet.Msg, error) {
		return simnet.Msg{}, sentinel
	})
	s.Go("caller", func(p *simnet.Proc) {
		if _, err := wire.Call[wire.Ack](p, s.Net(), cli, "fail", wire.Ack{}); !errors.Is(err, sentinel) {
			t.Errorf("err = %v, want sentinel", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCallTimeoutSurfacesTransportErrors(t *testing.T) {
	s := simnet.New(1)
	srv := s.NewNode("srv")
	cli := s.NewNode("cli")
	s.Net().Register("svc", srv, func(p *simnet.Proc, m simnet.Msg) (simnet.Msg, error) {
		return m, nil
	})
	s.Go("caller", func(p *simnet.Proc) {
		if _, err := wire.Call[wire.Ack](p, s.Net(), cli, "absent", wire.Ack{}); !errors.Is(err, simnet.ErrNoService) {
			t.Errorf("unknown addr err = %v", err)
		}
		srv.Crash()
		_, err := wire.CallTimeout[wire.Ack](p, s.Net(), cli, "svc", wire.Ack{}, 3*time.Millisecond)
		if !errors.Is(err, simnet.ErrTimeout) {
			t.Errorf("dead server err = %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
