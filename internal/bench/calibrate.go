package bench

import (
	"splitft/internal/controller"
	"splitft/internal/core"
	"splitft/internal/model"
	"splitft/internal/simnet"
)

// This file runs the calibration micro-probes on the full simulated stack.
// The probes measure the four paper-anchored costs (a 128 B NCL record, a
// small dfs sync write, a 60 MB MR registration, a controller metadata op);
// model.Calibrate judges them against targets derived from the profile, so
// a change that silently shifts the cost model fails the gate loudly.

// Probes runs the calibration micro-benchmarks under the scale's profile
// and returns the raw measurements (in probe-name order).
func Probes(sc Scale, seed int64) ([]model.Measurement, error) {
	var meas []model.Measurement
	c := newCluster(sc, seed)
	err := c.Run(func(p *simnet.Proc) error {
		fs, err := c.NewFS(p, "calibrate", 0)
		if err != nil {
			return err
		}
		buf := make([]byte, 128)

		// NCL record: synchronous replicated append of 128 B.
		const nclWrites = 400
		nf, err := fs.OpenFile(p, "calib-ncl", core.O_NCL|core.O_CREATE,
			int64(len(buf)*nclWrites+1024))
		if err != nil {
			return err
		}
		start := p.Now()
		for i := 0; i < nclWrites; i++ {
			if _, err := nf.Write(p, buf); err != nil {
				return err
			}
		}
		meas = append(meas, model.Measurement{
			Probe: model.ProbeNCLRecord128,
			Value: (p.Now() - start) / nclWrites,
		})

		// dfs sync write: 128 B write + fdatasync on the disaggregated fs.
		const dfsWrites = 50
		df, err := fs.OpenFile(p, "/calib-dfs", core.O_CREATE, 0)
		if err != nil {
			return err
		}
		start = p.Now()
		for i := 0; i < dfsWrites; i++ {
			if _, err := df.Write(p, buf); err != nil {
				return err
			}
			if err := df.Sync(p); err != nil {
				return err
			}
		}
		meas = append(meas, model.Measurement{
			Probe: model.ProbeDFSSyncWrite128,
			Value: (p.Now() - start) / dfsWrites,
		})

		// MR registration: one 60 MB region on the client node's NIC (the
		// recovery-log size of Table 3).
		nic := c.Fabric.NIC(c.ClientNode.Name())
		if nic == nil {
			nic = c.Fabric.AttachNIC(c.ClientNode)
		}
		region := make([]byte, 60<<20)
		start = p.Now()
		if _, err := nic.RegisterMR(p, region); err != nil {
			return err
		}
		meas = append(meas, model.Measurement{
			Probe: model.ProbeMRRegister60MB,
			Value: p.Now() - start,
		})

		// Controller op: a linearizable metadata read (one quorum commit),
		// the "get peer" step of Table 3.
		const ctrlOps = 50
		cc := controller.NewClient(c.Controller, c.ClientNode, "calibrate", 0)
		peerName := c.PeerNodes[0].Name()
		start = p.Now()
		for i := 0; i < ctrlOps; i++ {
			if _, _, err := cc.GetPeer(p, peerName); err != nil {
				return err
			}
		}
		meas = append(meas, model.Measurement{
			Probe: model.ProbeControllerOp,
			Value: (p.Now() - start) / ctrlOps,
		})

		// Chain append: one 64 MB sequential write synced down the extent
		// chains — the large-IO data path of §4. Only meaningful when the
		// profile has an extent plane (LocalFS does not).
		if sc.profile().DFS.ExtentNodes > 0 {
			cf, err := fs.OpenFile(p, "/calib-chain", core.O_CREATE|core.O_EXTENT, 0)
			if err != nil {
				return err
			}
			// Warm-up append: primes the batched extent-ID lease and the tail
			// extent so the measured sync sees no controller round trip.
			if _, err := cf.Write(p, buf); err != nil {
				return err
			}
			if err := cf.Sync(p); err != nil {
				return err
			}
			big := make([]byte, 64<<20)
			if _, err := cf.Write(p, big); err != nil {
				return err
			}
			start = p.Now()
			if err := cf.Sync(p); err != nil {
				return err
			}
			meas = append(meas, model.Measurement{
				Probe: model.ProbeChainAppend64MB,
				Value: p.Now() - start,
			})
		}
		return nil
	})
	return meas, err
}

// Calibrate runs the probes and judges them against the profile's targets.
func Calibrate(sc Scale, seed int64) (model.Report, error) {
	prof := sc.profile()
	meas, err := Probes(sc, seed)
	if err != nil {
		return model.Report{Profile: prof.Name}, err
	}
	return model.Calibrate(prof, meas), nil
}
