package bench

import (
	"encoding/json"
	"os"
	"testing"
)

// TestChaosSmoke runs one cheap cell end to end: faults injected, the app
// crash-audited after every event, writes acked, zero violations. (The
// name matches the CI non-race gate's filter.)
func TestChaosSmoke(t *testing.T) {
	row, err := chaosOnce(QuickScale(), 1, "peer-crash", "mirror", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%+v", row)
	if row.Violations != 0 {
		t.Errorf("violations = %d, want 0", row.Violations)
	}
	if row.AckedOps == 0 {
		t.Error("no writes were acked")
	}
	if row.Recoveries < 2 || row.MaxRecoveryNS <= 0 {
		t.Errorf("recoveries = %d (max %dns), want an audit per event", row.Recoveries, row.MaxRecoveryNS)
	}
	if row.MaxUnavailNS <= 0 {
		t.Error("no unavailability window measured across an app crash")
	}
}

// TestChaosMutationCaught proves the checker catches a real protocol bug:
// the same gray-members-plus-correlated-crash schedule passes under the
// correct F+1 commit rule and loses acked writes under UnsafeAckQuorum=1.
func TestChaosMutationCaught(t *testing.T) {
	clean, mutated, err := RunChaosMutation(QuickScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("clean: %+v", clean)
	t.Logf("mutated: %+v", mutated)
	if clean.Violations != 0 {
		t.Errorf("correct commit rule reported %d violations, want 0", clean.Violations)
	}
	if mutated.Violations == 0 {
		t.Error("ack-before-quorum mutation produced no counterexample")
	}
	if clean.AckedOps == 0 || mutated.AckedOps == 0 {
		t.Error("a variant acked no writes")
	}
}

// TestChaosDeterminism re-runs one cell and expects a bit-identical row:
// the sweep is a pure function of its seeds.
func TestChaosDeterminism(t *testing.T) {
	a, err := chaosOnce(QuickScale(), 3, "storm", "quorum", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := chaosOnce(QuickScale(), 3, "storm", "quorum", 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("rows differ across identical runs:\n  %+v\n  %+v", a, b)
	}
}

// TestChaosPerfGate regenerates the full sweep at the CLI's default scale
// and seed and diffs every cell against the committed BENCH_chaos.json.
func TestChaosPerfGate(t *testing.T) {
	if raceEnabled {
		t.Skip("full sweep is too slow under -race")
	}
	if testing.Short() {
		t.Skip("runs the full chaos sweep")
	}
	rep, err := RunChaos(DefaultScale(), 1)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline-independent floors: a correct protocol never loses an acked
	// write, whatever the schedule; the seeded mutation always does.
	for _, row := range rep.Rows {
		if row.Policy == chaosMutantPolicy {
			if row.Violations == 0 {
				t.Errorf("%s/%s/seed%d: mutation produced no counterexample", row.Scenario, row.Policy, row.Seed)
			}
			continue
		}
		if row.Violations != 0 {
			t.Errorf("%s/%s/seed%d: %d violations on a correct protocol", row.Scenario, row.Policy, row.Seed, row.Violations)
		}
		if row.AckedOps == 0 {
			t.Errorf("%s/%s/seed%d: no writes acked", row.Scenario, row.Policy, row.Seed)
		}
	}

	data, err := os.ReadFile("../../BENCH_chaos.json")
	if err != nil {
		t.Fatalf("committed BENCH_chaos.json missing (regenerate with `splitft-bench chaos`): %v", err)
	}
	var base ChaosReport
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	if len(base.Rows) != len(rep.Rows) {
		t.Fatalf("baseline has %d rows, regenerated %d", len(base.Rows), len(rep.Rows))
	}
	for _, row := range rep.Rows {
		b := base.Row(row.Scenario, row.Policy, row.Seed)
		if b == nil {
			t.Errorf("%s/%s/seed%d: not in committed baseline", row.Scenario, row.Policy, row.Seed)
			continue
		}
		if row.Events != b.Events || row.Recoveries != b.Recoveries || row.Violations != b.Violations {
			t.Errorf("%s/%s/seed%d: counts {ev %d rec %d viol %d} drifted from committed {ev %d rec %d viol %d}",
				row.Scenario, row.Policy, row.Seed,
				row.Events, row.Recoveries, row.Violations, b.Events, b.Recoveries, b.Violations)
		}
		// Virtual time is deterministic; ±2% only absorbs a deliberately
		// regenerated baseline rounding differently on another Go release.
		within := func(name string, got, want int64) {
			lo, hi := float64(want)*0.98, float64(want)*1.02
			if v := float64(got); v < lo || v > hi {
				t.Errorf("%s/%s/seed%d: %s %d drifted from committed %d (±2%%)",
					row.Scenario, row.Policy, row.Seed, name, got, want)
			}
		}
		within("acked ops", row.AckedOps, b.AckedOps)
		within("max recovery ns", row.MaxRecoveryNS, b.MaxRecoveryNS)
		within("max unavail ns", row.MaxUnavailNS, b.MaxUnavailNS)
	}
}
