package bench

import (
	"encoding/json"
	"os"
	"testing"
)

// TestReplSmoke checks the headline policy properties on one profile: the
// erasure-coded layout stays within its (k+m)/k + slack memory budget where
// mirror pays ~3x, and the one-RTT quorum write beats mirror's data+header
// pair at the tail. (The name matches the CI non-race gate's filter.)
func TestReplSmoke(t *testing.T) {
	sc := QuickScale()
	mirror, err := replOnce(sc, 1, "mirror", "CX4RoCE25")
	if err != nil {
		t.Fatal(err)
	}
	ec, err := replOnce(sc, 1, "ec:4,2", "CX4RoCE25")
	if err != nil {
		t.Fatal(err)
	}
	quorum, err := replOnce(sc, 1, "quorum", "CX4RoCE25")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mirror: mem %.2fx p50 %dns p99 %dns", mirror.MemFactor, mirror.WriteP50NS, mirror.WriteP99NS)
	t.Logf("ec:4,2: mem %.2fx p50 %dns p99 %dns", ec.MemFactor, ec.WriteP50NS, ec.WriteP99NS)
	t.Logf("quorum: mem %.2fx p50 %dns p99 %dns", quorum.MemFactor, quorum.WriteP50NS, quorum.WriteP99NS)
	if mirror.MemFactor < 2.9 || mirror.MemFactor > 3.1 {
		t.Errorf("mirror memory factor %.2f, want ~3x", mirror.MemFactor)
	}
	if ec.MemFactor > 1.6 {
		t.Errorf("ec(4,2) memory factor %.2f, want <= 1.6x", ec.MemFactor)
	}
	if quorum.WriteP99NS >= mirror.WriteP99NS {
		t.Errorf("quorum write p99 %dns not below mirror's %dns", quorum.WriteP99NS, mirror.WriteP99NS)
	}
	for _, row := range []ReplRow{mirror, ec, quorum} {
		if row.RecoveryNS <= 0 {
			t.Errorf("%s: no recovery time measured", row.Policy)
		}
	}
}

// TestReplPerfGate regenerates the policy sweep at the CLI's default scale
// and seed and diffs every cell against the committed BENCH_repl.json.
// Virtual times are deterministic, so the tolerance is tight: drift means
// the replication cost model changed and the committed report must be
// regenerated deliberately, not silently.
func TestReplPerfGate(t *testing.T) {
	if raceEnabled {
		t.Skip("full sweep is too slow under -race")
	}
	if testing.Short() {
		t.Skip("runs the full repl sweep")
	}
	rep, err := RunRepl(DefaultScale(), 1)
	if err != nil {
		t.Fatal(err)
	}

	// The acceptance floors, independent of the baseline file: on every
	// profile, ec(4,2) stores <= 1.6x where mirror stores ~3x, and quorum's
	// one-RTT write has the lower p99.
	for _, row := range rep.Rows {
		switch row.Policy {
		case "mirror":
			if row.MemFactor < 2.9 || row.MemFactor > 3.1 {
				t.Errorf("%s/%s: memory factor %.2f, want ~3x", row.Policy, row.Profile, row.MemFactor)
			}
		case "ec:4,2":
			if row.MemFactor > 1.6 {
				t.Errorf("%s/%s: memory factor %.2f, want <= 1.6x", row.Policy, row.Profile, row.MemFactor)
			}
		}
	}
	for _, profName := range profilesIn(rep) {
		m, q := rep.Row("mirror", profName), rep.Row("quorum", profName)
		if m == nil || q == nil {
			t.Fatalf("profile %s missing mirror or quorum row", profName)
		}
		if q.WriteP99NS >= m.WriteP99NS {
			t.Errorf("%s: quorum p99 %dns not below mirror p99 %dns", profName, q.WriteP99NS, m.WriteP99NS)
		}
	}

	data, err := os.ReadFile("../../BENCH_repl.json")
	if err != nil {
		t.Fatalf("committed BENCH_repl.json missing (regenerate with `splitft-bench repl`): %v", err)
	}
	var base ReplReport
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	if len(base.Rows) != len(rep.Rows) {
		t.Fatalf("baseline has %d rows, regenerated %d", len(base.Rows), len(rep.Rows))
	}
	for _, row := range rep.Rows {
		b := base.Row(row.Policy, row.Profile)
		if b == nil {
			t.Errorf("%s/%s: not in committed baseline", row.Policy, row.Profile)
			continue
		}
		// 2%: virtual time should be bit-identical run to run; the slack only
		// absorbs a deliberately regenerated baseline from a slightly
		// different Go release rounding somewhere.
		within := func(name string, got, want int64) {
			lo, hi := float64(want)*0.98, float64(want)*1.02
			if v := float64(got); v < lo || v > hi {
				t.Errorf("%s/%s: %s %dns drifted from committed %dns (±2%%)",
					row.Policy, row.Profile, name, got, want)
			}
		}
		within("write p50", row.WriteP50NS, b.WriteP50NS)
		within("write p99", row.WriteP99NS, b.WriteP99NS)
		within("recovery", row.RecoveryNS, b.RecoveryNS)
		if row.MemFactor < b.MemFactor*0.98 || row.MemFactor > b.MemFactor*1.02 {
			t.Errorf("%s/%s: memory factor %.3f drifted from committed %.3f",
				row.Policy, row.Profile, row.MemFactor, b.MemFactor)
		}
	}
}

// profilesIn lists the distinct profiles of a report in row order.
func profilesIn(rep ReplReport) []string {
	var out []string
	seen := map[string]bool{}
	for _, row := range rep.Rows {
		if !seen[row.Profile] {
			seen[row.Profile] = true
			out = append(out, row.Profile)
		}
	}
	return out
}
