package bench

import (
	"fmt"
	"time"

	"splitft/internal/apps/kvstore"
	"splitft/internal/apps/litedb"
	"splitft/internal/apps/redstore"
	"splitft/internal/core"
	"splitft/internal/dfs"
	"splitft/internal/harness"
	"splitft/internal/metrics"
	"splitft/internal/ncl"
	"splitft/internal/simnet"
	"splitft/internal/trace"
	"splitft/internal/ycsb"
)

// ---- Fig 11(b): application recovery time ----

// Fig11bRow is one (app, variant) recovery measurement with the NCL phase
// breakdown (zero for the DFT and local-ext4 variants). The phases come from
// the "ncl"/"recover.*" trace spans emitted during the recovering open.
type Fig11bRow struct {
	App     string
	Variant string // "SplitFT", "DFT", "local ext4"
	Total   time.Duration
	// SplitFT only: time in each NCL recovery phase (Fig 11b's stacking).
	GetPeer  time.Duration // controller ap-map fetch
	Connect  time.Duration // peer lookups + QP connects
	RdmaRead time.Duration // header quorum reads + region prefetch
	SyncPeer time.Duration // catch-up of lagging peers + replacements
	Parse    time.Duration // application-level read + parse + rebuild
}

// Fig11bResult holds all rows.
type Fig11bResult struct {
	Rows []Fig11bRow
}

// Render prints recovery time and the SplitFT breakdown.
func (r Fig11bResult) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		breakdown := "-"
		if row.Variant == "SplitFT" {
			breakdown = fmt.Sprintf("get peer %.1fms, connect %.1fms, rdma read %.1fms, sync peer %.1fms",
				row.GetPeer.Seconds()*1000, row.Connect.Seconds()*1000,
				row.RdmaRead.Seconds()*1000, row.SyncPeer.Seconds()*1000)
		}
		rows = append(rows, []string{row.App, row.Variant,
			fmt.Sprintf("%.0fms", row.Total.Seconds()*1000),
			fmt.Sprintf("%.0fms", row.Parse.Seconds()*1000), breakdown})
	}
	return "Fig 11(b). Recovery time for a " + fmt.Sprint(cap11bMB) + "MB log\n" +
		metrics.Table([]string{"app", "variant", "total", "parse", "ncl breakdown"}, rows)
}

var cap11bMB = 60

// Fig11b measures how long each application takes to recover a log of
// sc.LogSizeMB from NCL peers (SplitFT), from the dfs (DFT — weak and
// strong recover identically), and from a local ext4 disk (unrealistic
// comparison point, as in the paper).
func Fig11b(sc Scale, seed int64) (Fig11bResult, error) {
	cap11bMB = sc.LogSizeMB
	var res Fig11bResult
	for _, appName := range []string{"kvstore", "redstore", "litedb"} {
		for _, variant := range []string{"SplitFT", "DFT", "local ext4"} {
			row, err := recoverOnce(sc, seed, appName, variant)
			if err != nil {
				return res, fmt.Errorf("fig11b %s/%s: %w", appName, variant, err)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// recoverOnce builds a log of the target size, crashes the app, and times
// recovery. The NCL phase breakdown is a span query over the recovery window.
func recoverOnce(sc Scale, seed int64, appName, variant string) (Fig11bRow, error) {
	row := Fig11bRow{App: appName, Variant: variant}
	if sc.Trace == nil {
		sc.Trace = trace.New() // breakdown needs spans even without -trace
	}
	col := sc.Trace
	c := newCluster(sc, seed)
	logBytes := int64(sc.LogSizeMB) << 20

	// Map the variant to a configuration + backing store.
	cfg := CfgSplitFT
	if variant != "SplitFT" {
		cfg = CfgStrong // DFT recovers from the dfs regardless of weak/strong
	}
	err := c.Run(func(p *simnet.Proc) error {
		fsOpts := func(fencing int64) core.Options {
			o := c.FSOptions(appName, fencing)
			if variant == "local ext4" {
				o.DFS = localClusterFor(c)
			}
			return o
		}
		// Writer: fill the log to the target size, then park.
		written := make(chan struct{}, 1)
		c.AppNode.Go("app-v1", func(wp *simnet.Proc) {
			fs, err := core.NewFS(wp, fsOpts(0))
			if err != nil {
				return
			}
			if err := fillLog(wp, c, fs, appName, cfg, logBytes); err != nil {
				return
			}
			written <- struct{}{}
			wp.Sleep(24 * time.Hour)
		})
		// Wait for the fill to finish (poll the signal).
		for len(written) == 0 {
			p.Sleep(100 * time.Millisecond)
		}
		c.CrashApp()
		p.Sleep(10 * time.Millisecond)
		c.RestartApp()

		fs2, err := core.NewFS(p, fsOpts(1))
		if err != nil {
			return err
		}
		mark := col.Len()
		start := p.Now()
		if err := recoverApp(p, c, fs2, appName, cfg); err != nil {
			return err
		}
		row.Total = p.Now() - start
		spans := col.Since(mark)
		row.GetPeer = trace.Sum(spans, "ncl", "recover.getpeer")
		row.Connect = trace.Sum(spans, "ncl", "recover.connect")
		row.RdmaRead = trace.Sum(spans, "ncl", "recover.rdmaread")
		row.SyncPeer = trace.Sum(spans, "ncl", "recover.syncpeer")
		row.Parse = row.Total - trace.Sum(spans, "ncl", "recover.")
		return nil
	})
	return row, err
}

// localClusterFor returns the harness's local-ext4 cluster.
func localClusterFor(c *harness.Cluster) *dfs.Cluster { return c.LocalFS }

// fillLog writes application data until the active log reaches target
// bytes, with settings that prevent rotation/checkpointing first.
func fillLog(p *simnet.Proc, c *harness.Cluster, fs *core.FS, appName, cfg string, target int64) error {
	val := make([]byte, ycsb.ValueSize)
	switch appName {
	case "kvstore":
		dbCfg := kvstore.DefaultConfig()
		dbCfg.KVStoreCosts = c.Profile.Apps.KVStore
		dbCfg.Durability = kvDurability(cfg)
		dbCfg.MemtableBytes = target * 2 // never rotate
		dbCfg.WALRegion = target + target/4
		db, err := kvstore.Open(p, fs, dbCfg)
		if err != nil {
			return err
		}
		for i := int64(0); db.WAL().Size() < target; i++ {
			if err := db.Put(p, ycsb.Key(i), val); err != nil {
				return err
			}
		}
	case "redstore":
		sCfg := redstore.DefaultConfig()
		sCfg.RedStoreCosts = c.Profile.Apps.RedStore
		sCfg.Durability = redDurability(cfg)
		sCfg.AOFRewriteBytes = target * 2
		sCfg.AOFRegion = target + target/4
		st, err := redstore.Open(p, fs, sCfg)
		if err != nil {
			return err
		}
		for i := int64(0); st.AOFSize() < target; i++ {
			if err := st.Set(p, ycsb.Key(i%500000), val); err != nil {
				return err
			}
		}
	case "litedb":
		dbCfg := litedb.DefaultConfig()
		dbCfg.LiteDBCosts = c.Profile.Apps.LiteDB
		dbCfg.Durability = liteDurability(cfg)
		dbCfg.WALBytes = target + target/8 // one generation fills the target
		dbCfg.NPages = int(target / 4096 * 2)
		db, err := litedb.Open(p, fs, dbCfg)
		if err != nil {
			return err
		}
		frames := target / (4096 + 24)
		for i := int64(0); i < frames; i++ {
			if err := db.Set(p, ycsb.Key(i), val); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("bench: unknown app %q", appName)
	}
	return nil
}

// recoverApp runs the application's recovery path.
func recoverApp(p *simnet.Proc, c *harness.Cluster, fs *core.FS, appName, cfg string) error {
	switch appName {
	case "kvstore":
		dbCfg := kvstore.DefaultConfig()
		dbCfg.KVStoreCosts = c.Profile.Apps.KVStore
		dbCfg.Durability = kvDurability(cfg)
		dbCfg.MemtableBytes = 1 << 40 // recovery only; avoid rotation
		dbCfg.WALRegion = 64 << 20    // fresh active WAL after replay
		_, err := kvstore.Recover(p, fs, dbCfg)
		return err
	case "redstore":
		sCfg := redstore.DefaultConfig()
		sCfg.RedStoreCosts = c.Profile.Apps.RedStore
		sCfg.Durability = redDurability(cfg)
		sCfg.AOFRegion = 64 << 20
		_, err := redstore.Recover(p, fs, sCfg)
		return err
	case "litedb":
		dbCfg := litedb.DefaultConfig()
		dbCfg.LiteDBCosts = c.Profile.Apps.LiteDB
		dbCfg.Durability = liteDurability(cfg)
		dbCfg.WALBytes = 64 << 20
		dbCfg.NPages = 1 << 15
		_, err := litedb.Recover(p, fs, dbCfg)
		return err
	}
	return fmt.Errorf("bench: unknown app %q", appName)
}

// ---- Table 3: peer replacement latency breakdown ----

// Table3Result is the breakdown of replacing a failed peer that held a
// sc.LogSizeMB region, queried from the "ncl"/"replace.*" trace spans of one
// replacement.
type Table3Result struct {
	GetPeer time.Duration // controller peer query
	Connect time.Duration // region setup + MR registration + QP connect
	CatchUp time.Duration // bulk transfer from the writer's local buffer
	ApMap   time.Duration // ap-map CAS on the controller
}

// Total sums the replacement steps.
func (r Table3Result) Total() time.Duration {
	return r.GetPeer + r.Connect + r.CatchUp + r.ApMap
}

// Render formats the paper-style step table.
func (r Table3Result) Render() string {
	rows := [][]string{
		{"Get new peer from controller", fmtUS(r.GetPeer)},
		{"Connect to new peer and set up MR", fmtUS(r.Connect)},
		{"Catch up new peer", fmtUS(r.CatchUp)},
		{"Update ap-map on controller", fmtUS(r.ApMap)},
		{"Total", fmtUS(r.Total())},
	}
	return "Table 3. Peer recovery latency breakdown\n" +
		metrics.Table([]string{"Step", "Time (us)"}, rows)
}

// Table3 opens a log, fills it to the target size, crashes one member peer
// and reports the replacement breakdown.
func Table3(sc Scale, seed int64) (Table3Result, error) {
	var res Table3Result
	if sc.Trace == nil {
		sc.Trace = trace.New()
	}
	col := sc.Trace
	c := newCluster(sc, seed)
	logBytes := int64(sc.LogSizeMB) << 20
	err := c.Run(func(p *simnet.Proc) error {
		fs, err := c.NewFS(p, "table3", 0)
		if err != nil {
			return err
		}
		nf, err := fs.OpenFile(p, "biglog", core.O_NCL|core.O_CREATE, logBytes+1024)
		if err != nil {
			return err
		}
		chunk := make([]byte, 256<<10)
		for off := int64(0); off < logBytes; off += int64(len(chunk)) {
			if _, err := nf.Write(p, chunk); err != nil {
				return err
			}
		}
		type hasLog interface{ Log() *ncl.Log }
		lg := nf.(hasLog).Log()
		victim := lg.LivePeers()[0]
		mark := col.Len()
		c.Sim.Node(victim).Crash()
		// Trigger detection and wait for the replacement.
		for lg.Replacements == 0 {
			if _, err := nf.Write(p, []byte("tick")); err != nil {
				return err
			}
			p.Sleep(5 * time.Millisecond)
		}
		spans := col.Since(mark)
		res.GetPeer = trace.Sum(spans, "ncl", "replace.getpeer")
		res.Connect = trace.Sum(spans, "ncl", "replace.connect")
		res.CatchUp = trace.Sum(spans, "ncl", "replace.catchup")
		res.ApMap = trace.Sum(spans, "ncl", "replace.apmap")
		return nil
	})
	return res, err
}

// ---- Fig 1(a)-(c): IO size distributions ----

// Fig1Result holds, per application, the CDFs of durable write sizes by
// file class (log vs background), collected under a strong write-only run.
type Fig1Result struct {
	App    string
	LogCDF *metrics.SizeCDF
	BgCDF  *metrics.SizeCDF
}

// Render prints quantiles of both distributions.
func (r Fig1Result) Render() string {
	q := []float64{0.1, 0.5, 0.9, 0.99, 1.0}
	var rows [][]string
	for _, f := range q {
		rows = append(rows, []string{fmt.Sprintf("p%02.0f", f*100),
			metrics.HumanBytes(r.LogCDF.Quantile(f)), metrics.HumanBytes(r.BgCDF.Quantile(f))})
	}
	return fmt.Sprintf("Fig 1 (%s): durable write sizes — log (n=%d) vs background (n=%d)\n",
		r.App, r.LogCDF.Count(), r.BgCDF.Count()) +
		metrics.Table([]string{"quantile", "log writes", "background writes"}, rows)
}

// Fig1 traces durable write sizes for one application under a strong-mode
// write-only workload, classifying the "core"/"write.*" spans by file name
// (the paper's Fig 1a-c).
func Fig1(appName string, sc Scale, seed int64) (Fig1Result, error) {
	res := Fig1Result{App: appName, LogCDF: &metrics.SizeCDF{}, BgCDF: &metrics.SizeCDF{}}
	if sc.Trace == nil {
		sc.Trace = trace.New()
	}
	col := sc.Trace
	c := newCluster(sc, seed)
	err := c.Run(func(p *simnet.Proc) error {
		keys := appLoadKeys(appName, sc) / 2
		a, err := newApp(c, p, appName, CfgStrong, keys)
		if err != nil {
			return err
		}
		// Mark after load so only workload IO is counted.
		if err := loadApp(c, p, a, keys); err != nil {
			return err
		}
		mark := col.Len()
		startServer(c, "app", a)
		clients := sc.Clients
		if appName == "litedb" {
			clients = 1
		}
		spec := ycsb.Spec{Name: "write-only", UpdateProp: 1.0, Dist: ycsb.Zipfian}
		runWorkload(c, p, "app", spec, keys, clients, sc, nil)
		for _, sp := range trace.Filter(col.Since(mark), "core", "write.") {
			n := sp.IntAttr("bytes")
			if n == 0 {
				continue // clean dfs sync: nothing hit storage
			}
			if isLogPath(sp.StrAttr("path")) {
				res.LogCDF.Add(n)
			} else {
				res.BgCDF.Add(n)
			}
		}
		return nil
	})
	return res, err
}

// isLogPath classifies traced paths into the log class (Table 2's second
// column) vs the background class.
func isLogPath(path string) bool {
	for _, suffix := range []string{".log", ".aof", "-wal"} {
		if len(path) >= len(suffix) && path[len(path)-len(suffix):] == suffix {
			return true
		}
	}
	return false
}
