package bench

import (
	"fmt"
	"time"

	"splitft/internal/apps/kvell"
	"splitft/internal/core"
	"splitft/internal/metrics"
	"splitft/internal/raft"
	"splitft/internal/simnet"
	"splitft/internal/wire"
	"splitft/internal/ycsb"
)

// This file implements the §6 "Discussion" ablations:
//
//   - Choice of replication protocol: replicate the small writes through a
//     consensus group running on full replicas (Paxos-family; our Raft)
//     instead of NCL's passive-memory protocol, and compare latency,
//     throughput, and resource footprint.
//   - Fine-granular write splitting: a file receiving both small and large
//     writes, handled by a size threshold (core.SplitFile) versus
//     all-to-dfs-synchronously and all-to-NCL.
//   - No-log applications: a KVell-style store with NCL as a random-write
//     absorber tier versus per-put dfs fsyncs and unsafe buffering.

// AblateReplResult compares NCL against consensus-based replication.
type AblateReplResult struct {
	NCLLatency   time.Duration
	RaftLatency  time.Duration
	NCLKOps      float64
	RaftKOps     float64
	NCLCPUNodes  int // nodes running application logic
	RaftCPUNodes int
}

// Render prints the comparison.
func (r AblateReplResult) Render() string {
	rows := [][]string{
		{"NCL (passive peers)", fmtUS(r.NCLLatency), fmt.Sprintf("%.1f", r.NCLKOps), fmt.Sprint(r.NCLCPUNodes)},
		{"Consensus (full replicas)", fmtUS(r.RaftLatency), fmt.Sprintf("%.1f", r.RaftKOps), fmt.Sprint(r.RaftCPUNodes)},
	}
	return "Ablation: replication protocol for small writes (128B, 12 writers)\n" +
		metrics.Table([]string{"protocol", "mean latency (us)", "KOps/s", "active CPUs"}, rows)
}

// AblateReplication measures replicating 128-byte log writes via NCL versus
// via a consensus group whose replicas each run the full logging service
// (the paper's argument for a custom protocol, §6).
func AblateReplication(sc Scale, seed int64) (AblateReplResult, error) {
	res := AblateReplResult{NCLCPUNodes: 1, RaftCPUNodes: 3}
	const writers = 12
	window := sc.RunDur

	// NCL side.
	c := newCluster(sc, seed)
	err := c.Run(func(p *simnet.Proc) error {
		fs, err := c.NewFS(p, "ablate-ncl", 0)
		if err != nil {
			return err
		}
		f, err := fs.OpenFile(p, "log", core.O_NCL|core.O_CREATE, 64<<20)
		if err != nil {
			return err
		}
		var hist metrics.Histogram
		count := int64(0)
		end := p.Now() + window
		var wg simnet.WaitGroup
		wg.Add(writers)
		for i := 0; i < writers; i++ {
			p.GoOn(c.AppNode, fmt.Sprintf("w%d", i), func(wp *simnet.Proc) {
				defer wg.Done(wp)
				buf := make([]byte, 128)
				for wp.Now() < end {
					t0 := wp.Now()
					if _, err := f.Write(wp, buf); err != nil {
						return
					}
					hist.Record(wp.Now() - t0)
					count++
				}
			})
		}
		wg.Wait(p)
		res.NCLLatency = hist.Mean()
		res.NCLKOps = float64(count) / window.Seconds() / 1000
		return nil
	})
	if err != nil {
		return res, err
	}

	// Consensus side: a 3-replica Raft group logging the same records.
	c2 := newCluster(sc, seed+1)
	err = c2.Run(func(p *simnet.Proc) error {
		ids := []string{"r0", "r1", "r2"}
		nodes := make([]*simnet.Node, len(ids))
		for i, id := range ids {
			nodes[i] = c2.Sim.NewNode(id)
		}
		cl := raft.NewCluster(c2.Sim, "repl-log", c2.Profile.Controller.Raft, ids,
			func() raft.StateMachine { return &appendSM{} })
		for i, id := range ids {
			raft.StartReplica(cl, nodes[i], id)
		}
		p.Sleep(time.Second) // election
		client := raft.NewClient(cl, c2.AppNode)
		client.Propose(p, wire.Msg{Code: codeRaftRec}) //nolint:errcheck

		var hist metrics.Histogram
		count := int64(0)
		end := p.Now() + window
		var wg simnet.WaitGroup
		wg.Add(writers)
		for i := 0; i < writers; i++ {
			p.GoOn(c2.AppNode, fmt.Sprintf("w%d", i), func(wp *simnet.Proc) {
				defer wg.Done(wp)
				rec := wire.Msg{Code: codeRaftRec, B: make([]byte, 128)}
				for wp.Now() < end {
					t0 := wp.Now()
					if _, err := client.Propose(wp, rec); err != nil {
						continue
					}
					hist.Record(wp.Now() - t0)
					count++
				}
			})
		}
		wg.Wait(p)
		res.RaftLatency = hist.Mean()
		res.RaftKOps = float64(count) / window.Seconds() / 1000
		return nil
	})
	return res, err
}

// appendSM is the trivial replicated log used by the consensus baseline.
type appendSM struct{ n int }

func (m *appendSM) Apply(cmd wire.Msg) wire.Msg {
	m.n++
	r := wire.Msg{Code: wire.CodeAck}
	r.SetInt(0, int64(m.n))
	return r
}

// AblateSplitResult compares strategies for a mixed small/large write file.
type AblateSplitResult struct {
	SmallLat map[string]time.Duration // strategy -> mean small-write latency
	LargeLat map[string]time.Duration
	KOps     map[string]float64
}

// SplitStrategies in presentation order.
var SplitStrategies = []string{"dfs (sync)", "all NCL", "split (threshold)"}

// Render prints per-strategy latencies.
func (r AblateSplitResult) Render() string {
	var rows [][]string
	for _, s := range SplitStrategies {
		rows = append(rows, []string{s, fmtUS(r.SmallLat[s]), fmtUS(r.LargeLat[s]),
			fmt.Sprintf("%.1f", r.KOps[s])})
	}
	return "Ablation: fine-granular write splitting (95% 128B, 5% 128KB pwrites)\n" +
		metrics.Table([]string{"strategy", "small lat (us)", "large lat (us)", "KOps/s"}, rows)
}

// AblateSplit exercises the §6 extension: one file receiving mostly small
// writes with occasional large ones, under three strategies.
func AblateSplit(sc Scale, seed int64) (AblateSplitResult, error) {
	res := AblateSplitResult{
		SmallLat: map[string]time.Duration{},
		LargeLat: map[string]time.Duration{},
		KOps:     map[string]float64{},
	}
	const ops = 4000
	small := make([]byte, 128)
	large := make([]byte, 128<<10)

	run := func(strategy string, write func(p *simnet.Proc, data []byte, off int64) error,
		setup func(p *simnet.Proc, fs *core.FS) (func(p *simnet.Proc, data []byte, off int64) error, error)) error {
		c := newCluster(sc, seed)
		return c.Run(func(p *simnet.Proc) error {
			fs, err := c.NewFS(p, "ablate-split", 0)
			if err != nil {
				return err
			}
			w, err := setup(p, fs)
			if err != nil {
				return err
			}
			var smallH, largeH metrics.Histogram
			start := p.Now()
			off := int64(0)
			for i := 0; i < ops; i++ {
				data := small
				if i%20 == 19 {
					data = large
				}
				t0 := p.Now()
				if err := w(p, data, off%(4<<20)); err != nil {
					return err
				}
				if len(data) == len(small) {
					smallH.Record(p.Now() - t0)
				} else {
					largeH.Record(p.Now() - t0)
				}
				off += int64(len(data))
			}
			res.SmallLat[strategy] = smallH.Mean()
			res.LargeLat[strategy] = largeH.Mean()
			res.KOps[strategy] = float64(ops) / (p.Now() - start).Seconds() / 1000
			return nil
		})
	}

	// Strategy 1: everything to the dfs with a sync per write.
	if err := run("dfs (sync)", nil, func(p *simnet.Proc, fs *core.FS) (func(*simnet.Proc, []byte, int64) error, error) {
		f, err := fs.OpenFile(p, "/mixed", core.O_CREATE, 0)
		if err != nil {
			return nil, err
		}
		return func(p *simnet.Proc, data []byte, off int64) error {
			if _, err := f.Pwrite(p, data, off); err != nil {
				return err
			}
			return f.Sync(p)
		}, nil
	}); err != nil {
		return res, err
	}

	// Strategy 2: everything through NCL (large writes hog the log region
	// and the replication path).
	if err := run("all NCL", nil, func(p *simnet.Proc, fs *core.FS) (func(*simnet.Proc, []byte, int64) error, error) {
		f, err := fs.OpenFile(p, "mixed-ncl", core.O_NCL|core.O_CREATE, 8<<20)
		if err != nil {
			return nil, err
		}
		return func(p *simnet.Proc, data []byte, off int64) error {
			_, err := f.Pwrite(p, data, off)
			return err
		}, nil
	}); err != nil {
		return res, err
	}

	// Strategy 3: the SplitFile threshold router.
	if err := run("split (threshold)", nil, func(p *simnet.Proc, fs *core.FS) (func(*simnet.Proc, []byte, int64) error, error) {
		sf, err := fs.OpenSplit(p, "/mixed-split", 4096, 8<<20)
		if err != nil {
			return nil, err
		}
		count := 0
		return func(p *simnet.Proc, data []byte, off int64) error {
			count++
			if count%1000 == 0 {
				if err := sf.Checkpoint(p); err != nil { // keep the journal bounded
					return err
				}
			}
			_, err := sf.Pwrite(p, data, off)
			return err
		}, nil
	}); err != nil {
		return res, err
	}
	return res, nil
}

// AblateNoLogResult compares persistence strategies for a no-log,
// random-write store (§6 "Supporting Non-Log Files and Applications").
type AblateNoLogResult struct {
	KOps    map[string]float64
	MeanLat map[string]time.Duration
	// Lossy notes which strategies can lose acknowledged puts.
	Lossy map[string]bool
}

// NoLogModes in presentation order.
var NoLogModes = []kvell.Mode{kvell.DFTSync, kvell.DFTAsync, kvell.NCLTier}

// Render prints the comparison.
func (r AblateNoLogResult) Render() string {
	var rows [][]string
	for _, m := range NoLogModes {
		loss := "no"
		if r.Lossy[m.String()] {
			loss = "YES"
		}
		rows = append(rows, []string{m.String(), fmt.Sprintf("%.1f", r.KOps[m.String()]),
			fmtUS(r.MeanLat[m.String()]), loss})
	}
	return "Ablation: no-log store (KVell-style), uniform random puts\n" +
		metrics.Table([]string{"mode", "KOps/s", "mean put latency (us)", "can lose acked data"}, rows)
}

// AblateNoLog runs a random-write workload against the KVell-style store in
// its three modes: NCL as an absorber tier should approach the unsafe
// buffered mode while keeping per-put durability.
func AblateNoLog(sc Scale, seed int64) (AblateNoLogResult, error) {
	res := AblateNoLogResult{
		KOps:    map[string]float64{},
		MeanLat: map[string]time.Duration{},
		Lossy:   map[string]bool{kvell.DFTAsync.String(): true},
	}
	for _, m := range NoLogModes {
		m := m
		c := newCluster(sc, seed)
		err := c.Run(func(p *simnet.Proc) error {
			fs, err := c.NewFS(p, "kvell-bench", 0)
			if err != nil {
				return err
			}
			cfg := kvell.DefaultConfig()
			cfg.KVellCosts = c.Profile.Apps.KVell
			cfg.Mode = m
			s, err := kvell.Open(p, fs, cfg)
			if err != nil {
				return err
			}
			g := ycsb.NewGenerator(ycsb.Spec{Name: "w", UpdateProp: 1, Dist: ycsb.Uniform}, sc.LoadKeys, seed)
			var hist metrics.Histogram
			count := 0
			end := p.Now() + sc.RunDur
			for p.Now() < end {
				op := g.Next()
				t0 := p.Now()
				if err := s.Put(p, op.Key, g.Value()); err != nil {
					return err
				}
				hist.Record(p.Now() - t0)
				count++
			}
			res.KOps[m.String()] = float64(count) / sc.RunDur.Seconds() / 1000
			res.MeanLat[m.String()] = hist.Mean()
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("ablate-nolog %s: %w", m, err)
		}
	}
	return res, nil
}
