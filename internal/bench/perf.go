package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"splitft/internal/metrics"
	"splitft/internal/simnet"
	"splitft/internal/ycsb"
)

// Perf is the simulator wall-clock performance suite behind
// `splitft-bench perf`. It mirrors the internal/simnet testing.B benchmarks
// (event churn, yield and chan ping-pong, mutex convoy, RPC echo) and adds a
// 12-client YCSB-A slice on the full SplitFT stack, reporting events
// dispatched, wall-clock time, ns/event, events/sec and heap allocations per
// event. The numbers are host-dependent — they gate nothing by themselves —
// but BENCH_simnet.json keeps the trajectory visible in CI artifacts, and
// the allocation columns should stay near zero for the pure scheduler rows.

// PerfRow is one workload's measurement.
type PerfRow struct {
	Name           string  `json:"name"`
	Events         uint64  `json:"events"`
	WallNS         int64   `json:"wall_ns"`
	NSPerEvent     float64 `json:"ns_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
	Allocs         uint64  `json:"allocs"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

// PerfReport is the whole suite's result, JSON-shaped for BENCH_simnet.json.
type PerfReport struct {
	GoVersion string    `json:"go_version"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	CPUs      int       `json:"cpus"`
	Profile   string    `json:"profile"`
	Rows      []PerfRow `json:"rows"`
}

// Render formats the report as a table.
func (r PerfReport) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			fmt.Sprintf("%d", row.Events),
			fmt.Sprintf("%.1f", float64(row.WallNS)/1e6),
			fmt.Sprintf("%.1f", row.NSPerEvent),
			fmt.Sprintf("%.2f", row.EventsPerSec/1e6),
			fmt.Sprintf("%.4f", row.AllocsPerEvent),
		})
	}
	return fmt.Sprintf("Simulator performance (%s %s/%s, %d CPUs, profile %s)\n",
		r.GoVersion, r.GOOS, r.GOARCH, r.CPUs, r.Profile) +
		metrics.Table([]string{"Workload", "Events", "Wall (ms)", "ns/event", "Mevents/s", "allocs/event"}, rows)
}

// WriteJSON writes the report to path (BENCH_simnet.json).
func (r PerfReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// perfWorkload builds and runs one measured simulation. The returned Sim is
// only read for its event counter.
type perfWorkload struct {
	name string
	run  func() (*simnet.Sim, error)
}

// measure runs one workload with the allocation counters bracketing the
// whole run (construction included: it is amortised over millions of events
// and hiding it would overstate the steady state).
func measure(w perfWorkload) (PerfRow, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	s, err := w.run()
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	if err != nil {
		return PerfRow{}, fmt.Errorf("%s: %w", w.name, err)
	}
	row := PerfRow{
		Name:   w.name,
		Events: s.Events(),
		WallNS: wall.Nanoseconds(),
		Allocs: m1.Mallocs - m0.Mallocs,
	}
	if row.Events > 0 {
		row.NSPerEvent = float64(row.WallNS) / float64(row.Events)
		row.AllocsPerEvent = float64(row.Allocs) / float64(row.Events)
	}
	if wall > 0 {
		row.EventsPerSec = float64(row.Events) / wall.Seconds()
	}
	return row, nil
}

// Suite sizes: large enough that per-event costs dominate setup, small
// enough that the whole suite stays under ~10s of wall clock.
const (
	perfChurnEvents = 2_000_000
	perfFanoutProcs = 64
	perfFanoutPer   = 16_384
	perfYields      = 1_000_000
	perfChanRounds  = 300_000
	perfMutexProcs  = 8
	perfMutexRounds = 50_000
	perfRPCCalls    = 100_000
	perfYCSBClients = 12
)

// perfScale shrinks the caller's scale to a slice-sized YCSB run while
// keeping its hardware profile and tracing settings.
func perfScale(sc Scale) Scale {
	out := sc
	if out.LoadKeys > 30000 || out.LoadKeys == 0 {
		out.LoadKeys = 30000
	}
	if out.RunDur > 250*time.Millisecond || out.RunDur == 0 {
		out.RunDur = 250 * time.Millisecond
	}
	if out.Warmup > 100*time.Millisecond || out.Warmup == 0 {
		out.Warmup = 100 * time.Millisecond
	}
	out.Clients = perfYCSBClients
	return out
}

// Perf runs the suite and returns the report.
func Perf(sc Scale, seed int64) (PerfReport, error) {
	rep := PerfReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Profile:   sc.profile().Name,
	}
	ysc := perfScale(sc)
	workloads := []perfWorkload{
		{"event-churn", func() (*simnet.Sim, error) { return perfEventChurn(seed) }},
		{"event-churn-fanout", func() (*simnet.Sim, error) { return perfEventChurnFanout(seed) }},
		{"yield-pingpong", func() (*simnet.Sim, error) { return perfYieldPingPong(seed) }},
		{"chan-pingpong", func() (*simnet.Sim, error) { return perfChanPingPong(seed) }},
		{"mutex-convoy", func() (*simnet.Sim, error) { return perfMutexConvoy(seed) }},
		{"rpc-echo", func() (*simnet.Sim, error) { return perfRPCEcho(seed) }},
		{"ycsb-a-12c", func() (*simnet.Sim, error) { return perfYCSBSlice(ysc, seed) }},
		{"scale-64c-4s", func() (*simnet.Sim, error) { return perfScaleSmoke(sc, seed) }},
	}
	for _, w := range workloads {
		row, err := measure(w)
		if err != nil {
			return rep, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

func perfEventChurn(seed int64) (*simnet.Sim, error) {
	s := simnet.New(seed)
	s.Go("churn", func(p *simnet.Proc) {
		for i := 0; i < perfChurnEvents; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	return s, s.Run()
}

func perfEventChurnFanout(seed int64) (*simnet.Sim, error) {
	s := simnet.New(seed)
	for i := 0; i < perfFanoutProcs; i++ {
		i := i
		s.Go(fmt.Sprintf("churn%d", i), func(p *simnet.Proc) {
			p.Sleep(time.Duration(i) * time.Nanosecond)
			for j := 0; j < perfFanoutPer; j++ {
				p.Sleep(time.Microsecond)
			}
		})
	}
	return s, s.Run()
}

func perfYieldPingPong(seed int64) (*simnet.Sim, error) {
	s := simnet.New(seed)
	for i := 0; i < 2; i++ {
		s.Go(fmt.Sprintf("y%d", i), func(p *simnet.Proc) {
			for j := 0; j < perfYields/2; j++ {
				p.Yield()
			}
		})
	}
	return s, s.Run()
}

func perfChanPingPong(seed int64) (*simnet.Sim, error) {
	s := simnet.New(seed)
	ping := simnet.NewChan[int](s)
	pong := simnet.NewChan[int](s)
	s.Go("ping", func(p *simnet.Proc) {
		for i := 0; i < perfChanRounds; i++ {
			ping.Send(p, i)
			pong.Recv(p)
		}
	})
	s.Go("pong", func(p *simnet.Proc) {
		for i := 0; i < perfChanRounds; i++ {
			ping.Recv(p)
			pong.Send(p, i)
		}
	})
	return s, s.Run()
}

func perfMutexConvoy(seed int64) (*simnet.Sim, error) {
	s := simnet.New(seed)
	var mu simnet.Mutex
	for i := 0; i < perfMutexProcs; i++ {
		s.Go(fmt.Sprintf("m%d", i), func(p *simnet.Proc) {
			for j := 0; j < perfMutexRounds; j++ {
				mu.Lock(p)
				p.Yield()
				mu.Unlock(p)
			}
		})
	}
	return s, s.Run()
}

func perfRPCEcho(seed int64) (*simnet.Sim, error) {
	s := simnet.New(seed)
	srv := s.NewNode("srv")
	cli := s.NewNode("cli")
	s.Net().Register("echo", srv, func(p *simnet.Proc, req simnet.Msg) (simnet.Msg, error) { return req, nil })
	var callErr error
	s.Go("caller", func(p *simnet.Proc) {
		for i := 0; i < perfRPCCalls; i++ {
			if _, err := s.Net().Call(p, cli, "echo", simnet.Msg{U: [4]uint64{uint64(i)}}); err != nil {
				callErr = err
				return
			}
		}
	})
	if err := s.Run(); err != nil {
		return s, err
	}
	return s, callErr
}

// perfScaleSmoke is the control-plane row: the CI-sized scale point (64
// open-loop clients on a 4-shard controller, see scale.go). It exercises the
// multi-group Raft endpoint, the sharded znode tree and the pooled NCL
// allocation path, which the YCSB row's single-app cluster barely touches.
func perfScaleSmoke(sc Scale, seed int64) (*simnet.Sim, error) {
	cfg := SmokeScaleConfig()
	_, s, err := runScalePointSim(cfg, sc, seed, cfg.Shards[0], cfg.Clients[0])
	return s, err
}

// perfYCSBSlice is the end-to-end row: the full SplitFT stack (controllers,
// peers, dfs, kvstore) under 12 closed-loop YCSB-A clients for a short
// measured window. It exercises every layer the other rows skip.
func perfYCSBSlice(sc Scale, seed int64) (*simnet.Sim, error) {
	c := newClusterSized(sc, seed, datasetBytes(sc.LoadKeys))
	err := c.Run(func(p *simnet.Proc) error {
		a, err := newApp(c, p, "kvstore", CfgSplitFT, sc.LoadKeys)
		if err != nil {
			return err
		}
		if err := loadApp(c, p, a, sc.LoadKeys); err != nil {
			return err
		}
		startServer(c, "kv", a)
		runWorkload(c, p, "kv", ycsb.WorkloadA, sc.LoadKeys, sc.Clients, sc, nil)
		return nil
	})
	return c.Sim, err
}
