package bench

import (
	"testing"
	"time"
)

// The bench tests validate the *shapes* the paper reports at a reduced
// scale (QuickScale): who wins, by roughly what factor, and where gaps
// close. Absolute values are checked loosely; EXPERIMENTS.md records the
// full-scale numbers.

func TestTable1Shape(t *testing.T) {
	res, err := Table1(QuickScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	weak, strong := res.Rows[0], res.Rows[1]
	if weak.Config != CfgWeak || strong.Config != CfgStrong {
		t.Fatalf("unexpected row order: %+v", res.Rows)
	}
	if weak.KOps < 5*strong.KOps {
		t.Errorf("weak %.1f KOps vs strong %.1f KOps: want order(s)-of-magnitude gap", weak.KOps, strong.KOps)
	}
	if strong.AvgLat < 10*weak.AvgLat {
		t.Errorf("strong latency %v vs weak %v: want >=10x", strong.AvgLat, weak.AvgLat)
	}
	if strong.AvgLat < time.Millisecond {
		t.Errorf("strong latency %v: should be ms-scale (fsync-bound)", strong.AvgLat)
	}
}

func TestTable2Renders(t *testing.T) {
	out := Table2()
	if len(out) == 0 {
		t.Fatal("empty table 2")
	}
	t.Log("\n" + out)
}

func TestFig1dShape(t *testing.T) {
	res, err := Fig1d(QuickScale(), 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	small := res.Points[0]
	large := res.Points[len(res.Points)-1]
	if small.BlockSize != 512 || large.BlockSize != 64<<20 {
		t.Fatalf("unexpected sweep: %+v", res.Points)
	}
	ratio := large.MBps / small.MBps
	if ratio < 300 || ratio > 10000 {
		t.Errorf("64MB/512B throughput ratio = %.0f, want ~3 orders of magnitude", ratio)
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := Fig8(QuickScale(), 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	get := func(size int, variant string) time.Duration {
		for _, pt := range res.Points {
			if pt.Size == size && pt.Variant == variant {
				return pt.AvgLat
			}
		}
		t.Fatalf("missing point %d/%s", size, variant)
		return 0
	}
	nclSmall := get(128, "NCL")
	weakSmall := get(128, "weak-bench DFS")
	strongSmall := get(128, "strong-bench DFS")
	// Paper: NCL 4.6us, weak 1.2us, strong ~2000us at 128B.
	if nclSmall < 2*time.Microsecond || nclSmall > 12*time.Microsecond {
		t.Errorf("NCL 128B = %v, want ~4.6us", nclSmall)
	}
	if weakSmall > nclSmall {
		t.Errorf("weak (%v) should beat NCL (%v) slightly", weakSmall, nclSmall)
	}
	if strongSmall < 100*nclSmall {
		t.Errorf("strong (%v) should be ~2 orders above NCL (%v)", strongSmall, nclSmall)
	}
}

func TestFig10KVShape(t *testing.T) {
	res, err := Fig10("kvstore", QuickScale(), 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	sp, wk, st := res.KOps[CfgSplitFT], res.KOps[CfgWeak], res.KOps[CfgStrong]
	// Write-heavy (A, F): SplitFT crushes strong and approximates weak.
	for _, w := range []string{"a", "f"} {
		if sp[w] < 2.5*st[w] {
			t.Errorf("workload %s: splitft %.1f vs strong %.1f, want >=2.5x", w, sp[w], st[w])
		}
		if sp[w] < 0.7*wk[w] {
			t.Errorf("workload %s: splitft %.1f vs weak %.1f, want close", w, sp[w], wk[w])
		}
	}
	// Read-only (C): the gap closes.
	if st["c"] < 0.7*sp["c"] {
		t.Errorf("workload c: strong %.1f vs splitft %.1f, gap should close", st["c"], sp["c"])
	}
}

func TestFig10RedstoreShape(t *testing.T) {
	res, err := Fig10("redstore", QuickScale(), 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	sp, st := res.KOps[CfgSplitFT], res.KOps[CfgStrong]
	// Single-threaded head-of-line blocking: strong is poor even on the
	// read-heavy workload B, not just A.
	for _, w := range []string{"a", "b", "f"} {
		if sp[w] < 2*st[w] {
			t.Errorf("workload %s: splitft %.1f vs strong %.1f, want >=2x (head-of-line)", w, sp[w], st[w])
		}
	}
	if st["c"] < 0.7*sp["c"] {
		t.Errorf("read-only c: strong %.1f vs splitft %.1f should match", st["c"], sp["c"])
	}
}

func TestFig9LitedbShape(t *testing.T) {
	res, err := Fig9("litedb", QuickScale(), 6)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	sp := res.Series[CfgSplitFT][0]
	wk := res.Series[CfgWeak][0]
	st := res.Series[CfgStrong][0]
	if sp.KOps < 2.5*st.KOps {
		t.Errorf("litedb splitft %.2f vs strong %.2f, want >=2.5x", sp.KOps, st.KOps)
	}
	if sp.KOps < 0.7*wk.KOps {
		t.Errorf("litedb splitft %.2f vs weak %.2f, want close", sp.KOps, wk.KOps)
	}
}

func TestFig11aShape(t *testing.T) {
	res, err := Fig11a(QuickScale(), 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	get := func(size int, variant string) time.Duration {
		for _, pt := range res.Points {
			if pt.Size == size && pt.Variant == variant {
				return pt.AvgLat
			}
		}
		t.Fatalf("missing %d/%s", size, variant)
		return 0
	}
	nclP := get(128, "NCL")
	dfsP := get(128, "DFS")
	nclNP := get(128, "NCL no prefetch")
	direct := get(128, "DFS direct IO")
	if nclP >= dfsP {
		t.Errorf("NCL prefetch (%v) should beat DFS (%v) at 128B", nclP, dfsP)
	}
	if nclNP <= dfsP {
		t.Errorf("NCL without prefetch (%v) should lose to DFS (%v)", nclNP, dfsP)
	}
	if direct < 10*dfsP {
		t.Errorf("direct IO (%v) should dwarf cached DFS (%v)", direct, dfsP)
	}
}

func TestFig11bShape(t *testing.T) {
	res, err := Fig11b(QuickScale(), 8)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	byKey := map[string]Fig11bRow{}
	for _, row := range res.Rows {
		byKey[row.App+"/"+row.Variant] = row
	}
	for _, app := range []string{"kvstore", "redstore", "litedb"} {
		sp := byKey[app+"/SplitFT"]
		dft := byKey[app+"/DFT"]
		if sp.Total <= 0 || dft.Total <= 0 {
			t.Fatalf("%s: missing rows", app)
		}
		// NCL recovery is comparable to DFT (same order of magnitude), and
		// the NCL-specific part is a modest fraction of the total.
		if sp.Total > 4*dft.Total {
			t.Errorf("%s: splitft recovery %v vs dft %v, want comparable", app, sp.Total, dft.Total)
		}
		if sp.GetPeer+sp.Connect+sp.RdmaRead+sp.SyncPeer == 0 {
			t.Errorf("%s: no NCL breakdown recorded", app)
		}
		if sp.Connect <= 0 || sp.RdmaRead <= 0 {
			t.Errorf("%s: breakdown incomplete: %+v", app, sp)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	res, err := Table3(QuickScale(), 9)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	s := res
	if s.Total() <= 0 {
		t.Fatal("no replacement recorded")
	}
	// The paper's dominant step is connect+MR registration.
	if s.Connect < s.GetPeer || s.Connect < s.ApMap {
		t.Errorf("connect (%v) should dominate controller ops (%v, %v)", s.Connect, s.GetPeer, s.ApMap)
	}
	if s.CatchUp <= 0 {
		t.Errorf("catch-up missing: %+v", s)
	}
}

func TestFig12Shape(t *testing.T) {
	sc := QuickScale()
	sc.RunDur = 600 * time.Millisecond // x3 inside Fig12
	res, err := Fig12(sc, 10)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if len(res.Events) < 2 {
		t.Fatalf("events = %v", res.Events)
	}
	total := sc.Warmup + 3*sc.RunDur
	healthy := res.MeanDuring(sc.Warmup, total*4/10)
	stallWin := res.MinDuring(total*4/10, total*4/10+200*time.Millisecond)
	after := res.MeanDuring(total*4/10+300*time.Millisecond, total*70/100)
	if healthy <= 0 {
		t.Fatal("no healthy throughput")
	}
	// Two simultaneous crashes exceed the failure budget: writes must dip
	// until a replacement is caught up. With region recycling the
	// replacement is the paper's "much lower latency" case (~10ms), so the
	// dip is visible but brief; Table 3 covers the worst case.
	if stallWin > healthy*0.8 {
		t.Errorf("two simultaneous peer crashes: min rate %.0f vs healthy %.0f — expected a dip", stallWin, healthy)
	}
	if after < healthy*0.8 {
		t.Errorf("throughput did not recover after replacement: %.0f vs %.0f", after, healthy)
	}
}

func TestAblateReplicationShape(t *testing.T) {
	sc := QuickScale()
	res, err := AblateReplication(sc, 11)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if res.NCLLatency >= res.RaftLatency {
		t.Errorf("NCL (%v) should beat consensus (%v) on latency", res.NCLLatency, res.RaftLatency)
	}
	if res.RaftLatency < 50*res.NCLLatency {
		t.Errorf("consensus (%v) should be orders slower than NCL (%v)", res.RaftLatency, res.NCLLatency)
	}
}

func TestAblateSplitShape(t *testing.T) {
	res, err := AblateSplit(QuickScale(), 12)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	split := res.SmallLat["split (threshold)"]
	dfsS := res.SmallLat["dfs (sync)"]
	allNCL := res.SmallLat["all NCL"]
	if split >= dfsS {
		t.Errorf("split small-write latency (%v) should beat dfs-sync (%v)", split, dfsS)
	}
	if split > 4*allNCL {
		t.Errorf("split small-write latency (%v) should be near all-NCL (%v)", split, allNCL)
	}
}

func TestAblateNoLogShape(t *testing.T) {
	res, err := AblateNoLog(QuickScale(), 13)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	tier := res.MeanLat["ncl-tier"]
	syncM := res.MeanLat["dft-sync"]
	asyncM := res.MeanLat["dft-async"]
	if tier >= syncM/50 {
		t.Errorf("ncl-tier (%v) should be orders faster than dft-sync (%v)", tier, syncM)
	}
	if tier > 20*asyncM {
		t.Errorf("ncl-tier (%v) should be near dft-async (%v)", tier, asyncM)
	}
}
