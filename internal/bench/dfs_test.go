package bench

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

// TestDfsSmoke checks the headline data-path property end to end on the
// full harness: a 64 MB chained append syncs at least 5x faster than the
// flat primary-copy sync of the same bytes. (The name matches the CI
// non-race gate's filter; virtual-time results are race-independent but
// the full sweep is too slow under the race detector.)
func TestDfsSmoke(t *testing.T) {
	sc := DefaultScale()
	flat, err := dfsSyncDur(sc, 1, dfsHeadlineBytes, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := dfsSyncDur(sc, 1, dfsHeadlineBytes, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("flat %v, chain %v (%.2fx)", flat, chain, float64(flat)/float64(chain))
	if chain <= 0 || flat < 5*chain {
		t.Errorf("chain sync %v not ≥5x faster than flat sync %v", chain, flat)
	}
}

// TestDfsPerfGate regenerates the dfs sweep at the CLI's default scale and
// seed and diffs every row against the committed BENCH_dfs.json. Virtual
// times are deterministic, so the tolerance is tight: a drift means the
// data-path cost model changed and the committed report (and any analysis
// resting on it) must be regenerated deliberately, not silently.
func TestDfsPerfGate(t *testing.T) {
	if raceEnabled {
		t.Skip("full sweep is too slow under -race")
	}
	if testing.Short() {
		t.Skip("runs the full dfs sweep")
	}
	rep, err := RunDfs(DefaultScale(), 1)
	if err != nil {
		t.Fatal(err)
	}

	// The acceptance floor, independent of the baseline file.
	flat, chain := rep.Row("flat-sync-64MB"), rep.Row("chain-append-64MB")
	if flat == nil || chain == nil {
		t.Fatalf("headline rows missing: %+v", rep.Rows)
	}
	if chain.VirtualNS <= 0 || flat.VirtualNS < 5*chain.VirtualNS {
		t.Errorf("chain 64MB sync %dns not ≥5x faster than flat %dns", chain.VirtualNS, flat.VirtualNS)
	}
	load := rep.Row("kvload-1M")
	if load == nil {
		t.Fatal("kvload-1M row missing")
	}
	if v := time.Duration(load.VirtualNS); v <= 0 || v > time.Minute {
		t.Errorf("1M-row load took %v of virtual time, want bounded (0, 1m]", v)
	}

	data, err := os.ReadFile("../../BENCH_dfs.json")
	if err != nil {
		t.Fatalf("committed BENCH_dfs.json missing (regenerate with `splitft-bench dfs`): %v", err)
	}
	var base DfsReport
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	if base.Profile != rep.Profile {
		t.Fatalf("baseline profile %q, regenerated %q", base.Profile, rep.Profile)
	}
	if len(base.Rows) != len(rep.Rows) {
		t.Fatalf("baseline has %d rows, regenerated %d", len(base.Rows), len(rep.Rows))
	}
	for _, row := range rep.Rows {
		b := base.Row(row.Name)
		if b == nil {
			t.Errorf("%s: not in committed baseline", row.Name)
			continue
		}
		// 2%: virtual time should be bit-identical run to run; the slack
		// only absorbs a deliberately regenerated baseline from a slightly
		// different Go release rounding somewhere.
		lo, hi := float64(b.VirtualNS)*0.98, float64(b.VirtualNS)*1.02
		if v := float64(row.VirtualNS); v < lo || v > hi {
			t.Errorf("%s: virtual time %dns drifted from committed %dns (±2%%)",
				row.Name, row.VirtualNS, b.VirtualNS)
		}
	}
}
