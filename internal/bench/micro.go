package bench

import (
	"errors"
	"fmt"
	"time"

	"splitft/internal/core"
	"splitft/internal/metrics"
	"splitft/internal/ncl"
	"splitft/internal/simnet"
	"splitft/internal/trace"
)

// ---- Fig 8: write latency microbenchmark (embedded mode) ----

// Fig8Point is one (size, variant) latency.
type Fig8Point struct {
	Size    int
	Variant string
	AvgLat  time.Duration
}

// Fig8Result holds the three curves.
type Fig8Result struct {
	Points []Fig8Point
}

// Fig8Variants in presentation order.
var Fig8Variants = []string{"strong-bench DFS", "weak-bench DFS", "NCL"}

// Render prints size x variant average latencies.
func (r Fig8Result) Render() string {
	bySize := map[int]map[string]time.Duration{}
	var sizes []int
	for _, pt := range r.Points {
		if bySize[pt.Size] == nil {
			bySize[pt.Size] = map[string]time.Duration{}
			sizes = append(sizes, pt.Size)
		}
		bySize[pt.Size][pt.Variant] = pt.AvgLat
	}
	var rows [][]string
	for _, s := range sizes {
		row := []string{metrics.HumanBytes(int64(s))}
		for _, v := range Fig8Variants {
			row = append(row, fmtUS(bySize[s][v]))
		}
		rows = append(rows, row)
	}
	return "Fig 8. Write latency, embedded mode (us)\n" +
		metrics.Table(append([]string{"size"}, Fig8Variants...), rows)
}

// Fig8Sizes are the paper's write sizes (128B to 8KB).
var Fig8Sizes = []int{128, 256, 512, 1024, 2048, 4096, 8192}

// Fig8 measures sequential write latency in embedded mode (the benchmark
// process links ncl-lib directly; no request network hop): every write is
// fdatasynced in "strong", buffered in "weak", and synchronously replicated
// by NCL.
func Fig8(sc Scale, seed int64) (Fig8Result, error) {
	var res Fig8Result
	c := newCluster(sc, seed)
	const perSize = 400
	err := c.Run(func(p *simnet.Proc) error {
		fs, err := c.NewFS(p, "microbench", 0)
		if err != nil {
			return err
		}
		for _, size := range Fig8Sizes {
			buf := make([]byte, size)
			// strong: write + fdatasync to the dfs.
			f, err := fs.OpenFile(p, fmt.Sprintf("/micro/strong-%d", size), core.O_CREATE, 0)
			if err != nil {
				return err
			}
			start := p.Now()
			for i := 0; i < perSize/8; i++ { // strong is slow; fewer iterations
				f.Write(p, buf)
				f.Sync(p)
			}
			res.Points = append(res.Points, Fig8Point{Size: size, Variant: "strong-bench DFS",
				AvgLat: (p.Now() - start) / (perSize / 8)})
			f.Close(p)

			// weak: buffered writes, never synced.
			f, err = fs.OpenFile(p, fmt.Sprintf("/micro/weak-%d", size), core.O_CREATE, 0)
			if err != nil {
				return err
			}
			start = p.Now()
			for i := 0; i < perSize; i++ {
				f.Write(p, buf)
			}
			res.Points = append(res.Points, Fig8Point{Size: size, Variant: "weak-bench DFS",
				AvgLat: (p.Now() - start) / perSize})
			f.Close(p)

			// NCL: every write synchronously replicated to the log peers.
			// The append-only policies (ec, quorum) spend a frame header per
			// record, so small records exhaust the budget before the nominal
			// capacity; rotate exactly as a real WAL would — checkpoint (here:
			// drop) and reopen — and keep the rotation off the measured write
			// latency. Per-write timing sums to the same average as the old
			// elapsed/perSize on the mirror path (nothing else runs between
			// writes on the virtual clock).
			name := fmt.Sprintf("ncl-%d", size)
			nclCap := int64(size*perSize + 1024)
			nf, err := fs.OpenFile(p, name, core.O_NCL|core.O_CREATE, nclCap)
			if err != nil {
				return err
			}
			var nclLat time.Duration
			for i := 0; i < perSize; i++ {
				t0 := p.Now()
				_, werr := nf.Write(p, buf)
				if errors.Is(werr, ncl.ErrRegionFull) {
					if err := fs.Unlink(p, name); err != nil {
						return err
					}
					if nf, err = fs.OpenFile(p, name, core.O_NCL|core.O_CREATE, nclCap); err != nil {
						return err
					}
					t0 = p.Now()
					_, werr = nf.Write(p, buf)
				}
				if werr != nil {
					return werr
				}
				nclLat += p.Now() - t0
			}
			res.Points = append(res.Points, Fig8Point{Size: size, Variant: "NCL",
				AvgLat: nclLat / perSize})
			fs.Unlink(p, name) //nolint:errcheck
		}
		return nil
	})
	return res, err
}

// ---- Fig 1(d): dfs sequential write throughput vs IO size ----

// Fig1dPoint is one block size's sync-write throughput.
type Fig1dPoint struct {
	BlockSize int64
	MBps      float64
}

// Fig1dResult holds the sweep.
type Fig1dResult struct {
	Points []Fig1dPoint
}

// Render prints the paper's three bars (plus intermediate sizes).
func (r Fig1dResult) Render() string {
	var rows [][]string
	for _, pt := range r.Points {
		rows = append(rows, []string{metrics.HumanBytes(pt.BlockSize), fmt.Sprintf("%.2f", pt.MBps)})
	}
	return "Fig 1(d). dfs sequential sync-write throughput\n" +
		metrics.Table([]string{"block size", "MB/s"}, rows)
}

// Fig1d measures sequential write+fsync throughput on the dfs at the
// paper's block sizes.
func Fig1d(sc Scale, seed int64) (Fig1dResult, error) {
	var res Fig1dResult
	sizes := []int64{512, 8 << 10, 1 << 20, 64 << 20}
	for _, bs := range sizes {
		bs := bs
		c := newCluster(sc, seed)
		err := c.Run(func(p *simnet.Proc) error {
			fs, err := c.NewFS(p, "fig1d", 0)
			if err != nil {
				return err
			}
			f, err := fs.OpenFile(p, "/seq", core.O_CREATE, 0)
			if err != nil {
				return err
			}
			target := int64(8 << 20)
			if bs >= target {
				target = 2 * bs
			}
			buf := make([]byte, bs)
			start := p.Now()
			var total int64
			for total < target {
				f.Write(p, buf)
				if err := f.Sync(p); err != nil {
					return err
				}
				total += bs
			}
			res.Points = append(res.Points, Fig1dPoint{BlockSize: bs,
				MBps: float64(total) / 1e6 / (p.Now() - start).Seconds()})
			return nil
		})
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

// ---- Fig 11(a): read latency microbenchmark ----

// Fig11aPoint is one (size, variant) read latency.
type Fig11aPoint struct {
	Size    int
	Variant string
	AvgLat  time.Duration
}

// Fig11aResult holds the four curves.
type Fig11aResult struct {
	Points []Fig11aPoint
}

// Fig11aVariants in presentation order.
var Fig11aVariants = []string{"DFS", "NCL", "NCL no prefetch", "DFS direct IO"}

// Render prints size x variant latencies.
func (r Fig11aResult) Render() string {
	bySize := map[int]map[string]time.Duration{}
	var sizes []int
	for _, pt := range r.Points {
		if bySize[pt.Size] == nil {
			bySize[pt.Size] = map[string]time.Duration{}
			sizes = append(sizes, pt.Size)
		}
		bySize[pt.Size][pt.Variant] = pt.AvgLat
	}
	var rows [][]string
	for _, s := range sizes {
		row := []string{metrics.HumanBytes(int64(s))}
		for _, v := range Fig11aVariants {
			row = append(row, fmtUS(bySize[s][v]))
		}
		rows = append(rows, row)
	}
	return "Fig 11(a). Sequential read latency during recovery (us)\n" +
		metrics.Table(append([]string{"size"}, Fig11aVariants...), rows)
}

// Fig11a measures sequentially reading a recovered log at different read
// sizes: through NCL (recovery prefetched the region — the amortized cost
// is included), through NCL without prefetching (per-read RDMA), from the
// dfs with readahead, and from the dfs with direct IO.
func Fig11a(sc Scale, seed int64) (Fig11aResult, error) {
	var res Fig11aResult
	fileSize := int64(sc.LogSizeMB) << 20 / 4 // reads are slow; scale down
	sizes := []int{128, 512, 2048, 8192}
	if sc.Trace == nil {
		sc.Trace = trace.New() // prefetch amortization needs spans
	}
	col := sc.Trace
	c := newCluster(sc, seed)
	err := c.Run(func(p *simnet.Proc) error {
		// Build the log content on NCL and on the dfs, then crash the app so
		// the NCL open below takes the recovery path.
		c.AppNode.Go("writer", func(wp *simnet.Proc) {
			fs, err := c.NewFS(wp, "fig11a", 0)
			if err != nil {
				return
			}
			nf, err := fs.OpenFile(wp, "reclog", core.O_NCL|core.O_CREATE, fileSize+1024)
			if err != nil {
				return
			}
			chunk := make([]byte, 64<<10)
			for off := int64(0); off < fileSize; off += int64(len(chunk)) {
				nf.Write(wp, chunk) //nolint:errcheck
			}
			df, err := fs.OpenFile(wp, "/reclog.dfs", core.O_CREATE, 0)
			if err != nil {
				return
			}
			for off := int64(0); off < fileSize; off += int64(len(chunk)) {
				df.Write(wp, chunk) //nolint:errcheck
			}
			df.Sync(wp) //nolint:errcheck
			wp.Sleep(time.Hour)
		})
		p.Sleep(30 * time.Second) // virtual time; writes complete
		c.CrashApp()
		p.Sleep(10 * time.Millisecond)
		c.RestartApp()
		// Recover on the restarted server; the NCL open prefetches.
		fs2, err := c.NewFS(p, "fig11a", 1)
		if err != nil {
			return err
		}
		mark := col.Len()
		nf, err := fs2.OpenFile(p, "reclog", core.O_NCL, 0)
		if err != nil {
			return err
		}
		// The cost to amortize over subsequent reads is the prefetch itself
		// (the bulk RDMA read of the region), as in the paper; the rest of
		// recovery (controller, connects, peer sync) happens regardless of
		// how reads are served afterwards.
		prefetch := trace.Sum(col.Since(mark), "ncl", "recover.rdmaread")
		type hasLog interface{ Log() *ncl.Log }
		lg := nf.(hasLog).Log()

		for _, size := range sizes {
			buf := make([]byte, size)
			reads := int(fileSize / int64(size))
			if reads > 20000 {
				reads = 20000
			}
			// NCL (prefetched): local-buffer reads + amortized prefetch.
			start := p.Now()
			for i := 0; i < reads; i++ {
				nf.Pread(p, buf, int64(i*size)) //nolint:errcheck
			}
			amortized := prefetch / time.Duration(fileSize/int64(size))
			res.Points = append(res.Points, Fig11aPoint{Size: size, Variant: "NCL",
				AvgLat: (p.Now()-start)/time.Duration(reads) + amortized})

			// NCL without prefetch: every read is a remote RDMA read.
			start = p.Now()
			for i := 0; i < reads/4; i++ {
				lg.RemoteReadAt(p, buf, int64(i*size)) //nolint:errcheck
			}
			res.Points = append(res.Points, Fig11aPoint{Size: size, Variant: "NCL no prefetch",
				AvgLat: (p.Now() - start) / time.Duration(reads/4)})

			// DFS with readahead (fresh mount per size for a cold cache).
			dcl := c.DFS.Mount(c.AppNode)
			df, err := dcl.Open(p, "/reclog.dfs")
			if err != nil {
				return err
			}
			start = p.Now()
			for i := 0; i < reads; i++ {
				df.Pread(p, buf, int64(i*size)) //nolint:errcheck
			}
			res.Points = append(res.Points, Fig11aPoint{Size: size, Variant: "DFS",
				AvgLat: (p.Now() - start) / time.Duration(reads)})
			df.Close(p)

			// DFS direct IO.
			dcl2 := c.DFS.Mount(c.AppNode)
			dcl2.DirectIO = true
			df2, err := dcl2.Open(p, "/reclog.dfs")
			if err != nil {
				return err
			}
			start = p.Now()
			for i := 0; i < reads/8; i++ {
				df2.Pread(p, buf, int64(i*size)) //nolint:errcheck
			}
			res.Points = append(res.Points, Fig11aPoint{Size: size, Variant: "DFS direct IO",
				AvgLat: (p.Now() - start) / time.Duration(reads/8)})
			df2.Close(p)
		}
		return nil
	})
	return res, err
}
