package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// The perf suite must produce a row per workload with live counters and a
// JSON file that round-trips. Run at a reduced slice so `go test` stays
// fast; absolute numbers are irrelevant here.
func TestPerfSuiteSanity(t *testing.T) {
	sc := QuickScale()
	sc.LoadKeys = 5000
	sc.RunDur = 50 * time.Millisecond
	sc.Warmup = 20 * time.Millisecond
	rep, err := Perf(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.Events == 0 {
			t.Errorf("%s: zero events dispatched", row.Name)
		}
		if row.EventsPerSec <= 0 || row.NSPerEvent <= 0 {
			t.Errorf("%s: dead rate counters: %+v", row.Name, row)
		}
		// The pure scheduler rows must stay allocation-free per event up to
		// their fixed setup; one alloc every ~100 events would already mean
		// a hot-path regression.
		switch row.Name {
		case "event-churn", "event-churn-fanout", "yield-pingpong", "chan-pingpong", "mutex-convoy":
			if row.AllocsPerEvent > 0.01 {
				t.Errorf("%s: %.4f allocs/event, want setup-only", row.Name, row.AllocsPerEvent)
			}
		}
	}
	path := filepath.Join(t.TempDir(), "BENCH_simnet.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back PerfReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(rep.Rows) || back.Rows[0].Name != rep.Rows[0].Name {
		t.Fatalf("JSON round-trip mismatch: %+v", back)
	}
	if rep.Render() == "" {
		t.Fatal("empty render")
	}
}

// BenchmarkYCSBA12Clients is the end-to-end slice as a testing.B benchmark:
// one op is one full slice run (boot, load, 12-client YCSB-A window);
// ReportMetric surfaces the simulator event rate.
func BenchmarkYCSBA12Clients(b *testing.B) {
	sc := QuickScale()
	sc.Clients = 12
	var events uint64
	var wall time.Duration
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		s, err := perfYCSBSlice(perfScale(sc), 1)
		if err != nil {
			b.Fatal(err)
		}
		wall += time.Since(t0)
		events += s.Events()
	}
	b.ReportAllocs()
	if wall > 0 {
		b.ReportMetric(float64(events)/wall.Seconds(), "events/s")
		b.ReportMetric(float64(wall.Nanoseconds())/float64(events), "ns/event")
	}
}
