package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"splitft/internal/simnet"
)

// The perf suite must produce a row per workload with live counters and a
// JSON file that round-trips. Run at a reduced slice so `go test` stays
// fast; absolute numbers are irrelevant here.
func TestPerfSuiteSanity(t *testing.T) {
	sc := QuickScale()
	sc.LoadKeys = 5000
	sc.RunDur = 50 * time.Millisecond
	sc.Warmup = 20 * time.Millisecond
	rep, err := Perf(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.Events == 0 {
			t.Errorf("%s: zero events dispatched", row.Name)
		}
		if row.EventsPerSec <= 0 || row.NSPerEvent <= 0 {
			t.Errorf("%s: dead rate counters: %+v", row.Name, row)
		}
		// The pure scheduler rows must stay allocation-free per event up to
		// their fixed setup; one alloc every ~100 events would already mean
		// a hot-path regression.
		switch row.Name {
		case "event-churn", "event-churn-fanout", "yield-pingpong", "chan-pingpong", "mutex-convoy":
			if row.AllocsPerEvent > 0.01 {
				t.Errorf("%s: %.4f allocs/event, want setup-only", row.Name, row.AllocsPerEvent)
			}
		}
	}
	path := filepath.Join(t.TempDir(), "BENCH_simnet.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back PerfReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(rep.Rows) || back.Rows[0].Name != rep.Rows[0].Name {
		t.Fatalf("JSON round-trip mismatch: %+v", back)
	}
	if rep.Render() == "" {
		t.Fatal("empty render")
	}
}

// TestPerfAllocGateZeroAllocRPC gates the two RPC-heavy perf rows on their
// allocation budget. With the typed wire layer the transport itself is
// allocation-free, so whole-run allocations — cluster construction, the
// YCSB generator's per-op key/value strings and the applications' own
// data structures included — must stay at or below 0.5 per simulator event.
// On top of the absolute budget, each row is diffed against the committed
// BENCH_simnet.json so a regression shows up even while still under budget.
// (The name matches the CI non-race gate's 'ZeroAlloc|AllocsPerRun' filter.)
func TestPerfAllocGateZeroAllocRPC(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is meaningless under -race")
	}
	if testing.Short() {
		t.Skip("runs full perf workloads")
	}
	const budget = 0.5 // allocs per simulator event, whole run
	baseline := loadBaselineRows(t)
	ysc := perfScale(QuickScale())
	for _, w := range []perfWorkload{
		{"rpc-echo", func() (*simnet.Sim, error) { return perfRPCEcho(1) }},
		{"ycsb-a-12c", func() (*simnet.Sim, error) { return perfYCSBSlice(ysc, 1) }},
	} {
		w := w
		t.Run(w.name, func(t *testing.T) {
			row, err := measure(w)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %d events, %d allocs, %.4f allocs/event",
				row.Name, row.Events, row.Allocs, row.AllocsPerEvent)
			if row.AllocsPerEvent > budget {
				t.Errorf("%.4f allocs/event exceeds the %.2f budget", row.AllocsPerEvent, budget)
			}
			if base, ok := baseline[w.name]; ok {
				// Generous slack: alloc counts vary a little with Go version
				// and GC timing, and the gate should catch regressions, not
				// noise.
				if limit := base.AllocsPerEvent*1.5 + 0.05; row.AllocsPerEvent > limit {
					t.Errorf("%.4f allocs/event regressed past committed baseline %.4f (limit %.4f)",
						row.AllocsPerEvent, base.AllocsPerEvent, limit)
				}
			}
		})
	}
}

// loadBaselineRows reads the committed BENCH_simnet.json, keyed by row name.
// A missing file is not an error (fresh checkouts of a stripped tree); the
// absolute budget still applies.
func loadBaselineRows(t *testing.T) map[string]PerfRow {
	t.Helper()
	data, err := os.ReadFile("../../BENCH_simnet.json")
	if err != nil {
		t.Logf("no committed baseline: %v", err)
		return nil
	}
	var rep PerfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_simnet.json: %v", err)
	}
	out := make(map[string]PerfRow, len(rep.Rows))
	for _, row := range rep.Rows {
		out[row.Name] = row
	}
	return out
}

// BenchmarkYCSBA12Clients is the end-to-end slice as a testing.B benchmark:
// one op is one full slice run (boot, load, 12-client YCSB-A window);
// ReportMetric surfaces the simulator event rate.
func BenchmarkYCSBA12Clients(b *testing.B) {
	sc := QuickScale()
	sc.Clients = 12
	var events uint64
	var wall time.Duration
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		s, err := perfYCSBSlice(perfScale(sc), 1)
		if err != nil {
			b.Fatal(err)
		}
		wall += time.Since(t0)
		events += s.Events()
	}
	b.ReportAllocs()
	if wall > 0 {
		b.ReportMetric(float64(events)/wall.Seconds(), "events/s")
		b.ReportMetric(float64(wall.Nanoseconds())/float64(events), "ns/event")
	}
}
