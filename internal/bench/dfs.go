package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"splitft/internal/core"
	"splitft/internal/harness"
	"splitft/internal/metrics"
	"splitft/internal/simnet"
)

// The dfs experiment sweeps the extent-backed data path behind
// `splitft-bench dfs`: the flat primary-copy sync against the chained
// append at the headline 64 MB size, the chain across IO sizes, the
// extent-size x chain-length grid, and a full 1M-row kvstore load whose
// flushes all ride the chains. Every number is virtual time, so the report
// is deterministic for a given profile and seed — BENCH_dfs.json keeps it
// pinned in CI and a silent cost-model shift fails the diff loudly.

// DfsRow is one measured data-path configuration.
type DfsRow struct {
	Name      string  `json:"name"`
	Bytes     int64   `json:"bytes,omitempty"`
	VirtualNS int64   `json:"virtual_ns"`
	MBPerSec  float64 `json:"mb_per_sec,omitempty"`
}

// DfsReport is the whole sweep, JSON-shaped for BENCH_dfs.json.
type DfsReport struct {
	Profile string   `json:"profile"`
	Rows    []DfsRow `json:"rows"`
}

// Row returns the named row, or nil.
func (r DfsReport) Row(name string) *DfsRow {
	for i := range r.Rows {
		if r.Rows[i].Name == name {
			return &r.Rows[i]
		}
	}
	return nil
}

// Render formats the report as a table.
func (r DfsReport) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		mb := "-"
		if row.MBPerSec > 0 {
			mb = fmt.Sprintf("%.0f", row.MBPerSec)
		}
		rows = append(rows, []string{
			row.Name,
			fmt.Sprintf("%d", row.Bytes),
			fmt.Sprintf("%.3f", float64(row.VirtualNS)/1e6),
			mb,
		})
	}
	return fmt.Sprintf("DFS data path (virtual time, profile %s)\n", r.Profile) +
		metrics.Table([]string{"Workload", "Bytes", "Virtual (ms)", "MB/s"}, rows)
}

// WriteJSON writes the report to path (BENCH_dfs.json).
func (r DfsReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// dfsSyncDur measures the virtual duration of one synced write of n bytes
// on a fresh cluster built with mut applied to the profile's DFS params
// (nil mut keeps the profile). Extent-backed when ext is true. A small
// warm-up append primes the extent-ID lease so the measured sync sees the
// steady state, not the first allocation round trip.
func dfsSyncDur(sc Scale, seed int64, n int64, ext bool, mut func(*harness.Options)) (time.Duration, error) {
	prof := sc.profile()
	opts := harness.Options{
		Seed: seed, NumPeers: 6, PeerMem: 1 << 30, AppCores: 10,
		WithLocalFS: true, Profile: prof, Trace: sc.Trace,
	}
	if mut != nil {
		mut(&opts)
	}
	c := harness.New(opts)
	var dur time.Duration
	err := c.Run(func(p *simnet.Proc) error {
		fs, err := c.NewFS(p, "dfsbench", 0)
		if err != nil {
			return err
		}
		flags := core.O_CREATE
		if ext {
			flags |= core.O_EXTENT
		}
		f, err := fs.OpenFile(p, "/bench/f", flags, 0)
		if err != nil {
			return err
		}
		if ext {
			if _, err := f.Write(p, make([]byte, 128)); err != nil {
				return err
			}
			if err := f.Sync(p); err != nil {
				return err
			}
		}
		if _, err := f.Write(p, make([]byte, n)); err != nil {
			return err
		}
		start := p.Now()
		if err := f.Sync(p); err != nil {
			return err
		}
		dur = p.Now() - start
		return nil
	})
	return dur, err
}

// dfsRow wraps a measurement into a report row with MB/s derived from
// virtual time.
func dfsRow(name string, n int64, dur time.Duration) DfsRow {
	row := DfsRow{Name: name, Bytes: n, VirtualNS: dur.Nanoseconds()}
	if dur > 0 {
		row.MBPerSec = float64(n) / dur.Seconds() / 1e6
	}
	return row
}

// dfsHeadlineBytes is the large-IO size of the headline flat-vs-chain
// comparison (the SSTable-flush class of Fig 1).
const dfsHeadlineBytes = 64 << 20

// dfsKvloadKeys sizes the end-to-end load row: 1M rows, every memtable
// flush and compaction riding the extent chains.
const dfsKvloadKeys = 1_000_000

// RunDfs runs the data-path sweep and returns the report.
func RunDfs(sc Scale, seed int64) (DfsReport, error) {
	rep := DfsReport{Profile: sc.profile().Name}

	// Headline: flat primary-copy sync vs chained append, same bytes.
	flat, err := dfsSyncDur(sc, seed, dfsHeadlineBytes, false, nil)
	if err != nil {
		return rep, err
	}
	rep.Rows = append(rep.Rows, dfsRow("flat-sync-64MB", dfsHeadlineBytes, flat))
	chain, err := dfsSyncDur(sc, seed, dfsHeadlineBytes, true, nil)
	if err != nil {
		return rep, err
	}
	rep.Rows = append(rep.Rows, dfsRow("chain-append-64MB", dfsHeadlineBytes, chain))

	// IO-size sweep down the chain: small appends are fixed-cost bound,
	// large ones pipeline at link bandwidth.
	for _, sz := range []struct {
		label string
		n     int64
	}{{"512B", 512}, {"64KB", 64 << 10}, {"1MB", 1 << 20}, {"8MB", 8 << 20}} {
		d, err := dfsSyncDur(sc, seed, sz.n, true, nil)
		if err != nil {
			return rep, err
		}
		rep.Rows = append(rep.Rows, dfsRow("chain-append-"+sz.label, sz.n, d))
	}

	// Extent-size x chain-length grid at the headline size: extent size
	// sets how often the stream switches chains (parallelism across
	// nodes), chain length sets the replication depth each frame pays.
	for _, extMB := range []int64{1, 4, 16} {
		for _, k := range []int{2, 3, 5} {
			extMB, k := extMB, k
			d, err := dfsSyncDur(sc, seed, dfsHeadlineBytes, true, func(o *harness.Options) {
				params := sc.profile().DFS
				params.ExtentSize = extMB << 20
				params.ChainLength = k
				o.DFSParams = &params
			})
			if err != nil {
				return rep, err
			}
			rep.Rows = append(rep.Rows,
				dfsRow(fmt.Sprintf("chain-64MB-ext%dMB-k%d", extMB, k), dfsHeadlineBytes, d))
		}
	}

	// End-to-end: a 1M-row kvstore load on the full SplitFT stack. The
	// row records the virtual time the load takes with WAL appends on NCL
	// and every flush/compaction on the extent plane; the gate only needs
	// it bounded and stable.
	lsc := sc
	lsc.LoadKeys = dfsKvloadKeys
	c := newClusterSized(lsc, seed, datasetBytes(lsc.LoadKeys))
	var loadDur time.Duration
	err = c.Run(func(p *simnet.Proc) error {
		a, err := newApp(c, p, "kvstore", CfgSplitFT, lsc.LoadKeys)
		if err != nil {
			return err
		}
		start := p.Now()
		if err := loadApp(c, p, a, lsc.LoadKeys); err != nil {
			return err
		}
		loadDur = p.Now() - start
		return nil
	})
	if err != nil {
		return rep, err
	}
	rep.Rows = append(rep.Rows, DfsRow{
		Name: "kvload-1M", Bytes: datasetBytes(lsc.LoadKeys), VirtualNS: loadDur.Nanoseconds(),
	})
	return rep, nil
}
