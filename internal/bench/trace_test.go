package bench

import (
	"bytes"
	"testing"
	"time"

	"splitft/internal/model"
	"splitft/internal/trace"
)

// Acceptance tests for the span-based instrumentation: traces must be
// deterministic, must not perturb the simulation, and the breakdowns the
// figures now derive from spans must stay inside the same calibration bands
// the cost model is gated on.

// Two runs with the same profile and seed must produce byte-identical
// Chrome trace JSON.
func TestTraceDeterministic(t *testing.T) {
	export := func() []byte {
		sc := QuickScale()
		col := trace.New()
		sc.Trace = col
		if _, err := Fig8(sc, 1); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteChrome(&buf, col.Spans()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if len(a) == 0 {
		t.Fatal("empty trace export")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("trace export not deterministic: %d vs %d bytes", len(a), len(b))
	}
}

// Attaching a collector must not change what the simulation computes: spans
// record virtual time, they never advance it.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	bare := QuickScale()
	traced := QuickScale()
	traced.Trace = trace.New()
	r1, err := Fig8(bare, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Fig8(traced, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Points) != len(r2.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(r1.Points), len(r2.Points))
	}
	for i := range r1.Points {
		if r1.Points[i] != r2.Points[i] {
			t.Fatalf("point %d differs with tracing on: %+v vs %+v", i, r1.Points[i], r2.Points[i])
		}
	}
	if traced.Trace.Len() == 0 {
		t.Fatal("traced run collected no spans")
	}
}

// The Table 3 breakdown is now computed from "ncl"/"replace.*" spans; for
// every named hardware profile the controller-bound steps and the
// MR-registration-bound step must land inside the same bands the
// calibration gate derives from the profile (the replacement region is the
// paper's 60 MB log, matching the MR probe size).
func TestTable3WithinCalibrationBands(t *testing.T) {
	for _, name := range model.Names() {
		prof, err := model.Resolve(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sc := QuickScale()
		sc.LogSizeMB = 60
		sc.Profile = prof
		res, err := Table3(sc, 1)
		if err != nil {
			t.Fatalf("%s: table3: %v", name, err)
		}
		targets := map[string]model.Target{}
		for _, tg := range model.Targets(prof) {
			targets[tg.Probe] = tg
		}
		check := func(step string, got time.Duration, tg model.Target) {
			if got < tg.Lo || got > tg.Hi {
				t.Errorf("%s: %s = %v outside band [%v, %v] (%s)",
					name, step, got, tg.Lo, tg.Hi, tg.Formula)
			}
		}
		ctrl := targets[model.ProbeControllerOp]
		check("get-peer", res.GetPeer, ctrl)
		check("ap-map", res.ApMap, ctrl)
		check("connect", res.Connect, targets[model.ProbeMRRegister60MB])
		if res.CatchUp <= 0 {
			t.Errorf("%s: catch-up phase span missing", name)
		}
	}
}
