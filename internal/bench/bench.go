// Package bench regenerates every table and figure of the paper's
// evaluation (§5) on the simulated testbed, plus the §6 ablations. Each
// experiment builds a fresh deterministic cluster (3 controller nodes, a
// CephFS-like dfs, 6 log peers, an application server, a client machine),
// runs the three configurations the paper compares — weak-app DFT,
// strong-app DFT, and SplitFT — and prints rows shaped like the paper's.
//
// Absolute numbers come from the calibrated cost models in internal/dfs,
// internal/rdma and the application packages; EXPERIMENTS.md records
// paper-vs-measured values and the scaling notes (dataset sizes are
// simulation-scaled; flags adjust them).
package bench

import (
	"fmt"
	"time"

	"splitft/internal/harness"
	"splitft/internal/metrics"
	"splitft/internal/model"
	"splitft/internal/simnet"
	"splitft/internal/trace"
	"splitft/internal/wire"
	"splitft/internal/ycsb"
)

// Scale sets dataset and run sizes. The paper loads 100M rows and runs 120s
// per point on real hardware; the defaults here reproduce the same shapes
// at simulation-friendly sizes.
type Scale struct {
	LoadKeys  int64         // kvstore/redstore rows (litedb uses 1/4)
	RunDur    time.Duration // measured window per data point
	Warmup    time.Duration
	Clients   int // client threads for throughput experiments
	LogSizeMB int // recovery-experiment log size (paper: 60MB)
	// Profile is the hardware cost model every experiment cluster is built
	// with. Nil means model.Baseline().
	Profile *model.Profile
	// Trace, when non-nil, is attached to every experiment cluster so runs
	// record spans into it (the -trace flag of cmd/splitft-bench).
	Trace *trace.Collector
}

// profile resolves the scale's cost model.
func (sc Scale) profile() *model.Profile {
	if sc.Profile != nil {
		return sc.Profile
	}
	return model.Baseline()
}

// DefaultScale suits the CLI harness (minutes for the full suite).
func DefaultScale() Scale {
	return Scale{LoadKeys: 200000, RunDur: 2 * time.Second, Warmup: 300 * time.Millisecond, Clients: 12, LogSizeMB: 60}
}

// QuickScale suits go test -bench (seconds per experiment).
func QuickScale() Scale {
	return Scale{LoadKeys: 30000, RunDur: 250 * time.Millisecond, Warmup: 100 * time.Millisecond, Clients: 12, LogSizeMB: 16}
}

// Configs under comparison.
const (
	CfgWeak    = "weak-app DFT"
	CfgStrong  = "strong-app DFT"
	CfgSplitFT = "SplitFT"
)

// AllConfigs in presentation order.
var AllConfigs = []string{CfgStrong, CfgWeak, CfgSplitFT}

// newCluster builds the standard testbed for one experiment run under the
// scale's cost-model profile.
func newCluster(sc Scale, seed int64) *harness.Cluster { return newClusterSized(sc, seed, 0) }

// newClusterSized additionally sizes the application server's block cache
// to 30% of the dataset, the paper's cache configuration for the key-value
// stores and the database (§5 "Application Configuration").
func newClusterSized(sc Scale, seed int64, dataset int64) *harness.Cluster {
	prof := sc.profile()
	opts := harness.Options{
		Seed:        seed,
		NumPeers:    6,
		PeerMem:     1 << 30,
		AppCores:    10,
		WithLocalFS: true,
		Profile:     prof,
		Trace:       sc.Trace,
	}
	if dataset > 0 {
		params := prof.DFS
		params.CacheCapacity = dataset * 30 / 100
		if params.CacheCapacity < 1<<20 {
			params.CacheCapacity = 1 << 20
		}
		opts.DFSParams = &params
	}
	return harness.New(opts)
}

// datasetBytes estimates the stored size of a YCSB row set.
func datasetBytes(keys int64) int64 {
	return keys * int64(ycsb.KeySize+ycsb.ValueSize+16)
}

// point is one measured latency/throughput sample set.
type point struct {
	hist  metrics.Histogram
	count int64
	dur   time.Duration
}

func (pt *point) kops() float64 {
	if pt.dur == 0 {
		return 0
	}
	return float64(pt.count) / pt.dur.Seconds() / 1000
}

// Bench wire codes (0x40–0x4f, see internal/wire).
const (
	codeOp      wire.Code = 0x40 // client->server YCSB operation
	codeRaftRec wire.Code = 0x41 // consensus-baseline log record
)

// opMsg encodes one client->server YCSB operation.
func opMsg(op ycsb.Op, val []byte) simnet.Msg {
	m := simnet.Msg{Code: codeOp, S: [3]string{op.Key}, B: val}
	m.U[0] = uint64(op.Type)
	return m
}

// server wraps an application behind the simulated network with a bounded
// worker pool (the paper's 20 application-server threads).
type server struct {
	app app
	sem *simnet.Semaphore
	// ops holds precomputed "<app>.<optype>" span names so the per-request
	// path does no string concatenation.
	ops [4]string
}

// app is the minimal surface the harness drives.
type app interface {
	Name() string
	Load(p *simnet.Proc, keys int64) error
	Do(p *simnet.Proc, op ycsb.Op, val []byte) error
}

const serverThreads = 20

func startServer(c *harness.Cluster, addr string, a app) *server {
	srv := &server{app: a, sem: simnet.NewSemaphore(serverThreads)}
	for _, t := range []ycsb.OpType{ycsb.Read, ycsb.Update, ycsb.Insert, ycsb.ReadModifyWrite} {
		srv.ops[t] = a.Name() + "." + t.String()
	}
	c.Sim.Net().Register(addr, c.AppNode, func(p *simnet.Proc, req simnet.Msg) (simnet.Msg, error) {
		op := ycsb.Op{Type: ycsb.OpType(req.U[0]), Key: req.S[0]}
		srv.sem.Acquire(p)
		defer srv.sem.Release(p)
		sp := p.StartSpan("app", srv.ops[op.Type])
		defer p.EndSpan(sp)
		return simnet.Msg{Code: wire.CodeAck}, srv.app.Do(p, op, req.B)
	})
	return srv
}

// runWorkload drives `clients` closed-loop clients against addr for the
// scale's window and returns the measured point. A non-nil sampler gets one
// observation per completed op (Fig 12's time series).
func runWorkload(c *harness.Cluster, p *simnet.Proc, addr string, spec ycsb.Spec,
	records int64, clients int, sc Scale, sampler *metrics.ThroughputSampler) *point {

	pt := &point{dur: sc.RunDur}
	start := p.Now()
	warmEnd := start + sc.Warmup
	end := warmEnd + sc.RunDur
	var wg simnet.WaitGroup
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		i := i
		// Per-client generator seeds derive from the cluster seed so -seed
		// varies the workload; at the default seed 1 the formula reduces to
		// the historical i*7919+1, keeping published numbers unchanged.
		g := ycsb.NewGenerator(spec, records, (c.Seed-1)*15485863+int64(i)*7919+1)
		p.GoOn(c.ClientNode, fmt.Sprintf("client%d", i), func(cp *simnet.Proc) {
			defer wg.Done(cp)
			for cp.Now() < end {
				op := g.Next()
				var val []byte
				if op.Type != ycsb.Read {
					val = g.Value()
				}
				t0 := cp.Now()
				_, err := c.Sim.Net().CallTimeout(cp, c.ClientNode, addr, opMsg(op, val), 10*time.Second)
				if err != nil {
					continue
				}
				if now := cp.Now(); now > warmEnd && now <= end {
					pt.hist.Record(now - t0)
					pt.count++
				}
				if sampler != nil {
					sampler.Observe(cp.Now() - start)
				}
			}
		})
	}
	wg.Wait(p)
	return pt
}

// loadApp populates an application with the YCSB row set using parallel
// loaders on the application node (the paper's load phase).
func loadApp(c *harness.Cluster, p *simnet.Proc, a app, keys int64) error {
	return a.Load(p, keys)
}

// parallelLoad is the shared loader used by the app adapters.
func parallelLoad(node *simnet.Node, p *simnet.Proc, keys int64, loaders int,
	put func(lp *simnet.Proc, key string, val []byte) error) error {

	var wg simnet.WaitGroup
	wg.Add(loaders)
	var firstErr error
	for i := 0; i < loaders; i++ {
		i := i
		p.GoOn(node, fmt.Sprintf("loader%d", i), func(lp *simnet.Proc) {
			defer wg.Done(lp)
			val := make([]byte, ycsb.ValueSize)
			for j := int64(i); j < keys; j += int64(loaders) {
				if err := put(lp, ycsb.Key(j), val); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
			}
		})
	}
	wg.Wait(p)
	return firstErr
}

// fmtUS formats a duration in microseconds, paper-style.
func fmtUS(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1000)
}

// ---- Table 1: cost of strong guarantees ----

// Table1Row is one configuration's result.
type Table1Row struct {
	Config string
	KOps   float64
	AvgLat time.Duration
}

// Table1Result reproduces Table 1 (RocksDB-like store, write-only, 12
// clients, weak vs strong on the dfs).
type Table1Result struct {
	Rows []Table1Row
}

// Render formats the result like the paper's table.
func (r Table1Result) Render() string {
	var rows [][]string
	base := r.Rows[0]
	for i, row := range r.Rows {
		drop := ""
		if i > 0 && row.KOps > 0 {
			drop = fmt.Sprintf(" (%.0fx lower, %.0fx higher lat)",
				base.KOps/row.KOps, float64(row.AvgLat)/float64(base.AvgLat))
		}
		rows = append(rows, []string{row.Config, fmt.Sprintf("%.0f", row.KOps), fmtUS(row.AvgLat) + drop})
	}
	return "Table 1. Cost of Strong Guarantees (write-only, 12 clients)\n" +
		metrics.Table([]string{"Configuration", "Throughput (KOps/s)", "Avg. Latency (us)"}, rows)
}

// Table1 runs the experiment.
func Table1(sc Scale, seed int64) (Table1Result, error) {
	var res Table1Result
	for _, cfgName := range []string{CfgWeak, CfgStrong} {
		cfgName := cfgName
		c := newClusterSized(sc, seed, datasetBytes(sc.LoadKeys/4))
		err := c.Run(func(p *simnet.Proc) error {
			a, err := newKVApp(c, p, cfgName, sc.LoadKeys/4, 0)
			if err != nil {
				return err
			}
			if err := loadApp(c, p, a, sc.LoadKeys/4); err != nil {
				return err
			}
			startServer(c, "kv", a)
			spec := ycsb.Spec{Name: "write-only", UpdateProp: 1.0, Dist: ycsb.Zipfian}
			pt := runWorkload(c, p, "kv", spec, sc.LoadKeys/4, sc.Clients, sc, nil)
			res.Rows = append(res.Rows, Table1Row{Config: cfgName, KOps: pt.kops(), AvgLat: pt.hist.Mean()})
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("table1 %s: %w", cfgName, err)
		}
	}
	return res, nil
}

// ---- Table 2: writes in storage-centric applications ----

// Table2 reproduces the paper's qualitative analysis table. The first three
// rows are the applications implemented in this repository (their file
// naming follows the packages); the rest cite the paper's analysis of
// systems not re-implemented here.
func Table2() string {
	rows := [][]string{
		{"kvstore (RocksDB)", "write-ahead log (wal-*.log)", "sorted-string tables (L*.sst)", "delete"},
		{"redstore (Redis)", "append-only file (appendonly-*.aof)", "snapshot (dump-*.rdb)", "delete"},
		{"litedb (SQLite)", "write-ahead log (data.db-wal)", "database (data.db)", "overwrite"},
		{"LevelDB*", "write-ahead log (log)", "sorted tables (ldb)", "delete"},
		{"PostgreSQL*", "write-ahead log (pg_wal)", "database (base)", "overwrite"},
		{"HyperSQL*", "redo log (log)", "database (data)", "overwrite"},
		{"MariaDB*", "redo log (ib_logfile)", "tablespace file (ibd)", "overwrite"},
		{"MongoDB*", "journal (WiredTigerLog)", "WiredTiger store (wt)", "delete"},
	}
	return "Table 2. Writes in Storage-Centric Applications (*: from the paper's analysis)\n" +
		metrics.Table([]string{"App", "Small, sync writes", "Large, bg writes", "Reclaim"}, rows)
}
