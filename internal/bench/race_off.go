//go:build !race

package bench

// raceEnabled reports whether the race detector is compiled in. The perf
// allocation gates skip under -race, whose instrumentation perturbs
// allocation counts; CI runs them in a separate non-race step.
const raceEnabled = false
