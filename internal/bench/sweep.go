package bench

import (
	"fmt"
	"time"

	"splitft/internal/metrics"
	"splitft/internal/model"
)

// ---- Profile sweep: fig8-style micro across every named profile ----

// SweepRow is one profile's headline micro-latencies (128 B writes).
type SweepRow struct {
	Profile string
	NCL     time.Duration // 128 B synchronous NCL record
	Strong  time.Duration // 128 B dfs write + fdatasync
	Weak    time.Duration // 128 B buffered dfs write
}

// SweepResult holds one row per named profile.
type SweepResult struct {
	Rows []SweepRow
}

// Render prints the comparison table.
func (r SweepResult) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Profile, fmtUS(row.NCL),
			fmtUS(row.Strong), fmtUS(row.Weak)})
	}
	return "Profile sweep: 128B write latency (us) per hardware profile\n" +
		metrics.Table([]string{"profile", "NCL", "strong DFS", "weak DFS"}, rows)
}

// Sweep reruns the Fig 8 microbenchmark under every named profile so the
// fabric and storage axes are directly comparable (e.g. CX6RoCE100 must
// beat the baseline on NCL latency, FastDFS on the strong-DFS column).
func Sweep(sc Scale, seed int64) (SweepResult, error) {
	var res SweepResult
	for _, name := range model.Names() {
		prof, ok := model.ByName(name)
		if !ok {
			return res, fmt.Errorf("sweep: unknown profile %q", name)
		}
		psc := sc
		psc.Profile = prof
		fig8, err := Fig8(psc, seed)
		if err != nil {
			return res, fmt.Errorf("sweep %s: %w", name, err)
		}
		row := SweepRow{Profile: name}
		for _, pt := range fig8.Points {
			if pt.Size != 128 {
				continue
			}
			switch pt.Variant {
			case "NCL":
				row.NCL = pt.AvgLat
			case "strong-bench DFS":
				row.Strong = pt.AvgLat
			case "weak-bench DFS":
				row.Weak = pt.AvgLat
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Latency returns the named profile's row, or false if the sweep lacks it.
func (r SweepResult) Latency(profile string) (SweepRow, bool) {
	for _, row := range r.Rows {
		if row.Profile == profile {
			return row, true
		}
	}
	return SweepRow{}, false
}
