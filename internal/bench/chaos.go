package bench

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"splitft/internal/apps/kvstore"
	"splitft/internal/core"
	"splitft/internal/harness"
	"splitft/internal/metrics"
	"splitft/internal/model"
	"splitft/internal/modelcheck"
	"splitft/internal/ncl"
	"splitft/internal/simnet"
	"splitft/internal/wire"
)

// The chaos experiment behind `splitft-bench chaos` sweeps adversarial
// failure schedules (harness.ChaosScenarios) against a live kvstore
// workload for every replication policy and seed, and checks the fsynced
// prefix after every injected event: the app is crashed, restarted with a
// bumped fencing token, recovered from the surviving peers, and every key
// the workload ever wrote is audited against the client-side history
// (internal/modelcheck.History). A correct protocol shows violations = 0 on
// every cell; the two trailing "gray-crash" rows re-run a correlated
// gray-members-plus-crash schedule with and without the seeded
// ack-before-quorum mutation (ncl.Config.UnsafeAckQuorum) to prove the
// checker produces counterexamples when the commit rule is actually broken.
// Everything runs on the virtual clock, so the committed BENCH_chaos.json
// is deterministic and TestChaosPerfGate diffs it at ±2%.

// ChaosRow is one (scenario, policy, seed) cell.
type ChaosRow struct {
	Scenario      string `json:"scenario"`
	Policy        string `json:"policy"`
	Seed          int64  `json:"seed"`
	Events        int    `json:"events"`     // injected fault events
	AckedOps      int64  `json:"acked_ops"`  // client writes acked durable
	Recoveries    int    `json:"recoveries"` // post-event crash+recover audits
	MaxRecoveryNS int64  `json:"max_recovery_ns"`
	MaxUnavailNS  int64  `json:"max_unavail_ns"` // longest gap between acks
	Violations    int    `json:"violations"`
}

// ChaosReport is the whole sweep, JSON-shaped for BENCH_chaos.json.
type ChaosReport struct {
	Rows []ChaosRow `json:"rows"`
}

// Row returns the (scenario, policy, seed) cell, or nil.
func (r ChaosReport) Row(scenario, policy string, seed int64) *ChaosRow {
	for i := range r.Rows {
		if r.Rows[i].Scenario == scenario && r.Rows[i].Policy == policy && r.Rows[i].Seed == seed {
			return &r.Rows[i]
		}
	}
	return nil
}

// Render formats the report as a table.
func (r ChaosReport) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Scenario, row.Policy, fmt.Sprint(row.Seed),
			fmt.Sprint(row.Events), fmt.Sprint(row.AckedOps), fmt.Sprint(row.Recoveries),
			fmt.Sprintf("%.1f", time.Duration(row.MaxRecoveryNS).Seconds()*1000),
			fmt.Sprintf("%.1f", time.Duration(row.MaxUnavailNS).Seconds()*1000),
			fmt.Sprint(row.Violations),
		})
	}
	return "Chaos sweep: durability of the acked prefix under fault schedules (virtual time)\n" +
		metrics.Table([]string{"Scenario", "Policy", "Seed", "Events", "Acked ops",
			"Recoveries", "Max recovery (ms)", "Max unavail (ms)", "Violations"}, rows)
}

// WriteJSON writes the report to path (BENCH_chaos.json).
func (r ChaosReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ChaosSeeds is the sweep's seed axis: every scenario's fault schedule and
// workload interleaving replays byte-identically per seed.
var ChaosSeeds = []int64{1, 2}

const (
	codeChaosPut wire.Code = 0x42 // client->server versioned put

	chaosAddr          = "chaos-kv"
	chaosClients       = 4
	chaosKeysPerClient = 4
	chaosOpGap         = 1 * time.Millisecond // paced, not closed-loop flat out
	chaosRetryGap      = 5 * time.Millisecond // backoff while the app is down
	chaosRPCTimeout    = 100 * time.Millisecond
	chaosMutantPolicy  = "mirror+unsafe-ack:1"
)

// RunChaos runs the scenario x policy x seed sweep plus the two mutation
// rows and returns the report. Each policy is first model-checked offline
// (bounded BFS) so a protocol-level ack-rule bug fails fast, before any
// simulated hardware is involved.
func RunChaos(sc Scale, seed int64) (ChaosReport, error) {
	var rep ChaosReport
	for _, pol := range ReplPolicies {
		spec, err := ncl.ParsePolicy(pol)
		if err != nil {
			return rep, err
		}
		if res := modelcheck.CheckReplication(spec, modelcheck.DefaultReplConfig(spec)); res.Violation != nil {
			return rep, fmt.Errorf("chaos: policy %s fails offline model check: %s", pol, res.Violation.Kind)
		}
	}
	for _, scenario := range harness.ChaosScenarios {
		for _, pol := range ReplPolicies {
			for _, off := range ChaosSeeds {
				row, err := chaosOnce(sc, seed+off-1, scenario, pol, 0)
				if err != nil {
					return rep, fmt.Errorf("chaos %s/%s/seed%d: %w", scenario, pol, seed+off-1, err)
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	clean, mutated, err := RunChaosMutation(sc, seed)
	if err != nil {
		return rep, err
	}
	rep.Rows = append(rep.Rows, clean, mutated)
	return rep, nil
}

// chaosCell is the shared live-workload machinery of one cell: a kvstore
// behind an RPC server on the app node, paced writer clients on the client
// machine recording every invoke/ack into a history, and the post-event
// audit that crashes the app, re-opens it with a higher fencing token,
// times recovery, and checks every key ever written against the history.
type chaosCell struct {
	c            *harness.Cluster
	hist         *modelcheck.History
	dbCfg        kvstore.Config
	unsafeQuorum int
	fence        int64

	stop       bool
	wg         simnet.WaitGroup
	lastAck    time.Duration
	maxGap     time.Duration
	recoveries int
	maxRecover time.Duration
}

func newChaosCell(c *harness.Cluster, unsafeQuorum int) *chaosCell {
	dbCfg := kvstore.DefaultConfig()
	dbCfg.KVStoreCosts = c.Profile.Apps.KVStore
	dbCfg.Durability = kvstore.SplitFT
	dbCfg.MemtableBytes = 32 << 20 // paced writes never rotate mid-cell
	dbCfg.WALRegion = 8 << 20
	return &chaosCell{c: c, hist: modelcheck.NewHistory(), dbCfg: dbCfg, unsafeQuorum: unsafeQuorum}
}

func (ce *chaosCell) fsOpts(fence int64) core.Options {
	o := ce.c.FSOptions("chaoskv", fence)
	o.NCL.UnsafeAckQuorum = ce.unsafeQuorum
	return o
}

// open creates the generation-zero store.
func (ce *chaosCell) open(p *simnet.Proc) (*kvstore.DB, error) {
	fs, err := core.NewFS(p, ce.fsOpts(ce.fence))
	if err != nil {
		return nil, err
	}
	return kvstore.Open(p, fs, ce.dbCfg)
}

// serve (re-)registers the RPC server wrapping db on the app node. The
// registration dies with the node's incarnation on every crash, so each
// recovered generation must call it again — as a restarted process would.
func (ce *chaosCell) serve(db *kvstore.DB) {
	ce.c.Sim.Net().Register(chaosAddr, ce.c.AppNode, func(hp *simnet.Proc, req simnet.Msg) (simnet.Msg, error) {
		val := make([]byte, 16)
		binary.BigEndian.PutUint64(val, req.U[1])
		if err := db.Put(hp, req.S[0], val); err != nil {
			return simnet.Msg{}, err
		}
		return simnet.Msg{Code: wire.CodeAck}, nil
	})
}

// startClients launches the paced writers. Each client owns its keys and
// writes strictly increasing versions, so the history's per-key window
// invariant is exactly linearizability of the acked prefix.
func (ce *chaosCell) startClients(p *simnet.Proc) {
	ce.wg.Add(chaosClients)
	for i := 0; i < chaosClients; i++ {
		i := i
		p.GoOn(ce.c.ClientNode, fmt.Sprintf("chaos-client%d", i), func(cp *simnet.Proc) {
			defer ce.wg.Done(cp)
			var ver int64
			for j := 0; !ce.stop; j++ {
				key := fmt.Sprintf("c%dk%d", i, j%chaosKeysPerClient)
				ver++
				ce.hist.Invoke(key, ver)
				m := simnet.Msg{Code: codeChaosPut, S: [3]string{key}}
				m.U[1] = uint64(ver)
				if _, err := ce.c.Sim.Net().CallTimeout(cp, ce.c.ClientNode, chaosAddr, m, chaosRPCTimeout); err != nil {
					cp.Sleep(chaosRetryGap)
					continue
				}
				now := cp.Now()
				ce.hist.Ack(key, ver, now)
				if gap := now - ce.lastAck; gap > ce.maxGap {
					ce.maxGap = gap
				}
				ce.lastAck = now
				cp.Sleep(chaosOpGap)
			}
		})
	}
	ce.lastAck = p.Now()
}

// stopClients drains the writers.
func (ce *chaosCell) stopClients(p *simnet.Proc) {
	ce.stop = true
	ce.wg.Wait(p)
}

// audit is the durability check run after every injected event: crash the
// app mid-whatever-it-was-doing, restart it, recover the store from the
// surviving peers under a new fencing token, and compare every key the
// workload ever wrote against the acked window. Recovery is retried while
// the fault the scenario injected still blocks it (that wait IS the
// unavailability being measured); the recovered generation then serves.
func (ce *chaosCell) audit(p *simnet.Proc, what string) error {
	ce.c.CrashApp()
	ce.c.RestartApp()
	start := p.Now()
	var db *kvstore.DB
	var rerr error
	for attempt := 0; db == nil; attempt++ {
		if attempt > 0 {
			p.Sleep(50 * time.Millisecond)
		}
		if attempt > 60 {
			return fmt.Errorf("bench: recovery stuck after %q: %w", what, rerr)
		}
		ce.fence++
		var fs *core.FS
		if fs, rerr = core.NewFS(p, ce.fsOpts(ce.fence)); rerr != nil {
			continue
		}
		db, rerr = kvstore.Recover(p, fs, ce.dbCfg)
	}
	if d := p.Now() - start; d > ce.maxRecover {
		ce.maxRecover = d
	}
	ce.recoveries++
	for _, k := range ce.hist.Keys() {
		val, ok, err := db.Get(p, k)
		if err != nil {
			return fmt.Errorf("bench: audit read %s: %w", k, err)
		}
		var ver int64
		if ok && len(val) >= 8 {
			ver = int64(binary.BigEndian.Uint64(val))
		}
		ce.hist.Observe(k, ver, ok, p.Now())
	}
	ce.serve(db)
	return nil
}

// fill copies the cell's measurements into a row.
func (ce *chaosCell) fill(row *ChaosRow, events int) {
	row.Events = events
	row.AckedOps = ce.hist.Acks
	row.Recoveries = ce.recoveries
	row.MaxRecoveryNS = int64(ce.maxRecover)
	row.MaxUnavailNS = int64(ce.maxGap)
	row.Violations = len(ce.hist.Violations())
}

// chaosOnce measures one (scenario, policy, seed) cell on a fresh cluster.
func chaosOnce(sc Scale, seed int64, scenario, policy string, unsafeQuorum int) (ChaosRow, error) {
	row := ChaosRow{Scenario: scenario, Policy: policy, Seed: seed}
	prof := model.Baseline()
	prof.NCL.Replication = policy
	c := harness.New(harness.Options{
		Seed: seed, NumPeers: 8, PeerMem: 512 << 20, AppCores: 10,
		PeerDomainCount: 4, Profile: prof, Trace: sc.Trace,
	})
	ce := newChaosCell(c, unsafeQuorum)
	err := c.Run(func(p *simnet.Proc) error {
		db, err := ce.open(p)
		if err != nil {
			return err
		}
		ce.serve(db)
		ce.startClients(p)
		p.Sleep(200 * time.Millisecond) // steady state before the first fault
		in := harness.NewInjector(c, seed)
		in.OnEvent = ce.audit
		if err := in.Run(p, scenario); err != nil {
			return err
		}
		p.Sleep(200 * time.Millisecond) // post-heal acks close the last gap
		ce.stopClients(p)
		ce.fill(&row, len(in.Events))
		return nil
	})
	return row, err
}

// RunChaosMutation runs the correlated gray-members-plus-crash schedule
// twice — under the correct commit rule (zero violations expected) and
// under the seeded ack-before-quorum mutation (counterexamples expected).
// Two of the three mirror members are made gray, so their in-order RDMA
// engines fall thousands of WRs behind while the third acks instantly;
// then the fast member and the app crash together. With the correct F+1
// rule every acked record also lives on a gray member and recovery finds
// it; with UnsafeAckQuorum=1 the acked prefix dies with the fast member
// and the history checker reports lost-acked-write.
func RunChaosMutation(sc Scale, seed int64) (clean, mutated ChaosRow, err error) {
	if clean, err = chaosMutationOnce(sc, seed, 0); err != nil {
		return clean, mutated, fmt.Errorf("chaos gray-crash/clean: %w", err)
	}
	if mutated, err = chaosMutationOnce(sc, seed, 1); err != nil {
		return clean, mutated, fmt.Errorf("chaos gray-crash/mutated: %w", err)
	}
	return clean, mutated, nil
}

func chaosMutationOnce(sc Scale, seed int64, unsafeQuorum int) (ChaosRow, error) {
	row := ChaosRow{Scenario: "gray-crash", Policy: "mirror", Seed: seed}
	if unsafeQuorum > 0 {
		row.Policy = chaosMutantPolicy
	}
	prof := model.Baseline()
	prof.NCL.Replication = "mirror"
	c := harness.New(harness.Options{
		Seed: seed, NumPeers: 5, PeerMem: 512 << 20, AppCores: 10,
		PeerDomainCount: 0, Profile: prof, Trace: sc.Trace,
	})
	ce := newChaosCell(c, unsafeQuorum)
	err := c.Run(func(p *simnet.Proc) error {
		db, err := ce.open(p)
		if err != nil {
			return err
		}
		ce.serve(db)
		ce.startClients(p)
		p.Sleep(100 * time.Millisecond)

		// Identify the WAL's member peers and gray two of the three: +5 ms
		// per WR on an in-order queue pair is an ever-growing backlog.
		type hasLog interface{ Log() *ncl.Log }
		members := db.WAL().(hasLog).Log().LivePeers()
		if len(members) != 3 {
			return fmt.Errorf("bench: mirror WAL has %d members, want 3", len(members))
		}
		net := c.Sim.Net()
		events := 0
		for _, name := range members[1:] {
			net.SetLinkLatency(c.AppNode, c.Sim.Node(name), 5*time.Millisecond)
			events++
		}
		p.Sleep(300 * time.Millisecond)

		// Correlated crash: the only up-to-date member dies with the app.
		c.Sim.Node(members[0]).Crash()
		c.CrashApp()
		events++
		net.HealAll()
		p.Sleep(10 * time.Millisecond)
		c.RestartApp()
		if err := ce.audit(p, "gray-crash"); err != nil {
			return err
		}
		p.Sleep(100 * time.Millisecond)
		ce.stopClients(p)
		ce.fill(&row, events)
		return nil
	})
	return row, err
}
