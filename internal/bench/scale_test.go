package bench

import (
	"bytes"
	"testing"

	"splitft/internal/trace"
)

// TestScaleSmoke64c4s is the CI scale gate: the smoke point (64 open-loop
// clients, 4 controller shards) must boot every client and complete its
// offered load with no controller errors. Well below the saturation knee,
// completed throughput should track offered throughput.
func TestScaleSmoke64c4s(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke skipped in -short")
	}
	cfg := SmokeScaleConfig()
	rep, err := ScaleRun(cfg, QuickScale(), 1)
	if err != nil {
		t.Fatalf("scale smoke: %v", err)
	}
	if len(rep.Points) != 1 {
		t.Fatalf("points = %d, want 1", len(rep.Points))
	}
	pt := rep.Points[0]
	if pt.Booted != cfg.Clients[0] {
		t.Errorf("booted = %d, want %d", pt.Booted, cfg.Clients[0])
	}
	if pt.Errs != 0 {
		t.Errorf("errs = %d, want 0", pt.Errs)
	}
	if pt.KOps <= 0 {
		t.Fatalf("completed throughput = %v KOps/s, want > 0", pt.KOps)
	}
	if pt.KOps < pt.OfferedKOps*0.9 {
		t.Errorf("completed %.2f KOps/s below 90%% of offered %.2f", pt.KOps, pt.OfferedKOps)
	}
	if pt.P99 <= 0 {
		t.Errorf("p99 = %v us, want > 0", pt.P99)
	}
}

// TestScaleTraceDeterministic extends the determinism contract to the
// sharded control plane: two runs of the same scale point at the same seed
// must produce byte-identical Chrome trace exports. Any unordered map
// iteration feeding a decision in the controller, the shard-aware client or
// the pooled allocator would diverge here.
func TestScaleTraceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("scale trace determinism skipped in -short")
	}
	runOnce := func() []byte {
		col := trace.New()
		sc := QuickScale()
		sc.Trace = col
		cfg := SmokeScaleConfig()
		if _, err := ScaleRun(cfg, sc, 7); err != nil {
			t.Fatalf("scale run: %v", err)
		}
		var buf bytes.Buffer
		if err := trace.WriteChrome(&buf, col.Spans()); err != nil {
			t.Fatalf("write chrome trace: %v", err)
		}
		return buf.Bytes()
	}
	a := runOnce()
	b := runOnce()
	if !bytes.Equal(a, b) {
		t.Fatalf("trace export differs between identical runs (%d vs %d bytes)", len(a), len(b))
	}
}
