package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"splitft/internal/harness"
	"splitft/internal/metrics"
	"splitft/internal/ncl"
	"splitft/internal/simnet"
	"splitft/internal/ycsb"
)

// ScaleRun is the control-plane scaling experiment behind
// `splitft-bench scale`: N independent applications, each an open-loop
// Poisson client appending to its own replicated WAL and rotating it every
// RotateEvery records, all sharing one controller. Every client holds a
// controller session (keepalives), an ephemeral instance lock, and proposes
// ap-map updates on each rotation, so the controller's Raft commit rate is
// the contended resource. Sweeping the client count across shard counts
// shows where a single Raft group saturates — keepalives and rotations queue
// behind fsync, sessions expire, rotations fail — and how partitioning the
// znode tree across data groups moves the knee.
//
// Unlike the closed-loop YCSB drivers in bench.go, arrivals here are open
// loop (ycsb.Arrivals): an operation's start time is drawn from a Poisson
// process and does not wait for the previous operation, so controller
// queueing delay appears in the latency columns instead of silently
// throttling offered load.

// ScaleConfig sizes the sweep.
type ScaleConfig struct {
	Clients []int // client counts to sweep
	Shards  []int // controller data-shard counts to compare

	Rate        float64       // per-client offered load, ops/s
	RotateEvery int           // WAL rotation period in records
	LogBytes    int64         // WAL region capacity
	RecordBytes int           // bytes per appended record
	Peers       int           // log-peer pool size
	Window      time.Duration // measured window
	Warmup      time.Duration // settle time between boot and the window
	// BootDeadline bounds each client's boot retries (session + lock + first
	// WAL open). The measured window starts once every client has either
	// booted or given up, so the deadline only stretches runs where the
	// controller is too saturated to admit everyone — which the Booted
	// column then reports.
	BootDeadline time.Duration
}

// DefaultScaleConfig is the full sweep (10 .. 1000 clients, 1 vs 8 shards).
// At 1000 clients the control-plane load (ap-map rotations plus session
// keepalives) passes a single group's apply-path capacity, so the 1-shard
// column saturates while the 8-shard column stays flat — the knee the
// experiment exists to show.
func DefaultScaleConfig() ScaleConfig {
	return ScaleConfig{
		Clients:     []int{10, 50, 100, 250, 500, 1000},
		Shards:      []int{1, 8},
		Rate:        20,
		RotateEvery: 16,
		LogBytes:    16 << 10,
		RecordBytes: 128,
		Peers:       16,
		// The window must span several failed-rotation cycles (a rotation
		// against a saturated shard burns the full 3 s propose deadline
		// before the client falls back to appending), or a saturated point
		// collapses to all-errors instead of showing its degraded rate.
		Window:       8 * time.Second,
		Warmup:       time.Second,
		BootDeadline: 30 * time.Second,
	}
}

// SmokeScaleConfig is the CI-sized single point (64 clients, 4 shards).
func SmokeScaleConfig() ScaleConfig {
	return ScaleConfig{
		Clients:      []int{64},
		Shards:       []int{4},
		Rate:         20,
		RotateEvery:  32,
		LogBytes:     16 << 10,
		RecordBytes:  128,
		Peers:        8,
		Window:       400 * time.Millisecond,
		Warmup:       200 * time.Millisecond,
		BootDeadline: 10 * time.Second,
	}
}

// ScalePoint is one (shards, clients) measurement.
type ScalePoint struct {
	Shards  int `json:"shards"`
	Clients int `json:"clients"`
	// Booted counts clients that completed boot before the deadline; only
	// their operations contribute to the other columns.
	Booted      int     `json:"booted"`
	OfferedKOps float64 `json:"offered_kops"`
	KOps        float64 `json:"kops"`
	P50         float64 `json:"p50_us"`
	P99         float64 `json:"p99_us"`
	Mean        float64 `json:"mean_us"`
	// Errs counts failed operations in the window: rotations or appends that
	// lost to session expiry, ap-map update timeouts, or a full region after
	// repeated rotation failures.
	Errs   int64  `json:"errs"`
	Events uint64 `json:"sim_events"`
}

// ScaleReport is the whole sweep, JSON-shaped for BENCH_scale.json.
type ScaleReport struct {
	Profile string       `json:"profile"`
	Seed    int64        `json:"seed"`
	Points  []ScalePoint `json:"points"`
}

// Render formats the report as a table.
func (r ScaleReport) Render() string {
	var rows [][]string
	for _, pt := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", pt.Shards),
			fmt.Sprintf("%d", pt.Clients),
			fmt.Sprintf("%d", pt.Booted),
			fmt.Sprintf("%.2f", pt.OfferedKOps),
			fmt.Sprintf("%.2f", pt.KOps),
			fmt.Sprintf("%.0f", pt.P50),
			fmt.Sprintf("%.0f", pt.P99),
			fmt.Sprintf("%d", pt.Errs),
		})
	}
	return fmt.Sprintf("Control-plane scaling (profile %s, open-loop Poisson clients)\n", r.Profile) +
		metrics.Table([]string{"Shards", "Clients", "Booted", "Offered (KOps/s)", "Done (KOps/s)", "P50 (us)", "P99 (us)", "Errs"}, rows)
}

// WriteJSON writes the report to path (BENCH_scale.json).
func (r ScaleReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ScaleRun executes the sweep. Points can take minutes of wall clock at the
// saturated end, so progress goes to stderr as each one lands.
func ScaleRun(cfg ScaleConfig, sc Scale, seed int64) (ScaleReport, error) {
	rep := ScaleReport{Profile: sc.profile().Name, Seed: seed}
	for _, shards := range cfg.Shards {
		for _, clients := range cfg.Clients {
			t0 := time.Now()
			pt, err := runScalePoint(cfg, sc, seed, shards, clients)
			if err != nil {
				return rep, fmt.Errorf("scale %d shards %d clients: %w", shards, clients, err)
			}
			fmt.Fprintf(os.Stderr, "[scale] shards=%d clients=%d booted=%d done=%.2f KOps/s errs=%d (%.1fs wall)\n",
				pt.Shards, pt.Clients, pt.Booted, pt.KOps, pt.Errs, time.Since(t0).Seconds())
			rep.Points = append(rep.Points, pt)
		}
	}
	return rep, nil
}

// scaleWindow is the measured interval, published to the client procs once
// every boot attempt has resolved.
type scaleWindow struct {
	warmEnd, end time.Duration
}

// scaleClient is one client's accumulators. The simulation scheduler is
// cooperative, so clients update their own slot without locking and the main
// proc merges after they exit.
type scaleClient struct {
	booted  bool
	offered int64
	done    int64
	errs    int64
	hist    metrics.Histogram
}

func runScalePoint(cfg ScaleConfig, sc Scale, seed int64, shards, clients int) (ScalePoint, error) {
	pt, _, err := runScalePointSim(cfg, sc, seed, shards, clients)
	return pt, err
}

// runScalePointSim additionally returns the simulation (the perf suite reads
// its event counter).
func runScalePointSim(cfg ScaleConfig, sc Scale, seed int64, shards, clients int) (ScalePoint, *simnet.Sim, error) {
	prof := *sc.profile()
	// The pooled-controller configuration under test: sharded znode tree,
	// TTL-cached peer registry with rendezvous placement, coalesced peer
	// memory publishing. Shards <= 1 keeps the paper's single-group layout
	// as the baseline curve.
	prof.Controller.Shards = shards
	prof.NCL.PoolRefresh = 10 * time.Second
	prof.Peer.PublishInterval = 100 * time.Millisecond

	c := harness.New(harness.Options{
		Seed:     seed,
		NumPeers: cfg.Peers,
		PeerMem:  1 << 30,
		Profile:  &prof,
		Trace:    sc.Trace,
	})
	nodes := make([]*simnet.Node, clients)
	for i := range nodes {
		nodes[i] = c.Sim.NewNode(fmt.Sprintf("scale%04d", i))
	}

	res := make([]*scaleClient, clients)
	for i := range res {
		res[i] = &scaleClient{}
	}
	var win *scaleWindow

	err := c.Run(func(p *simnet.Proc) error {
		var bootWG, startWG, doneWG simnet.WaitGroup
		bootWG.Add(clients)
		startWG.Add(1)
		doneWG.Add(clients)
		for i := 0; i < clients; i++ {
			i := i
			p.GoOn(nodes[i], fmt.Sprintf("scale-client%d", i), func(cp *simnet.Proc) {
				defer doneWG.Done(cp)
				runScaleClient(cp, c, cfg, res[i], &win, &bootWG, &startWG, i)
			})
		}
		if os.Getenv("SCALE_HEARTBEAT") != "" {
			p.Go("scale-heartbeat", func(hp *simnet.Proc) {
				for {
					hp.Sleep(5 * time.Second)
					booted := 0
					for _, r := range res {
						if r.booted {
							booted++
						}
					}
					fmt.Fprintf(os.Stderr, "[scale] t=%.0fs booted=%d/%d events=%d\n",
						hp.Now().Seconds(), booted, clients, c.Sim.Events())
				}
			})
		}
		bootWG.Wait(p)
		start := p.Now()
		win = &scaleWindow{warmEnd: start + cfg.Warmup, end: start + cfg.Warmup + cfg.Window}
		startWG.Done(p)
		doneWG.Wait(p)
		return nil
	})
	if err != nil {
		return ScalePoint{}, c.Sim, err
	}

	pt := ScalePoint{Shards: shards, Clients: clients, Events: c.Sim.Events()}
	var hist metrics.Histogram
	var offered, done int64
	for _, r := range res {
		if r.booted {
			pt.Booted++
		}
		offered += r.offered
		done += r.done
		pt.Errs += r.errs
		hist.Merge(&r.hist)
	}
	secs := cfg.Window.Seconds()
	pt.OfferedKOps = float64(offered) / secs / 1000
	pt.KOps = float64(done) / secs / 1000
	pt.P50 = float64(hist.Percentile(0.50).Nanoseconds()) / 1000
	pt.P99 = float64(hist.Percentile(0.99).Nanoseconds()) / 1000
	pt.Mean = float64(hist.Mean().Nanoseconds()) / 1000
	return pt, c.Sim, nil
}

// runScaleClient boots one application (session, instance lock, first WAL)
// with retries until the deadline, then offers open-loop Poisson load:
// fixed-size appends to the current WAL, rotating to a fresh WAL every
// RotateEvery records. Latency is measured from the scheduled arrival time,
// so an operation that queued behind a slow predecessor — or behind a
// saturated controller during rotation — pays for the wait.
func runScaleClient(cp *simnet.Proc, c *harness.Cluster, cfg ScaleConfig,
	r *scaleClient, win **scaleWindow, bootWG, startWG *simnet.WaitGroup, i int) {

	app := cp.Node().Name()
	deadline := cp.Now() + cfg.BootDeadline
	// Stagger boots so a thousand session handshakes don't land on the same
	// tick; retries back off with jitter from the proc's own deterministic
	// stream.
	cp.Sleep(time.Duration(i) * 2 * time.Millisecond)

	// Boot in stages, keeping whatever succeeded: one lib (and hence one
	// controller session and keepalive proc) per client, however many
	// retries the lock or the first WAL open need under a saturated
	// controller. Re-creating the lib on every retry would leak a keepalive
	// proc per attempt and overstate the control-plane load.
	var (
		lib    *ncl.Lib
		lg     *ncl.Log
		locked bool
	)
	for cp.Now() < deadline {
		var err error
		if lib == nil {
			nclCfg, cfgErr := ncl.ConfigFromProfile(c.Profile)
			if cfgErr != nil {
				bootWG.Done(cp)
				return
			}
			if lib, err = ncl.NewLib(cp, c.Controller, c.Fabric, cp.Node(), app, 1, nclCfg); err != nil {
				lib = nil
			}
		}
		if err == nil && !locked {
			if err = lib.AcquireInstanceLock(cp); err == nil {
				locked = true
			}
		}
		if err == nil {
			if lg, err = lib.OpenWithOptions(cp, "wal-0", cfg.LogBytes, ncl.LogOptions{AppendOnly: true}); err == nil {
				break
			}
		}
		cp.Sleep(100*time.Millisecond + time.Duration(cp.Rand().Int63n(int64(200*time.Millisecond))))
	}
	bootWG.Done(cp)
	if lg == nil {
		return
	}
	r.booted = true
	// Hold the offered load until every boot attempt has resolved and the
	// window is published. Early booters would otherwise free-run for the
	// stragglers' entire boot-retry phase — up to BootDeadline — filling
	// their fixed-capacity regions (and, on a saturated shard, exhausting
	// their rotation budget) before a single measured arrival fires.
	startWG.Wait(cp)

	buf := make([]byte, cfg.RecordBytes)
	arr := ycsb.NewArrivals(cfg.Rate, (c.Seed-1)*15485863+int64(i)*7919+1)
	gen := 0
	sinceRotate := 0
	next := cp.Now()
	for {
		next += arr.Next()
		w := *win
		if w != nil && next >= w.end {
			return
		}
		if w != nil && cp.Now() >= w.end {
			// The window is over but this client still has a backlog of
			// scheduled arrivals (its ops queued behind a saturated control
			// plane). None of them can complete inside the window, so count
			// the in-window remainder as offered-but-failed instead of
			// grinding each one through a multi-second failing operation —
			// this is what bounds a saturated point's simulated drain time.
			for ; next < w.end; next += arr.Next() {
				if next >= w.warmEnd {
					r.offered++
					r.errs++
				}
			}
			return
		}
		if d := next - cp.Now(); d > 0 {
			cp.Sleep(d)
		}
		measured := w != nil && next >= w.warmEnd && next < w.end
		if measured {
			r.offered++
		}
		var err error
		if sinceRotate >= cfg.RotateEvery {
			// Rotation is itself an operation: open the next generation,
			// then release the old one (two ap-map proposals plus peer
			// region setup). If the control plane is too saturated to
			// rotate, degrade to appending into the current region and
			// defer the next rotation attempt by another RotateEvery
			// records — a failed rotation burns the full propose deadline,
			// so retrying it on every arrival would freeze the data path.
			// The region eventually hard-fails with ErrRegionFull if
			// rotations keep losing, which is the honest endpoint.
			var nlg *ncl.Log
			nlg, err = lib.OpenWithOptions(cp, fmt.Sprintf("wal-%d", gen+1), cfg.LogBytes, ncl.LogOptions{AppendOnly: true})
			if err == nil {
				old := lg
				lg, gen = nlg, gen+1
				sinceRotate = 0
				err = old.Release(cp)
			} else if _, aerr := lg.Append(cp, buf); aerr == nil {
				err = nil
				sinceRotate = 1
			}
		} else {
			_, err = lg.Append(cp, buf)
			if err == nil {
				sinceRotate++
			}
		}
		if err != nil {
			if measured {
				r.errs++
			}
			continue
		}
		if measured {
			r.done++
			r.hist.Record(cp.Now() - next)
		}
	}
}
